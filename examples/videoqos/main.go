// Videoqos demonstrates that property modification rules generalize
// beyond security (Section 3.3: "our approach is generally applicable
// to properties other than just security, e.g. QoS properties such as
// delivered video frame rate"). A video source offers 30 fps; links cap
// the deliverable frame rate (Out = MIN(In, Env)); a Transcoder
// component regenerates a usable rate at reduced fidelity. The planner
// inserts the transcoder exactly when the path cannot sustain the
// client's requirement.
package main

import (
	"fmt"
	"log"

	"partsvc/internal/netmodel"
	"partsvc/internal/planner"
	"partsvc/internal/property"
	"partsvc/internal/spec"
)

// videoService declares a VideoPlayer that needs >= 24 fps, a
// VideoSource that offers 30 fps, and a Transcoder that consumes any
// stream (>= 1 fps) and re-emits 24 fps at reduced fidelity.
func videoService() *spec.Service {
	lit := func(v property.Value) property.Expr { return property.Lit(v) }
	return &spec.Service{
		Name: "video",
		Properties: []property.Type{
			property.IntervalType("FrameRate", 1, 60),
			property.BoolType("HasContent"),
		},
		Interfaces: []spec.InterfaceDecl{
			{Name: "PlayerInterface", Properties: []string{"FrameRate"}},
			{Name: "StreamInterface", Properties: []string{"FrameRate"}},
		},
		Components: []spec.Component{
			{
				Name: "VideoPlayer",
				Implements: []spec.InterfaceSpec{{
					Name:  "PlayerInterface",
					Props: map[string]property.Expr{"FrameRate": lit(property.Int(24))},
				}},
				Requires: []spec.InterfaceSpec{{
					Name:  "StreamInterface",
					Props: map[string]property.Expr{"FrameRate": lit(property.Int(24))},
				}},
				Behaviors: spec.Behaviors{CPUMSPerRequest: 1, RequestBytes: 512, ResponseBytes: 65536},
			},
			{
				Name: "VideoSource",
				Implements: []spec.InterfaceSpec{{
					Name:  "StreamInterface",
					Props: map[string]property.Expr{"FrameRate": lit(property.Int(30))},
				}},
				// Only the studio holds the content library.
				Conditions: []property.Condition{
					property.CondEq("Node.HasContent", property.Bool(true)),
				},
				Behaviors: spec.Behaviors{CapacityRPS: 100, CPUMSPerRequest: 2, RequestBytes: 512, ResponseBytes: 65536},
			},
			{
				Name: "Transcoder",
				Implements: []spec.InterfaceSpec{{
					Name:  "StreamInterface",
					Props: map[string]property.Expr{"FrameRate": lit(property.Int(24))},
				}},
				Requires: []spec.InterfaceSpec{{
					Name:  "StreamInterface",
					Props: map[string]property.Expr{"FrameRate": lit(property.Int(1))},
				}},
				Behaviors: spec.Behaviors{CapacityRPS: 50, CPUMSPerRequest: 5, RequestBytes: 512, ResponseBytes: 32768},
			},
		},
		ModRules: property.RuleTable{
			// The deliverable frame rate is capped by the slowest link
			// environment the stream crosses — the Figure 4 mechanism
			// applied to a QoS property.
			"FrameRate": property.CapRule("FrameRate"),
		},
	}
}

// network builds: viewer -- goodLink(fps 60) -- relay -- badLink(fps 10) -- studio.
func network() *netmodel.Network {
	net := netmodel.New()
	for _, id := range []netmodel.NodeID{"viewer", "relay", "studio"} {
		props := property.Set{"HasContent": property.Bool(id == "studio")}
		if err := net.AddNode(netmodel.Node{ID: id, CPUCapacityRPS: 1000, Props: props}); err != nil {
			log.Fatal(err)
		}
	}
	// Link environments carry a FrameRate property: what the link can
	// sustain for this service (translated from bandwidth by the
	// service's credential translation).
	if err := net.AddLink(netmodel.Link{
		A: "viewer", B: "relay", LatencyMS: 5, BandwidthMbps: 100, Secure: true,
		Props: property.Set{"FrameRate": property.Int(60)},
	}); err != nil {
		log.Fatal(err)
	}
	if err := net.AddLink(netmodel.Link{
		A: "relay", B: "studio", LatencyMS: 40, BandwidthMbps: 8, Secure: true,
		Props: property.Set{"FrameRate": property.Int(10)},
	}); err != nil {
		log.Fatal(err)
	}
	return net
}

func main() {
	svc := videoService()
	if err := svc.Validate(); err != nil {
		log.Fatal(err)
	}
	net := network()
	pl := planner.New(svc, net)
	src, err := pl.PrimaryPlacement("VideoSource", "studio")
	if err != nil {
		log.Fatal(err)
	}
	pl.AddExisting(src)

	// A viewer next to the studio needs no transcoder...
	nearPl := planner.New(svc, net)
	nearPl.AddExisting(src)
	near, err := nearPl.Plan(planner.Request{Interface: "PlayerInterface", ClientNode: "studio", RateRPS: 5})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("viewer at the studio:   ", near)

	// ...but across the 10 fps link the raw stream violates the
	// player's 24 fps requirement, so the planner inserts a Transcoder
	// downstream of the bottleneck.
	far, err := pl.Plan(planner.Request{Interface: "PlayerInterface", ClientNode: "viewer", RateRPS: 5})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("viewer across the WAN:  ", far)
	fmt.Printf("  expected latency %.2f ms, %d new component(s)\n", far.ExpectedLatencyMS, far.NewComponents)
	for _, p := range far.Placements {
		if p.Component == "Transcoder" {
			fmt.Printf("  transcoder at %s: offers %s\n", p.Node, p.Offers)
		}
	}
	// Note the two transcoders: the frame-rate cap rule forbids serving
	// 24 fps from behind the 10 fps link, so one transcoder must sit on
	// the viewer's side to regenerate the rate — and the planner adds a
	// second at the studio because its reduced-fidelity output shrinks
	// the bytes crossing the 8 Mb/s bottleneck (filters placed before
	// slow links, exactly the adaptation the framework exists for).
	st := pl.Stats()
	fmt.Printf("  planner rejected %d property-invalid mappings (frame-rate rule at work)\n", st.RejectedProps)
}
