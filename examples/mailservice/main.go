// Mailservice runs the paper's full case study in one process: the
// Figure 5 topology, the Figure 1 runtime flow (register, lookup,
// generic proxy, plan, deploy, rebind), the three Figure 6 deployments,
// and live mail traffic through them — encrypted end to end, cached at
// the branch sites, chained from the partner site.
package main

import (
	"fmt"
	"log"

	"partsvc/internal/mail"
	"partsvc/internal/netmodel"
	"partsvc/internal/planner"
	"partsvc/internal/seccrypto"
	"partsvc/internal/smock"
	"partsvc/internal/spec"
	"partsvc/internal/topology"
	"partsvc/internal/transport"
)

func main() {
	tr := transport.NewInProc()
	clock := transport.NewRealClock()
	keys := seccrypto.NewKeyRing()

	// The service owner stands up the primary in New York and creates
	// accounts (per-level keys are generated at account setup).
	primary := mail.NewServer(keys, clock)
	for _, u := range []string{"Alice", "Bob", "Carol"} {
		if err := primary.CreateAccount(u); err != nil {
			log.Fatal(err)
		}
	}
	reg := smock.NewRegistry()
	if err := mail.RegisterFactories(reg, &mail.ServiceEnv{Primary: primary, Keys: keys}); err != nil {
		log.Fatal(err)
	}

	net := topology.CaseStudy()
	engine := smock.NewEngine(tr)
	wrappers := map[netmodel.NodeID]*smock.NodeWrapper{}
	for _, node := range net.Nodes() {
		w := smock.NewNodeWrapper(node.ID, tr, reg, clock)
		wrappers[node.ID] = w
		engine.RegisterWrapper(w)
	}
	addr, err := wrappers[topology.NYServer].Install(smock.InstallOrder{
		Component: spec.CompMailServer, InstanceID: "mail-primary",
	})
	if err != nil {
		log.Fatal(err)
	}

	svc := spec.MailService()
	pl := planner.New(svc, net)
	msPlace, err := pl.PrimaryPlacement(spec.CompMailServer, topology.NYServer)
	if err != nil {
		log.Fatal(err)
	}
	pl.AddExisting(msPlace)
	engine.AdoptInstance(msPlace, addr)

	// Register the service in the lookup namespace (Figure 1, step 1).
	gs := smock.NewGenericServer(svc, pl, engine)
	ln, err := tr.Serve("generic-mail", gs.Handler())
	if err != nil {
		log.Fatal(err)
	}
	lookup := smock.NewLookup()
	if err := lookup.Register(smock.Entry{
		Service: "mail", Attrs: map[string]string{"type": "mail"}, ServerAddr: ln.Addr(),
	}); err != nil {
		log.Fatal(err)
	}

	proxyFor := func(node netmodel.NodeID, user string) *smock.GenericProxy {
		p, err := smock.NewGenericProxy(tr, lookup, "mail", map[string]string{"type": "mail"})
		if err != nil {
			log.Fatal(err)
		}
		p.Interface = spec.IfaceClient
		p.Node = node
		p.User = user
		p.RateRPS = 50
		return p
	}

	// --- New York: Alice gets a direct connection to the server.
	nyProxy := proxyFor(topology.NYClient, "Alice")
	aliceNY := mail.NewClient("Alice", keys, mail.NewRemote(nyProxy))
	if _, err := aliceNY.Send("Bob", "welcome", []byte("hello from New York"), 3); err != nil {
		log.Fatal(err)
	}
	fmt.Println("NY deployment:     ", nyProxy.Deployment)

	// --- San Diego: Alice gets a local cache plus an encryptor tunnel.
	sdProxy := proxyFor(topology.SDClient, "Alice")
	aliceSD := mail.NewClient("Alice", keys, mail.NewRemote(sdProxy))
	if _, err := aliceSD.Send("Bob", "branch office", []byte("hello from San Diego"), 4); err != nil {
		log.Fatal(err)
	}
	fmt.Println("SD deployment:     ", sdProxy.Deployment)

	// --- Seattle: partner user Carol gets the restricted client chained
	// to San Diego's view.
	seaProxy := proxyFor(topology.SeaClient, "Carol")
	carol := mail.NewViewClient("Carol", 2, keys.SubRing(2), mail.NewRemote(seaProxy))
	if _, err := carol.Send("Alice", "partner note", []byte("hello from Seattle"), 2); err != nil {
		log.Fatal(err)
	}
	fmt.Println("Seattle deployment:", seaProxy.Deployment)

	// Everyone's mail arrived, transparently re-encrypted per recipient.
	bob := mail.NewClient("Bob", keys, primary)
	msgs, err := bob.Receive()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nBob's inbox (%d messages):\n", len(msgs))
	for _, m := range msgs {
		fmt.Printf("  from %-6s sens=%d  %q: %s\n", m.From, m.Sensitivity, m.Subject, m.Body)
	}
	aliceMsgs, err := aliceNY.Receive()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Alice's inbox (%d messages):\n", len(aliceMsgs))
	for _, m := range aliceMsgs {
		fmt.Printf("  from %-6s sens=%d  %q: %s\n", m.From, m.Sensitivity, m.Subject, m.Body)
	}
}
