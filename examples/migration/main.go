// Migration demonstrates replica creation and the coherence layer over
// the real runtime: a ViewMailServer replica is stood up next to a
// remote client, absorbs writes under a count-bound weak-consistency
// policy, and the paper's staleness/latency trade-off is visible in the
// pending-update counters; a late-joining replica catches up from the
// directory's history.
package main

import (
	"fmt"
	"log"

	"partsvc/internal/coherence"
	"partsvc/internal/mail"
	"partsvc/internal/seccrypto"
	"partsvc/internal/transport"
)

func main() {
	keys := seccrypto.NewKeyRing()
	clock := transport.NewRealClock()
	primary := mail.NewServer(keys, clock)
	for _, u := range []string{"Alice", "Bob"} {
		if err := primary.CreateAccount(u); err != nil {
			log.Fatal(err)
		}
	}

	// Replicate the server's state into a branch-office view with a
	// count-bound policy: at most 5 unpropagated updates.
	branch, err := mail.NewView(mail.ViewConfig{
		ID:       "vms-branch",
		Trust:    4,
		Keys:     keys.SubRing(4),
		Upstream: primary,
		Policy:   coherence.CountBound{Bound: 5},
		Clock:    clock,
	}, 1<<32)
	if err != nil {
		log.Fatal(err)
	}
	primary.Directory().Register(mail.ViewName, branch.Replica())

	alice := mail.NewClient("Alice", keys, branch)
	fmt.Println("sending 7 messages through the branch view (bound = 5):")
	for i := 1; i <= 7; i++ {
		sens := 2
		if i%2 == 0 {
			sens = 4 // mixed sensitivities; high ones shed on migration below
		}
		if _, err := alice.Send("Bob", fmt.Sprintf("msg %d", i), []byte("body"), sens); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  after send %d: view pending=%d, primary inbox=%d\n",
			i, branch.Pending(), primary.Store().InboxCount("Bob"))
	}
	fmt.Println("the bound forced one flush at send 5; sends 6-7 are still pending")

	// Explicit flush propagates the rest.
	if err := branch.Flush(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after explicit flush: primary inbox=%d\n", primary.Store().InboxCount("Bob"))

	// A replica created later catches up from the directory history —
	// this is component replication with state migration: the new
	// instance reconstructs its data view from the coherence log.
	late, err := mail.NewView(mail.ViewConfig{
		ID:       "vms-late",
		Trust:    4,
		Keys:     keys.SubRing(4),
		Upstream: primary,
		Policy:   coherence.WriteThrough{},
		Clock:    clock,
	}, 1<<33)
	if err != nil {
		log.Fatal(err)
	}
	primary.Directory().Register(mail.ViewName, late.Replica())
	fmt.Printf("late replica after catch-up: inbox=%d (matches primary)\n",
		late.Store().InboxCount("Bob"))

	// Reads at the late replica are local and correctly re-encrypted.
	bob := mail.NewClient("Bob", keys, late)
	msgs, err := bob.Receive()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("bob receives %d messages from the late replica; first body: %q\n",
		len(msgs), msgs[0].Body)

	// Component migration via custom serialization: the branch view's
	// full state snapshots into the wire format and seeds a replacement
	// instance — e.g. when the planner moves the view to another node.
	// Migrating to a less-trusted node sheds over-ceiling messages.
	snap, err := branch.Store().Snapshot()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsnapshot of the branch view: %d bytes\n", len(snap))
	moved, err := mail.NewView(mail.ViewConfig{
		ID:       "vms-moved",
		Trust:    2, // destination node is less trusted
		Keys:     keys.SubRing(2),
		Upstream: primary,
		Policy:   coherence.WriteThrough{},
		Clock:    clock,
		Snapshot: snap,
	}, 1<<34)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("migrated to a trust-2 node: inbox=%d of %d (level<=2 carried over; level-4 shed)\n",
		moved.Store().InboxCount("Bob"), branch.Store().InboxCount("Bob"))
}
