// Quickstart: declare a tiny two-component service, plan a deployment
// for a client, and run a request through the Smock runtime — the
// smallest end-to-end use of the partitionable services framework.
package main

import (
	"fmt"
	"log"

	"partsvc/internal/netmodel"
	"partsvc/internal/planner"
	"partsvc/internal/property"
	"partsvc/internal/smock"
	"partsvc/internal/spec"
	"partsvc/internal/transport"
	"partsvc/internal/wire"
)

func main() {
	// 1. Declare the service: a Greeter component implementing
	// GreetInterface, requiring nothing.
	svc := &spec.Service{
		Name:       "greeter",
		Properties: []property.Type{property.BoolType("Confidentiality")},
		Interfaces: []spec.InterfaceDecl{{Name: "GreetInterface", Properties: []string{"Confidentiality"}}},
		Components: []spec.Component{{
			Name: "Greeter",
			Implements: []spec.InterfaceSpec{{
				Name:  "GreetInterface",
				Props: map[string]property.Expr{"Confidentiality": property.Lit(property.Bool(true))},
			}},
			Behaviors: spec.Behaviors{CapacityRPS: 1000, CPUMSPerRequest: 1, RequestBytes: 64, ResponseBytes: 64},
		}},
		ModRules: property.RuleTable{},
	}
	if err := svc.Validate(); err != nil {
		log.Fatal(err)
	}

	// 2. Describe the network: two nodes on a fast link.
	net := netmodel.New()
	for _, id := range []netmodel.NodeID{"client-node", "server-node"} {
		if err := net.AddNode(netmodel.Node{ID: id, CPUCapacityRPS: 1000}); err != nil {
			log.Fatal(err)
		}
	}
	if err := net.AddLink(netmodel.Link{
		A: "client-node", B: "server-node", LatencyMS: 1, BandwidthMbps: 100, Secure: true,
		Props: property.Set{"Confidentiality": property.Bool(true)},
	}); err != nil {
		log.Fatal(err)
	}

	// 3. Register the component factory and a wrapper per node.
	tr := transport.NewInProc()
	reg := smock.NewRegistry()
	err := reg.Register("Greeter", func(ctx *smock.ActivationContext) (transport.Handler, error) {
		return transport.HandlerFunc(func(m *wire.Message) *wire.Message {
			return &wire.Message{
				Kind: wire.KindResponse, ID: m.ID,
				Body: []byte(fmt.Sprintf("hello, %s (served on %s)", m.Body, ctx.Node)),
			}
		}), nil
	})
	if err != nil {
		log.Fatal(err)
	}
	engine := smock.NewEngine(tr)
	clock := transport.NewRealClock()
	for _, node := range net.Nodes() {
		engine.RegisterWrapper(smock.NewNodeWrapper(node.ID, tr, reg, clock))
	}

	// 4. Plan and deploy for a client request.
	pl := planner.New(svc, net)
	gs := smock.NewGenericServer(svc, pl, engine)
	addr, dep, err := gs.Access(planner.Request{
		Interface: "GreetInterface", ClientNode: "client-node", RateRPS: 10,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("deployment:", dep)

	// 5. Call the deployed component.
	ep, err := tr.Dial(addr)
	if err != nil {
		log.Fatal(err)
	}
	defer ep.Close()
	resp, err := ep.Call(&wire.Message{Kind: wire.KindRequest, Method: "greet", Body: []byte("world")})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("response:", string(resp.Body))
}
