// Command topogen generates and prints network topologies: the Figure 5
// case study or BRITE-like synthetic graphs (Waxman, Barabási–Albert).
//
// Usage:
//
//	topogen -case-study
//	topogen -model waxman -n 30 -seed 42
//	topogen -model ba -n 30 -m 2 -seed 42
package main

import (
	"flag"
	"fmt"
	"os"

	"partsvc/internal/netmodel"
	"partsvc/internal/topology"
)

func main() {
	caseStudy := flag.Bool("case-study", false, "emit the Figure 5 case-study topology")
	model := flag.String("model", "waxman", "waxman | ba")
	n := flag.Int("n", 30, "node count")
	m := flag.Int("m", 2, "attachment degree (ba)")
	seed := flag.Int64("seed", 42, "generator seed")
	flag.Parse()

	var net *netmodel.Network
	var err error
	switch {
	case *caseStudy:
		net = topology.CaseStudy()
	case *model == "waxman":
		net, err = topology.Waxman(topology.DefaultWaxman(*n, *seed))
	case *model == "ba":
		net, err = topology.BarabasiAlbert(*n, *m, *seed)
	default:
		err = fmt.Errorf("unknown model %q", *model)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "topogen:", err)
		os.Exit(1)
	}

	fmt.Printf("# %d nodes, %d links\n", net.NumNodes(), net.NumLinks())
	for _, node := range net.Nodes() {
		fmt.Printf("node %-8s site=%-10s props={%s}\n", node.ID, node.Site, node.Props)
	}
	for _, l := range net.Links() {
		sec := "insecure"
		if l.Secure {
			sec = "secure"
		}
		fmt.Printf("link %-8s %-8s %6.1fms %6.1fMb/s %s\n", l.A, l.B, l.LatencyMS, l.BandwidthMbps, sec)
	}
}
