package main

import (
	"fmt"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"partsvc/internal/transport"
	"partsvc/internal/wire"
)

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "mailbench: "+format+"\n", args...)
	os.Exit(1)
}

// runMultiCore is the A9 harness behind `mailbench -multicore`: the
// live RPC data plane (no simulator) swept over GOMAXPROCS ×
// transport × connections × caller populations, printing aggregate
// req/s per cell. The caller axis separates the two regimes that
// matter: 1 caller is the latency-bound case where the ring's
// syscall elimination shows whole (nothing amortizes), 64 callers is
// the throughput-bound case where the MPSC writer's batching is the
// contended path. The same grid backs BenchmarkRPCMultiCore; this
// mode exists so the table can be regenerated (and uploaded as a CI
// artifact) without the testing harness.
func runMultiCore(callerList []int, msgBytes int, dur time.Duration, gomaxprocs []int) {
	transports := []struct {
		name string
		mk   func() transport.Transport
	}{
		{"inproc", func() transport.Transport { return transport.NewInProc() }},
		{"tcp", func() transport.Transport {
			t := transport.NewTCP()
			t.ZeroCopyResponses = true
			return t
		}},
		{"ring", func() transport.Transport {
			t := transport.NewTCP()
			t.Ring = true
			t.ZeroCopyResponses = true
			return t
		}},
	}
	h := transport.HandlerFunc(func(m *wire.Message) *wire.Message {
		return &wire.Message{Kind: wire.KindResponse, ID: m.ID, Body: m.Body}
	})
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)

	fmt.Printf("A9 multi-core RPC scale-out: %dB echo, %v per cell (host: %d CPUs)\n\n",
		msgBytes, dur, runtime.NumCPU())
	fmt.Printf("%-12s %-8s %-7s %-9s %12s %12s\n", "gomaxprocs", "transport", "conns", "callers", "req/s", "ns/op")
	for _, gmp := range gomaxprocs {
		for _, tc := range transports {
			for _, conns := range []int{1, 4} {
				for _, callers := range callerList {
					runtime.GOMAXPROCS(gmp)
					reqs := runCell(tc.mk(), h, callers, conns, msgBytes, dur)
					runtime.GOMAXPROCS(prev)
					nsPerOp := float64(0)
					if reqs > 0 {
						nsPerOp = float64(dur.Nanoseconds()) / float64(reqs)
					}
					fmt.Printf("%-12d %-8s %-7d %-9d %12.0f %12.0f\n",
						gmp, tc.name, conns, callers, float64(reqs)/dur.Seconds(), nsPerOp)
				}
			}
		}
	}
}

// runCell measures one grid cell: aggregate completed echo calls over
// dur with the caller population spread round-robin across conns
// connections of one transport.
func runCell(tr transport.Transport, h transport.Handler, callers, conns, msgBytes int, dur time.Duration) int64 {
	ln, err := tr.Serve("", h)
	if err != nil {
		fatalf("multicore: serve: %v", err)
	}
	defer ln.Close()
	eps := make([]transport.Endpoint, conns)
	for i := range eps {
		if eps[i], err = tr.Dial(ln.Addr()); err != nil {
			fatalf("multicore: dial: %v", err)
		}
		defer eps[i].Close()
	}
	body := make([]byte, msgBytes)
	var done atomic.Bool
	var completed atomic.Int64
	var wg sync.WaitGroup
	for c := 0; c < callers; c++ {
		ep := eps[c%conns]
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !done.Load() {
				resp, err := ep.Call(&wire.Message{Kind: wire.KindRequest, Method: "echo", Body: body})
				if err != nil {
					if !done.Load() {
						fatalf("multicore: call: %v", err)
					}
					return
				}
				resp.Release()
				completed.Add(1)
			}
		}()
	}
	time.Sleep(dur)
	done.Store(true)
	wg.Wait()
	return completed.Load()
}
