// Command mailbench regenerates the paper's evaluation artifacts: the
// Figure 7 latency table (nine scenarios at 1..5 clients over the
// deterministic network simulator), the Section 4.2 one-time cost
// breakdown, and the ablation sweeps indexed in DESIGN.md.
//
// Usage:
//
//	mailbench                 # Figure 7 table
//	mailbench -onetime        # one-time cost breakdown (E7)
//	mailbench -sweep          # coherence policy sweep (A2)
//	mailbench -scaling        # planner scaling on Waxman topologies (A3)
//	mailbench -clients 8      # widen the client sweep
package main

import (
	"flag"
	"fmt"
	"os"

	"partsvc/internal/bench"
)

func main() {
	onetime := flag.Bool("onetime", false, "measure one-time deployment costs (E7)")
	sweep := flag.Bool("sweep", false, "coherence policy sweep (A2)")
	scaling := flag.Bool("scaling", false, "planner scaling sweep (A3)")
	clients := flag.Int("clients", 0, "override the maximum client count")
	sends := flag.Int("sends", 0, "override sends per client")
	flag.Parse()

	cfg := bench.DefaultConfig()
	if *clients > 0 {
		cfg.MaxClients = *clients
	}
	if *sends > 0 {
		cfg.SendsPerClient = *sends
	}

	switch {
	case *onetime:
		costs, err := bench.MeasureOneTimeCosts()
		if err != nil {
			fmt.Fprintln(os.Stderr, "mailbench:", err)
			os.Exit(1)
		}
		fmt.Println("One-time costs for the San Diego deployment (paper: ~10 s on 2002 hardware):")
		fmt.Print(bench.OneTimeTable(costs))
	case *sweep:
		fmt.Printf("Coherence policy sweep, %d clients (ablation A2):\n", 2)
		fmt.Print(bench.BoundSweepTable(bench.CoherenceBoundSweep(cfg, 2)))
	case *scaling:
		rows, err := bench.PlannerScaling([]int{8, 12, 16, 20}, 7)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mailbench:", err)
			os.Exit(1)
		}
		fmt.Println("Planner scaling on Waxman topologies (ablation A3):")
		fmt.Print(bench.ScalingTable(rows))
	default:
		fmt.Printf("Figure 7: average client-perceived send latency (ms), %d sends/client:\n",
			cfg.SendsPerClient)
		fmt.Print(bench.Fig7Table(bench.RunFig7(cfg)))
		fmt.Println("\nGroups (paper): 1 = {SF,SS0,DF,DS0}  2 = {SS1000,DS1000}  3 = {SS500,DS500}  4 = {SS}")
	}
}
