// Command mailbench regenerates the paper's evaluation artifacts: the
// Figure 7 latency table (nine scenarios over the deterministic network
// simulator), the Section 4.2 one-time cost breakdown, and the ablation
// sweeps indexed in DESIGN.md.
//
// Usage:
//
//	mailbench                   # Figure 7 table
//	mailbench -onetime          # one-time cost breakdown (E7)
//	mailbench -fig8             # live adaptation under scripted faults (A7)
//	mailbench -sweep            # coherence policy sweep (A2)
//	mailbench -scaling          # planner scaling on Waxman topologies (A3)
//	mailbench -clients 8        # widen the client sweep (1..8 per scenario)
//	mailbench -counts 1,100,10000   # explicit client counts instead of 1..N
//	mailbench -workers 4        # scenario-sweep parallelism (default GOMAXPROCS)
//	mailbench -simstats         # print simulator scheduler counters
//	mailbench -trace DS500      # span tree + per-stage breakdown of one scenario
//	mailbench -multicore        # live RPC scale-out: GOMAXPROCS × transport × conns (A9)
//	mailbench -fleet            # session-sharded fleet control plane (A10)
//	mailbench -solver           # solver backend scaling + repair-vs-fresh curve (A11)
//	mailbench -solver -solver-sizes 8,32,128   # explicit Waxman sizes
//	mailbench -solver -timing   # add wall-clock plan latency (non-deterministic)
//	mailbench -fleet -fleet-sessions 400 -fleet-nodes 32   # reduced scale (CI)
//	mailbench -fleet -timing    # add wall-clock wave latency (non-deterministic)
//	mailbench -http :8080 ...   # expose /metrics (Prometheus) while the bench runs
//
// Scenario runs fan out over a bounded worker pool; output is
// byte-identical for every -workers value (each scenario is its own
// deterministic simulation with a derived RNG seed). -procs selects the
// goroutine-process simulation engine instead of the default callback
// fast path — same rows, useful for engine A/B measurements.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"partsvc/internal/api"
	"partsvc/internal/bench"
	"partsvc/internal/metrics"
	"partsvc/internal/trace"
)

func main() {
	onetime := flag.Bool("onetime", false, "measure one-time deployment costs (E7)")
	fig8 := flag.Bool("fig8", false, "live adaptation under scripted faults (A7)")
	sweep := flag.Bool("sweep", false, "coherence policy sweep (A2)")
	scaling := flag.Bool("scaling", false, "planner scaling sweep (A3)")
	clients := flag.Int("clients", 0, "override the maximum client count")
	counts := flag.String("counts", "", "comma-separated client counts per scenario (overrides -clients)")
	sends := flag.Int("sends", 0, "override sends per client")
	workers := flag.Int("workers", 0, "parallel scenario workers (0 = GOMAXPROCS)")
	procs := flag.Bool("procs", false, "use the goroutine-process simulation engine (slow path)")
	simstats := flag.Bool("simstats", false, "print simulator scheduler counters after the run")
	traceSc := flag.String("trace", "", "trace one scenario: print its span tree and per-stage latency breakdown")
	multicore := flag.Bool("multicore", false, "live RPC scale-out sweep: GOMAXPROCS × transport × connections (A9)")
	callers := flag.String("callers", "1,64", "comma-separated caller counts for -multicore")
	cellDur := flag.Duration("dur", 2*time.Second, "measurement time per -multicore cell")
	gmpList := flag.String("gomaxprocs", "1,2,4", "comma-separated GOMAXPROCS values for -multicore")
	fleetRun := flag.Bool("fleet", false, "session-sharded fleet control plane benchmark (A10)")
	solverRun := flag.Bool("solver", false, "solver backend scaling + repair-vs-fresh curve (A11)")
	solverSizes := flag.String("solver-sizes", "", "comma-separated Waxman sizes for -solver (default 8,16,32,64,128,256)")
	fleetSessions := flag.Int("fleet-sessions", 0, "override -fleet session count (default 5000)")
	fleetNodes := flag.Int("fleet-nodes", 0, "override -fleet Waxman topology size (default 128)")
	fleetSites := flag.Int("fleet-sites", 0, "override -fleet client site count (default 8)")
	fleetEvents := flag.Int("fleet-events", 0, "override -fleet scripted link event count (default 4)")
	fleetShards := flag.Int("fleet-shards", 0, "override -fleet shard count (default 8)")
	timing := flag.Bool("timing", false, "add wall-clock wave latency to -fleet output (non-deterministic)")
	httpAddr := flag.String("http", "", "serve the operational API (/metrics, /v1/events) for this address while the bench runs")
	flag.Parse()

	if *httpAddr != "" {
		srv := api.New(api.Config{Addr: *httpAddr}, api.Control{})
		if err := srv.Start(); err != nil {
			fmt.Fprintln(os.Stderr, "mailbench:", err)
			os.Exit(1)
		}
		fmt.Printf("operational API on http://%s while the bench runs\n", srv.Addr())
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			srv.Shutdown(ctx) //nolint:errcheck // exiting anyway
		}()
	}

	cfg := bench.DefaultConfig()
	if *clients > 0 {
		cfg.MaxClients = *clients
	}
	if *counts != "" {
		list, err := parseCounts(*counts)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mailbench:", err)
			os.Exit(1)
		}
		cfg.ClientCounts = list
	}
	if *sends > 0 {
		cfg.SendsPerClient = *sends
	}
	cfg.Workers = *workers
	cfg.Procs = *procs

	start := time.Now()
	switch {
	case *onetime:
		costs, err := bench.MeasureOneTimeCosts()
		if err != nil {
			fmt.Fprintln(os.Stderr, "mailbench:", err)
			os.Exit(1)
		}
		fmt.Println("One-time costs for the San Diego deployment (paper: ~10 s on 2002 hardware):")
		fmt.Print(bench.OneTimeTable(costs))
	case *fig8:
		f8 := bench.DefaultFig8Config()
		f8.Workers = *workers
		fmt.Printf("Adaptation under scripted faults (A7): fault at %.0fms, %.0fms run, virtual clock:\n",
			f8.FaultAtMS, f8.DurationMS)
		fmt.Print(bench.Fig8Table(bench.RunFig8(f8)))
		fmt.Println("\ndetect = fault -> replan (node crashes pay the probe suspicion window);")
		fmt.Println("cutover = replan -> bindings flipped (the model deploys instantaneously).")
	case *sweep:
		fmt.Printf("Coherence policy sweep, %d clients (ablation A2):\n", 2)
		fmt.Print(bench.BoundSweepTable(bench.CoherenceBoundSweep(cfg, 2)))
	case *scaling:
		rows, err := bench.PlannerScaling([]int{8, 12, 16, 20}, 7)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mailbench:", err)
			os.Exit(1)
		}
		fmt.Println("Planner scaling on Waxman topologies (ablation A3):")
		fmt.Print(bench.ScalingTable(rows))
	case *solverRun:
		ac := bench.DefaultA11Config()
		if *solverSizes != "" {
			list, err := parseCounts(*solverSizes)
			if err != nil {
				fmt.Fprintln(os.Stderr, "mailbench:", err)
				os.Exit(1)
			}
			ac.Sizes = list
		}
		ac.Workers = *workers
		ac.Timing = *timing
		res, err := bench.RunA11(ac)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mailbench:", err)
			os.Exit(1)
		}
		fmt.Printf("Solver backend scaling on Waxman topologies (A11; exhaustive capped at %d nodes):\n", ac.ExhaustiveMax)
		fmt.Print(bench.A11ScalingTable(res))
		fmt.Println("\nIncremental repair vs fresh solve under the Figure-8 fault kinds (A11):")
		fmt.Print(bench.A11RepairTable(res))
	case *fleetRun:
		fc := bench.DefaultFleetConfig()
		if *fleetSessions > 0 {
			fc.Sessions = *fleetSessions
		}
		if *fleetNodes > 0 {
			fc.Nodes = *fleetNodes
		}
		if *fleetSites > 0 {
			fc.Sites = *fleetSites
		}
		if *fleetEvents > 0 {
			fc.Events = *fleetEvents
		}
		if *fleetShards > 0 {
			fc.Shards = *fleetShards
		}
		fc.Workers = *workers
		fc.Timing = *timing
		fmt.Printf("Fleet control plane (A10): %d sessions, %d shards, %d-node Waxman, %d link events:\n",
			fc.Sessions, fc.Shards, fc.Nodes, fc.Events)
		res, err := bench.RunFleet(fc)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mailbench:", err)
			os.Exit(1)
		}
		fmt.Print(bench.FleetTable(res))
	case *multicore:
		gmp, err := parseCounts(*gmpList)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mailbench:", err)
			os.Exit(1)
		}
		callerList, err := parseCounts(*callers)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mailbench:", err)
			os.Exit(1)
		}
		runMultiCore(callerList, 256, *cellDur, gmp)
	case *traceSc != "":
		if *sends == 0 {
			cfg.SendsPerClient = 5 // keep the printed span tree readable
		}
		if err := runTraced(cfg, *traceSc); err != nil {
			fmt.Fprintln(os.Stderr, "mailbench:", err)
			os.Exit(1)
		}
	default:
		fmt.Printf("Figure 7: average client-perceived send latency (ms), %d sends/client:\n",
			cfg.SendsPerClient)
		rows, all := bench.RunFig7Stats(cfg)
		fmt.Print(bench.Fig7Table(rows))
		fmt.Println("\nGroups (paper): 1 = {SF,SS0,DF,DS0}  2 = {SS1000,DS1000}  3 = {SS500,DS500}  4 = {SS}")
		fmt.Printf("Grid: %s\n", all.Summary())
	}
	if *simstats {
		elapsed := time.Since(start)
		events, callbacks, switches := bench.SimCounters()
		fmt.Printf("\nSimulator: %d events (%d callback fast-path, %d process switches) in %v — %.0f events/sec, %d workers\n",
			events, callbacks, switches, elapsed.Round(time.Millisecond),
			metrics.PerSec(events, elapsed), bench.Workers(cfg.Workers))
	}
}

// runTraced traces one scenario at two clients on the virtual clock
// and prints the per-stage latency breakdown (EXPERIMENTS.md A6) plus
// the full span tree — byte-identical on every run.
func runTraced(cfg bench.Config, name string) error {
	var sc bench.Scenario
	found := false
	for _, s := range bench.Scenarios() {
		if s.Name == name {
			sc, found = s, true
		}
	}
	if !found {
		return fmt.Errorf("unknown scenario %q (see Scenarios in the Figure 7 table)", name)
	}
	row, spans := bench.RunScenarioTraced(cfg, sc, 2)
	fmt.Printf("Traced scenario %s: %d clients, %d sends/client, avg %.2f ms (%d spans, virtual clock):\n",
		row.Scenario, row.Clients, cfg.SendsPerClient, row.AvgMS, len(spans))
	fmt.Print(bench.SpanBreakdown(spans))
	fmt.Println()
	fmt.Print(trace.Tree(spans))
	return nil
}

// parseCounts parses "1,100,10000" into client counts.
func parseCounts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad -counts entry %q", part)
		}
		out = append(out, n)
	}
	return out, nil
}
