// Command promlint validates Prometheus text-format exposition (the
// 0.0.4 format /metrics serves): comment grammar, sample syntax,
// duplicate series, and histogram invariants (+Inf bucket present,
// cumulative monotone, _count agreement). CI pipes a live scrape
// through it:
//
//	curl -fsS localhost:8080/metrics | promlint
//	promlint -f scrape.txt
//
// Exit status 0 means lint-clean; 1 prints the first violation.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"partsvc/internal/metrics"
)

func main() {
	path := flag.String("f", "", "exposition file to lint (default: stdin)")
	flag.Parse()

	var in io.Reader = os.Stdin
	name := "<stdin>"
	if *path != "" {
		f, err := os.Open(*path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "promlint:", err)
			os.Exit(1)
		}
		defer f.Close()
		in, name = f, *path
	}
	if err := metrics.LintPrometheusText(in); err != nil {
		fmt.Fprintf(os.Stderr, "promlint: %s: %v\n", name, err)
		os.Exit(1)
	}
	fmt.Println("promlint: OK")
}
