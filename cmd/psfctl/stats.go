package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"partsvc/internal/adapt"
	"partsvc/internal/api"
	"partsvc/internal/bench"
	"partsvc/internal/coherence"
	"partsvc/internal/fleet"
	"partsvc/internal/mail"
	"partsvc/internal/metrics"
	"partsvc/internal/netmon"
	"partsvc/internal/planner"
	"partsvc/internal/seccrypto"
	"partsvc/internal/sim"
	"partsvc/internal/spec"
	"partsvc/internal/topology"
	"partsvc/internal/trace"
	"partsvc/internal/transport"
	"partsvc/internal/wire"
)

// registerPoolSection exposes the process-wide wire buffer pool in reg.
// The pool is shared by every transport in the process, which is why it
// is a section of its own rather than part of any transport's counters.
func registerPoolSection(reg *metrics.Registry) {
	reg.RegisterSection("wire_pool", func() []metrics.KV {
		p := wire.SnapshotPool()
		return []metrics.KV{
			metrics.KVf("hits", "%d", p.Hits),
			metrics.KVf("misses", "%d", p.Misses),
			metrics.KVf("hit_rate", "%.1f%%", 100*p.HitRate()),
		}
	})
}

// registerFleetSection drives the session-sharded fleet control plane
// through a relay kill/recovery/flap cycle on the case-study topology
// (virtual clock) and exposes the multi-session counters: sessions per
// shard, replan waves with sessions-per-wave quantiles, rate-limited
// cutovers, and hysteresis-suppressed flaps. The fleet.* counters and
// wave histograms land in reg as a side effect and render alongside.
func registerFleetSection(reg *metrics.Registry) {
	env := sim.NewEnv()
	net := topology.CaseStudy()
	mon := netmon.New(net)
	mgr := fleet.New(fleet.Config{
		Shards: 4, Workers: 2, DebounceMS: 20,
		CutoverRatePerSec: 1, CutoverBurst: 1, HysteresisMS: 60000,
	}, spec.MailService(), net, mon, adapt.NewSimScheduler(env))
	if _, err := mgr.AddPrimary(spec.CompMailServer, topology.NYServer); err != nil {
		panic(err) // static case-study construction; an error is a bug
	}
	for i := 0; i < 8; i++ {
		req := planner.Request{Interface: spec.IfaceClient, ClientNode: topology.SDClient, User: "Alice", RateRPS: 50}
		if i%2 == 1 {
			req.ClientNode, req.User = topology.SeaClient, "Carol"
		}
		mgr.AddSession(fmt.Sprintf("fleet-s%d", i), req)
	}
	mgr.Bootstrap()
	mgr.Start()
	// Relay down/up/down/up: the first recovery rewires Seattle's chains
	// under the token bucket; the second outage forces repairs; the
	// second recovery inside the hysteresis window is suppressed as flap.
	env.At(100, func() { _ = mon.ReportNodeDown(topology.SDGateway) })
	env.At(10000, func() { _ = mon.ReportNodeUp(topology.SDGateway) })
	env.At(20000, func() { _ = mon.ReportNodeDown(topology.SDGateway) })
	env.At(30000, func() { _ = mon.ReportNodeUp(topology.SDGateway) })
	env.RunUntil(60000)
	mgr.Stop()
	env.Stop()

	reg.RegisterSection("fleet", func() []metrics.KV {
		shards := mgr.SessionsPerShard()
		parts := make([]string, len(shards))
		for i, c := range shards {
			parts[i] = fmt.Sprint(c)
		}
		waveSessions := reg.Histogram("fleet.wave_sessions")
		waveSpan := reg.Histogram("fleet.wave_span_ms")
		return []metrics.KV{
			metrics.KVf("sessions", "%d", len(mgr.Sessions())),
			metrics.KVf("sessions_per_shard", "[%s]", strings.Join(parts, " ")),
			metrics.KVf("instances_shared", "%d", mgr.Instances()),
			metrics.KVf("replan_waves", "%d", reg.Counter("fleet.waves").Load()),
			metrics.KVf("sessions_per_wave_p50", "%.0f", waveSessions.Quantile(0.50)),
			metrics.KVf("sessions_per_wave_p99", "%.0f", waveSessions.Quantile(0.99)),
			metrics.KVf("wave_span_ms_p50", "%.0f", waveSpan.Quantile(0.50)),
			metrics.KVf("wave_span_ms_p99", "%.0f", waveSpan.Quantile(0.99)),
			metrics.KVf("cutovers_rate_limited", "%d", reg.Counter("fleet.cutovers_rate_limited").Load()),
			metrics.KVf("flaps_suppressed", "%d", reg.Counter("fleet.flaps_suppressed").Load()),
		}
	})
}

// mailStack is the loopback deployment the stats and trace subcommands
// drive: MailClient -> ViewMailServer -> Encryptor tunnel -> TCP ->
// Decryptor -> primary MailServer — the paper's cached deployment
// (Figure 5) collapsed onto 127.0.0.1.
type mailStack struct {
	tr      *transport.TCP
	ln      transport.Listener
	ep      transport.Endpoint
	primary *mail.Server
	view    *mail.View
	client  *mail.Client
}

func newMailStack(policy coherence.Policy) (*mailStack, error) {
	keys := seccrypto.NewKeyRing()
	clock := transport.NewRealClock()
	primary := mail.NewServer(keys, clock)
	for _, u := range []string{"Alice", "Bob"} {
		if err := primary.CreateAccount(u); err != nil {
			return nil, err
		}
	}
	key, err := mail.NewChannelKey()
	if err != nil {
		return nil, err
	}
	tr := transport.NewTCP()
	ln, err := tr.Serve("127.0.0.1:0", mail.NewDecryptorHandler(mail.NewHandler(primary), key))
	if err != nil {
		return nil, err
	}
	ep, err := tr.Dial(ln.Addr())
	if err != nil {
		ln.Close()
		return nil, err
	}
	view, err := mail.NewView(mail.ViewConfig{
		ID: "psfctl-view", Trust: 4, Keys: keys.SubRing(4),
		Upstream: mail.NewRemote(mail.NewEncryptorEndpoint(ep, key)),
		Policy:   policy, Clock: clock,
	}, 1<<32)
	if err != nil {
		ep.Close()
		ln.Close()
		return nil, err
	}
	return &mailStack{
		tr: tr, ln: ln, ep: ep, primary: primary, view: view,
		client: mail.NewClient("Alice", keys, view),
	}, nil
}

func (s *mailStack) Close() {
	s.ep.Close()
	s.ln.Close()
}

// runStats exercises every instrumented subsystem once — a Figure 6
// plan, a traced TCP loopback mail exchange, and a Figure 7 scenario —
// and renders the unified registry: planner, transport, sim, wire-pool,
// and per-method RPC latency sections in one table. With -http it then
// serves the registry as JSON at /metrics and the span ring at /trace.
func runStats(args []string) error {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	httpAddr := fs.String("http", "", "serve /metrics (JSON) and /trace on this address after printing")
	sends := fs.Int("sends", 32, "mail sends on the TCP loopback stack")
	if err := fs.Parse(args); err != nil {
		return err
	}
	trace.SetEnabled(true)
	defer trace.SetEnabled(false)
	reg := metrics.DefaultRegistry

	// Planner: the Figure 6 San Diego request against the NY primary.
	pl := planner.New(spec.MailService(), topology.CaseStudy())
	ms, err := pl.PrimaryPlacement(spec.CompMailServer, topology.NYServer)
	if err != nil {
		return err
	}
	pl.AddExisting(ms)
	pl.RegisterMetrics(reg, "planner")
	pl.RegisterSolverMetrics(reg, "solver")
	if _, err := pl.Plan(planner.Request{
		Interface: spec.IfaceClient, ClientNode: topology.SDClient, User: "Alice", RateRPS: 50,
	}); err != nil {
		return err
	}
	// Same request through the constraint-solver backend, so the solver
	// section (solves, propagations, backtracks) renders non-zero.
	if _, err := pl.PlanSolver(planner.Request{
		Interface: spec.IfaceClient, ClientNode: topology.SDClient, User: "Alice", RateRPS: 50,
	}); err != nil {
		return err
	}

	// Transport + RPC histograms: traced sends through the TCP stack.
	stack, err := newMailStack(coherence.WriteThrough{})
	if err != nil {
		return err
	}
	defer stack.Close()
	reg.RegisterSection("transport", func() []metrics.KV { return stack.tr.Stats().KVs() })
	reg.RegisterSection("coherence", func() []metrics.KV {
		st := stack.primary.Directory().Stats()
		return []metrics.KV{
			metrics.KVf("publishes", "%d", st.Publishes),
			metrics.KVf("updates_published", "%d", st.UpdatesPublished),
			metrics.KVf("replicas_updated", "%d", st.ReplicasUpdated),
		}
	})
	body := make([]byte, 1024)
	for i := 0; i < *sends; i++ {
		if _, err := stack.client.Send("Bob", "stats probe", body, 2); err != nil {
			return err
		}
	}
	if _, err := stack.client.Receive(); err != nil {
		return err
	}

	// Simulator: one small Figure 7 scenario bumps the sim counters.
	bench.RegisterSimMetrics(reg)
	cfg := bench.DefaultConfig()
	cfg.SendsPerClient = 20
	bench.RunScenario(cfg, bench.Scenarios()[1], 4)

	registerFleetSection(reg)
	registerPoolSection(reg)
	fmt.Print(reg.Render())

	if *httpAddr != "" {
		// The observability mux comes from internal/api: Prometheus text
		// at /metrics, the old JSON form at /v1/metrics.json, the span
		// ring at /v1/trace — and the process drains cleanly on SIGINT/
		// SIGTERM instead of dying mid-scrape.
		srv := api.New(api.Config{Addr: *httpAddr, Registry: reg}, api.Control{})
		if err := srv.Start(); err != nil {
			return err
		}
		fmt.Printf("serving /metrics (Prometheus), /v1/metrics.json, /v1/trace, /v1/events on %s\n", srv.Addr())
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		defer stop()
		<-ctx.Done()
		fmt.Println("\nshutting down")
		sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		return srv.Shutdown(sctx)
	}
	return nil
}

// runTrace prints the span tree of one end-to-end mail send. By
// default it drives the TCP loopback stack on the wall clock; with
// -sim it runs a Figure 7 scenario on the virtual clock and adds the
// per-stage latency breakdown (byte-identical across repeated runs).
func runTrace(args []string) error {
	fs := flag.NewFlagSet("trace", flag.ExitOnError)
	simMode := fs.Bool("sim", false, "trace a simulated Figure 7 scenario instead of the TCP stack")
	scenario := fs.String("scenario", "DS500", "scenario name for -sim")
	clients := fs.Int("clients", 2, "client count for -sim")
	sendsPer := fs.Int("sends", 5, "sends per client for -sim")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *simMode {
		cfg := bench.DefaultConfig()
		cfg.SendsPerClient = *sendsPer
		var sc bench.Scenario
		found := false
		for _, s := range bench.Scenarios() {
			if s.Name == *scenario {
				sc, found = s, true
			}
		}
		if !found {
			return fmt.Errorf("unknown scenario %q", *scenario)
		}
		row, spans := bench.RunScenarioTraced(cfg, sc, *clients)
		fmt.Printf("scenario %s, %d clients: avg %.2f ms over %d sends (%d spans, virtual clock)\n",
			row.Scenario, row.Clients, row.AvgMS, row.Sends, len(spans))
		fmt.Print(bench.SpanBreakdown(spans))
		fmt.Print(trace.Tree(spans))
		return nil
	}

	trace.SetEnabled(true)
	defer trace.SetEnabled(false)
	trace.Default.Reset()
	stack, err := newMailStack(coherence.WriteThrough{})
	if err != nil {
		return err
	}
	defer stack.Close()
	ctx, root := trace.Start(context.Background(), "client.send")
	if _, err := stack.client.SendCtx(ctx, "Bob", "traced send", []byte("hello"), 2); err != nil {
		return err
	}
	root.End()
	spans := trace.Default.Spans()
	fmt.Printf("one traced mail send over TCP loopback (%d spans):\n", len(spans))
	fmt.Print(trace.Tree(spans))
	return nil
}
