package main

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"partsvc/internal/api"
)

// streamEvents consumes /v1/events from an operational API server and
// calls onEvent for every decoded frame, reconnecting with
// Last-Event-ID on connection loss until ctx is canceled or the server
// says bye. The psfctl live views are thin clients of this stream —
// the same one curl sees.
func streamEvents(ctx context.Context, base, token, query string, onEvent func(api.Event)) error {
	var lastID uint64
	for {
		err := streamOnce(ctx, base, token, query, &lastID, onEvent)
		switch {
		case ctx.Err() != nil:
			return nil
		case err == errServerBye:
			return nil
		case err != nil:
			// Transient: back off and resume from the last seen id.
			select {
			case <-ctx.Done():
				return nil
			case <-time.After(500 * time.Millisecond):
			}
		}
	}
}

var errServerBye = errors.New("server sent bye")

func streamOnce(ctx context.Context, base, token, query string, lastID *uint64, onEvent func(api.Event)) error {
	url := strings.TrimSuffix(base, "/") + "/v1/events"
	if query != "" {
		url += "?" + strings.TrimPrefix(query, "?")
	}
	req, err := http.NewRequestWithContext(ctx, "GET", url, nil)
	if err != nil {
		return err
	}
	if token != "" {
		req.Header.Set("Authorization", "Bearer "+token)
	}
	if *lastID > 0 {
		req.Header.Set("Last-Event-ID", strconv.FormatUint(*lastID, 10))
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("events stream: %s", resp.Status)
	}

	br := bufio.NewReader(resp.Body)
	var event, data string
	for {
		line, err := br.ReadString('\n')
		if err != nil {
			return err
		}
		line = strings.TrimRight(line, "\n")
		switch {
		case line == "":
			if event == "bye" {
				return errServerBye
			}
			if data != "" {
				var e api.Event
				if json.Unmarshal([]byte(data), &e) == nil {
					if e.Seq > *lastID {
						*lastID = e.Seq
					}
					onEvent(e)
				}
			}
			event, data = "", ""
		case strings.HasPrefix(line, "event: "):
			event = line[len("event: "):]
		case strings.HasPrefix(line, "data: "):
			data = line[len("data: "):]
		}
	}
}

// printEvent renders one control-plane event for the live views:
//
//	[  123ms] adapt  carol     stage: flip
//	[  456ms] fleet  wave 3    wave-close: sessions=8 memo_hits=5 ...
func printEvent(e api.Event) {
	scope := e.Session
	if scope == "" && e.Wave > 0 {
		scope = fmt.Sprintf("wave %d", e.Wave)
	}
	line := fmt.Sprintf("[%7.0fms] %-5s %-10s %s", e.AtMS, e.Source, scope, e.Kind)
	if e.Detail != "" {
		line += ": " + e.Detail
	}
	fmt.Println(line)
}
