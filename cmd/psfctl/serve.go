package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"partsvc/internal/adapt"
	"partsvc/internal/api"
	"partsvc/internal/metrics"
	"partsvc/internal/netmodel"
	"partsvc/internal/planner"
	"partsvc/internal/spec"
	"partsvc/internal/topology"
)

// runServe deploys the case study in-process and serves the
// operational API over it: SSE events, Prometheus /metrics, and the
// management endpoints (plan, deploy, adapt, kill) — a standing
// server to curl against instead of a scripted demo.
func runServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:8080", "listen address")
	token := fs.String("token", "", "bearer token gating the management endpoints")
	pprofOn := fs.Bool("pprof", false, "mount /debug/pprof/")
	echo := fs.Bool("echo", false, "also print controller events to stdout")
	if err := fs.Parse(args); err != nil {
		return err
	}

	w, err := newAdaptWorld()
	if err != nil {
		return err
	}
	// Warm up San Diego so later Seattle sessions anchor onto the sd-2
	// view — the case study's incremental state.
	warm := planner.Request{Interface: spec.IfaceClient, ClientNode: topology.SDClient, User: "Alice", RateRPS: 50}
	if _, _, err := w.gs.Access(warm); err != nil {
		return err
	}

	ctrl := adapt.New(adapt.Config{
		DebounceMS: 20, ProbeIntervalMS: 250, ProbeTimeoutMS: 500,
		SuspicionThreshold: 2, DrainMS: 40,
	}, w.mon, &adapt.EngineExecutor{
		Server: w.gs, Engine: w.engine, Lookup: w.lookup,
		Transport: w.tr, Spec: spec.MailService(),
	}, adapt.NewRealScheduler())
	ctrl.SetProber(adapt.NewTransportProber(w.tr), w.engine.ControlAddrs)

	registerPoolSection(metrics.DefaultRegistry)
	w.gs.Planner().RegisterSolverMetrics(metrics.DefaultRegistry, "solver")
	srv := api.New(api.Config{
		Addr: *addr, Token: *token, EnablePprof: *pprofOn,
	}, api.Control{
		Spec: spec.MailService(), Server: w.gs, Engine: w.engine,
		Lookup: w.lookup, Controller: ctrl, Mon: w.mon,
		KillNode: func(id netmodel.NodeID) error {
			wr, ok := w.wrappers[id]
			if !ok {
				return fmt.Errorf("no wrapper for %s", id)
			}
			wr.Close()
			return nil
		},
	})
	var extra func(adapt.Event)
	if *echo {
		extra = func(e adapt.Event) { fmt.Println(e) }
	}
	srv.AttachController(ctrl, extra)
	ctrl.Start()
	defer ctrl.Stop()
	if err := srv.Start(); err != nil {
		return err
	}

	fmt.Printf("operational API on http://%s\n", srv.Addr())
	fmt.Println("  GET  /healthz /metrics /v1/metrics.json /v1/trace /v1/events (SSE)")
	fmt.Println("  GET  /v1/spec /v1/sessions /v1/sessions/{name}")
	fmt.Println("  POST /v1/spec/validate /v1/plan /v1/sessions /v1/sessions/{name}/adapt")
	fmt.Println("  POST /v1/nodes/{id}/kill /v1/net/link   DELETE /v1/sessions/{name}")

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	<-ctx.Done()
	fmt.Println("\nshutting down")
	sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	return srv.Shutdown(sctx)
}
