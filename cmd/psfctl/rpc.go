package main

import (
	"flag"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"partsvc/internal/metrics"
	"partsvc/internal/transport"
	"partsvc/internal/wire"
)

// runRPC is a loopback throughput probe for the multiplexed data
// plane: it serves an echo handler over TCP on 127.0.0.1, drives N
// concurrent callers through one shared endpoint for the given
// duration, and prints the ops/sec alongside the transport's
// data-plane counters (in-flight, frames, bytes, decode errors, pool
// hit rate).
func runRPC(args []string) error {
	fs := flag.NewFlagSet("rpc", flag.ExitOnError)
	callers := fs.Int("callers", 64, "concurrent callers sharing one endpoint")
	dur := fs.Duration("d", 2*time.Second, "probe duration")
	size := fs.Int("size", 256, "request body size in bytes")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *callers < 1 {
		return fmt.Errorf("need at least one caller")
	}

	echo := transport.HandlerFunc(func(m *wire.Message) *wire.Message {
		return &wire.Message{Kind: wire.KindResponse, ID: m.ID, Method: m.Method, Body: m.Body}
	})
	tr := transport.NewTCP()
	ln, err := tr.Serve("127.0.0.1:0", echo)
	if err != nil {
		return err
	}
	defer ln.Close()
	ep, err := tr.Dial(ln.Addr())
	if err != nil {
		return err
	}
	defer ep.Close()

	body := make([]byte, *size)
	for i := range body {
		body[i] = byte(i)
	}
	var ops atomic.Int64
	var firstErr atomic.Value
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < *callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := ep.Call(&wire.Message{Kind: wire.KindRequest, Method: "echo", Body: body}); err != nil {
					firstErr.CompareAndSwap(nil, err)
					return
				}
				ops.Add(1)
			}
		}()
	}
	start := time.Now()
	time.Sleep(*dur)
	close(stop)
	wg.Wait()
	elapsed := time.Since(start)
	if err, _ := firstErr.Load().(error); err != nil {
		return fmt.Errorf("call failed: %w", err)
	}

	n := ops.Load()
	fmt.Printf("rpc probe: %d callers, %d-byte bodies, %s on %s\n",
		*callers, *size, elapsed.Round(time.Millisecond), ln.Addr())
	fmt.Printf("  %d calls, %.0f ops/sec, %.1f us/op\n",
		n, float64(n)/elapsed.Seconds(),
		float64(elapsed.Microseconds())/float64(max(n, 1)))

	reg := metrics.NewRegistry()
	reg.RegisterSection("transport", func() []metrics.KV { return tr.Stats().KVs() })
	registerPoolSection(reg)
	fmt.Print(reg.Render())
	return nil
}
