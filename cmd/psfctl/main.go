// Command psfctl is the partitionable-services control tool: it
// validates declarative service specifications, enumerates valid
// component chains (Figure 3), and plans deployments onto a network
// (Figure 6).
//
// Usage:
//
//	psfctl spec                       # print the mail spec as XML
//	psfctl validate [-f spec.xml]     # validate a specification
//	psfctl chains [-f spec.xml] [-i ClientInterface]
//	psfctl plan -case-study           # reproduce the Figure 6 plans
//	psfctl plan -node sd-2 -user Alice [-rate 50] [-objective latency] [-backend solver]
//	psfctl rpc [-callers 64] [-d 2s]  # loopback data-plane throughput probe
//	psfctl stats [-http :8080]        # unified metrics registry across subsystems
//	psfctl trace [-sim]               # end-to-end trace of one mail send
//	psfctl adapt [-fault node-crash]  # live adaptation demo over the SSE event stream
//	psfctl adapt -attach URL          # tail a running server's /v1/events
//	psfctl adapt -fleet               # fleet scenario, streaming replan waves
//	psfctl serve [-addr :8080]        # operational API over the deployed case study
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"partsvc/internal/metrics"
	"partsvc/internal/netmodel"
	"partsvc/internal/planner"
	"partsvc/internal/spec"
	"partsvc/internal/topology"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "spec":
		err = spec.MailService().EncodeXML(os.Stdout)
		fmt.Println()
	case "validate":
		err = runValidate(os.Args[2:])
	case "chains":
		err = runChains(os.Args[2:])
	case "trees":
		err = runTrees(os.Args[2:])
	case "plan":
		err = runPlan(os.Args[2:])
	case "rpc":
		err = runRPC(os.Args[2:])
	case "stats":
		err = runStats(os.Args[2:])
	case "trace":
		err = runTrace(os.Args[2:])
	case "adapt":
		err = runAdapt(os.Args[2:])
	case "serve":
		err = runServe(os.Args[2:])
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "psfctl:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: psfctl <spec|validate|chains|trees|plan|rpc|stats|trace|adapt|serve> [flags]")
}

// loadSpec reads a spec from -f, defaulting to the built-in mail spec.
func loadSpec(path string) (*spec.Service, error) {
	if path == "" {
		return spec.MailService(), nil
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return spec.DecodeXML(f)
}

func runValidate(args []string) error {
	fs := flag.NewFlagSet("validate", flag.ExitOnError)
	path := fs.String("f", "", "specification XML file (default: built-in mail spec)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	svc, err := loadSpec(*path)
	if err != nil {
		return err
	}
	if err := svc.Validate(); err != nil {
		return fmt.Errorf("specification invalid:\n%w", err)
	}
	fmt.Printf("service %q: %d properties, %d interfaces, %d components — OK\n",
		svc.Name, len(svc.Properties), len(svc.Interfaces), len(svc.Components))
	return nil
}

func runChains(args []string) error {
	fs := flag.NewFlagSet("chains", flag.ExitOnError)
	path := fs.String("f", "", "specification XML file (default: built-in mail spec)")
	iface := fs.String("i", spec.IfaceClient, "requested interface")
	if err := fs.Parse(args); err != nil {
		return err
	}
	svc, err := loadSpec(*path)
	if err != nil {
		return err
	}
	if err := svc.Validate(); err != nil {
		return err
	}
	pl := planner.New(svc, topology.CaseStudy())
	chains := pl.EnumerateChains(*iface)
	fmt.Printf("valid component chains for %s (%d):\n", *iface, len(chains))
	for _, c := range chains {
		fmt.Println("  " + strings.Join(c.Names(), " -> "))
	}
	return nil
}

// runTrees enumerates linkage trees (the general component-graph form).
func runTrees(args []string) error {
	fs := flag.NewFlagSet("trees", flag.ExitOnError)
	path := fs.String("f", "", "specification XML file (default: built-in mail spec)")
	iface := fs.String("i", spec.IfaceClient, "requested interface")
	if err := fs.Parse(args); err != nil {
		return err
	}
	svc, err := loadSpec(*path)
	if err != nil {
		return err
	}
	if err := svc.Validate(); err != nil {
		return err
	}
	pl := planner.New(svc, topology.CaseStudy())
	trees := pl.EnumerateTrees(*iface)
	fmt.Printf("valid component trees for %s (%d):\n", *iface, len(trees))
	for _, tr := range trees {
		fmt.Println("  " + tr.Names())
	}
	return nil
}

func runPlan(args []string) error {
	fs := flag.NewFlagSet("plan", flag.ExitOnError)
	caseStudy := fs.Bool("case-study", false, "run the three Figure 6 requests in sequence")
	node := fs.String("node", "sd-2", "client node")
	user := fs.String("user", "Alice", "requesting user")
	rate := fs.Float64("rate", 50, "request rate (req/s)")
	objective := fs.String("objective", "min-latency",
		"latency | cost | headroom (canonical min-latency | min-cost | max-capacity also accepted)")
	backendName := fs.String("backend", "", "exhaustive | dp | solver (default exhaustive)")
	useDP := fs.Bool("dp", false, "shorthand for -backend dp")
	if err := fs.Parse(args); err != nil {
		return err
	}

	svc := spec.MailService()
	net := topology.CaseStudy()
	pl := planner.New(svc, net)
	ms, err := pl.PrimaryPlacement(spec.CompMailServer, topology.NYServer)
	if err != nil {
		return err
	}
	pl.AddExisting(ms)
	reg := metrics.NewRegistry()
	pl.RegisterMetrics(reg, "planner")

	obj, err := planner.ParseObjective(*objective)
	if err != nil {
		return err
	}
	backend, err := planner.ParseBackend(*backendName)
	if err != nil {
		return err
	}
	if *useDP {
		if *backendName != "" && backend != planner.BackendDP {
			return fmt.Errorf("-dp conflicts with -backend %s", backend)
		}
		backend = planner.BackendDP
	}
	if backend == planner.BackendSolver {
		pl.RegisterSolverMetrics(reg, "solver")
	}

	plan := func(req planner.Request) error {
		dep, err := pl.PlanVia(backend, req)
		if err != nil {
			return err
		}
		fmt.Printf("request: %s from %s as %s (%.0f req/s, %s)\n",
			req.Interface, req.ClientNode, req.User, req.RateRPS, req.Objective)
		fmt.Printf("  deployment: %s\n", dep)
		fmt.Printf("  expected latency %.2f ms, capacity %.0f req/s, %d new component(s)\n",
			dep.ExpectedLatencyMS, dep.CapacityRPS, dep.NewComponents)
		fmt.Print(reg.Render())
		pl.AddExisting(dep.Placements...)
		return nil
	}

	if *caseStudy {
		for _, req := range []planner.Request{
			{Interface: spec.IfaceClient, ClientNode: topology.NYClient, User: "Alice", RateRPS: *rate, Objective: obj},
			{Interface: spec.IfaceClient, ClientNode: topology.SDClient, User: "Alice", RateRPS: *rate, Objective: obj},
			{Interface: spec.IfaceClient, ClientNode: topology.SeaClient, User: "Carol", RateRPS: *rate, Objective: obj},
		} {
			if err := plan(req); err != nil {
				return err
			}
		}
		return nil
	}
	return plan(planner.Request{
		Interface: spec.IfaceClient, ClientNode: netmodel.NodeID(*node),
		User: *user, RateRPS: *rate, Objective: obj,
	})
}
