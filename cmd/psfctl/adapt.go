package main

import (
	"flag"
	"fmt"
	"sync"
	"time"

	"partsvc/internal/adapt"
	"partsvc/internal/mail"
	"partsvc/internal/netmodel"
	"partsvc/internal/netmon"
	"partsvc/internal/planner"
	"partsvc/internal/seccrypto"
	"partsvc/internal/smock"
	"partsvc/internal/spec"
	"partsvc/internal/topology"
	"partsvc/internal/transport"
)

// adaptWorld is the case study deployed in-process: wrappers with
// control listeners on every node, the NY primary, a generic server,
// and a lookup — the same substrate the adaptation e2e tests run on.
type adaptWorld struct {
	tr       transport.Transport
	net      *netmodel.Network
	mon      *netmon.Monitor
	keys     *seccrypto.KeyRing
	primary  *mail.Server
	engine   *smock.Engine
	gs       *smock.GenericServer
	lookup   *smock.Lookup
	wrappers map[netmodel.NodeID]*smock.NodeWrapper
}

func newAdaptWorld() (*adaptWorld, error) {
	w := &adaptWorld{
		tr:   transport.NewInProc(),
		keys: seccrypto.NewKeyRing(), wrappers: map[netmodel.NodeID]*smock.NodeWrapper{},
	}
	clock := transport.NewRealClock()
	w.primary = mail.NewServer(w.keys, clock)
	for _, u := range []string{"Alice", "Carol"} {
		if err := w.primary.CreateAccount(u); err != nil {
			return nil, err
		}
	}
	reg := smock.NewRegistry()
	if err := mail.RegisterFactories(reg, &mail.ServiceEnv{Primary: w.primary, Keys: w.keys}); err != nil {
		return nil, err
	}
	w.net = topology.CaseStudy()
	w.mon = netmon.New(w.net)
	w.engine = smock.NewEngine(w.tr)
	for _, node := range w.net.Nodes() {
		wr := smock.NewNodeWrapper(node.ID, w.tr, reg, clock)
		w.engine.RegisterWrapper(wr)
		if _, err := wr.ServeControl(); err != nil {
			return nil, err
		}
		w.wrappers[node.ID] = wr
	}
	addr, err := w.wrappers[topology.NYServer].Install(smock.InstallOrder{
		Component: spec.CompMailServer, InstanceID: "mail-primary",
	})
	if err != nil {
		return nil, err
	}
	svc := spec.MailService()
	pl := planner.New(svc, w.net)
	msPlace, err := pl.PrimaryPlacement(spec.CompMailServer, topology.NYServer)
	if err != nil {
		return nil, err
	}
	pl.AddExisting(msPlace)
	w.engine.AdoptInstance(msPlace, addr)
	w.gs = smock.NewGenericServer(svc, pl, w.engine)
	w.lookup = smock.NewLookup()
	w.engine.SetLookup(w.lookup)
	return w, nil
}

// runAdapt deploys the case study in-process, starts the adaptation
// controller, injects one fault, and streams every controller event
// while client traffic keeps flowing through the rebinding endpoint.
func runAdapt(args []string) error {
	fs := flag.NewFlagSet("adapt", flag.ExitOnError)
	fault := fs.String("fault", "node-crash",
		"fault to inject: node-crash (kill sd-2), link-degrade, link-down (SD~Seattle)")
	sends := fs.Int("sends", 8, "client sends to push through the adaptation")
	timeout := fs.Duration("timeout", 15*time.Second, "abort if adaptation has not completed")
	if err := fs.Parse(args); err != nil {
		return err
	}

	w, err := newAdaptWorld()
	if err != nil {
		return err
	}
	// Warm up San Diego so Seattle anchors onto the sd-2 view — the
	// case study's incremental state, and the fault's blast radius.
	warm := planner.Request{Interface: spec.IfaceClient, ClientNode: topology.SDClient, User: "Alice", RateRPS: 50}
	if _, _, err := w.gs.Access(warm); err != nil {
		return err
	}
	req := planner.Request{Interface: spec.IfaceClient, ClientNode: topology.SeaClient, User: "Carol", RateRPS: 50}
	headAddr, dep, err := w.gs.Access(req)
	if err != nil {
		return err
	}
	const service = "mail-head-carol"
	if err := w.lookup.Register(smock.Entry{Service: service, ServerAddr: headAddr}); err != nil {
		return err
	}
	fmt.Printf("deployed carol: %s\n", dep)

	session := adapt.NewSession("carol", service, req, dep, headAddr)
	reb := adapt.NewRebindEndpoint(w.tr, adapt.LookupResolver(w.lookup, service),
		adapt.RetryConfig{MaxAttempts: 12, BackoffMS: 25})
	defer reb.Close()
	session.Bind(reb)

	var out sync.Mutex
	adapted := make(chan struct{}, 1)
	ctrl := adapt.New(adapt.Config{
		DebounceMS: 20, ProbeIntervalMS: 25, ProbeTimeoutMS: 500,
		SuspicionThreshold: 2, DrainMS: 40,
	}, w.mon, &adapt.EngineExecutor{
		Server: w.gs, Engine: w.engine, Lookup: w.lookup,
		Transport: w.tr, Spec: spec.MailService(),
	}, adapt.NewRealScheduler())
	ctrl.SetProber(adapt.NewTransportProber(w.tr), w.engine.ControlAddrs)
	ctrl.OnEvent(func(e adapt.Event) {
		out.Lock()
		fmt.Println(e)
		out.Unlock()
		if e.Kind == "adapted" {
			select {
			case adapted <- struct{}{}:
			default:
			}
		}
	})
	ctrl.Track(session)
	ctrl.Start()
	defer ctrl.Stop()

	carol := mail.NewViewClient("Carol", 2, w.keys.SubRing(2), mail.NewRemote(reb))
	if _, err := carol.Send("Alice", "baseline", []byte("pre-fault"), 2); err != nil {
		return fmt.Errorf("baseline send: %v", err)
	}

	switch *fault {
	case "node-crash":
		fmt.Printf("-- killing node %s --\n", topology.SDClient)
		w.wrappers[topology.SDClient].Close()
	case "link-degrade":
		fmt.Printf("-- degrading link %s~%s to 1500ms --\n", topology.SDGateway, topology.SeaGW)
		if err := w.mon.ReportLink(topology.SDGateway, topology.SeaGW, 1500, 1, nil); err != nil {
			return err
		}
	case "link-down":
		fmt.Printf("-- severing link %s~%s --\n", topology.SDGateway, topology.SeaGW)
		if err := w.mon.ReportLink(topology.SDGateway, topology.SeaGW, 1e9, 1e-6, nil); err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown -fault %q", *fault)
	}

	deadline := time.After(*timeout)
	done := false
	for i := 1; i <= *sends || !done; i++ {
		select {
		case <-adapted:
			done = true
		case <-deadline:
			return fmt.Errorf("adaptation did not complete within %v", *timeout)
		default:
		}
		if i <= *sends {
			subject := fmt.Sprintf("during-%d", i)
			if _, err := carol.Send("Alice", subject, []byte(subject), 2); err != nil {
				return fmt.Errorf("client-visible error during adaptation (send %d): %v", i, err)
			}
		}
		time.Sleep(25 * time.Millisecond)
	}

	out.Lock()
	defer out.Unlock()
	fmt.Printf("adapted: %s\n", session.Deployment())
	fmt.Printf("head %s -> %s; %d sends, zero client-visible errors; primary inbox %d\n",
		headAddr, session.HeadAddr(), *sends+1, w.primary.Store().InboxCount("Alice"))
	return nil
}
