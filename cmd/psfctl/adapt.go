package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"partsvc/internal/adapt"
	"partsvc/internal/api"
	"partsvc/internal/fleet"
	"partsvc/internal/mail"
	"partsvc/internal/metrics"
	"partsvc/internal/netmodel"
	"partsvc/internal/netmon"
	"partsvc/internal/planner"
	"partsvc/internal/seccrypto"
	"partsvc/internal/sim"
	"partsvc/internal/smock"
	"partsvc/internal/spec"
	"partsvc/internal/topology"
	"partsvc/internal/transport"
)

// adaptWorld is the case study deployed in-process: wrappers with
// control listeners on every node, the NY primary, a generic server,
// and a lookup — the same substrate the adaptation e2e tests run on.
type adaptWorld struct {
	tr       transport.Transport
	net      *netmodel.Network
	mon      *netmon.Monitor
	keys     *seccrypto.KeyRing
	primary  *mail.Server
	engine   *smock.Engine
	gs       *smock.GenericServer
	lookup   *smock.Lookup
	wrappers map[netmodel.NodeID]*smock.NodeWrapper
}

func newAdaptWorld() (*adaptWorld, error) {
	w := &adaptWorld{
		tr:   transport.NewInProc(),
		keys: seccrypto.NewKeyRing(), wrappers: map[netmodel.NodeID]*smock.NodeWrapper{},
	}
	clock := transport.NewRealClock()
	w.primary = mail.NewServer(w.keys, clock)
	for _, u := range []string{"Alice", "Carol"} {
		if err := w.primary.CreateAccount(u); err != nil {
			return nil, err
		}
	}
	reg := smock.NewRegistry()
	if err := mail.RegisterFactories(reg, &mail.ServiceEnv{Primary: w.primary, Keys: w.keys}); err != nil {
		return nil, err
	}
	w.net = topology.CaseStudy()
	w.mon = netmon.New(w.net)
	w.engine = smock.NewEngine(w.tr)
	for _, node := range w.net.Nodes() {
		wr := smock.NewNodeWrapper(node.ID, w.tr, reg, clock)
		w.engine.RegisterWrapper(wr)
		if _, err := wr.ServeControl(); err != nil {
			return nil, err
		}
		w.wrappers[node.ID] = wr
	}
	addr, err := w.wrappers[topology.NYServer].Install(smock.InstallOrder{
		Component: spec.CompMailServer, InstanceID: "mail-primary",
	})
	if err != nil {
		return nil, err
	}
	svc := spec.MailService()
	pl := planner.New(svc, w.net)
	msPlace, err := pl.PrimaryPlacement(spec.CompMailServer, topology.NYServer)
	if err != nil {
		return nil, err
	}
	pl.AddExisting(msPlace)
	w.engine.AdoptInstance(msPlace, addr)
	w.gs = smock.NewGenericServer(svc, pl, w.engine)
	w.lookup = smock.NewLookup()
	w.engine.SetLookup(w.lookup)
	return w, nil
}

// runAdapt deploys the case study in-process, starts the adaptation
// controller, injects one fault, and streams every controller event
// while client traffic keeps flowing through the rebinding endpoint.
// The live view is a thin SSE client of the operational API: the demo
// starts its own api.Server and reads back /v1/events over HTTP — the
// same stream curl or a dashboard would see. With -attach it skips the
// demo and tails a running server's stream instead; with -fleet it
// runs the sharded fleet scenario and streams the manager's replan
// wave lifecycle.
func runAdapt(args []string) error {
	fs := flag.NewFlagSet("adapt", flag.ExitOnError)
	fault := fs.String("fault", "node-crash",
		"fault to inject: node-crash (kill sd-2), link-degrade, link-down (SD~Seattle)")
	sends := fs.Int("sends", 8, "client sends to push through the adaptation")
	timeout := fs.Duration("timeout", 15*time.Second, "abort if adaptation has not completed")
	attach := fs.String("attach", "", "tail a running operational API's /v1/events instead of running the demo (base URL)")
	token := fs.String("token", "", "bearer token for -attach")
	filter := fs.String("filter", "", "event filter for -attach (query form: session=carol&kind=replan,adapted)")
	fleetView := fs.Bool("fleet", false, "run the sharded fleet scenario and stream replan waves")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *attach != "" {
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		defer stop()
		fmt.Printf("streaming %s/v1/events (ctrl-c to stop)\n", strings.TrimSuffix(*attach, "/"))
		return streamEvents(ctx, *attach, *token, *filter, printEvent)
	}
	if *fleetView {
		return runAdaptFleet()
	}

	w, err := newAdaptWorld()
	if err != nil {
		return err
	}
	// Warm up San Diego so Seattle anchors onto the sd-2 view — the
	// case study's incremental state, and the fault's blast radius.
	warm := planner.Request{Interface: spec.IfaceClient, ClientNode: topology.SDClient, User: "Alice", RateRPS: 50}
	if _, _, err := w.gs.Access(warm); err != nil {
		return err
	}
	req := planner.Request{Interface: spec.IfaceClient, ClientNode: topology.SeaClient, User: "Carol", RateRPS: 50}
	headAddr, dep, err := w.gs.Access(req)
	if err != nil {
		return err
	}
	const service = "mail-head-carol"
	if err := w.lookup.Register(smock.Entry{Service: service, ServerAddr: headAddr}); err != nil {
		return err
	}
	fmt.Printf("deployed carol: %s\n", dep)

	session := adapt.NewSession("carol", service, req, dep, headAddr)
	reb := adapt.NewRebindEndpoint(w.tr, adapt.LookupResolver(w.lookup, service),
		adapt.RetryConfig{MaxAttempts: 12, BackoffMS: 25})
	defer reb.Close()
	session.Bind(reb)

	ctrl := adapt.New(adapt.Config{
		DebounceMS: 20, ProbeIntervalMS: 25, ProbeTimeoutMS: 500,
		SuspicionThreshold: 2, DrainMS: 40,
	}, w.mon, &adapt.EngineExecutor{
		Server: w.gs, Engine: w.engine, Lookup: w.lookup,
		Transport: w.tr, Spec: spec.MailService(),
	}, adapt.NewRealScheduler())
	ctrl.SetProber(adapt.NewTransportProber(w.tr), w.engine.ControlAddrs)

	// The live view rides the operational API: events go controller ->
	// bus -> SSE -> this process's own HTTP client. Anything else (curl,
	// another psfctl adapt -attach) can watch the same stream.
	srv := api.New(api.Config{Addr: "127.0.0.1:0"}, api.Control{
		Spec: spec.MailService(), Server: w.gs, Engine: w.engine,
		Lookup: w.lookup, Controller: ctrl, Mon: w.mon,
		KillNode: func(id netmodel.NodeID) error {
			wr, ok := w.wrappers[id]
			if !ok {
				return fmt.Errorf("no wrapper for %s", id)
			}
			wr.Close()
			return nil
		},
	})
	srv.AttachController(ctrl, nil)
	if err := srv.Start(); err != nil {
		return err
	}
	fmt.Printf("events also live at http://%s/v1/events\n", srv.Addr())

	adapted := make(chan struct{}, 1)
	sctx, scancel := context.WithCancel(context.Background())
	defer scancel()
	streamDone := make(chan struct{})
	go func() {
		defer close(streamDone)
		streamEvents(sctx, "http://"+srv.Addr(), "", "", func(e api.Event) { //nolint:errcheck // demo stream
			printEvent(e)
			if e.Kind == "adapted" {
				select {
				case adapted <- struct{}{}:
				default:
				}
			}
		})
	}()

	ctrl.Track(session)
	ctrl.Start()
	defer ctrl.Stop()

	carol := mail.NewViewClient("Carol", 2, w.keys.SubRing(2), mail.NewRemote(reb))
	if _, err := carol.Send("Alice", "baseline", []byte("pre-fault"), 2); err != nil {
		return fmt.Errorf("baseline send: %v", err)
	}

	switch *fault {
	case "node-crash":
		fmt.Printf("-- killing node %s --\n", topology.SDClient)
		w.wrappers[topology.SDClient].Close()
	case "link-degrade":
		fmt.Printf("-- degrading link %s~%s to 1500ms --\n", topology.SDGateway, topology.SeaGW)
		if err := w.mon.ReportLink(topology.SDGateway, topology.SeaGW, 1500, 1, nil); err != nil {
			return err
		}
	case "link-down":
		fmt.Printf("-- severing link %s~%s --\n", topology.SDGateway, topology.SeaGW)
		if err := w.mon.ReportLink(topology.SDGateway, topology.SeaGW, 1e9, 1e-6, nil); err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown -fault %q", *fault)
	}

	deadline := time.After(*timeout)
	done := false
	for i := 1; i <= *sends || !done; i++ {
		select {
		case <-adapted:
			done = true
		case <-deadline:
			return fmt.Errorf("adaptation did not complete within %v", *timeout)
		default:
		}
		if i <= *sends {
			subject := fmt.Sprintf("during-%d", i)
			if _, err := carol.Send("Alice", subject, []byte(subject), 2); err != nil {
				return fmt.Errorf("client-visible error during adaptation (send %d): %v", i, err)
			}
		}
		time.Sleep(25 * time.Millisecond)
	}

	// Graceful stop: the server says bye on the stream, the client
	// returns, then the summary prints without interleaving.
	shctx, shcancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer shcancel()
	if err := srv.Shutdown(shctx); err != nil {
		return err
	}
	<-streamDone

	fmt.Printf("adapted: %s\n", session.Deployment())
	fmt.Printf("head %s -> %s; %d sends, zero client-visible errors; primary inbox %d\n",
		headAddr, session.HeadAddr(), *sends+1, w.primary.Store().InboxCount("Alice"))
	return nil
}

// runAdaptFleet runs the sharded fleet control plane through the
// relay kill/recovery/flap cycle on the virtual clock, with the
// manager's wave lifecycle (wave-open/wave-close, per-session adapt
// outcomes, governor deferrals, flap suppression) wired into the bus
// and streamed back over SSE — replan waves as a live view, not just
// counters.
func runAdaptFleet() error {
	env := sim.NewEnv()
	net := topology.CaseStudy()
	mon := netmon.New(net)
	mgr := fleet.New(fleet.Config{
		Shards: 4, Workers: 2, DebounceMS: 20,
		CutoverRatePerSec: 1, CutoverBurst: 1, HysteresisMS: 60000,
	}, spec.MailService(), net, mon, adapt.NewSimScheduler(env))
	srv := api.New(api.Config{
		Addr: "127.0.0.1:0",
		// The sim publishes faster than real time; a deep subscriber
		// buffer keeps the live view lossless.
		SubscriberBuffer: 8192,
	}, api.Control{Fleet: mgr, Mon: mon})
	srv.AttachFleet(mgr)
	if err := srv.Start(); err != nil {
		return err
	}
	fmt.Printf("fleet wave stream live at http://%s/v1/events\n", srv.Addr())

	streamDone := make(chan struct{})
	sctx, scancel := context.WithCancel(context.Background())
	defer scancel()
	go func() {
		defer close(streamDone)
		streamEvents(sctx, "http://"+srv.Addr(), "", "", printEvent) //nolint:errcheck // demo stream
	}()

	if _, err := mgr.AddPrimary(spec.CompMailServer, topology.NYServer); err != nil {
		return err
	}
	for i := 0; i < 8; i++ {
		req := planner.Request{Interface: spec.IfaceClient, ClientNode: topology.SDClient, User: "Alice", RateRPS: 50}
		if i%2 == 1 {
			req.ClientNode, req.User = topology.SeaClient, "Carol"
		}
		mgr.AddSession(fmt.Sprintf("fleet-s%d", i), req)
	}
	mgr.Bootstrap()
	mgr.Start()
	// Relay down/up/down/up: recovery rewires under the token bucket,
	// the second recovery inside the hysteresis window is suppressed.
	env.At(100, func() { _ = mon.ReportNodeDown(topology.SDGateway) })
	env.At(10000, func() { _ = mon.ReportNodeUp(topology.SDGateway) })
	env.At(20000, func() { _ = mon.ReportNodeDown(topology.SDGateway) })
	env.At(30000, func() { _ = mon.ReportNodeUp(topology.SDGateway) })
	env.RunUntil(60000)
	mgr.Stop()
	env.Stop()

	// Shutdown flushes the stream (buffered events drain before the
	// bye), so every wave prints before the summary.
	shctx, shcancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer shcancel()
	if err := srv.Shutdown(shctx); err != nil {
		return err
	}
	<-streamDone

	reg := metrics.DefaultRegistry
	fmt.Printf("fleet run complete: %d sessions, %d waves, %d cutovers rate-limited, %d flaps suppressed\n",
		len(mgr.Sessions()),
		reg.Counter("fleet.waves").Load(),
		reg.Counter("fleet.cutovers_rate_limited").Load(),
		reg.Counter("fleet.flaps_suppressed").Load())
	return nil
}
