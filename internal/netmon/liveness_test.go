package netmon_test

import (
	"testing"

	"partsvc/internal/netmodel"
	"partsvc/internal/netmon"
	"partsvc/internal/property"
)

// diamond builds a -- b -- c plus the longer detour a -- d -- c.
func diamond(t *testing.T) *netmodel.Network {
	t.Helper()
	net := netmodel.New()
	for _, id := range []netmodel.NodeID{"a", "b", "c", "d"} {
		if err := net.AddNode(netmodel.Node{ID: id, Props: property.Set{}}); err != nil {
			t.Fatal(err)
		}
	}
	for _, l := range []netmodel.Link{
		{A: "a", B: "b", LatencyMS: 1, BandwidthMbps: 100},
		{A: "b", B: "c", LatencyMS: 1, BandwidthMbps: 100},
		{A: "a", B: "d", LatencyMS: 10, BandwidthMbps: 100},
		{A: "d", B: "c", LatencyMS: 10, BandwidthMbps: 100},
	} {
		l.Props = property.Set{}
		if err := net.AddLink(l); err != nil {
			t.Fatal(err)
		}
	}
	return net
}

// TestReportNodeDownNotifiesOnce: the down transition notifies exactly
// once (failure detectors confirm suspicions repeatedly), renders the
// liveness change correctly, and the up transition undoes it.
func TestReportNodeDownNotifiesOnce(t *testing.T) {
	net := diamond(t)
	mon := netmon.New(net)
	var got []netmon.Change
	mon.Subscribe(func(changes []netmon.Change) { got = append(got, changes...) })

	if err := mon.ReportNodeDown("b"); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].String() != "node b: up true -> false" {
		t.Fatalf("changes = %v, want one 'node b: up true -> false'", got)
	}
	node, _ := net.Node("b")
	if !node.Down {
		t.Fatal("node b must be marked down")
	}
	if err := mon.ReportNodeDown("b"); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("re-reporting a down node must not re-notify: %v", got)
	}
	if err := mon.ReportNodeUp("b"); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[1].String() != "node b: up false -> true" {
		t.Fatalf("changes = %v, want an up transition", got)
	}
	if node.Down {
		t.Fatal("node b must be back up")
	}
	if err := mon.ReportNodeDown("nope"); err == nil {
		t.Fatal("unknown node must error")
	}
}

// TestDownNodeDropsOutOfRouting: a down node's links vanish from both
// the cached and the direct shortest-path views; routes fall back to
// the detour and recover when the node returns.
func TestDownNodeDropsOutOfRouting(t *testing.T) {
	net := diamond(t)
	mon := netmon.New(net)

	path, ok := net.Routes().Path("a", "c")
	if !ok || len(path.Nodes) != 3 || path.Nodes[1] != "b" {
		t.Fatalf("initial route = %v, want a-b-c", path.Nodes)
	}
	if err := mon.ReportNodeDown("b"); err != nil {
		t.Fatal(err)
	}
	// The monitor invalidates the cache before notifying; a fresh Routes
	// handle must agree with the uncached oracle (ShortestPath).
	for _, lookup := range []struct {
		name string
		path func() (netmodel.Path, bool)
	}{
		{"cached", func() (netmodel.Path, bool) { return net.Routes().Path("a", "c") }},
		{"direct", func() (netmodel.Path, bool) { return net.ShortestPath("a", "c") }},
	} {
		path, ok := lookup.path()
		if !ok || len(path.Nodes) != 3 || path.Nodes[1] != "d" {
			t.Fatalf("%s route with b down = %v (ok=%v), want a-d-c", lookup.name, path.Nodes, ok)
		}
	}
	// No route at all to the dead node itself.
	if _, ok := net.Routes().Path("a", "b"); ok {
		t.Fatal("routes to a down node must not exist")
	}
	if err := mon.ReportNodeUp("b"); err != nil {
		t.Fatal(err)
	}
	path, ok = net.Routes().Path("a", "c")
	if !ok || len(path.Nodes) != 3 || path.Nodes[1] != "b" {
		t.Fatalf("route after recovery = %v, want a-b-c again", path.Nodes)
	}
}
