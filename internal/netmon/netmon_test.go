package netmon

import (
	"strings"
	"testing"

	"partsvc/internal/netmodel"
	"partsvc/internal/planner"
	"partsvc/internal/property"
	"partsvc/internal/spec"
	"partsvc/internal/topology"
	"partsvc/internal/trust"
)

func TestReportNodePropsNotifiesOnRealChangesOnly(t *testing.T) {
	net := topology.CaseStudy()
	m := New(net)
	var got []Change
	m.Subscribe(func(cs []Change) { got = append(got, cs...) })

	// Same value: no notification.
	if err := m.ReportNodeProps(topology.SDClient, property.Set{"TrustLevel": property.Int(4)}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("no-op report must not notify: %v", got)
	}
	// Real change: notification + applied.
	if err := m.ReportNodeProps(topology.SDClient, property.Set{"TrustLevel": property.Int(1)}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Field != "TrustLevel" || got[0].New != "1" || got[0].Old != "4" {
		t.Fatalf("changes = %v", got)
	}
	n, _ := net.Node(topology.SDClient)
	if !n.Props["TrustLevel"].Equal(property.Int(1)) {
		t.Error("change not applied to the network")
	}
	if err := m.ReportNodeProps("ghost", nil); err == nil {
		t.Error("unknown node must error")
	}
}

func TestReportLink(t *testing.T) {
	net := topology.CaseStudy()
	m := New(net)
	var got []Change
	m.Subscribe(func(cs []Change) { got = append(got, cs...) })

	secure := true
	if err := m.ReportLink(topology.NYServer, topology.SDGateway, 150, -1, &secure); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("changes = %v", got)
	}
	l, _ := net.Link(topology.NYServer, topology.SDGateway)
	if l.LatencyMS != 150 || !l.Secure || l.BandwidthMbps != 20 {
		t.Errorf("link state = %+v", l)
	}
	if !l.Props["Confidentiality"].Equal(property.Bool(true)) {
		t.Error("security change must update the link's property environment")
	}
	if err := m.ReportLink("ghost", "ny-1", 1, 1, nil); err == nil {
		t.Error("unknown link must error")
	}
	// Change strings are readable.
	if !strings.Contains(got[0].String(), "ny-1~sd-1") {
		t.Errorf("change string = %q", got[0])
	}
}

func TestMultipleSubscribersInOrder(t *testing.T) {
	net := topology.CaseStudy()
	m := New(net)
	var order []string
	m.Subscribe(func([]Change) { order = append(order, "first") })
	m.Subscribe(func([]Change) { order = append(order, "second") })
	if err := m.ReportNodeProps(topology.SDClient, property.Set{"TrustLevel": property.Int(2)}); err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != "first" || order[1] != "second" {
		t.Errorf("order = %v", order)
	}
}

// TestRetranslateWithdrawsRevokedProperties: re-running credential
// translation replaces and withdraws stale properties.
func TestRetranslate(t *testing.T) {
	net := netmodel.New()
	if err := net.AddNode(netmodel.Node{
		ID: "n1", Credentials: map[string]string{"trust": "4"},
		Props: property.Set{"TrustLevel": property.Int(4), "Legacy": property.Bool(true)},
	}); err != nil {
		t.Fatal(err)
	}
	m := New(net)
	var got []Change
	m.Subscribe(func(cs []Change) { got = append(got, cs...) })

	nodeFn := func(creds map[string]string) property.Set {
		return property.Set{"TrustLevel": property.Parse(creds["trust"])}
	}
	// Simulate a downgrade: the credential now says trust 2.
	n, _ := net.Node("n1")
	n.Credentials["trust"] = "2"
	m.Retranslate(nodeFn)

	if !n.Props["TrustLevel"].Equal(property.Int(2)) {
		t.Errorf("trust not replaced: %v", n.Props)
	}
	if _, still := n.Props["Legacy"]; still {
		t.Error("withdrawn property must be removed")
	}
	fields := map[string]bool{}
	for _, c := range got {
		fields[c.Field] = true
	}
	if !fields["TrustLevel"] || !fields["Legacy"] {
		t.Errorf("changes = %v", got)
	}
}

// TestAdaptationLoopWithTrustRevocation closes the Section 6 circle:
// dRBAC revocation -> re-translation -> monitor notification -> replan.
// Revoking the partner org's delegatable credential strips Seattle's
// trust, evicting its view and forcing the partner client onto a plan
// that does not cache there.
func TestAdaptationLoopWithTrustRevocation(t *testing.T) {
	// Trust structure as credentials.
	store := trust.NewStore()
	pi := trust.NewPropertyIssuer(store)
	for lvl := 2; lvl <= 5; lvl++ {
		pi.MapRole(trust.Role("mailcorp.trust"+string(rune('0'+lvl))),
			property.Set{"TrustLevel": property.Int(int64(lvl))})
	}
	must := func(c trust.Credential) {
		t.Helper()
		if err := store.Issue(c); err != nil {
			t.Fatal(err)
		}
	}
	for _, n := range []string{"ny-1", "ny-2", "ny-3"} {
		must(trust.Credential{Subject: n, Role: "mailcorp.trust5", Issuer: "mailcorp"})
	}
	for _, n := range []string{"sd-1", "sd-2"} {
		must(trust.Credential{Subject: n, Role: "mailcorp.trust4", Issuer: "mailcorp"})
	}
	must(trust.Credential{Subject: "partner", Role: "mailcorp.trust2", Issuer: "mailcorp", Delegatable: true})
	for _, n := range []string{"sea-1", "sea-2"} {
		must(trust.Credential{Subject: n, Role: "mailcorp.trust2", Issuer: "partner"})
	}

	net := topology.CaseStudy()
	for _, node := range net.Nodes() {
		node.Credentials = map[string]string{"entity": string(node.ID)}
		delete(node.Props, "TrustLevel")
	}
	net.Translate(pi.NodeTranslation(), nil)

	pl := planner.New(spec.MailService(), net)
	ms, err := pl.PrimaryPlacement(spec.CompMailServer, topology.NYServer)
	if err != nil {
		t.Fatal(err)
	}
	pl.AddExisting(ms)
	seaReq := planner.Request{
		Interface: spec.IfaceClient, ClientNode: topology.SeaClient, User: "Carol", RateRPS: 50,
	}
	old, err := pl.Plan(seaReq)
	if err != nil {
		t.Fatal(err)
	}
	pl.AddExisting(old.Placements...)
	hasSeaView := false
	for _, p := range old.Placements {
		if p.Component == spec.CompViewMailServer && p.Node == topology.SeaClient {
			hasSeaView = true
		}
	}
	if !hasSeaView {
		t.Fatalf("initial Seattle plan must cache locally: %s", old)
	}

	// The adaptation loop: monitor subscribes the replanner.
	mon := New(net)
	var notified []Change
	mon.Subscribe(func(cs []Change) { notified = append(notified, cs...) })

	// dRBAC revocation: the partner loses its delegation, so Seattle's
	// chains no longer prove trust2.
	if n := store.Revoke("partner", "mailcorp.trust2"); n != 1 {
		t.Fatalf("revoked %d credentials", n)
	}
	mon.Retranslate(pi.NodeTranslation())
	if len(notified) == 0 {
		t.Fatal("revocation must surface as property changes")
	}

	// With every Seattle trust credential gone, the site cannot host or
	// even head a deployment: the replan fails — service is correctly
	// denied to the now-untrusted site — and the eviction pass drops the
	// Seattle view from the reuse set.
	if _, err := pl.Replan(old, seaReq); err == nil {
		t.Fatal("replan must fail while Seattle holds no trust credential")
	}
	evictedView := false
	for _, p := range pl.Existing {
		if p.Component == spec.CompViewMailServer && p.Node == topology.SeaClient {
			evictedView = true
		}
	}
	if evictedView {
		t.Error("the Seattle view must have been evicted from the reuse set")
	}

	// Recovery: mailcorp certifies the Seattle nodes directly; the
	// monitor re-translates and the replanner restores local caching.
	for _, n := range []string{"sea-1", "sea-2"} {
		must(trust.Credential{Subject: n, Role: "mailcorp.trust2", Issuer: "mailcorp"})
	}
	mon.Retranslate(pi.NodeTranslation())
	diff, err := pl.Replan(old, seaReq)
	if err != nil {
		t.Fatal(err)
	}
	restored := false
	for _, p := range diff.New.Placements {
		if p.Component == spec.CompViewMailServer && p.Node == topology.SeaClient {
			restored = true
		}
	}
	if !restored {
		t.Errorf("re-issued credentials must restore Seattle caching: %s", diff.New)
	}
	if err := pl.Verify(diff.New, seaReq); err != nil {
		t.Errorf("replanned deployment invalid: %v", err)
	}
}
