package netmon

import (
	"testing"

	"partsvc/internal/netmodel"
	"partsvc/internal/property"
)

// triangle builds a 3-node network where a-b is direct but slow (10 ms)
// and a-c-b is the 2 ms detour the baseline route prefers.
func triangle(t *testing.T) *netmodel.Network {
	t.Helper()
	n := netmodel.New()
	for _, id := range []netmodel.NodeID{"a", "b", "c"} {
		if err := n.AddNode(netmodel.Node{ID: id}); err != nil {
			t.Fatal(err)
		}
	}
	for _, l := range []netmodel.Link{
		{A: "a", B: "b", LatencyMS: 10, BandwidthMbps: 100},
		{A: "a", B: "c", LatencyMS: 1, BandwidthMbps: 100},
		{A: "c", B: "b", LatencyMS: 1, BandwidthMbps: 100},
	} {
		if err := n.AddLink(l); err != nil {
			t.Fatal(err)
		}
	}
	return n
}

// TestReportLinkInvalidatesRoutes: a latency report through the monitor
// bumps the route epoch, and the next Routes() lookup returns the new
// shortest path — the cache never serves a pre-report route.
func TestReportLinkInvalidatesRoutes(t *testing.T) {
	net := triangle(t)
	m := New(net)

	p, ok := net.ShortestPath("a", "b")
	if !ok || len(p.Nodes) != 3 || p.LatencyMS != 2 {
		t.Fatalf("baseline must detour a-c-b at 2 ms, got %v (%.1f ms)", p.Nodes, p.LatencyMS)
	}
	epoch := net.RouteEpoch()

	// The direct link speeds up past the detour.
	if err := m.ReportLink("a", "b", 0.5, -1, nil); err != nil {
		t.Fatal(err)
	}
	if net.RouteEpoch() == epoch {
		t.Fatal("a latency change must bump the route epoch")
	}
	p, ok = net.ShortestPath("a", "b")
	if !ok || len(p.Nodes) != 2 || p.LatencyMS != 0.5 {
		t.Fatalf("post-report route must take the direct link, got %v (%.1f ms)", p.Nodes, p.LatencyMS)
	}

	// A no-op report (same values) must not churn the epoch: unchanged
	// networks keep their cache warm.
	epoch = net.RouteEpoch()
	if err := m.ReportLink("a", "b", 0.5, -1, nil); err != nil {
		t.Fatal(err)
	}
	if net.RouteEpoch() != epoch {
		t.Fatal("a no-op report must not invalidate routes")
	}
}

// TestSubscriberSeesFreshRoutes: subscribers run after invalidation, so
// an adaptation loop replanning from its callback observes post-change
// shortest paths.
func TestSubscriberSeesFreshRoutes(t *testing.T) {
	net := triangle(t)
	m := New(net)
	net.ShortestPath("a", "b") // warm the cache on the old topology

	var sawLatency float64
	m.Subscribe(func([]Change) {
		p, ok := net.ShortestPath("a", "b")
		if !ok {
			t.Error("route lost inside subscriber")
			return
		}
		sawLatency = p.LatencyMS
	})
	if err := m.ReportLink("a", "b", 0.25, -1, nil); err != nil {
		t.Fatal(err)
	}
	if sawLatency != 0.25 {
		t.Fatalf("subscriber must see the post-change route, saw %.2f ms", sawLatency)
	}
}

// TestReportNodePropsInvalidatesRoutes: node property reports also bump
// the epoch (translated properties can gate placements, and replanning
// paths must be rebuilt against the same epoch they validate under).
func TestReportNodePropsInvalidatesRoutes(t *testing.T) {
	net := triangle(t)
	m := New(net)
	epoch := net.RouteEpoch()
	if err := m.ReportNodeProps("a", property.Set{"TrustLevel": property.Int(2)}); err != nil {
		t.Fatal(err)
	}
	if net.RouteEpoch() == epoch {
		t.Fatal("a node property change must bump the route epoch")
	}
}
