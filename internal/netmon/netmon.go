// Package netmon is the network-monitoring substrate the paper's
// Section 6 calls for ("the framework be integrated with network
// monitoring tools such as Remos, which obtain relevant information
// about the state of the network and communicate it to network-aware
// applications through a well-defined and uniform set of APIs").
//
// A Monitor owns mutations to a netmodel.Network: reports of changed
// link or node characteristics are applied through it, and subscribers
// (typically an adaptation loop around planner.Replan) are notified
// with a summary of what changed. The monitor also bridges the trust
// layer: re-running credential translation on demand lets dRBAC
// revocations surface as property changes.
package netmon

import (
	"fmt"
	"sync"

	"partsvc/internal/netmodel"
	"partsvc/internal/property"
)

// Change describes one observed difference in the network.
type Change struct {
	// Kind is "node" or "link".
	Kind string
	// Subject identifies the changed element ("sd-2" or "ny-1~sd-1").
	Subject string
	// Field names what changed (a property name, "latency",
	// "bandwidth", "secure").
	Field string
	// Old and New are the before/after values rendered as strings.
	Old, New string
}

// String renders the change compactly.
func (c Change) String() string {
	return fmt.Sprintf("%s %s: %s %s -> %s", c.Kind, c.Subject, c.Field, c.Old, c.New)
}

// Subscriber receives batched change notifications.
type Subscriber func(changes []Change)

// Monitor applies and broadcasts network state changes.
type Monitor struct {
	mu   sync.Mutex
	net  *netmodel.Network
	subs []Subscriber
}

// New returns a monitor over a network.
func New(net *netmodel.Network) *Monitor {
	return &Monitor{net: net}
}

// Subscribe registers a notification callback. Callbacks run
// synchronously, in registration order, under the monitor's report
// call.
func (m *Monitor) Subscribe(s Subscriber) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.subs = append(m.subs, s)
}

func (m *Monitor) notify(changes []Change) {
	m.notifyInvalidate(changes, m.net.InvalidateRoutes)
}

// notifyInvalidate runs the supplied route invalidation before
// subscribers: an adaptation loop replanning from inside its callback
// must see the post-change shortest paths, never an epoch-stale route.
// Link-figure reports pass the copy-on-write delta invalidator so a
// single link event does not discard every cached shortest-path tree.
func (m *Monitor) notifyInvalidate(changes []Change, invalidate func()) {
	if len(changes) == 0 {
		return
	}
	invalidate()
	for _, s := range m.subs {
		s(changes)
	}
}

// ReportNodeProps applies new service-relevant properties to a node
// (e.g. a re-translated TrustLevel after a credential revocation) and
// notifies subscribers of the differences.
func (m *Monitor) ReportNodeProps(id netmodel.NodeID, props property.Set) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	node, ok := m.net.Node(id)
	if !ok {
		return fmt.Errorf("netmon: unknown node %q", id)
	}
	var changes []Change
	for name, v := range props {
		old, had := node.Props[name]
		if had && old.Equal(v) {
			continue
		}
		oldStr := "<unset>"
		if had {
			oldStr = old.String()
		}
		changes = append(changes, Change{
			Kind: "node", Subject: string(id), Field: name, Old: oldStr, New: v.String(),
		})
		node.Props[name] = v
	}
	m.notify(changes)
	return nil
}

// ReportNodeDown marks a node as crashed/unreachable and notifies
// subscribers. Down nodes cannot host placements and their links drop
// out of routing; an adaptation loop replanning from the notification
// evicts every instance placed there. Reporting an already-down node is
// a no-op (failure detectors may confirm a suspicion many times).
func (m *Monitor) ReportNodeDown(id netmodel.NodeID) error {
	return m.reportLiveness(id, true)
}

// ReportNodeUp clears a node's down mark (the node rejoined the
// network) and notifies subscribers.
func (m *Monitor) ReportNodeUp(id netmodel.NodeID) error {
	return m.reportLiveness(id, false)
}

func (m *Monitor) reportLiveness(id netmodel.NodeID, down bool) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	node, ok := m.net.Node(id)
	if !ok {
		return fmt.Errorf("netmon: unknown node %q", id)
	}
	if node.Down == down {
		return nil
	}
	node.Down = down
	// The change is rendered as the node's "up" state: before the
	// transition the node was up exactly when it is now going down.
	m.notify([]Change{{
		Kind: "node", Subject: string(id), Field: "up",
		Old: fmt.Sprint(down), New: fmt.Sprint(!down),
	}})
	return nil
}

// ReportLink applies new link characteristics. Negative latency or
// bandwidth values mean "unchanged"; secure may be nil for unchanged.
func (m *Monitor) ReportLink(a, b netmodel.NodeID, latencyMS, bandwidthMbps float64, secure *bool) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	link, ok := m.net.Link(a, b)
	if !ok {
		return fmt.Errorf("netmon: unknown link %s~%s", a, b)
	}
	subject := fmt.Sprintf("%s~%s", a, b)
	var changes []Change
	if latencyMS >= 0 && latencyMS != link.LatencyMS {
		changes = append(changes, Change{
			Kind: "link", Subject: subject, Field: "latency",
			Old: fmt.Sprint(link.LatencyMS), New: fmt.Sprint(latencyMS),
		})
		link.LatencyMS = latencyMS
	}
	if bandwidthMbps >= 0 && bandwidthMbps != link.BandwidthMbps {
		changes = append(changes, Change{
			Kind: "link", Subject: subject, Field: "bandwidth",
			Old: fmt.Sprint(link.BandwidthMbps), New: fmt.Sprint(bandwidthMbps),
		})
		link.BandwidthMbps = bandwidthMbps
	}
	secureChanged := false
	if secure != nil && *secure != link.Secure {
		secureChanged = true
		changes = append(changes, Change{
			Kind: "link", Subject: subject, Field: "secure",
			Old: fmt.Sprint(link.Secure), New: fmt.Sprint(*secure),
		})
		link.Secure = *secure
		link.Props["Confidentiality"] = property.Bool(*secure)
	}
	if secureChanged {
		// Property mutation aliases maps the route cache may share;
		// only a full invalidation is safe.
		m.notify(changes)
	} else {
		m.notifyInvalidate(changes, func() { m.net.InvalidateRoutesLinkDelta(a, b) })
	}
	return nil
}

// Retranslate re-runs credential translation over the whole network and
// reports every resulting property change: the bridge from the trust
// layer's continuous credential monitoring ("the dRBAC implementation
// takes responsibility for continuous monitoring of credential
// validity") to the planner's view of the world. Unlike
// netmodel.Network.Translate, re-translation REPLACES previously
// translated values (a revoked credential must lower a trust level).
func (m *Monitor) Retranslate(nodeFn netmodel.TranslationFunc) {
	m.mu.Lock()
	defer m.mu.Unlock()
	var changes []Change
	for _, node := range m.net.Nodes() {
		if nodeFn == nil {
			continue
		}
		fresh := nodeFn(node.Credentials)
		for name, v := range fresh {
			old, had := node.Props[name]
			if had && old.Equal(v) {
				continue
			}
			oldStr := "<unset>"
			if had {
				oldStr = old.String()
			}
			changes = append(changes, Change{
				Kind: "node", Subject: string(node.ID), Field: name, Old: oldStr, New: v.String(),
			})
			node.Props[name] = v
		}
		// Properties the translation no longer produces are withdrawn.
		for name, old := range node.Props {
			if _, still := fresh[name]; !still {
				changes = append(changes, Change{
					Kind: "node", Subject: string(node.ID), Field: name, Old: old.String(), New: "<unset>",
				})
				delete(node.Props, name)
			}
		}
	}
	m.notify(changes)
}
