package mail

import (
	"strings"
	"testing"

	"partsvc/internal/coherence"
	"partsvc/internal/transport"
)

// TestViewSnapshotIsCoherent: View.Snapshot flushes pending local
// writes upstream before serializing, so the snapshot never contains
// writes invisible to the primary.
func TestViewSnapshotIsCoherent(t *testing.T) {
	srv, _, clock := newPrimary(t, "alice", "bob")
	v := newTestView(t, srv, "vms", 4, coherence.CountBound{Bound: 100}, clock, 1<<32)
	if _, err := v.Send("alice", "bob", "s", []byte("m"), 2); err != nil {
		t.Fatal(err)
	}
	if v.Pending() == 0 {
		t.Fatal("count-bound policy should hold the write locally")
	}
	snap, err := v.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if v.Pending() != 0 {
		t.Fatal("snapshot must flush pending writes first")
	}
	if srv.Store().InboxCount("bob") != 1 {
		t.Fatal("flushed write must reach the primary before the snapshot")
	}
	restored, err := RestoreStore(snap, 0)
	if err != nil {
		t.Fatal(err)
	}
	if restored.InboxCount("bob") != 1 {
		t.Fatalf("restored inbox = %d, want 1", restored.InboxCount("bob"))
	}
}

// TestSnapshotRemoteRoundTrip: the "snapshot" wire method carries a
// view's serialized store across the transport — the controller's
// state-capture path during a cutover.
func TestSnapshotRemoteRoundTrip(t *testing.T) {
	srv, _, clock := newPrimary(t, "alice", "bob")
	v := newTestView(t, srv, "vms", 4, coherence.WriteThrough{}, clock, 1<<32)
	if _, err := v.Send("alice", "bob", "s", []byte("m"), 2); err != nil {
		t.Fatal(err)
	}
	tr := transport.NewInProc()
	ln, err := tr.Serve("", NewHandler(v))
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	snap, err := SnapshotRemote(tr, ln.Addr())
	if err != nil {
		t.Fatal(err)
	}
	restored, err := RestoreStore(snap, 0)
	if err != nil {
		t.Fatal(err)
	}
	if restored.InboxCount("bob") != 1 {
		t.Fatalf("restored inbox = %d, want 1", restored.InboxCount("bob"))
	}
}

// TestSnapshotOfStatelessComponentErrors: relays hold no migratable
// state; asking one for a snapshot is an application error, not a
// panic — the controller treats it as "redeploy stateless".
func TestSnapshotOfStatelessComponentErrors(t *testing.T) {
	srv, _, clock := newPrimary(t, "alice", "bob")
	v := newTestView(t, srv, "vms", 4, coherence.WriteThrough{}, clock, 1<<32)
	// Model a relay: forwards the full Upstream API, holds no store.
	relay := struct{ Upstream }{v}
	tr := transport.NewInProc()
	ln, err := tr.Serve("", NewHandler(relay))
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	_, err = SnapshotRemote(tr, ln.Addr())
	if err == nil || !strings.Contains(err.Error(), "no migratable state") {
		t.Fatalf("err = %v, want a no-migratable-state failure", err)
	}
}
