package mail

import (
	"context"
	"fmt"
	"sync/atomic"

	"partsvc/internal/coherence"
	"partsvc/internal/trace"
	"partsvc/internal/transport"
	"partsvc/internal/wire"
)

// RPC adapters: expose an Upstream over a transport (NewHandler) and
// consume a remote Upstream through an endpoint (NewRemote). All
// payloads use the wire value encoding, so the same bits flow over the
// in-process transport, TCP, and the encryptor tunnel.

// NewHandler serves an Upstream as a transport.Handler. Each request
// runs under a "mail.<method>" span continuing whatever trace context
// rode in on the message (stamped by the transport's serve span).
func NewHandler(api Upstream) transport.Handler {
	return transport.HandlerFunc(func(m *wire.Message) *wire.Message {
		ctx, span := trace.StartRemote(context.Background(),
			trace.SpanContext{TraceID: m.TraceID, SpanID: m.SpanID}, "mail."+m.Method)
		reply, err := dispatch(ctx, api, m)
		span.End()
		if err != nil {
			return transport.ErrorResponse(m, "%v", err)
		}
		body, err := wire.Marshal(reply)
		if err != nil {
			return transport.ErrorResponse(m, "encoding reply: %v", err)
		}
		return &wire.Message{Kind: wire.KindResponse, ID: m.ID, Method: m.Method, Body: body}
	})
}

func dispatch(ctx context.Context, api Upstream, m *wire.Message) (map[string]any, error) {
	args, err := decodeArgs(m.Body)
	if err != nil {
		return nil, err
	}
	str := func(k string) string { s, _ := args[k].(string); return s }
	switch m.Method {
	case "createAccount":
		return map[string]any{}, api.CreateAccount(str("user"))
	case "send":
		body, _ := args["body"].([]byte)
		sens, _ := args["sens"].(int64)
		id, err := SendCtx(ctx, api, str("from"), str("to"), str("subject"), body, int(sens))
		return map[string]any{"id": int64(id)}, err
	case "receive":
		msgs, err := ReceiveCtx(ctx, api, str("user"))
		if err != nil {
			return nil, err
		}
		encoded := make([]any, len(msgs))
		for i, msg := range msgs {
			data, err := encodeMessage(msg)
			if err != nil {
				return nil, err
			}
			encoded[i] = data
		}
		return map[string]any{"msgs": encoded}, nil
	case "addContact":
		return map[string]any{}, api.AddContact(str("user"), str("contact"))
	case "contacts":
		contacts, err := api.Contacts(str("user"))
		if err != nil {
			return nil, err
		}
		out := make([]any, len(contacts))
		for i, c := range contacts {
			out[i] = c
		}
		return map[string]any{"contacts": out}, nil
	case "pushUpdates":
		items, _ := args["batch"].([]any)
		batch := make([]coherence.Update, 0, len(items))
		for _, item := range items {
			u, err := decodeUpdate(item)
			if err != nil {
				return nil, err
			}
			batch = append(batch, u)
		}
		return map[string]any{}, PushUpdatesCtx(ctx, api, batch)
	case "snapshot":
		sn, ok := api.(Snapshotter)
		if !ok {
			return nil, fmt.Errorf("mail: %T holds no migratable state", api)
		}
		state, err := sn.Snapshot()
		if err != nil {
			return nil, err
		}
		return map[string]any{"state": state}, nil
	default:
		return nil, fmt.Errorf("mail: unknown method %q", m.Method)
	}
}

func decodeArgs(body []byte) (map[string]any, error) {
	if len(body) == 0 {
		return map[string]any{}, nil
	}
	v, err := wire.Unmarshal(body)
	if err != nil {
		return nil, err
	}
	args, ok := v.(map[string]any)
	if !ok {
		return nil, fmt.Errorf("mail: args are %T, want map", v)
	}
	return args, nil
}

func encodeUpdate(u coherence.Update) map[string]any {
	return map[string]any{
		"origin": u.Origin, "seq": int64(u.Seq), "op": u.Op,
		"key": u.Key, "data": u.Data, "time": u.TimeMS,
	}
}

func decodeUpdate(v any) (coherence.Update, error) {
	f, ok := v.(map[string]any)
	if !ok {
		return coherence.Update{}, fmt.Errorf("mail: update is %T", v)
	}
	u := coherence.Update{}
	u.Origin, _ = f["origin"].(string)
	if seq, ok := f["seq"].(int64); ok {
		u.Seq = uint64(seq)
	}
	u.Op, _ = f["op"].(string)
	u.Key, _ = f["key"].(string)
	u.Data, _ = f["data"].([]byte)
	u.TimeMS, _ = f["time"].(float64)
	if u.Origin == "" || u.Seq == 0 || u.Op == "" {
		return coherence.Update{}, fmt.Errorf("mail: incomplete update encoding")
	}
	return u, nil
}

// Remote is a client stub: an Upstream backed by a transport endpoint.
// It is safe for concurrent use: endpoints multiplex calls, and the
// message ID sequence is atomic.
type Remote struct {
	ep transport.Endpoint
	id atomic.Uint64
}

// NewRemote returns an Upstream that forwards every call over the
// endpoint (which may itself be an EncryptorEndpoint tunnel).
func NewRemote(ep transport.Endpoint) *Remote { return &Remote{ep: ep} }

// Close releases the endpoint.
func (r *Remote) Close() error { return r.ep.Close() }

// call performs one proxied RPC under a "proxy.<method>" span (a new
// root when ctx carries no trace), so the remote side's spans link
// causally back to this stub.
func (r *Remote) call(ctx context.Context, method string, args map[string]any) (map[string]any, error) {
	body, err := wire.Marshal(args)
	if err != nil {
		return nil, err
	}
	ctx, span := trace.Start(ctx, "proxy."+method)
	id := r.id.Add(1)
	resp, err := transport.Call(ctx, r.ep, &wire.Message{Kind: wire.KindRequest, ID: id, Method: method, Body: body})
	span.End()
	if err != nil {
		return nil, err
	}
	if err := transport.AsError(resp); err != nil {
		return nil, err
	}
	return decodeArgs(resp.Body)
}

// CreateAccount implements API.
func (r *Remote) CreateAccount(user string) error {
	_, err := r.call(context.Background(), "createAccount", map[string]any{"user": user})
	return err
}

// Send implements API.
func (r *Remote) Send(from, to, subject string, body []byte, sensitivity int) (uint64, error) {
	return r.SendCtx(context.Background(), from, to, subject, body, sensitivity)
}

// SendCtx is Send continuing the trace in ctx.
func (r *Remote) SendCtx(ctx context.Context, from, to, subject string, body []byte, sensitivity int) (uint64, error) {
	reply, err := r.call(ctx, "send", map[string]any{
		"from": from, "to": to, "subject": subject, "body": body, "sens": int64(sensitivity),
	})
	if err != nil {
		return 0, err
	}
	id, _ := reply["id"].(int64)
	return uint64(id), nil
}

// Receive implements API.
func (r *Remote) Receive(user string) ([]*Message, error) {
	return r.ReceiveCtx(context.Background(), user)
}

// ReceiveCtx is Receive continuing the trace in ctx.
func (r *Remote) ReceiveCtx(ctx context.Context, user string) ([]*Message, error) {
	reply, err := r.call(ctx, "receive", map[string]any{"user": user})
	if err != nil {
		return nil, err
	}
	items, _ := reply["msgs"].([]any)
	out := make([]*Message, 0, len(items))
	for _, item := range items {
		data, ok := item.([]byte)
		if !ok {
			return nil, fmt.Errorf("mail: message entry is %T", item)
		}
		m, err := decodeMessage(data)
		if err != nil {
			return nil, err
		}
		out = append(out, m)
	}
	return out, nil
}

// AddContact implements API.
func (r *Remote) AddContact(user, contact string) error {
	_, err := r.call(context.Background(), "addContact", map[string]any{"user": user, "contact": contact})
	return err
}

// Contacts implements API.
func (r *Remote) Contacts(user string) ([]string, error) {
	reply, err := r.call(context.Background(), "contacts", map[string]any{"user": user})
	if err != nil {
		return nil, err
	}
	items, _ := reply["contacts"].([]any)
	out := make([]string, 0, len(items))
	for _, item := range items {
		s, ok := item.(string)
		if !ok {
			return nil, fmt.Errorf("mail: contact entry is %T", item)
		}
		out = append(out, s)
	}
	return out, nil
}

// Snapshotter is implemented by stateful mail components (Server, View)
// whose store can be serialized for migration. Relay components
// (encryptor, decryptor, client proxy) do not implement it: they hold
// no state worth carrying across a cutover.
type Snapshotter interface {
	Snapshot() ([]byte, error)
}

// Snapshot fetches the remote instance's serialized store state (the
// "snapshot" method). Stateless instances answer with an error.
func (r *Remote) Snapshot() ([]byte, error) {
	reply, err := r.call(context.Background(), "snapshot", map[string]any{})
	if err != nil {
		return nil, err
	}
	state, _ := reply["state"].([]byte)
	if state == nil {
		return nil, fmt.Errorf("mail: snapshot reply carried no state")
	}
	return state, nil
}

// SnapshotRemote dials addr on tr and fetches that instance's state
// snapshot — the adaptation controller's state-capture primitive.
func SnapshotRemote(tr transport.Transport, addr string) ([]byte, error) {
	ep, err := tr.Dial(addr)
	if err != nil {
		return nil, err
	}
	r := NewRemote(ep)
	defer r.Close()
	return r.Snapshot()
}

// PushUpdates implements UpdateSink.
func (r *Remote) PushUpdates(batch []coherence.Update) error {
	return r.PushUpdatesCtx(context.Background(), batch)
}

// PushUpdatesCtx is PushUpdates continuing the trace in ctx.
func (r *Remote) PushUpdatesCtx(ctx context.Context, batch []coherence.Update) error {
	items := make([]any, len(batch))
	for i, u := range batch {
		items[i] = encodeUpdate(u)
	}
	_, err := r.call(ctx, "pushUpdates", map[string]any{"batch": items})
	return err
}
