package mail

import (
	"bytes"
	"strings"
	"testing"

	"partsvc/internal/coherence"
	"partsvc/internal/seccrypto"
	"partsvc/internal/transport"
	"partsvc/internal/wire"
)

// fakeClock is a manually advanced clock for deterministic tests.
type fakeClock struct{ now float64 }

func (c *fakeClock) NowMS() float64 { return c.now }

func newPrimary(t *testing.T, users ...string) (*Server, *seccrypto.KeyRing, *fakeClock) {
	t.Helper()
	keys := seccrypto.NewKeyRing()
	clock := &fakeClock{}
	srv := NewServer(keys, clock)
	for _, u := range users {
		if err := srv.CreateAccount(u); err != nil {
			t.Fatal(err)
		}
	}
	return srv, keys, clock
}

func TestStoreAccountsAndFolders(t *testing.T) {
	s := NewStore(0)
	if err := s.CreateAccount("alice"); err != nil {
		t.Fatal(err)
	}
	if err := s.CreateAccount("alice"); err == nil {
		t.Error("duplicate account must fail")
	}
	if err := s.CreateAccount(""); err == nil {
		t.Error("empty user must fail")
	}
	if !s.HasAccount("alice") || s.HasAccount("bob") {
		t.Error("HasAccount wrong")
	}
	s.EnsureAccount("bob")
	s.EnsureAccount("bob") // idempotent
	if got := s.Users(); len(got) != 2 || got[0] != "alice" {
		t.Errorf("Users = %v", got)
	}
	if _, err := s.Folder("ghost", FolderInbox); err == nil {
		t.Error("folder of missing account must fail")
	}
}

func TestStoreSensitivityCeiling(t *testing.T) {
	s := NewStore(2)
	s.EnsureAccount("alice")
	if !s.Admissible(2) || s.Admissible(3) {
		t.Error("Admissible wrong")
	}
	err := s.Append("alice", FolderInbox, &Message{ID: 1, From: "b", To: "alice", Sensitivity: 3})
	if err == nil {
		t.Error("message above ceiling must be rejected")
	}
	if err := s.Append("alice", FolderInbox, &Message{ID: 2, From: "b", To: "alice", Sensitivity: 2}); err != nil {
		t.Error(err)
	}
	if s.InboxCount("alice") != 1 {
		t.Error("inbox count wrong")
	}
}

func TestStoreAppendIdempotentByID(t *testing.T) {
	s := NewStore(0)
	s.EnsureAccount("alice")
	m := &Message{ID: 7, From: "b", To: "alice", Sensitivity: 1}
	if err := s.Append("alice", FolderInbox, m); err != nil {
		t.Fatal(err)
	}
	if err := s.Append("alice", FolderInbox, m); err != nil {
		t.Fatal(err)
	}
	if s.InboxCount("alice") != 1 {
		t.Error("replicated delivery must be idempotent")
	}
}

func TestStoreContacts(t *testing.T) {
	s := NewStore(0)
	s.EnsureAccount("alice")
	if err := s.AddContact("alice", "bob"); err != nil {
		t.Fatal(err)
	}
	if err := s.AddContact("alice", "bob"); err != nil {
		t.Fatal(err)
	}
	got, err := s.Contacts("alice")
	if err != nil || len(got) != 1 || got[0] != "bob" {
		t.Errorf("contacts = %v, %v", got, err)
	}
	if err := s.AddContact("ghost", "x"); err == nil {
		t.Error("contacts on missing account must fail")
	}
	if _, err := s.Contacts("ghost"); err == nil {
		t.Error("contacts on missing account must fail")
	}
}

func TestServerSendReceiveRoundTrip(t *testing.T) {
	srv, keys, clock := newPrimary(t, "alice", "bob")
	clock.now = 42
	id, err := srv.Send("alice", "bob", "hi", []byte("secret body"), 3)
	if err != nil {
		t.Fatal(err)
	}
	if id == 0 {
		t.Error("message ID must be assigned")
	}
	bob := NewClient("bob", keys, srv)
	msgs, err := bob.Receive()
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != 1 {
		t.Fatalf("inbox = %d messages", len(msgs))
	}
	m := msgs[0]
	if string(m.Body) != "secret body" || m.From != "alice" || m.Subject != "hi" || m.SentAtMS != 42 {
		t.Errorf("message = %+v", m)
	}
	// Sender's sent folder holds the sealed copy.
	sent, err := srv.Store().Folder("alice", FolderSent)
	if err != nil || len(sent) != 1 {
		t.Fatalf("sent folder = %v, %v", sent, err)
	}
	if bytes.Contains(sent[0].Body, []byte("secret body")) {
		t.Error("stored body must be sealed, not plaintext")
	}
}

func TestServerSendValidation(t *testing.T) {
	srv, _, _ := newPrimary(t, "alice", "bob")
	if _, err := srv.Send("alice", "bob", "s", nil, 0); err == nil {
		t.Error("sensitivity 0 must fail")
	}
	if _, err := srv.Send("alice", "bob", "s", nil, seccrypto.MaxLevel+1); err == nil {
		t.Error("sensitivity above max must fail")
	}
	if _, err := srv.Send("alice", "ghost", "s", nil, 1); err == nil {
		t.Error("send to missing account must fail at the primary")
	}
	if _, err := srv.Send("ghost", "bob", "s", nil, 1); err == nil {
		t.Error("send from user without keys must fail")
	}
}

func TestServerContacts(t *testing.T) {
	srv, _, _ := newPrimary(t, "alice")
	if err := srv.AddContact("alice", "bob"); err != nil {
		t.Fatal(err)
	}
	got, err := srv.Contacts("alice")
	if err != nil || len(got) != 1 {
		t.Errorf("contacts = %v, %v", got, err)
	}
}

// newTestView wires a view replica to a primary through the coherence
// directory, as the deployment engine does.
func newTestView(t *testing.T, srv *Server, id string, trust int, policy coherence.Policy, clock transport.Clock, idBase uint64) *View {
	t.Helper()
	v, err := NewView(ViewConfig{
		ID: id, Trust: trust, Keys: srv.Keys().SubRing(trust),
		Upstream: srv, Policy: policy, Clock: clock,
	}, idBase)
	if err != nil {
		t.Fatal(err)
	}
	srv.Directory().Register(ViewName, v.Replica())
	return v
}

func TestViewConfigValidation(t *testing.T) {
	srv, keys, clock := newPrimary(t, "alice")
	if _, err := NewView(ViewConfig{ID: "v", Trust: 0, Keys: keys.SubRing(1), Upstream: srv, Clock: clock}, 0); err == nil {
		t.Error("trust 0 must fail")
	}
	if _, err := NewView(ViewConfig{ID: "v", Trust: 2, Keys: keys, Upstream: srv, Clock: clock}, 0); err == nil {
		t.Error("over-escrowed keys must fail")
	}
	if _, err := NewView(ViewConfig{ID: "v", Trust: 2, Keys: keys.SubRing(2), Clock: clock}, 0); err == nil {
		t.Error("missing upstream must fail")
	}
}

func TestViewSendWithinTrustStaysLocalUntilFlush(t *testing.T) {
	srv, keys, clock := newPrimary(t, "alice", "bob")
	v := newTestView(t, srv, "vms-sd", 4, coherence.CountBound{Bound: 3}, clock, 1<<32)

	if _, err := v.Send("alice", "bob", "s1", []byte("m1"), 2); err != nil {
		t.Fatal(err)
	}
	if _, err := v.Send("alice", "bob", "s2", []byte("m2"), 2); err != nil {
		t.Fatal(err)
	}
	if v.Pending() != 2 {
		t.Errorf("pending = %d, want 2", v.Pending())
	}
	if srv.Store().InboxCount("bob") != 0 {
		t.Error("primary must not see unflushed sends")
	}
	// Third send reaches the bound and flushes.
	if _, err := v.Send("alice", "bob", "s3", []byte("m3"), 2); err != nil {
		t.Fatal(err)
	}
	if v.Pending() != 0 {
		t.Errorf("pending after flush = %d", v.Pending())
	}
	if got := srv.Store().InboxCount("bob"); got != 3 {
		t.Errorf("primary inbox = %d, want 3", got)
	}
	// Receive at the view is served locally and decryptable by bob.
	bob := NewClient("bob", keys, v)
	msgs, err := bob.Receive()
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != 3 {
		t.Errorf("view inbox = %d", len(msgs))
	}
}

func TestViewForwardsHighSensitivityUpstream(t *testing.T) {
	srv, keys, clock := newPrimary(t, "alice", "bob")
	v := newTestView(t, srv, "vms-sea", 2, coherence.None{}, clock, 1<<33)

	if _, err := v.Send("alice", "bob", "top", []byte("classified"), 4); err != nil {
		t.Fatal(err)
	}
	if v.Store().InboxCount("bob") != 0 {
		t.Error("high-sensitivity message must not be stored at the view")
	}
	if srv.Store().InboxCount("bob") != 1 {
		t.Error("high-sensitivity message must reach the primary")
	}
	// The view's receive still surfaces it by fetching upstream.
	bob := NewClient("bob", keys, v)
	msgs, err := bob.Receive()
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != 1 || string(msgs[0].Body) != "classified" {
		t.Errorf("receive through view = %v", msgs)
	}
}

func TestViewReceivesReplicatedDeliveries(t *testing.T) {
	srv, keys, clock := newPrimary(t, "alice", "bob")
	v := newTestView(t, srv, "vms-sd", 4, coherence.None{}, clock, 1<<32)
	// A send at the primary propagates down to the view immediately
	// (the primary is write-through).
	if _, err := srv.Send("alice", "bob", "s", []byte("from ny"), 2); err != nil {
		t.Fatal(err)
	}
	if v.Store().InboxCount("bob") != 1 {
		t.Error("view must receive primary deliveries via the directory")
	}
	bob := NewClient("bob", keys, v)
	msgs, err := bob.Receive()
	if err != nil || len(msgs) != 1 {
		t.Fatalf("receive = %v, %v", msgs, err)
	}
}

func TestViewCatchUpOnRegistration(t *testing.T) {
	srv, _, clock := newPrimary(t, "alice", "bob")
	if _, err := srv.Send("alice", "bob", "early", []byte("m"), 2); err != nil {
		t.Fatal(err)
	}
	v := newTestView(t, srv, "late-view", 4, coherence.None{}, clock, 1<<32)
	if v.Store().InboxCount("bob") != 1 {
		t.Error("newly registered view must catch up on history")
	}
}

func TestViewSensitivityCeilingOnReplication(t *testing.T) {
	srv, _, clock := newPrimary(t, "alice", "bob")
	v := newTestView(t, srv, "vms-sea", 2, coherence.None{}, clock, 1<<32)
	if _, err := srv.Send("alice", "bob", "top", []byte("secret"), 5); err != nil {
		t.Fatal(err)
	}
	if v.Store().InboxCount("bob") != 0 {
		t.Error("level-5 message must not replicate to a trust-2 view")
	}
}

func TestViewPeriodicFlush(t *testing.T) {
	srv, _, clock := newPrimary(t, "alice", "bob")
	v := newTestView(t, srv, "vms-sd", 4, coherence.Periodic{PeriodMS: 500}, clock, 1<<32)
	if _, err := v.Send("alice", "bob", "s", []byte("m"), 2); err != nil {
		t.Fatal(err)
	}
	if flushed, _ := v.FlushIfDue(); flushed {
		t.Error("must not flush before the deadline")
	}
	clock.now = 600
	flushed, err := v.FlushIfDue()
	if err != nil || !flushed {
		t.Errorf("flush = %v, %v", flushed, err)
	}
	if srv.Store().InboxCount("bob") != 1 {
		t.Error("periodic flush must reach the primary")
	}
	// Nothing pending: due deadline flushes nothing.
	clock.now = 1200
	if flushed, _ := v.FlushIfDue(); flushed {
		t.Error("no pending writes, no flush")
	}
}

func TestChainedViewsSeattleToSanDiego(t *testing.T) {
	srv, keys, clock := newPrimary(t, "alice", "carol")
	sd := newTestView(t, srv, "vms-sd", 4, coherence.WriteThrough{}, clock, 1<<32)
	srv.Directory().Register(ViewName, sd.Replica())
	sea, err := NewView(ViewConfig{
		ID: "vms-sea", Trust: 2, Keys: srv.Keys().SubRing(2),
		Upstream: sd, Policy: coherence.WriteThrough{}, Clock: clock,
	}, 1<<33)
	if err != nil {
		t.Fatal(err)
	}
	srv.Directory().Register(ViewName, sea.Replica())

	carol := NewViewClient("carol", 2, srv.Keys().SubRing(2), sea)
	if _, err := carol.Send("alice", "hello", []byte("from seattle"), 2); err != nil {
		t.Fatal(err)
	}
	// Write-through: the send is visible at every level of the chain.
	if srv.Store().InboxCount("alice") != 1 {
		t.Error("primary must see the Seattle send")
	}
	if sd.Store().InboxCount("alice") != 1 {
		t.Error("the SD view must see the Seattle send (it forwarded it)")
	}
	alice := NewClient("alice", keys, srv)
	msgs, err := alice.Receive()
	if err != nil || len(msgs) != 1 || string(msgs[0].Body) != "from seattle" {
		t.Fatalf("alice receive = %v, %v", msgs, err)
	}
}

func TestViewClientRestrictions(t *testing.T) {
	srv, _, _ := newPrimary(t, "alice", "carol")
	carol := NewViewClient("carol", 2, srv.Keys().SubRing(2), srv)
	if _, err := carol.Send("alice", "s", []byte("m"), 3); err == nil {
		t.Error("view client must reject sends above its trust")
	}
	if _, err := carol.Send("alice", "s", []byte("m"), 2); err != nil {
		t.Error(err)
	}
	// A high-sensitivity message to carol is elided from her restricted
	// receive rather than failing it.
	if _, err := srv.Send("alice", "carol", "top", []byte("secret"), 5); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Send("alice", "carol", "ok", []byte("public"), 1); err != nil {
		t.Fatal(err)
	}
	msgs, err := carol.Receive()
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != 1 || string(msgs[0].Body) != "public" {
		t.Errorf("restricted receive = %v", msgs)
	}
}

func TestClientDecryptionIsEndToEnd(t *testing.T) {
	srv, keys, _ := newPrimary(t, "alice", "bob")
	alice := NewClient("alice", keys, srv)
	if _, err := alice.Send("bob", "s", []byte("payload"), 2); err != nil {
		t.Fatal(err)
	}
	if err := alice.AddContact("bob"); err != nil {
		t.Fatal(err)
	}
	got, err := alice.Contacts()
	if err != nil || len(got) != 1 || got[0] != "bob" {
		t.Errorf("contacts = %v, %v", got, err)
	}
	if alice.User() != "alice" {
		t.Error("User()")
	}
}

// TestRemoteOverTransportWithTunnel is the full Figure 6 data path in
// one process: client -> view (SD) -> encryptor tunnel -> primary (NY),
// with the tunnel crossing the "insecure" hop.
func TestRemoteOverTransportWithTunnel(t *testing.T) {
	srv, keys, clock := newPrimary(t, "alice", "bob")
	tr := transport.NewInProc()

	// Serve the primary behind a decryptor handler.
	channelKey, err := NewChannelKey()
	if err != nil {
		t.Fatal(err)
	}
	ln, err := tr.Serve("decryptor-ny", NewDecryptorHandler(NewHandler(srv), channelKey))
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	// The SD view links upstream through the encryptor endpoint.
	ep, err := tr.Dial("decryptor-ny")
	if err != nil {
		t.Fatal(err)
	}
	upstream := NewRemote(NewEncryptorEndpoint(ep, channelKey))
	view, err := NewView(ViewConfig{
		ID: "vms-sd", Trust: 4, Keys: keys.SubRing(4),
		Upstream: upstream, Policy: coherence.WriteThrough{}, Clock: clock,
	}, 1<<32)
	if err != nil {
		t.Fatal(err)
	}

	alice := NewClient("alice", keys, view)
	if _, err := alice.Send("bob", "over the tunnel", []byte("tunnelled"), 3); err != nil {
		t.Fatal(err)
	}
	if srv.Store().InboxCount("bob") != 1 {
		t.Error("send must reach the primary through the tunnel")
	}
	bob := NewClient("bob", keys, srv)
	msgs, err := bob.Receive()
	if err != nil || len(msgs) != 1 || string(msgs[0].Body) != "tunnelled" {
		t.Fatalf("receive = %v, %v", msgs, err)
	}
	// Remote API surface: contacts and account creation work end to end.
	if err := upstream.CreateAccount("dave"); err != nil {
		t.Fatal(err)
	}
	if err := upstream.AddContact("dave", "alice"); err != nil {
		t.Fatal(err)
	}
	contacts, err := upstream.Contacts("dave")
	if err != nil || len(contacts) != 1 {
		t.Errorf("remote contacts = %v, %v", contacts, err)
	}
	// Remote receive path.
	remoteMsgs, err := upstream.Receive("bob")
	if err != nil || len(remoteMsgs) != 1 {
		t.Errorf("remote receive = %v, %v", remoteMsgs, err)
	}
}

func TestTunnelRejectsWrongKey(t *testing.T) {
	srv, _, _ := newPrimary(t, "alice")
	tr := transport.NewInProc()
	good, _ := NewChannelKey()
	bad, _ := NewChannelKey()
	ln, err := tr.Serve("d", NewDecryptorHandler(NewHandler(srv), good))
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	ep, _ := tr.Dial("d")
	remote := NewRemote(NewEncryptorEndpoint(ep, bad))
	if err := remote.CreateAccount("x"); err == nil {
		t.Error("mismatched channel keys must fail")
	}
	// Non-tunnel traffic to the decryptor fails too.
	plainEp, _ := tr.Dial("d")
	plain := NewRemote(plainEp)
	if err := plain.CreateAccount("x"); err == nil {
		t.Error("plaintext to the decryptor must be rejected")
	}
}

func TestRemoteUnknownMethod(t *testing.T) {
	srv, _, _ := newPrimary(t, "alice")
	h := NewHandler(srv)
	resp := h.Handle(&wire.Message{Kind: wire.KindRequest, Method: "nope"})
	err := transport.AsError(resp)
	if err == nil || !strings.Contains(err.Error(), "unknown method") {
		t.Errorf("resp = %+v", resp)
	}
}
