package mail

import (
	"context"
	"fmt"

	"partsvc/internal/seccrypto"
)

// Client is the full MailClient component: composes, sends, receives,
// and decrypts messages, and manages the address book. It holds its
// user's own keys (all levels) for decrypting received mail.
type Client struct {
	user string
	keys *seccrypto.KeyRing
	api  API
}

// NewClient binds a user to a provider (direct server, view, or
// tunnel-backed remote).
func NewClient(user string, keys *seccrypto.KeyRing, api API) *Client {
	return &Client{user: user, keys: keys, api: api}
}

// User returns the client's user name.
func (c *Client) User() string { return c.user }

// Send submits a plaintext message at a sensitivity level; sealing
// happens inside the trusted provider component.
func (c *Client) Send(to, subject string, body []byte, sensitivity int) (uint64, error) {
	return c.api.Send(c.user, to, subject, body, sensitivity)
}

// SendCtx is Send continuing the trace in ctx — the entry point tools
// use to root a trace at the client.
func (c *Client) SendCtx(ctx context.Context, to, subject string, body []byte, sensitivity int) (uint64, error) {
	return SendCtx(ctx, c.api, c.user, to, subject, body, sensitivity)
}

// Receive fetches the inbox and decrypts every body with the user's
// keys.
func (c *Client) Receive() ([]*Message, error) {
	return c.ReceiveCtx(context.Background())
}

// ReceiveCtx is Receive continuing the trace in ctx.
func (c *Client) ReceiveCtx(ctx context.Context) ([]*Message, error) {
	msgs, err := ReceiveCtx(ctx, c.api, c.user)
	if err != nil {
		return nil, err
	}
	for _, m := range msgs {
		env, err := seccrypto.UnmarshalEnvelope(m.Body)
		if err != nil {
			return nil, fmt.Errorf("mail: message %d: %w", m.ID, err)
		}
		if env.User != c.user {
			return nil, fmt.Errorf("mail: message %d sealed for %q, not %q", m.ID, env.User, c.user)
		}
		if m.Body, err = c.keys.Open(env); err != nil {
			return nil, fmt.Errorf("mail: decrypting message %d: %w", m.ID, err)
		}
	}
	return msgs, nil
}

// AddContact updates the address book (full client feature).
func (c *Client) AddContact(contact string) error {
	return c.api.AddContact(c.user, contact)
}

// Contacts reads the address book (full client feature).
func (c *Client) Contacts() ([]string, error) {
	return c.api.Contacts(c.user)
}

// ViewClient is the ViewMailClient object view: the restricted client
// deployed for less-trusted principals. It supports only send and
// receive — no address book — and caps outgoing sensitivity at its
// node's trust level (the object-view restriction of Section 3.1).
type ViewClient struct {
	user  string
	trust int
	keys  *seccrypto.KeyRing
	api   API
}

// NewViewClient binds a restricted client at a trust level.
func NewViewClient(user string, trust int, keys *seccrypto.KeyRing, api API) *ViewClient {
	return &ViewClient{user: user, trust: trust, keys: keys, api: api}
}

// User returns the client's user name.
func (c *ViewClient) User() string { return c.user }

// Send submits a message; sensitivities above the client's trust are
// rejected locally.
func (c *ViewClient) Send(to, subject string, body []byte, sensitivity int) (uint64, error) {
	if sensitivity > c.trust {
		return 0, fmt.Errorf("mail: view client at trust %d cannot send sensitivity %d", c.trust, sensitivity)
	}
	return c.api.Send(c.user, to, subject, body, sensitivity)
}

// Receive fetches and decrypts the inbox; messages the client's key
// escrow cannot open (above its trust) are elided rather than failing
// the whole sweep.
func (c *ViewClient) Receive() ([]*Message, error) {
	msgs, err := c.api.Receive(c.user)
	if err != nil {
		return nil, err
	}
	out := msgs[:0]
	for _, m := range msgs {
		env, err := seccrypto.UnmarshalEnvelope(m.Body)
		if err != nil {
			return nil, fmt.Errorf("mail: message %d: %w", m.ID, err)
		}
		if m.Sensitivity > c.trust {
			continue
		}
		if m.Body, err = c.keys.Open(env); err != nil {
			return nil, fmt.Errorf("mail: decrypting message %d: %w", m.ID, err)
		}
		out = append(out, m)
	}
	return out, nil
}
