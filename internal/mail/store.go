// Package mail implements the paper's example application (Section 2):
// a security-sensitive mail service built from a replicable MailServer,
// data-view replicas (ViewMailServer), full and restricted clients, and
// Encryptor/Decryptor tunnel components. Messages carry a sensitivity
// level; bodies are sealed to the sender's level on send and transformed
// to the recipient's key on receive. View instances hold only the
// messages whose sensitivity their node's trust level permits.
package mail

import (
	"fmt"
	"sort"
	"sync"
)

// Folder names used by the store.
const (
	FolderInbox = "inbox"
	FolderSent  = "sent"
)

// Message is one mail message. Body is an encoded seccrypto.Envelope
// whenever the message is at rest or in transit.
type Message struct {
	// ID is assigned by the store that first accepts the message.
	ID uint64
	// From and To are user names.
	From, To string
	// Subject is plaintext metadata.
	Subject string
	// Body is the (usually sealed) message payload.
	Body []byte
	// Sensitivity is the message's level (1..seccrypto.MaxLevel).
	Sensitivity int
	// SentAtMS is the sender-side timestamp.
	SentAtMS float64
}

// clone returns a deep copy so callers cannot alias store internals.
func (m *Message) clone() *Message {
	c := *m
	c.Body = append([]byte(nil), m.Body...)
	return &c
}

// Account is one user's mailbox state.
type Account struct {
	User     string
	Folders  map[string][]*Message
	Contacts []string
}

// Store is the mail state engine shared by the MailServer and
// ViewMailServer components: accounts, folders, and contact lists, with
// an optional sensitivity ceiling (a data view on a trust-limited node
// must not hold messages above its level). It is safe for concurrent
// use.
type Store struct {
	mu sync.RWMutex
	// maxSensitivity caps stored messages; 0 means unrestricted.
	maxSensitivity int
	accounts       map[string]*Account
	nextID         uint64
}

// NewStore returns an empty store. maxSensitivity restricts which
// messages the store may hold (0 = unrestricted; the primary server).
func NewStore(maxSensitivity int) *Store {
	return &Store{maxSensitivity: maxSensitivity, accounts: map[string]*Account{}}
}

// MaxSensitivity returns the store's ceiling (0 = unrestricted).
func (s *Store) MaxSensitivity() int { return s.maxSensitivity }

// CreateAccount adds an account; creating an existing account is an
// error.
func (s *Store) CreateAccount(user string) error {
	if user == "" {
		return fmt.Errorf("mail: empty user name")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.accounts[user]; dup {
		return fmt.Errorf("mail: account %q already exists", user)
	}
	s.accounts[user] = &Account{
		User:    user,
		Folders: map[string][]*Message{FolderInbox: nil, FolderSent: nil},
	}
	return nil
}

// EnsureAccount creates the account if absent (used when replicating
// state into views).
func (s *Store) EnsureAccount(user string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.accounts[user]; !ok {
		s.accounts[user] = &Account{
			User:    user,
			Folders: map[string][]*Message{FolderInbox: nil, FolderSent: nil},
		}
	}
}

// HasAccount reports whether the user exists.
func (s *Store) HasAccount(user string) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, ok := s.accounts[user]
	return ok
}

// Users returns the account names, sorted.
func (s *Store) Users() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.accounts))
	for u := range s.accounts {
		out = append(out, u)
	}
	sort.Strings(out)
	return out
}

// AssignID allocates a message ID (primary store only).
func (s *Store) AssignID() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nextID++
	return s.nextID
}

// Admissible reports whether the store may hold a message of the given
// sensitivity.
func (s *Store) Admissible(sensitivity int) bool {
	return s.maxSensitivity == 0 || sensitivity <= s.maxSensitivity
}

// Append files a message copy into a user's folder. It enforces the
// sensitivity ceiling and creates the account if needed (replicated
// deliveries may precede account replication). Duplicate IDs in the
// same folder are ignored, making replicated deliveries idempotent.
func (s *Store) Append(user, folder string, m *Message) error {
	if !s.Admissible(m.Sensitivity) {
		return fmt.Errorf("mail: message sensitivity %d exceeds store ceiling %d", m.Sensitivity, s.maxSensitivity)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	acct, ok := s.accounts[user]
	if !ok {
		acct = &Account{User: user, Folders: map[string][]*Message{FolderInbox: nil, FolderSent: nil}}
		s.accounts[user] = acct
	}
	for _, existing := range acct.Folders[folder] {
		if existing.ID == m.ID && m.ID != 0 {
			return nil
		}
	}
	acct.Folders[folder] = append(acct.Folders[folder], m.clone())
	return nil
}

// Folder returns copies of a user's folder contents in arrival order.
func (s *Store) Folder(user, folder string) ([]*Message, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	acct, ok := s.accounts[user]
	if !ok {
		return nil, fmt.Errorf("mail: no account %q", user)
	}
	msgs := acct.Folders[folder]
	out := make([]*Message, len(msgs))
	for i, m := range msgs {
		out[i] = m.clone()
	}
	return out, nil
}

// AddContact appends to a user's contact list (idempotent).
func (s *Store) AddContact(user, contact string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	acct, ok := s.accounts[user]
	if !ok {
		return fmt.Errorf("mail: no account %q", user)
	}
	for _, c := range acct.Contacts {
		if c == contact {
			return nil
		}
	}
	acct.Contacts = append(acct.Contacts, contact)
	return nil
}

// Contacts returns a copy of the user's contact list.
func (s *Store) Contacts(user string) ([]string, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	acct, ok := s.accounts[user]
	if !ok {
		return nil, fmt.Errorf("mail: no account %q", user)
	}
	return append([]string(nil), acct.Contacts...), nil
}

// InboxCount returns the number of messages in a user's inbox (0 for a
// missing account).
func (s *Store) InboxCount(user string) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	acct, ok := s.accounts[user]
	if !ok {
		return 0
	}
	return len(acct.Folders[FolderInbox])
}
