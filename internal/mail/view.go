package mail

import (
	"context"
	"fmt"
	"strconv"

	"partsvc/internal/coherence"
	"partsvc/internal/seccrypto"
	"partsvc/internal/trace"
	"partsvc/internal/transport"
)

// UpdateSink accepts coherence batches pushed from downstream replicas.
type UpdateSink interface {
	// PushUpdates applies a replica's flushed batch.
	PushUpdates(batch []coherence.Update) error
}

// Upstream is what a view links to: the full mail API plus the
// coherence push path. The primary Server, another View, and the
// encryptor tunnel all satisfy it.
type Upstream interface {
	API
	UpdateSink
}

// PushUpdates applies a batch at the primary and republishes it to the
// other replicas (directory fan-out).
func (s *Server) PushUpdates(batch []coherence.Update) error {
	return s.PushUpdatesCtx(context.Background(), batch)
}

// PushUpdatesCtx is PushUpdates under a "coherence.apply" span.
func (s *Server) PushUpdatesCtx(ctx context.Context, batch []coherence.Update) error {
	_, span := trace.Start(ctx, "coherence.apply")
	if span != nil {
		span.SetAttr("updates", strconv.Itoa(len(batch)))
	}
	// ApplyRemote marks the batch applied exactly once and invokes the
	// store-apply callback; Publish forwards to sibling replicas.
	s.replica.ApplyRemote(batch)
	s.dir.Publish(ViewName, batch)
	span.End()
	return nil
}

// View is the ViewMailServer component: a data view of the MailServer
// holding only messages whose sensitivity its node's trust level
// permits, kept coherent with the primary through a pluggable
// weak-consistency policy.
type View struct {
	id        string
	store     *Store
	keys      *seccrypto.KeyRing
	clock     transport.Clock
	upstream  Upstream
	replica   *coherence.Replica
	conflicts *coherence.ConflictMap
	trust     int
}

// ViewConfig configures a view instance.
type ViewConfig struct {
	// ID identifies the replica in the coherence directory (e.g.
	// "vms@sd-2").
	ID string
	// Trust is the node's trust level: both the store ceiling and the
	// key-escrow bound (the Factors clause TrustLevel=Node.TrustLevel).
	Trust int
	// Keys is the escrowed key ring; it must not hold keys above Trust.
	Keys *seccrypto.KeyRing
	// Upstream is the provider the view links to.
	Upstream Upstream
	// Policy is the coherence policy for local writes.
	Policy coherence.Policy
	// Conflicts, when non-nil, is the view's dynamic conflict map: an
	// incoming operation that conflicts with pending local writes forces
	// a flush first, giving read-your-writes through any replica
	// ("coherence actions are triggered based on dynamic conflict
	// maps"). A nil map never forces synchronization.
	Conflicts *coherence.ConflictMap
	// Clock provides time for timestamps and time-driven policies.
	Clock transport.Clock
	// Snapshot, when non-nil, seeds the view's store from a migrated
	// instance's serialized state (Store.Snapshot); messages above the
	// destination trust are shed on restore.
	Snapshot []byte
}

// NewView builds a view instance. idBase offsets locally assigned
// message IDs so replicas never collide with the primary or each other.
func NewView(cfg ViewConfig, idBase uint64) (*View, error) {
	if cfg.Trust < 1 {
		return nil, fmt.Errorf("mail: view trust %d must be >= 1", cfg.Trust)
	}
	if cfg.Keys == nil || cfg.Keys.MaxLevelAllowed() > cfg.Trust {
		return nil, fmt.Errorf("mail: view %q key escrow exceeds node trust %d", cfg.ID, cfg.Trust)
	}
	if cfg.Upstream == nil {
		return nil, fmt.Errorf("mail: view %q has no upstream", cfg.ID)
	}
	if cfg.Policy == nil {
		cfg.Policy = coherence.WriteThrough{}
	}
	store := NewStore(cfg.Trust)
	if cfg.Snapshot != nil {
		restored, err := RestoreStore(cfg.Snapshot, cfg.Trust)
		if err != nil {
			return nil, fmt.Errorf("mail: view %q: %w", cfg.ID, err)
		}
		store = restored
	}
	store.nextID = idBase
	v := &View{
		id:        cfg.ID,
		store:     store,
		keys:      cfg.Keys,
		clock:     cfg.Clock,
		upstream:  cfg.Upstream,
		conflicts: cfg.Conflicts,
		trust:     cfg.Trust,
	}
	v.replica = coherence.NewReplica(cfg.ID, cfg.Policy, func(u coherence.Update) {
		applyUpdate(store, u)
	})
	return v, nil
}

// Replica exposes the coherence agent for directory registration.
func (v *View) Replica() *coherence.Replica { return v.replica }

// Store exposes the view's partial store (for tests and tools).
func (v *View) Store() *Store { return v.store }

// Trust returns the view's factored trust level.
func (v *View) Trust() int { return v.trust }

// CreateAccount delegates account creation to the primary (keys are
// generated there) and mirrors the account locally.
func (v *View) CreateAccount(user string) error {
	if err := v.upstream.CreateAccount(user); err != nil {
		return err
	}
	v.store.EnsureAccount(user)
	return nil
}

// Send files the message locally when its sensitivity is within the
// node's trust (sealing with the escrowed key) and logs a coherence
// write; messages above the ceiling are forwarded upstream untouched —
// they must neither be stored nor sealed here ("this influences whether
// or not messages of a given sensitivity level are sent to or stored in
// the corresponding ViewMailServer"). The policy decides when pending
// writes flush upstream.
func (v *View) Send(from, to, subject string, body []byte, sensitivity int) (uint64, error) {
	return v.SendCtx(context.Background(), from, to, subject, body, sensitivity)
}

// SendCtx is Send continuing the trace in ctx (upstream forwards and
// policy-triggered flushes parent on the send's span).
func (v *View) SendCtx(ctx context.Context, from, to, subject string, body []byte, sensitivity int) (uint64, error) {
	if !v.store.Admissible(sensitivity) {
		return SendCtx(ctx, v.upstream, from, to, subject, body, sensitivity)
	}
	m, err := sealMessage(v.keys, v.store, from, to, subject, body, sensitivity, v.clock.NowMS())
	if err != nil {
		return 0, err
	}
	v.store.EnsureAccount(m.To)
	if err := deliver(v.store, m); err != nil {
		return 0, err
	}
	data, err := encodeMessage(m)
	if err != nil {
		return 0, err
	}
	if v.replica.Write("send", m.To, data, v.clock.NowMS()) {
		if err := v.flushCtx(ctx); err != nil {
			return 0, fmt.Errorf("mail: view flush: %w", err)
		}
	}
	return m.ID, nil
}

// Receive serves the user's inbox from the local replica (the cache hit
// path) and fetches only messages above the view's ceiling from
// upstream — those are never stored locally.
func (v *View) Receive(user string) ([]*Message, error) {
	return v.ReceiveCtx(context.Background(), user)
}

// ReceiveCtx is Receive continuing the trace in ctx.
func (v *View) ReceiveCtx(ctx context.Context, user string) ([]*Message, error) {
	// A receive that conflicts with pending local writes (per the
	// dynamic conflict map) synchronizes first, so the reader observes
	// its replica's own recent sends at the primary and siblings.
	if v.replica.StaleFor("receive", v.conflicts) {
		if err := v.flushCtx(ctx); err != nil {
			return nil, fmt.Errorf("mail: conflict-driven flush: %w", err)
		}
	}
	v.store.EnsureAccount(user)
	local, err := receiveFrom(v.store, v.keys, user)
	if err != nil {
		return nil, err
	}
	if v.trust >= seccrypto.MaxLevel {
		// Nothing can exceed the ceiling; the receive is fully local.
		return local, nil
	}
	// High-sensitivity messages live only upstream.
	remote, err := ReceiveCtx(ctx, v.upstream, user)
	if err != nil {
		// The upstream may simply not know the user yet when nothing
		// high-sensitivity was ever sent; local results still stand.
		return local, nil
	}
	for _, m := range remote {
		if m.Sensitivity > v.trust {
			local = append(local, m)
		}
	}
	return local, nil
}

// AddContact updates the local address book and logs a coherence write.
func (v *View) AddContact(user, contact string) error {
	v.store.EnsureAccount(user)
	if err := v.store.AddContact(user, contact); err != nil {
		return err
	}
	if v.replica.Write("addContact", user+"\x00"+contact, nil, v.clock.NowMS()) {
		return v.Flush()
	}
	return nil
}

// Contacts reads the local address book.
func (v *View) Contacts(user string) ([]string, error) {
	return v.store.Contacts(user)
}

// Flush pushes all pending writes upstream immediately.
func (v *View) Flush() error { return v.flushCtx(context.Background()) }

// flushCtx pushes pending writes upstream under a "coherence.flush"
// span, so traces show which operation paid for the synchronization.
func (v *View) flushCtx(ctx context.Context) error {
	batch := v.replica.TakePending(v.clock.NowMS())
	if len(batch) == 0 {
		return nil
	}
	ctx, span := trace.Start(ctx, "coherence.flush")
	if span != nil {
		span.SetAttr("updates", strconv.Itoa(len(batch)))
	}
	err := PushUpdatesCtx(ctx, v.upstream, batch)
	span.End()
	return err
}

// FlushIfDue flushes when a time-driven policy's deadline has passed.
// It reports whether a flush happened.
func (v *View) FlushIfDue() (bool, error) {
	deadline, ok := v.replica.NextDeadline()
	if !ok || v.clock.NowMS() < deadline || v.replica.Pending() == 0 {
		return false, nil
	}
	return true, v.Flush()
}

// Pending returns the number of unpropagated local writes.
func (v *View) Pending() int { return v.replica.Pending() }

// Snapshot flushes pending writes upstream, then serializes the view's
// store for migration (Snapshotter): the snapshot is coherent — nothing
// in it is still waiting to propagate — so a successor seeded from it
// starts with no invisible writes.
func (v *View) Snapshot() ([]byte, error) {
	if err := v.Flush(); err != nil {
		return nil, fmt.Errorf("mail: pre-snapshot flush: %w", err)
	}
	return v.store.Snapshot()
}

// PushUpdates lets this view serve as the upstream of another view
// (the Seattle-to-San-Diego chaining of Figure 6): the batch is applied
// locally (subject to the sensitivity ceiling) and forwarded toward the
// primary.
func (v *View) PushUpdates(batch []coherence.Update) error {
	return v.PushUpdatesCtx(context.Background(), batch)
}

// PushUpdatesCtx is PushUpdates continuing the trace in ctx.
func (v *View) PushUpdatesCtx(ctx context.Context, batch []coherence.Update) error {
	v.replica.ApplyRemote(batch)
	return PushUpdatesCtx(ctx, v.upstream, batch)
}
