package mail

import (
	"context"
	"crypto/aes"
	"crypto/cipher"
	"crypto/rand"
	"fmt"

	"partsvc/internal/trace"
	"partsvc/internal/transport"
	"partsvc/internal/wire"
)

// The Encryptor and Decryptor components of the mail specification are
// transport-level wrappers: the Encryptor seals whole requests before
// they cross an insecure link and the Decryptor opens them next to the
// provider. They are deliberately generic — they know nothing about
// mail semantics, matching their property-transparent role in the
// planner (they re-establish Confidentiality and pass TrustLevel
// through).

// ChannelKey is the symmetric key shared by an Encryptor-Decryptor
// pair, generated when the planner deploys the pair.
type ChannelKey []byte

// NewChannelKey returns a fresh random 256-bit key.
func NewChannelKey() (ChannelKey, error) {
	k := make([]byte, 32)
	if _, err := rand.Read(k); err != nil {
		return nil, fmt.Errorf("mail: channel key: %w", err)
	}
	return k, nil
}

func (k ChannelKey) aead() (cipher.AEAD, error) {
	block, err := aes.NewCipher(k)
	if err != nil {
		return nil, fmt.Errorf("mail: channel cipher: %w", err)
	}
	return cipher.NewGCM(block)
}

// seal encrypts an arbitrary payload under the channel key.
func (k ChannelKey) seal(plaintext []byte) ([]byte, error) {
	aead, err := k.aead()
	if err != nil {
		return nil, err
	}
	nonce := make([]byte, aead.NonceSize())
	if _, err := rand.Read(nonce); err != nil {
		return nil, err
	}
	return append(nonce, aead.Seal(nil, nonce, plaintext, nil)...), nil
}

// open decrypts a payload sealed by seal.
func (k ChannelKey) open(sealed []byte) ([]byte, error) {
	aead, err := k.aead()
	if err != nil {
		return nil, err
	}
	if len(sealed) < aead.NonceSize() {
		return nil, fmt.Errorf("mail: sealed payload too short")
	}
	pt, err := aead.Open(nil, sealed[:aead.NonceSize()], sealed[aead.NonceSize():], nil)
	if err != nil {
		return nil, fmt.Errorf("mail: opening channel payload: %w", err)
	}
	return pt, nil
}

// TunnelMethod is the method name of sealed tunnel messages.
const TunnelMethod = "tunnel"

// EncryptorEndpoint is the client half of the tunnel: a
// transport.Endpoint middleware that seals every message before
// forwarding it to the Decryptor and opens every response.
type EncryptorEndpoint struct {
	inner transport.Endpoint
	key   ChannelKey
}

// NewEncryptorEndpoint wraps an endpoint with the Encryptor component.
func NewEncryptorEndpoint(inner transport.Endpoint, key ChannelKey) *EncryptorEndpoint {
	return &EncryptorEndpoint{inner: inner, key: key}
}

// Call seals the wire-encoded request, transmits it as a tunnel
// message, and opens the sealed response.
func (e *EncryptorEndpoint) Call(m *wire.Message) (*wire.Message, error) {
	return e.CallContext(context.Background(), m)
}

// CallContext is Call under a "tunnel.call" span. The span's context is
// stamped into the inner message before sealing, so the trace survives
// the encryption boundary: the transport's own stamping only reaches
// the outer tunnel envelope, which the Decryptor discards.
func (e *EncryptorEndpoint) CallContext(ctx context.Context, m *wire.Message) (*wire.Message, error) {
	ctx, span := trace.Start(ctx, "tunnel.call")
	resp, err := e.callContext(ctx, m, span)
	if err != nil && span != nil {
		span.SetAttr("error", err.Error())
	}
	span.End()
	return resp, err
}

func (e *EncryptorEndpoint) callContext(ctx context.Context, m *wire.Message, span *trace.Span) (*wire.Message, error) {
	if span != nil {
		prevT, prevS := m.TraceID, m.SpanID
		sc := span.Context()
		m.TraceID, m.SpanID = sc.TraceID, sc.SpanID
		defer func() { m.TraceID, m.SpanID = prevT, prevS }()
	}
	plain, err := m.Marshal()
	if err != nil {
		return nil, err
	}
	sealed, err := e.key.seal(plain)
	if err != nil {
		return nil, err
	}
	resp, err := transport.Call(ctx, e.inner, &wire.Message{
		Kind: wire.KindRequest, ID: m.ID, Method: TunnelMethod, Body: sealed,
	})
	if err != nil {
		return nil, err
	}
	if err := transport.AsError(resp); err != nil {
		return nil, err
	}
	opened, err := e.key.open(resp.Body)
	if err != nil {
		return nil, err
	}
	return wire.UnmarshalMessage(opened)
}

// Close closes the underlying endpoint.
func (e *EncryptorEndpoint) Close() error { return e.inner.Close() }

// NewDecryptorHandler is the server half of the tunnel: it opens sealed
// tunnel messages, dispatches them to the inner handler, and seals the
// responses.
func NewDecryptorHandler(inner transport.Handler, key ChannelKey) transport.Handler {
	return transport.HandlerFunc(func(m *wire.Message) *wire.Message {
		if m.Method != TunnelMethod {
			return transport.ErrorResponse(m, "decryptor: unexpected method %q", m.Method)
		}
		plain, err := key.open(m.Body)
		if err != nil {
			return transport.ErrorResponse(m, "decryptor: %v", err)
		}
		req, err := wire.UnmarshalMessage(plain)
		if err != nil {
			return transport.ErrorResponse(m, "decryptor: %v", err)
		}
		// Continue the inner message's trace (stamped by the Encryptor)
		// through a "tunnel.serve" span, re-stamping the request so the
		// inner handler's spans parent on it.
		var span *trace.Span
		if trace.Enabled() {
			span = trace.Default.StartSpan(
				trace.SpanContext{TraceID: req.TraceID, SpanID: req.SpanID}, "tunnel.serve")
			sc := span.Context()
			req.TraceID, req.SpanID = sc.TraceID, sc.SpanID
		}
		resp := inner.Handle(req)
		span.End()
		if resp == nil {
			return transport.ErrorResponse(m, "decryptor: inner handler returned nil")
		}
		data, err := resp.Marshal()
		if err != nil {
			return transport.ErrorResponse(m, "decryptor: encoding response: %v", err)
		}
		sealed, err := key.seal(data)
		if err != nil {
			return transport.ErrorResponse(m, "decryptor: sealing response: %v", err)
		}
		return &wire.Message{Kind: wire.KindResponse, ID: m.ID, Method: TunnelMethod, Body: sealed}
	})
}
