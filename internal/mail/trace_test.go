package mail

import (
	"context"
	"testing"

	"partsvc/internal/coherence"
	"partsvc/internal/seccrypto"
	"partsvc/internal/trace"
	"partsvc/internal/transport"
)

// TestEndToEndTraceOverTCP is the tentpole acceptance test: one traced
// mail send through the full deployment — client -> view ->
// write-through flush -> encryptor tunnel -> TCP -> decryptor ->
// primary handler — produces ONE trace whose causally-linked spans
// cover the proxy, transport, handler, and coherence layers.
func TestEndToEndTraceOverTCP(t *testing.T) {
	trace.SetEnabled(true)
	defer trace.SetEnabled(false)
	trace.Default.Reset()
	defer trace.Default.Reset()

	keys := seccrypto.NewKeyRing()
	clock := transport.NewRealClock()
	primary := NewServer(keys, clock)
	for _, u := range []string{"Alice", "Bob"} {
		if err := primary.CreateAccount(u); err != nil {
			t.Fatal(err)
		}
	}
	key, err := NewChannelKey()
	if err != nil {
		t.Fatal(err)
	}
	tr := transport.NewTCP()
	ln, err := tr.Serve("127.0.0.1:0", NewDecryptorHandler(NewHandler(primary), key))
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	ep, err := tr.Dial(ln.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer ep.Close()
	view, err := NewView(ViewConfig{
		ID: "trace-view", Trust: 4, Keys: keys.SubRing(4),
		Upstream: NewRemote(NewEncryptorEndpoint(ep, key)),
		Policy:   coherence.WriteThrough{}, Clock: clock,
	}, 1<<32)
	if err != nil {
		t.Fatal(err)
	}
	alice := NewClient("Alice", keys, view)

	// Drop the CreateAccount warm-up traces so the assertion sees only
	// the send.
	trace.Default.Reset()
	ctx, root := trace.Start(context.Background(), "client.send")
	if _, err := alice.SendCtx(ctx, "Bob", "traced", []byte("hello"), 2); err != nil {
		t.Fatal(err)
	}
	root.End()

	spans := trace.Default.Spans()
	byName := map[string]trace.Span{}
	for _, s := range spans {
		if s.TraceID != root.TraceID {
			t.Errorf("span %q in trace %d, want single trace %d", s.Name, s.TraceID, root.TraceID)
		}
		byName[s.Name] = s
	}
	// One span each from the proxy, transport, handler, and coherence
	// layers — at least four causally linked.
	for _, name := range []string{
		"coherence.flush", "proxy.pushUpdates", "tunnel.call",
		"transport.call", "transport.serve", "tunnel.serve",
		"mail.pushUpdates",
	} {
		if _, ok := byName[name]; !ok {
			t.Errorf("missing span %q (got %d spans)", name, len(spans))
		}
	}
	if t.Failed() {
		t.Log("\n" + trace.Tree(spans))
		return
	}
	// Spot-check the causal links. The encryptor stamps the INNER
	// message, so the decryptor's span parents to tunnel.call (the last
	// span that could see the sealed payload), while transport.serve
	// parents to transport.call via the outer envelope.
	for _, link := range [][2]string{
		{"client.send", "coherence.flush"},
		{"coherence.flush", "proxy.pushUpdates"},
		{"proxy.pushUpdates", "tunnel.call"},
		{"tunnel.call", "transport.call"},
		{"transport.call", "transport.serve"},
		{"tunnel.call", "tunnel.serve"},
		{"tunnel.serve", "mail.pushUpdates"},
	} {
		parent, child := byName[link[0]], byName[link[1]]
		if child.Parent != parent.SpanID {
			t.Errorf("%s.Parent = %d, want %s (%d)", link[1], child.Parent, link[0], parent.SpanID)
		}
	}
}

// TestUntracedSendRecordsNothing: the same stack with tracing disabled
// must not record spans — the default-off contract.
func TestUntracedSendRecordsNothing(t *testing.T) {
	trace.SetEnabled(false)
	trace.Default.Reset()

	keys := seccrypto.NewKeyRing()
	clock := transport.NewRealClock()
	primary := NewServer(keys, clock)
	if err := primary.CreateAccount("Alice"); err != nil {
		t.Fatal(err)
	}
	alice := NewClient("Alice", keys, primary)
	if _, err := alice.Send("Alice", "quiet", []byte("x"), 1); err != nil {
		t.Fatal(err)
	}
	if got := len(trace.Default.Spans()); got != 0 {
		t.Fatalf("disabled tracing recorded %d spans", got)
	}
}
