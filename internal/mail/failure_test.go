package mail

import (
	"strings"
	"testing"

	"partsvc/internal/coherence"
	"partsvc/internal/smock"
	"partsvc/internal/spec"
	"partsvc/internal/transport"
	"partsvc/internal/wire"
)

// Failure-injection and edge-path tests for the mail components: what
// happens when tunnels break mid-session, updates arrive malformed, or
// factories are activated with incomplete contexts.

func TestViewOperationsDelegation(t *testing.T) {
	srv, keys, clock := newPrimary(t)
	v := newTestView(t, srv, "vms", 3, coherence.None{}, clock, 1<<32)
	if v.Trust() != 3 {
		t.Errorf("Trust = %d", v.Trust())
	}
	// Account creation flows upstream and mirrors locally.
	if err := v.CreateAccount("dave"); err != nil {
		t.Fatal(err)
	}
	if !srv.Store().HasAccount("dave") || !v.Store().HasAccount("dave") {
		t.Error("account must exist at both levels")
	}
	if err := v.AddContact("dave", "erin"); err != nil {
		t.Fatal(err)
	}
	got, err := v.Contacts("dave")
	if err != nil || len(got) != 1 || got[0] != "erin" {
		t.Errorf("contacts = %v, %v", got, err)
	}
	// Write-through of the contact to the primary happens on flush; the
	// None policy defers forever until explicit flush.
	if c, _ := srv.Contacts("dave"); len(c) != 0 {
		t.Error("contact must not reach the primary before flush under None")
	}
	if err := v.Flush(); err != nil {
		t.Fatal(err)
	}
	if c, _ := srv.Contacts("dave"); len(c) != 1 {
		t.Error("contact must reach the primary after flush")
	}
	_ = keys
}

func TestViewFlushFailureSurfaces(t *testing.T) {
	srv, keys, clock := newPrimary(t, "alice", "bob")
	tr := transport.NewInProc()
	key, err := NewChannelKey()
	if err != nil {
		t.Fatal(err)
	}
	ln, err := tr.Serve("d", NewDecryptorHandler(NewHandler(srv), key))
	if err != nil {
		t.Fatal(err)
	}
	ep, err := tr.Dial("d")
	if err != nil {
		t.Fatal(err)
	}
	v, err := NewView(ViewConfig{
		ID: "vms", Trust: 4, Keys: keys.SubRing(4),
		Upstream: NewRemote(NewEncryptorEndpoint(ep, key)),
		Policy:   coherence.WriteThrough{}, Clock: clock,
	}, 1<<32)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := v.Send("alice", "bob", "ok", []byte("works"), 2); err != nil {
		t.Fatal(err)
	}
	// The tunnel's provider goes away: write-through sends now fail
	// loudly instead of losing mail.
	ln.Close()
	if _, err := v.Send("alice", "bob", "broken", []byte("lost?"), 2); err == nil {
		t.Fatal("send through a dead tunnel must fail")
	} else if !strings.Contains(err.Error(), "flush") {
		t.Errorf("error should identify the flush path: %v", err)
	}
	// The failed batch was taken from the replica; the mail is filed
	// locally (the view still serves reads) even though propagation
	// failed — a deliberate at-least-locally semantic, visible to tests.
	if v.Store().InboxCount("bob") != 2 {
		t.Errorf("local store = %d messages", v.Store().InboxCount("bob"))
	}
}

func TestApplyUpdateIgnoresMalformedData(t *testing.T) {
	store := NewStore(0)
	store.EnsureAccount("alice")
	// Garbage send payload: ignored rather than panicking.
	applyUpdate(store, coherence.Update{Op: "send", Key: "alice", Data: []byte{0xff, 0x01}})
	if store.InboxCount("alice") != 0 {
		t.Error("malformed update must be ignored")
	}
	// Unknown op: ignored.
	applyUpdate(store, coherence.Update{Op: "compact", Key: "alice"})
	// Malformed contact key (no separator): ignored.
	applyUpdate(store, coherence.Update{Op: "addContact", Key: "no-separator"})
	if c, _ := store.Contacts("alice"); len(c) != 0 {
		t.Errorf("contacts = %v", c)
	}
	// Valid contact key applies.
	applyUpdate(store, coherence.Update{Op: "addContact", Key: "alice\x00bob"})
	if c, _ := store.Contacts("alice"); len(c) != 1 {
		t.Errorf("contacts = %v", c)
	}
}

func TestClientAccessors(t *testing.T) {
	srv, keys, _ := newPrimary(t, "alice")
	c := NewViewClient("alice", 2, keys.SubRing(2), srv)
	if c.User() != "alice" {
		t.Error("ViewClient.User")
	}
}

func TestRemoteCloseAndTunnelClose(t *testing.T) {
	srv, _, _ := newPrimary(t, "alice")
	tr := transport.NewInProc()
	key, _ := NewChannelKey()
	ln, err := tr.Serve("d", NewDecryptorHandler(NewHandler(srv), key))
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	ep, _ := tr.Dial("d")
	enc := NewEncryptorEndpoint(ep, key)
	remote := NewRemote(enc)
	if err := remote.CreateAccount("x"); err != nil {
		t.Fatal(err)
	}
	if err := remote.Close(); err != nil {
		t.Fatal(err)
	}
	if err := remote.CreateAccount("y"); err == nil {
		t.Error("closed remote must fail")
	}
}

// TestFactoriesValidation drives each factory's error paths directly.
func TestFactoriesValidation(t *testing.T) {
	srv, keys, _ := newPrimary(t, "alice")
	reg := smock.NewRegistry()
	if err := RegisterFactories(reg, &ServiceEnv{}); err == nil {
		t.Error("empty environment must be rejected")
	}
	if err := RegisterFactories(reg, &ServiceEnv{Primary: srv, Keys: keys}); err != nil {
		t.Fatal(err)
	}
	// View without factored trust.
	if _, err := reg.Activate(spec.CompViewMailServer, &smock.ActivationContext{}); err == nil {
		t.Error("view without TrustLevel must fail")
	}
	// Encryptor without upstream or secret.
	if _, err := reg.Activate(spec.CompEncryptor, &smock.ActivationContext{}); err == nil {
		t.Error("encryptor without upstream must fail")
	}
	// Decryptor without secret.
	tr := transport.NewInProc()
	lnSrv, err := tr.Serve("up", NewHandler(srv))
	if err != nil {
		t.Fatal(err)
	}
	defer lnSrv.Close()
	up, _ := tr.Dial("up")
	if _, err := reg.Activate(spec.CompDecryptor, &smock.ActivationContext{
		Upstreams: map[string]transport.Endpoint{spec.IfaceServer: up},
	}); err == nil {
		t.Error("decryptor without edge secret must fail")
	}
	// Clients without upstreams.
	if _, err := reg.Activate(spec.CompMailClient, &smock.ActivationContext{}); err == nil {
		t.Error("client without upstream must fail")
	}
	if _, err := reg.Activate(spec.CompViewMailClient, &smock.ActivationContext{}); err == nil {
		t.Error("view client without upstream must fail")
	}
}

// TestRelayHandlerErrorPath: a relay whose endpoint dies reports the
// transport failure as a wire error response.
func TestRelayHandlerErrorPath(t *testing.T) {
	tr := transport.NewInProc()
	ln, err := tr.Serve("x", transport.HandlerFunc(func(m *wire.Message) *wire.Message {
		return &wire.Message{Kind: wire.KindResponse, ID: m.ID}
	}))
	if err != nil {
		t.Fatal(err)
	}
	ep, _ := tr.Dial("x")
	relay := relayHandler(ep)
	if resp := relay.Handle(&wire.Message{Kind: wire.KindRequest}); transport.AsError(resp) != nil {
		t.Fatalf("healthy relay failed: %v", transport.AsError(resp))
	}
	ln.Close()
	resp := relay.Handle(&wire.Message{Kind: wire.KindRequest})
	if transport.AsError(resp) == nil {
		t.Error("dead relay must produce an error response")
	}
}

// TestConflictMapForcesFlushOnReceive: with a send/receive conflict
// declared, a receive sweep synchronizes pending writes first; without
// the map, reads serve stale local state.
func TestConflictMapForcesFlushOnReceive(t *testing.T) {
	srv, keys, clock := newPrimary(t, "alice", "bob")
	cm := coherence.NewConflictMap()
	cm.Declare("receive", "send", true)
	v, err := NewView(ViewConfig{
		ID: "vms", Trust: 4, Keys: keys.SubRing(4),
		Upstream: srv, Policy: coherence.CountBound{Bound: 100},
		Conflicts: cm, Clock: clock,
	}, 1<<32)
	if err != nil {
		t.Fatal(err)
	}
	srv.Directory().Register(ViewName, v.Replica())
	if _, err := v.Send("alice", "bob", "s", []byte("m"), 2); err != nil {
		t.Fatal(err)
	}
	if srv.Store().InboxCount("bob") != 0 {
		t.Fatal("send must still be pending under the loose bound")
	}
	// The conflicting receive forces the flush.
	if _, err := v.Receive("bob"); err != nil {
		t.Fatal(err)
	}
	if srv.Store().InboxCount("bob") != 1 {
		t.Error("conflict-driven receive must flush pending sends")
	}
	if v.Pending() != 0 {
		t.Error("pending must be drained")
	}

	// Control: without a conflict map the receive does not flush.
	v2, err := NewView(ViewConfig{
		ID: "vms2", Trust: 4, Keys: keys.SubRing(4),
		Upstream: srv, Policy: coherence.CountBound{Bound: 100}, Clock: clock,
	}, 1<<33)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := v2.Send("alice", "bob", "s2", []byte("m"), 2); err != nil {
		t.Fatal(err)
	}
	if _, err := v2.Receive("bob"); err != nil {
		t.Fatal(err)
	}
	if v2.Pending() != 1 {
		t.Error("without a conflict map the receive must not flush")
	}
}

// TestStoreSnapshotRoundTrip: full state migrates byte-faithfully.
func TestStoreSnapshotRoundTrip(t *testing.T) {
	srv, keys, _ := newPrimary(t, "alice", "bob")
	if _, err := srv.Send("alice", "bob", "one", []byte("m1"), 2); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Send("alice", "bob", "two", []byte("m2"), 4); err != nil {
		t.Fatal(err)
	}
	if err := srv.AddContact("alice", "bob"); err != nil {
		t.Fatal(err)
	}
	snap, err := srv.Store().Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	restored, err := RestoreStore(snap, 0)
	if err != nil {
		t.Fatal(err)
	}
	if restored.InboxCount("bob") != 2 {
		t.Errorf("restored inbox = %d", restored.InboxCount("bob"))
	}
	c, err := restored.Contacts("alice")
	if err != nil || len(c) != 1 {
		t.Errorf("restored contacts = %v, %v", c, err)
	}
	// IDs continue where the source left off (no collisions after
	// migration).
	if restored.AssignID() != srv.Store().AssignID() {
		t.Error("ID counters must match after restore")
	}
	// Restored messages remain transformable and decryptable.
	msgs, err := receiveFrom(restored, keys, "bob")
	if err != nil || len(msgs) != 2 {
		t.Fatalf("receive from restored store = %v, %v", msgs, err)
	}
}

// TestStoreSnapshotShedsHighSensitivity: restoring onto a low-trust
// destination drops exactly the over-ceiling messages.
func TestStoreSnapshotShedsHighSensitivity(t *testing.T) {
	srv, _, _ := newPrimary(t, "alice", "bob")
	if _, err := srv.Send("alice", "bob", "low", []byte("ok"), 2); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Send("alice", "bob", "high", []byte("secret"), 5); err != nil {
		t.Fatal(err)
	}
	snap, err := srv.Store().Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	restored, err := RestoreStore(snap, 2)
	if err != nil {
		t.Fatal(err)
	}
	if restored.InboxCount("bob") != 1 {
		t.Errorf("trust-2 restore must shed the level-5 message: inbox = %d", restored.InboxCount("bob"))
	}
}

// TestRestoreStoreErrors: malformed snapshots fail loudly.
func TestRestoreStoreErrors(t *testing.T) {
	if _, err := RestoreStore([]byte{0x7f}, 0); err == nil {
		t.Error("garbage must fail")
	}
	data, err := wire.Marshal(int64(7))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RestoreStore(data, 0); err == nil {
		t.Error("non-map must fail")
	}
}

// TestViewMigrationViaSnapshot: a view's state rides the ViewConfig
// Snapshot into a replacement instance on another node.
func TestViewMigrationViaSnapshot(t *testing.T) {
	srv, keys, clock := newPrimary(t, "alice", "bob")
	src := newTestView(t, srv, "vms-src", 4, coherence.None{}, clock, 1<<32)
	if _, err := src.Send("alice", "bob", "cached", []byte("m"), 2); err != nil {
		t.Fatal(err)
	}
	snap, err := src.Store().Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	dst, err := NewView(ViewConfig{
		ID: "vms-dst", Trust: 4, Keys: keys.SubRing(4),
		Upstream: srv, Policy: coherence.None{}, Clock: clock,
		Snapshot: snap,
	}, 1<<33)
	if err != nil {
		t.Fatal(err)
	}
	if dst.Store().InboxCount("bob") != 1 {
		t.Error("migrated view must carry the cached message")
	}
	bob := NewClient("bob", keys, dst)
	msgs, err := bob.Receive()
	if err != nil || len(msgs) != 1 || string(msgs[0].Body) != "m" {
		t.Fatalf("receive at migrated view = %v, %v", msgs, err)
	}
}
