package mail

import (
	"errors"
	"reflect"
	"sync"
	"testing"
	"time"

	"partsvc/internal/coherence"
	"partsvc/internal/transport"
	"partsvc/internal/wire"
)

// figure5Outcome is everything application-visible from one run of the
// case-study mail scenario: what landed in the primary store, what the
// clients read back, and how overload surfaced.
type figure5Outcome struct {
	BobInbox   int
	Received   []string
	Contacts   []string
	SendErrs   []string
	ShedOK     int
	ShedDenied int
}

// runFigure5Scenario drives the full case-study deployment — client →
// view (write-through) → encryptor tunnel → transport → decryptor →
// primary — over the given transport, then saturates a 1-worker
// listener to exercise the shed path, and returns the outcome.
func runFigure5Scenario(t *testing.T, tr *transport.TCP) figure5Outcome {
	t.Helper()
	srv, keys, clock := newPrimary(t, "alice", "bob")
	channelKey, err := NewChannelKey()
	if err != nil {
		t.Fatal(err)
	}
	ln, err := tr.Serve("", NewDecryptorHandler(NewHandler(srv), channelKey))
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	ep, err := tr.Dial(ln.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer ep.Close()
	upstream := NewRemote(NewEncryptorEndpoint(ep, channelKey))
	view, err := NewView(ViewConfig{
		ID: "vms-sd", Trust: 4, Keys: keys.SubRing(4),
		Upstream: upstream, Policy: coherence.WriteThrough{}, Clock: clock,
	}, 1<<32)
	if err != nil {
		t.Fatal(err)
	}

	var out figure5Outcome
	alice := NewClient("alice", keys, view)
	for i, msg := range []struct {
		subject, body string
		sensitivity   int
	}{
		{"plans", "meet at noon", 2},
		{"secret", "the payload", 3},
		{"note", "third message", 1},
	} {
		clock.now = float64(100 * (i + 1))
		if _, err := alice.Send("bob", msg.subject, []byte(msg.body), msg.sensitivity); err != nil {
			out.SendErrs = append(out.SendErrs, err.Error())
		}
	}
	out.BobInbox = srv.Store().InboxCount("bob")
	bob := NewClient("bob", keys, srv)
	msgs, err := bob.Receive()
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range msgs {
		out.Received = append(out.Received, m.Subject+"="+string(m.Body))
	}
	if err := upstream.AddContact("alice", "bob"); err != nil {
		t.Fatal(err)
	}
	if out.Contacts, err = upstream.Contacts("alice"); err != nil {
		t.Fatal(err)
	}

	// Shed leg: a saturated 1-worker listener on the same transport must
	// answer overflow with ErrOverloaded, identically over rings and
	// sockets (Workers/QueueDepth were set by the caller).
	release := make(chan struct{})
	var entered sync.WaitGroup
	entered.Add(1)
	var enterOnce sync.Once
	slow := transport.HandlerFunc(func(m *wire.Message) *wire.Message {
		enterOnce.Do(entered.Done)
		<-release
		return &wire.Message{Kind: wire.KindResponse, ID: m.ID}
	})
	slowLn, err := tr.Serve("", slow)
	if err != nil {
		t.Fatal(err)
	}
	defer slowLn.Close()
	slowEp, err := tr.Dial(slowLn.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer slowEp.Close()

	const burst = 12
	results := make(chan error, burst)
	var wg sync.WaitGroup
	call := func() {
		defer wg.Done()
		resp, err := slowEp.Call(&wire.Message{Kind: wire.KindRequest, Method: "slow"})
		if err == nil {
			err = transport.AsError(resp)
		}
		results <- err
	}
	wg.Add(1)
	go call()
	entered.Wait()
	for i := 0; i < burst-1; i++ {
		wg.Add(1)
		go call()
	}
	// At least one shed reply must arrive while the worker is parked.
	select {
	case err := <-results:
		if !errors.Is(err, transport.ErrOverloaded) {
			t.Fatalf("first completed call got %v, want ErrOverloaded", err)
		}
		results <- err
	case <-time.After(10 * time.Second):
		t.Fatal("no shed reply while the pool was saturated")
	}
	close(release)
	wg.Wait()
	close(results)
	for err := range results {
		switch {
		case err == nil:
			out.ShedOK++
		case errors.Is(err, transport.ErrOverloaded):
			out.ShedDenied++
		default:
			t.Fatalf("shed-leg call failed with %v", err)
		}
	}
	return out
}

// TestFigure5RingEquivalence is the ring-transport acceptance test: the
// full case-study mail scenario (send/receive/contacts through the
// encryptor tunnel, plus the overload-shed path) must behave
// identically over TCP loopback and over the shared-memory ring fast
// path. Shed counts are timing-dependent, so for that leg equivalence
// means "both outcomes occur and nothing is lost" on both transports.
func TestFigure5RingEquivalence(t *testing.T) {
	mkTransport := func(ring bool) *transport.TCP {
		tr := transport.NewTCP()
		tr.Ring = ring
		tr.Workers = 1
		tr.QueueDepth = 2
		tr.CallTimeout = 30 * time.Second
		return tr
	}
	tcpTr := mkTransport(false)
	tcpOut := runFigure5Scenario(t, tcpTr)
	ringTr := mkTransport(true)
	ringOut := runFigure5Scenario(t, ringTr)

	if ringTr.Stats().RingConns == 0 {
		t.Fatal("Ring:true scenario never used a ring connection")
	}
	if tcpTr.Stats().RingConns != 0 {
		t.Fatal("plain TCP scenario used a ring connection")
	}

	// The deterministic legs must match exactly.
	norm := func(o figure5Outcome) figure5Outcome { o.ShedOK, o.ShedDenied = 0, 0; return o }
	if !reflect.DeepEqual(norm(tcpOut), norm(ringOut)) {
		t.Errorf("scenario outcomes diverge:\n tcp:  %+v\n ring: %+v", norm(tcpOut), norm(ringOut))
	}
	// The shed leg must show the same shape: served and shed both
	// present, burst conserved.
	for name, o := range map[string]figure5Outcome{"tcp": tcpOut, "ring": ringOut} {
		if o.ShedOK == 0 || o.ShedDenied == 0 || o.ShedOK+o.ShedDenied != 12 {
			t.Errorf("%s shed leg: ok=%d denied=%d, want both outcomes of 12", name, o.ShedOK, o.ShedDenied)
		}
	}
}
