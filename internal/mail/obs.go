package mail

import (
	"context"

	"partsvc/internal/coherence"
)

// Context-aware call paths. The mail API predates request tracing and
// is implemented by many small components, so instead of widening the
// API interface (and every fake in every test), providers that can
// thread a request context implement the per-method *Ctx variants
// below; the package-level helpers dispatch to them when present and
// fall back to the plain methods otherwise. Server, View, and Remote
// all implement the variants, so the trace context survives the whole
// provider chain — client proxy, tunnel, view, primary — and a
// coherence flush triggered deep inside a send still parents on the
// send's span.

type sendCtxer interface {
	SendCtx(ctx context.Context, from, to, subject string, body []byte, sensitivity int) (uint64, error)
}

type receiveCtxer interface {
	ReceiveCtx(ctx context.Context, user string) ([]*Message, error)
}

type pushUpdatesCtxer interface {
	PushUpdatesCtx(ctx context.Context, batch []coherence.Update) error
}

// SendCtx invokes api.Send with ctx when the provider supports it.
func SendCtx(ctx context.Context, api API, from, to, subject string, body []byte, sensitivity int) (uint64, error) {
	if c, ok := api.(sendCtxer); ok {
		return c.SendCtx(ctx, from, to, subject, body, sensitivity)
	}
	return api.Send(from, to, subject, body, sensitivity)
}

// ReceiveCtx invokes api.Receive with ctx when the provider supports it.
func ReceiveCtx(ctx context.Context, api API, user string) ([]*Message, error) {
	if c, ok := api.(receiveCtxer); ok {
		return c.ReceiveCtx(ctx, user)
	}
	return api.Receive(user)
}

// PushUpdatesCtx invokes sink.PushUpdates with ctx when the sink
// supports it.
func PushUpdatesCtx(ctx context.Context, sink UpdateSink, batch []coherence.Update) error {
	if c, ok := sink.(pushUpdatesCtxer); ok {
		return c.PushUpdatesCtx(ctx, batch)
	}
	return sink.PushUpdates(batch)
}
