package mail

import (
	"context"
	"fmt"
	"strconv"

	"partsvc/internal/coherence"
	"partsvc/internal/seccrypto"
	"partsvc/internal/trace"
	"partsvc/internal/transport"
	"partsvc/internal/wire"
)

// API is the ServerInterface of the mail specification: the operations
// a mail client invokes against whatever stands in for the server — the
// primary, a view replica, or an encryptor tunnel.
type API interface {
	// CreateAccount provisions a user, generating per-level keys.
	CreateAccount(user string) error
	// Send files a message; the body is sealed at the sender's
	// sensitivity level before it leaves the trusted component.
	Send(from, to, subject string, body []byte, sensitivity int) (uint64, error)
	// Receive returns the user's inbox with every body transformed to
	// the recipient's key.
	Receive(user string) ([]*Message, error)
	// AddContact and Contacts maintain the user's address book (not
	// available through the restricted ViewMailClient).
	AddContact(user, contact string) error
	Contacts(user string) ([]string, error)
}

// Server is the primary MailServer component: unrestricted store, full
// key ring, and the coherence directory against which view replicas
// register.
type Server struct {
	store *Store
	keys  *seccrypto.KeyRing
	clock transport.Clock
	dir   *coherence.Directory
	// replica is the primary's own coherence agent: its writes are
	// published to the directory immediately (the primary is always
	// consistent).
	replica *coherence.Replica
}

// ViewName is the coherence view identity under which mail state
// replicates.
const ViewName = "mail"

// NewServer returns a primary mail server with its own directory.
func NewServer(keys *seccrypto.KeyRing, clock transport.Clock) *Server {
	s := &Server{
		store: NewStore(0),
		keys:  keys,
		clock: clock,
		dir:   coherence.NewDirectory(),
	}
	s.replica = coherence.NewReplica("primary", coherence.WriteThrough{}, func(u coherence.Update) {
		applyUpdate(s.store, u)
	})
	s.dir.Register(ViewName, s.replica)
	return s
}

// Directory exposes the coherence directory for replica registration.
func (s *Server) Directory() *coherence.Directory { return s.dir }

// Keys exposes the full key ring (for escrow when deploying views).
func (s *Server) Keys() *seccrypto.KeyRing { return s.keys }

// Store exposes the primary store (read-mostly, for tests and tools).
func (s *Server) Store() *Store { return s.store }

// Snapshot serializes the primary store for migration (Snapshotter).
func (s *Server) Snapshot() ([]byte, error) { return s.store.Snapshot() }

// CreateAccount provisions the user and generates per-level keys
// (account-setup key generation, Section 2).
func (s *Server) CreateAccount(user string) error {
	if err := s.store.CreateAccount(user); err != nil {
		return err
	}
	if err := s.keys.GenerateUserKeys(user, seccrypto.MaxLevel); err != nil {
		return err
	}
	s.publish("createAccount", user, nil)
	return nil
}

// Send seals the body at the sender's sensitivity and files it into the
// recipient's inbox and the sender's sent folder.
func (s *Server) Send(from, to, subject string, body []byte, sensitivity int) (uint64, error) {
	return s.SendCtx(context.Background(), from, to, subject, body, sensitivity)
}

// SendCtx is Send continuing the trace in ctx: the coherence fan-out it
// triggers parents on the send's span.
func (s *Server) SendCtx(ctx context.Context, from, to, subject string, body []byte, sensitivity int) (uint64, error) {
	m, err := sealMessage(s.keys, s.store, from, to, subject, body, sensitivity, s.clock.NowMS())
	if err != nil {
		return 0, err
	}
	if err := deliver(s.store, m); err != nil {
		return 0, err
	}
	data, err := encodeMessage(m)
	if err != nil {
		return 0, err
	}
	s.publishCtx(ctx, "send", m.To, data)
	return m.ID, nil
}

// Receive returns the user's inbox, each body transformed to the
// recipient's key at the message's sensitivity level.
func (s *Server) Receive(user string) ([]*Message, error) {
	return receiveFrom(s.store, s.keys, user)
}

// AddContact appends to the address book.
func (s *Server) AddContact(user, contact string) error {
	if err := s.store.AddContact(user, contact); err != nil {
		return err
	}
	s.publish("addContact", user+"\x00"+contact, nil)
	return nil
}

// Contacts returns the address book.
func (s *Server) Contacts(user string) ([]string, error) {
	return s.store.Contacts(user)
}

// publish logs a primary write and fans it out to replicas immediately.
func (s *Server) publish(op, key string, data []byte) {
	s.publishCtx(context.Background(), op, key, data)
}

// publishCtx is publish under a "coherence.flush" span: the primary is
// write-through, so every primary write is its own flush.
func (s *Server) publishCtx(ctx context.Context, op, key string, data []byte) {
	now := s.clock.NowMS()
	s.replica.Write(op, key, data, now)
	batch := s.replica.TakePending(now)
	_, span := trace.Start(ctx, "coherence.flush")
	if span != nil {
		span.SetAttr("updates", strconv.Itoa(len(batch)))
	}
	s.dir.Publish(ViewName, batch)
	span.End()
}

// sealMessage validates a send and seals its body at the sender's
// sensitivity.
func sealMessage(keys *seccrypto.KeyRing, ids *Store, from, to, subject string, body []byte, sensitivity int, nowMS float64) (*Message, error) {
	if sensitivity < 1 || sensitivity > seccrypto.MaxLevel {
		return nil, fmt.Errorf("mail: sensitivity %d outside 1..%d", sensitivity, seccrypto.MaxLevel)
	}
	env, err := keys.Seal(from, sensitivity, body)
	if err != nil {
		return nil, fmt.Errorf("mail: sealing message: %w", err)
	}
	sealed, err := env.Marshal()
	if err != nil {
		return nil, err
	}
	return &Message{
		ID:          ids.AssignID(),
		From:        from,
		To:          to,
		Subject:     subject,
		Body:        sealed,
		Sensitivity: sensitivity,
		SentAtMS:    nowMS,
	}, nil
}

// deliver files a sealed message into recipient inbox and sender sent.
func deliver(store *Store, m *Message) error {
	if !store.HasAccount(m.To) && store.MaxSensitivity() == 0 {
		return fmt.Errorf("mail: no account %q", m.To)
	}
	if err := store.Append(m.To, FolderInbox, m); err != nil {
		return err
	}
	if store.HasAccount(m.From) {
		if err := store.Append(m.From, FolderSent, m); err != nil {
			return err
		}
	}
	return nil
}

// receiveFrom returns a user's inbox with bodies transformed to the
// recipient's own keys ("transforms these messages to those encrypted
// to the recipient's sensitivity upon a receive").
func receiveFrom(store *Store, keys *seccrypto.KeyRing, user string) ([]*Message, error) {
	msgs, err := store.Folder(user, FolderInbox)
	if err != nil {
		return nil, err
	}
	for _, m := range msgs {
		env, err := seccrypto.UnmarshalEnvelope(m.Body)
		if err != nil {
			return nil, fmt.Errorf("mail: message %d: %w", m.ID, err)
		}
		out, err := keys.Transform(env, user, m.Sensitivity)
		if err != nil {
			return nil, fmt.Errorf("mail: transforming message %d: %w", m.ID, err)
		}
		if m.Body, err = out.Marshal(); err != nil {
			return nil, err
		}
	}
	return msgs, nil
}

// encodeMessage serializes a message for coherence updates and wire
// transport.
func encodeMessage(m *Message) ([]byte, error) {
	return wire.Marshal(map[string]any{
		"id": int64(m.ID), "from": m.From, "to": m.To, "subject": m.Subject,
		"body": m.Body, "sens": int64(m.Sensitivity), "at": m.SentAtMS,
	})
}

// decodeMessage reverses encodeMessage.
func decodeMessage(data []byte) (*Message, error) {
	v, err := wire.Unmarshal(data)
	if err != nil {
		return nil, err
	}
	f, ok := v.(map[string]any)
	if !ok {
		return nil, fmt.Errorf("mail: message encoding is %T", v)
	}
	m := &Message{}
	if id, ok := f["id"].(int64); ok {
		m.ID = uint64(id)
	}
	m.From, _ = f["from"].(string)
	m.To, _ = f["to"].(string)
	m.Subject, _ = f["subject"].(string)
	m.Body, _ = f["body"].([]byte)
	if sens, ok := f["sens"].(int64); ok {
		m.Sensitivity = int(sens)
	}
	m.SentAtMS, _ = f["at"].(float64)
	if m.From == "" || m.To == "" || m.Sensitivity == 0 {
		return nil, fmt.Errorf("mail: incomplete message encoding")
	}
	return m, nil
}

// applyUpdate replays a coherence update against a store. Messages above
// the store's ceiling are skipped (a trust-limited view must not hold
// them).
func applyUpdate(store *Store, u coherence.Update) {
	switch u.Op {
	case "createAccount":
		store.EnsureAccount(u.Key)
	case "addContact":
		for i := 0; i+1 < len(u.Key); i++ {
			if u.Key[i] == 0 {
				store.EnsureAccount(u.Key[:i])
				// Contact adds are idempotent; errors cannot occur after
				// EnsureAccount.
				_ = store.AddContact(u.Key[:i], u.Key[i+1:])
				return
			}
		}
	case "send":
		m, err := decodeMessage(u.Data)
		if err != nil {
			return
		}
		if !store.Admissible(m.Sensitivity) {
			return
		}
		_ = deliver(store, m)
	}
}
