package mail

import (
	"fmt"

	"partsvc/internal/wire"
)

// Component migration needs custom serialization (there is no mobile
// code in Go): a Store's full state — accounts, folders, sealed
// messages, contacts, and the ID counter — round-trips through the wire
// format, rides the install order's State field, and seeds the migrated
// instance. Messages above the destination store's sensitivity ceiling
// are dropped on restore, so migrating a view onto a less-trusted node
// sheds exactly the state that node must not hold.

// Snapshot serializes the store's complete state.
func (s *Store) Snapshot() ([]byte, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	accounts := map[string]any{}
	for user, acct := range s.accounts {
		folders := map[string]any{}
		for folder, msgs := range acct.Folders {
			items := make([]any, 0, len(msgs))
			for _, m := range msgs {
				data, err := encodeMessage(m)
				if err != nil {
					return nil, fmt.Errorf("mail: snapshot message %d: %w", m.ID, err)
				}
				items = append(items, data)
			}
			folders[folder] = items
		}
		contacts := make([]any, len(acct.Contacts))
		for i, c := range acct.Contacts {
			contacts[i] = c
		}
		accounts[user] = map[string]any{"folders": folders, "contacts": contacts}
	}
	return wire.Marshal(map[string]any{
		"accounts": accounts,
		"nextID":   int64(s.nextID),
		"maxSens":  int64(s.maxSensitivity),
	})
}

// RestoreStore rebuilds a store from a snapshot. maxSensitivity, when
// positive, overrides the snapshot's ceiling (the destination node's
// trust); messages above it are silently shed.
func RestoreStore(snapshot []byte, maxSensitivity int) (*Store, error) {
	v, err := wire.Unmarshal(snapshot)
	if err != nil {
		return nil, fmt.Errorf("mail: decoding snapshot: %w", err)
	}
	root, ok := v.(map[string]any)
	if !ok {
		return nil, fmt.Errorf("mail: snapshot is %T", v)
	}
	ceiling := maxSensitivity
	if ceiling == 0 {
		if ms, ok := root["maxSens"].(int64); ok {
			ceiling = int(ms)
		}
	}
	store := NewStore(ceiling)
	if next, ok := root["nextID"].(int64); ok {
		store.nextID = uint64(next)
	}
	accounts, _ := root["accounts"].(map[string]any)
	for user, rawAcct := range accounts {
		acct, ok := rawAcct.(map[string]any)
		if !ok {
			return nil, fmt.Errorf("mail: snapshot account %q is %T", user, rawAcct)
		}
		store.EnsureAccount(user)
		if folders, ok := acct["folders"].(map[string]any); ok {
			for folder, rawItems := range folders {
				items, ok := rawItems.([]any)
				if !ok {
					return nil, fmt.Errorf("mail: snapshot folder %q is %T", folder, rawItems)
				}
				for _, raw := range items {
					data, ok := raw.([]byte)
					if !ok {
						return nil, fmt.Errorf("mail: snapshot message entry is %T", raw)
					}
					m, err := decodeMessage(data)
					if err != nil {
						return nil, err
					}
					if !store.Admissible(m.Sensitivity) {
						continue // shed state the destination must not hold
					}
					if err := store.Append(user, folder, m); err != nil {
						return nil, err
					}
				}
			}
		}
		if contacts, ok := acct["contacts"].([]any); ok {
			for _, raw := range contacts {
				c, ok := raw.(string)
				if !ok {
					return nil, fmt.Errorf("mail: snapshot contact is %T", raw)
				}
				if err := store.AddContact(user, c); err != nil {
					return nil, err
				}
			}
		}
	}
	return store, nil
}
