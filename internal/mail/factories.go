package mail

import (
	"fmt"
	"sync/atomic"

	"partsvc/internal/coherence"
	"partsvc/internal/seccrypto"
	"partsvc/internal/smock"
	"partsvc/internal/spec"
	"partsvc/internal/transport"
	"partsvc/internal/wire"
)

// ServiceEnv is the service owner's environment shared by the mail
// component factories: the primary server and the master key ring.
// In a fully distributed deployment the escrowed keys would ride the
// install order's State snapshot; sharing them through the environment
// keeps the single-process examples honest about *which* keys each
// component may hold (views only ever receive a SubRing).
type ServiceEnv struct {
	// Primary is the pre-deployed MailServer.
	Primary *Server
	// Keys is the master key ring (the primary's).
	Keys *seccrypto.KeyRing
	// DefaultPolicy is the coherence policy given to new views;
	// nil means write-through.
	DefaultPolicy coherence.Policy

	viewSeq atomic.Uint64
}

// relayHandler forwards every message to an endpoint unchanged: the
// serving side of pure proxy components.
func relayHandler(ep transport.Endpoint) transport.Handler {
	return transport.HandlerFunc(func(m *wire.Message) *wire.Message {
		resp, err := ep.Call(m)
		if err != nil {
			return transport.ErrorResponse(m, "relay: %v", err)
		}
		return resp
	})
}

// RegisterFactories installs the six mail component factories into a
// Smock registry, keyed by their specification names.
func RegisterFactories(reg *smock.Registry, env *ServiceEnv) error {
	if env.Primary == nil || env.Keys == nil {
		return fmt.Errorf("mail: service environment needs a primary and keys")
	}
	policy := func() coherence.Policy {
		if env.DefaultPolicy != nil {
			return env.DefaultPolicy
		}
		return coherence.WriteThrough{}
	}

	factories := map[string]smock.Factory{
		// The primary itself: activated once at service start.
		spec.CompMailServer: func(ctx *smock.ActivationContext) (transport.Handler, error) {
			return NewHandler(env.Primary), nil
		},
		// Data view: trust from the factored configuration, escrowed
		// keys, upstream over the provided endpoint, registered with the
		// primary's coherence directory.
		spec.CompViewMailServer: func(ctx *smock.ActivationContext) (transport.Handler, error) {
			trustVal, ok := ctx.Config[spec.PropTrustLevel]
			if !ok {
				return nil, fmt.Errorf("view needs a factored TrustLevel")
			}
			trust, ok := trustVal.AsInt()
			if !ok {
				return nil, fmt.Errorf("factored TrustLevel is %v", trustVal)
			}
			up, ok := ctx.Upstreams[spec.IfaceServer]
			if !ok {
				return nil, fmt.Errorf("view needs a ServerInterface provider")
			}
			idBase := (env.viewSeq.Add(1)) << 32
			v, err := NewView(ViewConfig{
				ID:       ctx.InstanceID,
				Trust:    int(trust),
				Keys:     env.Keys.SubRing(int(trust)),
				Upstream: NewRemote(up),
				Policy:   policy(),
				Clock:    ctx.Clock,
				Snapshot: ctx.State,
			}, idBase)
			if err != nil {
				return nil, err
			}
			env.Primary.Directory().Register(ViewName, v.Replica())
			return NewHandler(v), nil
		},
		// Encryptor: a relay that seals everything with the edge secret
		// shared with its Decryptor.
		spec.CompEncryptor: func(ctx *smock.ActivationContext) (transport.Handler, error) {
			up, ok := ctx.Upstreams[spec.IfaceDecryptor]
			if !ok {
				return nil, fmt.Errorf("encryptor needs a DecryptorInterface provider")
			}
			key, ok := ctx.UpstreamSecrets[spec.IfaceDecryptor]
			if !ok || len(key) == 0 {
				return nil, fmt.Errorf("encryptor needs an edge secret")
			}
			return relayHandler(NewEncryptorEndpoint(up, ChannelKey(key))), nil
		},
		// Decryptor: opens tunnel traffic with the secret shared with
		// its Encryptor and relays plaintext upstream.
		spec.CompDecryptor: func(ctx *smock.ActivationContext) (transport.Handler, error) {
			up, ok := ctx.Upstreams[spec.IfaceServer]
			if !ok {
				return nil, fmt.Errorf("decryptor needs a ServerInterface provider")
			}
			if len(ctx.ServeSecret) == 0 {
				return nil, fmt.Errorf("decryptor needs an edge secret")
			}
			return NewDecryptorHandler(relayHandler(up), ChannelKey(ctx.ServeSecret)), nil
		},
		// Full client component: a pure relay toward its server; the
		// application-level Client object speaks through it.
		spec.CompMailClient: func(ctx *smock.ActivationContext) (transport.Handler, error) {
			up, ok := ctx.Upstreams[spec.IfaceServer]
			if !ok {
				return nil, fmt.Errorf("mail client needs a ServerInterface provider")
			}
			return relayHandler(up), nil
		},
		// Restricted client (object view): relays send/receive only —
		// the address-book functionality is absent from the view.
		spec.CompViewMailClient: func(ctx *smock.ActivationContext) (transport.Handler, error) {
			up, ok := ctx.Upstreams[spec.IfaceServer]
			if !ok {
				return nil, fmt.Errorf("view mail client needs a ServerInterface provider")
			}
			relay := relayHandler(up)
			return transport.HandlerFunc(func(m *wire.Message) *wire.Message {
				switch m.Method {
				case "send", "receive":
					return relay.Handle(m)
				default:
					return transport.ErrorResponse(m, "view client: %q not available in the restricted client", m.Method)
				}
			}), nil
		},
	}
	for name, f := range factories {
		if err := reg.Register(name, f); err != nil {
			return err
		}
	}
	return nil
}
