package adapt_test

import (
	"testing"

	"partsvc/internal/adapt"
	"partsvc/internal/transport"
	"partsvc/internal/wire"
)

// TestTransportProberOverRing: liveness probes must work over the
// co-located ring fast path exactly as over sockets — a healthy node
// passes, a shed reply still counts as proof of life, and a dead
// address fails. The prober dials fresh per probe, so each probe gets
// its own ring pair.
func TestTransportProberOverRing(t *testing.T) {
	tr := transport.NewTCP()
	tr.Ring = true
	ln := serveFn(t, tr, func(m *wire.Message) *wire.Message {
		if m.Method != "status" {
			return transport.ErrorResponse(m, "unexpected method %q", m.Method)
		}
		return &wire.Message{Kind: wire.KindResponse, ID: m.ID, Meta: map[string]string{"node": "x"}}
	})
	p := adapt.NewTransportProber(tr)
	if err := p.Probe("x", ln.Addr(), 2000); err != nil {
		t.Fatalf("probe over ring: %v", err)
	}
	if tr.Stats().RingConns == 0 {
		t.Fatal("probe did not use the ring fast path")
	}
	overloaded := serveFn(t, tr, func(m *wire.Message) *wire.Message {
		return transport.OverloadResponse(m)
	})
	if err := p.Probe("x", overloaded.Addr(), 2000); err != nil {
		t.Fatalf("overloaded-but-alive node over ring must pass, got %v", err)
	}
	ln.Close()
	if err := p.Probe("x", ln.Addr(), 500); err == nil {
		t.Fatal("probe of a closed listener must fail")
	}
}
