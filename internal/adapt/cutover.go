package adapt

import (
	"fmt"

	"partsvc/internal/planner"
	"partsvc/internal/smock"
	"partsvc/internal/spec"
	"partsvc/internal/transport"
	"partsvc/internal/wire"
)

// Executor provides the cutover primitives the controller drives. The
// real implementation (EngineExecutor) works against the smock engine
// and lookup; benchmarks substitute a simulation model that mutates
// virtual state instead of sending RPCs.
type Executor interface {
	// Replan computes the adaptation diff for a request against the
	// current network (revalidating the reuse set as a side effect).
	Replan(old *planner.Deployment, req planner.Request) (*planner.Diff, error)
	// Snapshot captures serialized state from the predecessors of the
	// stateful placements the diff will install, keyed by placement Key.
	// It is best-effort: a predecessor on a dead node yields no entry,
	// and the replacement starts empty (data views rebuild through the
	// coherence directory).
	Snapshot(old *planner.Deployment, diff *planner.Diff) map[string][]byte
	// Deploy realizes the diff, seeding fresh installs from states, and
	// returns the new head address. On error the old deployment is still
	// serving (deploy-before-teardown).
	Deploy(diff *planner.Diff, states map[string][]byte) (string, error)
	// Publish (re-)binds the service name to the new head address in the
	// namespace, replacing any previous binding.
	Publish(service, addr string) error
	// Discard tears down drained placements and forgets them.
	Discard(placements []planner.Placement)
}

// SnapshotMethod is the wire method stateful components answer with
// their serialized store (see mail.Snapshotter). The controller speaks
// it generically: any component that answers is migrated with state,
// any that errors is redeployed stateless.
const SnapshotMethod = "snapshot"

// EngineExecutor implements Executor against a live smock deployment:
// the generic server's planner (serialized with client access
// requests), the deployment engine, and the lookup namespace.
type EngineExecutor struct {
	// Server provides Replan/NoteDeployed/Forget/Requires.
	Server *smock.GenericServer
	// Engine deploys and tears down instances.
	Engine *smock.Engine
	// Lookup, when non-nil, receives Publish registrations.
	Lookup *smock.Lookup
	// Transport carries snapshot fetches.
	Transport transport.Transport
	// Spec identifies which components are stateful (data views carry a
	// migratable store).
	Spec *spec.Service
	// Attrs, when non-nil, are attached to Publish registrations.
	Attrs map[string]string
}

// Replan implements Executor.
func (x *EngineExecutor) Replan(old *planner.Deployment, req planner.Request) (*planner.Diff, error) {
	return x.Server.Replan(old, req)
}

// RepairReplan implements RepairExecutor: the changed-element set flows
// through to the solver backend's incremental repair (a no-op
// passthrough to Replan when the planner is not solver-backed).
func (x *EngineExecutor) RepairReplan(old *planner.Deployment, req planner.Request, ch *planner.ChangedSet) (*planner.Diff, error) {
	return x.Server.RepairReplan(old, req, ch)
}

// stateful reports whether a component's instances hold migratable
// state: data views do ("a data view contains a subset of the
// functionality and a subset of the data"); relays and object views
// are reinstalled empty.
func (x *EngineExecutor) stateful(component string) bool {
	comp, ok := x.Spec.Component(component)
	return ok && comp.Kind == spec.DataView
}

// Snapshot implements Executor. Every stateful placement in the new
// deployment gets a pre-cutover snapshot from its best predecessor:
// the live same-key instance when one exists (it may be replaced by
// the engine's stale-rewire path), otherwise a removed or evicted
// instance of the same component (the migration case — the state moves
// to a different node, shedding what the destination's trust ceiling
// forbids on restore).
func (x *EngineExecutor) Snapshot(old *planner.Deployment, diff *planner.Diff) map[string][]byte {
	states := map[string][]byte{}
	for _, p := range diff.New.Placements {
		if !x.stateful(p.Component) {
			continue
		}
		addr, ok := x.predecessorAddr(p, diff)
		if !ok {
			continue
		}
		state, err := fetchSnapshot(x.Transport, addr)
		if err != nil {
			continue // dead predecessor: redeploy stateless
		}
		states[p.Key()] = state
	}
	return states
}

// predecessorAddr finds the instance whose state should seed p.
func (x *EngineExecutor) predecessorAddr(p planner.Placement, diff *planner.Diff) (string, bool) {
	if addr, ok := x.Engine.AddrOf(p); ok {
		return addr, true
	}
	for _, set := range [][]planner.Placement{diff.Remove, diff.Evicted} {
		for _, old := range set {
			if old.Component != p.Component {
				continue
			}
			if addr, ok := x.Engine.AddrOf(old); ok {
				return addr, true
			}
		}
	}
	return "", false
}

// fetchSnapshot asks the instance served at addr for its serialized
// state via the snapshot method convention.
func fetchSnapshot(tr transport.Transport, addr string) ([]byte, error) {
	ep, err := tr.Dial(addr)
	if err != nil {
		return nil, err
	}
	defer ep.Close()
	resp, err := ep.Call(&wire.Message{Kind: wire.KindRequest, ID: 1, Method: SnapshotMethod})
	if err != nil {
		return nil, err
	}
	if err := transport.AsError(resp); err != nil {
		return nil, err
	}
	v, err := wire.Unmarshal(resp.Body)
	if err != nil {
		return nil, err
	}
	reply, ok := v.(map[string]any)
	if !ok {
		return nil, fmt.Errorf("adapt: snapshot reply is %T", v)
	}
	state, _ := reply["state"].([]byte)
	if state == nil {
		return nil, fmt.Errorf("adapt: snapshot reply carried no state")
	}
	return state, nil
}

// Deploy implements Executor: the engine applies the diff (evictions
// torn down, fresh installs seeded from states), and the planner's
// reuse set is updated to match.
func (x *EngineExecutor) Deploy(diff *planner.Diff, states map[string][]byte) (string, error) {
	addr, err := x.Engine.ApplyWith(diff, x.Server.Requires, smock.ApplyOptions{
		StateFor: func(p planner.Placement) []byte { return states[p.Key()] },
	})
	if err != nil {
		return "", err
	}
	x.Server.Forget(diff.Evicted...)
	x.Server.NoteDeployed(diff.New)
	return addr, nil
}

// Publish implements Executor. Register replaces any existing entry
// for the service name, so there is no window where the name resolves
// to nothing.
func (x *EngineExecutor) Publish(service, addr string) error {
	if x.Lookup == nil {
		return nil
	}
	return x.Lookup.Register(smock.Entry{Service: service, Attrs: x.Attrs, ServerAddr: addr})
}

// Discard implements Executor: drained instances are torn down
// (deregistering their lookup entries via the engine) and dropped from
// the planner's reuse set.
func (x *EngineExecutor) Discard(placements []planner.Placement) {
	for _, p := range placements {
		_ = x.Engine.Teardown(p) // best-effort: the node may be gone
	}
	x.Server.Forget(placements...)
}
