package adapt

import (
	"time"

	"partsvc/internal/sim"
	"partsvc/internal/transport"
)

// Scheduler abstracts delayed execution and time so the controller runs
// identically on the wall clock (real deployments, TCP tests) and
// inside the discrete-event simulator (benchmarks, fast timing tests).
// It is transport.Clock plus the one extra capability an adaptation
// loop needs: scheduling its own future work (probe rounds, debounce
// expiry, drain timers, retry backoff).
type Scheduler interface {
	transport.Clock
	// After runs fn once, delayMS milliseconds from now, and returns a
	// cancel function reporting whether it prevented the callback.
	After(delayMS float64, fn func()) (cancel func() bool)
}

// RealScheduler schedules on the wall clock via time.AfterFunc.
// Callbacks run on their own goroutines.
type RealScheduler struct{ clk *transport.RealClock }

// NewRealScheduler returns a wall-clock scheduler.
func NewRealScheduler() *RealScheduler {
	return &RealScheduler{clk: transport.NewRealClock()}
}

// NowMS implements transport.Clock.
func (s *RealScheduler) NowMS() float64 { return s.clk.NowMS() }

// After implements Scheduler.
func (s *RealScheduler) After(delayMS float64, fn func()) func() bool {
	t := time.AfterFunc(time.Duration(delayMS*float64(time.Millisecond)), fn)
	return t.Stop
}

// SimScheduler schedules on a simulation environment's virtual clock.
// Callbacks run inline on the scheduler loop (sim.Env.After semantics):
// they may schedule further events but must not block.
type SimScheduler struct{ env *sim.Env }

// NewSimScheduler wraps a simulation environment.
func NewSimScheduler(env *sim.Env) *SimScheduler { return &SimScheduler{env: env} }

// NowMS implements transport.Clock (virtual milliseconds).
func (s *SimScheduler) NowMS() float64 { return s.env.Now() }

// After implements Scheduler.
func (s *SimScheduler) After(delayMS float64, fn func()) func() bool {
	t := s.env.After(delayMS, fn)
	return t.Stop
}
