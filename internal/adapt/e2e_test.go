package adapt_test

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"partsvc/internal/adapt"
	"partsvc/internal/mail"
	"partsvc/internal/netmodel"
	"partsvc/internal/netmon"
	"partsvc/internal/planner"
	"partsvc/internal/seccrypto"
	"partsvc/internal/smock"
	"partsvc/internal/spec"
	"partsvc/internal/topology"
	"partsvc/internal/transport"
)

// world is the full case study wired for adaptation: topology, monitor,
// wrappers with control listeners on every node, mail factories, a
// pre-deployed primary, generic server, and lookup.
type world struct {
	tr       transport.Transport
	net      *netmodel.Network
	mon      *netmon.Monitor
	keys     *seccrypto.KeyRing
	primary  *mail.Server
	engine   *smock.Engine
	gs       *smock.GenericServer
	lookup   *smock.Lookup
	wrappers map[netmodel.NodeID]*smock.NodeWrapper
}

func newWorldOn(t *testing.T, tr transport.Transport) *world {
	t.Helper()
	w := &world{tr: tr, keys: seccrypto.NewKeyRing(), wrappers: map[netmodel.NodeID]*smock.NodeWrapper{}}
	clock := transport.NewRealClock()
	w.primary = mail.NewServer(w.keys, clock)
	for _, u := range []string{"Alice", "Bob", "Carol"} {
		if err := w.primary.CreateAccount(u); err != nil {
			t.Fatal(err)
		}
	}
	reg := smock.NewRegistry()
	if err := mail.RegisterFactories(reg, &mail.ServiceEnv{Primary: w.primary, Keys: w.keys}); err != nil {
		t.Fatal(err)
	}
	w.net = topology.CaseStudy()
	w.mon = netmon.New(w.net)
	w.engine = smock.NewEngine(w.tr)
	for _, node := range w.net.Nodes() {
		wr := smock.NewNodeWrapper(node.ID, w.tr, reg, clock)
		w.engine.RegisterWrapper(wr)
		if _, err := wr.ServeControl(); err != nil {
			t.Fatal(err)
		}
		w.wrappers[node.ID] = wr
	}

	addr, err := w.wrappers[topology.NYServer].Install(smock.InstallOrder{
		Component: spec.CompMailServer, InstanceID: "mail-primary",
	})
	if err != nil {
		t.Fatal(err)
	}
	svc := spec.MailService()
	pl := planner.New(svc, w.net)
	msPlace, err := pl.PrimaryPlacement(spec.CompMailServer, topology.NYServer)
	if err != nil {
		t.Fatal(err)
	}
	pl.AddExisting(msPlace)
	w.engine.AdoptInstance(msPlace, addr)

	w.gs = smock.NewGenericServer(svc, pl, w.engine)
	w.lookup = smock.NewLookup()
	w.engine.SetLookup(w.lookup)
	return w
}

func (w *world) executor() *adapt.EngineExecutor {
	return &adapt.EngineExecutor{
		Server: w.gs, Engine: w.engine, Lookup: w.lookup,
		Transport: w.tr, Spec: spec.MailService(),
	}
}

// deploySD warms up the San Diego chain so Seattle anchors onto the
// sd-2 view, reproducing the case study's incremental state.
func (w *world) deploySD(t *testing.T) {
	t.Helper()
	req := planner.Request{Interface: spec.IfaceClient, ClientNode: topology.SDClient, User: "Alice", RateRPS: 50}
	addr, _, err := w.gs.Access(req)
	if err != nil {
		t.Fatal(err)
	}
	ep, err := w.tr.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer ep.Close()
	alice := mail.NewClient("Alice", w.keys, mail.NewRemote(ep))
	if _, err := alice.Send("Bob", "warm up", []byte("x"), 2); err != nil {
		t.Fatal(err)
	}
}

// TestNodeCrashAdaptationInProc is the end-to-end acceptance test: with
// the controller running, the node hosting the mail-store view that
// Seattle's chain depends on (sd-2) is killed mid-traffic. The
// controller must detect the crash by probing, replan around the dead
// node, redeploy carrying the Seattle view's state, and flip the client
// binding — with zero client-visible request failures throughout.
func TestNodeCrashAdaptationInProc(t *testing.T) {
	runNodeCrashAdaptation(t, transport.NewInProc())
}

// TestNodeCrashAdaptationTCP is the same loop over real sockets.
func TestNodeCrashAdaptationTCP(t *testing.T) {
	runNodeCrashAdaptation(t, transport.NewTCP())
}

func runNodeCrashAdaptation(t *testing.T, tr transport.Transport) {
	w := newWorldOn(t, tr)
	w.deploySD(t)

	// Carol's Seattle session, tracked by the controller.
	req := planner.Request{Interface: spec.IfaceClient, ClientNode: topology.SeaClient, User: "Carol", RateRPS: 50}
	headAddr, dep, err := w.gs.Access(req)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(dep.String(), "ViewMailServer@sd-2") {
		t.Fatalf("Seattle chain must run through the sd-2 view initially: %s", dep)
	}
	const service = "mail-head-carol"
	if err := w.lookup.Register(smock.Entry{Service: service, ServerAddr: headAddr}); err != nil {
		t.Fatal(err)
	}
	session := adapt.NewSession("carol", service, req, dep, headAddr)

	reb := adapt.NewRebindEndpoint(w.tr, adapt.LookupResolver(w.lookup, service), adapt.RetryConfig{
		MaxAttempts: 12, BackoffMS: 25,
	})
	session.Bind(reb)

	events := make(chan adapt.Event, 512)
	ctrl := adapt.New(adapt.Config{
		DebounceMS: 20, ProbeIntervalMS: 25, ProbeTimeoutMS: 500,
		SuspicionThreshold: 2, DrainMS: 40,
	}, w.mon, w.executor(), adapt.NewRealScheduler())
	ctrl.SetProber(adapt.NewTransportProber(w.tr), w.engine.ControlAddrs)
	ctrl.OnEvent(func(e adapt.Event) {
		select {
		case events <- e:
		default:
		}
	})
	ctrl.Track(session)
	ctrl.Start()
	defer ctrl.Stop()

	carol := mail.NewViewClient("Carol", 2, w.keys.SubRing(2), mail.NewRemote(reb))

	// Baseline traffic, plus a primary-side message that reaches Carol's
	// local sea-2 view only through coherence fan-out: after the cutover
	// it can only still be there if the view's state was carried.
	if _, err := carol.Send("Alice", "before", []byte("pre-crash"), 2); err != nil {
		t.Fatalf("baseline send: %v", err)
	}
	if _, err := w.primary.Send("Alice", "Carol", "seed", []byte("carried"), 2); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 2*time.Second, func() bool {
		msgs, err := carol.Receive()
		return err == nil && hasBody(msgs, "carried")
	}, "seed message must fan out to the sea-2 view")

	// Kill sd-2 — the node hosting the mail-store view Seattle chains
	// through — and keep client traffic flowing the whole time.
	w.wrappers[topology.SDClient].Close()

	sent := 1 // "before"
	adapted := false
	deadline := time.Now().Add(15 * time.Second)
	for !adapted || sent < 8 {
		if time.Now().After(deadline) {
			t.Fatal("timed out waiting for adaptation")
		}
		subject := fmt.Sprintf("during-%d", sent)
		if _, err := carol.Send("Alice", subject, []byte(subject), 2); err != nil {
			t.Fatalf("client-visible error during adaptation (send %d): %v", sent, err)
		}
		sent++
	drain:
		for {
			select {
			case e := <-events:
				if e.Kind == "adapted" {
					adapted = true
				}
			default:
				break drain
			}
		}
		time.Sleep(10 * time.Millisecond)
	}

	// The new deployment must avoid the dead node entirely.
	newDep := session.Deployment().String()
	if strings.Contains(newDep, "@sd-2") {
		t.Errorf("adapted deployment still uses the dead node: %s", newDep)
	}
	if !strings.Contains(newDep, "ViewMailServer@sea-2") {
		t.Errorf("Seattle view must survive the adaptation: %s", newDep)
	}

	// Every send made it to the primary exactly once: the rebind layer
	// absorbed the outage without dropping or losing requests.
	waitFor(t, 2*time.Second, func() bool {
		return w.primary.Store().InboxCount("Alice") == sent
	}, fmt.Sprintf("primary inbox must hold all %d sends (has %d)",
		sent, w.primary.Store().InboxCount("Alice")))

	// State carry: the pre-crash fan-out message survives in the
	// migrated sea-2 view. (The primary never re-publishes history to a
	// fresh replica, so only the snapshot can have brought it across.)
	msgs, err := carol.Receive()
	if err != nil {
		t.Fatalf("post-adaptation receive: %v", err)
	}
	if !hasBody(msgs, "carried") {
		t.Errorf("migrated view lost the pre-crash message; inbox = %d msgs", len(msgs))
	}

	// The probe counters moved and the cutover was recorded.
	if got := session.HeadAddr(); got == headAddr {
		t.Error("head address must change across the cutover")
	}
}

// TestLinkDegradeRewireInProc: a degraded interior link evicts nothing,
// so adaptation rides on the planner's rewire check — the controller
// must re-wire Seattle's chain off the slow SD–Seattle link (moving the
// decryptor next to the primary), carrying the local view's state, with
// zero client-visible errors. Probing is off: the link change arrives
// through the monitor, as from a real monitoring substrate.
func TestLinkDegradeRewireInProc(t *testing.T) {
	w := newWorldOn(t, transport.NewInProc())
	w.deploySD(t)

	req := planner.Request{Interface: spec.IfaceClient, ClientNode: topology.SeaClient, User: "Carol", RateRPS: 50}
	headAddr, dep, err := w.gs.Access(req)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(dep.String(), "Decryptor@sd-2") {
		t.Fatalf("Seattle chain must decrypt on sd-2 initially: %s", dep)
	}
	const service = "mail-head-carol"
	if err := w.lookup.Register(smock.Entry{Service: service, ServerAddr: headAddr}); err != nil {
		t.Fatal(err)
	}
	session := adapt.NewSession("carol", service, req, dep, headAddr)
	reb := adapt.NewRebindEndpoint(w.tr, adapt.LookupResolver(w.lookup, service), adapt.RetryConfig{
		MaxAttempts: 12, BackoffMS: 25,
	})
	session.Bind(reb)

	events := make(chan adapt.Event, 512)
	ctrl := adapt.New(adapt.Config{DebounceMS: 20, DrainMS: 40}, w.mon, w.executor(), adapt.NewRealScheduler())
	ctrl.OnEvent(func(e adapt.Event) {
		select {
		case events <- e:
		default:
		}
	})
	ctrl.Track(session)
	ctrl.Start()
	defer ctrl.Stop()

	carol := mail.NewViewClient("Carol", 2, w.keys.SubRing(2), mail.NewRemote(reb))
	if _, err := carol.Send("Alice", "before", []byte("pre-degrade"), 2); err != nil {
		t.Fatalf("baseline send: %v", err)
	}
	if _, err := w.primary.Send("Alice", "Carol", "seed", []byte("carried"), 2); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 2*time.Second, func() bool {
		msgs, err := carol.Receive()
		return err == nil && hasBody(msgs, "carried")
	}, "seed message must fan out to the sea-2 view")

	if err := w.mon.ReportLink(topology.SDGateway, topology.SeaGW, 1500, 1, nil); err != nil {
		t.Fatal(err)
	}

	sent := 1
	adapted := false
	deadline := time.Now().Add(10 * time.Second)
	for !adapted || sent < 5 {
		if time.Now().After(deadline) {
			t.Fatal("timed out waiting for the rewire")
		}
		subject := fmt.Sprintf("during-%d", sent)
		if _, err := carol.Send("Alice", subject, []byte(subject), 2); err != nil {
			t.Fatalf("client-visible error during rewire (send %d): %v", sent, err)
		}
		sent++
	drain:
		for {
			select {
			case e := <-events:
				if e.Kind == "adapted" {
					adapted = true
				}
			default:
				break drain
			}
		}
		time.Sleep(10 * time.Millisecond)
	}

	newDep := session.Deployment().String()
	if strings.Contains(newDep, "Decryptor@sd-2") {
		t.Errorf("rewired chain still decrypts behind the degraded link: %s", newDep)
	}
	if !strings.Contains(newDep, "ViewMailServer@sea-2") {
		t.Errorf("Seattle view must survive the rewire: %s", newDep)
	}
	waitFor(t, 2*time.Second, func() bool {
		return w.primary.Store().InboxCount("Alice") == sent
	}, fmt.Sprintf("primary inbox must hold all %d sends (has %d)",
		sent, w.primary.Store().InboxCount("Alice")))
	msgs, err := carol.Receive()
	if err != nil {
		t.Fatalf("post-rewire receive: %v", err)
	}
	if !hasBody(msgs, "carried") {
		t.Errorf("re-wired view lost the pre-degrade message; inbox = %d msgs", len(msgs))
	}
}

func hasBody(msgs []*mail.Message, body string) bool {
	for _, m := range msgs {
		if string(m.Body) == body {
			return true
		}
	}
	return false
}

func waitFor(t *testing.T, d time.Duration, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal(msg)
}
