package adapt

import (
	"sort"
	"sync"

	"partsvc/internal/metrics"
	"partsvc/internal/netmodel"
)

// ProbePool is the shared failure detector: one heartbeat stream per
// transport endpoint no matter how many controllers or sessions care
// about the node behind it. Before the pool, every controller ran its
// own probe loop, so a node hosting placements of N sessions absorbed
// N heartbeats per interval — the classic fan-out the fleet manager
// cannot afford at 5k sessions. Registrants acquire endpoints
// (refcounted) or contribute target enumerators; each probe round walks
// the deduplicated union once, keeps the suspicion counts, and fans
// out down/up *transitions* — which are cheap — instead of probes —
// which are not.
type ProbePool struct {
	intervalMS float64
	timeoutMS  float64
	threshold  int
	prober     Prober
	sched      Scheduler

	probesSent, probesFailed *metrics.Counter
	probesDeduped            *metrics.Counter

	mu        sync.Mutex
	started   bool
	stopped   bool
	cancel    func() bool
	refs      map[netmodel.NodeID]*poolTarget
	sources   map[int]func() map[netmodel.NodeID]string
	nextSrc   int
	subs      map[int]func(node netmodel.NodeID, down bool)
	nextSub   int
	suspicion map[netmodel.NodeID]int
	down      map[netmodel.NodeID]bool
	rounds    uint64
}

type poolTarget struct {
	addr string
	refs int
}

// NewProbePool builds a pool probing every registered endpoint each
// interval. The suspicion threshold and probe timing come from the same
// Config knobs a standalone controller uses.
func NewProbePool(cfg Config, prober Prober, sched Scheduler) *ProbePool {
	cfg = cfg.withDefaults()
	reg := metrics.DefaultRegistry
	return &ProbePool{
		intervalMS:    cfg.ProbeIntervalMS,
		timeoutMS:     cfg.ProbeTimeoutMS,
		threshold:     cfg.SuspicionThreshold,
		prober:        prober,
		sched:         sched,
		probesSent:    reg.Counter("adapt.probes_sent"),
		probesFailed:  reg.Counter("adapt.probes_failed"),
		probesDeduped: reg.Counter("adapt.probes_deduped"),
		refs:          map[netmodel.NodeID]*poolTarget{},
		sources:       map[int]func() map[netmodel.NodeID]string{},
		subs:          map[int]func(node netmodel.NodeID, down bool){},
		suspicion:     map[netmodel.NodeID]int{},
		down:          map[netmodel.NodeID]bool{},
	}
}

// Threshold returns the pool's suspicion threshold (controllers quote
// it in their suspect events).
func (p *ProbePool) Threshold() int { return p.threshold }

// Acquire registers interest in an endpoint, refcounted: the first
// acquisition adds the node to the probe set, later ones just bump the
// count. Release undoes one acquisition.
func (p *ProbePool) Acquire(node netmodel.NodeID, addr string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	t := p.refs[node]
	if t == nil {
		t = &poolTarget{}
		p.refs[node] = t
	}
	t.addr = addr
	t.refs++
}

// Release drops one acquisition of the node; the last release removes
// it from the probe set and forgets its suspicion state.
func (p *ProbePool) Release(node netmodel.NodeID) {
	p.mu.Lock()
	defer p.mu.Unlock()
	t := p.refs[node]
	if t == nil {
		return
	}
	t.refs--
	if t.refs <= 0 {
		delete(p.refs, node)
		delete(p.suspicion, node)
	}
}

// AddSource registers a dynamic target enumerator (e.g. a controller's
// Engine.ControlAddrs) consulted every round, and returns its removal
// function. Enumerated targets dedupe against each other and against
// acquired endpoints.
func (p *ProbePool) AddSource(fn func() map[netmodel.NodeID]string) (remove func()) {
	p.mu.Lock()
	defer p.mu.Unlock()
	id := p.nextSrc
	p.nextSrc++
	p.sources[id] = fn
	return func() {
		p.mu.Lock()
		defer p.mu.Unlock()
		delete(p.sources, id)
	}
}

// Subscribe registers a liveness-transition callback (down=true on
// declaration, down=false on recovery) and returns its removal
// function. Callbacks run outside pool locks, in registration order,
// with node transitions in sorted node order.
func (p *ProbePool) Subscribe(fn func(node netmodel.NodeID, down bool)) (remove func()) {
	p.mu.Lock()
	defer p.mu.Unlock()
	id := p.nextSub
	p.nextSub++
	p.subs[id] = fn
	return func() {
		p.mu.Lock()
		defer p.mu.Unlock()
		delete(p.subs, id)
	}
}

// Start arms the probe loop. Idempotent.
func (p *ProbePool) Start() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.started || p.stopped || p.intervalMS <= 0 {
		return
	}
	p.started = true
	p.cancel = p.sched.After(p.intervalMS, p.round)
}

// Stop cancels the loop; a round already running finishes.
func (p *ProbePool) Stop() {
	p.mu.Lock()
	p.stopped = true
	cancel := p.cancel
	p.cancel = nil
	p.mu.Unlock()
	if cancel != nil {
		cancel()
	}
}

// Rounds returns how many probe rounds have completed.
func (p *ProbePool) Rounds() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.rounds
}

// gather unions acquired endpoints with every source's enumeration,
// counting the duplicates the pool just saved.
func (p *ProbePool) gather() map[netmodel.NodeID]string {
	p.mu.Lock()
	targets := make(map[netmodel.NodeID]string, len(p.refs))
	for node, t := range p.refs {
		targets[node] = t.addr
		if t.refs > 1 {
			p.probesDeduped.Add(int64(t.refs - 1))
		}
	}
	sources := make([]func() map[netmodel.NodeID]string, 0, len(p.sources))
	for _, fn := range p.sources {
		sources = append(sources, fn)
	}
	p.mu.Unlock()
	for _, fn := range sources {
		for node, addr := range fn() {
			if _, dup := targets[node]; dup {
				p.probesDeduped.Inc()
				continue
			}
			targets[node] = addr
		}
	}
	return targets
}

// round heartbeats every target once and fans transitions out to the
// subscribers. Like the pre-pool controller loop, it probes in sorted
// node order so simulated event sequences stay reproducible, and it
// holds no pool lock while probing or notifying: subscribers typically
// report into a monitor whose notify path re-enters controllers
// synchronously.
func (p *ProbePool) round() {
	defer func() {
		p.mu.Lock()
		p.rounds++
		if !p.stopped {
			p.cancel = p.sched.After(p.intervalMS, p.round)
		}
		p.mu.Unlock()
	}()
	targets := p.gather()
	nodes := make([]netmodel.NodeID, 0, len(targets))
	for node := range targets {
		nodes = append(nodes, node)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
	var declareDown, declareUp []netmodel.NodeID
	for _, node := range nodes {
		p.probesSent.Inc()
		err := p.prober.Probe(node, targets[node], p.timeoutMS)
		p.mu.Lock()
		if err != nil {
			p.probesFailed.Inc()
			p.suspicion[node]++
			if p.suspicion[node] >= p.threshold && !p.down[node] {
				p.down[node] = true
				declareDown = append(declareDown, node)
			}
		} else {
			p.suspicion[node] = 0
			if p.down[node] {
				delete(p.down, node)
				declareUp = append(declareUp, node)
			}
		}
		p.mu.Unlock()
	}
	if len(declareDown) == 0 && len(declareUp) == 0 {
		return
	}
	p.mu.Lock()
	ids := make([]int, 0, len(p.subs))
	for id := range p.subs {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	subs := make([]func(netmodel.NodeID, bool), 0, len(ids))
	for _, id := range ids {
		subs = append(subs, p.subs[id])
	}
	p.mu.Unlock()
	for _, node := range declareDown {
		for _, fn := range subs {
			fn(node, true)
		}
	}
	for _, node := range declareUp {
		for _, fn := range subs {
			fn(node, false)
		}
	}
}
