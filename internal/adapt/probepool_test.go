package adapt_test

import (
	"errors"
	"sync"
	"testing"

	"partsvc/internal/adapt"
	"partsvc/internal/netmodel"
	"partsvc/internal/netmon"
	"partsvc/internal/sim"
)

// TestProbePoolDedupesAcrossControllers: two controllers interested in
// the same nodes, attached to one shared pool, must cost one probe per
// node per round — not one per controller — while both still observe
// the down transition and the (shared) monitor flips the node exactly
// once.
func TestProbePoolDedupesAcrossControllers(t *testing.T) {
	env := sim.NewEnv()
	sched := adapt.NewSimScheduler(env)
	net := twoNodeNet(t)
	mon := netmon.New(net)

	var mu sync.Mutex
	probes := map[netmodel.NodeID]int{}
	dead := true
	prober := adapt.ProberFunc(func(node netmodel.NodeID, addr string, timeoutMS float64) error {
		mu.Lock()
		defer mu.Unlock()
		probes[node]++
		if node == "b" && dead {
			return errors.New("probe timeout")
		}
		return nil
	})
	pool := adapt.NewProbePool(adapt.Config{ProbeIntervalMS: 10, SuspicionThreshold: 2}, prober, sched)

	targets := func() map[netmodel.NodeID]string {
		return map[netmodel.NodeID]string{"a": "addr-a", "b": "addr-b"}
	}
	mkCtrl := func() (*adapt.Controller, *[]adapt.Event) {
		exec := &fakeExec{diff: unchangedDiff()}
		c := adapt.New(adapt.Config{DebounceMS: 5, ProbeIntervalMS: 10, SuspicionThreshold: 2}, mon, exec, sched)
		c.SetProber(prober, targets)
		c.SetProbePool(pool)
		var events []adapt.Event
		var emu sync.Mutex
		c.OnEvent(func(e adapt.Event) {
			emu.Lock()
			events = append(events, e)
			emu.Unlock()
		})
		return c, &events
	}
	c1, ev1 := mkCtrl()
	c2, ev2 := mkCtrl()
	c1.Start()
	c2.Start()

	env.At(35, func() { // after the down declaration (2nd miss at t=20)
		mu.Lock()
		defer mu.Unlock()
		dead = false
	})
	env.RunUntil(100)

	// 10 rounds in 100ms, 2 nodes: one probe per node per round, no
	// matter that two controllers registered the same enumeration.
	mu.Lock()
	pa, pb := probes["a"], probes["b"]
	mu.Unlock()
	if pa != 10 || pb != 10 {
		t.Fatalf("probes a=%d b=%d, want 10/10 (one per node per round)", pa, pb)
	}
	if got := pool.Rounds(); got != 10 {
		t.Fatalf("pool ran %d rounds, want 10", got)
	}

	suspects := func(evs *[]adapt.Event) int {
		n := 0
		for _, e := range *evs {
			if e.Kind == "suspect" {
				n++
				if e.Detail != "node b unresponsive after 2 probes" {
					t.Fatalf("suspect detail = %q", e.Detail)
				}
			}
		}
		return n
	}
	if suspects(ev1) != 1 || suspects(ev2) != 1 {
		t.Fatalf("each controller must see exactly one suspect event, got %d/%d", suspects(ev1), suspects(ev2))
	}
	node, _ := net.Node("b")
	if node.Down {
		t.Fatal("node b must be back up after probes recover")
	}
}

// TestProbePoolRefcountedAcquire: acquisitions are refcounted — the
// node stays probed until the last Release, and re-registration by a
// second holder costs no extra probes.
func TestProbePoolRefcountedAcquire(t *testing.T) {
	env := sim.NewEnv()
	sched := adapt.NewSimScheduler(env)
	var mu sync.Mutex
	probes := 0
	prober := adapt.ProberFunc(func(node netmodel.NodeID, addr string, timeoutMS float64) error {
		mu.Lock()
		probes++
		mu.Unlock()
		return nil
	})
	pool := adapt.NewProbePool(adapt.Config{ProbeIntervalMS: 10}, prober, sched)
	pool.Acquire("n1", "addr-1")
	pool.Acquire("n1", "addr-1") // second session, same endpoint
	pool.Start()

	env.At(25, func() { pool.Release("n1") }) // one holder left: keep probing
	env.At(45, func() { pool.Release("n1") }) // last holder gone: stop
	env.RunUntil(100)

	// Rounds at 10,20 (2 holders), 30,40 (1 holder) = 4 probes; rounds
	// from t=50 on have no targets.
	mu.Lock()
	got := probes
	mu.Unlock()
	if got != 4 {
		t.Fatalf("probes = %d, want 4 (refcount keeps exactly one stream, release stops it)", got)
	}
}

// TestProbePoolSubscriberRemoval: a removed subscriber receives no
// further transitions.
func TestProbePoolSubscriberRemoval(t *testing.T) {
	env := sim.NewEnv()
	sched := adapt.NewSimScheduler(env)
	prober := adapt.ProberFunc(func(netmodel.NodeID, string, float64) error {
		return errors.New("dead")
	})
	pool := adapt.NewProbePool(adapt.Config{ProbeIntervalMS: 10, SuspicionThreshold: 1}, prober, sched)
	pool.Acquire("n1", "addr-1")
	calls := 0
	remove := pool.Subscribe(func(netmodel.NodeID, bool) { calls++ })
	remove()
	pool.Start()
	env.RunUntil(50)
	if calls != 0 {
		t.Fatalf("removed subscriber called %d times", calls)
	}
}
