package adapt

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"time"

	"partsvc/internal/metrics"
	"partsvc/internal/smock"
	"partsvc/internal/transport"
	"partsvc/internal/wire"
)

// Flippable is a client binding the controller can repoint at a new
// head address during a cutover (Figure 1's "replaces itself with a
// service-specific proxy", made repeatable).
type Flippable interface {
	SetAddr(addr string)
}

// RetryConfig tunes the rebind endpoint's failure handling.
type RetryConfig struct {
	// MaxAttempts bounds the total tries per call (default 4).
	MaxAttempts int
	// BackoffMS is the delay before the first retry (default 10ms); each
	// subsequent retry doubles it.
	BackoffMS float64
	// Sleep, when non-nil, replaces time.Sleep for the backoff delays
	// (tests inject a recording or virtual-time sleeper).
	Sleep func(ms float64)
	// RetryResponse decides whether an application-level error response
	// is worth retrying (default Transient). A request can reach a live
	// relay whose own upstream died mid-cutover; the failure comes back
	// as an error *response*, not a transport error, but rebinding still
	// fixes it.
	RetryResponse func(err error) bool
}

// Transient reports whether an error (possibly an application response
// wrapping a relay's upstream failure) looks like a connectivity
// problem that re-resolving and retrying can fix, rather than a real
// application error.
func Transient(err error) bool {
	if err == nil {
		return false
	}
	msg := err.Error()
	for _, marker := range []string{
		"transport: ", // every transport sentinel (closed, no such address, timeout)
		"connection refused", "connection reset", "broken pipe",
		"use of closed network connection", "i/o timeout", "EOF",
	} {
		if strings.Contains(msg, marker) {
			return true
		}
	}
	return false
}

func (c RetryConfig) withDefaults() RetryConfig {
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 4
	}
	if c.BackoffMS <= 0 {
		c.BackoffMS = 10
	}
	if c.Sleep == nil {
		c.Sleep = func(ms float64) { time.Sleep(time.Duration(ms * float64(time.Millisecond))) }
	}
	if c.RetryResponse == nil {
		c.RetryResponse = Transient
	}
	return c
}

// RebindEndpoint is a transport.Endpoint that survives reconfiguration:
// a call that fails at the transport level (closed listener, vanished
// address, timeout) is retried with exponential backoff, re-resolving
// the target address each time — against the lookup service, or
// whatever the resolve function consults — and redialing. Application
// errors (KindError responses) are never retried; they already prove
// the service is reachable. The semantics during a cutover are
// therefore at-least-once: a request that died mid-flight may execute
// twice on the new instance.
//
// It also implements Flippable, so an adaptation controller can push
// the new head address instead of waiting for a failure to trigger
// re-resolution.
type RebindEndpoint struct {
	tr      transport.Transport
	resolve func() (string, error)
	cfg     RetryConfig
	retries *metrics.Counter
	rebinds *metrics.Counter

	mu   sync.Mutex
	addr string
	ep   transport.Endpoint
}

// NewRebindEndpoint returns a rebind endpoint that dials addresses from
// resolve on demand. resolve is consulted lazily — before the first
// call and after every transport-level failure.
func NewRebindEndpoint(tr transport.Transport, resolve func() (string, error), cfg RetryConfig) *RebindEndpoint {
	return &RebindEndpoint{
		tr: tr, resolve: resolve, cfg: cfg.withDefaults(),
		retries: metrics.DefaultRegistry.Counter("adapt.retries"),
		rebinds: metrics.DefaultRegistry.Counter("adapt.rebinds"),
	}
}

// SetAddr implements Flippable: the next call dials addr.
func (r *RebindEndpoint) SetAddr(addr string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if addr == r.addr {
		return
	}
	if r.ep != nil {
		r.ep.Close()
		r.ep = nil
	}
	r.addr = addr
}

// Addr returns the currently bound address ("" before the first call).
func (r *RebindEndpoint) Addr() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.addr
}

// drop discards a failed endpoint so the next attempt re-resolves, but
// only if no concurrent SetAddr or rebind replaced it already.
func (r *RebindEndpoint) drop(failed transport.Endpoint) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.ep == failed {
		r.ep.Close()
		r.ep = nil
		r.addr = ""
	}
}

// endpoint returns the live endpoint, resolving and dialing as needed.
func (r *RebindEndpoint) endpoint() (transport.Endpoint, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.ep != nil {
		return r.ep, nil
	}
	if r.addr == "" {
		addr, err := r.resolve()
		if err != nil {
			return nil, fmt.Errorf("adapt: resolving target: %w", err)
		}
		r.addr = addr
	}
	ep, err := r.tr.Dial(r.addr)
	if err != nil {
		r.addr = "" // the resolved address is bad; re-resolve next time
		return nil, err
	}
	r.ep = ep
	return ep, nil
}

// Call implements transport.Endpoint.
func (r *RebindEndpoint) Call(m *wire.Message) (*wire.Message, error) {
	return r.CallContext(context.Background(), m)
}

// CallContext implements transport.ContextEndpoint with the retry
// loop: transport-level failures re-resolve, redial, and try again
// until the attempt budget or the context runs out.
func (r *RebindEndpoint) CallContext(ctx context.Context, m *wire.Message) (*wire.Message, error) {
	var lastErr error
	backoff := r.cfg.BackoffMS
	for attempt := 0; attempt < r.cfg.MaxAttempts; attempt++ {
		if attempt > 0 {
			r.retries.Inc()
			r.cfg.Sleep(backoff)
			backoff *= 2
			r.rebinds.Inc()
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		ep, err := r.endpoint()
		if err != nil {
			lastErr = err
			continue
		}
		resp, err := transport.Call(ctx, ep, m)
		if err == nil {
			// A live target can still relay a dead upstream's failure back
			// as an error response; those rebind and retry like transport
			// errors. Genuine application errors return immediately.
			if appErr := transport.AsError(resp); appErr != nil && r.cfg.RetryResponse(appErr) {
				lastErr = appErr
				r.drop(ep)
				continue
			}
			return resp, nil
		}
		lastErr = err
		r.drop(ep)
	}
	return nil, fmt.Errorf("adapt: %d attempts failed: %w", r.cfg.MaxAttempts, lastErr)
}

// Close implements transport.Endpoint.
func (r *RebindEndpoint) Close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.ep != nil {
		err := r.ep.Close()
		r.ep = nil
		return err
	}
	return nil
}

// LookupResolver returns a resolve function that re-Finds service in
// the lookup on every resolution — the standard way a rebind endpoint
// chases a service's head address across cutovers.
func LookupResolver(l *smock.Lookup, service string) func() (string, error) {
	return func() (string, error) {
		entries := l.Find(service, nil)
		if len(entries) == 0 {
			return "", fmt.Errorf("adapt: no %q entry in lookup", service)
		}
		return entries[0].ServerAddr, nil
	}
}
