// Package adapt closes the paper's adaptation loop as a real subsystem:
// monitor → replan → redeploy, continuously. Section 6 leaves this as
// future work ("the framework be integrated with network monitoring
// tools … whether a new deployment (either incremental or complete) is
// called for"); earlier layers of this reproduction built the pieces —
// netmon reports changes, planner.Replan computes diffs, the smock
// engine realizes them — but gluing them together was manual test
// choreography. The Controller here automates it: it subscribes to the
// monitor, actively probes deployed nodes for liveness, debounces
// change bursts, replans every tracked session, and executes each diff
// as a staged cutover (snapshot state → deploy → publish → flip client
// bindings → drain → teardown) so clients keep getting answers while
// the service re-partitions under them.
//
// The controller is clock-abstracted (Scheduler): the same state
// machine runs on the wall clock against real TCP deployments and on
// the virtual clock inside internal/sim, where its timing behavior is
// deterministic and fast to test.
package adapt

import (
	"fmt"
	"strings"
	"sync"

	"partsvc/internal/metrics"
	"partsvc/internal/netmodel"
	"partsvc/internal/netmon"
	"partsvc/internal/planner"
)

// Config tunes the controller's timing and thresholds. All durations
// are in (real or virtual) milliseconds.
type Config struct {
	// DebounceMS batches change bursts: the controller replans this long
	// after the last observed change, not once per change (default 50).
	DebounceMS float64
	// ProbeIntervalMS is the heartbeat period for active failure
	// detection; 0 disables probing (passive mode — the controller still
	// reacts to reported changes).
	ProbeIntervalMS float64
	// ProbeTimeoutMS bounds each probe (default 1000).
	ProbeTimeoutMS float64
	// SuspicionThreshold is the number of consecutive probe failures
	// before a node is declared down (default 2). One lost heartbeat is
	// suspicion; only repetition is evidence.
	SuspicionThreshold int
	// DrainMS is how long replaced instances keep running after the
	// client bindings flip, letting in-flight requests finish before
	// teardown (default 100).
	DrainMS float64
	// RetryBackoffMS is the delay before retrying a failed adaptation;
	// it doubles per consecutive failure (default 200).
	RetryBackoffMS float64
	// MaxAdaptRetries bounds consecutive retries of a failing adaptation
	// per session (default 3). After that the session waits for the next
	// network change.
	MaxAdaptRetries int
}

func (c Config) withDefaults() Config {
	if c.DebounceMS <= 0 {
		c.DebounceMS = 50
	}
	if c.ProbeTimeoutMS <= 0 {
		c.ProbeTimeoutMS = 1000
	}
	if c.SuspicionThreshold <= 0 {
		c.SuspicionThreshold = 2
	}
	if c.DrainMS <= 0 {
		c.DrainMS = 100
	}
	if c.RetryBackoffMS <= 0 {
		c.RetryBackoffMS = 200
	}
	if c.MaxAdaptRetries <= 0 {
		c.MaxAdaptRetries = 3
	}
	return c
}

// Event is one observable step of the control loop, timestamped on the
// controller's clock. Kind is one of "observe" (changes arrived),
// "suspect" (node declared down by the failure detector), "replan",
// "stage" (cutover stage entered; Detail names it), "adapted",
// "unchanged", or "failed".
type Event struct {
	AtMS    float64
	Kind    string
	Session string
	Detail  string
}

// String renders the event for streaming logs.
func (e Event) String() string {
	s := fmt.Sprintf("[%8.1fms] %-9s", e.AtMS, e.Kind)
	if e.Session != "" {
		s += " " + e.Session
	}
	if e.Detail != "" {
		s += ": " + e.Detail
	}
	return s
}

// Session is one client-facing deployment the controller keeps valid:
// the planning request that produced it, the current deployment, and
// the client bindings to flip when the head moves.
type Session struct {
	// Name identifies the session in events.
	Name string
	// Service, when non-empty, is the lookup name under which the head
	// address is (re-)published on every cutover.
	Service string
	// Req is the planning request to replay on every replan.
	Req planner.Request

	mu       sync.Mutex
	dep      *planner.Deployment
	head     string
	bindings []Flippable
}

// NewSession wraps an initial deployment (from GenericServer.Access or
// Engine.Execute) for tracking.
func NewSession(name, service string, req planner.Request, dep *planner.Deployment, headAddr string) *Session {
	return &Session{Name: name, Service: service, Req: req, dep: dep, head: headAddr}
}

// Bind registers a client binding to repoint on cutover.
func (s *Session) Bind(f Flippable) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.bindings = append(s.bindings, f)
}

// Deployment returns the session's current deployment.
func (s *Session) Deployment() *planner.Deployment {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dep
}

// HeadAddr returns the current head component address.
func (s *Session) HeadAddr() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.head
}

func (s *Session) snapshot() (*planner.Deployment, string, []Flippable) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dep, s.head, append([]Flippable(nil), s.bindings...)
}

func (s *Session) commit(dep *planner.Deployment, head string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.dep = dep
	s.head = head
}

// Controller runs the adaptation loop. Construct with New, Track the
// sessions to keep valid, then Start.
type Controller struct {
	cfg    Config
	mon    *netmon.Monitor
	exec   Executor
	sched  Scheduler
	prober Prober
	// targets enumerates probe targets (typically Engine.ControlAddrs).
	targets func() map[netmodel.NodeID]string
	onEvent func(Event)

	probesSent, probesFailed  *metrics.Counter
	replans, replanFailures   *metrics.Counter
	adaptations, cutoverFails *metrics.Counter
	cutoverMS                 *metrics.Histogram

	adaptMu sync.Mutex // serializes adaptation passes

	mu             sync.Mutex
	sessions       []*Session
	started        bool
	stopped        bool
	pending        *planner.ChangedSet // changes observed since the last pass
	debounceCancel func() bool
	pool           *ProbePool
	poolOwned      bool
	poolRemoveSrc  func()
	poolRemoveSub  func()
	retryCount     map[string]int
	retryPending   map[string]bool
}

// New builds a controller over a monitor and an executor. prober and
// targets may be nil when cfg.ProbeIntervalMS is 0.
func New(cfg Config, mon *netmon.Monitor, exec Executor, sched Scheduler) *Controller {
	reg := metrics.DefaultRegistry
	return &Controller{
		cfg: cfg.withDefaults(), mon: mon, exec: exec, sched: sched,
		probesSent:     reg.Counter("adapt.probes_sent"),
		probesFailed:   reg.Counter("adapt.probes_failed"),
		replans:        reg.Counter("adapt.replans"),
		replanFailures: reg.Counter("adapt.replan_failures"),
		adaptations:    reg.Counter("adapt.adaptations"),
		cutoverFails:   reg.Counter("adapt.cutover_failures"),
		cutoverMS:      reg.Histogram("adapt.cutover_ms"),
		retryCount:     map[string]int{},
		retryPending:   map[string]bool{},
	}
}

// SetProber installs the failure detector and its target enumerator.
// Must be called before Start. The controller wraps them in a private
// ProbePool; controllers that should share heartbeat streams use
// SetProbePool instead.
func (c *Controller) SetProber(p Prober, targets func() map[netmodel.NodeID]string) {
	c.prober = p
	c.targets = targets
}

// SetProbePool attaches the controller to a shared failure detector:
// its target enumerator (when set via SetProber, or passed to
// Engine wiring) feeds the pool, liveness transitions flow back, and
// the pool probes each node once per round no matter how many
// controllers registered it. Must be called before Start.
func (c *Controller) SetProbePool(p *ProbePool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.pool = p
	c.poolOwned = false
}

// OnEvent installs an event sink (streamed to logs by psfctl, asserted
// on by tests). Must be called before Start; events are emitted without
// holding controller locks.
func (c *Controller) OnEvent(fn func(Event)) { c.onEvent = fn }

// Track adds a session to keep valid. May be called before or after
// Start.
func (c *Controller) Track(s *Session) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.sessions = append(c.sessions, s)
}

// Untrack stops keeping the named session valid (its deployment is
// left as-is). No-op for unknown names.
func (c *Controller) Untrack(name string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for i, s := range c.sessions {
		if s.Name == name {
			c.sessions = append(c.sessions[:i], c.sessions[i+1:]...)
			return
		}
	}
}

// Kick runs an immediate adaptation pass over every tracked session,
// bypassing the debounce window — the management API's "adapt now".
// Synchronous: it returns when the pass (including any cutovers) is
// done. No-op after Stop.
func (c *Controller) Kick() {
	c.mu.Lock()
	stopped := c.stopped
	c.mu.Unlock()
	if !stopped {
		c.adaptAll()
	}
}

// Start subscribes to the monitor and, when configured, starts (or
// joins) the failure-detection loop.
func (c *Controller) Start() {
	c.mu.Lock()
	if c.started {
		c.mu.Unlock()
		return
	}
	c.started = true
	pool := c.pool
	if pool == nil && c.cfg.ProbeIntervalMS > 0 && c.prober != nil && c.targets != nil {
		// Standalone mode: a private pool reproduces the pre-pool
		// probing behavior exactly (same config knobs, same cadence).
		pool = NewProbePool(c.cfg, c.prober, c.sched)
		c.pool = pool
		c.poolOwned = true
	}
	if pool != nil {
		if c.targets != nil {
			c.poolRemoveSrc = pool.AddSource(c.targets)
		}
		c.poolRemoveSub = pool.Subscribe(c.onLiveness)
	}
	c.mu.Unlock()
	c.mon.Subscribe(c.onChanges)
	if pool != nil {
		pool.Start()
	}
}

// Stop cancels pending timers. Already-running adaptation passes finish;
// no new ones start. (The monitor subscription stays registered but
// becomes inert.)
func (c *Controller) Stop() {
	c.mu.Lock()
	c.stopped = true
	debounce := c.debounceCancel
	c.debounceCancel = nil
	removeSrc, removeSub := c.poolRemoveSrc, c.poolRemoveSub
	c.poolRemoveSrc, c.poolRemoveSub = nil, nil
	pool, owned := c.pool, c.poolOwned
	c.mu.Unlock()
	if debounce != nil {
		debounce()
	}
	if removeSrc != nil {
		removeSrc()
	}
	if removeSub != nil {
		removeSub()
	}
	if pool != nil && owned {
		pool.Stop()
	}
}

func (c *Controller) emit(kind, session, detail string) {
	if c.onEvent == nil {
		return
	}
	c.onEvent(Event{AtMS: c.sched.NowMS(), Kind: kind, Session: session, Detail: detail})
}

// onChanges is the netmon subscriber. It runs synchronously under the
// monitor's mutex, so it must only note the changes and arm the
// debounce timer — all real work happens later, on the scheduler.
func (c *Controller) onChanges(changes []netmon.Change) {
	c.mu.Lock()
	if c.stopped {
		c.mu.Unlock()
		return
	}
	if c.debounceCancel != nil {
		c.debounceCancel() // extend the window: the burst is still going
	}
	if c.pending == nil {
		c.pending = planner.NewChangedSet()
	}
	for _, ch := range changes {
		switch ch.Kind {
		case "node":
			c.pending.AddNode(netmodel.NodeID(ch.Subject))
		case "link":
			if a, b, ok := strings.Cut(ch.Subject, "~"); ok {
				c.pending.AddLink(netmodel.NodeID(a), netmodel.NodeID(b))
			}
		}
	}
	c.debounceCancel = c.sched.After(c.cfg.DebounceMS, c.debounceExpired)
	c.mu.Unlock()
	detail := changes[0].String()
	if len(changes) > 1 {
		detail = fmt.Sprintf("%s (+%d more)", detail, len(changes)-1)
	}
	c.emit("observe", "", detail)
}

func (c *Controller) debounceExpired() {
	c.mu.Lock()
	c.debounceCancel = nil
	stopped := c.stopped
	c.mu.Unlock()
	if !stopped {
		c.adaptAll()
	}
}

// adaptAll replans every tracked session against the current network,
// handing the accumulated changed-element set to the executor so a
// repair-capable planner can scope the re-search to what the changes
// actually touched.
func (c *Controller) adaptAll() {
	c.adaptMu.Lock()
	defer c.adaptMu.Unlock()
	c.mu.Lock()
	sessions := append([]*Session(nil), c.sessions...)
	ch := c.pending
	c.pending = nil
	c.mu.Unlock()
	for _, s := range sessions {
		c.adaptSession(s, ch)
	}
}

// RepairExecutor is the optional executor extension for planners with
// an incremental repair path: ch names the network elements that
// changed since the last pass (nil means unknown — full replan).
type RepairExecutor interface {
	RepairReplan(old *planner.Deployment, req planner.Request, ch *planner.ChangedSet) (*planner.Diff, error)
}

func (c *Controller) adaptSession(s *Session, ch *planner.ChangedSet) {
	old, oldHead, bindings := s.snapshot()
	c.replans.Inc()
	var diff *planner.Diff
	var err error
	if rx, ok := c.exec.(RepairExecutor); ok && !ch.Empty() {
		diff, err = rx.RepairReplan(old, s.Req, ch)
	} else {
		diff, err = c.exec.Replan(old, s.Req)
	}
	if err != nil {
		c.replanFailures.Inc()
		c.emit("failed", s.Name, fmt.Sprintf("replan: %v", err))
		c.scheduleRetry(s)
		return
	}
	c.emit("replan", s.Name, diffSummary(diff))
	if diff.Unchanged() && len(diff.Evicted) == 0 {
		c.clearRetry(s)
		c.emit("unchanged", s.Name, "")
		return
	}
	start := c.sched.NowMS()
	if err := c.cutover(s, old, bindings, diff); err != nil {
		c.cutoverFails.Inc()
		c.emit("failed", s.Name, err.Error())
		c.scheduleRetry(s)
		return
	}
	c.clearRetry(s)
	c.cutoverMS.Observe(c.sched.NowMS() - start)
	c.adaptations.Inc()
	c.emit("adapted", s.Name, fmt.Sprintf("head %s -> %s", oldHead, s.HeadAddr()))
}

// cutover executes one staged reconfiguration. The invariant is
// deploy-before-teardown: until the new chain is serving and the
// bindings have flipped, the old deployment keeps running, so any
// failure up to the flip leaves clients exactly where they were.
func (c *Controller) cutover(s *Session, old *planner.Deployment, bindings []Flippable, diff *planner.Diff) error {
	c.emit("stage", s.Name, "snapshot")
	states := c.exec.Snapshot(old, diff)

	c.emit("stage", s.Name, "deploy")
	addr, err := c.exec.Deploy(diff, states)
	if err != nil {
		return fmt.Errorf("deploy: %v (old deployment still serving)", err)
	}

	if s.Service != "" {
		c.emit("stage", s.Name, "publish")
		if err := c.exec.Publish(s.Service, addr); err != nil {
			return fmt.Errorf("publish: %v (old deployment still serving)", err)
		}
	}

	c.emit("stage", s.Name, "flip")
	for _, b := range bindings {
		b.SetAddr(addr)
	}
	s.commit(diff.New, addr)

	// Replaced instances drain before teardown: requests already past
	// the flip may still be in flight through them.
	remove := append([]planner.Placement(nil), diff.Remove...)
	if len(remove) > 0 {
		c.emit("stage", s.Name, "drain")
		c.sched.After(c.cfg.DrainMS, func() {
			c.exec.Discard(remove)
			c.emit("stage", s.Name, "teardown")
		})
	}
	return nil
}

func (c *Controller) scheduleRetry(s *Session) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.stopped || c.retryPending[s.Name] {
		return
	}
	n := c.retryCount[s.Name]
	if n >= c.cfg.MaxAdaptRetries {
		return // give up until the network changes again
	}
	c.retryCount[s.Name] = n + 1
	c.retryPending[s.Name] = true
	delay := c.cfg.RetryBackoffMS * float64(int(1)<<n)
	c.sched.After(delay, func() {
		c.mu.Lock()
		c.retryPending[s.Name] = false
		stopped := c.stopped
		c.mu.Unlock()
		if stopped {
			return
		}
		c.adaptMu.Lock()
		// Retries have no changed-set: the previous attempt already
		// consumed it, so they take the full-replan path.
		c.adaptSession(s, nil)
		c.adaptMu.Unlock()
	})
}

func (c *Controller) clearRetry(s *Session) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.retryCount, s.Name)
}

// onLiveness receives pool transitions: a down declaration becomes a
// suspect event plus a monitor report (idempotent when several
// controllers share a monitor), a recovery clears it.
func (c *Controller) onLiveness(node netmodel.NodeID, down bool) {
	if down {
		c.emit("suspect", "", fmt.Sprintf("node %s unresponsive after %d probes", node, c.pool.Threshold()))
		_ = c.mon.ReportNodeDown(node)
		return
	}
	_ = c.mon.ReportNodeUp(node)
}

func diffSummary(d *planner.Diff) string {
	return fmt.Sprintf("install=%d remove=%d evicted=%d", len(d.Install), len(d.Remove), len(d.Evicted))
}
