package adapt_test

import (
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"

	"partsvc/internal/adapt"
	"partsvc/internal/transport"
	"partsvc/internal/wire"
)

func serveFn(t *testing.T, tr transport.Transport, fn func(*wire.Message) *wire.Message) transport.Listener {
	t.Helper()
	ln, err := tr.Serve("", transport.HandlerFunc(fn))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	return ln
}

func okHandler(calls *atomic.Int64) func(*wire.Message) *wire.Message {
	return func(m *wire.Message) *wire.Message {
		calls.Add(1)
		return &wire.Message{Kind: wire.KindResponse, ID: m.ID, Meta: map[string]string{"ok": "1"}}
	}
}

// noSleep makes retry tests instant.
func noSleep(cfg adapt.RetryConfig) adapt.RetryConfig {
	cfg.Sleep = func(float64) {}
	return cfg
}

// TestRebindSurvivesListenerDeath: the bound target dies, the resolver
// starts answering with a replacement, and the next call lands there
// after transparent re-resolution — the client never sees the failure.
func TestRebindSurvivesListenerDeath(t *testing.T) {
	tr := transport.NewInProc()
	var aCalls, bCalls atomic.Int64
	lnA := serveFn(t, tr, okHandler(&aCalls))
	lnB := serveFn(t, tr, okHandler(&bCalls))
	current := lnA.Addr()
	reb := adapt.NewRebindEndpoint(tr, func() (string, error) { return current, nil },
		noSleep(adapt.RetryConfig{MaxAttempts: 4}))
	defer reb.Close()

	if _, err := reb.Call(&wire.Message{Kind: wire.KindRequest, ID: 1, Method: "ping"}); err != nil {
		t.Fatalf("first call: %v", err)
	}
	lnA.Close()
	current = lnB.Addr()
	if _, err := reb.Call(&wire.Message{Kind: wire.KindRequest, ID: 2, Method: "ping"}); err != nil {
		t.Fatalf("call after target death: %v", err)
	}
	if aCalls.Load() != 1 || bCalls.Load() != 1 {
		t.Fatalf("calls = A:%d B:%d, want 1 each", aCalls.Load(), bCalls.Load())
	}
	if reb.Addr() != lnB.Addr() {
		t.Fatalf("bound addr = %q, want the replacement %q", reb.Addr(), lnB.Addr())
	}
}

// TestRebindRetriesTransientErrorResponse: an application-level error
// response that wraps a transport failure (a live relay whose upstream
// died) is retried like a transport error; re-resolution fixes it.
func TestRebindRetriesTransientErrorResponse(t *testing.T) {
	tr := transport.NewInProc()
	var calls atomic.Int64
	ln := serveFn(t, tr, func(m *wire.Message) *wire.Message {
		if calls.Add(1) <= 2 {
			return transport.ErrorResponse(m, "relay: %s", transport.ErrClosed)
		}
		return &wire.Message{Kind: wire.KindResponse, ID: m.ID}
	})
	reb := adapt.NewRebindEndpoint(tr, func() (string, error) { return ln.Addr(), nil },
		noSleep(adapt.RetryConfig{MaxAttempts: 5}))
	defer reb.Close()

	resp, err := reb.Call(&wire.Message{Kind: wire.KindRequest, ID: 1, Method: "flush"})
	if err != nil {
		t.Fatalf("call: %v", err)
	}
	if appErr := transport.AsError(resp); appErr != nil {
		t.Fatalf("final response is still an error: %v", appErr)
	}
	if calls.Load() != 3 {
		t.Fatalf("handler called %d times, want 3 (two transient failures + success)", calls.Load())
	}
}

// TestRebindDoesNotRetryApplicationError: a genuine application error
// proves the service is reachable; retrying it would duplicate a
// request that already executed.
func TestRebindDoesNotRetryApplicationError(t *testing.T) {
	tr := transport.NewInProc()
	var calls atomic.Int64
	ln := serveFn(t, tr, func(m *wire.Message) *wire.Message {
		calls.Add(1)
		return transport.ErrorResponse(m, "mail: no such account %q", "mallory")
	})
	reb := adapt.NewRebindEndpoint(tr, func() (string, error) { return ln.Addr(), nil },
		noSleep(adapt.RetryConfig{MaxAttempts: 5}))
	defer reb.Close()

	resp, err := reb.Call(&wire.Message{Kind: wire.KindRequest, ID: 1, Method: "send"})
	if err != nil {
		t.Fatalf("call: %v", err)
	}
	if appErr := transport.AsError(resp); appErr == nil || !strings.Contains(appErr.Error(), "no such account") {
		t.Fatalf("application error must pass through, got %v", appErr)
	}
	if calls.Load() != 1 {
		t.Fatalf("handler called %d times, want 1 (no retry)", calls.Load())
	}
}

// TestRebindSetAddrFlips: a controller-pushed address takes effect on
// the next call without any failure in between.
func TestRebindSetAddrFlips(t *testing.T) {
	tr := transport.NewInProc()
	var aCalls, bCalls atomic.Int64
	lnA := serveFn(t, tr, okHandler(&aCalls))
	lnB := serveFn(t, tr, okHandler(&bCalls))
	reb := adapt.NewRebindEndpoint(tr, func() (string, error) { return lnA.Addr(), nil },
		noSleep(adapt.RetryConfig{}))
	defer reb.Close()

	if _, err := reb.Call(&wire.Message{Kind: wire.KindRequest, ID: 1}); err != nil {
		t.Fatal(err)
	}
	reb.SetAddr(lnB.Addr())
	if _, err := reb.Call(&wire.Message{Kind: wire.KindRequest, ID: 2}); err != nil {
		t.Fatal(err)
	}
	if aCalls.Load() != 1 || bCalls.Load() != 1 {
		t.Fatalf("calls = A:%d B:%d, want 1 each after the flip", aCalls.Load(), bCalls.Load())
	}
}

// TestRebindExhaustsAttemptsWithBackoff: when nothing answers, the
// budget is spent with doubling backoff and the last error surfaces.
func TestRebindExhaustsAttemptsWithBackoff(t *testing.T) {
	tr := transport.NewInProc()
	var sleeps []float64
	reb := adapt.NewRebindEndpoint(tr, func() (string, error) { return "inproc-nowhere", nil },
		adapt.RetryConfig{MaxAttempts: 3, BackoffMS: 10, Sleep: func(ms float64) { sleeps = append(sleeps, ms) }})
	defer reb.Close()

	_, err := reb.Call(&wire.Message{Kind: wire.KindRequest, ID: 1})
	if err == nil || !strings.Contains(err.Error(), "3 attempts failed") {
		t.Fatalf("err = %v, want attempt-budget failure", err)
	}
	if fmt.Sprint(sleeps) != "[10 20]" {
		t.Fatalf("backoff sleeps = %v, want [10 20]", sleeps)
	}
}

// TestTransient classifies transport-ish failures as retryable and
// everything else as not.
func TestTransient(t *testing.T) {
	for _, tc := range []struct {
		err  error
		want bool
	}{
		{nil, false},
		{transport.ErrClosed, true},
		{transport.ErrNoSuchAddr, true},
		{transport.ErrCallTimeout, true},
		{fmt.Errorf("relay: %w", transport.ErrClosed), true},
		{errors.New("dial tcp 127.0.0.1:9: connection refused"), true},
		{errors.New("read: connection reset by peer"), true},
		{errors.New("mail: view flush: relay: transport: closed"), true},
		{errors.New("mail: no such account"), false},
		{errors.New("planner: no feasible deployment"), false},
	} {
		if got := adapt.Transient(tc.err); got != tc.want {
			t.Errorf("Transient(%v) = %v, want %v", tc.err, got, tc.want)
		}
	}
}

// TestTransportProber: a healthy wrapper-style status handler passes,
// an impostor answering as the wrong node fails, and a dead address
// fails.
func TestTransportProber(t *testing.T) {
	tr := transport.NewInProc()
	ln := serveFn(t, tr, func(m *wire.Message) *wire.Message {
		if m.Method != "status" {
			return transport.ErrorResponse(m, "unexpected method %q", m.Method)
		}
		return &wire.Message{Kind: wire.KindResponse, ID: m.ID, Meta: map[string]string{"node": "x"}}
	})
	p := adapt.NewTransportProber(tr)
	if err := p.Probe("x", ln.Addr(), 500); err != nil {
		t.Fatalf("probe of live node: %v", err)
	}
	if err := p.Probe("y", ln.Addr(), 500); err == nil {
		t.Fatal("probe must fail when the responder identifies as a different node")
	}
	if err := p.Probe("x", "inproc-nowhere", 500); err == nil {
		t.Fatal("probe of a dead address must fail")
	}
}

// TestTransportProberOverloadedIsAlive: a shed (ErrOverloaded) reply is
// proof of life — the node's admission control answered — so it must
// not count as a suspicion strike, while ordinary errors still do.
func TestTransportProberOverloadedIsAlive(t *testing.T) {
	tr := transport.NewInProc()
	ln := serveFn(t, tr, func(m *wire.Message) *wire.Message {
		return transport.OverloadResponse(m)
	})
	p := adapt.NewTransportProber(tr)
	if err := p.Probe("x", ln.Addr(), 500); err != nil {
		t.Fatalf("probe of an overloaded-but-alive node must pass, got %v", err)
	}
	lnErr := serveFn(t, tr, func(m *wire.Message) *wire.Message {
		return transport.ErrorResponse(m, "wrapper on fire")
	})
	if err := p.Probe("x", lnErr.Addr(), 500); err == nil {
		t.Fatal("a genuine error reply must still count as a probe failure")
	}
}
