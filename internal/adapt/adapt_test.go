package adapt_test

import (
	"errors"
	"sync"
	"testing"

	"partsvc/internal/adapt"
	"partsvc/internal/netmodel"
	"partsvc/internal/netmon"
	"partsvc/internal/planner"
	"partsvc/internal/property"
	"partsvc/internal/sim"
)

// fakeExec is an in-memory Executor: every stage is a counter, the
// diff and the error injections are test-controlled.
type fakeExec struct {
	mu        sync.Mutex
	replanErr error
	deployErr error
	diff      *planner.Diff
	addr      string

	replans, deploys, publishes, discards int
	published                             string
}

func (f *fakeExec) Replan(old *planner.Deployment, req planner.Request) (*planner.Diff, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.replans++
	if f.replanErr != nil {
		return nil, f.replanErr
	}
	return f.diff, nil
}

func (f *fakeExec) Snapshot(old *planner.Deployment, diff *planner.Diff) map[string][]byte {
	return nil
}

func (f *fakeExec) Deploy(diff *planner.Diff, states map[string][]byte) (string, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.deploys++
	if f.deployErr != nil {
		return "", f.deployErr
	}
	return f.addr, nil
}

func (f *fakeExec) Publish(service, addr string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.publishes++
	f.published = addr
	return nil
}

func (f *fakeExec) Discard(placements []planner.Placement) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.discards++
}

func (f *fakeExec) set(fn func(*fakeExec)) {
	f.mu.Lock()
	defer f.mu.Unlock()
	fn(f)
}

func (f *fakeExec) counts() (replans, deploys, discards int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.replans, f.deploys, f.discards
}

// flipRecorder records SetAddr calls.
type flipRecorder struct {
	mu    sync.Mutex
	addrs []string
}

func (r *flipRecorder) SetAddr(addr string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.addrs = append(r.addrs, addr)
}

func (r *flipRecorder) flips() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]string(nil), r.addrs...)
}

func twoNodeNet(t *testing.T) *netmodel.Network {
	t.Helper()
	net := netmodel.New()
	for _, id := range []netmodel.NodeID{"a", "b"} {
		if err := net.AddNode(netmodel.Node{ID: id, Props: property.Set{}}); err != nil {
			t.Fatal(err)
		}
	}
	if err := net.AddLink(netmodel.Link{A: "a", B: "b", LatencyMS: 1, BandwidthMbps: 100, Props: property.Set{}}); err != nil {
		t.Fatal(err)
	}
	return net
}

func place(component string, node netmodel.NodeID) planner.Placement {
	return planner.Placement{Component: component, Node: node, Config: property.Set{}}
}

// changedDiff returns a diff with one fresh install (so the controller
// runs a full cutover) and one removal (so a drain is scheduled).
func changedDiff() *planner.Diff {
	install := place("C", "a")
	return &planner.Diff{
		New:     &planner.Deployment{Placements: []planner.Placement{install}},
		Install: []planner.Placement{install},
		Remove:  []planner.Placement{place("C", "b")},
	}
}

func unchangedDiff() *planner.Diff {
	reused := place("C", "a")
	reused.Reused = true
	return &planner.Diff{New: &planner.Deployment{Placements: []planner.Placement{reused}}}
}

type harness struct {
	env    *sim.Env
	net    *netmodel.Network
	mon    *netmon.Monitor
	exec   *fakeExec
	ctrl   *adapt.Controller
	sess   *adapt.Session
	mu     sync.Mutex
	events []adapt.Event
}

// newHarness wires a controller to a sim scheduler over a two-node
// network. The session starts on head "old-head".
func newHarness(t *testing.T, cfg adapt.Config, exec *fakeExec) *harness {
	t.Helper()
	h := &harness{env: sim.NewEnv(), net: twoNodeNet(t), exec: exec}
	h.mon = netmon.New(h.net)
	h.ctrl = adapt.New(cfg, h.mon, exec, adapt.NewSimScheduler(h.env))
	h.ctrl.OnEvent(func(e adapt.Event) {
		h.mu.Lock()
		h.events = append(h.events, e)
		h.mu.Unlock()
	})
	h.sess = adapt.NewSession("s", "svc", planner.Request{Interface: "I", ClientNode: "a"},
		&planner.Deployment{Placements: []planner.Placement{place("C", "b")}}, "old-head")
	h.ctrl.Track(h.sess)
	return h
}

func (h *harness) eventsOf(kind string) []adapt.Event {
	h.mu.Lock()
	defer h.mu.Unlock()
	var out []adapt.Event
	for _, e := range h.events {
		if e.Kind == kind {
			out = append(out, e)
		}
	}
	return out
}

// TestDebounceBatchesBursts: two changes 30ms apart under a 50ms
// debounce window produce ONE replan, 50ms after the second change.
func TestDebounceBatchesBursts(t *testing.T) {
	exec := &fakeExec{diff: unchangedDiff()}
	h := newHarness(t, adapt.Config{DebounceMS: 50, RetryBackoffMS: 1000}, exec)
	h.ctrl.Start()
	report := func(trust int64) func() {
		return func() {
			if err := h.mon.ReportNodeProps("b", property.Set{"TrustLevel": property.Int(trust)}); err != nil {
				t.Error(err)
			}
		}
	}
	h.env.At(0, report(3))
	h.env.At(30, report(2))
	h.env.RunUntil(500)

	replans, _, _ := exec.counts()
	if replans != 1 {
		t.Fatalf("got %d replans, want 1 (debounce must batch the burst)", replans)
	}
	evs := h.eventsOf("replan")
	if len(evs) != 1 || evs[0].AtMS != 80 {
		t.Fatalf("replan events = %v, want one at t=80 (30ms second change + 50ms window)", evs)
	}
	if len(h.eventsOf("unchanged")) != 1 {
		t.Fatalf("an unchanged diff must emit an 'unchanged' event; events: %v", h.events)
	}
}

// TestReplanFailureRetriesWithBackoff: a persistently failing replan is
// retried MaxAdaptRetries times with doubling backoff, then abandoned
// until the next network change.
func TestReplanFailureRetriesWithBackoff(t *testing.T) {
	exec := &fakeExec{replanErr: errors.New("no feasible plan")}
	h := newHarness(t, adapt.Config{DebounceMS: 10, RetryBackoffMS: 20, MaxAdaptRetries: 3}, exec)
	h.ctrl.Start()
	h.env.At(0, func() {
		_ = h.mon.ReportNodeDown("b")
	})
	h.env.RunUntil(5000)

	replans, _, _ := exec.counts()
	if replans != 4 {
		t.Fatalf("got %d replan attempts, want 4 (initial + 3 retries)", replans)
	}
	fails := h.eventsOf("failed")
	if len(fails) != 4 {
		t.Fatalf("got %d failed events, want 4: %v", len(fails), fails)
	}
	// t=10 initial; retries after 20, 40, 80ms of backoff.
	want := []float64{10, 30, 70, 150}
	for i, e := range fails {
		if e.AtMS != want[i] {
			t.Errorf("failure %d at t=%.1f, want %.1f", i, e.AtMS, want[i])
		}
	}
}

// TestDeployFailureKeepsOldBindingThenRecovers: a deploy error mid-
// cutover must leave the client bindings and the session untouched (the
// old deployment is still serving); the scheduled retry then completes
// the cutover once the executor heals.
func TestDeployFailureKeepsOldBindingThenRecovers(t *testing.T) {
	exec := &fakeExec{diff: changedDiff(), addr: "new-head", deployErr: errors.New("node wrapper unreachable")}
	h := newHarness(t, adapt.Config{DebounceMS: 10, RetryBackoffMS: 20, DrainMS: 5}, exec)
	flip := &flipRecorder{}
	h.sess.Bind(flip)
	h.ctrl.Start()
	h.env.At(0, func() {
		_ = h.mon.ReportNodeDown("b")
	})
	// Verify the failure left everything in place, then heal the
	// executor before the retry fires at t=30.
	h.env.At(20, func() {
		if got := h.sess.HeadAddr(); got != "old-head" {
			t.Errorf("session head = %q after failed deploy, want old-head", got)
		}
		if n := len(flip.flips()); n != 0 {
			t.Errorf("bindings flipped %d times after failed deploy, want 0", n)
		}
		exec.set(func(f *fakeExec) { f.deployErr = nil })
	})
	h.env.RunUntil(5000)

	if got := flip.flips(); len(got) != 1 || got[0] != "new-head" {
		t.Fatalf("binding flips = %v, want exactly [new-head]", got)
	}
	if got := h.sess.HeadAddr(); got != "new-head" {
		t.Fatalf("session head = %q, want new-head", got)
	}
	if exec.published != "new-head" {
		t.Fatalf("published = %q, want new-head", exec.published)
	}
	_, deploys, discards := exec.counts()
	if deploys != 2 {
		t.Fatalf("got %d deploys, want 2 (failure + retry)", deploys)
	}
	if discards != 1 {
		t.Fatalf("got %d discards, want 1 (drained removals torn down)", discards)
	}
	if len(h.eventsOf("adapted")) != 1 || len(h.eventsOf("failed")) != 1 {
		t.Fatalf("want one failed and one adapted event, got %v", h.events)
	}
}

// TestProbeSuspicionThresholdAndRecovery: the failure detector needs
// SuspicionThreshold consecutive probe misses before reporting a node
// down, reports it exactly once, and reports it back up on the first
// successful probe.
func TestProbeSuspicionThresholdAndRecovery(t *testing.T) {
	exec := &fakeExec{diff: unchangedDiff()}
	h := newHarness(t, adapt.Config{
		DebounceMS: 5, ProbeIntervalMS: 10, SuspicionThreshold: 3, RetryBackoffMS: 1000,
	}, exec)
	var mu sync.Mutex
	dead := true
	h.ctrl.SetProber(adapt.ProberFunc(func(node netmodel.NodeID, addr string, timeoutMS float64) error {
		mu.Lock()
		defer mu.Unlock()
		if node == "b" && dead {
			return errors.New("probe timeout")
		}
		return nil
	}), func() map[netmodel.NodeID]string {
		return map[netmodel.NodeID]string{"a": "addr-a", "b": "addr-b"}
	})
	h.ctrl.Start()
	h.env.At(55, func() { // after the down report (3rd miss at t=30)
		node, _ := h.net.Node("b")
		if !node.Down {
			t.Error("node b must be marked down after 3 probe misses")
		}
		mu.Lock()
		dead = false
		mu.Unlock()
	})
	h.env.RunUntil(200)

	suspects := h.eventsOf("suspect")
	if len(suspects) != 1 {
		t.Fatalf("got %d suspect events, want exactly 1: %v", len(suspects), suspects)
	}
	if suspects[0].AtMS != 30 {
		t.Fatalf("suspect at t=%.1f, want 30 (3 probe rounds at 10ms)", suspects[0].AtMS)
	}
	node, _ := h.net.Node("b")
	if node.Down {
		t.Fatal("node b must be reported back up after probes succeed")
	}
	// Down + up transitions each trigger a replan pass.
	if replans, _, _ := exec.counts(); replans != 2 {
		t.Fatalf("got %d replans, want 2 (down then up)", replans)
	}
}

// TestStopCancelsPendingWork: after Stop, armed debounce and probe
// timers never fire.
func TestStopCancelsPendingWork(t *testing.T) {
	exec := &fakeExec{diff: unchangedDiff()}
	h := newHarness(t, adapt.Config{DebounceMS: 50, ProbeIntervalMS: 10}, exec)
	probes := 0
	h.ctrl.SetProber(adapt.ProberFunc(func(netmodel.NodeID, string, float64) error {
		probes++
		return nil
	}), func() map[netmodel.NodeID]string { return map[netmodel.NodeID]string{"a": "addr-a"} })
	h.ctrl.Start()
	h.env.At(0, func() {
		_ = h.mon.ReportNodeDown("b") // arms the debounce
	})
	h.env.At(5, func() { h.ctrl.Stop() })
	h.env.RunUntil(1000)

	if replans, _, _ := exec.counts(); replans != 0 {
		t.Fatalf("got %d replans after Stop, want 0", replans)
	}
	if probes != 0 {
		t.Fatalf("got %d probes after Stop, want 0 (first round was due at t=10)", probes)
	}
}

// TestSimSchedulerCancel: a canceled After never runs and reports that
// it prevented the callback; NowMS tracks the virtual clock.
func TestSimSchedulerCancel(t *testing.T) {
	env := sim.NewEnv()
	s := adapt.NewSimScheduler(env)
	fired := false
	cancel := s.After(10, func() { fired = true })
	env.At(5, func() {
		if !cancel() {
			t.Error("cancel must report stopping a pending timer")
		}
	})
	var at float64
	s.After(20, func() { at = s.NowMS() })
	env.Run()
	if fired {
		t.Fatal("canceled callback ran")
	}
	if at != 20 {
		t.Fatalf("NowMS inside callback = %.1f, want 20", at)
	}
}
