package adapt

import (
	"context"
	"errors"
	"fmt"
	"time"

	"partsvc/internal/netmodel"
	"partsvc/internal/transport"
	"partsvc/internal/wire"
)

// Prober checks whether a node answers on its wrapper control address.
// A nil error means the node is alive; any error is one strike toward
// the suspicion threshold.
type Prober interface {
	Probe(node netmodel.NodeID, addr string, timeoutMS float64) error
}

// TransportProber probes by sending a "status" request to the wrapper
// control address over a real transport. It dials fresh per probe:
// reusing a pooled connection would let a probe succeed against a
// kernel buffer long after the process died.
type TransportProber struct{ tr transport.Transport }

// NewTransportProber probes over tr.
func NewTransportProber(tr transport.Transport) *TransportProber {
	return &TransportProber{tr: tr}
}

// Probe implements Prober.
func (p *TransportProber) Probe(node netmodel.NodeID, addr string, timeoutMS float64) error {
	ep, err := p.tr.Dial(addr)
	if err != nil {
		return err
	}
	defer ep.Close()
	ctx := context.Background()
	if timeoutMS > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(timeoutMS*float64(time.Millisecond)))
		defer cancel()
	}
	resp, err := transport.Call(ctx, ep, &wire.Message{Kind: wire.KindRequest, ID: 1, Method: "status"})
	if err != nil {
		return err
	}
	if err := transport.AsError(resp); err != nil {
		// A shed reply is proof of life: the wrapper's admission control
		// answered from its own reader because the worker pool is
		// saturated. Counting it as a strike would turn transient
		// overload into suspicion, eviction, and a pointless migration
		// storm — exactly when the node can least afford one.
		if errors.Is(err, transport.ErrOverloaded) {
			return nil
		}
		return err
	}
	if got := resp.Meta["node"]; got != string(node) {
		return fmt.Errorf("adapt: probe of %s answered as %q", node, got)
	}
	return nil
}

// ProberFunc adapts a function to the Prober interface (simulation
// models and tests).
type ProberFunc func(node netmodel.NodeID, addr string, timeoutMS float64) error

// Probe implements Prober.
func (f ProberFunc) Probe(node netmodel.NodeID, addr string, timeoutMS float64) error {
	return f(node, addr, timeoutMS)
}
