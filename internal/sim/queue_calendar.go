package sim

import (
	"math"
	"sort"
)

// calQueue is a calendar queue (R. Brown, CACM 1988): events hash into
// day buckets of a repeating calendar year, each bucket a sorted
// singly-linked list of pooled event records. Amortized O(1)
// push/pop against the O(log n) of a binary heap, which dominates the
// scheduler's cost at large event populations. The bucket count and
// day width adapt to the live population; resizes also purge canceled
// entries (lazy dead-entry reclamation).
//
// Correctness does not depend on the hash: an event is only dequeued
// from the current day's bucket when its timestamp falls inside the
// current day, and a full fruitless year falls back to a direct
// minimum search. Ordering is the simulator's (at, seq) contract.
type calQueue struct {
	buckets []*event
	// tails tracks each bucket's last entry so the dominant insertion
	// pattern — equal-or-later timestamps with rising seq, e.g. a burst
	// of simultaneous events — appends in O(1) instead of walking the
	// list (the classic calendar-queue quadratic pathology).
	tails []*event
	width float64 // day length in virtual ms
	n     int     // queued entries (including canceled-but-unpurged)
	cur   int     // bucket the scan is on
	top   float64 // upper time edge of the current day
	now   float64 // timestamp of the last popped event (queue's virtual clock)

	growAt, shrinkAt int

	stats *Stats
	free  func(*event) // returns purged records to the Env pool
}

// maxVirtualDay bounds at/width before conversion to an integer bucket
// index; anything beyond (or non-finite) parks in bucket 0, which the
// dequeue guards make merely a performance detail.
const maxVirtualDay = float64(1 << 53)

func newCalQueue(stats *Stats) *calQueue {
	q := &calQueue{stats: stats}
	q.reinit(2, 1, 0)
	return q
}

func (q *calQueue) reinit(nbuckets int, width, start float64) {
	q.buckets = make([]*event, nbuckets)
	q.tails = make([]*event, nbuckets)
	q.width = width
	q.growAt = 2 * nbuckets
	q.shrinkAt = nbuckets/2 - 2
	q.setScan(start)
}

func (q *calQueue) len() int { return q.n }

func (q *calQueue) indexOf(at float64) int {
	v := at / q.width
	if !(v < maxVirtualDay) { // huge, +Inf or NaN
		return 0
	}
	return int(int64(v) % int64(len(q.buckets)))
}

// insert places ev in its bucket in (at, seq) order, without any
// bookkeeping (shared by push and resize rehashing).
func (q *calQueue) insert(ev *event) {
	i := q.indexOf(ev.at)
	head := q.buckets[i]
	if head == nil {
		ev.next = nil
		q.buckets[i], q.tails[i] = ev, ev
		return
	}
	if tail := q.tails[i]; !evless(ev, tail) {
		ev.next = nil
		tail.next = ev
		q.tails[i] = ev
		return
	}
	if evless(ev, head) {
		ev.next = head
		q.buckets[i] = ev
		return
	}
	for head.next != nil && !evless(ev, head.next) {
		head = head.next
	}
	ev.next = head.next
	head.next = ev
}

func (q *calQueue) push(ev *event) {
	q.insert(ev)
	q.n++
	if ev.at < q.top-q.width {
		// The event lands in a day before the scan position — possible
		// after a resize or a horizon pushback left the scan at a
		// far-future day. Rewind the scan to the event's day so the
		// rotation cannot bypass it and pop out of (at, seq) order.
		q.setScan(ev.at)
	}
	if q.n > q.growAt {
		q.resize(2 * len(q.buckets))
	}
}

// setScan positions the rotation on the day containing time t.
func (q *calQueue) setScan(t float64) {
	q.cur = q.indexOf(t)
	if day := t / q.width; day < maxVirtualDay {
		q.top = (math.Floor(day) + 1) * q.width
	} else {
		q.top = math.Inf(1)
	}
}

func (q *calQueue) pop() *event {
	if q.n == 0 {
		return nil
	}
	if math.IsInf(q.top, 1) {
		// Timestamps beyond the finite-day range: a bucket rotation can
		// no longer bound the next event's day, so the first non-empty
		// bucket is not necessarily the minimum. Search directly instead
		// of trusting the scan.
		return q.popMin()
	}
	for range q.buckets {
		if h := q.buckets[q.cur]; h != nil && h.at < q.top {
			return q.take(q.cur, h)
		}
		q.cur++
		if q.cur == len(q.buckets) {
			q.cur = 0
		}
		q.top += q.width
	}
	// A full year with nothing due: jump the scan straight to the
	// global minimum.
	return q.popMin()
}

// popMin finds and removes the global minimum by scanning every bucket
// head (lists are sorted, so heads suffice), repositioning the rotation
// on its day.
func (q *calQueue) popMin() *event {
	var min *event
	minIdx := 0
	for i, h := range q.buckets {
		if h != nil && (min == nil || evless(h, min)) {
			min, minIdx = h, i
		}
	}
	q.setScan(min.at) // indexOf(min.at) == minIdx: that's where it was inserted
	return q.take(minIdx, min)
}

func (q *calQueue) take(i int, head *event) *event {
	if head.at > q.now {
		q.now = head.at
	}
	q.buckets[i] = head.next
	if head.next == nil {
		q.tails[i] = nil
	}
	head.next = nil
	q.n--
	if q.n < q.shrinkAt {
		q.resize(len(q.buckets) / 2)
	}
	return head
}

// resize rebuilds the bucket array around the live population: it
// purges canceled entries, re-estimates the day width from a sample of
// pending timestamps, and rehashes. The scan restarts at
// min(lastPopped, earliest pending) — the earliest pending event alone
// is not safe, because it can sit days past the current virtual time,
// and an event scheduled after the resize at an in-between time would
// hash behind the scan and pop out of order.
func (q *calQueue) resize(nbuckets int) {
	if nbuckets < 2 {
		nbuckets = 2
	}
	if nbuckets == len(q.buckets) {
		return
	}
	if q.stats != nil {
		q.stats.Resizes++
	}
	var live []*event
	start := math.Inf(1)
	for _, b := range q.buckets {
		for b != nil {
			next := b.next
			b.next = nil
			if b.canceled {
				if q.stats != nil {
					q.stats.Purged++
				}
				if q.free != nil {
					q.free(b)
				}
			} else {
				live = append(live, b)
				if b.at < start {
					start = b.at
				}
			}
			b = next
		}
	}
	if start > q.now {
		start = q.now // covers len(live) == 0 too: start is +Inf then
	}
	q.reinit(nbuckets, q.estimateWidth(live), start)
	for _, ev := range live {
		q.insert(ev)
	}
	q.n = len(live)
}

// estimateWidth picks the day length as ~3x the mean separation of a
// deterministic sample of pending timestamps (Brown's rule of thumb),
// so a day holds a handful of events.
func (q *calQueue) estimateWidth(live []*event) float64 {
	const sampleMax = 32
	step := len(live)/sampleMax + 1
	ts := make([]float64, 0, sampleMax)
	for i := 0; i < len(live); i += step {
		if at := live[i].at; !math.IsInf(at, 0) && !math.IsNaN(at) {
			ts = append(ts, at)
		}
	}
	if len(ts) < 2 {
		return q.width
	}
	sort.Float64s(ts)
	sep := (ts[len(ts)-1] - ts[0]) / float64(len(ts)-1)
	width := 3 * sep
	if !(width > 0) || math.IsInf(width, 0) {
		return q.width
	}
	return width
}
