package sim

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"
	"time"
)

// TestCalendarMatchesHeapOrder drains identical random event sets
// through both queue implementations and requires the same total order.
// The heap is the oracle; the calendar queue must agree even across
// resizes, bucket wraparound, and clustered/sparse timestamp mixes.
func TestCalendarMatchesHeapOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		cal := newCalQueue(&Stats{})
		heap := &heapQueue{}
		type op struct {
			at  float64
			seq int64
		}
		var seq int64
		push := func(at float64) {
			seq++
			cal.push(&event{at: at, seq: seq})
			heap.push(&event{at: at, seq: seq})
		}
		// Mixed workload: bursts of near-simultaneous events, a long
		// tail, interleaved pops (the classic calendar-queue stressor).
		for i := 0; i < 500; i++ {
			switch rng.Intn(4) {
			case 0:
				push(rng.Float64() * 10) // dense cluster
			case 1:
				push(rng.Float64() * 1e6) // sparse tail
			case 2:
				push(float64(rng.Intn(5))) // exact ties, order by seq
			case 3:
				if heap.len() > 0 {
					a, b := cal.pop(), heap.pop()
					if a.at != b.at || a.seq != b.seq {
						t.Fatalf("trial %d: pop mismatch: calendar (%v,%d) vs heap (%v,%d)",
							trial, a.at, a.seq, b.at, b.seq)
					}
				}
			}
		}
		for heap.len() > 0 {
			a, b := cal.pop(), heap.pop()
			if a == nil || a.at != b.at || a.seq != b.seq {
				t.Fatalf("trial %d: drain mismatch vs heap", trial)
			}
		}
		if cal.pop() != nil {
			t.Fatalf("trial %d: calendar has leftover events", trial)
		}
	}
}

// TestCalendarExtremeTimestamps ensures the bucket hash degrades
// gracefully (never panics, never disorders) for timestamps that would
// overflow a naive virtual-day computation.
func TestCalendarExtremeTimestamps(t *testing.T) {
	q := newCalQueue(&Stats{})
	times := []float64{0, 1e300, 5, 1 << 60, 2.5, 1e300, 0}
	for i, at := range times {
		q.push(&event{at: at, seq: int64(i + 1)})
	}
	prev := -1.0
	for i := 0; i < len(times); i++ {
		ev := q.pop()
		if ev == nil {
			t.Fatalf("pop %d: queue empty early", i)
		}
		if ev.at < prev {
			t.Fatalf("pop %d: out of order: %v after %v", i, ev.at, prev)
		}
		prev = ev.at
	}
}

// TestCalendarScanRewindAfterResize is the regression for the
// shrink-resize ordering bug: draining a burst of near-time events with
// one far-future timer pending shrinks the calendar and used to park
// the scan on the far timer's day; a short timer scheduled from the
// last near-time event then hashed behind the scan and fired AFTER the
// far-future event, running virtual time backward.
func TestCalendarScanRewindAfterResize(t *testing.T) {
	for _, opt := range []Options{{}, {HeapQueue: true}} {
		env := NewEnvWith(opt)
		var order []float64
		record := func() { order = append(order, env.Now()) }
		for i := 0; i < 64; i++ {
			if i == 63 {
				env.At(float64(i), func() {
					record()
					// By now the drain has shrink-resized the calendar with
					// only the t=100000 timer pending; this short timer must
					// still fire before it.
					env.After(1, record)
				})
			} else {
				env.At(float64(i), record)
			}
		}
		env.At(100000, record)
		env.Run()
		for i := 1; i < len(order); i++ {
			if order[i] < order[i-1] {
				t.Fatalf("opt %+v: virtual time ran backward: t=%v fired after t=%v",
					opt, order[i], order[i-1])
			}
		}
		if len(order) != 66 || order[len(order)-1] != 100000 {
			t.Fatalf("opt %+v: got %d events ending at %v, want 66 ending at 100000",
				opt, len(order), order[len(order)-1])
		}
	}
}

// TestCalendarHugeThenNormalOrder: after popping a timestamp too large
// for a finite day window, the scan cannot bound the next minimum; a
// normal-range event pushed into a different bucket must still pop
// before a larger huge one (direct-min fallback + scan rewind).
func TestCalendarHugeThenNormalOrder(t *testing.T) {
	q := newCalQueue(&Stats{})
	q.push(&event{at: 1e300, seq: 1})
	q.push(&event{at: 1e301, seq: 2})
	if ev := q.pop(); ev.at != 1e300 {
		t.Fatalf("first pop = %v, want 1e300", ev.at)
	}
	q.push(&event{at: 5, seq: 3}) // hashes to a bucket the stale scan skips
	if ev := q.pop(); ev.at != 5 {
		t.Fatalf("second pop = %v, want 5 (huge event popped ahead of it)", ev.at)
	}
	if ev := q.pop(); ev.at != 1e301 {
		t.Fatalf("third pop = %v, want 1e301", ev.at)
	}
	if q.pop() != nil {
		t.Fatal("queue should be empty")
	}
}

// TestTimerAtAfterStop covers the fast-path timer API: firing order,
// After clamping, and Stop semantics (including double-stop and
// stop-after-fire, which must not cancel a recycled pool record).
func TestTimerAtAfterStop(t *testing.T) {
	env := NewEnv()
	var fired []string
	env.At(5, func() { fired = append(fired, "b") })
	env.At(1, func() { fired = append(fired, "a") })
	tm := env.At(3, func() { fired = append(fired, "cancel-me") })
	env.After(-7, func() { fired = append(fired, "clamped") }) // runs at t=0
	if !tm.Stop() {
		t.Fatal("first Stop should cancel")
	}
	if tm.Stop() {
		t.Fatal("second Stop should be a no-op")
	}
	env.At(1, func() {
		// Chained scheduling from inside a callback.
		env.After(1, func() { fired = append(fired, "chain") })
	})
	env.Run()
	got := fmt.Sprint(fired)
	want := fmt.Sprint([]string{"clamped", "a", "chain", "b"})
	if got != want {
		t.Fatalf("fire order = %v, want %v", got, want)
	}

	// A handle to a fired timer must not cancel the (recycled) record.
	env2 := NewEnv()
	ran := 0
	t1 := env2.At(1, func() { ran++ })
	env2.Run()
	if t1.Stop() {
		t.Fatal("Stop after fire should report false")
	}
	env2.At(2, func() { ran++ })
	env2.Run()
	if ran != 2 {
		t.Fatalf("ran = %d, want 2 (stale Stop must not cancel a recycled event)", ran)
	}
	if c := env2.Stats().Canceled; c != 0 {
		t.Fatalf("Canceled = %d, want 0", c)
	}
}

// TestCallbackPrimitives exercises GetFn/AcquireFn/LockFn/TransferFn
// and checks they interoperate with the process-based variants on the
// same primitives.
func TestCallbackPrimitives(t *testing.T) {
	env := NewEnv()
	q := NewQueue(env)
	res := NewResource(env, 1)
	mu := NewMutex(env)
	link := NewLink(env, 10, 0) // latency-only

	var order []string
	// Callback consumer parks first, a process producer feeds it.
	q.GetFn(func(v any) { order = append(order, "got:"+v.(string)) })
	env.Go("producer", func(p *Proc) {
		p.Sleep(1)
		q.Put("x")
	})
	// Callback and process contend for the same resource.
	res.AcquireFn(1, func() {
		order = append(order, "cb-acquired")
		env.After(5, func() {
			res.Release(1)
			order = append(order, "cb-released")
		})
	})
	env.Go("contender", func(p *Proc) {
		res.Acquire(p, 1) // blocks until t=5
		order = append(order, fmt.Sprintf("proc-acquired@%v", p.Now()))
		res.Release(1)
	})
	mu.LockFn(func() {
		order = append(order, "locked")
		mu.Unlock()
	})
	link.TransferFn(0, func(d float64) {
		order = append(order, fmt.Sprintf("xfer@%v d=%v", env.Now(), d))
	})
	env.Run()

	want := fmt.Sprint([]string{
		"cb-acquired", "locked", "got:x", "cb-released", "proc-acquired@5", "xfer@10 d=10",
	})
	if got := fmt.Sprint(order); got != want {
		t.Fatalf("order = %v\nwant    %v", got, want)
	}
}

// TestGetFnSynchronousWhenReady: a nonempty queue delivers to GetFn
// without consuming an event (the synchronous fast path that keeps the
// callback engine bit-identical to a non-yielding proc TryGet).
func TestGetFnSynchronousWhenReady(t *testing.T) {
	env := NewEnv()
	q := NewQueue(env)
	q.Put(7)
	delivered := false
	q.GetFn(func(v any) {
		if v.(int) != 7 {
			t.Fatalf("got %v, want 7", v)
		}
		delivered = true
	})
	if !delivered {
		t.Fatal("GetFn on a nonempty queue must deliver synchronously")
	}
}

// TestHeapOptionEquivalence runs the same mixed proc/callback model on
// both queue implementations and requires identical final times and
// event counts.
func TestHeapOptionEquivalence(t *testing.T) {
	run := func(opt Options) (float64, int64) {
		env := NewEnvWith(opt)
		link := NewLink(env, 3, 8)
		res := NewResource(env, 2)
		for i := 0; i < 10; i++ {
			env.Go(fmt.Sprintf("p%d", i), func(p *Proc) {
				for j := 0; j < 5; j++ {
					res.Acquire(p, 1)
					p.Sleep(float64(j))
					res.Release(1)
					link.Transfer(p, 1000)
				}
			})
			env.After(float64(i)*2, func() { link.TransferFn(500, func(float64) {}) })
		}
		end := env.Run()
		return end, env.Stats().Events
	}
	calEnd, calEvents := run(Options{})
	heapEnd, heapEvents := run(Options{HeapQueue: true})
	if calEnd != heapEnd || calEvents != heapEvents {
		t.Fatalf("calendar (end=%v events=%d) != heap (end=%v events=%d)",
			calEnd, calEvents, heapEnd, heapEvents)
	}
}

// TestStopReclaimsGoroutines is the leak regression for satellite (a):
// 100 environments that each park processes on every primitive are
// stopped; the goroutine count must return to baseline.
func TestStopReclaimsGoroutines(t *testing.T) {
	baseline := runtime.NumGoroutine()
	for i := 0; i < 100; i++ {
		env := NewEnv()
		q := NewQueue(env)
		res := NewResource(env, 1)
		mu := NewMutex(env)
		env.Go("queue-parked", func(p *Proc) { q.Get(p) })
		env.Go("holder", func(p *Proc) {
			res.Acquire(p, 1)
			mu.Lock(p)
			p.Sleep(1e12) // far future: still pending at the horizon
		})
		env.Go("res-parked", func(p *Proc) { res.Acquire(p, 1) })
		env.Go("mutex-parked", func(p *Proc) { mu.Lock(p) })
		env.Go("deferred", func(p *Proc) {
			// A deferred primitive call during Stop unwind must not wedge.
			defer mu.Unlock()
			defer res.Release(1)
			mu.Lock(p)
			res.Acquire(p, 1)
			p.Sleep(1e12)
		})
		env.RunUntil(10)
		env.Stop()
		if env.Live() != 0 {
			t.Fatalf("iteration %d: %d processes alive after Stop", i, env.Live())
		}
	}
	// Allow the runtime a moment to retire exiting goroutines.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > baseline+2 && time.Now().Before(deadline) {
		runtime.Gosched()
		time.Sleep(time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > baseline+2 {
		t.Fatalf("goroutines grew from %d to %d across 100 stopped environments", baseline, n)
	}
}

// TestStopUnwindsGoSpawnedDuringStop: a deferred function in an
// unwinding process may call Env.Go; Stop must unwind that late
// arrival too instead of leaving its goroutine parked forever.
func TestStopUnwindsGoSpawnedDuringStop(t *testing.T) {
	env := NewEnv()
	env.Go("parent", func(p *Proc) {
		defer env.Go("late-child", func(c *Proc) { c.Sleep(1) })
		p.Sleep(1e12)
	})
	env.RunUntil(1)
	env.Stop()
	if n := env.Live(); n != 0 {
		t.Fatalf("%d process(es) alive after Stop; late-spawned proc leaked", n)
	}
}

// TestRingsCompactUnderBacklog: a ring that always keeps a backlog must
// not grow its backing array with total traffic (the dead prefix is
// compacted away), or long-running simulations leak memory.
func TestRingsCompactUnderBacklog(t *testing.T) {
	env := NewEnv()
	const churn = 100000

	q := NewQueue(env)
	for i := 0; i < 10; i++ {
		q.Put(i) // permanent backlog: the queue never fully drains
	}
	for i := 0; i < churn; i++ {
		q.Put(i)
		q.TryGet()
	}
	if c := cap(q.items); c > 1024 {
		t.Fatalf("items backing array grew to %d for a 10-item backlog", c)
	}

	q.waiters = append(q.waiters, qwaiter{fn: func(any) {}})
	for i := 0; i < churn; i++ {
		q.waiters = append(q.waiters, qwaiter{fn: func(any) {}})
		q.takeWaiter()
	}
	if c := cap(q.waiters); c > 1024 {
		t.Fatalf("waiters backing array grew to %d for a 1-waiter backlog", c)
	}

	r := NewResource(env, 1)
	r.waiters = append(r.waiters, &waiter{n: 1})
	for i := 0; i < churn; i++ {
		r.waiters = append(r.waiters, &waiter{n: 1})
		r.dropFrontWaiter()
	}
	if c := cap(r.waiters); c > 1024 {
		t.Fatalf("resource waiters backing array grew to %d for a 1-waiter backlog", c)
	}
}

// TestStopSemantics: idempotence, Run-after-Stop panics, Go-after-Stop
// panics.
func TestStopSemantics(t *testing.T) {
	env := NewEnv()
	env.Go("sleeper", func(p *Proc) { p.Sleep(100) })
	env.RunUntil(1)
	env.Stop()
	env.Stop() // idempotent

	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s on a stopped environment must panic", name)
			}
		}()
		fn()
	}
	mustPanic("Run", func() { env.Run() })
	mustPanic("Go", func() { env.Go("late", func(p *Proc) {}) })
}

// TestEnvRandDeterministic: same seed, same draws; different seeds
// diverge.
func TestEnvRandDeterministic(t *testing.T) {
	draw := func(seed int64) [4]int64 {
		env := NewEnvWith(Options{Seed: seed})
		var out [4]int64
		for i := range out {
			out[i] = env.Rand().Int63()
		}
		return out
	}
	if draw(7) != draw(7) {
		t.Fatal("same seed must reproduce the same draws")
	}
	if draw(7) == draw(8) {
		t.Fatal("different seeds should diverge")
	}
}

// TestPoolAndPurgeStats: canceled timers are purged lazily and event
// records recycle through the pool.
func TestPoolAndPurgeStats(t *testing.T) {
	env := NewEnv()
	for i := 0; i < 100; i++ {
		tm := env.After(float64(i), func() {})
		if i%2 == 0 {
			tm.Stop()
		}
	}
	env.Run()
	st := env.Stats()
	if st.Canceled != 50 {
		t.Fatalf("Canceled = %d, want 50", st.Canceled)
	}
	if st.Purged != 50 {
		t.Fatalf("Purged = %d, want 50", st.Purged)
	}
	if st.Events != 50 {
		t.Fatalf("Events = %d, want 50", st.Events)
	}
	// A second wave reuses pooled records.
	for i := 0; i < 100; i++ {
		env.After(float64(i), func() {})
	}
	env.Run()
	if env.Stats().PoolHits == 0 {
		t.Fatal("expected pooled event records to be reused")
	}
}
