package sim

import (
	"math"
	"reflect"
	"testing"
)

func TestSleepAdvancesVirtualTime(t *testing.T) {
	env := NewEnv()
	var times []float64
	env.Go("a", func(p *Proc) {
		p.Sleep(10)
		times = append(times, p.Now())
		p.Sleep(5)
		times = append(times, p.Now())
	})
	end := env.Run()
	if !reflect.DeepEqual(times, []float64{10, 15}) {
		t.Errorf("times = %v", times)
	}
	if end != 15 {
		t.Errorf("end = %v", end)
	}
}

func TestInterleavingDeterministic(t *testing.T) {
	run := func() []string {
		env := NewEnv()
		var order []string
		env.Go("a", func(p *Proc) {
			for i := 0; i < 3; i++ {
				p.Sleep(10)
				order = append(order, "a")
			}
		})
		env.Go("b", func(p *Proc) {
			for i := 0; i < 2; i++ {
				p.Sleep(15)
				order = append(order, "b")
			}
		})
		env.Run()
		return order
	}
	first := run()
	// t=10,15,20,30,30; at the t=30 tie, b's event was scheduled first
	// (at t=15, before a's at t=20), so b resumes first.
	want := []string{"a", "b", "a", "b", "a"}
	if !reflect.DeepEqual(first, want) {
		t.Errorf("order = %v, want %v", first, want)
	}
	for i := 0; i < 5; i++ {
		if got := run(); !reflect.DeepEqual(got, first) {
			t.Fatalf("run %d differs: %v vs %v", i, got, first)
		}
	}
}

func TestSleepNegativeAndUntilPast(t *testing.T) {
	env := NewEnv()
	env.Go("a", func(p *Proc) {
		p.Sleep(5)
		p.Sleep(-3) // clamps to zero
		if p.Now() != 5 {
			t.Errorf("negative sleep moved time: %v", p.Now())
		}
		p.SleepUntil(2) // already past; no-op in time
		if p.Now() != 5 {
			t.Errorf("SleepUntil(past) moved time: %v", p.Now())
		}
	})
	env.Run()
}

func TestRunUntilHorizon(t *testing.T) {
	env := NewEnv()
	ticks := 0
	env.Go("ticker", func(p *Proc) {
		for i := 0; i < 100; i++ {
			p.Sleep(10)
			ticks++
		}
	})
	end := env.RunUntil(35)
	if ticks != 3 {
		t.Errorf("ticks = %d, want 3", ticks)
	}
	if end != 30 {
		t.Errorf("end = %v, want 30", end)
	}
	// Resume to completion.
	env.Run()
	if ticks != 100 {
		t.Errorf("ticks after full run = %d", ticks)
	}
}

func TestSpawnFromRunningProcess(t *testing.T) {
	env := NewEnv()
	var childTime float64
	env.Go("parent", func(p *Proc) {
		p.Sleep(7)
		env.Go("child", func(c *Proc) {
			c.Sleep(3)
			childTime = c.Now()
		})
		p.Sleep(100)
	})
	env.Run()
	if childTime != 10 {
		t.Errorf("child completed at %v, want 10", childTime)
	}
}

func TestQueueFIFOAndBlocking(t *testing.T) {
	env := NewEnv()
	q := NewQueue(env)
	var got []int
	env.Go("consumer", func(p *Proc) {
		for i := 0; i < 3; i++ {
			got = append(got, q.Get(p).(int))
		}
	})
	env.Go("producer", func(p *Proc) {
		for i := 1; i <= 3; i++ {
			p.Sleep(10)
			q.Put(i)
		}
	})
	env.Run()
	if !reflect.DeepEqual(got, []int{1, 2, 3}) {
		t.Errorf("got %v", got)
	}
}

func TestQueueTryGet(t *testing.T) {
	env := NewEnv()
	q := NewQueue(env)
	if _, ok := q.TryGet(); ok {
		t.Error("empty TryGet must fail")
	}
	q.Put("x")
	if q.Len() != 1 {
		t.Error("Len wrong")
	}
	v, ok := q.TryGet()
	if !ok || v != "x" {
		t.Errorf("TryGet = %v, %v", v, ok)
	}
}

func TestQueueMultipleConsumersFIFO(t *testing.T) {
	env := NewEnv()
	q := NewQueue(env)
	var got []string
	mk := func(name string) {
		env.Go(name, func(p *Proc) {
			v := q.Get(p)
			got = append(got, name+":"+v.(string))
		})
	}
	mk("c1")
	mk("c2")
	env.Go("producer", func(p *Proc) {
		p.Sleep(1)
		q.Put("a")
		p.Sleep(1)
		q.Put("b")
	})
	env.Run()
	if !reflect.DeepEqual(got, []string{"c1:a", "c2:b"}) {
		t.Errorf("got %v", got)
	}
}

func TestResourceContention(t *testing.T) {
	env := NewEnv()
	r := NewResource(env, 1)
	var spans [][2]float64
	worker := func(name string) {
		env.Go(name, func(p *Proc) {
			r.Acquire(p, 1)
			start := p.Now()
			p.Sleep(10)
			r.Release(1)
			spans = append(spans, [2]float64{start, p.Now()})
		})
	}
	worker("w1")
	worker("w2")
	worker("w3")
	env.Run()
	want := [][2]float64{{0, 10}, {10, 20}, {20, 30}}
	if !reflect.DeepEqual(spans, want) {
		t.Errorf("spans = %v, want serialized %v", spans, want)
	}
	if r.InUse() != 0 {
		t.Error("resource not fully released")
	}
}

func TestResourceCapacityTwo(t *testing.T) {
	env := NewEnv()
	r := NewResource(env, 2)
	var done []float64
	for i := 0; i < 4; i++ {
		env.Go("w", func(p *Proc) {
			r.Acquire(p, 1)
			p.Sleep(10)
			r.Release(1)
			done = append(done, p.Now())
		})
	}
	env.Run()
	if !reflect.DeepEqual(done, []float64{10, 10, 20, 20}) {
		t.Errorf("done = %v", done)
	}
}

func TestResourceAcquireTooMuchPanics(t *testing.T) {
	env := NewEnv()
	r := NewResource(env, 1)
	env.Go("w", func(p *Proc) {
		defer func() {
			if recover() == nil {
				t.Error("Acquire above capacity must panic")
			}
		}()
		r.Acquire(p, 2)
	})
	env.Run()
}

func TestMutex(t *testing.T) {
	env := NewEnv()
	m := NewMutex(env)
	var order []string
	env.Go("w1", func(p *Proc) {
		m.Lock(p)
		if !m.Locked() {
			t.Error("mutex must report locked")
		}
		p.Sleep(5)
		order = append(order, "w1")
		m.Unlock()
	})
	env.Go("w2", func(p *Proc) {
		m.Lock(p)
		order = append(order, "w2")
		m.Unlock()
	})
	env.Run()
	if !reflect.DeepEqual(order, []string{"w1", "w2"}) {
		t.Errorf("order = %v", order)
	}
	if m.Locked() {
		t.Error("mutex must be free at end")
	}
}

func TestLinkLatencyAndBandwidth(t *testing.T) {
	env := NewEnv()
	// 8 Mb/s, 100 ms: 1 MB takes 1000 ms tx + 100 ms propagation.
	l := NewLink(env, 100, 8)
	var delay float64
	env.Go("sender", func(p *Proc) {
		delay = l.Transfer(p, 1_000_000)
	})
	env.Run()
	if math.Abs(delay-1100) > 1e-6 {
		t.Errorf("delay = %v, want 1100", delay)
	}
	if l.BytesCarried != 1_000_000 {
		t.Errorf("BytesCarried = %d", l.BytesCarried)
	}
}

func TestLinkSerializesTransfers(t *testing.T) {
	env := NewEnv()
	l := NewLink(env, 0, 8) // 1 MB = 1000 ms
	var ends []float64
	for i := 0; i < 2; i++ {
		env.Go("s", func(p *Proc) {
			l.Transfer(p, 1_000_000)
			ends = append(ends, p.Now())
		})
	}
	env.Run()
	if !reflect.DeepEqual(ends, []float64{1000, 2000}) {
		t.Errorf("ends = %v: transfers must queue", ends)
	}
}

func TestLinkInfiniteBandwidth(t *testing.T) {
	env := NewEnv()
	l := NewLink(env, 5, 0)
	var delay float64
	env.Go("s", func(p *Proc) { delay = l.Transfer(p, 1<<30) })
	env.Run()
	if delay != 5 {
		t.Errorf("delay = %v, want latency only", delay)
	}
}

func TestDeadlockPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("deadlock must panic")
		}
	}()
	env := NewEnv()
	q := NewQueue(env)
	env.Go("stuck", func(p *Proc) { q.Get(p) })
	env.Run()
}

func TestProcNameAndEnv(t *testing.T) {
	env := NewEnv()
	env.Go("worker", func(p *Proc) {
		if p.Name() != "worker" {
			t.Errorf("Name = %q", p.Name())
		}
		if p.Env() != env {
			t.Error("Env mismatch")
		}
		if p.Now() != env.Now() {
			t.Error("Now mismatch")
		}
	})
	env.Run()
}
