// Package sim is a deterministic, process-oriented discrete-event
// simulator: the substrate that replaces the paper's Click-router
// testbed for the Figure 7 experiments. Virtual time is in
// milliseconds.
//
// The scheduler is two-tier. The fast path is callback events
// (Env.At/Env.After and the *Fn variants on Queue, Resource, Mutex and
// Link): the scheduler invokes them inline, with no goroutine handoff,
// so hot loops cost one event-queue operation per step. The slow path
// is process goroutines (Env.Go): cooperative coroutines for genuinely
// stateful component logic, scheduled so that exactly one holds the
// execution token at any instant. Both tiers share one event queue and
// one total order — events fire by (time, then issue sequence) — so
// simulations are bit-reproducible and free of data races by
// construction, whichever mix of tiers a model uses.
package sim

import (
	"fmt"
	"math"
	"math/rand"
)

// Env is a simulation environment: a virtual clock and an event queue.
// Create one with NewEnv, add work with Go/At, then call Run. When a
// run can leave processes parked (RunUntil horizons, abandoned
// simulations), call Stop to reclaim their goroutines.
type Env struct {
	now     float64
	q       evqueue
	seq     int64
	yieldCh chan struct{} // process -> scheduler handoff
	blocked int           // processes/waiters parked on queues/resources (not timed)
	procs   int           // live processes
	all     []*Proc       // every non-dead process, for Stop
	rng     *rand.Rand

	inRun    bool
	stopping bool
	stopped  bool

	pool  *event // free list of event records, linked by next
	stats Stats
}

// Options configures an environment beyond the defaults.
type Options struct {
	// Seed seeds the environment's deterministic RNG (Env.Rand); zero
	// selects a fixed default seed. Sweeps that run many environments in
	// parallel derive a distinct seed per run so results never depend on
	// execution order.
	Seed int64
	// HeapQueue selects the reference binary-heap event queue instead of
	// the default calendar queue. Both implement the same total order;
	// the heap exists as the oracle for equivalence tests.
	HeapQueue bool
}

// NewEnv returns an empty environment at time zero with default
// options (calendar queue, fixed RNG seed).
func NewEnv() *Env { return NewEnvWith(Options{}) }

// NewEnvWith returns an empty environment at time zero.
func NewEnvWith(opt Options) *Env {
	e := &Env{yieldCh: make(chan struct{})}
	seed := opt.Seed
	if seed == 0 {
		seed = 1
	}
	e.rng = rand.New(rand.NewSource(seed))
	if opt.HeapQueue {
		e.q = &heapQueue{}
	} else {
		cq := newCalQueue(&e.stats)
		cq.free = e.freeEvent
		e.q = cq
	}
	return e
}

// Now returns the current virtual time in milliseconds.
func (e *Env) Now() float64 { return e.now }

// Rand returns the environment's deterministic RNG. Stochastic models
// must draw all randomness from it (never the global source) so runs
// stay reproducible and independent of sweep parallelism.
func (e *Env) Rand() *rand.Rand { return e.rng }

// Live returns the number of live (started, not yet finished)
// processes.
func (e *Env) Live() int { return e.procs }

// Stats reports scheduler counters accumulated so far.
func (e *Env) Stats() Stats { return e.stats }

// Stats are scheduler observability counters: event throughput, the
// fast-path/slow-path split, and event-record recycling.
type Stats struct {
	// Events is the total number of events dispatched.
	Events int64
	// CallbackEvents counts fast-path (inline callback) dispatches.
	CallbackEvents int64
	// ProcSwitches counts slow-path dispatches (goroutine handoffs).
	ProcSwitches int64
	// Scheduled counts events ever enqueued.
	Scheduled int64
	// Canceled counts timers stopped before firing.
	Canceled int64
	// Purged counts dead entries (canceled timers, events of finished
	// processes) dropped lazily at pop or calendar resize.
	Purged int64
	// PoolHits and PoolMisses count event-record allocations served
	// from / missed by the free list.
	PoolHits, PoolMisses int64
	// Resizes counts calendar-queue bucket-array rebuilds.
	Resizes int64
	// MaxQueued is the event-queue high-water mark.
	MaxQueued int
}

// event is a scheduled occurrence: either a process resumption (proc
// set) or an inline callback (fn set). Records are pooled per Env and
// linked through next both inside calendar buckets and on the free
// list.
type event struct {
	at       float64
	seq      int64
	proc     *Proc
	fn       func()
	next     *event
	canceled bool
}

func (e *Env) alloc() *event {
	if ev := e.pool; ev != nil {
		e.pool = ev.next
		ev.next = nil
		e.stats.PoolHits++
		return ev
	}
	e.stats.PoolMisses++
	return &event{}
}

// freeEvent returns a record to the pool. seq is invalidated so a
// stale Timer handle can never cancel a recycled record.
func (e *Env) freeEvent(ev *event) {
	ev.proc, ev.fn, ev.canceled = nil, nil, false
	ev.seq = -1
	ev.next = e.pool
	e.pool = ev
}

// schedule enqueues an event at time t for either a process resumption
// or a callback.
func (e *Env) schedule(t float64, p *Proc, fn func()) *event {
	if t < e.now {
		t = e.now
	}
	e.seq++
	ev := e.alloc()
	ev.at, ev.seq, ev.proc, ev.fn = t, e.seq, p, fn
	e.q.push(ev)
	e.stats.Scheduled++
	if n := e.q.len(); n > e.stats.MaxQueued {
		e.stats.MaxQueued = n
	}
	return ev
}

// Timer is a handle to a scheduled callback, returned by At and After.
// The zero value is an expired timer.
type Timer struct {
	env *Env
	ev  *event
	seq int64
}

// At schedules fn to run at virtual time t (clamped to now). The
// callback runs inline on the scheduler — the fast path — and may
// schedule further events, spawn processes, and use the *Fn primitive
// variants, but must not block.
func (e *Env) At(t float64, fn func()) Timer {
	if fn == nil {
		panic("sim: At with nil callback")
	}
	ev := e.schedule(t, nil, fn)
	return Timer{env: e, ev: ev, seq: ev.seq}
}

// After schedules fn to run d milliseconds from now (negative d runs at
// the current time).
func (e *Env) After(d float64, fn func()) Timer {
	if d < 0 {
		d = 0
	}
	return e.At(e.now+d, fn)
}

// Stop cancels the timer. It reports whether it prevented the callback
// from running; stopping an already-fired or already-stopped timer is a
// no-op. The queue entry is purged lazily.
func (t Timer) Stop() bool {
	ev := t.ev
	if ev == nil || ev.seq != t.seq || ev.canceled {
		return false
	}
	ev.canceled = true
	t.env.stats.Canceled++
	return true
}

// Proc is a simulated process. Its methods may only be called from
// within the process's own function while it holds the execution token.
type Proc struct {
	env  *Env
	name string
	wake chan struct{}
	dead bool
}

// Name returns the process name given to Go.
func (p *Proc) Name() string { return p.name }

// Env returns the owning environment.
func (p *Proc) Env() *Env { return p.env }

// Now returns the current virtual time.
func (p *Proc) Now() float64 { return p.env.now }

// stopSignal unwinds a process goroutine during Env.Stop.
type stopSignal struct{}

// Go adds a process to the environment. Processes added before Run start
// at time zero in registration order; processes added from inside a
// running process start at the current time.
func (e *Env) Go(name string, fn func(p *Proc)) *Proc {
	if e.stopped {
		panic("sim: Go on a stopped environment")
	}
	p := &Proc{env: e, name: name, wake: make(chan struct{})}
	e.procs++
	e.registerProc(p)
	e.schedule(e.now, p, nil)
	go func() {
		defer func() {
			r := recover()
			p.dead = true
			e.procs--
			if r != nil {
				if _, ok := r.(stopSignal); !ok {
					panic(r) // a real bug in fn: crash, as an unhandled panic would
				}
			}
			e.yieldCh <- struct{}{}
		}()
		<-p.wake // wait for first dispatch
		if e.stopping {
			return
		}
		fn(p)
	}()
	return p
}

// registerProc records p for Stop, compacting finished entries when
// they dominate the registry. Compaction is suppressed while Stop is
// iterating e.all by index — shifting entries would skip live procs.
func (e *Env) registerProc(p *Proc) {
	if !e.stopping && len(e.all) >= 1024 && len(e.all) >= 2*e.procs {
		live := e.all[:0]
		for _, q := range e.all {
			if !q.dead {
				live = append(live, q)
			}
		}
		for i := len(live); i < len(e.all); i++ {
			e.all[i] = nil
		}
		e.all = live
	}
	e.all = append(e.all, p)
}

// Run executes events until the queue empties or the optional horizon is
// passed. It returns the final virtual time. Run panics if a process
// deadlock leaves blocked processes with an empty queue — a simulation
// bug that must not fail silently.
func (e *Env) Run() float64 { return e.RunUntil(math.Inf(1)) }

// RunUntil executes events with timestamps <= horizon and returns the
// final virtual time.
func (e *Env) RunUntil(horizon float64) float64 {
	if e.stopped {
		panic("sim: Run on a stopped environment")
	}
	if e.inRun {
		panic("sim: Run re-entered from a process or callback")
	}
	e.inRun = true
	defer func() { e.inRun = false }()
	for {
		ev := e.q.pop()
		if ev == nil {
			break
		}
		if ev.canceled || (ev.proc != nil && ev.proc.dead) {
			e.stats.Purged++
			e.freeEvent(ev)
			continue
		}
		if ev.at > horizon {
			e.q.push(ev) // seq preserved: ordering is unaffected
			return e.now
		}
		e.now = ev.at
		e.stats.Events++
		if fn := ev.fn; fn != nil {
			// Fast path: run the callback inline.
			e.freeEvent(ev)
			e.stats.CallbackEvents++
			fn()
			continue
		}
		// Slow path: hand the token to the process goroutine.
		p := ev.proc
		e.freeEvent(ev)
		e.stats.ProcSwitches++
		p.wake <- struct{}{}
		<-e.yieldCh
	}
	if e.blocked > 0 {
		panic(fmt.Sprintf("sim: deadlock: %d process(es)/waiter(s) blocked with an empty event queue at t=%v", e.blocked, e.now))
	}
	return e.now
}

// Stop terminates every live process goroutine (their deferred calls
// run; the process function does not resume) and discards all pending
// events, making repeated short-horizon runs leak-free. It must be
// called after Run/RunUntil returns, never from inside a process or
// callback. Stop is idempotent; a stopped environment cannot be run
// again.
func (e *Env) Stop() {
	if e.stopped {
		return
	}
	if e.inRun {
		panic("sim: Stop called from inside Run")
	}
	e.stopping = true
	// Index loop, not range: a deferred function in an unwinding process
	// may call Go, appending to e.all — those late arrivals must be
	// unwound too or their goroutines park on <-p.wake forever.
	for i := 0; i < len(e.all); i++ {
		p := e.all[i]
		if p.dead {
			continue
		}
		p.wake <- struct{}{} // unwinds via stopSignal / early return
		<-e.yieldCh
	}
	e.stopping = false
	e.stopped = true
	e.all = nil
	for ev := e.q.pop(); ev != nil; ev = e.q.pop() {
	}
	e.pool = nil
	e.blocked = 0
}

// yield returns the token to the scheduler and waits to be resumed.
func (p *Proc) yield() {
	e := p.env
	if e.stopping {
		// A primitive used from a deferred call while Stop unwinds this
		// process: keep unwinding instead of handing off.
		panic(stopSignal{})
	}
	e.yieldCh <- struct{}{}
	<-p.wake
	if e.stopping {
		panic(stopSignal{})
	}
}

// Sleep suspends the process for d milliseconds of virtual time.
// Negative durations sleep zero.
func (p *Proc) Sleep(d float64) {
	if d < 0 {
		d = 0
	}
	p.env.schedule(p.env.now+d, p, nil)
	p.yield()
}

// SleepUntil suspends the process until the given virtual time (no-op if
// already past).
func (p *Proc) SleepUntil(t float64) {
	p.env.schedule(t, p, nil)
	p.yield()
}

// block suspends the process indefinitely; some other process must hand
// it to Env.unblock. Used by queues and resources.
func (p *Proc) block() {
	p.env.blocked++
	p.yield()
	p.env.blocked--
}

// unblock schedules a blocked process to resume at the current time.
func (e *Env) unblock(p *Proc) {
	e.schedule(e.now, p, nil)
}
