// Package sim is a deterministic, process-oriented discrete-event
// simulator: the substrate that replaces the paper's Click-router
// testbed for the Figure 7 experiments. Processes are goroutines
// scheduled cooperatively — exactly one holds the execution token at any
// instant — so simulations are bit-reproducible and free of data races
// by construction. Virtual time is in milliseconds.
package sim

import (
	"container/heap"
	"fmt"
	"math"
)

// Env is a simulation environment: a virtual clock and an event queue.
// Create one with NewEnv, add processes with Go, then call Run.
type Env struct {
	now     float64
	queue   eventQueue
	seq     int64
	yieldCh chan struct{} // process -> scheduler handoff
	blocked int           // processes waiting on queues/resources (not timed)
	procs   int           // live processes
}

// NewEnv returns an empty environment at time zero.
func NewEnv() *Env {
	return &Env{yieldCh: make(chan struct{})}
}

// Now returns the current virtual time in milliseconds.
func (e *Env) Now() float64 { return e.now }

// event is a scheduled process resumption.
type event struct {
	at   float64
	seq  int64
	proc *Proc
}

type eventQueue []event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(event)) }
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}

// Proc is a simulated process. Its methods may only be called from
// within the process's own function while it holds the execution token.
type Proc struct {
	env  *Env
	name string
	wake chan struct{}
	dead bool
}

// Name returns the process name given to Go.
func (p *Proc) Name() string { return p.name }

// Env returns the owning environment.
func (p *Proc) Env() *Env { return p.env }

// Now returns the current virtual time.
func (p *Proc) Now() float64 { return p.env.now }

// Go adds a process to the environment. Processes added before Run start
// at time zero in registration order; processes added from inside a
// running process start at the current time.
func (e *Env) Go(name string, fn func(p *Proc)) *Proc {
	p := &Proc{env: e, name: name, wake: make(chan struct{})}
	e.procs++
	e.schedule(e.now, p)
	go func() {
		<-p.wake // wait for first dispatch
		fn(p)
		p.dead = true
		e.procs--
		e.yieldCh <- struct{}{}
	}()
	return p
}

// schedule enqueues a resumption for p at time t.
func (e *Env) schedule(t float64, p *Proc) {
	if t < e.now {
		t = e.now
	}
	e.seq++
	heap.Push(&e.queue, event{at: t, seq: e.seq, proc: p})
}

// Run executes events until the queue empties or the optional horizon is
// passed. It returns the final virtual time. Run panics if a process
// deadlock leaves blocked processes with an empty queue — a simulation
// bug that must not fail silently.
func (e *Env) Run() float64 { return e.RunUntil(math.Inf(1)) }

// RunUntil executes events with timestamps <= horizon and returns the
// final virtual time.
func (e *Env) RunUntil(horizon float64) float64 {
	for e.queue.Len() > 0 {
		ev := heap.Pop(&e.queue).(event)
		if ev.at > horizon {
			heap.Push(&e.queue, ev)
			return e.now
		}
		if ev.proc.dead {
			continue
		}
		e.now = ev.at
		ev.proc.wake <- struct{}{}
		<-e.yieldCh
	}
	if e.blocked > 0 {
		panic(fmt.Sprintf("sim: deadlock: %d process(es) blocked with an empty event queue at t=%v", e.blocked, e.now))
	}
	return e.now
}

// yield returns the token to the scheduler and waits to be resumed.
func (p *Proc) yield() {
	p.env.yieldCh <- struct{}{}
	<-p.wake
}

// Sleep suspends the process for d milliseconds of virtual time.
// Negative durations sleep zero.
func (p *Proc) Sleep(d float64) {
	if d < 0 {
		d = 0
	}
	p.env.schedule(p.env.now+d, p)
	p.yield()
}

// SleepUntil suspends the process until the given virtual time (no-op if
// already past).
func (p *Proc) SleepUntil(t float64) {
	p.env.schedule(t, p)
	p.yield()
}

// block suspends the process indefinitely; some other process must hand
// it to Env.unblock. Used by queues and resources.
func (p *Proc) block() {
	p.env.blocked++
	p.yield()
	p.env.blocked--
}

// unblock schedules a blocked process to resume at the current time.
func (e *Env) unblock(p *Proc) {
	e.schedule(e.now, p)
}
