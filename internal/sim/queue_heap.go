package sim

// evqueue is the event-queue contract shared by the calendar queue and
// the reference binary heap: a strict priority queue over (at, seq).
// Entries are popped in exactly that total order; canceled entries stay
// queued until popped (or purged by a calendar resize) and are skipped
// by the scheduler.
type evqueue interface {
	push(*event)
	pop() *event // minimum (at, seq), or nil when empty
	len() int
}

// evless orders events by time, then by issue sequence — the
// determinism contract of the simulator.
func evless(a, b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// heapQueue is the seed scheduler's binary-heap event queue, kept as
// the ordering oracle for calendar-queue equivalence tests (and
// selectable via Options.HeapQueue).
type heapQueue struct {
	evs []*event
}

func (q *heapQueue) len() int { return len(q.evs) }

func (q *heapQueue) push(ev *event) {
	q.evs = append(q.evs, ev)
	// Sift up.
	i := len(q.evs) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !evless(q.evs[i], q.evs[parent]) {
			break
		}
		q.evs[i], q.evs[parent] = q.evs[parent], q.evs[i]
		i = parent
	}
}

func (q *heapQueue) pop() *event {
	n := len(q.evs)
	if n == 0 {
		return nil
	}
	min := q.evs[0]
	last := q.evs[n-1]
	q.evs[n-1] = nil
	q.evs = q.evs[:n-1]
	if n > 1 {
		q.evs[0] = last
		// Sift down.
		i := 0
		for {
			l, r := 2*i+1, 2*i+2
			smallest := i
			if l < len(q.evs) && evless(q.evs[l], q.evs[smallest]) {
				smallest = l
			}
			if r < len(q.evs) && evless(q.evs[r], q.evs[smallest]) {
				smallest = r
			}
			if smallest == i {
				break
			}
			q.evs[i], q.evs[smallest] = q.evs[smallest], q.evs[i]
			i = smallest
		}
	}
	min.next = nil
	return min
}
