package sim

import "container/list"

// Queue is an unbounded FIFO mailbox between processes. Get blocks until
// an item is available; Put never blocks. The zero value is not usable;
// create queues with NewQueue.
type Queue struct {
	env     *Env
	items   *list.List
	waiters *list.List // *Proc, FIFO
}

// NewQueue returns an empty queue bound to the environment.
func NewQueue(env *Env) *Queue {
	return &Queue{env: env, items: list.New(), waiters: list.New()}
}

// Len returns the number of queued items.
func (q *Queue) Len() int { return q.items.Len() }

// Put appends an item and wakes the oldest waiting consumer, if any.
// Put may be called from any process (or before Run via a zero-time
// process).
func (q *Queue) Put(v any) {
	q.items.PushBack(v)
	if w := q.waiters.Front(); w != nil {
		q.waiters.Remove(w)
		q.env.unblock(w.Value.(*Proc))
	}
}

// Get removes and returns the oldest item, blocking the calling process
// until one is available.
func (q *Queue) Get(p *Proc) any {
	for q.items.Len() == 0 {
		q.waiters.PushBack(p)
		p.block()
	}
	front := q.items.Front()
	q.items.Remove(front)
	return front.Value
}

// TryGet removes and returns the oldest item without blocking; ok is
// false when the queue is empty.
func (q *Queue) TryGet() (v any, ok bool) {
	front := q.items.Front()
	if front == nil {
		return nil, false
	}
	q.items.Remove(front)
	return front.Value, true
}

// Resource is a counted resource (semaphore) with FIFO admission: the
// building block for modeling server capacity and exclusive locks.
type Resource struct {
	env      *Env
	capacity int
	inUse    int
	waiters  *list.List // waiter, FIFO
}

type waiter struct {
	proc *Proc
	n    int
}

// NewResource returns a resource with the given capacity (>= 1).
func NewResource(env *Env, capacity int) *Resource {
	if capacity < 1 {
		capacity = 1
	}
	return &Resource{env: env, capacity: capacity, waiters: list.New()}
}

// InUse returns the currently acquired units.
func (r *Resource) InUse() int { return r.inUse }

// Acquire obtains n units (n <= capacity), blocking in FIFO order.
func (r *Resource) Acquire(p *Proc, n int) {
	if n > r.capacity {
		panic("sim: Acquire exceeds resource capacity")
	}
	if r.waiters.Len() == 0 && r.inUse+n <= r.capacity {
		r.inUse += n
		return
	}
	elem := r.waiters.PushBack(&waiter{proc: p, n: n})
	for {
		p.block()
		// Admitted only when the releaser has granted our units and
		// removed us from the wait list.
		if elem.Value.(*waiter).proc == nil {
			return
		}
	}
}

// Release returns n units and admits waiting processes in FIFO order.
func (r *Resource) Release(n int) {
	r.inUse -= n
	if r.inUse < 0 {
		panic("sim: Release below zero")
	}
	for {
		front := r.waiters.Front()
		if front == nil {
			return
		}
		w := front.Value.(*waiter)
		if r.inUse+w.n > r.capacity {
			return
		}
		r.inUse += w.n
		r.waiters.Remove(front)
		proc := w.proc
		w.proc = nil // mark admitted
		r.env.unblock(proc)
	}
}

// Mutex is an exclusive lock.
type Mutex struct{ r *Resource }

// NewMutex returns an unlocked mutex.
func NewMutex(env *Env) *Mutex { return &Mutex{r: NewResource(env, 1)} }

// Lock acquires the mutex, blocking in FIFO order.
func (m *Mutex) Lock(p *Proc) { m.r.Acquire(p, 1) }

// Unlock releases the mutex.
func (m *Mutex) Unlock() { m.r.Release(1) }

// Locked reports whether the mutex is held.
func (m *Mutex) Locked() bool { return m.r.InUse() > 0 }

// Link models a network link with propagation latency and serialized
// transmission: transfers queue behind one another (FIFO) and each takes
// bytes/bandwidth transmission time plus latency. It reproduces the
// traffic-shaping behavior of the paper's Click-based emulation.
type Link struct {
	env *Env
	// LatencyMS is the one-way propagation delay.
	LatencyMS float64
	// BandwidthMbps is the transmission rate; zero means infinite.
	BandwidthMbps float64
	busyUntil     float64
	// BytesCarried accumulates total bytes for utilization reporting.
	BytesCarried int64
}

// NewLink returns a link bound to the environment.
func NewLink(env *Env, latencyMS, bandwidthMbps float64) *Link {
	return &Link{env: env, LatencyMS: latencyMS, BandwidthMbps: bandwidthMbps}
}

// TxMS returns the serialization time for a payload.
func (l *Link) TxMS(bytes int) float64 {
	if l.BandwidthMbps <= 0 || bytes <= 0 {
		return 0
	}
	return float64(bytes) * 8 / (l.BandwidthMbps * 1e6) * 1e3
}

// Transfer moves bytes across the link, blocking the calling process for
// queueing + transmission + propagation, and returns the total delay
// experienced.
func (l *Link) Transfer(p *Proc, bytes int) float64 {
	start := p.Now()
	tx := l.TxMS(bytes)
	if l.busyUntil < start {
		l.busyUntil = start
	}
	l.busyUntil += tx
	l.BytesCarried += int64(bytes)
	end := l.busyUntil + l.LatencyMS
	p.SleepUntil(end)
	return p.Now() - start
}
