package sim

// Queue is an unbounded FIFO mailbox between processes and/or
// callbacks. Get blocks the calling process until an item is
// available; GetFn is the fast-path equivalent, delivering to a
// callback with no goroutine handoff. Put never blocks. The zero
// value is not usable; create queues with NewQueue.
type Queue struct {
	env     *Env
	items   []any // ring: live items are items[head:]
	head    int
	waiters []qwaiter // ring: live waiters are waiters[whead:], FIFO
	whead   int
}

// qwaiter is one parked consumer: a blocked process or a callback.
type qwaiter struct {
	proc *Proc
	fn   func(v any)
}

// NewQueue returns an empty queue bound to the environment.
func NewQueue(env *Env) *Queue {
	return &Queue{env: env}
}

// Len returns the number of queued items.
func (q *Queue) Len() int { return len(q.items) - q.head }

func (q *Queue) popItem() any {
	v := q.items[q.head]
	q.items[q.head] = nil
	q.head++
	if q.head == len(q.items) {
		q.items, q.head = q.items[:0], 0
	} else if q.head > len(q.items)/2 {
		// Compact once the dead prefix dominates: a queue that always
		// keeps a backlog must not grow its backing array with total
		// Puts ever made (standard deque compaction, amortized O(1)).
		n := copy(q.items, q.items[q.head:])
		for i := n; i < len(q.items); i++ {
			q.items[i] = nil
		}
		q.items, q.head = q.items[:n], 0
	}
	return v
}

func (q *Queue) takeWaiter() (qwaiter, bool) {
	if q.whead == len(q.waiters) {
		return qwaiter{}, false
	}
	w := q.waiters[q.whead]
	q.waiters[q.whead] = qwaiter{}
	q.whead++
	if q.whead == len(q.waiters) {
		q.waiters, q.whead = q.waiters[:0], 0
	} else if q.whead > len(q.waiters)/2 {
		n := copy(q.waiters, q.waiters[q.whead:])
		for i := n; i < len(q.waiters); i++ {
			q.waiters[i] = qwaiter{}
		}
		q.waiters, q.whead = q.waiters[:n], 0
	}
	return w, true
}

// Put appends an item and wakes the oldest waiting consumer, if any.
// Put may be called from any process, callback, or before Run.
func (q *Queue) Put(v any) {
	q.items = append(q.items, v)
	if w, ok := q.takeWaiter(); ok {
		if w.proc != nil {
			q.env.unblock(w.proc)
		} else {
			// Wake the callback waiter through an event at the current
			// time — the exact analogue of unblocking a process — and
			// re-check on dispatch, since another consumer may take the
			// item first.
			q.env.schedule(q.env.now, nil, q.wakeFn(w.fn))
		}
	}
}

// wakeFn resumes a callback waiter: deliver if an item is present,
// otherwise re-park at the back of the waiter list (mirroring the
// re-check loop of the process path).
func (q *Queue) wakeFn(fn func(v any)) func() {
	return func() {
		q.env.blocked--
		if q.Len() > 0 {
			fn(q.popItem())
			return
		}
		q.waiters = append(q.waiters, qwaiter{fn: fn})
		q.env.blocked++
	}
}

// Get removes and returns the oldest item, blocking the calling process
// until one is available.
func (q *Queue) Get(p *Proc) any {
	for q.Len() == 0 {
		q.waiters = append(q.waiters, qwaiter{proc: p})
		p.block()
	}
	return q.popItem()
}

// GetFn delivers the oldest item to fn: synchronously when one is
// queued (like Get's no-block path), otherwise later, when one
// arrives. Waiting consumers — processes and callbacks alike — are
// served in strict FIFO order. The fast-path counterpart of Get.
func (q *Queue) GetFn(fn func(v any)) {
	if q.Len() > 0 {
		fn(q.popItem())
		return
	}
	q.waiters = append(q.waiters, qwaiter{fn: fn})
	q.env.blocked++
}

// TryGet removes and returns the oldest item without blocking; ok is
// false when the queue is empty.
func (q *Queue) TryGet() (v any, ok bool) {
	if q.Len() == 0 {
		return nil, false
	}
	return q.popItem(), true
}

// Resource is a counted resource (semaphore) with FIFO admission: the
// building block for modeling server capacity and exclusive locks.
type Resource struct {
	env      *Env
	capacity int
	inUse    int
	waiters  []*waiter // ring: live waiters are waiters[whead:], FIFO
	whead    int
}

// waiter is one parked acquirer: a blocked process or a callback.
type waiter struct {
	proc     *Proc
	fn       func()
	n        int
	admitted bool
}

// NewResource returns a resource with the given capacity (>= 1).
func NewResource(env *Env, capacity int) *Resource {
	if capacity < 1 {
		capacity = 1
	}
	return &Resource{env: env, capacity: capacity}
}

// InUse returns the currently acquired units.
func (r *Resource) InUse() int { return r.inUse }

func (r *Resource) nwaiters() int { return len(r.waiters) - r.whead }

func (r *Resource) frontWaiter() *waiter {
	if r.whead == len(r.waiters) {
		return nil
	}
	return r.waiters[r.whead]
}

func (r *Resource) dropFrontWaiter() {
	r.waiters[r.whead] = nil
	r.whead++
	if r.whead == len(r.waiters) {
		r.waiters, r.whead = r.waiters[:0], 0
	} else if r.whead > len(r.waiters)/2 {
		n := copy(r.waiters, r.waiters[r.whead:])
		for i := n; i < len(r.waiters); i++ {
			r.waiters[i] = nil
		}
		r.waiters, r.whead = r.waiters[:n], 0
	}
}

// Acquire obtains n units (n <= capacity), blocking in FIFO order.
func (r *Resource) Acquire(p *Proc, n int) {
	if n > r.capacity {
		panic("sim: Acquire exceeds resource capacity")
	}
	if r.nwaiters() == 0 && r.inUse+n <= r.capacity {
		r.inUse += n
		return
	}
	w := &waiter{proc: p, n: n}
	r.waiters = append(r.waiters, w)
	for {
		p.block()
		// Admitted only when the releaser has granted our units and
		// removed us from the wait list.
		if w.admitted {
			return
		}
	}
}

// AcquireFn obtains n units and then runs fn: synchronously when the
// units are free (like Acquire's no-block path), otherwise when a
// Release admits this waiter, in the same FIFO order processes honor.
// The fast-path counterpart of Acquire.
func (r *Resource) AcquireFn(n int, fn func()) {
	if n > r.capacity {
		panic("sim: Acquire exceeds resource capacity")
	}
	if r.nwaiters() == 0 && r.inUse+n <= r.capacity {
		r.inUse += n
		fn()
		return
	}
	r.waiters = append(r.waiters, &waiter{fn: fn, n: n})
	r.env.blocked++
}

// Release returns n units and admits waiting acquirers in FIFO order.
func (r *Resource) Release(n int) {
	r.inUse -= n
	if r.inUse < 0 {
		panic("sim: Release below zero")
	}
	for {
		w := r.frontWaiter()
		if w == nil || r.inUse+w.n > r.capacity {
			return
		}
		r.inUse += w.n
		r.dropFrontWaiter()
		w.admitted = true
		if w.proc != nil {
			r.env.unblock(w.proc)
		} else {
			fn := w.fn
			r.env.schedule(r.env.now, nil, func() {
				r.env.blocked--
				fn()
			})
		}
	}
}

// Mutex is an exclusive lock.
type Mutex struct{ r *Resource }

// NewMutex returns an unlocked mutex.
func NewMutex(env *Env) *Mutex { return &Mutex{r: NewResource(env, 1)} }

// Lock acquires the mutex, blocking in FIFO order.
func (m *Mutex) Lock(p *Proc) { m.r.Acquire(p, 1) }

// LockFn acquires the mutex and then runs fn — synchronously when the
// mutex is free. The fast-path counterpart of Lock.
func (m *Mutex) LockFn(fn func()) { m.r.AcquireFn(1, fn) }

// Unlock releases the mutex.
func (m *Mutex) Unlock() { m.r.Release(1) }

// Locked reports whether the mutex is held.
func (m *Mutex) Locked() bool { return m.r.InUse() > 0 }

// Link models a network link with propagation latency and serialized
// transmission: transfers queue behind one another (FIFO) and each takes
// bytes/bandwidth transmission time plus latency. It reproduces the
// traffic-shaping behavior of the paper's Click-based emulation.
type Link struct {
	env *Env
	// LatencyMS is the one-way propagation delay.
	LatencyMS float64
	// BandwidthMbps is the transmission rate; zero means infinite.
	BandwidthMbps float64
	busyUntil     float64
	// BytesCarried accumulates total bytes for utilization reporting.
	BytesCarried int64
}

// NewLink returns a link bound to the environment.
func NewLink(env *Env, latencyMS, bandwidthMbps float64) *Link {
	return &Link{env: env, LatencyMS: latencyMS, BandwidthMbps: bandwidthMbps}
}

// TxMS returns the serialization time for a payload.
func (l *Link) TxMS(bytes int) float64 {
	if l.BandwidthMbps <= 0 || bytes <= 0 {
		return 0
	}
	return float64(bytes) * 8 / (l.BandwidthMbps * 1e6) * 1e3
}

// admit reserves the link for a payload and returns the virtual time at
// which delivery completes (queueing + transmission + propagation).
func (l *Link) admit(bytes int) (end float64) {
	start := l.env.now
	if l.busyUntil < start {
		l.busyUntil = start
	}
	l.busyUntil += l.TxMS(bytes)
	l.BytesCarried += int64(bytes)
	return l.busyUntil + l.LatencyMS
}

// Transfer moves bytes across the link, blocking the calling process for
// queueing + transmission + propagation, and returns the total delay
// experienced.
func (l *Link) Transfer(p *Proc, bytes int) float64 {
	start := p.Now()
	p.SleepUntil(l.admit(bytes))
	return p.Now() - start
}

// TransferFn moves bytes across the link and runs fn on delivery with
// the total delay experienced. The fast-path counterpart of Transfer:
// one timer event, no goroutine handoff.
func (l *Link) TransferFn(bytes int, fn func(delayMS float64)) {
	start := l.env.now
	l.env.At(l.admit(bytes), func() {
		fn(l.env.now - start)
	})
}
