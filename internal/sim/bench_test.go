package sim

import (
	"fmt"
	"testing"
)

// BenchmarkSimCore measures raw scheduler throughput (reported as
// events/sec) for the three hot primitives of the Figure 7 workload —
// timers, link transfers, and queue handoffs — at 1k/10k/100k
// concurrent entities, on both engines. "callback" is the fast path
// (inline dispatch, zero goroutines); "proc" is the goroutine-process
// slow path (two channel handoffs per event), which is the seed
// scheduler's only mode. The A5b acceptance bar is callback >= 5x proc
// at 10k entities.
func BenchmarkSimCore(b *testing.B) {
	for _, n := range []int{1_000, 10_000, 100_000} {
		n := n
		b.Run(fmt.Sprintf("timers/callback-%d", n), func(b *testing.B) {
			benchEvents(b, func(env *Env) { startTimerEntities(env, n, 10) })
		})
		b.Run(fmt.Sprintf("timers/proc-%d", n), func(b *testing.B) {
			benchEvents(b, func(env *Env) {
				for i := 0; i < n; i++ {
					env.Go("t", func(p *Proc) {
						for h := 0; h < 10; h++ {
							p.Sleep(1)
						}
					})
				}
			})
		})
	}
	// Link transfers and queue handoffs at the acceptance-bar size.
	const n = 10_000
	b.Run(fmt.Sprintf("link/callback-%d", n), func(b *testing.B) {
		benchEvents(b, func(env *Env) {
			link := NewLink(env, 1, 100)
			for i := 0; i < n; i++ {
				hops := 10
				var next func(float64)
				next = func(float64) {
					if hops--; hops >= 0 {
						link.TransferFn(1000, next)
					}
				}
				next(0)
			}
		})
	})
	b.Run(fmt.Sprintf("link/proc-%d", n), func(b *testing.B) {
		benchEvents(b, func(env *Env) {
			link := NewLink(env, 1, 100)
			for i := 0; i < n; i++ {
				env.Go("x", func(p *Proc) {
					for h := 0; h < 10; h++ {
						link.Transfer(p, 1000)
					}
				})
			}
		})
	})
	b.Run(fmt.Sprintf("queue/callback-%d", n), func(b *testing.B) {
		benchEvents(b, func(env *Env) {
			for i := 0; i < n/2; i++ {
				q := NewQueue(env)
				items := 10
				var consume func(any)
				consume = func(any) {
					if items--; items > 0 {
						q.GetFn(consume)
					}
				}
				q.GetFn(consume)
				var produce func()
				sent := 10
				produce = func() {
					q.Put(0)
					if sent--; sent > 0 {
						env.After(1, produce)
					}
				}
				env.After(1, produce)
			}
		})
	})
	b.Run(fmt.Sprintf("queue/proc-%d", n), func(b *testing.B) {
		benchEvents(b, func(env *Env) {
			for i := 0; i < n/2; i++ {
				q := NewQueue(env)
				env.Go("c", func(p *Proc) {
					for h := 0; h < 10; h++ {
						q.Get(p)
					}
				})
				env.Go("p", func(p *Proc) {
					for h := 0; h < 10; h++ {
						q.Put(0)
						p.Sleep(1)
					}
				})
			}
		})
	})
}

// startTimerEntities schedules n self-rescheduling callback chains of
// the given hop count — the zero-goroutine analogue of n sleeping
// processes.
func startTimerEntities(env *Env, n, hops int) {
	for i := 0; i < n; i++ {
		left := hops
		var tick func()
		tick = func() {
			if left--; left > 0 {
				env.After(1, tick)
			}
		}
		env.After(1, tick)
	}
}

// benchEvents runs one populated environment per iteration and reports
// scheduler throughput.
func benchEvents(b *testing.B, populate func(env *Env)) {
	var events int64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		env := NewEnv()
		populate(env)
		env.Run()
		events += env.Stats().Events
		env.Stop()
	}
	b.StopTimer()
	if s := b.Elapsed().Seconds(); s > 0 {
		b.ReportMetric(float64(events)/s, "events/sec")
	}
	b.ReportMetric(float64(events)/float64(b.N), "events/op")
}

// BenchmarkCalendarVsHeap isolates the event-queue swap: identical
// uniform timer loads through each queue implementation.
func BenchmarkCalendarVsHeap(b *testing.B) {
	for _, opt := range []struct {
		name string
		o    Options
	}{{"calendar", Options{}}, {"heap", Options{HeapQueue: true}}} {
		b.Run(opt.name, func(b *testing.B) {
			var events int64
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				env := NewEnvWith(opt.o)
				startTimerEntities(env, 10_000, 10)
				env.Run()
				events += env.Stats().Events
			}
			b.StopTimer()
			if s := b.Elapsed().Seconds(); s > 0 {
				b.ReportMetric(float64(events)/s, "events/sec")
			}
		})
	}
}
