package solver

import (
	"sync/atomic"

	"partsvc/internal/metrics"
)

// Stats are cumulative engine counters, safe for concurrent solvers
// sharing one instance (the fleet's shard planners all fold into their
// planner's Stats).
type Stats struct {
	// Solves counts fresh Solve calls; Repairs counts Repair calls.
	Solves, Repairs atomic.Uint64
	// RepairFallbacks counts repairs that were infeasible under their
	// pins and reported ok=false (the caller then solves fresh).
	RepairFallbacks atomic.Uint64
	// Propagations, Backtracks, Evaluations aggregate RunStats.
	Propagations, Backtracks, Evaluations atomic.Uint64
}

func (s *Stats) addRun(r RunStats) {
	s.Propagations.Add(r.Propagations)
	s.Backtracks.Add(r.Backtracks)
	s.Evaluations.Add(r.Evaluations)
}

// RepairHitRate is the fraction of repairs that succeeded without a
// fresh-solve fallback (0 when no repairs ran).
func (s *Stats) RepairHitRate() float64 {
	r := s.Repairs.Load()
	if r == 0 {
		return 0
	}
	return float64(r-s.RepairFallbacks.Load()) / float64(r)
}

// KVs renders the counters as metrics-registry rows.
func (s *Stats) KVs() []metrics.KV {
	return []metrics.KV{
		metrics.KVf("solves", "%d", s.Solves.Load()),
		metrics.KVf("repairs", "%d", s.Repairs.Load()),
		metrics.KVf("repair_fallbacks", "%d", s.RepairFallbacks.Load()),
		metrics.KVf("repair_hit_rate", "%.3f", s.RepairHitRate()),
		metrics.KVf("propagations", "%d", s.Propagations.Load()),
		metrics.KVf("backtracks", "%d", s.Backtracks.Load()),
		metrics.KVf("evaluations", "%d", s.Evaluations.Load()),
	}
}
