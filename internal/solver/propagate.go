package solver

// propagate runs AC-3 over the tree's arcs: for every edge
// (parent, child) both directed arcs are revised until a fixpoint.
// Domains are pruned in place (order preserved — determinism rides on
// it). Returns false when any domain empties, i.e. the model (or the
// repair pinning) is infeasible. Every support test counts as one
// Propagation in run.
func propagate(m Model, doms [][]int, children [][]int, run *RunStats) bool {
	type arc struct{ x, y int } // revise x's domain against neighbor y
	var work []arc
	for v := 1; v < m.Vars(); v++ {
		p := m.Parent(v)
		work = append(work, arc{v, p}, arc{p, v})
	}
	enqueue := func(x, y int) {
		work = append(work, arc{x, y})
	}
	for len(work) > 0 {
		a := work[0]
		work = work[1:]
		if !revise(m, doms, a.x, a.y, run) {
			continue
		}
		if len(doms[a.x]) == 0 {
			return false
		}
		// x's domain shrank: re-revise every other neighbor against x.
		if p := m.Parent(a.x); p >= 0 && p != a.y {
			enqueue(p, a.x)
		}
		for _, c := range children[a.x] {
			if c != a.y {
				enqueue(c, a.x)
			}
		}
	}
	return true
}

// revise drops values of x with no support in y, returning whether the
// domain changed. x and y are parent and child of one tree edge (in
// either order); the constraint is always Compatible(child, pv, cv).
func revise(m Model, doms [][]int, x, y int, run *RunStats) bool {
	childVar := x
	if m.Parent(y) == x {
		childVar = y
	}
	kept := doms[x][:0]
	for _, xv := range doms[x] {
		supported := false
		for _, yv := range doms[y] {
			run.Propagations++
			pv, cv := xv, yv
			if childVar == x {
				pv, cv = yv, xv
			}
			if m.Compatible(childVar, pv, cv) {
				supported = true
				break
			}
		}
		if supported {
			kept = append(kept, xv)
		}
	}
	changed := len(kept) != len(doms[x])
	doms[x] = kept
	return changed
}
