// Package solver is a constraint-solving planner core: placement as a
// constraint-satisfaction/optimization problem over tree-structured
// variable graphs, in the style of the constraint-based deployment work
// the paper's bibliography points at (McCarthy/Dearle/Kirby). The
// engine is deliberately generic — variables, integer domains, a binary
// compatibility relation along tree edges, an admissible additive cost
// bound, and an exact evaluator — so the planner adapter in
// internal/planner owns every domain-specific rule (properties, trust,
// bandwidth, routing) while this package owns search mechanics:
//
//   - AC-3 style constraint propagation prunes domains before search;
//     every support test is counted as one Propagation, the engine's
//     unit of work;
//   - branch-and-bound DFS with an incrementally maintained frontier
//     bound (per-subtree DP relaxations computed bottom-up) prunes
//     assignments that cannot beat the incumbent;
//   - Repair re-solves with every clean variable pinned to its previous
//     value, so a local change re-propagates only the invalidated
//     domains — O(affected) work instead of O(topology) — and reports
//     infeasibility so the caller can fall back to a fresh solve.
package solver

import "math"

// Model is a tree-structured constraint optimization problem. Variables
// are indexed 0..Vars()-1 in pre-order: Parent(0) == -1 and
// Parent(v) < v for every other v, so assigning variables in index
// order always assigns a parent before its children. Values are indices
// into each variable's private candidate list (the adapter owns the
// actual candidates).
type Model interface {
	// Vars returns the variable count.
	Vars() int
	// Parent returns v's parent variable (-1 for the root).
	Parent(v int) int
	// DomainSize returns the number of candidate values of v.
	DomainSize(v int) int
	// Compatible reports whether child value cv of variable v is
	// compatible with parent value pv across the edge (Parent(v), v).
	// It must be sound: false only when no complete assignment
	// extending (pv, cv) can be valid. Never called for the root.
	Compatible(v, pv, cv int) bool
	// Bounded reports whether EdgeBound yields admissible additive
	// bounds for the primary objective. When false the engine skips
	// bound pruning and enumerates every propagation-surviving
	// assignment (exact evaluation still decides).
	Bounded() bool
	// EdgeBound returns an admissible (never over-estimating) lower
	// bound on the primary-cost contribution of assigning value cv to v
	// under parent value pv. For the root, pv is -1 and the bound
	// covers the root variable's own contribution.
	EdgeBound(v, pv, cv int) float64
	// Evaluate checks a complete assignment exactly (constraints the
	// binary relation cannot express live here) and returns an opaque
	// result plus its primary cost. ok=false rejects the assignment.
	Evaluate(assign []int) (result any, primary float64, ok bool)
	// Better reports whether evaluated result a should replace b,
	// providing the full deterministic tie-break order.
	Better(a, b any) bool
}

// Solution is a complete, evaluated assignment.
type Solution struct {
	// Assign maps each variable to the index of its chosen value.
	Assign []int
	// Result is the model's Evaluate output for Assign.
	Result any
	// Primary is the primary objective value of Result.
	Primary float64
}

// RunStats are the work counters of one Solve/Repair call.
type RunStats struct {
	// Propagations counts binary support tests (Compatible calls) —
	// the engine's unit of work, across AC-3 and bound maintenance.
	Propagations uint64
	// Backtracks counts abandoned partial assignments (bound prunes,
	// dead values, rejected evaluations).
	Backtracks uint64
	// Evaluations counts exact whole-assignment evaluations.
	Evaluations uint64
}

const eps = 1e-9

// Solver runs searches and accumulates counters into Stats (when set).
// A Solver is not safe for concurrent use; share the Stats instead.
type Solver struct {
	Stats *Stats
	// UpperBound, when non-nil, is an externally known upper bound on
	// the primary cost (e.g. the best solution of a sibling model when a
	// caller solves several models for the same request). Assignments
	// whose admissible bound exceeds it are pruned even before this
	// model finds its own incumbent; assignments within eps of it
	// survive to the exact tie-break, so seeding never changes which
	// solution wins — only how much of the space is searched.
	UpperBound *float64
}

// Solve finds the best complete assignment of m, or ok=false when the
// model is infeasible.
func (s *Solver) Solve(m Model) (Solution, RunStats, bool) {
	doms := fullDomains(m)
	sol, run, ok := s.search(m, doms)
	if s.Stats != nil {
		s.Stats.Solves.Add(1)
		s.Stats.addRun(run)
	}
	return sol, run, ok
}

// Repair re-solves m keeping every clean variable pinned to its
// previous value: dirty[v] selects the variables whose domains are
// re-opened, prev[v] supplies the pinned value index for clean ones.
// ok=false means repair is infeasible under the pins (empty domain
// after propagation, or no valid complete assignment) and the caller
// should fall back to a fresh solve.
func (s *Solver) Repair(m Model, prev []int, dirty []bool) (Solution, RunStats, bool) {
	doms := make([][]int, m.Vars())
	for v := range doms {
		if dirty[v] {
			doms[v] = identity(m.DomainSize(v))
		} else {
			doms[v] = []int{prev[v]}
		}
	}
	sol, run, ok := s.search(m, doms)
	if s.Stats != nil {
		s.Stats.Repairs.Add(1)
		if !ok {
			s.Stats.RepairFallbacks.Add(1)
		}
		s.Stats.addRun(run)
	}
	return sol, run, ok
}

func identity(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

func fullDomains(m Model) [][]int {
	doms := make([][]int, m.Vars())
	for v := range doms {
		doms[v] = identity(m.DomainSize(v))
	}
	return doms
}

// search propagates, computes subtree bounds, and runs branch-and-bound
// DFS in variable order.
func (s *Solver) search(m Model, doms [][]int) (Solution, RunStats, bool) {
	var run RunStats
	n := m.Vars()
	if n == 0 {
		return Solution{}, run, false
	}
	children := childLists(m)
	if !propagate(m, doms, children, &run) {
		return Solution{}, run, false
	}

	bounded := m.Bounded()
	var minComp [][]float64
	if bounded {
		minComp = subtreeBounds(m, doms, children, &run)
	}

	// hmin returns the least bound of v's subtree given parent value pv
	// (-1 for the root): min over v's surviving domain of edge bound
	// plus subtree completion. +Inf when no value is compatible.
	hmin := func(v, pv int) float64 {
		best := math.Inf(1)
		for di, cv := range doms[v] {
			if pv >= 0 {
				run.Propagations++
				if !m.Compatible(v, pv, cv) {
					continue
				}
			}
			if b := m.EdgeBound(v, pv, cv) + minComp[v][di]; b < best {
				best = b
			}
		}
		return best
	}

	assign := make([]int, n)
	var best *Solution
	limit := math.Inf(1)
	if s.UpperBound != nil {
		limit = *s.UpperBound
	}
	// g is the accumulated edge-bound cost of assigned variables; h the
	// frontier sum: for every unassigned variable whose parent is
	// assigned, the least completion of its whole subtree. contrib[v]
	// remembers v's frontier term so assigning v can replace it with
	// its own children's terms.
	contrib := make([]float64, n)
	var g, h float64
	if bounded {
		contrib[0] = hmin(0, -1)
		h = contrib[0]
	}

	var dfs func(v int) bool
	dfs = func(v int) bool {
		if v == n {
			run.Evaluations++
			result, primary, ok := m.Evaluate(assign)
			if !ok {
				run.Backtracks++
				return false
			}
			if best == nil || m.Better(result, best.Result) {
				best = &Solution{Assign: append([]int(nil), assign...), Result: result, Primary: primary}
			}
			return true
		}
		pv := -1
		if p := m.Parent(v); p >= 0 {
			pv = assign[p]
		}
		found := false
		for _, cv := range doms[v] {
			if pv >= 0 {
				run.Propagations++
				if !m.Compatible(v, pv, cv) {
					continue
				}
			}
			var g0, h0 float64
			if bounded {
				g0, h0 = g, h
				ng := g + m.EdgeBound(v, pv, cv)
				nh := h - contrib[v]
				dead := false
				for _, c := range children[v] {
					contrib[c] = hmin(c, cv)
					if math.IsInf(contrib[c], 1) {
						dead = true
						break
					}
					nh += contrib[c]
				}
				if dead {
					run.Backtracks++
					continue
				}
				// Strict-inequality pruning: assignments whose bound ties
				// the incumbent's (or the seeded) primary survive to the
				// exact tie-break.
				lim := limit
				if best != nil && best.Primary < lim {
					lim = best.Primary
				}
				if ng+nh > lim+eps {
					run.Backtracks++
					continue
				}
				g, h = ng, nh
			}
			assign[v] = cv
			if dfs(v + 1) {
				found = true
			} else {
				run.Backtracks++
			}
			if bounded {
				g, h = g0, h0
			}
		}
		return found
	}
	dfs(0)
	if best == nil {
		return Solution{}, run, false
	}
	return *best, run, true
}

// childLists inverts Parent into per-variable child index lists.
func childLists(m Model) [][]int {
	children := make([][]int, m.Vars())
	for v := 1; v < m.Vars(); v++ {
		p := m.Parent(v)
		children[p] = append(children[p], v)
	}
	return children
}

// subtreeBounds computes, bottom-up over the pruned domains, the DP
// relaxation minComp[v][di]: a lower bound on the cost of completing
// v's strict subtree when v takes its di-th surviving value. +Inf marks
// values with no compatible child completion (dead values — kept in the
// domain, the DFS skips them via the frontier bound).
func subtreeBounds(m Model, doms [][]int, children [][]int, run *RunStats) [][]float64 {
	n := m.Vars()
	minComp := make([][]float64, n)
	for v := n - 1; v >= 0; v-- {
		minComp[v] = make([]float64, len(doms[v]))
		for di, pv := range doms[v] {
			total := 0.0
			for _, c := range children[v] {
				best := math.Inf(1)
				for ci, cv := range doms[c] {
					run.Propagations++
					if !m.Compatible(c, pv, cv) {
						continue
					}
					if b := m.EdgeBound(c, pv, cv) + minComp[c][ci]; b < best {
						best = b
					}
				}
				total += best
				if math.IsInf(total, 1) {
					break
				}
			}
			minComp[v][di] = total
		}
	}
	return minComp
}
