package solver

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// gridModel is a synthetic chain COP: vars 0..n-1 in a line, domains of
// size k, edge cost |pv-cv| plus a per-value cost table, a parity
// constraint knocking out some pairs, and exact evaluation equal to the
// bound sums (so the bound is tight and search must still be exact).
type gridModel struct {
	n, k    int
	cost    [][]float64 // cost[v][cv]
	blocked map[[3]int]bool
}

func newGridModel(n, k int, seed int64) *gridModel {
	rng := rand.New(rand.NewSource(seed))
	m := &gridModel{n: n, k: k, blocked: map[[3]int]bool{}}
	m.cost = make([][]float64, n)
	for v := 0; v < n; v++ {
		m.cost[v] = make([]float64, k)
		for cv := 0; cv < k; cv++ {
			m.cost[v][cv] = float64(rng.Intn(50))
		}
	}
	for v := 1; v < n; v++ {
		for pv := 0; pv < k; pv++ {
			for cv := 0; cv < k; cv++ {
				if rng.Float64() < 0.2 {
					m.blocked[[3]int{v, pv, cv}] = true
				}
			}
		}
	}
	return m
}

func (m *gridModel) Vars() int            { return m.n }
func (m *gridModel) Parent(v int) int     { return v - 1 }
func (m *gridModel) DomainSize(v int) int { return m.k }
func (m *gridModel) Bounded() bool        { return true }
func (m *gridModel) Compatible(v, pv, cv int) bool {
	return !m.blocked[[3]int{v, pv, cv}]
}
func (m *gridModel) EdgeBound(v, pv, cv int) float64 {
	b := m.cost[v][cv]
	if pv >= 0 {
		b += math.Abs(float64(pv - cv))
	}
	return b
}
func (m *gridModel) Evaluate(assign []int) (any, float64, bool) {
	total := 0.0
	for v := 0; v < m.n; v++ {
		pv := -1
		if v > 0 {
			pv = assign[v-1]
		}
		if pv >= 0 && !m.Compatible(v, pv, assign[v]) {
			return nil, 0, false
		}
		total += m.EdgeBound(v, pv, assign[v])
	}
	return append([]int(nil), assign...), total, true
}
func (m *gridModel) Better(a, b any) bool {
	aa, bb := a.([]int), b.([]int)
	var ca, cb float64
	for v := range aa {
		pv := -1
		if v > 0 {
			pv = aa[v-1]
		}
		ca += m.EdgeBound(v, pv, aa[v])
	}
	for v := range bb {
		pv := -1
		if v > 0 {
			pv = bb[v-1]
		}
		cb += m.EdgeBound(v, pv, bb[v])
	}
	if math.Abs(ca-cb) > eps {
		return ca < cb
	}
	return fmt.Sprint(aa) < fmt.Sprint(bb)
}

// bruteForce enumerates every assignment.
func bruteForce(m *gridModel) (best []int, bestCost float64, found bool) {
	assign := make([]int, m.n)
	bestCost = math.Inf(1)
	var rec func(v int)
	rec = func(v int) {
		if v == m.n {
			if r, cost, ok := m.Evaluate(assign); ok {
				if !found || cost < bestCost-eps ||
					(math.Abs(cost-bestCost) <= eps && m.Better(r, best)) {
					best = r.([]int)
					bestCost = cost
					found = true
				}
			}
			return
		}
		for cv := 0; cv < m.k; cv++ {
			assign[v] = cv
			rec(v + 1)
		}
	}
	rec(0)
	return best, bestCost, found
}

func TestSolveMatchesBruteForce(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		m := newGridModel(5, 6, seed)
		var s Solver
		sol, _, ok := s.Solve(m)
		want, wantCost, feasible := bruteForce(m)
		if ok != feasible {
			t.Fatalf("seed %d: solver feasibility %v, brute force %v", seed, ok, feasible)
		}
		if !ok {
			continue
		}
		if math.Abs(sol.Primary-wantCost) > eps {
			t.Fatalf("seed %d: solver cost %v, brute force %v", seed, sol.Primary, wantCost)
		}
		got := sol.Result.([]int)
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("seed %d: solver %v, brute force %v (same cost, tie-break must match)", seed, got, want)
		}
	}
}

func TestSolveDeterministic(t *testing.T) {
	m := newGridModel(6, 5, 7)
	var s Solver
	a, _, ok1 := s.Solve(m)
	b, _, ok2 := s.Solve(m)
	if ok1 != ok2 || fmt.Sprint(a.Result) != fmt.Sprint(b.Result) {
		t.Fatalf("solve not deterministic: %v vs %v", a.Result, b.Result)
	}
}

func TestRepairPinsCleanVariables(t *testing.T) {
	m := newGridModel(6, 8, 3)
	stats := &Stats{}
	s := Solver{Stats: stats}
	sol, fresh, ok := s.Solve(m)
	if !ok {
		t.Fatal("model infeasible")
	}
	// Repair with only variable 3 dirty: all others keep their values.
	dirty := make([]bool, m.n)
	dirty[3] = true
	rep, run, ok := s.Repair(m, sol.Assign, dirty)
	if !ok {
		t.Fatal("repair infeasible though the previous solution still is")
	}
	for v := range rep.Assign {
		if v != 3 && rep.Assign[v] != sol.Assign[v] {
			t.Fatalf("repair moved clean variable %d: %d -> %d", v, sol.Assign[v], rep.Assign[v])
		}
	}
	if rep.Primary > sol.Primary+eps {
		t.Fatalf("repair found a worse value for the dirty variable: %v > %v", rep.Primary, sol.Primary)
	}
	if run.Propagations*2 >= fresh.Propagations {
		t.Fatalf("repair should be far cheaper: repair %d propagations vs fresh %d",
			run.Propagations, fresh.Propagations)
	}
	if got := stats.Repairs.Load(); got != 1 {
		t.Fatalf("Repairs counter = %d, want 1", got)
	}
	if got := stats.RepairFallbacks.Load(); got != 0 {
		t.Fatalf("RepairFallbacks = %d, want 0", got)
	}
}

// conflictModel admits no assignment at all once var 1 is pinned to 0.
type conflictModel struct{ gridModel }

func (m *conflictModel) Compatible(v, pv, cv int) bool { return v != 1 || cv != 0 }
func (m *conflictModel) Evaluate(assign []int) (any, float64, bool) {
	if assign[1] == 0 {
		return nil, 0, false
	}
	return m.gridModel.Evaluate(assign)
}

func TestRepairInfeasibleFallsBack(t *testing.T) {
	m := &conflictModel{*newGridModel(3, 3, 5)}
	stats := &Stats{}
	s := Solver{Stats: stats}
	prev := []int{0, 0, 0} // var 1 pinned to the now-forbidden value
	dirty := []bool{false, false, true}
	_, _, ok := s.Repair(m, prev, dirty)
	if ok {
		t.Fatal("repair reported success for an infeasible pinning")
	}
	if got := stats.RepairFallbacks.Load(); got != 1 {
		t.Fatalf("RepairFallbacks = %d, want 1", got)
	}
	if stats.RepairHitRate() != 0 {
		t.Fatalf("RepairHitRate = %v, want 0", stats.RepairHitRate())
	}
	// The full model remains solvable.
	if _, _, ok := s.Solve(m); !ok {
		t.Fatal("fresh solve should succeed")
	}
}

// treeShape exercises a non-chain parent structure: 0 -> {1, 2}, 2 -> {3}.
type treeShape struct{ gridModel }

func (m *treeShape) Parent(v int) int { return []int{-1, 0, 0, 2}[v] }
func (m *treeShape) Better(a, b any) bool {
	_, ca, _ := m.Evaluate(a.([]int))
	_, cb, _ := m.Evaluate(b.([]int))
	if math.Abs(ca-cb) > eps {
		return ca < cb
	}
	return fmt.Sprint(a) < fmt.Sprint(b)
}
func (m *treeShape) Evaluate(assign []int) (any, float64, bool) {
	total := 0.0
	for v := 0; v < m.n; v++ {
		pv := -1
		if p := m.Parent(v); p >= 0 {
			pv = assign[p]
		}
		if pv >= 0 && !m.Compatible(v, pv, assign[v]) {
			return nil, 0, false
		}
		total += m.EdgeBound(v, pv, assign[v])
	}
	return append([]int(nil), assign...), total, true
}

func TestSolveTreeShape(t *testing.T) {
	m := &treeShape{*newGridModel(4, 5, 11)}
	var s Solver
	sol, _, ok := s.Solve(m)
	if !ok {
		t.Fatal("tree model infeasible")
	}
	// Brute force over the tree evaluation.
	best := math.Inf(1)
	assign := make([]int, 4)
	var rec func(v int)
	rec = func(v int) {
		if v == 4 {
			if _, cost, ok := m.Evaluate(assign); ok && cost < best {
				best = cost
			}
			return
		}
		for cv := 0; cv < m.k; cv++ {
			assign[v] = cv
			rec(v + 1)
		}
	}
	rec(0)
	if math.Abs(sol.Primary-best) > eps {
		t.Fatalf("tree solve cost %v, brute force %v", sol.Primary, best)
	}
}
