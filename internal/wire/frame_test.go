package wire

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
)

func TestFrameWriterReaderRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	fw := NewFrameWriter(&buf)
	payloads := [][]byte{[]byte("alpha"), {}, []byte("gamma-gamma")}
	for i, p := range payloads {
		if err := fw.WriteFrame(uint64(100+i), p); err != nil {
			t.Fatal(err)
		}
	}
	if buf.Len() != 0 {
		t.Errorf("frames reached the writer before Flush (%d bytes)", buf.Len())
	}
	if err := fw.Flush(); err != nil {
		t.Fatal(err)
	}
	fr := NewFrameReader(&buf)
	for i, p := range payloads {
		f, err := fr.Next()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if f.Version != FrameV2 || f.ID != uint64(100+i) || !bytes.Equal(f.Payload, p) {
			t.Errorf("frame %d = %+v", i, f)
		}
		PutBuffer(f.Payload)
	}
	if _, err := fr.Next(); err != io.EOF {
		t.Errorf("after last frame err = %v, want io.EOF", err)
	}
}

func TestFrameReaderAcceptsV1Frames(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, []byte("legacy")); err != nil {
		t.Fatal(err)
	}
	f, err := NewFrameReader(&buf).Next()
	if err != nil {
		t.Fatal(err)
	}
	if f.Version != FrameV1 || f.ID != 0 || string(f.Payload) != "legacy" {
		t.Errorf("frame = %+v", f)
	}
}

func TestWriteFrameV1RoundTrip(t *testing.T) {
	var buf bytes.Buffer
	fw := NewFrameWriter(&buf)
	if err := fw.WriteFrameV1([]byte("reply")); err != nil {
		t.Fatal(err)
	}
	if err := fw.Flush(); err != nil {
		t.Fatal(err)
	}
	// The encoding must be exactly what a legacy reader expects: a bare
	// big-endian length prefix, no flag bit, no version byte or ID.
	want := append([]byte{0, 0, 0, 5}, "reply"...)
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("encoded v1 frame = %x, want %x", buf.Bytes(), want)
	}
	f, err := NewFrameReader(&buf).Next()
	if err != nil {
		t.Fatal(err)
	}
	if f.Version != FrameV1 || f.ID != 0 || string(f.Payload) != "reply" {
		t.Errorf("frame = %+v", f)
	}
	PutBuffer(f.Payload)
}

func TestWriteFrameV1RejectsOversized(t *testing.T) {
	fw := NewFrameWriter(io.Discard)
	if err := fw.WriteFrameV1(make([]byte, MaxFrame+1)); !errors.Is(err, ErrFrameTooLarge) {
		t.Errorf("err = %v, want ErrFrameTooLarge", err)
	}
}

func TestFrameReaderMixedVersions(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, []byte("v1")); err != nil {
		t.Fatal(err)
	}
	fw := NewFrameWriter(&buf)
	if err := fw.WriteFrame(7, []byte("v2")); err != nil {
		t.Fatal(err)
	}
	if err := fw.Flush(); err != nil {
		t.Fatal(err)
	}
	fr := NewFrameReader(&buf)
	f1, err := fr.Next()
	if err != nil || f1.Version != FrameV1 || string(f1.Payload) != "v1" {
		t.Fatalf("first = %+v, %v", f1, err)
	}
	f2, err := fr.Next()
	if err != nil || f2.Version != FrameV2 || f2.ID != 7 || string(f2.Payload) != "v2" {
		t.Fatalf("second = %+v, %v", f2, err)
	}
}

func TestFrameReaderRejectsBadVersion(t *testing.T) {
	var buf bytes.Buffer
	fw := NewFrameWriter(&buf)
	if err := fw.WriteFrame(1, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := fw.Flush(); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[4] = 9 // corrupt the version byte
	if _, err := NewFrameReader(bytes.NewReader(raw)).Next(); !errors.Is(err, ErrFrameVersion) {
		t.Errorf("err = %v, want ErrFrameVersion", err)
	}
}

func TestFrameReaderRejectsOversizedFrame(t *testing.T) {
	var buf bytes.Buffer
	fw := NewFrameWriter(&buf)
	if err := fw.WriteFrame(1, make([]byte, MaxFrame+1)); !errors.Is(err, ErrFrameTooLarge) {
		t.Errorf("write err = %v, want ErrFrameTooLarge", err)
	}
	// A corrupt v2 length word above the limit must be rejected too.
	raw := []byte{0x80 | 0x7f, 0xff, 0xff, 0xff, FrameV2, 0, 0, 0, 0, 0, 0, 0, 1}
	if _, err := NewFrameReader(bytes.NewReader(raw)).Next(); !errors.Is(err, ErrFrameTooLarge) {
		t.Errorf("read err = %v, want ErrFrameTooLarge", err)
	}
}

func TestFrameReaderTruncatedHeader(t *testing.T) {
	raw := []byte{0x80, 0x00, 0x00, 0x05, FrameV2} // v2 flag but id cut off
	if _, err := NewFrameReader(bytes.NewReader(raw)).Next(); err == nil {
		t.Error("truncated v2 header must error")
	}
}

func TestBufferPoolRoundTrip(t *testing.T) {
	b := GetBuffer()
	if len(b) != 0 {
		t.Errorf("pooled buffer has len %d", len(b))
	}
	b = append(b, strings.Repeat("x", 100)...)
	PutBuffer(b)
	hits, misses := PoolStats()
	if hits+misses == 0 {
		t.Error("pool stats not counting")
	}
	// Oversized buffers are dropped, not pooled.
	PutBuffer(make([]byte, maxPooledBuffer+1))
}

func TestMessageAppendToMatchesMarshal(t *testing.T) {
	m := &Message{
		Kind: KindRequest, ID: 99, Target: "t@node", Method: "send",
		Meta: map[string]string{"user": "Alice", "b": "2"}, Body: []byte("payload"),
	}
	direct, err := m.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	// The direct encoding must stay byte-identical to the generic map
	// encoding: coherence change detection hashes these bytes.
	generic, err := Marshal(map[string]any{
		"kind":   int64(m.Kind),
		"id":     int64(m.ID),
		"target": m.Target,
		"method": m.Method,
		"meta":   map[string]any{"user": "Alice", "b": "2"},
		"body":   m.Body,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(direct, generic) {
		t.Errorf("direct encoding diverges from generic map encoding\n direct: %x\ngeneric: %x", direct, generic)
	}
	back, err := UnmarshalMessage(direct)
	if err != nil {
		t.Fatal(err)
	}
	if back.ID != m.ID || back.Method != m.Method || back.Target != m.Target ||
		string(back.Body) != string(m.Body) || back.Meta["user"] != "Alice" {
		t.Errorf("round trip = %+v", back)
	}
}

func TestUnmarshalMessageSkipsUnknownFields(t *testing.T) {
	data, err := Marshal(map[string]any{
		"kind":   int64(KindRequest),
		"id":     int64(3),
		"target": "t",
		"method": "m",
		"meta":   map[string]any{},
		"body":   []byte{},
		"zzz":    []any{int64(1), "future"},
	})
	if err != nil {
		t.Fatal(err)
	}
	m, err := UnmarshalMessage(data)
	if err != nil {
		t.Fatal(err)
	}
	if m.Kind != KindRequest || m.ID != 3 {
		t.Errorf("m = %+v", m)
	}
}
