//go:build race

package wire

// raceEnabled reports that this binary was built with the race
// detector, whose sync.Pool instrumentation deliberately drops a
// quarter of Puts — which makes strict pool hit-rate assertions
// meaningless.
const raceEnabled = true
