// Package wire implements the framework's binary wire format: length-
// prefixed frames carrying tagged, self-describing values. It is the
// custom serialization layer that stands in for Java object mobility —
// component state snapshots, requests, and responses all travel in this
// encoding (see DESIGN.md, substitution table).
//
// The value encoding is a compact tagged union:
//
//	nil     0x00
//	bool    0x01 <0|1>
//	int64   0x02 <8 bytes big endian>
//	float64 0x03 <8 bytes IEEE 754 big endian>
//	string  0x04 <u32 len> <bytes>
//	bytes   0x05 <u32 len> <bytes>
//	list    0x06 <u32 count> <values...>
//	map     0x07 <u32 count> <string value, value>... (sorted by key)
//
// Maps encode sorted by key, so encoding is deterministic: equal values
// produce equal bytes, which the coherence layer relies on for change
// detection.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"sort"
)

// Value type tags.
const (
	tagNil    = 0x00
	tagBool   = 0x01
	tagInt    = 0x02
	tagFloat  = 0x03
	tagString = 0x04
	tagBytes  = 0x05
	tagList   = 0x06
	tagMap    = 0x07
)

// MaxFrame is the largest frame ReadFrame accepts by default: a guard
// against corrupt length prefixes allocating unbounded memory.
const MaxFrame = 16 << 20

// MaxDepth bounds value nesting on both encode and decode: a hostile
// frame of deeply nested lists must not blow the stack.
const MaxDepth = 64

// ErrFrameTooLarge reports a frame length prefix above the limit.
var ErrFrameTooLarge = errors.New("wire: frame exceeds size limit")

// ErrTruncated reports an encoding that ends mid-value.
var ErrTruncated = errors.New("wire: truncated value")

// ErrTooDeep reports value nesting beyond MaxDepth.
var ErrTooDeep = errors.New("wire: value nesting exceeds depth limit")

// ErrTooLong reports a string, byte slice, list, or map whose length
// does not fit the u32 length prefix (it would silently truncate on the
// wire otherwise).
var ErrTooLong = errors.New("wire: value length overflows u32 prefix")

// AppendValue appends the encoding of v to buf. Supported types: nil,
// bool, int/int32/int64, float64, string, []byte, []any, and
// map[string]any (recursively, at most MaxDepth deep). Unsupported
// types and lengths beyond the u32 prefix return an error.
func AppendValue(buf []byte, v any) ([]byte, error) {
	return appendValue(buf, v, 0)
}

func appendValue(buf []byte, v any, depth int) ([]byte, error) {
	if depth > MaxDepth {
		return nil, ErrTooDeep
	}
	switch x := v.(type) {
	case nil:
		return append(buf, tagNil), nil
	case bool:
		b := byte(0)
		if x {
			b = 1
		}
		return append(buf, tagBool, b), nil
	case int:
		return appendInt(buf, int64(x)), nil
	case int32:
		return appendInt(buf, int64(x)), nil
	case int64:
		return appendInt(buf, x), nil
	case float64:
		buf = append(buf, tagFloat)
		return binary.BigEndian.AppendUint64(buf, math.Float64bits(x)), nil
	case string:
		if uint64(len(x)) > math.MaxUint32 {
			return nil, fmt.Errorf("%w: string of %d bytes", ErrTooLong, len(x))
		}
		buf = append(buf, tagString)
		buf = binary.BigEndian.AppendUint32(buf, uint32(len(x)))
		return append(buf, x...), nil
	case []byte:
		if uint64(len(x)) > math.MaxUint32 {
			return nil, fmt.Errorf("%w: byte slice of %d bytes", ErrTooLong, len(x))
		}
		buf = append(buf, tagBytes)
		buf = binary.BigEndian.AppendUint32(buf, uint32(len(x)))
		return append(buf, x...), nil
	case []any:
		if uint64(len(x)) > math.MaxUint32 {
			return nil, fmt.Errorf("%w: list of %d items", ErrTooLong, len(x))
		}
		buf = append(buf, tagList)
		buf = binary.BigEndian.AppendUint32(buf, uint32(len(x)))
		var err error
		for _, item := range x {
			if buf, err = appendValue(buf, item, depth+1); err != nil {
				return nil, err
			}
		}
		return buf, nil
	case map[string]any:
		if uint64(len(x)) > math.MaxUint32 {
			return nil, fmt.Errorf("%w: map of %d entries", ErrTooLong, len(x))
		}
		buf = append(buf, tagMap)
		buf = binary.BigEndian.AppendUint32(buf, uint32(len(x)))
		keys := make([]string, 0, len(x))
		for k := range x {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		var err error
		for _, k := range keys {
			if buf, err = appendValue(buf, k, depth+1); err != nil {
				return nil, err
			}
			if buf, err = appendValue(buf, x[k], depth+1); err != nil {
				return nil, err
			}
		}
		return buf, nil
	default:
		return nil, fmt.Errorf("wire: unsupported type %T", v)
	}
}

func appendInt(buf []byte, x int64) []byte {
	buf = append(buf, tagInt)
	return binary.BigEndian.AppendUint64(buf, uint64(x))
}

// DecodeValue decodes one value from data, returning it and the
// remaining bytes. Strings and byte slices are copied, so the result
// does not alias data. Nesting beyond MaxDepth is rejected with
// ErrTooDeep, bounding stack use on hostile input.
func DecodeValue(data []byte) (v any, rest []byte, err error) {
	return decodeValue(data, 0)
}

func decodeValue(data []byte, depth int) (v any, rest []byte, err error) {
	if depth > MaxDepth {
		return nil, nil, ErrTooDeep
	}
	if len(data) == 0 {
		return nil, nil, ErrTruncated
	}
	tag, data := data[0], data[1:]
	switch tag {
	case tagNil:
		return nil, data, nil
	case tagBool:
		if len(data) < 1 {
			return nil, nil, ErrTruncated
		}
		switch data[0] {
		case 0:
			return false, data[1:], nil
		case 1:
			return true, data[1:], nil
		default:
			return nil, nil, fmt.Errorf("wire: invalid bool byte %#x", data[0])
		}
	case tagInt:
		if len(data) < 8 {
			return nil, nil, ErrTruncated
		}
		return int64(binary.BigEndian.Uint64(data)), data[8:], nil
	case tagFloat:
		if len(data) < 8 {
			return nil, nil, ErrTruncated
		}
		return math.Float64frombits(binary.BigEndian.Uint64(data)), data[8:], nil
	case tagString, tagBytes:
		if len(data) < 4 {
			return nil, nil, ErrTruncated
		}
		n := binary.BigEndian.Uint32(data)
		data = data[4:]
		if uint32(len(data)) < n {
			return nil, nil, ErrTruncated
		}
		payload := make([]byte, n)
		copy(payload, data[:n])
		if tag == tagString {
			return string(payload), data[n:], nil
		}
		return payload, data[n:], nil
	case tagList:
		if len(data) < 4 {
			return nil, nil, ErrTruncated
		}
		n := binary.BigEndian.Uint32(data)
		data = data[4:]
		out := make([]any, 0, min(int(n), 1024))
		for i := uint32(0); i < n; i++ {
			var item any
			item, data, err = decodeValue(data, depth+1)
			if err != nil {
				return nil, nil, err
			}
			out = append(out, item)
		}
		return out, data, nil
	case tagMap:
		if len(data) < 4 {
			return nil, nil, ErrTruncated
		}
		n := binary.BigEndian.Uint32(data)
		data = data[4:]
		out := make(map[string]any, min(int(n), 1024))
		for i := uint32(0); i < n; i++ {
			var kv, vv any
			kv, data, err = decodeValue(data, depth+1)
			if err != nil {
				return nil, nil, err
			}
			key, ok := kv.(string)
			if !ok {
				return nil, nil, fmt.Errorf("wire: map key has type %T, want string", kv)
			}
			vv, data, err = decodeValue(data, depth+1)
			if err != nil {
				return nil, nil, err
			}
			out[key] = vv
		}
		return out, data, nil
	default:
		return nil, nil, fmt.Errorf("wire: unknown tag %#x", tag)
	}
}

// Marshal encodes a single value to a fresh buffer.
func Marshal(v any) ([]byte, error) { return AppendValue(nil, v) }

// Unmarshal decodes a single value and requires the buffer to be fully
// consumed.
func Unmarshal(data []byte) (any, error) {
	v, rest, err := DecodeValue(data)
	if err != nil {
		return nil, err
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("wire: %d trailing bytes after value", len(rest))
	}
	return v, nil
}

// WriteFrame writes a length-prefixed frame to w.
func WriteFrame(w io.Writer, payload []byte) error {
	if len(payload) > MaxFrame {
		return ErrFrameTooLarge
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("wire: writing frame header: %w", err)
	}
	if _, err := w.Write(payload); err != nil {
		return fmt.Errorf("wire: writing frame payload: %w", err)
	}
	return nil
}

// ReadFrame reads one length-prefixed frame from r, rejecting frames
// larger than MaxFrame.
func ReadFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err // io.EOF passes through for clean close detection
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrame {
		return nil, ErrFrameTooLarge
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("wire: reading frame payload: %w", err)
	}
	return payload, nil
}
