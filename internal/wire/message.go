package wire

import "fmt"

// MsgKind distinguishes the message types exchanged by the Smock
// run-time and the transports.
type MsgKind uint8

// Message kinds.
const (
	// KindRequest is a client-to-component request.
	KindRequest MsgKind = 1
	// KindResponse answers a request (matching ID).
	KindResponse MsgKind = 2
	// KindError answers a request with a failure.
	KindError MsgKind = 3
	// KindInstall carries a component installation order to a node
	// wrapper: factory name, factored configuration and state snapshot.
	KindInstall MsgKind = 4
	// KindCoherence carries replica update batches between coherence
	// peers.
	KindCoherence MsgKind = 5
)

// String names the kind.
func (k MsgKind) String() string {
	switch k {
	case KindRequest:
		return "request"
	case KindResponse:
		return "response"
	case KindError:
		return "error"
	case KindInstall:
		return "install"
	case KindCoherence:
		return "coherence"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Message is the unit of communication between framework pieces: proxy
// to generic server, client component to provider, deployment engine to
// node wrapper, and replica to coherence directory.
type Message struct {
	// Kind is the message type.
	Kind MsgKind
	// ID correlates responses with requests.
	ID uint64
	// Target names the destination component instance or service.
	Target string
	// Method is the operation being invoked.
	Method string
	// Meta carries string metadata (credentials, property bindings).
	Meta map[string]string
	// Body is the operation payload, opaque to the transport.
	Body []byte
}

// Marshal encodes the message with the wire value encoding.
func (m *Message) Marshal() ([]byte, error) {
	meta := make(map[string]any, len(m.Meta))
	for k, v := range m.Meta {
		meta[k] = v
	}
	return Marshal(map[string]any{
		"kind":   int64(m.Kind),
		"id":     int64(m.ID),
		"target": m.Target,
		"method": m.Method,
		"meta":   meta,
		"body":   m.Body,
	})
}

// UnmarshalMessage decodes a message encoded by Marshal.
func UnmarshalMessage(data []byte) (*Message, error) {
	v, err := Unmarshal(data)
	if err != nil {
		return nil, err
	}
	fields, ok := v.(map[string]any)
	if !ok {
		return nil, fmt.Errorf("wire: message is %T, want map", v)
	}
	m := &Message{}
	if kind, ok := fields["kind"].(int64); ok {
		m.Kind = MsgKind(kind)
	} else {
		return nil, fmt.Errorf("wire: message missing kind")
	}
	if id, ok := fields["id"].(int64); ok {
		m.ID = uint64(id)
	}
	m.Target, _ = fields["target"].(string)
	m.Method, _ = fields["method"].(string)
	if meta, ok := fields["meta"].(map[string]any); ok && len(meta) > 0 {
		m.Meta = make(map[string]string, len(meta))
		for k, mv := range meta {
			s, ok := mv.(string)
			if !ok {
				return nil, fmt.Errorf("wire: meta %q has type %T, want string", k, mv)
			}
			m.Meta[k] = s
		}
	}
	if body, ok := fields["body"].([]byte); ok && len(body) > 0 {
		m.Body = body
	}
	return m, nil
}
