package wire

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"
)

// MsgKind distinguishes the message types exchanged by the Smock
// run-time and the transports.
type MsgKind uint8

// Message kinds.
const (
	// KindRequest is a client-to-component request.
	KindRequest MsgKind = 1
	// KindResponse answers a request (matching ID).
	KindResponse MsgKind = 2
	// KindError answers a request with a failure.
	KindError MsgKind = 3
	// KindInstall carries a component installation order to a node
	// wrapper: factory name, factored configuration and state snapshot.
	KindInstall MsgKind = 4
	// KindCoherence carries replica update batches between coherence
	// peers.
	KindCoherence MsgKind = 5
)

// String names the kind.
func (k MsgKind) String() string {
	switch k {
	case KindRequest:
		return "request"
	case KindResponse:
		return "response"
	case KindError:
		return "error"
	case KindInstall:
		return "install"
	case KindCoherence:
		return "coherence"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Message is the unit of communication between framework pieces: proxy
// to generic server, client component to provider, deployment engine to
// node wrapper, and replica to coherence directory.
type Message struct {
	// Kind is the message type.
	Kind MsgKind
	// ID correlates responses with requests at the application level.
	// (Multiplexed transports additionally correlate by frame-level
	// request ID, so handlers remain free to use ID as they always
	// have.)
	ID uint64
	// Target names the destination component instance or service.
	Target string
	// Method is the operation being invoked.
	Method string
	// Meta carries string metadata (credentials, property bindings).
	Meta map[string]string
	// Body is the operation payload, opaque to the transport.
	Body []byte
	// TraceID and SpanID carry the request-tracing context across RPC
	// boundaries. They ride in an optional "trace" field emitted only
	// when TraceID is non-zero, so untraced messages encode
	// byte-identically to the pre-tracing format — and peers that
	// predate tracing (v1 or older v2 decoders) skip the field via the
	// unknown-field path without seeing any difference.
	TraceID uint64
	SpanID  uint64

	// slab backs zero-copy decoded messages (UnmarshalMessageSlab):
	// the fields above alias its buffer until Release. Nil for
	// messages decoded by UnmarshalMessage or built by hand.
	slab *Slab
}

// Message field keys in their wire order. The encoding is the generic
// map encoding (sorted keys), emitted directly so the hot path builds
// no intermediate map[string]any.
const (
	keyBody   = "body"
	keyID     = "id"
	keyKind   = "kind"
	keyMeta   = "meta"
	keyMethod = "method"
	keyTarget = "target"
	keyTrace  = "trace" // optional; sorts after "target"
)

// traceFieldLen is the payload of the optional trace field: big-endian
// trace ID followed by big-endian span ID.
const traceFieldLen = 16

func appendKeyedString(buf []byte, key string) []byte {
	buf = append(buf, tagString)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(key)))
	return append(buf, key...)
}

// checkLengths rejects any field whose u32 length prefix would
// overflow. All checks run before AppendTo writes a byte, so a failed
// encode leaves buf untouched.
func (m *Message) checkLengths() error {
	if uint64(len(m.Body)) > math.MaxUint32 {
		return fmt.Errorf("%w: message body of %d bytes", ErrTooLong, len(m.Body))
	}
	if uint64(len(m.Target)) > math.MaxUint32 {
		return fmt.Errorf("%w: message target of %d bytes", ErrTooLong, len(m.Target))
	}
	if uint64(len(m.Method)) > math.MaxUint32 {
		return fmt.Errorf("%w: message method of %d bytes", ErrTooLong, len(m.Method))
	}
	for k, v := range m.Meta {
		if uint64(len(k)) > math.MaxUint32 {
			return fmt.Errorf("%w: message meta key of %d bytes", ErrTooLong, len(k))
		}
		if uint64(len(v)) > math.MaxUint32 {
			return fmt.Errorf("%w: message meta value of %d bytes", ErrTooLong, len(v))
		}
	}
	return nil
}

// AppendTo appends the message encoding to buf (which may come from
// GetBuffer), producing exactly the bytes Marshal produces. On error
// buf is returned unmodified, so pooled buffers stay recyclable.
func (m *Message) AppendTo(buf []byte) ([]byte, error) {
	if err := m.checkLengths(); err != nil {
		return buf, err
	}
	fields := uint32(6)
	if m.TraceID != 0 {
		fields = 7
	}
	buf = append(buf, tagMap)
	buf = binary.BigEndian.AppendUint32(buf, fields)

	buf = appendKeyedString(buf, keyBody)
	buf = append(buf, tagBytes)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(m.Body)))
	buf = append(buf, m.Body...)

	buf = appendKeyedString(buf, keyID)
	buf = appendInt(buf, int64(m.ID))

	buf = appendKeyedString(buf, keyKind)
	buf = appendInt(buf, int64(m.Kind))

	buf = appendKeyedString(buf, keyMeta)
	buf = append(buf, tagMap)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(m.Meta)))
	if len(m.Meta) > 0 {
		keys := make([]string, 0, len(m.Meta))
		for k := range m.Meta {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			buf = appendKeyedString(buf, k)
			buf = appendKeyedString(buf, m.Meta[k])
		}
	}

	buf = appendKeyedString(buf, keyMethod)
	buf = appendKeyedString(buf, m.Method)

	buf = appendKeyedString(buf, keyTarget)
	buf = appendKeyedString(buf, m.Target)

	if m.TraceID != 0 {
		buf = appendKeyedString(buf, keyTrace)
		buf = append(buf, tagBytes)
		buf = binary.BigEndian.AppendUint32(buf, traceFieldLen)
		buf = binary.BigEndian.AppendUint64(buf, m.TraceID)
		buf = binary.BigEndian.AppendUint64(buf, m.SpanID)
	}
	return buf, nil
}

// Marshal encodes the message with the wire value encoding.
func (m *Message) Marshal() ([]byte, error) { return m.AppendTo(nil) }

// decodeStringField decodes a tagString value without boxing it in an
// interface.
func decodeStringField(data []byte) (string, []byte, error) {
	if len(data) < 5 || data[0] != tagString {
		return "", nil, fmt.Errorf("wire: expected string value")
	}
	n := binary.BigEndian.Uint32(data[1:5])
	data = data[5:]
	if uint32(len(data)) < n {
		return "", nil, ErrTruncated
	}
	return string(data[:n]), data[n:], nil
}

func decodeIntField(data []byte) (int64, []byte, error) {
	if len(data) < 9 || data[0] != tagInt {
		return 0, nil, fmt.Errorf("wire: expected int value")
	}
	return int64(binary.BigEndian.Uint64(data[1:9])), data[9:], nil
}

// UnmarshalMessage decodes a message encoded by Marshal. The field
// values are decoded in place (no intermediate generic map), so data
// buffers can be pooled: the returned message does not alias data.
func UnmarshalMessage(data []byte) (*Message, error) {
	if len(data) < 5 || data[0] != tagMap {
		// Not a map at the top level: fall back to the generic decoder
		// for its precise error messages.
		v, err := Unmarshal(data)
		if err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("wire: message is %T, want map", v)
	}
	count := binary.BigEndian.Uint32(data[1:5])
	data = data[5:]
	m := &Message{}
	sawKind := false
	for i := uint32(0); i < count; i++ {
		key, rest, err := decodeStringField(data)
		if err != nil {
			return nil, fmt.Errorf("wire: message key: %w", err)
		}
		data = rest
		switch key {
		case keyKind:
			var k int64
			if k, data, err = decodeIntField(data); err != nil {
				return nil, fmt.Errorf("wire: message kind: %w", err)
			}
			m.Kind = MsgKind(k)
			sawKind = true
		case keyID:
			var id int64
			if id, data, err = decodeIntField(data); err != nil {
				return nil, fmt.Errorf("wire: message id: %w", err)
			}
			m.ID = uint64(id)
		case keyTarget:
			if m.Target, data, err = decodeStringField(data); err != nil {
				return nil, fmt.Errorf("wire: message target: %w", err)
			}
		case keyMethod:
			if m.Method, data, err = decodeStringField(data); err != nil {
				return nil, fmt.Errorf("wire: message method: %w", err)
			}
		case keyMeta:
			if len(data) < 5 || data[0] != tagMap {
				return nil, fmt.Errorf("wire: message meta is not a map")
			}
			n := binary.BigEndian.Uint32(data[1:5])
			data = data[5:]
			if n > 0 {
				// Cap the size hint as the generic decoder does: a
				// hostile count must not preallocate gigabytes before
				// the truncation check can reject it.
				m.Meta = make(map[string]string, min(int(n), 1024))
			}
			for j := uint32(0); j < n; j++ {
				var mk, mv string
				if mk, data, err = decodeStringField(data); err != nil {
					return nil, fmt.Errorf("wire: meta key: %w", err)
				}
				if mv, data, err = decodeStringField(data); err != nil {
					return nil, fmt.Errorf("wire: meta %q has non-string value", mk)
				}
				m.Meta[mk] = mv
			}
		case keyBody:
			if len(data) < 5 || data[0] != tagBytes {
				return nil, fmt.Errorf("wire: message body is not bytes")
			}
			n := binary.BigEndian.Uint32(data[1:5])
			data = data[5:]
			if uint32(len(data)) < n {
				return nil, ErrTruncated
			}
			if n > 0 {
				m.Body = make([]byte, n)
				copy(m.Body, data[:n])
			}
			data = data[n:]
		case keyTrace:
			// Optional trace context. Unexpected shapes (a future
			// revision widening the field) are skipped, not rejected —
			// the same leniency older decoders extend to us.
			if len(data) >= 5 && data[0] == tagBytes &&
				binary.BigEndian.Uint32(data[1:5]) == traceFieldLen &&
				uint32(len(data)-5) >= traceFieldLen {
				m.TraceID = binary.BigEndian.Uint64(data[5:13])
				m.SpanID = binary.BigEndian.Uint64(data[13:21])
				data = data[5+traceFieldLen:]
				break
			}
			var rest []byte
			if _, rest, err = DecodeValue(data); err != nil {
				return nil, fmt.Errorf("wire: message field %q: %w", key, err)
			}
			data = rest
		default:
			// Forward compatibility: skip unknown fields.
			var rest []byte
			if _, rest, err = DecodeValue(data); err != nil {
				return nil, fmt.Errorf("wire: message field %q: %w", key, err)
			}
			data = rest
		}
	}
	if len(data) != 0 {
		return nil, fmt.Errorf("wire: %d trailing bytes after value", len(data))
	}
	if !sawKind {
		return nil, fmt.Errorf("wire: message missing kind")
	}
	return m, nil
}
