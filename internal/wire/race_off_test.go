//go:build !race

package wire

const raceEnabled = false
