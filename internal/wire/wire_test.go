package wire

import (
	"bytes"
	"errors"
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func roundTrip(t *testing.T, v any) any {
	t.Helper()
	data, err := Marshal(v)
	if err != nil {
		t.Fatalf("Marshal(%v): %v", v, err)
	}
	got, err := Unmarshal(data)
	if err != nil {
		t.Fatalf("Unmarshal(%v): %v", v, err)
	}
	return got
}

func TestScalarRoundTrips(t *testing.T) {
	cases := []any{
		nil, true, false,
		int64(0), int64(-1), int64(math.MaxInt64), int64(math.MinInt64),
		0.0, 3.14159, math.Inf(1), math.Inf(-1),
		"", "hello", "unicode: héllo – 日本",
		[]byte{}, []byte{0, 1, 2, 255},
	}
	for _, v := range cases {
		got := roundTrip(t, v)
		if !reflect.DeepEqual(got, v) {
			t.Errorf("round trip %#v -> %#v", v, got)
		}
	}
}

func TestIntsNormalizeToInt64(t *testing.T) {
	if got := roundTrip(t, 42); got != int64(42) {
		t.Errorf("int -> %#v", got)
	}
	if got := roundTrip(t, int32(-7)); got != int64(-7) {
		t.Errorf("int32 -> %#v", got)
	}
}

func TestNaNRoundTrips(t *testing.T) {
	got := roundTrip(t, math.NaN())
	f, ok := got.(float64)
	if !ok || !math.IsNaN(f) {
		t.Errorf("NaN -> %#v", got)
	}
}

func TestCompositeRoundTrips(t *testing.T) {
	v := map[string]any{
		"list":   []any{int64(1), "two", 3.0, nil, true},
		"nested": map[string]any{"a": []byte{9}, "b": []any{}},
		"empty":  map[string]any{},
	}
	got := roundTrip(t, v)
	if !reflect.DeepEqual(got, v) {
		t.Errorf("composite round trip:\n got %#v\nwant %#v", got, v)
	}
}

func TestMapEncodingDeterministic(t *testing.T) {
	v := map[string]any{"z": int64(1), "a": int64(2), "m": int64(3)}
	a, err := Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Marshal(map[string]any{"m": int64(3), "z": int64(1), "a": int64(2)})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Error("map encoding must be key-sorted and deterministic")
	}
}

func TestUnsupportedTypeErrors(t *testing.T) {
	if _, err := Marshal(struct{}{}); err == nil {
		t.Error("struct must be rejected")
	}
	if _, err := Marshal([]any{make(chan int)}); err == nil {
		t.Error("nested unsupported type must be rejected")
	}
	if _, err := Marshal(map[string]any{"k": uint64(1)}); err == nil {
		t.Error("uint64 is unsupported and must be rejected")
	}
}

func TestDecodeErrors(t *testing.T) {
	cases := map[string][]byte{
		"empty":            {},
		"bad tag":          {0x7f},
		"truncated int":    {tagInt, 1, 2},
		"truncated string": {tagString, 0, 0, 0, 9, 'h', 'i'},
		"bad bool":         {tagBool, 2},
		"short list count": {tagList, 0, 0},
		"list item trunc":  {tagList, 0, 0, 0, 1},
		"map non-string":   {tagMap, 0, 0, 0, 1, tagInt, 0, 0, 0, 0, 0, 0, 0, 1, tagNil},
	}
	for name, data := range cases {
		if _, err := Unmarshal(data); err == nil {
			t.Errorf("%s: expected decode error", name)
		}
	}
	// Trailing garbage after a valid value.
	data, _ := Marshal(int64(1))
	if _, err := Unmarshal(append(data, 0xff)); err == nil {
		t.Error("trailing bytes must be rejected")
	}
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payloads := [][]byte{{}, {1}, bytes.Repeat([]byte{0xab}, 100000)}
	for _, p := range payloads {
		if err := WriteFrame(&buf, p); err != nil {
			t.Fatal(err)
		}
	}
	for _, want := range payloads {
		got, err := ReadFrame(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("frame mismatch: %d vs %d bytes", len(got), len(want))
		}
	}
	if _, err := ReadFrame(&buf); err == nil {
		t.Error("exhausted reader must return an error")
	}
}

func TestFrameTooLarge(t *testing.T) {
	var buf bytes.Buffer
	buf.Write([]byte{0xff, 0xff, 0xff, 0xff})
	if _, err := ReadFrame(&buf); !errors.Is(err, ErrFrameTooLarge) {
		t.Errorf("err = %v, want ErrFrameTooLarge", err)
	}
	if err := WriteFrame(&buf, make([]byte, MaxFrame+1)); !errors.Is(err, ErrFrameTooLarge) {
		t.Errorf("write err = %v, want ErrFrameTooLarge", err)
	}
}

func TestMessageRoundTrip(t *testing.T) {
	m := &Message{
		Kind:   KindRequest,
		ID:     42,
		Target: "ViewMailServer@sd-2",
		Method: "send",
		Meta:   map[string]string{"user": "Alice", "sensitivity": "3"},
		Body:   []byte("encrypted-payload"),
	}
	data, err := m.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalMessage(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, m) {
		t.Errorf("message round trip:\n got %#v\nwant %#v", got, m)
	}
}

func TestMessageMinimal(t *testing.T) {
	m := &Message{Kind: KindResponse}
	data, err := m.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalMessage(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Kind != KindResponse || got.Meta != nil || got.Body != nil {
		t.Errorf("minimal message = %#v", got)
	}
}

func TestUnmarshalMessageErrors(t *testing.T) {
	if _, err := UnmarshalMessage([]byte{0x7f}); err == nil {
		t.Error("garbage must fail")
	}
	data, _ := Marshal(int64(1))
	if _, err := UnmarshalMessage(data); err == nil {
		t.Error("non-map must fail")
	}
	data, _ = Marshal(map[string]any{"id": int64(1)})
	if _, err := UnmarshalMessage(data); err == nil {
		t.Error("missing kind must fail")
	}
	data, _ = Marshal(map[string]any{"kind": int64(1), "meta": map[string]any{"k": int64(5)}})
	if _, err := UnmarshalMessage(data); err == nil {
		t.Error("non-string meta must fail")
	}
}

func TestMsgKindString(t *testing.T) {
	for k, want := range map[MsgKind]string{
		KindRequest: "request", KindResponse: "response", KindError: "error",
		KindInstall: "install", KindCoherence: "coherence", MsgKind(99): "kind(99)",
	} {
		if got := k.String(); got != want {
			t.Errorf("MsgKind(%d) = %q, want %q", k, got, want)
		}
	}
}

// randomWireValue builds an arbitrary encodable value with bounded depth.
func randomWireValue(r *rand.Rand, depth int) any {
	n := 6
	if depth > 0 {
		n = 8
	}
	switch r.Intn(n) {
	case 0:
		return nil
	case 1:
		return r.Intn(2) == 0
	case 2:
		return int64(r.Uint64())
	case 3:
		return r.NormFloat64()
	case 4:
		b := make([]byte, r.Intn(16))
		r.Read(b)
		return string(b)
	case 5:
		b := make([]byte, r.Intn(16))
		r.Read(b)
		return b
	case 6:
		out := make([]any, r.Intn(4))
		for i := range out {
			out[i] = randomWireValue(r, depth-1)
		}
		return out
	default:
		out := make(map[string]any, 3)
		for i := 0; i < r.Intn(4); i++ {
			out[string(rune('a'+i))] = randomWireValue(r, depth-1)
		}
		return out
	}
}

type wireGen struct{ V any }

// Generate implements quick.Generator.
func (wireGen) Generate(r *rand.Rand, _ int) reflect.Value {
	return reflect.ValueOf(wireGen{V: randomWireValue(r, 3)})
}

// TestQuickRoundTrip: arbitrary values survive encode/decode.
func TestQuickRoundTrip(t *testing.T) {
	f := func(g wireGen) bool {
		data, err := Marshal(g.V)
		if err != nil {
			return false
		}
		got, err := Unmarshal(data)
		if err != nil {
			return false
		}
		// NaN breaks DeepEqual; re-encode instead: deterministic
		// encoding means equal values encode identically.
		data2, err := Marshal(got)
		return err == nil && bytes.Equal(data, data2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestQuickDecodeNeverPanics: random bytes must error, not panic.
func TestQuickDecodeNeverPanics(t *testing.T) {
	f := func(data []byte) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		_, _ = Unmarshal(data)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}
