package wire

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
)

// Framing, version 2.
//
// The v1 frame format is a bare length prefix:
//
//	[u32 payload length][payload]
//
// v2 frames carry a transport-level request ID so responses can return
// out of order over one multiplexed connection:
//
//	[u32 word = 0x80000000 | payload length][u8 version=2][u64 request id][payload]
//
// The high bit of the length word marks a v2 frame. v1 payload lengths
// are bounded by MaxFrame (16 MiB), so the bit is never set in a legacy
// frame and a v2 reader decodes both formats transparently; v1 frames
// report request ID 0. Compatibility is bidirectional: servers echo the
// request's frame version in the response (WriteFrameV1), so a legacy
// v1 peer — whose reader rejects the v2 flag bit — can still read its
// answers. Readers and writers are bufio-backed, so a header+payload
// pair reaches the kernel in one write.

const (
	// FrameV1 is the legacy unversioned framing (length prefix only).
	FrameV1 = 1
	// FrameV2 is the multiplexed framing with request IDs.
	FrameV2 = 2

	frameV2Flag   = 0x80000000
	frameV2HdrLen = 1 + 8 // version byte + request id
)

// ErrFrameVersion reports a v2-flagged frame with an unknown version
// byte.
var ErrFrameVersion = errors.New("wire: unsupported frame version")

// Frame is one decoded frame. Payload may come from the shared buffer
// pool; callers done with it should hand it back via PutBuffer.
type Frame struct {
	// ID is the transport-level request ID (0 for v1 frames).
	ID uint64
	// Version is the frame format version (FrameV1 or FrameV2).
	Version uint8
	// Payload is the framed message bytes.
	Payload []byte
}

// FrameReader decodes v1 and v2 frames from a buffered stream.
type FrameReader struct {
	br *bufio.Reader
}

// NewFrameReader returns a FrameReader over r.
func NewFrameReader(r io.Reader) *FrameReader {
	return &FrameReader{br: bufio.NewReaderSize(r, 32<<10)}
}

// Next reads one frame. The payload buffer is drawn from the shared
// pool; return it with PutBuffer once decoded. io.EOF passes through
// unwrapped on a clean close between frames.
func (fr *FrameReader) Next() (Frame, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(fr.br, hdr[:]); err != nil {
		return Frame{}, err
	}
	word := binary.BigEndian.Uint32(hdr[:])
	f := Frame{Version: FrameV1}
	n := word
	if word&frameV2Flag != 0 {
		n = word &^ frameV2Flag
		var ext [frameV2HdrLen]byte
		if _, err := io.ReadFull(fr.br, ext[:]); err != nil {
			return Frame{}, fmt.Errorf("wire: reading frame header: %w", err)
		}
		if ext[0] != FrameV2 {
			return Frame{}, fmt.Errorf("%w: %d", ErrFrameVersion, ext[0])
		}
		f.Version = FrameV2
		f.ID = binary.BigEndian.Uint64(ext[1:])
	}
	if n > MaxFrame {
		return Frame{}, ErrFrameTooLarge
	}
	payload := GetBuffer()
	if cap(payload) < int(n) {
		PutBuffer(payload) // too small for this frame: recycle, don't leak
		payload = make([]byte, n)
	} else {
		payload = payload[:n]
	}
	if _, err := io.ReadFull(fr.br, payload); err != nil {
		PutBuffer(payload)
		return Frame{}, fmt.Errorf("wire: reading frame payload: %w", err)
	}
	f.Payload = payload
	return f, nil
}

// FrameWriter encodes v2 frames onto a buffered stream. It is not safe
// for concurrent use; transports own one writer goroutine per
// connection.
type FrameWriter struct {
	bw *bufio.Writer
}

// NewFrameWriter returns a FrameWriter over w.
func NewFrameWriter(w io.Writer) *FrameWriter {
	return &FrameWriter{bw: bufio.NewWriterSize(w, 32<<10)}
}

// WriteFrame buffers one v2 frame. Call Flush to push buffered frames
// to the underlying writer in a single syscall.
func (fw *FrameWriter) WriteFrame(id uint64, payload []byte) error {
	if len(payload) > MaxFrame {
		return ErrFrameTooLarge
	}
	var hdr [4 + frameV2HdrLen]byte
	binary.BigEndian.PutUint32(hdr[:4], uint32(len(payload))|frameV2Flag)
	hdr[4] = FrameV2
	binary.BigEndian.PutUint64(hdr[5:], id)
	if _, err := fw.bw.Write(hdr[:]); err != nil {
		return fmt.Errorf("wire: writing frame header: %w", err)
	}
	if _, err := fw.bw.Write(payload); err != nil {
		return fmt.Errorf("wire: writing frame payload: %w", err)
	}
	return nil
}

// WriteFrameV1 buffers one legacy v1 frame: a bare length prefix with
// no version byte or request ID. Servers use it to answer v1 requests,
// whose senders cannot decode the v2 flag bit.
func (fw *FrameWriter) WriteFrameV1(payload []byte) error {
	if len(payload) > MaxFrame {
		return ErrFrameTooLarge
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := fw.bw.Write(hdr[:]); err != nil {
		return fmt.Errorf("wire: writing frame header: %w", err)
	}
	if _, err := fw.bw.Write(payload); err != nil {
		return fmt.Errorf("wire: writing frame payload: %w", err)
	}
	return nil
}

// Flush pushes all buffered frames to the underlying writer.
func (fw *FrameWriter) Flush() error { return fw.bw.Flush() }

// Buffered reports the number of bytes waiting for a Flush.
func (fw *FrameWriter) Buffered() int { return fw.bw.Buffered() }

// Encode buffer pool. Marshaling on the hot RPC path draws scratch
// buffers from here instead of allocating; the hit/miss counters feed
// the transport metrics (pool hit rate).
const maxPooledBuffer = 1 << 20

var (
	bufPool              sync.Pool // holds *[]byte
	poolHits, poolMisses atomic.Uint64
)

// GetBuffer returns a zero-length scratch buffer from the pool.
func GetBuffer() []byte {
	if p, ok := bufPool.Get().(*[]byte); ok {
		poolHits.Add(1)
		return (*p)[:0]
	}
	poolMisses.Add(1)
	return make([]byte, 0, 4096)
}

// PutBuffer returns a buffer to the pool. Oversized buffers are dropped
// so one huge frame does not pin memory forever.
func PutBuffer(b []byte) {
	if cap(b) == 0 || cap(b) > maxPooledBuffer {
		return
	}
	b = b[:0]
	bufPool.Put(&b)
}

// PoolStats reports cumulative buffer pool hits and misses.
func PoolStats() (hits, misses uint64) {
	return poolHits.Load(), poolMisses.Load()
}

// PoolSnapshot is a point-in-time copy of the buffer pool counters.
// The pool is process-wide (shared by every transport in the process),
// so its numbers belong in a process-wide stats section, never in a
// per-transport one.
type PoolSnapshot struct {
	Hits   uint64
	Misses uint64
}

// SnapshotPool captures the process-wide buffer pool counters.
func SnapshotPool() PoolSnapshot {
	return PoolSnapshot{Hits: poolHits.Load(), Misses: poolMisses.Load()}
}

// HitRate returns the pool hit fraction (0 when unused).
func (p PoolSnapshot) HitRate() float64 {
	total := p.Hits + p.Misses
	if total == 0 {
		return 0
	}
	return float64(p.Hits) / float64(total)
}
