package wire

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Framing, version 2.
//
// The v1 frame format is a bare length prefix:
//
//	[u32 payload length][payload]
//
// v2 frames carry a transport-level request ID so responses can return
// out of order over one multiplexed connection:
//
//	[u32 word = 0x80000000 | payload length][u8 version=2][u64 request id][payload]
//
// The high bit of the length word marks a v2 frame. v1 payload lengths
// are bounded by MaxFrame (16 MiB), so the bit is never set in a legacy
// frame and a v2 reader decodes both formats transparently; v1 frames
// report request ID 0. Compatibility is bidirectional: servers echo the
// request's frame version in the response (WriteFrameV1), so a legacy
// v1 peer — whose reader rejects the v2 flag bit — can still read its
// answers. Readers and writers are bufio-backed, so a header+payload
// pair reaches the kernel in one write.

const (
	// FrameV1 is the legacy unversioned framing (length prefix only).
	FrameV1 = 1
	// FrameV2 is the multiplexed framing with request IDs.
	FrameV2 = 2

	frameV2Flag   = 0x80000000
	frameV2HdrLen = 1 + 8 // version byte + request id

	// FrameHeaderLenV2 and FrameHeaderLenV1 are the on-wire header
	// sizes, exported for transports that account bytes or build
	// headers themselves (AppendFrameHeader).
	FrameHeaderLenV2 = 4 + frameV2HdrLen
	FrameHeaderLenV1 = 4
)

// ErrFrameVersion reports a v2-flagged frame with an unknown version
// byte.
var ErrFrameVersion = errors.New("wire: unsupported frame version")

// Frame is one decoded frame. Payload may come from the shared buffer
// pool; callers done with it should hand it back via PutBuffer.
type Frame struct {
	// ID is the transport-level request ID (0 for v1 frames).
	ID uint64
	// Version is the frame format version (FrameV1 or FrameV2).
	Version uint8
	// Payload is the framed message bytes.
	Payload []byte
}

// FrameReader decodes v1 and v2 frames from a buffered stream.
type FrameReader struct {
	br *bufio.Reader
	// scratch backs the fixed-size header reads; a local array would
	// escape through the io.ReadFull interface call and cost one heap
	// allocation per frame.
	scratch [4 + frameV2HdrLen]byte
}

// NewFrameReader returns a FrameReader over r.
func NewFrameReader(r io.Reader) *FrameReader {
	return &FrameReader{br: bufio.NewReaderSize(r, 32<<10)}
}

// Next reads one frame. The payload buffer is drawn from the shared
// pool; return it with PutBuffer once decoded. io.EOF passes through
// unwrapped on a clean close between frames.
func (fr *FrameReader) Next() (Frame, error) {
	hdr := fr.scratch[:4]
	if _, err := io.ReadFull(fr.br, hdr); err != nil {
		return Frame{}, err
	}
	word := binary.BigEndian.Uint32(hdr)
	f := Frame{Version: FrameV1}
	n := word
	if word&frameV2Flag != 0 {
		n = word &^ frameV2Flag
		ext := fr.scratch[4 : 4+frameV2HdrLen]
		if _, err := io.ReadFull(fr.br, ext); err != nil {
			return Frame{}, fmt.Errorf("wire: reading frame header: %w", err)
		}
		if ext[0] != FrameV2 {
			return Frame{}, fmt.Errorf("%w: %d", ErrFrameVersion, ext[0])
		}
		f.Version = FrameV2
		f.ID = binary.BigEndian.Uint64(ext[1:])
	}
	if n > MaxFrame {
		return Frame{}, ErrFrameTooLarge
	}
	payload := GetBufferSize(int(n))[:n]
	if _, err := io.ReadFull(fr.br, payload); err != nil {
		PutBuffer(payload)
		return Frame{}, fmt.Errorf("wire: reading frame payload: %w", err)
	}
	f.Payload = payload
	return f, nil
}

// FrameWriter encodes v2 frames onto a buffered stream. It is not safe
// for concurrent use; transports own one writer goroutine per
// connection.
type FrameWriter struct {
	bw *bufio.Writer
}

// NewFrameWriter returns a FrameWriter over w.
func NewFrameWriter(w io.Writer) *FrameWriter {
	return &FrameWriter{bw: bufio.NewWriterSize(w, 32<<10)}
}

// WriteFrame buffers one v2 frame. Call Flush to push buffered frames
// to the underlying writer in a single syscall.
func (fw *FrameWriter) WriteFrame(id uint64, payload []byte) error {
	if len(payload) > MaxFrame {
		return ErrFrameTooLarge
	}
	var hdr [4 + frameV2HdrLen]byte
	binary.BigEndian.PutUint32(hdr[:4], uint32(len(payload))|frameV2Flag)
	hdr[4] = FrameV2
	binary.BigEndian.PutUint64(hdr[5:], id)
	if _, err := fw.bw.Write(hdr[:]); err != nil {
		return fmt.Errorf("wire: writing frame header: %w", err)
	}
	if _, err := fw.bw.Write(payload); err != nil {
		return fmt.Errorf("wire: writing frame payload: %w", err)
	}
	return nil
}

// WriteFrameV1 buffers one legacy v1 frame: a bare length prefix with
// no version byte or request ID. Servers use it to answer v1 requests,
// whose senders cannot decode the v2 flag bit.
func (fw *FrameWriter) WriteFrameV1(payload []byte) error {
	if len(payload) > MaxFrame {
		return ErrFrameTooLarge
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := fw.bw.Write(hdr[:]); err != nil {
		return fmt.Errorf("wire: writing frame header: %w", err)
	}
	if _, err := fw.bw.Write(payload); err != nil {
		return fmt.Errorf("wire: writing frame payload: %w", err)
	}
	return nil
}

// Flush pushes all buffered frames to the underlying writer.
func (fw *FrameWriter) Flush() error { return fw.bw.Flush() }

// Buffered reports the number of bytes waiting for a Flush.
func (fw *FrameWriter) Buffered() int { return fw.bw.Buffered() }

// AppendFrameHeader appends the v2 frame header (length word with the
// v2 flag, version byte, request ID) for a payload of n bytes. The
// scatter-gather write path builds headers into one scratch buffer and
// writevs them alongside the payloads, so a burst of frames reaches
// the kernel in a single syscall with zero intermediate copies.
func AppendFrameHeader(dst []byte, id uint64, n int) []byte {
	dst = binary.BigEndian.AppendUint32(dst, uint32(n)|frameV2Flag)
	dst = append(dst, FrameV2)
	return binary.BigEndian.AppendUint64(dst, id)
}

// AppendFrameHeaderV1 appends the legacy v1 header (bare length
// prefix) for a payload of n bytes.
func AppendFrameHeaderV1(dst []byte, n int) []byte {
	return binary.BigEndian.AppendUint32(dst, uint32(n))
}

// The encode/decode buffer pool lives in pool.go (size-classed).
