package wire

import (
	"errors"
	"strings"
	"testing"
)

// deeplyNestedList encodes n nested single-element lists around an int.
func deeplyNestedList(n int) []byte {
	buf := make([]byte, 0, 5*n+9)
	for i := 0; i < n; i++ {
		buf = append(buf, tagList, 0, 0, 0, 1)
	}
	return append(buf, tagInt, 0, 0, 0, 0, 0, 0, 0, 42)
}

func TestDecodeValueDepthGuard(t *testing.T) {
	if _, _, err := DecodeValue(deeplyNestedList(MaxDepth - 1)); err != nil {
		t.Errorf("nesting below the limit must decode: %v", err)
	}
	// A frame nested 100k deep must fail cleanly, not blow the stack.
	if _, _, err := DecodeValue(deeplyNestedList(100000)); !errors.Is(err, ErrTooDeep) {
		t.Errorf("err = %v, want ErrTooDeep", err)
	}
}

func TestAppendValueDepthGuard(t *testing.T) {
	v := any(int64(1))
	for i := 0; i < MaxDepth+2; i++ {
		v = []any{v}
	}
	if _, err := AppendValue(nil, v); !errors.Is(err, ErrTooDeep) {
		t.Errorf("err = %v, want ErrTooDeep", err)
	}
}

func TestDepthGuardRoundTripAtLimit(t *testing.T) {
	v := any(int64(7))
	for i := 0; i < MaxDepth-2; i++ {
		v = []any{v}
	}
	data, err := Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Unmarshal(data); err != nil {
		t.Errorf("round trip at depth limit: %v", err)
	}
}

func TestAppendValueLengthGuard(t *testing.T) {
	// A >4 GiB value cannot be built in a unit test, so the overflow
	// branch itself is covered by code inspection; what must hold here
	// is that values well within the u32 prefix still encode and that
	// the guard did not change small-value behaviour.
	if _, err := AppendValue(nil, string(make([]byte, 1<<16))); err != nil {
		t.Errorf("64 KiB string must encode: %v", err)
	}
	if _, err := AppendValue(nil, make([]byte, 1<<16)); err != nil {
		t.Errorf("64 KiB bytes must encode: %v", err)
	}
}

func TestMessageAppendToLengthGuard(t *testing.T) {
	// Message.AppendTo guards every u32-prefixed field (body, target,
	// method, meta keys and values), not just the body. As above, a
	// >4 GiB field cannot be built in a unit test, so the overflow
	// branches are covered by inspection of checkLengths; what must
	// hold here is that large-but-legal fields still encode.
	m := &Message{
		Kind:   KindRequest,
		Target: strings.Repeat("t", 1<<16),
		Method: strings.Repeat("m", 1<<16),
		Meta:   map[string]string{strings.Repeat("k", 1<<12): strings.Repeat("v", 1<<16)},
		Body:   make([]byte, 1<<16),
	}
	data, err := m.AppendTo(nil)
	if err != nil {
		t.Fatalf("64 KiB fields must encode: %v", err)
	}
	if _, err := UnmarshalMessage(data); err != nil {
		t.Errorf("round trip: %v", err)
	}
}
