package wire

import (
	"sync"
	"sync/atomic"
	"unsafe"
)

// Size-classed scratch buffer pool. Marshaling and frame reading on the
// hot RPC path draw buffers from here instead of allocating; the
// hit/miss counters feed the transport metrics (pool hit rate).
//
// A single pool poisons itself under mixed frame sizes: a 64-byte
// buffer put back by a tiny control frame comes out again for a 16 KiB
// snapshot frame, forces a reallocation, and the fresh allocation's
// capacity is whatever append chose — so steady state keeps churning.
// Classing by capacity fixes that: Get asks for the class that fits,
// Put files the buffer under the largest class its capacity can still
// serve, and every class hit hands back a buffer guaranteed big enough.
// Buffers over maxPooledBuffer are dropped so one huge frame does not
// pin memory forever; zero-capacity buffers are rejected too (nothing
// to reuse, and pooling them would hand out useless hits).
const maxPooledBuffer = 1 << 20

// poolClasses are the class capacities. GetBufferSize(n) returns a
// buffer with at least the smallest class capacity >= n; PutBuffer
// files by the largest class <= cap(b).
var poolClasses = [...]int{4 << 10, 16 << 10, 64 << 10, 256 << 10, maxPooledBuffer}

// Each class pool stores typed array pointers (*[4096]byte, ...), not
// *[]byte: a pointer stores directly in an interface word, so Put/Get
// never allocate a box for the slice header and the steady state is
// genuinely zero-allocation. A buffer whose capacity falls between
// classes (e.g. grown by append) is filed under the largest class it
// covers and comes back out truncated to that class's capacity.
var (
	bufPools             [len(poolClasses)]sync.Pool
	poolHits, poolMisses atomic.Uint64
)

// classFor returns the index of the smallest class that can hold n
// bytes, or -1 when n exceeds the largest class.
func classFor(n int) int {
	for i, size := range poolClasses {
		if n <= size {
			return i
		}
	}
	return -1
}

// putClass returns the index of the largest class cap(b) can serve, or
// -1 when the buffer is too small or too large to pool.
func putClass(c int) int {
	if c < poolClasses[0] || c > maxPooledBuffer {
		return -1
	}
	for i := len(poolClasses) - 1; i >= 0; i-- {
		if c >= poolClasses[i] {
			return i
		}
	}
	return -1
}

// GetBuffer returns a zero-length scratch buffer from the smallest
// class (encode paths that do not know their size up front).
func GetBuffer() []byte { return GetBufferSize(0) }

// GetBufferSize returns a zero-length buffer with capacity at least n.
// Requests beyond the largest class allocate directly (and will be
// dropped again by PutBuffer).
func GetBufferSize(n int) []byte {
	cls := classFor(n)
	if cls < 0 {
		poolMisses.Add(1)
		return make([]byte, 0, n)
	}
	if x := bufPools[cls].Get(); x != nil {
		var ptr *byte
		switch cls {
		case 0:
			ptr = &x.(*[4 << 10]byte)[0]
		case 1:
			ptr = &x.(*[16 << 10]byte)[0]
		case 2:
			ptr = &x.(*[64 << 10]byte)[0]
		case 3:
			ptr = &x.(*[256 << 10]byte)[0]
		default:
			ptr = &x.(*[maxPooledBuffer]byte)[0]
		}
		poolHits.Add(1)
		return unsafe.Slice(ptr, poolClasses[cls])[:0]
	}
	poolMisses.Add(1)
	return make([]byte, 0, poolClasses[cls])
}

// PutBuffer returns a buffer to its size class. Oversized buffers are
// dropped so one huge frame does not pin memory forever; undersized
// (including zero-capacity) buffers are dropped because handing them
// out again would just force the next user to reallocate.
func PutBuffer(b []byte) {
	cls := putClass(cap(b))
	if cls < 0 {
		return
	}
	ptr := unsafe.Pointer(unsafe.SliceData(b))
	switch cls {
	case 0:
		bufPools[0].Put((*[4 << 10]byte)(ptr))
	case 1:
		bufPools[1].Put((*[16 << 10]byte)(ptr))
	case 2:
		bufPools[2].Put((*[64 << 10]byte)(ptr))
	case 3:
		bufPools[3].Put((*[256 << 10]byte)(ptr))
	default:
		bufPools[4].Put((*[maxPooledBuffer]byte)(ptr))
	}
}

// PoolStats reports cumulative buffer pool hits and misses.
func PoolStats() (hits, misses uint64) {
	return poolHits.Load(), poolMisses.Load()
}

// PoolSnapshot is a point-in-time copy of the buffer pool counters.
// The pool is process-wide (shared by every transport in the process),
// so its numbers belong in a process-wide stats section, never in a
// per-transport one.
type PoolSnapshot struct {
	Hits   uint64
	Misses uint64
}

// SnapshotPool captures the process-wide buffer pool counters.
func SnapshotPool() PoolSnapshot {
	return PoolSnapshot{Hits: poolHits.Load(), Misses: poolMisses.Load()}
}

// HitRate returns the pool hit fraction (0 when unused).
func (p PoolSnapshot) HitRate() float64 {
	total := p.Hits + p.Misses
	if total == 0 {
		return 0
	}
	return float64(p.Hits) / float64(total)
}
