package wire

import (
	"bytes"
	"reflect"
	"testing"
)

func TestMessageTraceRoundTrip(t *testing.T) {
	m := &Message{
		Kind: KindRequest, ID: 9, Method: "send",
		TraceID: 0xDEADBEEF, SpanID: 77,
		Body: []byte("x"),
	}
	data, err := m.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalMessage(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, m) {
		t.Errorf("traced round trip:\n got %#v\nwant %#v", got, m)
	}
}

// Untraced messages must encode byte-identically to the pre-tracing
// format: six fields, no "trace" key. This is what keeps v1 peers and
// old v2 decoders working, and what the fuzz corpus pins down.
func TestUntracedEncodingHasNoTraceField(t *testing.T) {
	m := &Message{Kind: KindRequest, ID: 1, Method: "send", Body: []byte("b")}
	data, err := m.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(data, []byte("trace")) {
		t.Error("untraced encoding contains a trace field")
	}
	traced := &Message{Kind: KindRequest, ID: 1, Method: "send", Body: []byte("b"), TraceID: 5, SpanID: 6}
	tdata, err := traced.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(tdata, []byte("trace")) {
		t.Error("traced encoding missing trace field")
	}
	// The traced encoding is the untraced one plus the appended field:
	// same prefix after the field count word.
	if !bytes.Equal(tdata[5:5+len(data)-5], data[5:]) {
		t.Error("trace field not appended after the shared prefix")
	}
}

// A span ID alone (TraceID zero) is meaningless and must not emit the
// field — the invalid context cannot resurrect on the far side.
func TestZeroTraceIDNotEmitted(t *testing.T) {
	m := &Message{Kind: KindResponse, SpanID: 123}
	data, err := m.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalMessage(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.TraceID != 0 || got.SpanID != 0 {
		t.Errorf("got trace %d/%d, want 0/0", got.TraceID, got.SpanID)
	}
}

// An unknown extra field (what our "trace" looks like to an old
// decoder) must be skipped, not rejected — the compatibility contract
// the trace field rides on.
func TestUnknownFieldSkipped(t *testing.T) {
	data, err := Marshal(map[string]any{
		"body": []byte("b"), "id": int64(4), "kind": int64(KindRequest),
		"meta": map[string]any{}, "method": "send", "target": "",
		"zz-future": []byte{1, 2, 3, 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalMessage(data)
	if err != nil {
		t.Fatalf("unknown field must be skipped: %v", err)
	}
	if got.ID != 4 || got.Method != "send" {
		t.Errorf("fields lost around unknown field: %+v", got)
	}
}
