package wire

import (
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"
	"unsafe"
)

// Zero-copy message decoding. UnmarshalMessage copies every field out
// of the frame payload — one Message allocation, one body copy, one
// string allocation per text field, per message. On the server hot
// path that is the single biggest allocation source, and it sits on
// the connection reader goroutine, which is serial per connection.
//
// UnmarshalMessageSlab decodes in place instead: the returned Message
// and all of its string/byte fields alias the frame payload, which the
// slab retains until the last reference is released. The slab and the
// Message struct itself are pooled, so a steady-state decode performs
// zero allocations for messages without Meta entries.
//
// Lifetime rules (see DESIGN.md §5d):
//
//   - The decoder takes ownership of data on success: the payload goes
//     back to the buffer pool when the last reference is released. On
//     error, ownership stays with the caller.
//   - Release releases one reference; the message and every field
//     aliasing it are invalid afterwards. Call it exactly once per
//     reference. Transports release after the response is encoded, so
//     handlers may freely echo request fields into their response.
//   - A handler (or caller) that keeps a field past its reference must
//     either Retain the message and Release later, or copy the bytes
//     out (strings.Clone / append). Storing an aliased string into a
//     long-lived map is the canonical leak-free-but-corrupting bug.
//   - Release on a message decoded by UnmarshalMessage (or built by
//     hand) is a no-op, so callers can release unconditionally.

// Slab owns the payload backing one zero-copy decoded Message. It is
// reference counted: the decode holds the first reference, Retain adds
// more, and the final Release returns both the slab and its payload
// buffer to their pools.
type Slab struct {
	buf  []byte
	refs atomic.Int32
	msg  Message
}

var slabPool sync.Pool // holds *Slab

// aliasString returns a string sharing data's bytes (no copy). The
// string is valid only while the backing slab holds a reference.
func aliasString(data []byte) string {
	if len(data) == 0 {
		return ""
	}
	return unsafe.String(&data[0], len(data))
}

// decodeStringAlias is decodeStringField without the copy: the
// returned string aliases data.
func decodeStringAlias(data []byte) (string, []byte, error) {
	if len(data) < 5 || data[0] != tagString {
		return "", nil, fmt.Errorf("wire: expected string value")
	}
	n := binary.BigEndian.Uint32(data[1:5])
	data = data[5:]
	if uint32(len(data)) < n {
		return "", nil, ErrTruncated
	}
	return aliasString(data[:n]), data[n:], nil
}

// UnmarshalMessageSlab decodes a message encoded by Marshal without
// copying: every string and byte field of the returned Message aliases
// data, which the message's slab owns until Release. It accepts and
// rejects exactly the inputs UnmarshalMessage does and produces
// field-equal messages (fuzz-asserted). On success the decoder owns
// data (do not PutBuffer it); on error ownership stays with the
// caller.
func UnmarshalMessageSlab(data []byte) (*Message, error) {
	if len(data) < 5 || data[0] != tagMap {
		// Not a map at the top level: fall back to the generic decoder
		// for its precise error messages (same path as
		// UnmarshalMessage, so accept/reject behavior is identical).
		v, err := Unmarshal(data)
		if err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("wire: message is %T, want map", v)
	}
	count := binary.BigEndian.Uint32(data[1:5])
	rest := data[5:]
	s, _ := slabPool.Get().(*Slab)
	if s == nil {
		s = &Slab{}
	}
	m := &s.msg
	*m = Message{}
	fail := func(err error) (*Message, error) {
		s.msg = Message{}
		slabPool.Put(s)
		return nil, err
	}
	sawKind := false
	for i := uint32(0); i < count; i++ {
		key, after, err := decodeStringAlias(rest)
		if err != nil {
			return fail(fmt.Errorf("wire: message key: %w", err))
		}
		rest = after
		switch key {
		case keyKind:
			var k int64
			if k, rest, err = decodeIntField(rest); err != nil {
				return fail(fmt.Errorf("wire: message kind: %w", err))
			}
			m.Kind = MsgKind(k)
			sawKind = true
		case keyID:
			var id int64
			if id, rest, err = decodeIntField(rest); err != nil {
				return fail(fmt.Errorf("wire: message id: %w", err))
			}
			m.ID = uint64(id)
		case keyTarget:
			if m.Target, rest, err = decodeStringAlias(rest); err != nil {
				return fail(fmt.Errorf("wire: message target: %w", err))
			}
		case keyMethod:
			if m.Method, rest, err = decodeStringAlias(rest); err != nil {
				return fail(fmt.Errorf("wire: message method: %w", err))
			}
		case keyMeta:
			if len(rest) < 5 || rest[0] != tagMap {
				return fail(fmt.Errorf("wire: message meta is not a map"))
			}
			n := binary.BigEndian.Uint32(rest[1:5])
			rest = rest[5:]
			if n > 0 {
				// Same hostile-count cap as UnmarshalMessage.
				m.Meta = make(map[string]string, min(int(n), 1024))
			}
			for j := uint32(0); j < n; j++ {
				var mk, mv string
				if mk, rest, err = decodeStringAlias(rest); err != nil {
					return fail(fmt.Errorf("wire: meta key: %w", err))
				}
				if mv, rest, err = decodeStringAlias(rest); err != nil {
					return fail(fmt.Errorf("wire: meta %q has non-string value", mk))
				}
				m.Meta[mk] = mv
			}
		case keyBody:
			if len(rest) < 5 || rest[0] != tagBytes {
				return fail(fmt.Errorf("wire: message body is not bytes"))
			}
			n := binary.BigEndian.Uint32(rest[1:5])
			rest = rest[5:]
			if uint32(len(rest)) < n {
				return fail(ErrTruncated)
			}
			if n > 0 {
				m.Body = rest[:n:n]
			}
			rest = rest[n:]
		case keyTrace:
			// Same leniency as UnmarshalMessage: unexpected shapes are
			// skipped, not rejected.
			if len(rest) >= 5 && rest[0] == tagBytes &&
				binary.BigEndian.Uint32(rest[1:5]) == traceFieldLen &&
				uint32(len(rest)-5) >= traceFieldLen {
				m.TraceID = binary.BigEndian.Uint64(rest[5:13])
				m.SpanID = binary.BigEndian.Uint64(rest[13:21])
				rest = rest[5+traceFieldLen:]
				break
			}
			var after []byte
			if _, after, err = DecodeValue(rest); err != nil {
				return fail(fmt.Errorf("wire: message field %q: %w", key, err))
			}
			rest = after
		default:
			// Forward compatibility: skip unknown fields.
			var after []byte
			if _, after, err = DecodeValue(rest); err != nil {
				return fail(fmt.Errorf("wire: message field %q: %w", key, err))
			}
			rest = after
		}
	}
	if len(rest) != 0 {
		return fail(fmt.Errorf("wire: %d trailing bytes after value", len(rest)))
	}
	if !sawKind {
		return fail(fmt.Errorf("wire: message missing kind"))
	}
	s.buf = data
	s.refs.Store(1)
	m.slab = s
	return m, nil
}

// ZeroCopy reports whether the message is backed by a slab (its fields
// alias pooled memory and are only valid until the last Release).
func (m *Message) ZeroCopy() bool { return m.slab != nil }

// Retain adds a reference to the message's slab, keeping its fields
// valid past the transport's own Release. Pair every Retain with
// exactly one Release. Retain on a non-slab message is a no-op.
func (m *Message) Retain() {
	if m.slab != nil {
		m.slab.refs.Add(1)
	}
}

// Release drops one reference to the message's slab; the final release
// recycles the slab and its payload buffer. The message and every
// field aliasing it are invalid after the call. Release must be called
// at most once per reference (like PutBuffer, a double release
// corrupts the pool). On a message that is not slab-backed it is a
// no-op, so callers may release unconditionally.
func (m *Message) Release() {
	s := m.slab
	if s == nil {
		return
	}
	if s.refs.Add(-1) != 0 {
		return
	}
	buf := s.buf
	s.buf = nil
	s.msg = Message{}
	slabPool.Put(s)
	PutBuffer(buf)
}
