package wire

import (
	"bytes"
	"testing"
)

// FuzzDecodeValue throws arbitrary bytes at the value decoder: it must
// never panic or blow the stack, and every value it does accept must
// re-encode to an equivalent decodable form.
func FuzzDecodeValue(f *testing.F) {
	seedValues := []any{
		nil, true, int64(-7), 3.14, "hello", []byte{1, 2, 3},
		[]any{int64(1), "two", []any{nil}},
		map[string]any{"k": "v", "n": []any{int64(9)}},
	}
	for _, v := range seedValues {
		data, err := Marshal(v)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	f.Add(deeplyNestedList(200))
	f.Add([]byte{tagList, 0xff, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		v, rest, err := DecodeValue(data)
		if err != nil {
			return
		}
		re, err := AppendValue(nil, v)
		if err != nil {
			t.Fatalf("decoded value does not re-encode: %v", err)
		}
		// Re-encoding must reproduce the consumed prefix: maps encode
		// sorted, and the decoder only accepts sorted input via Marshal,
		// but arbitrary input may have unsorted maps — so only require
		// that the re-encoding decodes back equal in length terms.
		v2, rest2, err := DecodeValue(re)
		if err != nil {
			t.Fatalf("re-encoded value does not decode: %v", err)
		}
		if len(rest2) != 0 {
			t.Fatalf("re-encoded value left %d bytes", len(rest2))
		}
		_ = v2
		_ = rest
	})
}

// FuzzUnmarshalMessage throws arbitrary bytes at the message decoder:
// it must never panic, and every message it accepts must round-trip
// through Marshal.
func FuzzUnmarshalMessage(f *testing.F) {
	seeds := []*Message{
		{Kind: KindRequest, ID: 1, Method: "echo", Body: []byte("hi")},
		{Kind: KindResponse, ID: 2, Target: "t@n", Meta: map[string]string{"a": "b"}},
		{Kind: KindError, Meta: map[string]string{"error": "boom"}},
		{Kind: KindRequest, ID: 3, Method: "send", TraceID: 7, SpanID: 9},
	}
	for _, m := range seeds {
		data, err := m.Marshal()
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	f.Add([]byte{tagMap, 0, 0, 0, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := UnmarshalMessage(data)
		if err != nil {
			return
		}
		re, err := m.Marshal()
		if err != nil {
			t.Fatalf("accepted message does not re-marshal: %v", err)
		}
		m2, err := UnmarshalMessage(re)
		if err != nil {
			t.Fatalf("re-marshaled message does not decode: %v", err)
		}
		if m2.Kind != m.Kind || m2.ID != m.ID || m2.Target != m.Target ||
			m2.Method != m.Method || !bytes.Equal(m2.Body, m.Body) ||
			m2.TraceID != m.TraceID || m2.SpanID != m.SpanID {
			t.Fatalf("round trip changed message: %+v vs %+v", m, m2)
		}
	})
}
