package wire

import (
	"bytes"
	"os"
	"reflect"
	"testing"
)

// slabEquivalenceCases are messages spanning every field shape the
// decoder handles: empty, full, meta-less, traced, large bodies.
func slabEquivalenceCases() []*Message {
	return []*Message{
		{Kind: KindRequest},
		{Kind: KindResponse, ID: 42},
		{Kind: KindRequest, ID: 7, Target: "mailbox-1", Method: "put",
			Meta: map[string]string{"user": "ivan", "folder": "inbox"},
			Body: []byte("hello world")},
		{Kind: KindError, Meta: map[string]string{"error": "boom", "code": "overloaded"}},
		{Kind: KindInstall, Target: "node-3", Body: bytes.Repeat([]byte{0xAB}, 8192)},
		{Kind: KindCoherence, ID: 1<<63 + 5, TraceID: 0xDEADBEEF, SpanID: 0xCAFE,
			Method: "sync", Body: []byte{0}},
		{Kind: KindRequest, Meta: map[string]string{"": ""}},
	}
}

// TestSlabDecodeEquivalence asserts UnmarshalMessageSlab produces
// field-equal messages to UnmarshalMessage for every field shape.
func TestSlabDecodeEquivalence(t *testing.T) {
	for i, m := range slabEquivalenceCases() {
		data, err := m.Marshal()
		if err != nil {
			t.Fatalf("case %d: marshal: %v", i, err)
		}
		want, err := UnmarshalMessage(data)
		if err != nil {
			t.Fatalf("case %d: copy decode: %v", i, err)
		}
		buf := append(GetBufferSize(len(data)), data...)
		got, err := UnmarshalMessageSlab(buf)
		if err != nil {
			t.Fatalf("case %d: slab decode: %v", i, err)
		}
		if !got.ZeroCopy() {
			t.Fatalf("case %d: slab-decoded message reports ZeroCopy() == false", i)
		}
		if !messagesEqual(got, want) {
			t.Fatalf("case %d: slab decode = %+v, want %+v", i, got, want)
		}
		got.Release()
	}
}

// messagesEqual compares the public fields (the slab pointer is an
// implementation detail).
func messagesEqual(a, b *Message) bool {
	return a.Kind == b.Kind && a.ID == b.ID && a.Target == b.Target &&
		a.Method == b.Method && a.TraceID == b.TraceID && a.SpanID == b.SpanID &&
		bytes.Equal(a.Body, b.Body) && reflect.DeepEqual(a.Meta, b.Meta)
}

// TestSlabDecodeRejectsWhatCopyRejects asserts the two decoders agree
// on rejection for a gallery of corrupt inputs.
func TestSlabDecodeRejectsWhatCopyRejects(t *testing.T) {
	good, _ := (&Message{Kind: KindRequest, Method: "m", Body: []byte("b")}).Marshal()
	inputs := [][]byte{
		nil,
		{},
		{0x07},                         // truncated map header
		good[:len(good)-1],             // truncated tail
		append(good, 0x00),             // trailing byte
		{0x02, 0, 0, 0, 1},             // top-level int, not a map
		bytes.Repeat([]byte{0xFF}, 32), // garbage
	}
	// A message without "kind" must be rejected by both.
	noKind, _ := Marshal(map[string]any{"id": int64(1)})
	inputs = append(inputs, noKind)
	for i, in := range inputs {
		_, errCopy := UnmarshalMessage(in)
		_, errSlab := UnmarshalMessageSlab(in)
		if (errCopy == nil) != (errSlab == nil) {
			t.Fatalf("input %d: copy err=%v, slab err=%v — decoders disagree", i, errCopy, errSlab)
		}
		if errCopy == nil {
			t.Fatalf("input %d unexpectedly valid", i)
		}
	}
}

// TestSlabRetainRelease exercises the reference count: a retained
// message stays valid after the first release and dies on the last.
func TestSlabRetainRelease(t *testing.T) {
	data, _ := (&Message{Kind: KindRequest, Method: "keepme"}).Marshal()
	buf := append(GetBufferSize(len(data)), data...)
	m, err := UnmarshalMessageSlab(buf)
	if err != nil {
		t.Fatal(err)
	}
	m.Retain()
	m.Release()
	// One reference remains: the field must still read correctly.
	if m.Method != "keepme" {
		t.Fatalf("method corrupted after first release: %q", m.Method)
	}
	m.Release()
}

// TestSlabReleaseNoopOffSlab asserts Release/Retain on copy-decoded and
// hand-built messages are safe no-ops, so callers can release
// unconditionally.
func TestSlabReleaseNoopOffSlab(t *testing.T) {
	data, _ := (&Message{Kind: KindRequest}).Marshal()
	m, err := UnmarshalMessage(data)
	if err != nil {
		t.Fatal(err)
	}
	if m.ZeroCopy() {
		t.Fatal("copy-decoded message reports ZeroCopy()")
	}
	m.Retain()
	m.Release()
	m.Release() // double release off-slab: still a no-op
	built := &Message{Kind: KindResponse}
	built.Release()
}

// TestSlabErrorLeavesOwnership asserts a failed slab decode leaves the
// input usable by the caller (ownership did not transfer).
func TestSlabErrorLeavesOwnership(t *testing.T) {
	data, _ := (&Message{Kind: KindRequest, Body: []byte("x")}).Marshal()
	bad := append(GetBufferSize(len(data)), data...)
	bad = append(bad, 0xFF) // trailing byte: rejected
	if _, err := UnmarshalMessageSlab(bad); err == nil {
		t.Fatal("corrupt input accepted")
	}
	// Still ours: decode the valid prefix via the copy decoder, then
	// recycle — neither corrupts if the slab decoder kept its hands off.
	if _, err := UnmarshalMessage(bad[:len(bad)-1]); err != nil {
		t.Fatalf("input corrupted by failed slab decode: %v", err)
	}
	PutBuffer(bad)
}

// TestSlabSteadyStateDoesNotLeak asserts the decode/release cycle
// recycles everything: steady state allocates (nearly) nothing for a
// meta-less message, which is only possible if the slab, the Message,
// and the payload buffer all return to their pools.
func TestSlabSteadyStateDoesNotLeak(t *testing.T) {
	data, _ := (&Message{Kind: KindRequest, Method: "put", Target: "mb", Body: []byte("hello")}).Marshal()
	// Warm the pools.
	for i := 0; i < 16; i++ {
		buf := append(GetBufferSize(len(data)), data...)
		m, err := UnmarshalMessageSlab(buf)
		if err != nil {
			t.Fatal(err)
		}
		m.Release()
	}
	avg := testing.AllocsPerRun(200, func() {
		buf := append(GetBufferSize(len(data)), data...)
		m, err := UnmarshalMessageSlab(buf)
		if err != nil {
			t.Fatal(err)
		}
		m.Release()
	})
	// Zero in steady state; allow a stray pool refill under GC pressure.
	if avg > 0.5 {
		t.Fatalf("decode/release cycle allocates %.2f objects/op; slab or buffer is leaking from the pools", avg)
	}
}

// --- size-classed pool ---

// TestPoolSizeClasses pins the class routing: gets are served by the
// smallest class that fits, puts file under the largest class the
// capacity can still serve, and unpoolable buffers are dropped.
func TestPoolSizeClasses(t *testing.T) {
	for _, want := range []struct{ n, cap int }{
		{0, 4 << 10}, {1, 4 << 10}, {4 << 10, 4 << 10},
		{4<<10 + 1, 16 << 10}, {60 << 10, 64 << 10},
		{200 << 10, 256 << 10}, {1 << 20, 1 << 20},
	} {
		b := GetBufferSize(want.n)
		if len(b) != 0 || cap(b) < want.n {
			t.Fatalf("GetBufferSize(%d): len=%d cap=%d", want.n, len(b), cap(b))
		}
		if cap(b) != want.cap {
			t.Fatalf("GetBufferSize(%d): cap=%d, want class %d", want.n, cap(b), want.cap)
		}
		PutBuffer(b)
	}
	// Beyond the largest class: exact allocation, dropped on Put.
	huge := GetBufferSize(2 << 20)
	if cap(huge) != 2<<20 {
		t.Fatalf("oversize get: cap=%d", cap(huge))
	}
	PutBuffer(huge) // must not panic, must not pool

	// cap==0 and tiny buffers are rejected: pooling them would hand out
	// useless hits that immediately reallocate.
	PutBuffer(nil)
	PutBuffer(make([]byte, 0))
	PutBuffer(make([]byte, 0, 128))
	got := GetBufferSize(1)
	if cap(got) < 4<<10 {
		t.Fatalf("pool poisoned by undersized put: got cap=%d", cap(got))
	}
	PutBuffer(got)
}

// TestPoolHitRateUnderSlabDecode asserts the size-classed pool achieves
// ≥95% hits once warm under the slab decoder's mixed get/put traffic —
// the regression that motivated size classes is a single pool whose
// mixed sizes churn allocations forever.
func TestPoolHitRateUnderSlabDecode(t *testing.T) {
	if raceEnabled {
		t.Skip("race-mode sync.Pool drops ~25% of Puts by design; hit rate is not meaningful")
	}
	msgs := make([][]byte, 0, 3)
	for _, body := range []int{16, 8 << 10, 100 << 10} {
		data, err := (&Message{Kind: KindRequest, Method: "mix", Body: make([]byte, body)}).Marshal()
		if err != nil {
			t.Fatal(err)
		}
		msgs = append(msgs, data)
	}
	decodeAll := func() {
		for _, data := range msgs {
			buf := append(GetBufferSize(len(data)), data...)
			m, err := UnmarshalMessageSlab(buf)
			if err != nil {
				t.Fatal(err)
			}
			m.Release()
		}
	}
	for i := 0; i < 32; i++ { // warm every class
		decodeAll()
	}
	h0, m0 := PoolStats()
	const rounds = 1000
	for i := 0; i < rounds; i++ {
		decodeAll()
	}
	h1, m1 := PoolStats()
	hits, misses := h1-h0, m1-m0
	rate := float64(hits) / float64(hits+misses)
	if rate < 0.95 {
		t.Fatalf("pool hit rate %.3f (%d hits / %d misses) under slab decode, want >= 0.95", rate, hits, misses)
	}
}

// BenchmarkPoolHitRate reports the steady-state pool hit rate as a
// metric alongside the get/put cost.
func BenchmarkPoolHitRate(b *testing.B) {
	sizes := []int{64, 8 << 10, 100 << 10}
	for i := 0; i < 64; i++ {
		for _, n := range sizes {
			PutBuffer(GetBufferSize(n))
		}
	}
	h0, m0 := PoolStats()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		PutBuffer(GetBufferSize(sizes[i%len(sizes)]))
	}
	b.StopTimer()
	h1, m1 := PoolStats()
	hits, misses := h1-h0, m1-m0
	if hits+misses > 0 {
		b.ReportMetric(float64(hits)/float64(hits+misses), "hit-rate")
	}
}

// BenchmarkUnmarshalMessageCopy / Slab measure the two decoders on the
// same wire bytes; the slab path must not be slower (CI guard below).
func benchmarkMessage() []byte {
	data, err := (&Message{
		Kind: KindRequest, ID: 99, Target: "mailbox-7", Method: "put",
		Meta: map[string]string{"user": "ivan"},
		Body: bytes.Repeat([]byte("x"), 512),
	}).Marshal()
	if err != nil {
		panic(err)
	}
	return data
}

func BenchmarkUnmarshalMessageCopy(b *testing.B) {
	data := benchmarkMessage()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := UnmarshalMessage(data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkUnmarshalMessageSlab(b *testing.B) {
	data := benchmarkMessage()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf := append(GetBufferSize(len(data)), data...)
		m, err := UnmarshalMessageSlab(buf)
		if err != nil {
			b.Fatal(err)
		}
		m.Release()
	}
}

// TestSlabDecodeOverheadGuard (CI, RUN_OVERHEAD_GUARD=1) holds the
// slab decoder at or below the copy decoder's cost: the zero-copy path
// exists to be faster, and this guard catches it regressing into a
// slower-but-fancier decoder. Note the slab side is charged for the
// payload copy into a pooled buffer too — the full server-side cost.
func TestSlabDecodeOverheadGuard(t *testing.T) {
	if os.Getenv("RUN_OVERHEAD_GUARD") == "" {
		t.Skip("set RUN_OVERHEAD_GUARD=1 to run the slab overhead guard")
	}
	data := benchmarkMessage()
	copyRes := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := UnmarshalMessage(data); err != nil {
				b.Fatal(err)
			}
		}
	})
	slabRes := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			buf := append(GetBufferSize(len(data)), data...)
			m, err := UnmarshalMessageSlab(buf)
			if err != nil {
				b.Fatal(err)
			}
			m.Release()
		}
	})
	copyNs := float64(copyRes.NsPerOp())
	slabNs := float64(slabRes.NsPerOp())
	t.Logf("copy decode %.0f ns/op, slab decode %.0f ns/op", copyNs, slabNs)
	if slabNs > copyNs {
		t.Fatalf("slab decode (%.0f ns/op) slower than copy decode (%.0f ns/op)", slabNs, copyNs)
	}
}

// FuzzSlabDecodeEquivalence cross-checks the two decoders on arbitrary
// bytes: they must agree on accept/reject, and on accepted inputs the
// decoded fields must be byte-equal.
func FuzzSlabDecodeEquivalence(f *testing.F) {
	for _, m := range slabEquivalenceCases() {
		data, err := m.Marshal()
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	f.Add([]byte{0x07, 0, 0, 0, 1})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		want, errCopy := UnmarshalMessage(data)
		// The slab decoder takes ownership of its input on success, so
		// give it a private copy in a pooled buffer — exactly the
		// transport's usage.
		buf := append(GetBufferSize(len(data)), data...)
		got, errSlab := UnmarshalMessageSlab(buf)
		if (errCopy == nil) != (errSlab == nil) {
			t.Fatalf("decoders disagree: copy err=%v, slab err=%v (input %x)", errCopy, errSlab, data)
		}
		if errCopy != nil {
			PutBuffer(buf)
			return
		}
		if !messagesEqual(got, want) {
			t.Fatalf("slab decode %+v != copy decode %+v (input %x)", got, want, data)
		}
		got.Release()
	})
}

// FuzzSlabRoundTrip asserts a slab-decoded message re-encodes to the
// exact bytes it was decoded from while the slab is live — aliased
// fields must read correctly straight out of the shared buffer.
func FuzzSlabRoundTrip(f *testing.F) {
	for _, m := range slabEquivalenceCases() {
		data, err := m.Marshal()
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		buf := append(GetBufferSize(len(data)), data...)
		m, err := UnmarshalMessageSlab(buf)
		if err != nil {
			PutBuffer(buf)
			t.Skip()
		}
		defer m.Release()
		re, err := m.Marshal()
		if err != nil {
			t.Fatalf("re-encoding slab-backed message: %v", err)
		}
		// Decode once more through the copy decoder: the re-encoding
		// must describe the same message (canonical form may reorder
		// meta keys relative to hostile input, so compare messages, not
		// bytes).
		want, err := UnmarshalMessage(re)
		if err != nil {
			t.Fatalf("re-encoded message rejected: %v", err)
		}
		if !messagesEqual(m, want) {
			t.Fatalf("round trip changed message: %+v != %+v", m, want)
		}
	})
}
