package topology

import (
	"testing"

	"partsvc/internal/netmodel"
	"partsvc/internal/property"
)

// TestCaseStudyMatchesFigure5 checks the emulated topology against the
// paper's Figure 5: three sites, secure fast intra-site links, and the
// three inter-site links with the published latency/bandwidth figures.
func TestCaseStudyMatchesFigure5(t *testing.T) {
	n := CaseStudy()
	if n.NumNodes() != 7 {
		t.Errorf("nodes = %d, want 7", n.NumNodes())
	}
	cases := []struct {
		a, b    netmodel.NodeID
		lat, bw float64
		secure  bool
	}{
		{NYServer, SDGateway, 200, 20, false},
		{SDGateway, SeaGW, 100, 50, false},
		{NYServer, SeaGW, 400, 8, false},
		{NYServer, NYClient, 0, 100, true},
		{SDGateway, SDClient, 0, 100, true},
		{SeaGW, SeaClient, 0, 100, true},
	}
	for _, c := range cases {
		l, ok := n.Link(c.a, c.b)
		if !ok {
			t.Errorf("link %s-%s missing", c.a, c.b)
			continue
		}
		if l.LatencyMS != c.lat || l.BandwidthMbps != c.bw || l.Secure != c.secure {
			t.Errorf("link %s-%s = %vms/%vMbps secure=%v; want %v/%v/%v",
				c.a, c.b, l.LatencyMS, l.BandwidthMbps, l.Secure, c.lat, c.bw, c.secure)
		}
		if !l.Props["Confidentiality"].Equal(property.Bool(c.secure)) {
			t.Errorf("link %s-%s confidentiality property not translated", c.a, c.b)
		}
	}
}

func TestCaseStudyTrustLevels(t *testing.T) {
	n := CaseStudy()
	for _, c := range []struct {
		id    netmodel.NodeID
		trust int64
	}{{NYServer, 5}, {NYClient, 5}, {SDClient, 4}, {SeaClient, 2}} {
		node, ok := n.Node(c.id)
		if !ok {
			t.Fatalf("node %s missing", c.id)
		}
		if !node.Props["TrustLevel"].Equal(property.Int(c.trust)) {
			t.Errorf("node %s trust = %v, want %d", c.id, node.Props["TrustLevel"], c.trust)
		}
	}
}

func TestCaseStudySites(t *testing.T) {
	n := CaseStudy()
	if got := len(n.NodesBySite(SiteNewYork)); got != 3 {
		t.Errorf("NY nodes = %d, want 3", got)
	}
	if got := len(n.NodesBySite(SiteSanDiego)); got != 2 {
		t.Errorf("SD nodes = %d, want 2", got)
	}
	if got := len(n.NodesBySite(SiteSeattle)); got != 2 {
		t.Errorf("Seattle nodes = %d, want 2", got)
	}
}

// TestCaseStudyInterSitePathsInsecure: any path that leaves a site loses
// confidentiality; intra-site paths keep it.
func TestCaseStudyPathEnvironments(t *testing.T) {
	n := CaseStudy()
	inter, ok := n.ShortestPath(SDClient, NYServer)
	if !ok {
		t.Fatal("SD->NY path must exist")
	}
	env := inter.Env(n, SecureLoopbackEnv())
	if !env["Confidentiality"].Equal(property.Bool(false)) {
		t.Errorf("inter-site path must be insecure: %v", env)
	}
	intra, ok := n.ShortestPath(NYClient, NYServer)
	if !ok {
		t.Fatal("NY intra path must exist")
	}
	env = intra.Env(n, SecureLoopbackEnv())
	if !env["Confidentiality"].Equal(property.Bool(true)) {
		t.Errorf("intra-site path must be secure: %v", env)
	}
}

// TestCaseStudySeattleRouting: the minimum-latency path Seattle->NY goes
// through San Diego (100+200=300ms) rather than the direct 400ms link.
func TestCaseStudySeattleRouting(t *testing.T) {
	n := CaseStudy()
	p, ok := n.ShortestPath(SeaClient, NYServer)
	if !ok {
		t.Fatal("path must exist")
	}
	if p.LatencyMS != 300 {
		t.Errorf("Seattle->NY latency = %v, want 300 (via San Diego)", p.LatencyMS)
	}
}

func TestMailTranslation(t *testing.T) {
	nodeFn, linkFn := MailTranslation()
	props := nodeFn(map[string]string{"trust": "3", "user": "Alice"})
	if !props["TrustLevel"].Equal(property.Int(3)) || !props["User"].Equal(property.Str("Alice")) {
		t.Errorf("node translation = %v", props)
	}
	if got := nodeFn(map[string]string{"trust": "notanint"}); got["TrustLevel"].IsValid() {
		t.Errorf("bad trust credential must not translate: %v", got)
	}
	if got := nodeFn(nil); len(got) != 0 {
		t.Errorf("empty credentials translate to empty set: %v", got)
	}
	if !linkFn(map[string]string{"secure": "T"})["Confidentiality"].Equal(property.Bool(true)) {
		t.Error("secure link must translate to Confidentiality=T")
	}
	if !linkFn(nil)["Confidentiality"].Equal(property.Bool(false)) {
		t.Error("unknown security must translate to Confidentiality=F")
	}
}

func TestWaxmanDeterministicAndConnected(t *testing.T) {
	cfg := DefaultWaxman(30, 42)
	a, err := Waxman(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Waxman(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumNodes() != 30 || a.NumNodes() != b.NumNodes() || a.NumLinks() != b.NumLinks() {
		t.Errorf("same seed must reproduce the same topology: %d/%d vs %d/%d",
			a.NumNodes(), a.NumLinks(), b.NumNodes(), b.NumLinks())
	}
	// MinDegree 1 guarantees no isolated nodes.
	for _, node := range a.Nodes() {
		if len(a.Neighbors(node.ID)) == 0 {
			t.Errorf("node %s is isolated despite MinDegree", node.ID)
		}
		tl, ok := node.Props["TrustLevel"].AsInt()
		if !ok || tl < 1 || tl > 5 {
			t.Errorf("node %s trust %v outside 1..5", node.ID, node.Props["TrustLevel"])
		}
	}
}

func TestWaxmanSeedVariation(t *testing.T) {
	a, err := Waxman(DefaultWaxman(30, 1))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Waxman(DefaultWaxman(30, 2))
	if err != nil {
		t.Fatal(err)
	}
	if a.NumLinks() == b.NumLinks() {
		// Equal link counts can coincide; compare a structural detail too.
		al, bl := a.Links(), b.Links()
		same := len(al) == len(bl)
		for i := range al {
			if !same {
				break
			}
			if al[i].A != bl[i].A || al[i].B != bl[i].B {
				same = false
			}
		}
		if same {
			t.Error("different seeds should produce different topologies")
		}
	}
}

func TestWaxmanConfigValidation(t *testing.T) {
	if _, err := Waxman(WaxmanConfig{Nodes: 0, Alpha: 0.5, Beta: 0.5}); err == nil {
		t.Error("zero nodes must be rejected")
	}
	if _, err := Waxman(WaxmanConfig{Nodes: 5, Alpha: 0, Beta: 0.5}); err == nil {
		t.Error("alpha 0 must be rejected")
	}
	if _, err := Waxman(WaxmanConfig{Nodes: 5, Alpha: 0.5, Beta: 1.5}); err == nil {
		t.Error("beta > 1 must be rejected")
	}
}

func TestBarabasiAlbert(t *testing.T) {
	n, err := BarabasiAlbert(40, 2, 7)
	if err != nil {
		t.Fatal(err)
	}
	if n.NumNodes() != 40 {
		t.Errorf("nodes = %d, want 40", n.NumNodes())
	}
	// Every non-seed node attaches to >= 1 target; graph must be connected
	// from node 0's perspective.
	visited := map[netmodel.NodeID]bool{}
	stack := []netmodel.NodeID{"b000"}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if visited[cur] {
			continue
		}
		visited[cur] = true
		stack = append(stack, n.Neighbors(cur)...)
	}
	if len(visited) != 40 {
		t.Errorf("BA graph must be connected, reached %d/40", len(visited))
	}
	// Determinism.
	m, err := BarabasiAlbert(40, 2, 7)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumLinks() != n.NumLinks() {
		t.Error("same seed must reproduce the same BA topology")
	}
}

func TestBarabasiAlbertValidation(t *testing.T) {
	for _, c := range []struct{ n, m int }{{1, 1}, {5, 0}, {5, 5}} {
		if _, err := BarabasiAlbert(c.n, c.m, 1); err == nil {
			t.Errorf("BarabasiAlbert(%d,%d) must be rejected", c.n, c.m)
		}
	}
}

// TestBarabasiAlbertHubBias: preferential attachment produces at least
// one node with degree well above the minimum.
func TestBarabasiAlbertHubBias(t *testing.T) {
	n, err := BarabasiAlbert(60, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	maxDeg := 0
	for _, node := range n.Nodes() {
		if d := len(n.Neighbors(node.ID)); d > maxDeg {
			maxDeg = d
		}
	}
	if maxDeg < 6 {
		t.Errorf("expected a hub with degree >= 6, max degree = %d", maxDeg)
	}
}

// TestWaxmanAlwaysConnected: across many seeds the generator produces a
// single connected component (the BRITE-style merge pass).
func TestWaxmanAlwaysConnected(t *testing.T) {
	for seed := int64(1); seed <= 25; seed++ {
		n, err := Waxman(DefaultWaxman(20, seed))
		if err != nil {
			t.Fatal(err)
		}
		nodes := n.Nodes()
		visited := map[netmodel.NodeID]bool{}
		stack := []netmodel.NodeID{nodes[0].ID}
		for len(stack) > 0 {
			cur := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if visited[cur] {
				continue
			}
			visited[cur] = true
			stack = append(stack, n.Neighbors(cur)...)
		}
		if len(visited) != len(nodes) {
			t.Errorf("seed %d: reached %d/%d nodes", seed, len(visited), len(nodes))
		}
	}
}

// TestWaxmanPlaneSizeDefault: a zero plane size falls back to the
// default rather than collapsing all nodes onto a point.
func TestWaxmanPlaneSizeDefault(t *testing.T) {
	n, err := Waxman(WaxmanConfig{Nodes: 5, Alpha: 0.5, Beta: 0.5, Seed: 3, MinDegree: 1})
	if err != nil {
		t.Fatal(err)
	}
	if n.NumNodes() != 5 {
		t.Errorf("nodes = %d", n.NumNodes())
	}
}
