// Package topology builds networks for planning and emulation: the
// Figure-5 case-study topology, and BRITE-like synthetic Internet
// topologies (Waxman and Barabási–Albert models) used for planner
// scaling studies. The paper generated its emulated network with Boston
// University's BRITE tool; these generators play the same role and are
// fully deterministic given a seed.
package topology

import (
	"fmt"
	"math"
	"math/rand"

	"partsvc/internal/netmodel"
	"partsvc/internal/property"
)

// Site names of the Figure-5 case study.
const (
	SiteNewYork  = "NewYork"
	SiteSanDiego = "SanDiego"
	SiteSeattle  = "Seattle"
)

// Well-known node IDs in the case-study topology.
const (
	NYServer  netmodel.NodeID = "ny-1" // hosts the primary MailServer
	NYClient  netmodel.NodeID = "ny-2"
	NYExtra   netmodel.NodeID = "ny-3"
	SDGateway netmodel.NodeID = "sd-1"
	SDClient  netmodel.NodeID = "sd-2"
	SeaGW     netmodel.NodeID = "sea-1"
	SeaClient netmodel.NodeID = "sea-2"
)

// Case-study site trust levels: the partner organization (Seattle) is
// trusted less than the main and branch offices.
var siteTrust = map[string]int64{
	SiteNewYork:  5,
	SiteSanDiego: 4,
	SiteSeattle:  2,
}

// CaseStudy builds the Figure-5 network: three sites with fast secure
// internal links (0 ms / 100 Mb/s) and slow insecure inter-site links
// (NY–SD 200 ms / 20 Mb/s; SD–Seattle 100 ms / 50 Mb/s; NY–Seattle
// 400 ms / 8 Mb/s). Node and link properties are already translated for
// the mail service: nodes carry TrustLevel per site, links carry
// Confidentiality (T on secure links).
func CaseStudy() *netmodel.Network {
	n := netmodel.New()
	add := func(id netmodel.NodeID, site string) {
		trust := siteTrust[site]
		err := n.AddNode(netmodel.Node{
			ID:             id,
			Site:           site,
			CPUCapacityRPS: 2000,
			Credentials:    map[string]string{"site": site, "trust": fmt.Sprint(trust)},
			Props:          property.Set{"TrustLevel": property.Int(trust)},
		})
		if err != nil {
			panic(err) // static construction; an error is a programming bug
		}
	}
	add(NYServer, SiteNewYork)
	add(NYClient, SiteNewYork)
	add(NYExtra, SiteNewYork)
	add(SDGateway, SiteSanDiego)
	add(SDClient, SiteSanDiego)
	add(SeaGW, SiteSeattle)
	add(SeaClient, SiteSeattle)

	link := func(a, b netmodel.NodeID, latencyMS, mbps float64, secure bool) {
		err := n.AddLink(netmodel.Link{
			A: a, B: b, LatencyMS: latencyMS, BandwidthMbps: mbps, Secure: secure,
			Props: property.Set{"Confidentiality": property.Bool(secure)},
		})
		if err != nil {
			panic(err)
		}
	}
	// Intra-site: secure, 0 ms, 100 Mb/s.
	link(NYServer, NYClient, 0, 100, true)
	link(NYServer, NYExtra, 0, 100, true)
	link(NYClient, NYExtra, 0, 100, true)
	link(SDGateway, SDClient, 0, 100, true)
	link(SeaGW, SeaClient, 0, 100, true)
	// Inter-site: insecure, slow, limited bandwidth (Figure 5).
	link(NYServer, SDGateway, 200, 20, false)
	link(SDGateway, SeaGW, 100, 50, false)
	link(NYServer, SeaGW, 400, 8, false)
	return n
}

// SecureLoopbackEnv is the property environment of intra-node
// communication in the case study: co-located components interact
// confidentially.
func SecureLoopbackEnv() property.Set {
	return property.Set{"Confidentiality": property.Bool(true)}
}

// MailTranslation returns the service-specific translation functions for
// the mail service: node "trust" credentials become TrustLevel, link
// "secure" credentials become Confidentiality. This mirrors Section
// 3.3's credential-to-property translation step; internal/trust provides
// the service-independent dRBAC alternative of Section 6.
func MailTranslation() (nodeFn, linkFn netmodel.TranslationFunc) {
	nodeFn = func(creds map[string]string) property.Set {
		out := property.Set{}
		if t := creds["trust"]; t != "" {
			if v := property.Parse(t); v.Kind() == property.KindInt {
				out["TrustLevel"] = v
			}
		}
		if u := creds["user"]; u != "" {
			out["User"] = property.Str(u)
		}
		return out
	}
	linkFn = func(creds map[string]string) property.Set {
		return property.Set{"Confidentiality": property.Bool(creds["secure"] == "T")}
	}
	return nodeFn, linkFn
}

// WaxmanConfig parameterizes the Waxman random-graph model used by
// BRITE's router-level generation.
type WaxmanConfig struct {
	// Nodes is the number of nodes to place.
	Nodes int
	// Alpha scales overall edge probability (0,1].
	Alpha float64
	// Beta controls the relative probability of long edges (0,1].
	Beta float64
	// PlaneSize is the side of the square placement plane.
	PlaneSize float64
	// Seed makes generation deterministic.
	Seed int64
	// MinDegree, when positive, adds edges from isolated or underfull
	// nodes to their nearest neighbors to guarantee connectivity.
	MinDegree int
}

// DefaultWaxman returns BRITE's customary parameters (alpha 0.15,
// beta 0.2) for n nodes.
func DefaultWaxman(n int, seed int64) WaxmanConfig {
	return WaxmanConfig{Nodes: n, Alpha: 0.15, Beta: 0.2, PlaneSize: 1000, Seed: seed, MinDegree: 1}
}

// Waxman generates a Waxman random topology: nodes are placed uniformly
// in the plane and each pair is linked with probability
// alpha * exp(-d / (beta * L)), where d is Euclidean distance and L the
// plane diagonal. Link latency is proportional to distance (1 ms per
// 100 units), bandwidth is drawn from {8, 20, 50, 100} Mb/s, and links
// are secure with probability 1/2. Node trust levels are drawn from
// 1..5. The result is deterministic for a given config.
func Waxman(cfg WaxmanConfig) (*netmodel.Network, error) {
	if cfg.Nodes <= 0 {
		return nil, fmt.Errorf("topology: Waxman needs at least 1 node, got %d", cfg.Nodes)
	}
	if cfg.Alpha <= 0 || cfg.Alpha > 1 || cfg.Beta <= 0 || cfg.Beta > 1 {
		return nil, fmt.Errorf("topology: Waxman alpha/beta must be in (0,1], got %v/%v", cfg.Alpha, cfg.Beta)
	}
	if cfg.PlaneSize <= 0 {
		cfg.PlaneSize = 1000
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	n := netmodel.New()
	type pt struct{ x, y float64 }
	pts := make([]pt, cfg.Nodes)
	ids := make([]netmodel.NodeID, cfg.Nodes)
	for i := range pts {
		pts[i] = pt{rng.Float64() * cfg.PlaneSize, rng.Float64() * cfg.PlaneSize}
		ids[i] = netmodel.NodeID(fmt.Sprintf("w%03d", i))
		trust := int64(rng.Intn(5) + 1)
		if err := n.AddNode(netmodel.Node{
			ID: ids[i], Site: "waxman", CPUCapacityRPS: 2000,
			Credentials: map[string]string{"trust": fmt.Sprint(trust)},
			Props:       property.Set{"TrustLevel": property.Int(trust)},
		}); err != nil {
			return nil, err
		}
	}
	diag := math.Hypot(cfg.PlaneSize, cfg.PlaneSize)
	addLink := func(i, j int) error {
		if _, dup := n.Link(ids[i], ids[j]); dup {
			return nil
		}
		d := math.Hypot(pts[i].x-pts[j].x, pts[i].y-pts[j].y)
		secure := rng.Intn(2) == 0
		bws := []float64{8, 20, 50, 100}
		return n.AddLink(netmodel.Link{
			A: ids[i], B: ids[j],
			LatencyMS:     d / 100,
			BandwidthMbps: bws[rng.Intn(len(bws))],
			Secure:        secure,
			Props:         property.Set{"Confidentiality": property.Bool(secure)},
		})
	}
	for i := 0; i < cfg.Nodes; i++ {
		for j := i + 1; j < cfg.Nodes; j++ {
			d := math.Hypot(pts[i].x-pts[j].x, pts[i].y-pts[j].y)
			p := cfg.Alpha * math.Exp(-d/(cfg.Beta*diag))
			if rng.Float64() < p {
				if err := addLink(i, j); err != nil {
					return nil, err
				}
			}
		}
	}
	if cfg.MinDegree > 0 {
		// Guarantee global connectivity, not just minimum degree: merge
		// connected components by linking their geometrically closest
		// node pairs (BRITE post-processing does the same).
		comp := make([]int, cfg.Nodes)
		var mark func(i, c int)
		mark = func(i, c int) {
			comp[i] = c
			for _, nb := range n.Neighbors(ids[i]) {
				for j, id := range ids {
					if id == nb && comp[j] == -1 {
						mark(j, c)
					}
				}
			}
		}
		for {
			for i := range comp {
				comp[i] = -1
			}
			nc := 0
			for i := 0; i < cfg.Nodes; i++ {
				if comp[i] == -1 {
					mark(i, nc)
					nc++
				}
			}
			if nc <= 1 {
				break
			}
			// Join component 0 to the nearest node outside it.
			bi, bj, bd := -1, -1, math.Inf(1)
			for i := 0; i < cfg.Nodes; i++ {
				if comp[i] != 0 {
					continue
				}
				for j := 0; j < cfg.Nodes; j++ {
					if comp[j] == 0 {
						continue
					}
					d := math.Hypot(pts[i].x-pts[j].x, pts[i].y-pts[j].y)
					if d < bd {
						bi, bj, bd = i, j, d
					}
				}
			}
			if err := addLink(bi, bj); err != nil {
				return nil, err
			}
		}
		for i := 0; i < cfg.Nodes; i++ {
			for len(n.Neighbors(ids[i])) < cfg.MinDegree {
				// Connect to the nearest unconnected node.
				best, bestD := -1, math.Inf(1)
				for j := 0; j < cfg.Nodes; j++ {
					if j == i {
						continue
					}
					if _, dup := n.Link(ids[i], ids[j]); dup {
						continue
					}
					d := math.Hypot(pts[i].x-pts[j].x, pts[i].y-pts[j].y)
					if d < bestD {
						best, bestD = j, d
					}
				}
				if best < 0 {
					break
				}
				if err := addLink(i, best); err != nil {
					return nil, err
				}
			}
		}
	}
	return n, nil
}

// BarabasiAlbert generates a preferential-attachment topology with n
// nodes where each new node attaches to m existing nodes with
// probability proportional to their degree (BRITE's AS-level model).
// Latency/bandwidth/security assignment matches Waxman's scheme.
func BarabasiAlbert(n, m int, seed int64) (*netmodel.Network, error) {
	if n < 2 || m < 1 || m >= n {
		return nil, fmt.Errorf("topology: BarabasiAlbert needs n >= 2 and 1 <= m < n, got n=%d m=%d", n, m)
	}
	rng := rand.New(rand.NewSource(seed))
	net := netmodel.New()
	ids := make([]netmodel.NodeID, n)
	for i := 0; i < n; i++ {
		ids[i] = netmodel.NodeID(fmt.Sprintf("b%03d", i))
		trust := int64(rng.Intn(5) + 1)
		if err := net.AddNode(netmodel.Node{
			ID: ids[i], Site: "ba", CPUCapacityRPS: 2000,
			Credentials: map[string]string{"trust": fmt.Sprint(trust)},
			Props:       property.Set{"TrustLevel": property.Int(trust)},
		}); err != nil {
			return nil, err
		}
	}
	addLink := func(i, j int) error {
		if _, dup := net.Link(ids[i], ids[j]); dup || i == j {
			return nil
		}
		secure := rng.Intn(2) == 0
		bws := []float64{8, 20, 50, 100}
		return net.AddLink(netmodel.Link{
			A: ids[i], B: ids[j],
			LatencyMS:     float64(rng.Intn(40) + 1),
			BandwidthMbps: bws[rng.Intn(len(bws))],
			Secure:        secure,
			Props:         property.Set{"Confidentiality": property.Bool(secure)},
		})
	}
	// Degree-weighted target list (each edge endpoint appears once).
	var targets []int
	// Seed clique over the first m+1 nodes.
	for i := 0; i <= m && i < n; i++ {
		for j := 0; j < i; j++ {
			if err := addLink(i, j); err != nil {
				return nil, err
			}
			targets = append(targets, i, j)
		}
	}
	for i := m + 1; i < n; i++ {
		chosen := map[int]bool{}
		for len(chosen) < m {
			var t int
			if len(targets) == 0 {
				t = rng.Intn(i)
			} else {
				t = targets[rng.Intn(len(targets))]
			}
			if t != i {
				chosen[t] = true
			}
		}
		for t := range chosen {
			if err := addLink(i, t); err != nil {
				return nil, err
			}
		}
		// Update target list deterministically (sorted insertion order).
		for t := 0; t < i; t++ {
			if chosen[t] {
				targets = append(targets, i, t)
			}
		}
	}
	return net, nil
}
