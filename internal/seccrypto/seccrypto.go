// Package seccrypto provides the mail service's security substrate: a
// per-(user, sensitivity level) key ring, AES-GCM envelope encryption,
// and trust-gated key escrow. The example service associates a
// sensitivity level with each message; a key pair per level per user is
// generated at account setup, messages are encrypted at the sender's
// level on send and transformed to the recipient's key on receive, and
// a node may only be entrusted with keys up to its trust level
// (HPDC'02, Section 2).
package seccrypto

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/rand"
	"fmt"
	"sync"

	"partsvc/internal/wire"
)

// MaxLevel is the highest sensitivity level, matching the TrustLevel
// property range (1,5) of the mail specification.
const MaxLevel = 5

type keyID struct {
	user  string
	level int
}

// Envelope is an encrypted message body, self-describing enough to be
// transformed between users by a component holding both keys.
type Envelope struct {
	// User is the key owner the envelope is encrypted to.
	User string
	// Level is the sensitivity level (selects the key).
	Level int
	// Nonce is the AES-GCM nonce.
	Nonce []byte
	// Ciphertext is the sealed payload.
	Ciphertext []byte
}

// Marshal encodes the envelope with the wire format.
func (e *Envelope) Marshal() ([]byte, error) {
	return wire.Marshal(map[string]any{
		"user": e.User, "level": int64(e.Level), "nonce": e.Nonce, "ct": e.Ciphertext,
	})
}

// UnmarshalEnvelope decodes an envelope.
func UnmarshalEnvelope(data []byte) (*Envelope, error) {
	v, err := wire.Unmarshal(data)
	if err != nil {
		return nil, err
	}
	m, ok := v.(map[string]any)
	if !ok {
		return nil, fmt.Errorf("seccrypto: envelope is %T", v)
	}
	e := &Envelope{}
	e.User, _ = m["user"].(string)
	if lvl, ok := m["level"].(int64); ok {
		e.Level = int(lvl)
	}
	e.Nonce, _ = m["nonce"].([]byte)
	e.Ciphertext, _ = m["ct"].([]byte)
	if e.User == "" || e.Level == 0 || len(e.Nonce) == 0 {
		return nil, fmt.Errorf("seccrypto: incomplete envelope")
	}
	return e, nil
}

// KeyRing holds symmetric keys per (user, sensitivity level). It is
// safe for concurrent use. The zero value is unusable; call NewKeyRing.
type KeyRing struct {
	mu   sync.RWMutex
	keys map[keyID][]byte
	// maxLevel caps the levels this ring may hold (escrow restriction).
	maxLevel int
}

// NewKeyRing returns an empty ring allowed to hold keys up to MaxLevel.
func NewKeyRing() *KeyRing {
	return &KeyRing{keys: map[keyID][]byte{}, maxLevel: MaxLevel}
}

// MaxLevelAllowed returns the highest level this ring may hold.
func (k *KeyRing) MaxLevelAllowed() int { return k.maxLevel }

// GenerateUserKeys creates fresh random keys for every level 1..levels
// for the user (account setup). Existing keys are preserved.
func (k *KeyRing) GenerateUserKeys(user string, levels int) error {
	if user == "" {
		return fmt.Errorf("seccrypto: empty user")
	}
	if levels < 1 || levels > MaxLevel {
		return fmt.Errorf("seccrypto: levels %d outside 1..%d", levels, MaxLevel)
	}
	k.mu.Lock()
	defer k.mu.Unlock()
	for lvl := 1; lvl <= levels; lvl++ {
		id := keyID{user, lvl}
		if _, exists := k.keys[id]; exists {
			continue
		}
		key := make([]byte, 32)
		if _, err := rand.Read(key); err != nil {
			return fmt.Errorf("seccrypto: generating key: %w", err)
		}
		k.keys[id] = key
	}
	return nil
}

// HasKey reports whether the ring holds the key for (user, level).
func (k *KeyRing) HasKey(user string, level int) bool {
	k.mu.RLock()
	defer k.mu.RUnlock()
	_, ok := k.keys[keyID{user, level}]
	return ok
}

// SubRing returns a new ring holding only keys with level <= maxLevel:
// the escrow operation used when instantiating a view on a node of
// limited trust ("whether the node ... can be entrusted with the keys
// for a specific sensitivity level").
func (k *KeyRing) SubRing(maxLevel int) *KeyRing {
	if maxLevel > MaxLevel {
		maxLevel = MaxLevel
	}
	sub := &KeyRing{keys: map[keyID][]byte{}, maxLevel: maxLevel}
	k.mu.RLock()
	defer k.mu.RUnlock()
	for id, key := range k.keys {
		if id.level <= maxLevel {
			sub.keys[id] = key
		}
	}
	return sub
}

func (k *KeyRing) aead(user string, level int) (cipher.AEAD, error) {
	k.mu.RLock()
	key, ok := k.keys[keyID{user, level}]
	k.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("seccrypto: no key for user %q level %d", user, level)
	}
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, fmt.Errorf("seccrypto: cipher: %w", err)
	}
	return cipher.NewGCM(block)
}

// Seal encrypts plaintext to (user, level).
func (k *KeyRing) Seal(user string, level int, plaintext []byte) (*Envelope, error) {
	aead, err := k.aead(user, level)
	if err != nil {
		return nil, err
	}
	nonce := make([]byte, aead.NonceSize())
	if _, err := rand.Read(nonce); err != nil {
		return nil, fmt.Errorf("seccrypto: nonce: %w", err)
	}
	return &Envelope{
		User: user, Level: level, Nonce: nonce,
		Ciphertext: aead.Seal(nil, nonce, plaintext, envelopeAD(user, level)),
	}, nil
}

// Open decrypts an envelope; it fails if the ring lacks the key or the
// ciphertext was tampered with.
func (k *KeyRing) Open(e *Envelope) ([]byte, error) {
	aead, err := k.aead(e.User, e.Level)
	if err != nil {
		return nil, err
	}
	pt, err := aead.Open(nil, e.Nonce, e.Ciphertext, envelopeAD(e.User, e.Level))
	if err != nil {
		return nil, fmt.Errorf("seccrypto: open envelope for %s/%d: %w", e.User, e.Level, err)
	}
	return pt, nil
}

// Transform re-encrypts an envelope from its current owner to another
// user at the given level: the server-side operation that converts a
// message sealed at the sender's sensitivity into one sealed to the
// recipient (Section 2: "transforms these messages to those encrypted
// to the recipient's sensitivity upon a receive"). It requires both
// keys.
func (k *KeyRing) Transform(e *Envelope, toUser string, toLevel int) (*Envelope, error) {
	pt, err := k.Open(e)
	if err != nil {
		return nil, fmt.Errorf("seccrypto: transform: %w", err)
	}
	return k.Seal(toUser, toLevel, pt)
}

func envelopeAD(user string, level int) []byte {
	return []byte(fmt.Sprintf("psf:%s:%d", user, level))
}
