package seccrypto

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func ringWith(t *testing.T, users ...string) *KeyRing {
	t.Helper()
	k := NewKeyRing()
	for _, u := range users {
		if err := k.GenerateUserKeys(u, MaxLevel); err != nil {
			t.Fatal(err)
		}
	}
	return k
}

func TestSealOpenRoundTrip(t *testing.T) {
	k := ringWith(t, "alice")
	for lvl := 1; lvl <= MaxLevel; lvl++ {
		msg := []byte("hello level " + strings.Repeat("x", lvl))
		env, err := k.Seal("alice", lvl, msg)
		if err != nil {
			t.Fatal(err)
		}
		got, err := k.Open(env)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, msg) {
			t.Errorf("level %d: round trip mismatch", lvl)
		}
	}
}

func TestOpenWrongKeyFails(t *testing.T) {
	k := ringWith(t, "alice", "bob")
	env, err := k.Seal("alice", 3, []byte("secret"))
	if err != nil {
		t.Fatal(err)
	}
	// Claiming the envelope belongs to bob must fail authentication.
	env.User = "bob"
	if _, err := k.Open(env); err == nil {
		t.Error("cross-user open must fail")
	}
}

func TestTamperDetected(t *testing.T) {
	k := ringWith(t, "alice")
	env, err := k.Seal("alice", 2, []byte("integrity"))
	if err != nil {
		t.Fatal(err)
	}
	env.Ciphertext[0] ^= 0xff
	if _, err := k.Open(env); err == nil {
		t.Error("tampered ciphertext must fail")
	}
}

func TestTransformBetweenUsers(t *testing.T) {
	k := ringWith(t, "alice", "bob")
	env, err := k.Seal("alice", 4, []byte("for bob"))
	if err != nil {
		t.Fatal(err)
	}
	out, err := k.Transform(env, "bob", 2)
	if err != nil {
		t.Fatal(err)
	}
	if out.User != "bob" || out.Level != 2 {
		t.Errorf("transformed envelope = %s/%d", out.User, out.Level)
	}
	pt, err := k.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	if string(pt) != "for bob" {
		t.Errorf("plaintext = %q", pt)
	}
	// Alice's original remains openable; bob's version requires bob's key.
	sub := k.SubRing(MaxLevel)
	if !sub.HasKey("bob", 2) {
		t.Fatal("subring must carry bob's key")
	}
}

func TestSubRingEscrow(t *testing.T) {
	k := ringWith(t, "alice")
	sub := k.SubRing(2)
	if sub.MaxLevelAllowed() != 2 {
		t.Errorf("MaxLevelAllowed = %d", sub.MaxLevelAllowed())
	}
	if !sub.HasKey("alice", 1) || !sub.HasKey("alice", 2) {
		t.Error("levels <= 2 must be escrowed")
	}
	for lvl := 3; lvl <= MaxLevel; lvl++ {
		if sub.HasKey("alice", lvl) {
			t.Errorf("level %d key must not be escrowed to a trust-2 node", lvl)
		}
	}
	// The restricted ring cannot open high-sensitivity envelopes.
	env, err := k.Seal("alice", 4, []byte("top"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sub.Open(env); err == nil {
		t.Error("restricted ring must not open level-4 envelopes")
	}
	// Clamp above MaxLevel.
	if got := k.SubRing(99).MaxLevelAllowed(); got != MaxLevel {
		t.Errorf("clamped max = %d", got)
	}
}

func TestGenerateUserKeysValidation(t *testing.T) {
	k := NewKeyRing()
	if err := k.GenerateUserKeys("", 3); err == nil {
		t.Error("empty user must fail")
	}
	if err := k.GenerateUserKeys("alice", 0); err == nil {
		t.Error("zero levels must fail")
	}
	if err := k.GenerateUserKeys("alice", MaxLevel+1); err == nil {
		t.Error("levels above MaxLevel must fail")
	}
}

func TestGenerateUserKeysIdempotent(t *testing.T) {
	k := ringWith(t, "alice")
	env, err := k.Seal("alice", 1, []byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	// Re-generating must not rotate existing keys.
	if err := k.GenerateUserKeys("alice", MaxLevel); err != nil {
		t.Fatal(err)
	}
	if _, err := k.Open(env); err != nil {
		t.Errorf("existing envelope must remain openable: %v", err)
	}
}

func TestSealWithoutKeyFails(t *testing.T) {
	k := NewKeyRing()
	if _, err := k.Seal("ghost", 1, []byte("x")); err == nil {
		t.Error("sealing without a key must fail")
	}
	if _, err := k.Open(&Envelope{User: "ghost", Level: 1, Nonce: make([]byte, 12)}); err == nil {
		t.Error("opening without a key must fail")
	}
}

func TestEnvelopeMarshalRoundTrip(t *testing.T) {
	k := ringWith(t, "alice")
	env, err := k.Seal("alice", 3, []byte("wire me"))
	if err != nil {
		t.Fatal(err)
	}
	data, err := env.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalEnvelope(data)
	if err != nil {
		t.Fatal(err)
	}
	pt, err := k.Open(got)
	if err != nil {
		t.Fatal(err)
	}
	if string(pt) != "wire me" {
		t.Errorf("plaintext = %q", pt)
	}
}

func TestUnmarshalEnvelopeErrors(t *testing.T) {
	if _, err := UnmarshalEnvelope([]byte{0xff}); err == nil {
		t.Error("garbage must fail")
	}
	data, _ := (&Envelope{}).Marshal()
	if _, err := UnmarshalEnvelope(data); err == nil {
		t.Error("incomplete envelope must fail")
	}
}

// TestQuickSealOpenIdentity: arbitrary payloads round-trip at arbitrary
// levels.
func TestQuickSealOpenIdentity(t *testing.T) {
	k := NewKeyRing()
	if err := k.GenerateUserKeys("u", MaxLevel); err != nil {
		t.Fatal(err)
	}
	f := func(payload []byte, lvlSeed uint8) bool {
		lvl := int(lvlSeed%MaxLevel) + 1
		env, err := k.Seal("u", lvl, payload)
		if err != nil {
			return false
		}
		got, err := k.Open(env)
		return err == nil && bytes.Equal(got, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
