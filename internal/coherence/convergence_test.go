package coherence

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

// The convergence property behind the mail service's correctness: no
// matter how writes and flushes interleave across replicas, once every
// replica flushes and the directory fans everything out, all replicas
// have applied the same multiset of updates.

// replicaState tracks what one replica applied, keyed (origin, seq).
type replicaState struct {
	r       *Replica
	applied map[string]bool
}

func newReplicaState(id string, policy Policy) *replicaState {
	st := &replicaState{applied: map[string]bool{}}
	st.r = NewReplica(id, policy, func(u Update) {
		st.applied[fmt.Sprintf("%s/%d", u.Origin, u.Seq)] = true
	})
	return st
}

// ownWrites returns the keys of all updates the replica itself wrote.
func ownKeys(id string, count int) []string {
	out := make([]string, count)
	for i := range out {
		out[i] = fmt.Sprintf("%s/%d", id, i+1)
	}
	return out
}

// TestQuickConvergenceUnderRandomInterleavings drives N replicas with a
// random schedule of writes and flushes, then drains everything and
// checks global agreement.
func TestQuickConvergenceUnderRandomInterleavings(t *testing.T) {
	f := func(seed int64, opsSeed uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		dir := NewDirectory()
		const nReplicas = 3
		replicas := make([]*replicaState, nReplicas)
		writes := make([]int, nReplicas)
		for i := range replicas {
			// Mixed policies across replicas.
			var p Policy
			switch i % 3 {
			case 0:
				p = WriteThrough{}
			case 1:
				p = CountBound{Bound: 3}
			default:
				p = None{}
			}
			replicas[i] = newReplicaState(fmt.Sprintf("r%d", i), p)
			dir.Register("view", replicas[i].r)
		}
		ops := int(opsSeed)%60 + 10
		for k := 0; k < ops; k++ {
			i := rng.Intn(nReplicas)
			st := replicas[i]
			if rng.Intn(4) == 0 {
				// Random flush.
				dir.Publish("view", st.r.TakePending(float64(k)))
				continue
			}
			writes[i]++
			if st.r.Write("send", "key", nil, float64(k)) {
				dir.Publish("view", st.r.TakePending(float64(k)))
			}
		}
		// Drain every replica.
		for _, st := range replicas {
			dir.Publish("view", st.r.TakePending(9999))
		}
		// Agreement: replica i must have applied exactly everyone else's
		// writes (never its own through the directory).
		for i, st := range replicas {
			var want []string
			for j, other := range replicas {
				if i == j {
					continue
				}
				_ = other
				want = append(want, ownKeys(fmt.Sprintf("r%d", j), writes[j])...)
			}
			sort.Strings(want)
			var got []string
			for k := range st.applied {
				got = append(got, k)
			}
			sort.Strings(got)
			if !reflect.DeepEqual(got, want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestQuickLateJoinerConverges: a replica registered after arbitrary
// history catches up to exactly that history.
func TestQuickLateJoinerConverges(t *testing.T) {
	f := func(writes uint8) bool {
		dir := NewDirectory()
		a := NewReplica("a", WriteThrough{}, nil)
		dir.Register("view", a)
		n := int(writes) % 50
		for i := 0; i < n; i++ {
			a.Write("send", "k", nil, float64(i))
			dir.Publish("view", a.TakePending(float64(i)))
		}
		caught := 0
		late := NewReplica("late", WriteThrough{}, func(Update) { caught++ })
		dir.Register("view", late)
		return caught == n && dir.HistoryLen("view") == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
