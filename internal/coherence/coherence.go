// Package coherence implements Smock's cache coherence layer (HPDC'02,
// Section 3.2): replicated component instances are kept consistent at
// the granularity of views using a directory-based protocol. Coherence
// actions are triggered by dynamic conflict maps and pluggable
// weak-consistency policies — write-through, count-bound ("limit the
// number of unpropagated messages at each replica", the knob behind the
// paper's DS500/DS1000 scenarios), time-driven, and none.
//
// The package is pure coordination logic over an abstract update log:
// the Smock run-time drives it with wall-clock time and real transports,
// while the benchmark harness drives it inside the discrete-event
// simulator. Times are float64 milliseconds on whichever clock the
// caller uses.
package coherence

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// Update is one logged write awaiting propagation between replicas.
type Update struct {
	// Origin identifies the replica that performed the write.
	Origin string
	// Seq is the origin-local sequence number (1-based, dense).
	Seq uint64
	// Op names the operation (conflict maps are keyed on it).
	Op string
	// Key identifies the object written (e.g. a mailbox name).
	Key string
	// Data is the opaque update payload.
	Data []byte
	// TimeMS is the origin-clock time of the write.
	TimeMS float64
}

// Policy decides when a replica must propagate its pending updates.
// Implementations must be stateless (all state lives in the replica) so
// one policy value can serve many replicas.
type Policy interface {
	// FlushOnWrite reports whether the replica must flush immediately
	// after queuing a write, given the pending count (including the new
	// write).
	FlushOnWrite(pending int) bool
	// NextDeadline returns the next time-driven flush deadline after
	// lastFlushMS; ok is false if the policy is not time-driven.
	NextDeadline(lastFlushMS float64) (deadline float64, ok bool)
	// String names the policy for logs and experiment tables.
	String() string
}

// WriteThrough propagates every write synchronously.
type WriteThrough struct{}

// FlushOnWrite always reports true.
func (WriteThrough) FlushOnWrite(int) bool { return true }

// NextDeadline reports no time-driven flushes.
func (WriteThrough) NextDeadline(float64) (float64, bool) { return 0, false }

func (WriteThrough) String() string { return "write-through" }

// CountBound flushes when the number of unpropagated updates reaches
// Bound — the paper's "protocol that limits the number of unpropagated
// messages at each replica".
type CountBound struct {
	// Bound is the maximum number of unpropagated updates (>= 1).
	Bound int
}

// FlushOnWrite reports true once pending reaches the bound.
func (p CountBound) FlushOnWrite(pending int) bool { return pending >= p.Bound }

// NextDeadline reports no time-driven flushes.
func (CountBound) NextDeadline(float64) (float64, bool) { return 0, false }

func (p CountBound) String() string { return fmt.Sprintf("count-bound(%d)", p.Bound) }

// Periodic flushes every PeriodMS milliseconds (time-driven
// consistency).
type Periodic struct {
	// PeriodMS is the flush period.
	PeriodMS float64
}

// FlushOnWrite never flushes on writes.
func (Periodic) FlushOnWrite(int) bool { return false }

// NextDeadline returns lastFlushMS + PeriodMS.
func (p Periodic) NextDeadline(lastFlushMS float64) (float64, bool) {
	return lastFlushMS + p.PeriodMS, true
}

func (p Periodic) String() string { return fmt.Sprintf("periodic(%vms)", p.PeriodMS) }

// None never propagates: replicas drift (the DS0/SS0 scenarios, where
// coherence overhead is excluded from measurement).
type None struct{}

// FlushOnWrite never flushes.
func (None) FlushOnWrite(int) bool { return false }

// NextDeadline reports no deadlines.
func (None) NextDeadline(float64) (float64, bool) { return 0, false }

func (None) String() string { return "none" }

// ConflictMap declares which operation pairs conflict. A read operation
// that conflicts with a pending remote write forces synchronization; a
// non-conflicting operation proceeds on possibly stale state. Maps are
// dynamic: entries can be declared at any time (the paper's "dynamic
// conflict maps ... allow expression of a wide range of service-specific
// weak consistency protocols").
type ConflictMap struct {
	mu    sync.RWMutex
	pairs map[[2]string]bool
}

// NewConflictMap returns an empty map (nothing conflicts).
func NewConflictMap() *ConflictMap {
	return &ConflictMap{pairs: map[[2]string]bool{}}
}

// Declare sets whether ops a and b conflict (symmetric).
func (c *ConflictMap) Declare(a, b string, conflict bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.pairs[pairKey(a, b)] = conflict
}

// Conflicts reports whether ops a and b conflict; undeclared pairs do
// not conflict.
func (c *ConflictMap) Conflicts(a, b string) bool {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.pairs[pairKey(a, b)]
}

func pairKey(a, b string) [2]string {
	if b < a {
		a, b = b, a
	}
	return [2]string{a, b}
}

// Replica is the coherence agent attached to one replicated view
// instance: it logs local writes, decides when the policy requires a
// flush, and applies remote updates exactly once.
type Replica struct {
	mu sync.Mutex
	// id identifies this replica in the directory.
	id string
	// policy is the replica's weak-consistency policy.
	policy Policy
	// pending holds local updates not yet propagated.
	pending []Update
	// seq is the last local sequence number assigned.
	seq uint64
	// lastFlushMS is the time of the last flush (for periodic policies).
	lastFlushMS float64
	// appliedSeq tracks the highest applied sequence per origin, for
	// exactly-once application.
	appliedSeq map[string]uint64
	// applyFn is invoked for each remote update accepted.
	applyFn func(Update)
}

// NewReplica returns a replica agent. applyFn, when non-nil, receives
// each accepted remote update (in order per origin).
func NewReplica(id string, policy Policy, applyFn func(Update)) *Replica {
	return &Replica{id: id, policy: policy, applyFn: applyFn, appliedSeq: map[string]uint64{}}
}

// ID returns the replica identity.
func (r *Replica) ID() string { return r.id }

// Policy returns the replica's policy.
func (r *Replica) Policy() Policy { return r.policy }

// Write logs a local update and reports whether the policy demands an
// immediate flush.
func (r *Replica) Write(op, key string, data []byte, nowMS float64) (flush bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.seq++
	r.pending = append(r.pending, Update{
		Origin: r.id, Seq: r.seq, Op: op, Key: key, Data: data, TimeMS: nowMS,
	})
	return r.policy.FlushOnWrite(len(r.pending))
}

// Pending returns the number of unpropagated updates.
func (r *Replica) Pending() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.pending)
}

// TakePending removes and returns all unpropagated updates, recording
// nowMS as the flush time. Callers deliver the batch to the directory.
func (r *Replica) TakePending(nowMS float64) []Update {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := r.pending
	r.pending = nil
	r.lastFlushMS = nowMS
	return out
}

// NextDeadline exposes the policy's next time-driven flush after the
// last flush.
func (r *Replica) NextDeadline() (float64, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.policy.NextDeadline(r.lastFlushMS)
}

// ApplyRemote applies a batch of updates from other replicas, returning
// how many were new (duplicates and own-origin updates are skipped).
// Updates must arrive in per-origin sequence order, as the directory
// guarantees.
func (r *Replica) ApplyRemote(batch []Update) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	applied := 0
	for _, u := range batch {
		if u.Origin == r.id {
			continue
		}
		if u.Seq <= r.appliedSeq[u.Origin] {
			continue
		}
		r.appliedSeq[u.Origin] = u.Seq
		if r.applyFn != nil {
			r.applyFn(u)
		}
		applied++
	}
	return applied
}

// StaleFor reports whether an incoming operation conflicts with any
// pending local update under the conflict map: a conflicting read on a
// peer must trigger synchronization first.
func (r *Replica) StaleFor(op string, cm *ConflictMap) bool {
	if cm == nil {
		return false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, u := range r.pending {
		if cm.Conflicts(op, u.Op) {
			return true
		}
	}
	return false
}

// Directory is the coherence directory for one service: it tracks the
// replicas of each view and fans flushed batches out to the others
// (directory-based protocol, Section 3.2).
type Directory struct {
	mu    sync.Mutex
	views map[string]map[string]*Replica
	// log retains all updates per view in arrival order so that newly
	// registered replicas can catch up.
	log map[string][]Update

	// Fan-out counters (atomic; read by DirectoryStats).
	publishes        atomic.Uint64
	updatesPublished atomic.Uint64
	replicasUpdated  atomic.Uint64
}

// DirectoryStats is a point-in-time copy of a directory's fan-out
// counters for the metrics registry.
type DirectoryStats struct {
	// Publishes counts Publish calls with a non-empty batch.
	Publishes uint64
	// UpdatesPublished counts individual updates fanned out.
	UpdatesPublished uint64
	// ReplicasUpdated counts replica applications across all publishes.
	ReplicasUpdated uint64
}

// Stats returns the directory's fan-out counters.
func (d *Directory) Stats() DirectoryStats {
	return DirectoryStats{
		Publishes:        d.publishes.Load(),
		UpdatesPublished: d.updatesPublished.Load(),
		ReplicasUpdated:  d.replicasUpdated.Load(),
	}
}

// NewDirectory returns an empty directory.
func NewDirectory() *Directory {
	return &Directory{views: map[string]map[string]*Replica{}, log: map[string][]Update{}}
}

// Register adds a replica of a view and immediately replays the view's
// update history to it (catch-up). Registering the same replica ID
// twice replaces the previous registration.
func (d *Directory) Register(view string, r *Replica) {
	d.mu.Lock()
	if d.views[view] == nil {
		d.views[view] = map[string]*Replica{}
	}
	d.views[view][r.ID()] = r
	history := append([]Update(nil), d.log[view]...)
	d.mu.Unlock()
	r.ApplyRemote(history)
}

// Unregister removes a replica of a view.
func (d *Directory) Unregister(view, replicaID string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	delete(d.views[view], replicaID)
}

// Replicas returns the registered replica IDs of a view, sorted.
func (d *Directory) Replicas(view string) []string {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]string, 0, len(d.views[view]))
	for id := range d.views[view] {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Publish accepts a flushed batch for a view and fans it out to every
// other registered replica. It returns the number of replicas updated.
func (d *Directory) Publish(view string, batch []Update) int {
	if len(batch) == 0 {
		return 0
	}
	d.mu.Lock()
	d.log[view] = append(d.log[view], batch...)
	targets := make([]*Replica, 0, len(d.views[view]))
	for _, r := range d.views[view] {
		targets = append(targets, r)
	}
	d.mu.Unlock()
	// Deterministic fan-out order.
	sort.Slice(targets, func(i, j int) bool { return targets[i].ID() < targets[j].ID() })
	n := 0
	for _, r := range targets {
		if r.ID() == batch[0].Origin {
			continue
		}
		if r.ApplyRemote(batch) > 0 {
			n++
		}
	}
	d.publishes.Add(1)
	d.updatesPublished.Add(uint64(len(batch)))
	d.replicasUpdated.Add(uint64(n))
	return n
}

// HistoryLen returns the number of updates logged for a view.
func (d *Directory) HistoryLen(view string) int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.log[view])
}
