package coherence

import (
	"fmt"
	"reflect"
	"testing"
	"testing/quick"
)

func TestWriteThroughPolicy(t *testing.T) {
	p := WriteThrough{}
	if !p.FlushOnWrite(1) {
		t.Error("write-through flushes on every write")
	}
	if _, ok := p.NextDeadline(0); ok {
		t.Error("write-through has no deadlines")
	}
	if p.String() != "write-through" {
		t.Error("name")
	}
}

func TestCountBoundPolicy(t *testing.T) {
	p := CountBound{Bound: 500}
	if p.FlushOnWrite(499) {
		t.Error("must not flush below the bound")
	}
	if !p.FlushOnWrite(500) {
		t.Error("must flush at the bound")
	}
	if _, ok := p.NextDeadline(0); ok {
		t.Error("count-bound has no deadlines")
	}
	if p.String() != "count-bound(500)" {
		t.Errorf("name = %q", p.String())
	}
}

func TestPeriodicPolicy(t *testing.T) {
	p := Periodic{PeriodMS: 500}
	if p.FlushOnWrite(1000000) {
		t.Error("periodic never flushes on writes")
	}
	d, ok := p.NextDeadline(1200)
	if !ok || d != 1700 {
		t.Errorf("deadline = %v, %v", d, ok)
	}
	if p.String() != "periodic(500ms)" {
		t.Errorf("name = %q", p.String())
	}
}

func TestNonePolicy(t *testing.T) {
	p := None{}
	if p.FlushOnWrite(1 << 20) {
		t.Error("none never flushes")
	}
	if _, ok := p.NextDeadline(0); ok {
		t.Error("none has no deadlines")
	}
	if p.String() != "none" {
		t.Error("name")
	}
}

func TestReplicaWriteAndTakePending(t *testing.T) {
	r := NewReplica("sd", CountBound{Bound: 3}, nil)
	if r.Write("send", "alice", []byte("m1"), 1) {
		t.Error("no flush at 1 pending")
	}
	if r.Write("send", "alice", []byte("m2"), 2) {
		t.Error("no flush at 2 pending")
	}
	if !r.Write("send", "bob", []byte("m3"), 3) {
		t.Error("flush at bound 3")
	}
	if r.Pending() != 3 {
		t.Errorf("pending = %d", r.Pending())
	}
	batch := r.TakePending(3)
	if len(batch) != 3 || r.Pending() != 0 {
		t.Errorf("TakePending = %d items, %d left", len(batch), r.Pending())
	}
	for i, u := range batch {
		if u.Origin != "sd" || u.Seq != uint64(i+1) {
			t.Errorf("update %d = %+v", i, u)
		}
	}
}

func TestReplicaDeadlineTracksLastFlush(t *testing.T) {
	r := NewReplica("sd", Periodic{PeriodMS: 100}, nil)
	if d, ok := r.NextDeadline(); !ok || d != 100 {
		t.Errorf("initial deadline = %v, %v", d, ok)
	}
	r.Write("send", "k", nil, 42)
	r.TakePending(250)
	if d, ok := r.NextDeadline(); !ok || d != 350 {
		t.Errorf("post-flush deadline = %v, %v", d, ok)
	}
}

func TestReplicaApplyRemoteExactlyOnce(t *testing.T) {
	var got []string
	r := NewReplica("b", WriteThrough{}, func(u Update) {
		got = append(got, fmt.Sprintf("%s:%d", u.Origin, u.Seq))
	})
	batch := []Update{
		{Origin: "a", Seq: 1, Op: "send"},
		{Origin: "a", Seq: 2, Op: "send"},
	}
	if n := r.ApplyRemote(batch); n != 2 {
		t.Errorf("first apply = %d", n)
	}
	if n := r.ApplyRemote(batch); n != 0 {
		t.Errorf("duplicate apply = %d", n)
	}
	// Own-origin updates are skipped.
	if n := r.ApplyRemote([]Update{{Origin: "b", Seq: 9}}); n != 0 {
		t.Errorf("own-origin apply = %d", n)
	}
	if !reflect.DeepEqual(got, []string{"a:1", "a:2"}) {
		t.Errorf("applied = %v", got)
	}
}

func TestConflictMap(t *testing.T) {
	cm := NewConflictMap()
	if cm.Conflicts("read", "send") {
		t.Error("undeclared pairs do not conflict")
	}
	cm.Declare("read", "send", true)
	if !cm.Conflicts("read", "send") || !cm.Conflicts("send", "read") {
		t.Error("conflicts must be symmetric")
	}
	cm.Declare("read", "send", false)
	if cm.Conflicts("read", "send") {
		t.Error("conflict maps are dynamic; redeclaration must win")
	}
}

func TestReplicaStaleFor(t *testing.T) {
	cm := NewConflictMap()
	cm.Declare("receive", "send", true)
	r := NewReplica("sd", None{}, nil)
	if r.StaleFor("receive", cm) {
		t.Error("no pending writes, not stale")
	}
	r.Write("send", "alice", nil, 1)
	if !r.StaleFor("receive", cm) {
		t.Error("pending conflicting write must make reads stale")
	}
	if r.StaleFor("browse", cm) {
		t.Error("non-conflicting op is not stale")
	}
	if r.StaleFor("receive", nil) {
		t.Error("nil conflict map never conflicts")
	}
	r.TakePending(2)
	if r.StaleFor("receive", cm) {
		t.Error("flushed replica is not stale")
	}
}

func TestDirectoryFanOut(t *testing.T) {
	d := NewDirectory()
	var atB, atC int
	a := NewReplica("a", WriteThrough{}, nil)
	b := NewReplica("b", WriteThrough{}, func(Update) { atB++ })
	c := NewReplica("c", WriteThrough{}, func(Update) { atC++ })
	d.Register("VMS", a)
	d.Register("VMS", b)
	d.Register("VMS", c)
	if got := d.Replicas("VMS"); !reflect.DeepEqual(got, []string{"a", "b", "c"}) {
		t.Errorf("replicas = %v", got)
	}
	a.Write("send", "k", []byte("x"), 1)
	n := d.Publish("VMS", a.TakePending(1))
	if n != 2 {
		t.Errorf("published to %d replicas, want 2", n)
	}
	if atB != 1 || atC != 1 {
		t.Errorf("applied b=%d c=%d", atB, atC)
	}
	if d.HistoryLen("VMS") != 1 {
		t.Errorf("history = %d", d.HistoryLen("VMS"))
	}
}

func TestDirectoryCatchUpOnRegister(t *testing.T) {
	d := NewDirectory()
	a := NewReplica("a", WriteThrough{}, nil)
	d.Register("VMS", a)
	a.Write("send", "k1", nil, 1)
	a.Write("send", "k2", nil, 2)
	d.Publish("VMS", a.TakePending(2))

	var caught int
	late := NewReplica("late", WriteThrough{}, func(Update) { caught++ })
	d.Register("VMS", late)
	if caught != 2 {
		t.Errorf("late replica caught up %d updates, want 2", caught)
	}
}

func TestDirectoryUnregister(t *testing.T) {
	d := NewDirectory()
	a := NewReplica("a", WriteThrough{}, nil)
	gone := 0
	b := NewReplica("b", WriteThrough{}, func(Update) { gone++ })
	d.Register("VMS", a)
	d.Register("VMS", b)
	d.Unregister("VMS", "b")
	a.Write("send", "k", nil, 1)
	d.Publish("VMS", a.TakePending(1))
	if gone != 0 {
		t.Error("unregistered replica must not receive updates")
	}
	if got := d.Replicas("VMS"); !reflect.DeepEqual(got, []string{"a"}) {
		t.Errorf("replicas = %v", got)
	}
}

func TestDirectoryPublishEmptyBatch(t *testing.T) {
	d := NewDirectory()
	if n := d.Publish("VMS", nil); n != 0 {
		t.Errorf("empty publish = %d", n)
	}
}

// TestQuickCountBoundNeverExceedsBound: under any write pattern, a
// replica that flushes whenever Write reports true never holds more
// than Bound pending updates — the paper's coherence guarantee.
func TestQuickCountBoundNeverExceedsBound(t *testing.T) {
	f := func(writes uint8, boundSeed uint8) bool {
		bound := int(boundSeed%7) + 1
		r := NewReplica("x", CountBound{Bound: bound}, nil)
		for i := 0; i < int(writes); i++ {
			if r.Pending() > bound {
				return false
			}
			if r.Write("send", "k", nil, float64(i)) {
				r.TakePending(float64(i))
			}
		}
		return r.Pending() <= bound
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestQuickExactlyOnceUnderRedelivery: replaying arbitrary prefixes of
// an update stream never double-applies.
func TestQuickExactlyOnceUnderRedelivery(t *testing.T) {
	f := func(n uint8, replays []uint8) bool {
		total := int(n%32) + 1
		stream := make([]Update, total)
		for i := range stream {
			stream[i] = Update{Origin: "a", Seq: uint64(i + 1)}
		}
		applied := 0
		r := NewReplica("b", WriteThrough{}, func(Update) { applied++ })
		for _, cut := range replays {
			k := int(cut) % (total + 1)
			r.ApplyRemote(stream[:k])
		}
		r.ApplyRemote(stream)
		return applied == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
