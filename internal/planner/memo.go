package planner

import (
	"runtime"
	"sync"

	"partsvc/internal/netmodel"
	"partsvc/internal/property"
	"partsvc/internal/spec"
)

// planMemo caches pure per-plan-call evaluations. Property-expression
// evaluation and placement construction are pure in (component, node,
// factored configuration) — and, for head placements, the requesting
// user — yet the search loops re-derive them for every candidate
// mapping. One memo is created per plan call (and per parallel worker:
// the maps are not synchronized) and discarded with it, so memoized
// results can never outlive a network or specification change.
type planMemo struct {
	evals  map[evalKey]evalResult
	places map[placeKey]placeResult
}

// evalKey identifies one InterfaceSpec evaluation site: a component's
// implemented or required interface, evaluated in the scope of a node
// and a factored configuration.
type evalKey struct {
	comp string
	role string // "i:" + interface name, or "r:" + required interface
	node netmodel.NodeID
	cfg  string // Config fingerprint
}

type evalResult struct {
	props property.Set
	err   error
}

// placeKey identifies one placementFor call: component at node, with
// head placements (which see the request user) keyed separately.
type placeKey struct {
	comp string
	node netmodel.NodeID
	head bool
}

type placeResult struct {
	p  Placement
	ok bool
}

func newPlanMemo() *planMemo {
	return &planMemo{
		evals:  map[evalKey]evalResult{},
		places: map[placeKey]placeResult{},
	}
}

// beginPlan resets per-call state: search statistics, the evaluation
// memo, and the route handle — the epoch-current one, or the pinned one
// when an in-flight replan wave froze the planner's topology view.
func (pl *Planner) beginPlan() {
	pl.stats = Stats{}
	pl.memo = newPlanMemo()
	if pl.pinnedRoutes != nil {
		pl.routes = pl.pinnedRoutes
	} else {
		pl.routes = pl.Net.Routes()
	}
	pl.hits0, pl.misses0 = pl.routes.Counters()
}

// endPlan folds the route-cache counter deltas accumulated during this
// plan call into the statistics.
func (pl *Planner) endPlan() {
	h, m := pl.routes.Counters()
	pl.stats.RouteCacheHits = int(h - pl.hits0)
	pl.stats.RouteCacheMisses = int(m - pl.misses0)
}

// pathEnv resolves the cached route between two nodes together with the
// linkage's property environment: the cached link aggregate for real
// paths, the planner's loopback environment for co-located components.
// The returned env is shared (cache- or planner-owned) and read-only.
func (pl *Planner) pathEnv(from, to netmodel.NodeID) (netmodel.Path, property.Set, bool) {
	path, env, ok := pl.routes.PathEnv(from, to)
	if !ok {
		return netmodel.Path{}, nil, false
	}
	if env == nil {
		env = pl.LoopbackEnv
	}
	return path, env, true
}

// linkageEnv returns the property environment a linkage along the path
// experiences: the planner's loopback environment for co-located
// components, otherwise the cached link aggregate (falling back to a
// direct computation for paths minted under an older epoch). The
// returned set is shared and read-only.
func (pl *Planner) linkageEnv(path netmodel.Path) property.Set {
	if path.IsLoopback() {
		return pl.LoopbackEnv
	}
	if _, env, ok := pl.routes.PathEnv(path.Nodes[0], path.Nodes[len(path.Nodes)-1]); ok {
		return env
	}
	return path.Env(pl.Net, pl.LoopbackEnv)
}

// evalImplProps memoizes InterfaceSpec.EvalProps for the component's
// implementation of iface, scoped at the placement's node and config.
func (pl *Planner) evalImplProps(comp spec.Component, iface string, place Placement) (property.Set, error) {
	impl, _ := comp.ImplementsInterface(iface)
	return pl.evalProps(impl, evalKey{comp.Name, "i:" + iface, place.Node, place.configFP()}, place)
}

// evalReqProps memoizes the component's first required interface
// evaluated at the placement.
func (pl *Planner) evalReqProps(comp spec.Component, place Placement) (property.Set, error) {
	req := comp.Requires[0]
	return pl.evalProps(req, evalKey{comp.Name, "r:" + req.Name, place.Node, place.configFP()}, place)
}

// evalReqPropsAt memoizes the component's i-th required interface (the
// tree planner links one provider subtree per requirement).
func (pl *Planner) evalReqPropsAt(comp spec.Component, i int, place Placement) (property.Set, error) {
	req := comp.Requires[i]
	return pl.evalProps(req, evalKey{comp.Name, "r:" + req.Name, place.Node, place.configFP()}, place)
}

func (pl *Planner) evalProps(is spec.InterfaceSpec, key evalKey, place Placement) (property.Set, error) {
	if r, ok := pl.memo.evals[key]; ok {
		return r.props, r.err
	}
	props, err := is.EvalProps(pl.scopeAt(place))
	pl.memo.evals[key] = evalResult{props, err}
	return props, err
}

// placementForCached memoizes placementFor. The request user is fixed
// for the duration of a plan call, so (component, node, head?) fully
// determines the result. Callers still account rejections themselves,
// exactly as with the uncached call.
func (pl *Planner) placementForCached(comp spec.Component, node netmodel.NodeID, req Request, pos int) (Placement, bool) {
	key := placeKey{comp.Name, node, pos == 0}
	if r, ok := pl.memo.places[key]; ok {
		return r.p, r.ok
	}
	p, ok := pl.placementFor(comp, node, req, pos)
	if ok {
		p.sealKeys()
	}
	pl.memo.places[key] = placeResult{p, ok}
	return p, ok
}

// workerClone builds a shallow planner copy for one parallel worker:
// shared read-only views of the service, network, route handle and
// reuse set, but private statistics and a private memo, so workers
// never contend and their counters merge losslessly afterwards.
func (pl *Planner) workerClone() *Planner {
	c := *pl
	c.stats = Stats{}
	c.memo = newPlanMemo()
	return &c
}

// workerCount resolves the effective parallelism for fanning chains
// out: the Workers field if positive, otherwise GOMAXPROCS, never more
// than the number of chains.
func (pl *Planner) workerCount(chains int) int {
	w := pl.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > chains {
		w = chains
	}
	if w < 1 {
		w = 1
	}
	return w
}

// planChains runs dpChain over every chain and reduces to the best
// deployment in chain order — the same total order as a sequential
// loop, so the parallel and sequential paths are bit-identical. With
// one worker (or one chain) it stays on the calling goroutine.
func (pl *Planner) planChains(chains []Chain, req Request) *Deployment {
	results := make([]*Deployment, len(chains))
	if w := pl.workerCount(len(chains)); w > 1 {
		idx := make(chan int)
		var wg sync.WaitGroup
		workerStats := make([]Stats, w)
		for i := 0; i < w; i++ {
			wg.Add(1)
			go func(slot int) {
				defer wg.Done()
				wp := pl.workerClone()
				for ci := range idx {
					results[ci] = wp.dpChain(chains[ci], req)
				}
				workerStats[slot] = wp.stats
			}(i)
		}
		for ci := range chains {
			idx <- ci
		}
		close(idx)
		wg.Wait()
		for _, ws := range workerStats {
			pl.stats.add(ws)
		}
	} else {
		for ci, chain := range chains {
			results[ci] = pl.dpChain(chain, req)
		}
	}
	var best *Deployment
	for _, dep := range results {
		if dep == nil {
			continue
		}
		if best == nil || pl.better(req.Objective, dep, best) {
			best = dep
		}
	}
	return best
}

// add folds another accumulation into s (ChainsEnumerated and the
// route-cache counters are owned by the coordinating planner and are
// zero in worker stats).
func (s *Stats) add(o Stats) {
	s.ChainsEnumerated += o.ChainsEnumerated
	s.MappingsTried += o.MappingsTried
	s.RejectedConditions += o.RejectedConditions
	s.RejectedProps += o.RejectedProps
	s.RejectedLoad += o.RejectedLoad
	s.RejectedNoPath += o.RejectedNoPath
	s.RouteCacheHits += o.RouteCacheHits
	s.RouteCacheMisses += o.RouteCacheMisses
	s.DPFallbacks += o.DPFallbacks
}
