package planner

import (
	"testing"

	"partsvc/internal/property"
	"partsvc/internal/spec"
	"partsvc/internal/topology"
)

// TestDPMatchesExhaustiveCaseStudy: the DP planner produces exactly the
// deployments of the exhaustive planner for all three Figure 6 requests
// (ablation A1's correctness half).
func TestDPMatchesExhaustiveCaseStudy(t *testing.T) {
	requests := []Request{
		{Interface: spec.IfaceClient, ClientNode: topology.NYClient, User: "Alice", RateRPS: 50},
		{Interface: spec.IfaceClient, ClientNode: topology.SDClient, User: "Alice", RateRPS: 50},
		{Interface: spec.IfaceClient, ClientNode: topology.SeaClient, User: "Carol", RateRPS: 50},
	}
	exh := caseStudyPlanner(t)
	dp := caseStudyPlanner(t)
	for i, req := range requests {
		want := planOrFail(t, exh, req)
		got, err := dp.PlanDP(req)
		if err != nil {
			t.Fatalf("request %d: PlanDP: %v", i, err)
		}
		if got.String() != want.String() {
			t.Errorf("request %d:\n  exhaustive: %s\n  dp:         %s", i, want, got)
		}
		if diff := got.ExpectedLatencyMS - want.ExpectedLatencyMS; diff > 1e-6 || diff < -1e-6 {
			t.Errorf("request %d: latency %v (dp) vs %v (exhaustive)", i, got.ExpectedLatencyMS, want.ExpectedLatencyMS)
		}
		// Register results in both planners to keep their worlds aligned.
		exh.AddExisting(want.Placements...)
		dp.AddExisting(got.Placements...)
	}
}

// TestDPMatchesExhaustiveMinCost: equality also holds under MinCost.
func TestDPMatchesExhaustiveMinCost(t *testing.T) {
	req := Request{
		Interface: spec.IfaceClient, ClientNode: topology.SDClient,
		User: "Alice", RateRPS: 200, Objective: MinCost,
	}
	want := planOrFail(t, caseStudyPlanner(t), req)
	got, err := caseStudyPlanner(t).PlanDP(req)
	if err != nil {
		t.Fatal(err)
	}
	if got.String() != want.String() {
		t.Errorf("min-cost:\n  exhaustive: %s\n  dp:         %s", want, got)
	}
}

// TestDPMaxCapacityFallsBack: the MaxCapacity objective needs
// whole-deployment headroom and delegates to the exhaustive search.
func TestDPMaxCapacityFallsBack(t *testing.T) {
	req := Request{
		Interface: spec.IfaceClient, ClientNode: topology.SDClient,
		User: "Alice", RateRPS: 50, Objective: MaxCapacity,
	}
	want := planOrFail(t, caseStudyPlanner(t), req)
	got, err := caseStudyPlanner(t).PlanDP(req)
	if err != nil {
		t.Fatal(err)
	}
	if got.String() != want.String() {
		t.Errorf("max-capacity:\n  exhaustive: %s\n  dp: %s", want, got)
	}
}

// TestDPFasterSearch: the DP examines far fewer assignments than the
// exhaustive mapper on the same request (A1's speedup half; the wall
// clock comparison lives in the benchmark suite).
func TestDPFasterSearch(t *testing.T) {
	req := Request{Interface: spec.IfaceClient, ClientNode: topology.SDClient, User: "Alice", RateRPS: 50}
	exh := caseStudyPlanner(t)
	planOrFail(t, exh, req)
	exhTried := exh.Stats().MappingsTried

	dp := caseStudyPlanner(t)
	if _, err := dp.PlanDP(req); err != nil {
		t.Fatal(err)
	}
	dpTried := dp.Stats().MappingsTried
	if dpTried == 0 {
		t.Fatal("DP stats not populated")
	}
	if dpTried*2 > exhTried {
		t.Errorf("DP should examine far fewer combinations: dp=%d exhaustive=%d", dpTried, exhTried)
	}
}

// TestDPErrors mirrors Plan's validation errors.
func TestDPErrors(t *testing.T) {
	pl := caseStudyPlanner(t)
	if _, err := pl.PlanDP(Request{Interface: spec.IfaceClient, ClientNode: "ghost"}); err == nil {
		t.Error("unknown client node must fail")
	}
	if _, err := pl.PlanDP(Request{Interface: "Ghost", ClientNode: topology.NYClient}); err == nil {
		t.Error("unknown interface must fail")
	}
	if _, err := pl.PlanDP(Request{Interface: spec.IfaceClient, ClientNode: topology.SDClient, User: "Alice", RateRPS: 1e9}); err == nil {
		t.Error("infeasible rate must fail")
	}
}

// TestDPSeattleIncremental: the incremental Seattle plan via DP also
// attaches to the San Diego view.
func TestDPSeattleIncremental(t *testing.T) {
	pl := caseStudyPlanner(t)
	sd, err := pl.PlanDP(Request{Interface: spec.IfaceClient, ClientNode: topology.SDClient, User: "Alice", RateRPS: 50})
	if err != nil {
		t.Fatal(err)
	}
	pl.AddExisting(sd.Placements...)
	sea, err := pl.PlanDP(Request{Interface: spec.IfaceClient, ClientNode: topology.SeaClient, User: "Carol", RateRPS: 50})
	if err != nil {
		t.Fatal(err)
	}
	tail := sea.Placements[len(sea.Placements)-1]
	if tail.Component != spec.CompViewMailServer || tail.Node != topology.SDClient || !tail.Reused {
		t.Errorf("Seattle DP plan must terminate at the SD view: %s", sea)
	}
}

// TestDPMatchesExhaustiveOnRandomNets: on random Waxman networks the
// two mappers agree on feasibility and, when feasible, on the chosen
// deployment (A1's correctness claim beyond the case study).
func TestDPMatchesExhaustiveOnRandomNets(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		net, err := topology.Waxman(topology.DefaultWaxman(8, seed))
		if err != nil {
			t.Fatal(err)
		}
		nodes := net.Nodes()
		nodes[0].Props["TrustLevel"] = property.Int(5)

		build := func() *Planner {
			pl := New(spec.MailService(), net)
			ms, err := pl.PrimaryPlacement(spec.CompMailServer, nodes[0].ID)
			if err != nil {
				t.Fatal(err)
			}
			pl.AddExisting(ms)
			return pl
		}
		req := Request{
			Interface: spec.IfaceClient, ClientNode: nodes[2].ID, User: "Alice", RateRPS: 10,
		}
		exh, errA := build().Plan(req)
		dp, errB := build().PlanDP(req)
		if (errA == nil) != (errB == nil) {
			t.Errorf("seed %d: feasibility disagrees: exhaustive=%v dp=%v", seed, errA, errB)
			continue
		}
		if errA != nil {
			continue
		}
		if exh.String() != dp.String() {
			t.Errorf("seed %d:\n  exhaustive: %s\n  dp:         %s", seed, exh, dp)
		}
	}
}
