package planner

import (
	"testing"

	"partsvc/internal/property"
	"partsvc/internal/spec"
	"partsvc/internal/topology"
)

// TestParallelPlanDPMatchesSequential: fanning chains over the worker
// pool is an implementation detail — across seeded random topologies
// the parallel planner returns exactly the deployment the sequential
// one does, with identical search statistics. Run under -race this also
// exercises worker isolation (shared read-only network and route cache,
// private stats and memos).
func TestParallelPlanDPMatchesSequential(t *testing.T) {
	svc := spec.MailService()
	for seed := int64(1); seed <= 4; seed++ {
		net, err := topology.Waxman(topology.DefaultWaxman(10, seed))
		if err != nil {
			t.Fatal(err)
		}
		nodes := net.Nodes()
		nodes[0].Props["TrustLevel"] = property.Int(5)

		plan := func(workers int, req Request) (*Deployment, Stats, error) {
			pl := New(svc, net)
			pl.Workers = workers
			ms, err := pl.PrimaryPlacement(spec.CompMailServer, nodes[0].ID)
			if err != nil {
				t.Fatalf("seed %d: no primary host: %v", seed, err)
			}
			pl.AddExisting(ms)
			dep, err := pl.PlanDP(req)
			return dep, pl.Stats(), err
		}

		for _, client := range []int{1, 4, 8} {
			req := Request{
				Interface: spec.IfaceClient, ClientNode: nodes[client].ID,
				User: "Alice", RateRPS: 10,
			}
			seqDep, seqSt, seqErr := plan(1, req)
			parDep, parSt, parErr := plan(0, req)

			if (seqErr == nil) != (parErr == nil) {
				t.Fatalf("seed %d client %s: feasibility diverged: seq=%v par=%v",
					seed, req.ClientNode, seqErr, parErr)
			}
			if seqErr != nil {
				continue
			}
			if seqDep.String() != parDep.String() {
				t.Errorf("seed %d client %s: deployments diverged:\nseq: %s\npar: %s",
					seed, req.ClientNode, seqDep, parDep)
			}
			if seqDep.ExpectedLatencyMS != parDep.ExpectedLatencyMS ||
				seqDep.CapacityRPS != parDep.CapacityRPS ||
				seqDep.NewComponents != parDep.NewComponents {
				t.Errorf("seed %d client %s: metrics diverged: seq=(%.4f,%.1f,%d) par=(%.4f,%.1f,%d)",
					seed, req.ClientNode,
					seqDep.ExpectedLatencyMS, seqDep.CapacityRPS, seqDep.NewComponents,
					parDep.ExpectedLatencyMS, parDep.CapacityRPS, parDep.NewComponents)
			}
			// The search itself must be identical, not just its winner.
			// (Route-cache counters are excluded: the warm cache from the
			// sequential pass changes the hit/miss split, never the paths.)
			if seqSt.ChainsEnumerated != parSt.ChainsEnumerated ||
				seqSt.MappingsTried != parSt.MappingsTried ||
				seqSt.RejectedConditions != parSt.RejectedConditions ||
				seqSt.RejectedProps != parSt.RejectedProps ||
				seqSt.RejectedLoad != parSt.RejectedLoad ||
				seqSt.RejectedNoPath != parSt.RejectedNoPath {
				t.Errorf("seed %d client %s: search stats diverged:\nseq: %+v\npar: %+v",
					seed, req.ClientNode, seqSt, parSt)
			}
		}
	}
}

// TestWorkerCountBounds: the pool never exceeds the chain count and
// never drops below one.
func TestWorkerCountBounds(t *testing.T) {
	pl := &Planner{Workers: 8}
	if got := pl.workerCount(3); got != 3 {
		t.Errorf("workerCount(3) with 8 workers = %d, want 3", got)
	}
	pl.Workers = 1
	if got := pl.workerCount(100); got != 1 {
		t.Errorf("workerCount must honor Workers=1, got %d", got)
	}
	pl.Workers = 0
	if got := pl.workerCount(0); got != 1 {
		t.Errorf("workerCount(0) must clamp to 1, got %d", got)
	}
}
