package planner

import (
	"hash/fnv"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// This file makes replan results shareable across planner instances.
// Per-call memoization (planMemo) already dedupes work inside one plan;
// a replan *wave* — thousands of sessions reacting to one topology
// event — needs the next level up: two sessions whose requests, reuse
// sets, and route epoch are identical must plan once, not twice. The
// identity layer is the fingerprint trio below (request, reuse set,
// epoch), all derived from canonical content — component names, node
// IDs, property fingerprints — so they are stable across planner
// instances, processes, and runs; nothing keys off pointer identity or
// per-instance state.

// Fingerprint returns a canonical content identity for the request:
// two requests with equal fingerprints plan identically against the
// same network and reuse set, regardless of which planner instance
// runs them.
func (r Request) Fingerprint() string {
	return r.Interface + "|" + string(r.ClientNode) + "|" + r.User + "|" +
		r.RequireProps.Fingerprint() + "|" +
		strconv.FormatFloat(r.RateRPS, 'g', -1, 64) + "|" + r.Objective.String()
}

// ExistingFingerprint returns a canonical content identity for the
// planner's reuse set: sorted placement keys with their offered
// properties and upstream charges folded in. Planners with equal
// service specs, networks, and ExistingFingerprints produce identical
// plans for equal requests.
func (pl *Planner) ExistingFingerprint() string {
	keys := make([]string, 0, len(pl.Existing))
	for _, p := range pl.Existing {
		keys = append(keys, p.Key()+"^"+p.Offers.Fingerprint()+"^"+
			strconv.FormatFloat(p.UpstreamMS, 'g', -1, 64))
	}
	sort.Strings(keys)
	h := fnv.New64a()
	for _, k := range keys {
		h.Write([]byte(k))
		h.Write([]byte{0})
	}
	return strconv.FormatUint(h.Sum64(), 16)
}

// Clone returns a deep-enough copy for cross-session sharing: the
// placement and edge slices are private, while property sets and path
// node lists stay shared (they are read-only by contract everywhere in
// the planner).
func (d *Deployment) Clone() *Deployment {
	if d == nil {
		return nil
	}
	nd := *d
	nd.Placements = append([]Placement(nil), d.Placements...)
	nd.Edges = append([]Edge(nil), d.Edges...)
	return &nd
}

// Clone copies the diff with private slices (see Deployment.Clone for
// the sharing contract).
func (d *Diff) Clone() *Diff {
	if d == nil {
		return nil
	}
	return &Diff{
		New:     d.New.Clone(),
		Install: append([]Placement(nil), d.Install...),
		Remove:  append([]Placement(nil), d.Remove...),
		Evicted: append([]Placement(nil), d.Evicted...),
	}
}

// WaveMemo shares replan results across the sessions of one replan
// wave. Keys must capture the full planning identity — request
// fingerprint, reuse-set fingerprint, route epoch (WaveKey assembles
// exactly that) — and each key is computed exactly once even under
// concurrent Do calls from many shard workers: the first caller runs
// compute, later callers block until it lands and share the result.
// Results are cloned on the way out, so wave members can commit their
// copies independently.
type WaveMemo struct {
	mu      sync.Mutex
	entries map[string]*waveEntry

	hits, misses atomic.Uint64
}

type waveEntry struct {
	done  chan struct{}
	diff  *Diff
	stats Stats
	err   error
}

// NewWaveMemo returns an empty wave memo.
func NewWaveMemo() *WaveMemo {
	return &WaveMemo{entries: map[string]*waveEntry{}}
}

// WaveKey assembles the memo key for one session's replan: the request
// identity, the reuse-set identity, the pinned route epoch, and the
// session's current deployment shape (a replan diff is relative to it).
func WaveKey(req Request, existingFP string, epoch uint64, old *Deployment) string {
	key := req.Fingerprint() + "#" + existingFP + "#" + strconv.FormatUint(epoch, 10) + "#"
	if old != nil {
		keys := make([]string, len(old.Placements))
		for i, p := range old.Placements {
			keys[i] = p.Key()
		}
		key += "[" + joinKeys(keys) + "]"
	}
	return key
}

func joinKeys(keys []string) string {
	out := ""
	for i, k := range keys {
		if i > 0 {
			out += ","
		}
		out += k
	}
	return out
}

// Do returns the memoized result for key, running compute exactly once
// across all concurrent callers. The returned diff is a private clone;
// stats are the single compute's search statistics (callers decide how
// to attribute them — the fleet counts them once per computation, not
// once per session).
func (m *WaveMemo) Do(key string, compute func() (*Diff, Stats, error)) (*Diff, Stats, bool, error) {
	m.mu.Lock()
	e, ok := m.entries[key]
	if !ok {
		e = &waveEntry{done: make(chan struct{})}
		m.entries[key] = e
		m.mu.Unlock()
		e.diff, e.stats, e.err = compute()
		close(e.done)
		m.misses.Add(1)
		return e.diff.Clone(), e.stats, false, e.err
	}
	m.mu.Unlock()
	<-e.done
	m.hits.Add(1)
	return e.diff.Clone(), e.stats, true, e.err
}

// Counters returns the cumulative hit and miss counts (a miss ran
// compute; a hit shared it).
func (m *WaveMemo) Counters() (hits, misses uint64) {
	return m.hits.Load(), m.misses.Load()
}

// Len returns the number of distinct keys computed.
func (m *WaveMemo) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.entries)
}
