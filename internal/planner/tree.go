package planner

import (
	"fmt"
	"math"
	"strings"

	"partsvc/internal/netmodel"
	"partsvc/internal/property"
	"partsvc/internal/spec"
)

// The paper's implemented planner handles chains and announces a
// partial-order constraint solver for general directed component graphs
// (Section 3.3). This file provides that generalization for tree-shaped
// linkage graphs: components with multiple required interfaces obtain
// one provider subtree per requirement, and a backtracking mapper
// assigns nodes under the same three validity conditions.

// Tree is a linkage tree: the root implements the requested interface
// and each child subtree provides one of the root's required
// interfaces, in declaration order.
type Tree struct {
	comp     spec.Component
	anchor   *Placement
	children []*Tree
}

// Names renders the tree as a nested expression, e.g.
// "Portal(MailServer, LogServer)".
func (t *Tree) Names() string {
	if len(t.children) == 0 {
		name := t.comp.Name
		if t.anchor != nil {
			name += "*"
		}
		return name
	}
	parts := make([]string, len(t.children))
	for i, c := range t.children {
		parts[i] = c.Names()
	}
	return t.comp.Name + "(" + strings.Join(parts, ", ") + ")"
}

// size counts the tree's components.
func (t *Tree) size() int {
	n := 1
	for _, c := range t.children {
		n += c.size()
	}
	return n
}

// EnumerateTrees finds the valid linkage trees satisfying an interface,
// bounded by MaxChainLen components per tree. Anchors terminate subtrees
// exactly as in chain enumeration.
func (pl *Planner) EnumerateTrees(iface string) []*Tree {
	var build func(iface string, budget int) []*Tree
	build = func(iface string, budget int) []*Tree {
		if budget <= 0 {
			return nil
		}
		var out []*Tree
		for i := range pl.Existing {
			anchor := &pl.Existing[i]
			comp, ok := pl.Service.Component(anchor.Component)
			if !ok {
				continue
			}
			if _, implements := comp.ImplementsInterface(iface); implements && len(anchor.Offers) > 0 {
				out = append(out, &Tree{comp: comp, anchor: anchor})
			}
		}
		for _, comp := range pl.Service.ImplementersOf(iface) {
			if len(comp.Requires) == 0 {
				out = append(out, &Tree{comp: comp})
				continue
			}
			// Cartesian product of provider subtrees per requirement.
			partials := []*Tree{{comp: comp}}
			feasible := true
			for _, req := range comp.Requires {
				subs := build(req.Name, budget-1)
				if len(subs) == 0 {
					feasible = false
					break
				}
				var next []*Tree
				for _, p := range partials {
					for _, s := range subs {
						grown := &Tree{comp: p.comp, children: append(append([]*Tree(nil), p.children...), s)}
						if grown.size() <= budget {
							next = append(next, grown)
						}
					}
				}
				partials = next
			}
			if feasible {
				out = append(out, partials...)
			}
		}
		return out
	}
	return build(iface, pl.maxLen())
}

// TreePlacement is a placement within a tree deployment, with its parent
// index (-1 for the root) and the path to its parent.
type TreePlacement struct {
	Placement
	Parent int
	Path   netmodel.Path
}

// TreeDeployment is a validated mapping of a linkage tree.
type TreeDeployment struct {
	// Placements lists instances in pre-order; element 0 is the root at
	// the client node.
	Placements []TreePlacement
	// ExpectedLatencyMS and NewComponents mirror Deployment.
	ExpectedLatencyMS float64
	NewComponents     int
}

// String renders the deployment with parent links.
func (d *TreeDeployment) String() string {
	parts := make([]string, len(d.Placements))
	for i, p := range d.Placements {
		if p.Parent < 0 {
			parts[i] = p.Placement.String()
		} else {
			parts[i] = fmt.Sprintf("%s<-%d", p.Placement.String(), p.Parent)
		}
	}
	return strings.Join(parts, " ")
}

// PlanTree satisfies a request over tree-shaped linkage graphs. It
// reuses the chain machinery's constraint semantics: deployment
// conditions at every node, property compatibility (with modification
// rules) on every edge, and a per-edge bandwidth plus per-node CPU load
// check. The MinLatency deployment penalty applies as in Plan.
func (pl *Planner) PlanTree(req Request) (*TreeDeployment, error) {
	pl.beginPlan()
	defer pl.endPlan()
	if _, ok := pl.Net.Node(req.ClientNode); !ok {
		return nil, fmt.Errorf("planner: client node %q not in network", req.ClientNode)
	}
	if _, ok := pl.Service.Interface(req.Interface); !ok {
		return nil, fmt.Errorf("planner: interface %q not in service %q", req.Interface, pl.Service.Name)
	}
	trees := pl.EnumerateTrees(req.Interface)
	pl.stats.ChainsEnumerated = len(trees)
	if len(trees) == 0 {
		return nil, fmt.Errorf("planner: no component tree implements %q", req.Interface)
	}
	var best *TreeDeployment
	for _, tree := range trees {
		dep := pl.mapTree(tree, req)
		if dep == nil {
			continue
		}
		if best == nil || pl.treeBetter(req.Objective, dep, best) {
			best = dep
		}
	}
	if best == nil {
		return nil, fmt.Errorf("planner: no valid tree mapping for %q from %s", req.Interface, req.ClientNode)
	}
	return best, nil
}

func (pl *Planner) treeBetter(o Objective, a, b *TreeDeployment) bool {
	var ka, kb [2]float64
	switch o {
	case MinCost:
		ka = [2]float64{float64(a.NewComponents), a.ExpectedLatencyMS}
		kb = [2]float64{float64(b.NewComponents), b.ExpectedLatencyMS}
	default:
		ka = [2]float64{a.ExpectedLatencyMS + pl.DeployPenaltyMS*float64(a.NewComponents), float64(a.NewComponents)}
		kb = [2]float64{b.ExpectedLatencyMS + pl.DeployPenaltyMS*float64(b.NewComponents), float64(b.NewComponents)}
	}
	const eps = 1e-9
	if math.Abs(ka[0]-kb[0]) > eps {
		return ka[0] < kb[0]
	}
	if math.Abs(ka[1]-kb[1]) > eps {
		return ka[1] < kb[1]
	}
	return a.String() < b.String()
}

// treeNode is the flattened pre-order view used during mapping.
type treeNode struct {
	tree   *Tree
	parent int // index into the flattened slice; -1 for root
	weight float64
}

// flatten produces the pre-order node list with traffic weights: the
// root has weight 1 and each child's weight is its parent's weight times
// the parent's RRF.
func flatten(t *Tree) []treeNode {
	var out []treeNode
	var walk func(t *Tree, parent int, weight float64)
	walk = func(t *Tree, parent int, weight float64) {
		idx := len(out)
		out = append(out, treeNode{tree: t, parent: parent, weight: weight})
		for _, c := range t.children {
			walk(c, idx, weight*t.comp.Behaviors.EffectiveRRF())
		}
	}
	walk(t, -1, 1)
	return out
}

// mapTree assigns nodes to a flattened tree by backtracking.
func (pl *Planner) mapTree(tree *Tree, req Request) *TreeDeployment {
	if tree.anchor != nil {
		return nil
	}
	flat := flatten(tree)
	head, ok := pl.placementForCached(flat[0].tree.comp, req.ClientNode, req, 0)
	if !ok {
		pl.stats.RejectedConditions++
		return nil
	}
	if anchor, found := pl.anchorFor(head); found {
		head = anchor
	}
	places := make([]Placement, len(flat))
	places[0] = head

	var best *TreeDeployment
	nodes := pl.Net.Nodes()

	var assign func(pos int)
	assign = func(pos int) {
		if pos == len(flat) {
			pl.stats.MappingsTried++
			if dep := pl.validateTree(flat, places, req); dep != nil {
				if best == nil || pl.treeBetter(req.Objective, dep, best) {
					best = dep
				}
			}
			return
		}
		tn := flat[pos]
		if tn.tree.anchor != nil {
			p := *tn.tree.anchor
			p.Reused = true
			places[pos] = p
			assign(pos + 1)
			return
		}
		comp := tn.tree.comp
		if pl.isStatefulPrimary(comp) && pl.hasAnyInstance(comp.Name) {
			for _, e := range pl.Existing {
				if e.Component != comp.Name {
					continue
				}
				p := e
				p.Reused = true
				places[pos] = p
				assign(pos + 1)
			}
			return
		}
		caching := comp.Behaviors.EffectiveRRF() < 1
		for _, node := range nodes {
			p, ok := pl.placementForCached(comp, node.ID, req, pos)
			if !ok {
				pl.stats.RejectedConditions++
				continue
			}
			// No loops or duplicated replicas along the ancestor path
			// (the same rules as the chain mapper, applied per branch).
			id := p.Component + "{" + p.configFP() + "}"
			blocked := false
			for a := tn.parent; a >= 0; a = flat[a].parent {
				if p.Key() == places[a].Key() {
					blocked = true
					break
				}
				if caching && id == places[a].Component+"{"+places[a].configFP()+"}" {
					blocked = true
					break
				}
			}
			if blocked {
				continue
			}
			if anchor, found := pl.anchorFor(p); found {
				p = anchor
			}
			places[pos] = p
			assign(pos + 1)
		}
	}
	assign(1)
	return best
}

// validateTree checks conditions 2 and 3 over the tree and computes
// metrics. Property propagation runs bottom-up: each subtree's offer is
// computed from its children's offers modified by the connecting path
// environments.
func (pl *Planner) validateTree(flat []treeNode, places []Placement, req Request) *TreeDeployment {
	paths := make([]netmodel.Path, len(flat))
	for i := 1; i < len(flat); i++ {
		p, ok := pl.routes.Path(places[flat[i].parent].Node, places[i].Node)
		if !ok {
			pl.stats.RejectedNoPath++
			return nil
		}
		paths[i] = p
	}

	// children[i] lists the flattened indices of i's children in order.
	children := make([][]int, len(flat))
	for i := 1; i < len(flat); i++ {
		children[flat[i].parent] = append(children[flat[i].parent], i)
	}

	// offerOf computes the effective property set node i offers its
	// parent over the given interface, recursing through its children.
	// Each node's offer is recorded so the deployment can register its
	// placements as reusable anchors.
	offersRec := make([]property.Set, len(flat))
	var computeOffer func(i int, iface string) (property.Set, bool)
	offerOf := func(i int, iface string) (property.Set, bool) {
		s, ok := computeOffer(i, iface)
		if ok {
			offersRec[i] = s
		}
		return s, ok
	}
	computeOffer = func(i int, iface string) (property.Set, bool) {
		tn := flat[i]
		if tn.tree.anchor != nil {
			return tn.tree.anchor.Offers.Clone(), true
		}
		// Pass-through base: the property-wise minimum of what all
		// children deliver (a multi-input component is only as strong as
		// its weakest input), restricted to the output interface.
		var carried property.Set
		for ci, c := range children[i] {
			childIface := tn.tree.comp.Requires[ci].Name
			childOffer, ok := offerOf(c, childIface)
			if !ok {
				return nil, false
			}
			env := pl.linkageEnv(paths[c])
			received, err := pl.Service.ModRules.ApplySetRO(childOffer, env)
			if err != nil {
				return nil, false
			}
			reqProps, err := pl.evalReqPropsAt(tn.tree.comp, ci, places[i])
			if err != nil {
				return nil, false
			}
			if !received.Satisfies(reqProps) {
				return nil, false
			}
			if carried == nil {
				carried = received.Clone()
			} else {
				for name, v := range carried {
					rv, ok := received[name]
					if !ok {
						delete(carried, name)
						continue
					}
					m := property.Min(v, rv)
					if !m.IsValid() {
						delete(carried, name)
						continue
					}
					carried[name] = m
				}
				for name := range received {
					if _, ok := carried[name]; !ok {
						delete(carried, name)
					}
				}
			}
		}
		if iface == "" {
			return property.Set{}, true
		}
		decl, _ := pl.Service.Interface(iface)
		out := property.Set{}
		for name, v := range carried {
			if decl.HasProperty(name) {
				out[name] = v
			}
		}
		if _, ok := tn.tree.comp.ImplementsInterface(iface); !ok {
			return nil, false
		}
		gen, err := pl.evalImplProps(tn.tree.comp, iface, places[i])
		if err != nil {
			return nil, false
		}
		return out.Merge(gen), true
	}

	rootOffer, ok := offerOf(0, req.Interface)
	if !ok {
		pl.stats.RejectedProps++
		return nil
	}
	if len(req.RequireProps) > 0 && !rootOffer.Satisfies(req.RequireProps) {
		pl.stats.RejectedProps++
		return nil
	}

	// Load: per-node CPU aggregation and per-link bandwidth aggregation
	// at the requested rate.
	if req.RateRPS > 0 {
		cpuPerNode := map[netmodel.NodeID]float64{}
		for i, tn := range flat {
			cpuPerNode[places[i].Node] += req.RateRPS * tn.weight * tn.tree.comp.Behaviors.CPUMSPerRequest
			if c := tn.tree.comp.Behaviors.CapacityRPS; c > 0 && req.RateRPS*tn.weight > c {
				pl.stats.RejectedLoad++
				return nil
			}
		}
		for node, ms := range cpuPerNode {
			n, _ := pl.Net.Node(node)
			if n.CPUCapacityRPS > 0 && ms > n.CPUCapacityRPS {
				pl.stats.RejectedLoad++
				return nil
			}
		}
		type linkKey struct{ a, b netmodel.NodeID }
		bitsPerLink := map[linkKey]float64{}
		for i := 1; i < len(flat); i++ {
			b := flat[i].tree.comp.Behaviors
			bytes := float64(b.RequestBytes+b.ResponseBytes) * 8
			for j := 0; j+1 < len(paths[i].Nodes); j++ {
				a, bn := paths[i].Nodes[j], paths[i].Nodes[j+1]
				if bn < a {
					a, bn = bn, a
				}
				bitsPerLink[linkKey{a, bn}] += req.RateRPS * flat[i].weight * bytes
			}
		}
		for key, bits := range bitsPerLink {
			l, ok := pl.Net.Link(key.a, key.b)
			if ok && l.BandwidthMbps > 0 && bits > l.BandwidthMbps*1e6 {
				pl.stats.RejectedLoad++
				return nil
			}
		}
	}

	dep := &TreeDeployment{ExpectedLatencyMS: flat[0].tree.comp.Behaviors.CPUMSPerRequest}
	for i := range flat {
		tp := TreePlacement{Placement: places[i], Parent: flat[i].parent, Path: paths[i]}
		tp.Placement.Offers = offersRec[i].Clone()
		dep.Placements = append(dep.Placements, tp)
		if !places[i].Reused {
			dep.NewComponents++
		}
		if i == 0 {
			continue
		}
		b := flat[i].tree.comp.Behaviors
		hop := 2*paths[i].LatencyMS + b.CPUMSPerRequest
		if !paths[i].IsLoopback() && paths[i].BottleneckMbps > 0 && !math.IsInf(paths[i].BottleneckMbps, 1) {
			bits := float64(b.RequestBytes+b.ResponseBytes) * 8
			hop += bits / (paths[i].BottleneckMbps * 1e6) * 1e3
		}
		if flat[i].tree.anchor != nil {
			hop += flat[i].tree.anchor.UpstreamMS
		}
		dep.ExpectedLatencyMS += flat[i].weight * hop
	}
	return dep
}
