package planner

import (
	"math"

	"partsvc/internal/netmodel"
	"partsvc/internal/property"
	"partsvc/internal/spec"
)

// mapChain performs step 2 of planning for one chain: it exhaustively
// assigns chain components to network nodes (the head pinned at the
// client node, anchors pinned at their recorded nodes), validates each
// complete assignment against the three validity conditions of Section
// 3.3, and returns the best valid deployment under the request's
// objective (nil if none).
func (pl *Planner) mapChain(chain Chain, req Request) *Deployment {
	if chain[0].isAnchor() {
		return nil // a bare anchor is not a deployable head
	}
	head, ok := pl.placementFor(chain[0].comp, req.ClientNode, req, 0)
	if !ok {
		pl.stats.RejectedConditions++
		return nil
	}
	if anchor, found := pl.anchorFor(head); found {
		head = anchor
	}
	places := make([]Placement, len(chain))
	places[0] = head

	var best *Deployment
	nodes := pl.Net.Nodes()

	consider := func(pos int, p Placement, recurse func(int)) {
		// No routing loops: a chain must not visit the same instance
		// twice. And no duplicated replicas: a caching component
		// (RRF < 1) holds the same state in every identically-configured
		// instance, so a second one can never absorb the first one's
		// misses — reject rather than model it.
		caching := chain[pos].comp.Behaviors.EffectiveRRF() < 1
		id := p.Component + "{" + p.configFP() + "}"
		for j := 0; j < pos; j++ {
			if p.Key() == places[j].Key() {
				return
			}
			if caching && id == places[j].Component+"{"+places[j].configFP()+"}" {
				return
			}
		}
		places[pos] = p
		recurse(pos + 1)
	}

	var assign func(pos int)
	assign = func(pos int) {
		if pos == len(chain) {
			pl.stats.MappingsTried++
			if dep := pl.validate(chain, places, req); dep != nil {
				if best == nil || pl.better(req.Objective, dep, best) {
					best = dep
				}
			}
			return
		}
		elem := chain[pos]
		if elem.isAnchor() {
			p := *elem.anchor
			p.Reused = true
			consider(pos, p, assign)
			return
		}
		comp := elem.comp
		// Stateful primaries with an existing instance are singletons:
		// they may only be reused, never re-instantiated (state lives in
		// the primary; replication happens through data views).
		if pl.isStatefulPrimary(comp) && pl.hasAnyInstance(comp.Name) {
			for _, e := range pl.Existing {
				if e.Component != comp.Name {
					continue
				}
				p := e
				p.Reused = true
				consider(pos, p, assign)
			}
			return
		}
		for _, node := range nodes {
			p, ok := pl.placementForCached(comp, node.ID, req, pos)
			if !ok {
				pl.stats.RejectedConditions++
				continue
			}
			if anchor, found := pl.anchorFor(p); found {
				p = anchor
			}
			consider(pos, p, assign)
		}
	}
	assign(1)
	return best
}

// placementFor instantiates a component at a node if its deployment
// conditions hold there (validity condition 1), evaluating factored
// configuration properties against the node environment. The request's
// user credential is visible to the head component's conditions only.
func (pl *Planner) placementFor(comp spec.Component, node netmodel.NodeID, req Request, pos int) (Placement, bool) {
	n, ok := pl.Net.Node(node)
	if !ok || n.Down {
		return Placement{}, false
	}
	sc := property.Scope{Node: n.Props}
	if pos == 0 && req.User != "" {
		sc.Extra = property.Set{"User": property.Str(req.User)}
	}
	if !comp.ConditionsHold(sc) {
		return Placement{}, false
	}
	config := property.Set{}
	for name, expr := range comp.Factors {
		v, err := expr.Eval(sc)
		if err != nil {
			return Placement{}, false
		}
		if ty, declared := pl.Service.PropertyType(name); declared {
			if err := ty.Check(v); err != nil {
				return Placement{}, false
			}
		}
		config[name] = v
	}
	return Placement{Component: comp.Name, Node: node, Config: config}, true
}

// scopeAt builds the evaluation scope for a placement: the node's
// translated properties overlaid with the placement's factored
// configuration.
func (pl *Planner) scopeAt(p Placement) property.Scope {
	n, _ := pl.Net.Node(p.Node)
	return property.Scope{Node: n.Props.Merge(p.Config)}
}

// validate applies validity conditions 2 (property compatibility under
// modification rules) and 3 (load versus capacity) to a complete
// assignment, and computes the deployment metrics. It returns nil when
// the assignment is invalid, bumping the relevant rejection counter.
func (pl *Planner) validate(chain Chain, places []Placement, req Request) *Deployment {
	// Route every linkage along the cached minimum-latency path.
	paths := make([]netmodel.Path, len(chain)-1)
	for i := 0; i+1 < len(chain); i++ {
		p, ok := pl.routes.Path(places[i].Node, places[i+1].Node)
		if !ok {
			pl.stats.RejectedNoPath++
			return nil
		}
		paths[i] = p
	}

	offers, ok := pl.checkProperties(chain, places, paths, req)
	if !ok {
		pl.stats.RejectedProps++
		return nil
	}

	capacity := pl.capacityRPS(chain, places, paths)
	if req.RateRPS > 0 && req.RateRPS > capacity {
		pl.stats.RejectedLoad++
		return nil
	}

	dep := &Deployment{
		Placements:        append([]Placement(nil), places...),
		ExpectedLatencyMS: pl.expectedLatency(chain, places, paths),
		CapacityRPS:       capacity,
	}
	// Record each placement's effective offer and its upstream residual
	// latency (expected additional latency per request arriving at it),
	// so future incremental plans can link to it as an anchor.
	in, out := flowCoeff(chain, places)
	hops := pl.hopCosts(chain, paths)
	for i := range dep.Placements {
		// Clone: offer sets may be memo-owned, and deployments outlive
		// the per-plan memo (AddExisting registers them for reuse).
		dep.Placements[i].Offers = offers[i].Clone()
		if in[i] > 0 {
			var up float64
			for j := i; j < len(hops); j++ {
				up += out[j] * hops[j]
			}
			dep.Placements[i].UpstreamMS = up / in[i]
		}
	}
	for i := range paths {
		dep.Edges = append(dep.Edges, Edge{From: i, To: i + 1, Path: paths[i], Iface: chain.linkIface(i)})
	}
	for _, p := range dep.Placements {
		if !p.Reused {
			dep.NewComponents++
		}
	}
	return dep
}

// checkProperties implements validity condition 2: walking the chain
// from the terminal provider back to the client, it computes the
// effective property set offered across each linkage — applying the
// service's property modification rules to every path environment — and
// checks it against the requiring component's (scope-evaluated)
// requirements. Properties a component does not generate pass through
// from its own provider, restricted to the linking interface's declared
// properties: this makes wrapper components like the Encryptor
// transparent for TrustLevel while letting them re-establish
// Confidentiality. Anchor terminals contribute their recorded effective
// properties. On success it returns the effective set each placement
// offers to its client.
func (pl *Planner) checkProperties(chain Chain, places []Placement, paths []netmodel.Path, req Request) ([]property.Set, bool) {
	k := len(chain) - 1
	offers := make([]property.Set, len(chain))

	// The head's own implemented properties must satisfy any explicit
	// client expectations on the requested interface.
	if _, ok := chain[0].comp.ImplementsInterface(req.Interface); ok {
		if headOffer, err := pl.evalImplProps(chain[0].comp, req.Interface, places[0]); err == nil {
			offers[0] = headOffer
		}
	}
	if len(req.RequireProps) > 0 && !offers[0].Satisfies(req.RequireProps) {
		return nil, false
	}
	if k == 0 {
		return offers, true
	}

	// Effective properties offered by the terminal element.
	var offered property.Set
	if chain[k].isAnchor() {
		offered = chain[k].anchor.Offers.Clone()
	} else {
		var err error
		offered, err = pl.evalImplProps(chain[k].comp, chain.linkIface(k-1), places[k])
		if err != nil {
			return nil, false
		}
	}
	offers[k] = offered

	for i := k - 1; i >= 0; i-- {
		env := pl.linkageEnv(paths[i])
		received, err := pl.Service.ModRules.ApplySetRO(offered, env)
		if err != nil {
			return nil, false
		}
		reqProps, err := pl.evalReqProps(chain[i].comp, places[i])
		if err != nil {
			return nil, false
		}
		if !received.Satisfies(reqProps) {
			return nil, false
		}
		if i == 0 {
			break
		}
		// Compute what component i offers to component i-1: received
		// properties pass through, restricted to the linking interface's
		// declaration, overlaid with the properties i generates itself.
		iface := chain.linkIface(i - 1)
		decl, _ := pl.Service.Interface(iface)
		next := property.Set{}
		for name, v := range received {
			if decl.HasProperty(name) {
				next[name] = v
			}
		}
		gen, err := pl.evalImplProps(chain[i].comp, iface, places[i])
		if err != nil {
			return nil, false
		}
		offered = next.Merge(gen)
		offers[i] = offered
	}
	return offers, true
}

// flowCoeff returns, per unit of client request rate, the request rate
// arriving at each component (in[i]) and flowing on each edge (out[i]):
// in[0] = 1 and each component scales its outgoing rate by its RRF.
//
// An RRF below 1 models a cache absorbing part of the request stream;
// two identical replicas in series cannot absorb each other's misses
// (whatever the first one missed, an identical copy also misses). The
// RRF of a (component, configuration) pair therefore applies only at
// its first occurrence along the chain; subsequent identical instances
// pass traffic through unchanged. Distinctly configured views (e.g. a
// TrustLevel-2 partner cache in front of a TrustLevel-4 branch cache)
// hold different state and do compound.
func flowCoeff(chain Chain, places []Placement) (in, out []float64) {
	in = make([]float64, len(chain))
	out = make([]float64, len(chain)-1)
	seen := map[string]bool{}
	f := 1.0
	for i := range chain {
		in[i] = f
		rrf := chain[i].comp.Behaviors.EffectiveRRF()
		id := chain[i].comp.Name + "{" + places[i].configFP() + "}"
		if rrf < 1 {
			if seen[id] {
				rrf = 1
			}
			seen[id] = true
		}
		f *= rrf
		if i < len(out) {
			out[i] = f
		}
	}
	return in, out
}

// capacityRPS implements validity condition 3 as a headroom computation:
// the maximum client request rate the assignment sustains before a
// component capacity, a node CPU budget, or a link bandwidth saturates.
func (pl *Planner) capacityRPS(chain Chain, places []Placement, paths []netmodel.Path) float64 {
	in, out := flowCoeff(chain, places)
	capacity := math.Inf(1)

	// Component capacities.
	for i, elem := range chain {
		if c := elem.comp.Behaviors.CapacityRPS; c > 0 && in[i] > 0 {
			capacity = math.Min(capacity, c/in[i])
		}
	}

	// Node CPU budgets: CPUCapacityRPS is the request rate a node
	// sustains at 1 ms CPU per request, i.e. a budget of that many CPU
	// milliseconds per second, aggregated over co-located components.
	cpuPerNode := map[netmodel.NodeID]float64{}
	for i, elem := range chain {
		cpuPerNode[places[i].Node] += in[i] * elem.comp.Behaviors.CPUMSPerRequest
	}
	for node, ms := range cpuPerNode {
		n, _ := pl.Net.Node(node)
		if n.CPUCapacityRPS > 0 && ms > 0 {
			capacity = math.Min(capacity, n.CPUCapacityRPS/ms)
		}
	}

	// Link bandwidth, aggregated over every edge whose path crosses the
	// link. Request and response bytes are those of the provider side.
	type linkKey struct{ a, b netmodel.NodeID }
	bitsPerLink := map[linkKey]float64{}
	for i, path := range paths {
		b := chain[i+1].comp.Behaviors
		bytes := float64(b.RequestBytes + b.ResponseBytes)
		for j := 0; j+1 < len(path.Nodes); j++ {
			a, b := path.Nodes[j], path.Nodes[j+1]
			if b < a {
				a, b = b, a
			}
			bitsPerLink[linkKey{a, b}] += out[i] * bytes * 8
		}
	}
	for key, bits := range bitsPerLink {
		l, ok := pl.Net.Link(key.a, key.b)
		if !ok || l.BandwidthMbps <= 0 || bits <= 0 {
			continue
		}
		capacity = math.Min(capacity, l.BandwidthMbps*1e6/bits)
	}
	return capacity
}

// hopCosts returns the latency cost of each linkage: round-trip
// propagation, request/response serialization delay, and the provider's
// service time. When the chain terminates at an anchor, the anchor's
// recorded upstream residual latency is folded into the final hop, so
// that linking to an existing instance accounts for the requests that
// continue through its already-deployed upstream linkage.
func (pl *Planner) hopCosts(chain Chain, paths []netmodel.Path) []float64 {
	hops := make([]float64, len(paths))
	for i, path := range paths {
		provider := chain[i+1].comp.Behaviors
		hop := 2*path.LatencyMS + provider.CPUMSPerRequest
		if !path.IsLoopback() && path.BottleneckMbps > 0 && !math.IsInf(path.BottleneckMbps, 1) {
			bits := float64(provider.RequestBytes+provider.ResponseBytes) * 8
			hop += bits / (path.BottleneckMbps * 1e6) * 1e3
		}
		if chain[i+1].isAnchor() {
			hop += chain[i+1].anchor.UpstreamMS
		}
		hops[i] = hop
	}
	return hops
}

// expectedLatency computes the expected client-perceived latency of one
// request: each linkage contributes its hop cost weighted by the
// probability the request traverses it (the product of upstream RRFs).
// The head component's own service time is always incurred.
func (pl *Planner) expectedLatency(chain Chain, places []Placement, paths []netmodel.Path) float64 {
	_, out := flowCoeff(chain, places)
	total := chain[0].comp.Behaviors.CPUMSPerRequest
	for i, hop := range pl.hopCosts(chain, paths) {
		total += out[i] * hop
	}
	return total
}
