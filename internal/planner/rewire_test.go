package planner

import (
	"testing"

	"partsvc/internal/netmon"
	"partsvc/internal/spec"
	"partsvc/internal/topology"
)

// rewireWorld bootstraps the fig8/case-study planning state: the NY
// primary, a warm San Diego chain, and a Seattle deployment whose
// interior wiring crosses the SD–Seattle link.
func rewireWorld(t *testing.T) (*Planner, *netmon.Monitor, *Deployment, Request) {
	t.Helper()
	net := topology.CaseStudy()
	mon := netmon.New(net)
	pl := New(spec.MailService(), net)
	primary, err := pl.PrimaryPlacement(spec.CompMailServer, topology.NYServer)
	if err != nil {
		t.Fatal(err)
	}
	pl.AddExisting(primary)
	warm := Request{Interface: spec.IfaceClient, ClientNode: topology.SDClient, User: "Alice", RateRPS: 50}
	warmDep, err := pl.Plan(warm)
	if err != nil {
		t.Fatal(err)
	}
	pl.AddExisting(warmDep.Placements...)
	req := Request{Interface: spec.IfaceClient, ClientNode: topology.SeaClient, User: "Carol", RateRPS: 50}
	dep, err := pl.Plan(req)
	if err != nil {
		t.Fatal(err)
	}
	pl.AddExisting(dep.Placements...)
	return pl, mon, dep, req
}

func existingKeys(pl *Planner) map[string]bool {
	keys := map[string]bool{}
	for _, p := range pl.Existing {
		keys[p.Key()] = true
	}
	return keys
}

// TestReplanRewireNoopOnStableNetwork: when nothing changed, the rewire
// check must conclude the current wiring is still optimal, return the
// plain no-op diff, and leave the reuse set exactly as it found it.
func TestReplanRewireNoopOnStableNetwork(t *testing.T) {
	pl, _, dep, req := rewireWorld(t)
	before := existingKeys(pl)
	diff, err := pl.ReplanRewire(dep, req)
	if err != nil {
		t.Fatal(err)
	}
	if !diff.Unchanged() || len(diff.Evicted) != 0 {
		t.Fatalf("stable network must be a no-op, got install=%d remove=%d evicted=%d",
			len(diff.Install), len(diff.Remove), len(diff.Evicted))
	}
	after := existingKeys(pl)
	if len(after) != len(before) {
		t.Fatalf("reuse set changed size: %d -> %d", len(before), len(after))
	}
	for k := range before {
		if !after[k] {
			t.Errorf("reuse entry %s lost by the rewire check", k)
		}
	}
}

// TestReplanRewireMovesDegradedWiring: degrading the SD–Seattle link
// evicts nothing (revalidation is validity-scoped), but the Seattle
// chain's decryptor-to-anchor hop now routes the long way around; the
// rewire check must notice and produce a diff that re-wires the chain
// off the degraded link, removing only the session's own wiring.
func TestReplanRewireMovesDegradedWiring(t *testing.T) {
	pl, mon, dep, req := rewireWorld(t)
	ownKeys := map[string]bool{}
	for _, p := range dep.Placements[:len(dep.Placements)-1] {
		ownKeys[p.Key()] = true
	}
	tail := dep.Placements[len(dep.Placements)-1]
	onSD := false
	for _, p := range dep.Placements {
		if p.Node == topology.SDClient {
			onSD = true
		}
	}
	if !onSD {
		t.Fatalf("Seattle chain should wire through sd-2: %s", dep)
	}
	if err := mon.ReportLink(topology.SDGateway, topology.SeaGW, 1500, 1, nil); err != nil {
		t.Fatal(err)
	}
	diff, err := pl.ReplanRewire(dep, req)
	if err != nil {
		t.Fatal(err)
	}
	if diff.Unchanged() {
		t.Fatal("degraded interior link must trigger a rewire")
	}
	if len(diff.Evicted) != 0 {
		t.Fatalf("a degrade evicts nothing, got %v", diff.Evicted)
	}
	for _, p := range diff.New.Placements {
		if p.Node == topology.SDClient && p.Component == spec.CompDecryptor {
			t.Fatalf("rewired chain still decrypts behind the degraded link: %s", diff.New)
		}
	}
	for _, p := range diff.Remove {
		if !ownKeys[p.Key()] {
			t.Errorf("Remove contains %s, which is not the session's own wiring", p.Key())
		}
		if p.Key() == tail.Key() {
			t.Errorf("shared tail %s must keep running", tail.Key())
		}
	}
	if len(diff.Remove) == 0 {
		t.Fatal("the abandoned decryptor should be removed")
	}
	// The shared tail (another session's view) must survive in the
	// reuse set even though the rewired chain no longer uses it.
	if !existingKeys(pl)[tail.Key()] {
		t.Fatalf("shared tail %s dropped from the reuse set", tail.Key())
	}
}
