package planner

import (
	"os"
	"testing"
	"time"

	"partsvc/internal/netmodel"
	"partsvc/internal/netmon"
	"partsvc/internal/property"
	"partsvc/internal/spec"
	"partsvc/internal/topology"
)

func solveOrFail(t *testing.T, pl *Planner, req Request) *Deployment {
	t.Helper()
	dep, err := pl.PlanSolver(req)
	if err != nil {
		t.Fatalf("PlanSolver(%+v): %v\nstats: %+v", req, err, pl.Stats())
	}
	return dep
}

// TestSolverMatchesExhaustiveCaseStudy: the constraint-solver backend
// produces exactly the deployments of the exhaustive planner for all
// three Figure 6 requests, including the incremental reuse steps.
func TestSolverMatchesExhaustiveCaseStudy(t *testing.T) {
	requests := []Request{
		{Interface: spec.IfaceClient, ClientNode: topology.NYClient, User: "Alice", RateRPS: 50},
		{Interface: spec.IfaceClient, ClientNode: topology.SDClient, User: "Alice", RateRPS: 50},
		{Interface: spec.IfaceClient, ClientNode: topology.SeaClient, User: "Carol", RateRPS: 50},
	}
	exh := caseStudyPlanner(t)
	sv := caseStudyPlanner(t)
	for i, req := range requests {
		want := planOrFail(t, exh, req)
		got := solveOrFail(t, sv, req)
		if got.String() != want.String() {
			t.Errorf("request %d:\n  exhaustive: %s\n  solver:     %s", i, want, got)
		}
		if diff := got.ExpectedLatencyMS - want.ExpectedLatencyMS; diff > 1e-6 || diff < -1e-6 {
			t.Errorf("request %d: latency %v (solver) vs %v (exhaustive)", i, got.ExpectedLatencyMS, want.ExpectedLatencyMS)
		}
		exh.AddExisting(want.Placements...)
		sv.AddExisting(got.Placements...)
	}
	if sv.SolverStats.Solves.Load() == 0 {
		t.Error("solver stats not populated")
	}
}

// TestSolverMatchesExhaustiveMinCost: equality under the MinCost
// objective (EdgeBound is exact there, so the search is tight).
func TestSolverMatchesExhaustiveMinCost(t *testing.T) {
	req := Request{
		Interface: spec.IfaceClient, ClientNode: topology.SDClient,
		User: "Alice", RateRPS: 200, Objective: MinCost,
	}
	want := planOrFail(t, caseStudyPlanner(t), req)
	got := solveOrFail(t, caseStudyPlanner(t), req)
	if got.String() != want.String() {
		t.Errorf("min-cost:\n  exhaustive: %s\n  solver:     %s", want, got)
	}
	if got.NewComponents != want.NewComponents {
		t.Errorf("min-cost new components: solver %d vs exhaustive %d", got.NewComponents, want.NewComponents)
	}
}

// TestSolverMatchesExhaustiveMaxCapacity: MaxCapacity disables the
// bound (whole-deployment headroom is not edge-decomposable) and the
// solver degenerates to pruned enumeration — results still match.
func TestSolverMatchesExhaustiveMaxCapacity(t *testing.T) {
	req := Request{
		Interface: spec.IfaceClient, ClientNode: topology.SDClient,
		User: "Alice", RateRPS: 50, Objective: MaxCapacity,
	}
	want := planOrFail(t, caseStudyPlanner(t), req)
	got := solveOrFail(t, caseStudyPlanner(t), req)
	if got.String() != want.String() {
		t.Errorf("max-capacity:\n  exhaustive: %s\n  solver: %s", want, got)
	}
	if diff := got.CapacityRPS - want.CapacityRPS; diff > 1e-6 || diff < -1e-6 {
		t.Errorf("capacity: solver %v vs exhaustive %v", got.CapacityRPS, want.CapacityRPS)
	}
}

// TestSolverSeattleIncremental: the incremental Seattle plan through
// the solver also anchors onto the San Diego view.
func TestSolverSeattleIncremental(t *testing.T) {
	pl := caseStudyPlanner(t)
	sd := solveOrFail(t, pl, Request{Interface: spec.IfaceClient, ClientNode: topology.SDClient, User: "Alice", RateRPS: 50})
	pl.AddExisting(sd.Placements...)
	sea := solveOrFail(t, pl, Request{Interface: spec.IfaceClient, ClientNode: topology.SeaClient, User: "Carol", RateRPS: 50})
	tail := sea.Placements[len(sea.Placements)-1]
	if tail.Component != spec.CompViewMailServer || tail.Node != topology.SDClient || !tail.Reused {
		t.Errorf("Seattle solver plan must terminate at the SD view: %s", sea)
	}
}

// TestSolverErrors mirrors Plan's validation errors.
func TestSolverErrors(t *testing.T) {
	pl := caseStudyPlanner(t)
	if _, err := pl.PlanSolver(Request{Interface: spec.IfaceClient, ClientNode: "ghost"}); err == nil {
		t.Error("unknown client node must fail")
	}
	if _, err := pl.PlanSolver(Request{Interface: "Ghost", ClientNode: topology.NYClient}); err == nil {
		t.Error("unknown interface must fail")
	}
	if _, err := pl.PlanSolver(Request{Interface: spec.IfaceClient, ClientNode: topology.SDClient, User: "Alice", RateRPS: 1e9}); err == nil {
		t.Error("infeasible rate must fail")
	}
}

// TestSolverMatchesExhaustiveOnRandomNets: differential check on random
// Waxman networks — the solver agrees with the exhaustive mapper on
// feasibility and on the chosen deployment, and is never worse than the
// DP on the chain-shaped mail service.
func TestSolverMatchesExhaustiveOnRandomNets(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		net, err := topology.Waxman(topology.DefaultWaxman(8, seed))
		if err != nil {
			t.Fatal(err)
		}
		nodes := net.Nodes()
		nodes[0].Props["TrustLevel"] = property.Int(5)

		build := func() *Planner {
			pl := New(spec.MailService(), net)
			ms, err := pl.PrimaryPlacement(spec.CompMailServer, nodes[0].ID)
			if err != nil {
				t.Fatal(err)
			}
			pl.AddExisting(ms)
			return pl
		}
		req := Request{
			Interface: spec.IfaceClient, ClientNode: nodes[2].ID, User: "Alice", RateRPS: 10,
		}
		exh, errA := build().Plan(req)
		sol, errB := build().PlanSolver(req)
		if (errA == nil) != (errB == nil) {
			t.Errorf("seed %d: feasibility disagrees: exhaustive=%v solver=%v", seed, errA, errB)
			continue
		}
		if errA != nil {
			continue
		}
		if exh.String() != sol.String() {
			t.Errorf("seed %d:\n  exhaustive: %s\n  solver:     %s", seed, exh, sol)
		}
		if dp, err := build().PlanDP(req); err == nil {
			if sol.ExpectedLatencyMS > dp.ExpectedLatencyMS+1e-6 {
				t.Errorf("seed %d: solver latency %v worse than dp %v", seed, sol.ExpectedLatencyMS, dp.ExpectedLatencyMS)
			}
		}
	}
}

// TestSolverCoversTreesBeyondChains: the portal service's linkage graph
// branches (Portal requires both ServerInterface and LogInterface), so
// the chain planners cannot express it — but the solver plans it, and
// agrees with the dedicated tree mapper on placements and latency. The
// returned deployment carries interface-labeled edges so the engine can
// wire the branches.
func TestSolverCoversTreesBeyondChains(t *testing.T) {
	req := Request{Interface: "PortalInterface", ClientNode: topology.SDClient, RateRPS: 10}

	if _, err := portalPlanner(t).PlanDP(req); err == nil {
		t.Fatal("the chain DP must not be able to plan the branching portal graph")
	}
	if _, err := portalPlanner(t).Plan(req); err == nil {
		t.Fatal("the exhaustive chain mapper must not be able to plan the branching portal graph")
	}

	tp := portalPlanner(t)
	want, err := tp.PlanTree(req)
	if err != nil {
		t.Fatal(err)
	}
	sp := portalPlanner(t)
	got := solveOrFail(t, sp, req)
	if len(got.Placements) != len(want.Placements) {
		t.Fatalf("solver tree plan %s differs from tree plan %s", got, want)
	}
	for i := range got.Placements {
		if got.Placements[i].String() != want.Placements[i].Placement.String() {
			t.Errorf("position %d: %s vs %s", i, got.Placements[i], want.Placements[i].Placement)
		}
	}
	if diff := got.ExpectedLatencyMS - want.ExpectedLatencyMS; diff > 1e-6 || diff < -1e-6 {
		t.Errorf("latency: solver %v vs tree %v", got.ExpectedLatencyMS, want.ExpectedLatencyMS)
	}
	if len(got.Edges) != len(got.Placements)-1 {
		t.Fatalf("tree deployment must carry one edge per parent link: %d edges for %d placements",
			len(got.Edges), len(got.Placements))
	}
	branching := false
	for _, e := range got.Edges {
		if e.Iface == "" {
			t.Errorf("edge %d->%d has no linking interface", e.From, e.To)
		}
		if e.To != e.From+1 {
			branching = true
		}
	}
	if !branching {
		t.Errorf("portal deployment should branch (non-consecutive edges): %s", got)
	}
}

// TestPlanViaUniformRateAdmission: validity condition 3 (sustaining the
// request rate) is enforced at the backend seam, so no backend can
// admit a deployment that cannot carry the requested load.
func TestPlanViaUniformRateAdmission(t *testing.T) {
	for _, b := range []Backend{BackendExhaustive, BackendDP, BackendSolver} {
		pl := caseStudyPlanner(t)
		bad := Request{Interface: spec.IfaceClient, ClientNode: topology.SDClient, User: "Alice", RateRPS: 1e9}
		if _, err := pl.PlanVia(b, bad); err == nil {
			t.Errorf("backend %s admitted an infeasible rate", b)
		}
		ok := Request{Interface: spec.IfaceClient, ClientNode: topology.SDClient, User: "Alice", RateRPS: 50}
		dep, err := pl.PlanVia(b, ok)
		if err != nil {
			t.Errorf("backend %s rejected a feasible rate: %v", b, err)
			continue
		}
		if dep.CapacityRPS < 50 {
			t.Errorf("backend %s returned capacity %.1f below the admitted rate", b, dep.CapacityRPS)
		}
	}
}

// repairWorlds builds two planners over one shared case-study network,
// both warmed with the same San Diego deployment: pa prefers the solver
// (repair path), pb is the exhaustive reference.
func repairWorlds(t *testing.T) (net *netmodel.Network, pa, pb *Planner, dep *Deployment, req Request) {
	t.Helper()
	net = topology.CaseStudy()
	build := func() *Planner {
		pl := New(spec.MailService(), net)
		ms, err := pl.PrimaryPlacement(spec.CompMailServer, topology.NYServer)
		if err != nil {
			t.Fatal(err)
		}
		pl.AddExisting(ms)
		return pl
	}
	pa, pb = build(), build()
	pa.PreferSolver = true
	req = Request{Interface: spec.IfaceClient, ClientNode: topology.SDClient, User: "Alice", RateRPS: 50}
	depA := solveOrFail(t, pa, req)
	depB := planOrFail(t, pb, req)
	if depA.String() != depB.String() {
		t.Fatalf("warm plans diverge:\n  solver:     %s\n  exhaustive: %s", depA, depB)
	}
	pa.AddExisting(depA.Placements...)
	pb.AddExisting(depB.Placements...)
	return net, pa, pb, depA, req
}

// TestRepairReplanLinkEvent: a latency change on the inter-site link
// under the deployed chain repairs incrementally — only the placements
// whose recorded edge routes traverse the link re-open — and lands on
// the same deployment as a full exhaustive replan, with the solver's
// repair path (not the fallback) doing the work.
func TestRepairReplanLinkEvent(t *testing.T) {
	net, pa, pb, dep, req := repairWorlds(t)
	mon := netmon.New(net)
	if err := mon.ReportLink(topology.NYServer, topology.SDGateway, 220, 20, nil); err != nil {
		t.Fatal(err)
	}
	ch := NewChangedSet()
	ch.AddLink(topology.NYServer, topology.SDGateway)

	diffA, err := pa.RepairReplan(dep, req, ch)
	if err != nil {
		t.Fatalf("RepairReplan: %v", err)
	}
	diffB, err := pb.ReplanRewire(dep, req)
	if err != nil {
		t.Fatalf("ReplanRewire: %v", err)
	}
	// A mild degradation moves no placements: both paths must agree the
	// adaptation is a no-op. (The deployments are not compared verbatim:
	// the full replan terminates at the reused view anchor — whose
	// upstream cost is a frozen snapshot — while repair re-costs the
	// whole chain in place.)
	if !diffA.Unchanged() {
		t.Errorf("repair moved placements under a mild degradation: %+v", diffA)
	}
	if !diffB.Unchanged() {
		t.Errorf("full replan moved placements under a mild degradation: %+v", diffB)
	}
	if !sameDeploymentKeys(diffA.New, dep) {
		t.Errorf("repair must keep the old placements:\n  old:    %s\n  repair: %s", dep, diffA.New)
	}
	if diffA.New.ExpectedLatencyMS <= dep.ExpectedLatencyMS {
		t.Errorf("repair must re-cost the degraded link: %v -> %v", dep.ExpectedLatencyMS, diffA.New.ExpectedLatencyMS)
	}
	if got := pa.SolverStats.Repairs.Load(); got != 1 {
		t.Errorf("solver repairs = %d, want 1", got)
	}
	if got := pa.SolverStats.RepairFallbacks.Load(); got != 0 {
		t.Errorf("repair fell back to a fresh solve %d times, want 0", got)
	}
}

// TestRepairReplanPassthrough: without the solver preference, or with
// no known changed elements, RepairReplan is exactly ReplanRewire.
func TestRepairReplanPassthrough(t *testing.T) {
	_, pa, pb, dep, req := repairWorlds(t)
	pa.PreferSolver = false
	ch := NewChangedSet()
	ch.AddLink(topology.NYServer, topology.SDGateway)
	diffA, err := pa.RepairReplan(dep, req, ch)
	if err != nil {
		t.Fatal(err)
	}
	diffB, err := pb.RepairReplan(dep, req, nil) // empty change set on a solver-less planner
	if err != nil {
		t.Fatal(err)
	}
	if diffA.New.String() != diffB.New.String() {
		t.Errorf("passthrough results diverge: %s vs %s", diffA.New, diffB.New)
	}
	if got := pa.SolverStats.Repairs.Load() + pb.SolverStats.Repairs.Load(); got != 0 {
		t.Errorf("passthrough must not run the repair engine (repairs=%d)", got)
	}
}

// TestRepairReplanHeadDirtyFallsBack: the chain head is pinned at the
// client node, so a change touching it cannot be repaired in place —
// RepairReplan must take the full-replan path and still return a valid
// diff.
func TestRepairReplanHeadDirtyFallsBack(t *testing.T) {
	_, pa, _, dep, req := repairWorlds(t)
	ch := NewChangedSet()
	ch.AddNode(req.ClientNode)
	diff, err := pa.RepairReplan(dep, req, ch)
	if err != nil {
		t.Fatal(err)
	}
	if diff.New == nil {
		t.Fatal("fallback must still produce a deployment")
	}
	if got := pa.SolverStats.Repairs.Load(); got != 0 {
		t.Errorf("head-dirty change must replan fresh, not repair (repairs=%d)", got)
	}
}

// TestRepairReplanTreeFallsBack: tree-shaped deployments are outside
// the chain repair model; RepairReplan must detect the shape and fall
// through to a full replan without error.
func TestRepairReplanTreeFallsBack(t *testing.T) {
	pl := portalPlanner(t)
	pl.PreferSolver = true
	req := Request{Interface: "PortalInterface", ClientNode: topology.SDClient, RateRPS: 10}
	dep := solveOrFail(t, pl, req)
	pl.AddExisting(dep.Placements...)
	repairsBefore := pl.SolverStats.Repairs.Load()

	ch := NewChangedSet()
	ch.AddLink(topology.NYServer, topology.SDGateway)
	diff, err := pl.RepairReplan(dep, req, ch)
	if err != nil {
		t.Fatalf("RepairReplan on tree deployment: %v", err)
	}
	if diff.New == nil || len(diff.New.Placements) == 0 {
		t.Fatal("tree fallback must produce a deployment")
	}
	if got := pl.SolverStats.Repairs.Load(); got != repairsBefore {
		t.Errorf("tree deployment must not enter chain repair (repairs=%d)", got-repairsBefore)
	}
}

// TestSolverRepairOverheadGuard (A11's CI guard, RUN_OVERHEAD_GUARD):
// on a 256-node Waxman topology, repairing after a single link event
// must cost at least 5x fewer constraint propagations than a fresh
// solve of the same request, while landing on an equally good
// deployment. Run with:
//
//	RUN_OVERHEAD_GUARD=1 go test ./internal/planner -run OverheadGuard -v
func TestSolverRepairOverheadGuard(t *testing.T) {
	if os.Getenv("RUN_OVERHEAD_GUARD") == "" {
		t.Skip("set RUN_OVERHEAD_GUARD=1 to run the repair overhead guard")
	}
	net, err := topology.Waxman(topology.DefaultWaxman(256, 11))
	if err != nil {
		t.Fatal(err)
	}
	nodes := net.Nodes()
	nodes[0].Props["TrustLevel"] = property.Int(5)
	build := func() *Planner {
		pl := New(spec.MailService(), net)
		ms, err := pl.PrimaryPlacement(spec.CompMailServer, nodes[0].ID)
		if err != nil {
			t.Fatal(err)
		}
		pl.AddExisting(ms)
		pl.PreferSolver = true
		return pl
	}

	// Find a client whose plan has an interior edge (a chain of 3+
	// placements): the link event lands there, away from the pinned head.
	var (
		pl  *Planner
		dep *Deployment
		req Request
	)
	for _, n := range nodes[1:] {
		if n.ID == nodes[0].ID {
			continue
		}
		cand := build()
		r := Request{Interface: spec.IfaceClient, ClientNode: n.ID, User: "Alice", RateRPS: 10}
		d, err := cand.PlanSolver(r)
		if err != nil || len(d.Placements) < 3 {
			continue
		}
		pl, dep, req = cand, d, r
		break
	}
	if pl == nil {
		t.Fatal("no client yields a 3+ placement chain on this topology")
	}
	pl.AddExisting(dep.Placements...)

	// Pick a link on an interior edge's recorded route that does not
	// also sit under the head edge (which would force the fallback).
	var a, b netmodel.NodeID
	for _, e := range dep.Edges {
		if e.From == 0 || len(e.Path.Nodes) < 2 {
			continue
		}
		for i := 0; i+1 < len(e.Path.Nodes); i++ {
			ch := NewChangedSet()
			ch.AddLink(e.Path.Nodes[i], e.Path.Nodes[i+1])
			if !ch.PathAffected(dep.Edges[0].Path) && !ch.NodeAffected(req.ClientNode) {
				a, b = e.Path.Nodes[i], e.Path.Nodes[i+1]
				break
			}
		}
		if a != "" {
			break
		}
	}
	if a == "" {
		t.Fatalf("no interior link clear of the head edge in %s", dep)
	}
	link, ok := net.Link(a, b)
	if !ok {
		t.Fatalf("no link %s~%s", a, b)
	}
	link.LatencyMS *= 1.02
	net.InvalidateRoutesLinkDelta(a, b)

	ch := NewChangedSet()
	ch.AddLink(a, b)
	propsBefore := pl.SolverStats.Propagations.Load()
	start := time.Now()
	diff, err := pl.RepairReplan(dep, req, ch)
	repairNS := time.Since(start)
	if err != nil {
		t.Fatalf("RepairReplan: %v", err)
	}
	repairProps := pl.SolverStats.Propagations.Load() - propsBefore
	if got := pl.SolverStats.Repairs.Load(); got != 1 {
		t.Fatalf("repair path did not run (repairs=%d)", got)
	}
	if got := pl.SolverStats.RepairFallbacks.Load(); got != 0 {
		t.Fatalf("repair fell back to a fresh solve (fallbacks=%d)", got)
	}

	// Fresh reference: same network state, same reuse set, full solve.
	fresh := build()
	fresh.AddExisting(dep.Placements...)
	propsBefore = fresh.SolverStats.Propagations.Load()
	start = time.Now()
	freshDep, err := fresh.PlanSolver(req)
	freshNS := time.Since(start)
	if err != nil {
		t.Fatalf("fresh PlanSolver: %v", err)
	}
	freshProps := fresh.SolverStats.Propagations.Load() - propsBefore

	// Equal objective value: under a mild single-link degradation both
	// paths must conclude the running graph is still optimal — repair by
	// keeping every placement, the fresh solve by reusing the same
	// instances (it may cut at a reused anchor, describing a prefix of
	// the same physical graph, so the cost forms are not compared
	// verbatim).
	if !diff.Unchanged() || !sameDeploymentKeys(diff.New, dep) {
		t.Errorf("repair moved placements under a mild degradation:\n  old:    %s\n  repair: %s", dep, diff.New)
	}
	if freshDep.NewComponents != 0 {
		t.Errorf("fresh solve deployed %d new components — the running graph should win: %s",
			freshDep.NewComponents, freshDep)
	}
	oldKeys := map[string]bool{}
	for _, p := range dep.Placements {
		oldKeys[p.Key()] = true
	}
	for _, p := range freshDep.Placements {
		if !oldKeys[p.Key()] {
			t.Errorf("fresh solve placed %s outside the running graph %s", p, dep)
		}
	}
	t.Logf("repair: %d propagations in %v; fresh: %d propagations in %v (ratio %.1fx)",
		repairProps, repairNS, freshProps, freshNS, float64(freshProps)/float64(max(repairProps, 1)))
	if repairProps*5 > freshProps {
		t.Errorf("repair cost %d propagations, fresh %d — want at least 5x cheaper", repairProps, freshProps)
	}
}
