package planner

import (
	"sort"
	"strings"

	"partsvc/internal/netmodel"
	"partsvc/internal/solver"
)

// ChangedSet names the network elements a monitoring event touched:
// nodes whose properties or liveness changed, and links whose latency,
// bandwidth, or property environment changed. Incremental repair uses
// it to decide which placements of a deployment are actually affected.
type ChangedSet struct {
	nodes map[netmodel.NodeID]bool
	links map[[2]netmodel.NodeID]bool
}

// NewChangedSet returns an empty change set.
func NewChangedSet() *ChangedSet {
	return &ChangedSet{nodes: map[netmodel.NodeID]bool{}, links: map[[2]netmodel.NodeID]bool{}}
}

// AddNode records a changed node.
func (c *ChangedSet) AddNode(n netmodel.NodeID) { c.nodes[n] = true }

// AddLink records a changed link; endpoint order is canonicalized.
func (c *ChangedSet) AddLink(a, b netmodel.NodeID) {
	if b < a {
		a, b = b, a
	}
	c.links[[2]netmodel.NodeID{a, b}] = true
}

// Merge folds another change set into this one.
func (c *ChangedSet) Merge(o *ChangedSet) {
	if o == nil {
		return
	}
	for n := range o.nodes {
		c.nodes[n] = true
	}
	for l := range o.links {
		c.links[l] = true
	}
}

// Empty reports whether nothing changed.
func (c *ChangedSet) Empty() bool {
	return c == nil || (len(c.nodes) == 0 && len(c.links) == 0)
}

// NodeAffected reports whether the node is in the change set.
func (c *ChangedSet) NodeAffected(n netmodel.NodeID) bool { return c != nil && c.nodes[n] }

// PathAffected reports whether the path traverses a changed node or
// link.
func (c *ChangedSet) PathAffected(p netmodel.Path) bool {
	if c == nil {
		return false
	}
	for i, n := range p.Nodes {
		if c.nodes[n] {
			return true
		}
		if i+1 < len(p.Nodes) {
			a, b := n, p.Nodes[i+1]
			if b < a {
				a, b = b, a
			}
			if c.links[[2]netmodel.NodeID{a, b}] {
				return true
			}
		}
	}
	return false
}

// String renders the set deterministically ("nodes[sd-2] links[ny-1~sd-1]").
func (c *ChangedSet) String() string {
	if c.Empty() {
		return "empty"
	}
	nodes := make([]string, 0, len(c.nodes))
	for n := range c.nodes {
		nodes = append(nodes, string(n))
	}
	sort.Strings(nodes)
	links := make([]string, 0, len(c.links))
	for l := range c.links {
		links = append(links, string(l[0])+"~"+string(l[1]))
	}
	sort.Strings(links)
	return "nodes[" + strings.Join(nodes, " ") + "] links[" + strings.Join(links, " ") + "]"
}

// RepairReplan adapts a session to a network change like ReplanRewire,
// but when the solver backend is preferred and the changed elements are
// known it repairs the old deployment incrementally: placements
// untouched by the change keep their assignment (their solver domains
// collapse to the previous value), only invalidated domains re-open,
// and constraint propagation plus branch-and-bound run over the
// affected remainder — O(affected) work instead of O(topology). When
// repair is infeasible under its pins (or the deployment is not
// chain-shaped), it falls back to a full ReplanRewire pass, so callers
// always get a valid diff.
func (pl *Planner) RepairReplan(old *Deployment, req Request, ch *ChangedSet) (*Diff, error) {
	if !pl.PreferSolver || old == nil || ch.Empty() {
		return pl.ReplanRewire(old, req)
	}
	pl.beginPlan()
	evicted := pl.RevalidateExisting()
	dep, ok := pl.tryRepair(old, req, ch, evicted)
	pl.endPlan()
	if !ok {
		// Fallback: the full pass revalidates again (finding nothing new —
		// the evictions above already pruned the reuse set), so the diff
		// must carry the evictions observed here.
		diff, err := pl.ReplanRewire(old, req)
		if err != nil {
			return nil, err
		}
		diff.Evicted = append(evicted, diff.Evicted...)
		return diff, nil
	}
	diff := buildDiff(old, dep)
	diff.Evicted = evicted
	return diff, nil
}

// tryRepair pins every placement of the old deployment that the change
// cannot have affected and re-solves the rest. ok=false requests a
// fresh full replan.
func (pl *Planner) tryRepair(old *Deployment, req Request, ch *ChangedSet, evicted []Placement) (*Deployment, bool) {
	chain, ok := pl.chainOf(old)
	if !ok {
		return nil, false // tree-shaped or foreign deployment: replan fresh
	}
	evictedKeys := make(map[string]bool, len(evicted))
	for _, p := range evicted {
		evictedKeys[p.Key()] = true
	}
	n := len(chain)
	dirty := make([]bool, n)
	for i, p := range old.Placements {
		if ch.NodeAffected(p.Node) || evictedKeys[p.Key()] {
			dirty[i] = true
			continue
		}
		if node, live := pl.Net.Node(p.Node); !live || node.Down {
			dirty[i] = true
		}
	}
	// An edge whose recorded route traverses a changed element
	// invalidates both endpoints: either may need to move to restore a
	// good (or any) route between them.
	for _, e := range old.Edges {
		if ch.PathAffected(e.Path) {
			dirty[e.From] = true
			dirty[e.To] = true
		}
	}
	// A changed node can also break deployment conditions or re-factor
	// configurations without appearing in any path.
	for i := range chain {
		if dirty[i] || chain[i].isAnchor() {
			continue
		}
		p, live := pl.placementForCached(chain[i].comp, old.Placements[i].Node, req, i)
		if !live || p.configFP() != old.Placements[i].configFP() {
			dirty[i] = true
		}
	}
	if dirty[0] {
		return nil, false // the head is pinned at the client node; replan fresh
	}
	m, ok := pl.newChainModel(chain, req)
	if !ok {
		return nil, false
	}
	prev := make([]int, n)
	for v := 0; v < n; v++ {
		if dirty[v] {
			continue
		}
		idx := -1
		for ci := range m.cands[v] {
			if m.cands[v][ci].Key() == old.Placements[v].Key() {
				idx = ci
				break
			}
		}
		if idx < 0 {
			// The previous placement is no longer a candidate (conditions
			// moved, instance evicted): re-open the variable.
			if v == 0 {
				return nil, false
			}
			dirty[v] = true
			continue
		}
		prev[v] = idx
	}
	s := solver.Solver{Stats: pl.SolverStats}
	sol, _, solved := s.Repair(m, prev, dirty)
	if !solved {
		return nil, false
	}
	return sol.Result.(*Deployment), true
}

// chainOf reconstructs the linkage chain of a chain-shaped deployment
// (consecutive edges only), treating a reused tail that still requires
// an interface as an anchor terminal — the same reconstruction Verify
// uses. ok=false for tree-shaped deployments.
func (pl *Planner) chainOf(dep *Deployment) (Chain, bool) {
	if dep == nil || len(dep.Placements) == 0 {
		return nil, false
	}
	for i, e := range dep.Edges {
		if e.From != i || e.To != i+1 {
			return nil, false
		}
	}
	chain := make(Chain, len(dep.Placements))
	for i, p := range dep.Placements {
		comp, ok := pl.Service.Component(p.Component)
		if !ok {
			return nil, false
		}
		chain[i] = chainElem{comp: comp}
		if i == len(dep.Placements)-1 && p.Reused && len(comp.Requires) > 0 {
			anchor := p
			chain[i] = chainElem{comp: comp, anchor: &anchor}
		}
		if i > 0 {
			prev := chain[i-1].comp
			if len(prev.Requires) == 0 {
				return nil, false
			}
			if _, ok := comp.ImplementsInterface(prev.Requires[0].Name); !ok {
				return nil, false
			}
		}
	}
	return chain, true
}
