package planner

import (
	"strings"
	"testing"

	"partsvc/internal/netmodel"
	"partsvc/internal/property"
	"partsvc/internal/spec"
	"partsvc/internal/topology"
)

// portalService builds a small DAG-shaped service: a Portal requires
// both a ServerInterface (mail-style) and a LogInterface, so its
// linkage graphs are trees, not chains.
func portalService() *spec.Service {
	lit := func(v property.Value) property.Expr { return property.Lit(v) }
	return &spec.Service{
		Name: "portal",
		Properties: []property.Type{
			property.BoolType("Confidentiality"),
			property.IntervalType("TrustLevel", 1, 5),
		},
		Interfaces: []spec.InterfaceDecl{
			{Name: "PortalInterface", Properties: []string{"Confidentiality"}},
			{Name: "ServerInterface", Properties: []string{"Confidentiality", "TrustLevel"}},
			{Name: "LogInterface", Properties: []string{"Confidentiality"}},
		},
		Components: []spec.Component{
			{
				Name: "Portal",
				Implements: []spec.InterfaceSpec{{
					Name:  "PortalInterface",
					Props: map[string]property.Expr{"Confidentiality": lit(property.Bool(false))},
				}},
				Requires: []spec.InterfaceSpec{
					{Name: "ServerInterface", Props: map[string]property.Expr{"Confidentiality": lit(property.Bool(true))}},
					{Name: "LogInterface"},
				},
				Behaviors: spec.Behaviors{CPUMSPerRequest: 0.5, RequestBytes: 1024, ResponseBytes: 1024},
			},
			{
				Name: "Server",
				Implements: []spec.InterfaceSpec{{
					Name: "ServerInterface",
					Props: map[string]property.Expr{
						"Confidentiality": lit(property.Bool(true)),
						"TrustLevel":      lit(property.Int(5)),
					},
				}},
				Conditions: []property.Condition{property.CondGE("Node.TrustLevel", 5)},
				Behaviors:  spec.Behaviors{CapacityRPS: 1000, CPUMSPerRequest: 1, RequestBytes: 4096, ResponseBytes: 4096},
			},
			{
				Name: "LogServer",
				Implements: []spec.InterfaceSpec{{
					Name:  "LogInterface",
					Props: map[string]property.Expr{"Confidentiality": lit(property.Bool(false))},
				}},
				Behaviors: spec.Behaviors{CapacityRPS: 5000, CPUMSPerRequest: 0.1, RequestBytes: 256, ResponseBytes: 64},
			},
			{
				Name: "Encryptor2",
				Implements: []spec.InterfaceSpec{{
					Name:  "ServerInterface",
					Props: map[string]property.Expr{"Confidentiality": lit(property.Bool(true))},
				}},
				Requires:  []spec.InterfaceSpec{{Name: "ServerInterface"}},
				Behaviors: spec.Behaviors{CPUMSPerRequest: 0.2, RequestBytes: 4160, ResponseBytes: 4160},
			},
		},
		ModRules: property.RuleTable{
			"Confidentiality": property.ConfidentialityRule("Confidentiality"),
		},
	}
}

func portalPlanner(t *testing.T) *Planner {
	t.Helper()
	svc := portalService()
	if err := svc.Validate(); err != nil {
		t.Fatal(err)
	}
	return New(svc, topology.CaseStudy())
}

func TestEnumerateTreesShape(t *testing.T) {
	pl := portalPlanner(t)
	trees := pl.EnumerateTrees("PortalInterface")
	if len(trees) == 0 {
		t.Fatal("no trees enumerated")
	}
	seen := map[string]bool{}
	for _, tr := range trees {
		seen[tr.Names()] = true
	}
	for _, want := range []string{
		"Portal(Server, LogServer)",
		"Portal(Encryptor2(Server), LogServer)",
	} {
		if !seen[want] {
			t.Errorf("expected tree %q; got %v", want, seen)
		}
	}
}

func TestEnumerateTreesBudget(t *testing.T) {
	pl := portalPlanner(t)
	pl.MaxChainLen = 3
	for _, tr := range pl.EnumerateTrees("PortalInterface") {
		if tr.size() > 3 {
			t.Errorf("tree %s exceeds budget", tr.Names())
		}
	}
}

// TestPlanTreeNY: from New York the portal links directly to the secure
// server and the log server.
func TestPlanTreeNY(t *testing.T) {
	pl := portalPlanner(t)
	dep, err := pl.PlanTree(Request{Interface: "PortalInterface", ClientNode: topology.NYClient, RateRPS: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(dep.Placements) != 3 {
		t.Fatalf("NY tree = %s", dep)
	}
	if dep.Placements[0].Component != "Portal" || dep.Placements[0].Node != topology.NYClient {
		t.Errorf("root must be the Portal at the client node: %s", dep)
	}
	for _, p := range dep.Placements {
		if p.Component == "Encryptor2" {
			t.Errorf("no encryptor needed inside New York: %s", dep)
		}
	}
}

// TestPlanTreeSD: from San Diego the secure branch needs the encryptor;
// the log branch does not (it carries no confidentiality requirement).
func TestPlanTreeSD(t *testing.T) {
	pl := portalPlanner(t)
	dep, err := pl.PlanTree(Request{Interface: "PortalInterface", ClientNode: topology.SDClient, RateRPS: 10})
	if err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	for _, p := range dep.Placements {
		names[p.Component] = true
	}
	if !names["Encryptor2"] {
		t.Errorf("SD portal must reach the server through the encryptor: %s", dep)
	}
	if !names["LogServer"] || !names["Server"] {
		t.Errorf("both branches must be present: %s", dep)
	}
	// Wait: Encryptor2 requires ServerInterface with no property demands,
	// so a single encryptor near the client suffices only if the
	// Server->Encryptor2 hop is secure; the mapper must respect that the
	// Portal->Encryptor2 hop is where plaintext flows.
	var encNode, portalNode netmodel.NodeID
	for _, p := range dep.Placements {
		switch p.Component {
		case "Encryptor2":
			encNode = p.Node
		case "Portal":
			portalNode = p.Node
		}
	}
	path, _ := pl.Net.ShortestPath(portalNode, encNode)
	env := path.Env(pl.Net, pl.LoopbackEnv)
	if conf, ok := env["Confidentiality"].AsBool(); ok && !conf {
		t.Errorf("plaintext Portal->Encryptor2 hop must be secure: %s", dep)
	}
}

// TestPlanTreeLogBranchStaysLocal: min-latency places the log server
// near the client (no security constraint holds it back).
func TestPlanTreeLogBranchStaysLocal(t *testing.T) {
	pl := portalPlanner(t)
	dep, err := pl.PlanTree(Request{Interface: "PortalInterface", ClientNode: topology.SDClient, RateRPS: 10})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range dep.Placements {
		if p.Component == "LogServer" {
			n, _ := pl.Net.Node(p.Node)
			if n.Site != topology.SiteSanDiego {
				t.Errorf("log server should stay in San Diego: %s", dep)
			}
		}
	}
}

// TestPlanTreeRespectsRequireProps: client expectations on the portal
// interface are enforced.
func TestPlanTreeRequireProps(t *testing.T) {
	pl := portalPlanner(t)
	_, err := pl.PlanTree(Request{
		Interface: "PortalInterface", ClientNode: topology.NYClient,
		RequireProps: property.Set{"Confidentiality": property.Bool(true)},
	})
	if err == nil {
		t.Fatal("the portal offers Confidentiality=F; the request must fail")
	}
}

// TestPlanTreeAnchorReuse: a second identical request reuses everything.
func TestPlanTreeAnchorReuse(t *testing.T) {
	pl := portalPlanner(t)
	req := Request{Interface: "PortalInterface", ClientNode: topology.SDClient, RateRPS: 10}
	first, err := pl.PlanTree(req)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range first.Placements {
		pl.AddExisting(p.Placement)
	}
	second, err := pl.PlanTree(req)
	if err != nil {
		t.Fatal(err)
	}
	if second.NewComponents != 0 {
		t.Errorf("second request must reuse all placements: %s", second)
	}
}

// TestPlanTreeErrors: bad requests fail fast.
func TestPlanTreeErrors(t *testing.T) {
	pl := portalPlanner(t)
	if _, err := pl.PlanTree(Request{Interface: "PortalInterface", ClientNode: "ghost"}); err == nil {
		t.Error("unknown node must fail")
	}
	if _, err := pl.PlanTree(Request{Interface: "Ghost", ClientNode: topology.NYClient}); err == nil {
		t.Error("unknown interface must fail")
	}
	if _, err := pl.PlanTree(Request{Interface: "PortalInterface", ClientNode: topology.NYClient, RateRPS: 1e12}); err == nil {
		t.Error("infeasible rate must fail")
	}
}

// TestPlanTreeChainEquivalence: on a chain-shaped service the tree
// planner agrees with the chain planner.
func TestPlanTreeChainEquivalence(t *testing.T) {
	exh := caseStudyPlanner(t)
	tr := caseStudyPlanner(t)
	req := Request{Interface: spec.IfaceClient, ClientNode: topology.SDClient, User: "Alice", RateRPS: 50}
	want := planOrFail(t, exh, req)
	got, err := tr.PlanTree(req)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Placements) != len(want.Placements) {
		t.Fatalf("tree plan %s differs from chain plan %s", got, want)
	}
	for i := range got.Placements {
		if got.Placements[i].Placement.String() != want.Placements[i].String() {
			t.Errorf("position %d: %s vs %s", i, got.Placements[i].Placement, want.Placements[i])
		}
	}
	if diff := got.ExpectedLatencyMS - want.ExpectedLatencyMS; diff > 1e-6 || diff < -1e-6 {
		t.Errorf("latency: tree %v vs chain %v", got.ExpectedLatencyMS, want.ExpectedLatencyMS)
	}
}

func TestTreeNamesAndString(t *testing.T) {
	pl := portalPlanner(t)
	trees := pl.EnumerateTrees("PortalInterface")
	for _, tr := range trees {
		if !strings.HasPrefix(tr.Names(), "Portal") && tr.size() > 1 {
			t.Errorf("tree name %q", tr.Names())
		}
	}
	dep, err := pl.PlanTree(Request{Interface: "PortalInterface", ClientNode: topology.NYClient, RateRPS: 10})
	if err != nil {
		t.Fatal(err)
	}
	s := dep.String()
	if !strings.Contains(s, "Portal@") || !strings.Contains(s, "<-0") {
		t.Errorf("deployment string = %q", s)
	}
}
