package planner

import (
	"fmt"
	"sync"
	"testing"

	"partsvc/internal/netmon"
	"partsvc/internal/topology"
)

// diffSummary renders a diff into a canonical comparable form.
func diffSummary(d *Diff) string {
	if d == nil {
		return "<nil>"
	}
	out := "new=" + d.New.String()
	for _, p := range d.Install {
		out += "|install:" + p.Key()
	}
	for _, p := range d.Remove {
		out += "|remove:" + p.Key()
	}
	for _, p := range d.Evicted {
		out += "|evicted:" + p.Key()
	}
	return out
}

// TestFingerprintsStableAcrossInstances builds the same world twice from
// scratch and asserts the memo identity layer — request fingerprints and
// reuse-set fingerprints — lands on identical strings, while a changed
// request or reuse set lands elsewhere. This is the property that makes
// one WaveMemo shareable between planner instances.
func TestFingerprintsStableAcrossInstances(t *testing.T) {
	a, _, _, reqA := rewireWorld(t)
	b, _, _, reqB := rewireWorld(t)

	if fa, fb := reqA.Fingerprint(), reqB.Fingerprint(); fa != fb {
		t.Fatalf("identical requests fingerprint apart:\n%s\n%s", fa, fb)
	}
	if fa, fb := a.ExistingFingerprint(), b.ExistingFingerprint(); fa != fb {
		t.Fatalf("identical reuse sets fingerprint apart: %s vs %s", fa, fb)
	}

	other := reqA
	other.User = "Mallory"
	if other.Fingerprint() == reqA.Fingerprint() {
		t.Fatal("different users must fingerprint apart")
	}
	b.Existing = b.Existing[:len(b.Existing)-1]
	if a.ExistingFingerprint() == b.ExistingFingerprint() {
		t.Fatal("different reuse sets must fingerprint apart")
	}
}

// TestWaveMemoSharedMatchesIndependent is the satellite equivalence
// check: two planner instances over identical worlds, one answering
// through a shared WaveMemo (second session hits the first session's
// entry), must produce byte-identical replan diffs to the same planners
// running independently.
func TestWaveMemoSharedMatchesIndependent(t *testing.T) {
	degrade := func(mon *netmon.Monitor) {
		if err := mon.ReportLink(topology.SDGateway, topology.SeaGW, 1500, 1, nil); err != nil {
			t.Fatal(err)
		}
	}

	// Independent baseline: each instance replans on its own.
	p1, m1, dep1, req1 := rewireWorld(t)
	degrade(m1)
	want1, err := p1.ReplanRewire(dep1, req1)
	if err != nil {
		t.Fatal(err)
	}

	// Shared path: two fresh instances of the same world share one memo.
	pa, ma, depA, reqA := rewireWorld(t)
	pb, mb, depB, reqB := rewireWorld(t)
	degrade(ma)
	degrade(mb)
	memo := NewWaveMemo()
	replanVia := func(pl *Planner, dep *Deployment, req Request) *Diff {
		rc := pl.Net.Routes()
		pl.PinRoutes(rc)
		defer pl.PinRoutes(nil)
		key := WaveKey(req, pl.ExistingFingerprint(), rc.Epoch(), dep)
		diff, _, _, err := memo.Do(key, func() (*Diff, Stats, error) {
			d, err := pl.ReplanRewire(dep, req)
			return d, pl.Stats(), err
		})
		if err != nil {
			t.Fatal(err)
		}
		return diff
	}
	gotA := replanVia(pa, depA, reqA)
	gotB := replanVia(pb, depB, reqB)

	if hits, misses := memo.Counters(); hits != 1 || misses != 1 {
		t.Fatalf("identical sessions must share one computation: hits=%d misses=%d", hits, misses)
	}
	if sa, sb := diffSummary(gotA), diffSummary(gotB); sa != sb {
		t.Fatalf("memo hit diverged from memo miss:\n%s\n%s", sa, sb)
	}
	if sw, sa := diffSummary(want1), diffSummary(gotA); sw != sa {
		t.Fatalf("shared-memo diff diverged from independent replan:\n%s\n%s", sw, sa)
	}

	// The hit's diff must be a private clone: mutating one session's
	// slices must not leak into the other's.
	if len(gotA.Install) > 0 && len(gotB.Install) > 0 {
		gotA.Install[0].Component = "tampered"
		if gotB.Install[0].Component == "tampered" {
			t.Fatal("memo handed out aliased diffs across sessions")
		}
	}
}

// TestWaveMemoComputesOnceUnderContention hammers one key from many
// goroutines and asserts exactly one compute ran, with everyone else
// blocking for (and sharing) its result.
func TestWaveMemoComputesOnceUnderContention(t *testing.T) {
	memo := NewWaveMemo()
	var mu sync.Mutex
	computes := 0
	const callers = 32
	var wg sync.WaitGroup
	diffs := make([]*Diff, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(slot int) {
			defer wg.Done()
			d, _, _, err := memo.Do("k", func() (*Diff, Stats, error) {
				mu.Lock()
				computes++
				mu.Unlock()
				return &Diff{New: &Deployment{Placements: []Placement{{Component: "X", Node: "n"}}}}, Stats{}, nil
			})
			if err != nil {
				t.Error(err)
			}
			diffs[slot] = d
		}(i)
	}
	wg.Wait()
	if computes != 1 {
		t.Fatalf("compute ran %d times, want 1", computes)
	}
	hits, misses := memo.Counters()
	if misses != 1 || hits != callers-1 {
		t.Fatalf("hits=%d misses=%d, want %d/1", hits, misses, callers-1)
	}
	seen := map[*Deployment]bool{}
	for i, d := range diffs {
		if d == nil || len(d.New.Placements) != 1 {
			t.Fatalf("caller %d got %v", i, d)
		}
		if seen[d.New] {
			t.Fatalf("caller %d shares a Deployment pointer with another caller", i)
		}
		seen[d.New] = true
	}
	if memo.Len() != 1 {
		t.Fatalf("Len = %d, want 1", memo.Len())
	}
}

// TestWaveKeySeparatesEpochs: the same request on the same reuse set
// keys apart across route epochs — a wave never serves a result
// computed against a different topology view.
func TestWaveKeySeparatesEpochs(t *testing.T) {
	req := Request{Interface: "I", ClientNode: "n1", User: "u"}
	old := &Deployment{Placements: []Placement{{Component: "C", Node: "n1"}}}
	k1 := WaveKey(req, "fp", 1, old)
	k2 := WaveKey(req, "fp", 2, old)
	if k1 == k2 {
		t.Fatal("epochs must separate wave keys")
	}
	if k1 != WaveKey(req, "fp", 1, old) {
		t.Fatal("wave keys must be deterministic")
	}
	if WaveKey(req, "fp", 1, nil) == k1 {
		t.Fatal("nil old deployment must key apart from a populated one")
	}
	_ = fmt.Sprintf("%s", k1)
}
