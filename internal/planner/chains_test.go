package planner

import (
	"strings"
	"testing"

	"partsvc/internal/spec"
	"partsvc/internal/topology"
)

func mailPlanner(t *testing.T) *Planner {
	t.Helper()
	svc := spec.MailService()
	if err := svc.Validate(); err != nil {
		t.Fatal(err)
	}
	return New(svc, topology.CaseStudy())
}

func chainKey(c Chain) string { return strings.Join(c.Names(), ">") }

// TestEnumerateChainsFigure3 reproduces Figure 3: the valid component
// chains for a ClientInterface request originate at MailClient or
// ViewMailClient, terminate at MailServer, and may pass through
// ViewMailServers and Encryptor-Decryptor pairs.
func TestEnumerateChainsFigure3(t *testing.T) {
	pl := mailPlanner(t)
	chains := pl.EnumerateChains(spec.IfaceClient)
	if len(chains) == 0 {
		t.Fatal("no chains enumerated")
	}
	seen := map[string]bool{}
	for _, c := range chains {
		key := chainKey(c)
		if seen[key] {
			t.Errorf("duplicate chain %s", key)
		}
		seen[key] = true

		names := c.Names()
		if names[0] != spec.CompMailClient && names[0] != spec.CompViewMailClient {
			t.Errorf("chain %s must start at a client component", key)
		}
		if names[len(names)-1] != spec.CompMailServer {
			t.Errorf("chain %s must terminate at MailServer", key)
		}
		// Encryptors are always immediately followed by Decryptors and
		// vice versa (the only implementer of DecryptorInterface is the
		// Decryptor; the Decryptor requires a ServerInterface).
		for i, n := range names {
			if n == spec.CompEncryptor {
				if i+1 >= len(names) || names[i+1] != spec.CompDecryptor {
					t.Errorf("chain %s: Encryptor not followed by Decryptor", key)
				}
			}
			if n == spec.CompDecryptor && (i == 0 || names[i-1] != spec.CompEncryptor) {
				t.Errorf("chain %s: Decryptor not preceded by Encryptor", key)
			}
		}
	}
	// The canonical Figure 3 chains must all be present.
	for _, want := range []string{
		"MailClient>MailServer",
		"MailClient>ViewMailServer>MailServer",
		"MailClient>Encryptor>Decryptor>MailServer",
		"MailClient>ViewMailServer>Encryptor>Decryptor>MailServer",
		"MailClient>Encryptor>Decryptor>ViewMailServer>MailServer",
		"MailClient>ViewMailServer>ViewMailServer>MailServer",
		"ViewMailClient>MailServer",
		"ViewMailClient>ViewMailServer>MailServer",
		"ViewMailClient>ViewMailServer>Encryptor>Decryptor>MailServer",
	} {
		if !seen[want] {
			t.Errorf("expected chain %s not enumerated", want)
		}
	}
}

// TestEnumerateChainsDeterministic: two runs produce identical output.
func TestEnumerateChainsDeterministic(t *testing.T) {
	pl := mailPlanner(t)
	a := pl.EnumerateChains(spec.IfaceClient)
	b := pl.EnumerateChains(spec.IfaceClient)
	if len(a) != len(b) {
		t.Fatalf("run lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if chainKey(a[i]) != chainKey(b[i]) {
			t.Fatalf("chain %d differs: %s vs %s", i, chainKey(a[i]), chainKey(b[i]))
		}
	}
}

// TestEnumerateChainsRespectsMaxLen: no enumerated chain exceeds the
// bound, and tightening the bound prunes chains.
func TestEnumerateChainsRespectsMaxLen(t *testing.T) {
	pl := mailPlanner(t)
	for _, c := range pl.EnumerateChains(spec.IfaceClient) {
		if len(c) > pl.maxLen() {
			t.Errorf("chain %s exceeds max length %d", chainKey(c), pl.maxLen())
		}
	}
	wide := len(pl.EnumerateChains(spec.IfaceClient))
	pl.MaxChainLen = 2
	narrow := pl.EnumerateChains(spec.IfaceClient)
	if len(narrow) >= wide {
		t.Errorf("MaxChainLen=2 must prune chains: %d vs %d", len(narrow), wide)
	}
	for _, c := range narrow {
		if len(c) > 2 {
			t.Errorf("chain %s exceeds bound 2", chainKey(c))
		}
	}
}

// TestEnumerateChainsServerInterface: a direct request for the server
// interface enumerates server-side chains only.
func TestEnumerateChainsServerInterface(t *testing.T) {
	pl := mailPlanner(t)
	chains := pl.EnumerateChains(spec.IfaceServer)
	seen := map[string]bool{}
	for _, c := range chains {
		seen[chainKey(c)] = true
		if n := c.Names()[0]; n == spec.CompMailClient || n == spec.CompViewMailClient {
			t.Errorf("client components do not implement ServerInterface: %s", chainKey(c))
		}
	}
	if !seen["MailServer"] {
		t.Error("bare MailServer chain missing")
	}
	if !seen["ViewMailServer>MailServer"] {
		t.Error("ViewMailServer>MailServer chain missing")
	}
}

// TestEnumerateChainsWithAnchors: existing instances appear as chain
// terminals marked with "*".
func TestEnumerateChainsWithAnchors(t *testing.T) {
	pl := mailPlanner(t)
	ms, err := pl.PrimaryPlacement(spec.CompMailServer, topology.NYServer)
	if err != nil {
		t.Fatal(err)
	}
	pl.AddExisting(ms)
	chains := pl.EnumerateChains(spec.IfaceClient)
	found := false
	for _, c := range chains {
		if chainKey(c) == "MailClient>MailServer*" {
			found = true
			if !c[1].isAnchor() {
				t.Error("terminal must be an anchor element")
			}
		}
	}
	if !found {
		t.Error("anchored chain MailClient>MailServer* not enumerated")
	}
}

// TestEnumerateChainsUnknownInterface returns nothing.
func TestEnumerateChainsUnknownInterface(t *testing.T) {
	pl := mailPlanner(t)
	if got := pl.EnumerateChains("NoSuchInterface"); len(got) != 0 {
		t.Errorf("unknown interface enumerated %d chains", len(got))
	}
}
