// Package planner implements the planning module of the partitionable
// services framework (HPDC'02, Section 3.3): given a declarative service
// specification and the current network state, it determines which
// components to instantiate, with which factored configurations, at
// which nodes, so that a client request for a service interface is
// satisfied and a global objective is optimized.
//
// Planning proceeds in the paper's two logical steps: (1) enumerate the
// valid linkage graphs of components that can satisfy the request
// (Figure 3), and (2) map each graph onto the network, discarding
// mappings that violate any of the three validity conditions —
// deployment conditions, property compatibility under the environment's
// modification rules, and load versus node/link capacity. Three
// planner variants are provided: the exhaustive search of the paper's
// implementation, the CANS dynamic-programming chain planner it cites,
// and a backtracking planner for tree-shaped component graphs.
package planner

import (
	"fmt"
	"math"
	"strings"

	"partsvc/internal/metrics"
	"partsvc/internal/netmodel"
	"partsvc/internal/property"
	"partsvc/internal/solver"
	"partsvc/internal/spec"
)

// Objective selects the global metric the planner optimizes
// ("maximum capacity, minimum deployment cost, etc.").
type Objective int

const (
	// MinLatency minimizes the expected client-perceived request
	// latency; ties are broken by deployment cost.
	MinLatency Objective = iota
	// MinCost minimizes the number of newly deployed components; ties
	// are broken by expected latency.
	MinCost
	// MaxCapacity maximizes the sustainable request rate (the smallest
	// capacity headroom along the chain); ties broken by latency.
	MaxCapacity
)

// String names the objective.
func (o Objective) String() string {
	switch o {
	case MinLatency:
		return "min-latency"
	case MinCost:
		return "min-cost"
	case MaxCapacity:
		return "max-capacity"
	}
	return "unknown"
}

// Request is a client request for service interfaces, carried from the
// generic proxy to the planner together with supporting credentials.
type Request struct {
	// Interface is the requested service interface (e.g.
	// "ClientInterface").
	Interface string
	// ClientNode is the node from which the client operates; the head
	// component of the deployment is pinned there.
	ClientNode netmodel.NodeID
	// User is the requesting principal, exposed to head-component
	// deployment conditions as the User property.
	User string
	// RequireProps, when non-nil, adds property requirements on the
	// requested interface itself (client QoS expectations).
	RequireProps property.Set
	// RateRPS is the expected request rate from this client, used by the
	// load validity condition. Zero disables load checking for the
	// request.
	RateRPS float64
	// Objective selects the optimization goal; the zero value is
	// MinLatency.
	Objective Objective
}

// Placement instantiates one component at one node.
type Placement struct {
	// Component is the component (or view) name from the specification.
	Component string
	// Node is where it runs.
	Node netmodel.NodeID
	// Config holds the factored property bindings of this instance
	// (e.g. TrustLevel=2 for a ViewMailServer on a partner node).
	Config property.Set
	// Offers records the effective property set the instance offers to
	// clients linking to it, computed during validation. For existing
	// instances registered with the planner, Offers is what incremental
	// plans link against.
	Offers property.Set
	// UpstreamMS is the expected additional latency, per request
	// arriving at this instance, incurred by its already-deployed
	// upstream linkage (its cache misses continuing toward the primary).
	// Incremental plans that terminate at this instance charge it on the
	// final hop.
	UpstreamMS float64
	// Reused marks a placement satisfied by an already-deployed
	// instance rather than a new installation.
	Reused bool

	// cfgFP and idKey cache Config.Fingerprint() and Key(): both
	// participate in identity checks inside the search hot loops, and
	// the fields they derive from never change after a placement is
	// built. Empty means not yet computed (for cfgFP indistinguishable
	// from an empty Config, whose fingerprint is also "" — recomputing
	// that case is free).
	cfgFP string
	idKey string
}

// configFP returns the placement's configuration fingerprint, computed
// at most once per placement by the planner's construction paths.
func (p Placement) configFP() string {
	if p.cfgFP != "" || len(p.Config) == 0 {
		return p.cfgFP
	}
	return p.Config.Fingerprint()
}

// Key returns a stable identity for the placement (component, node and
// factored configuration), used to recognize reusable instances.
func (p Placement) Key() string {
	if p.idKey != "" {
		return p.idKey
	}
	return p.Component + "@" + string(p.Node) + "{" + p.configFP() + "}"
}

// sealKeys precomputes the placement's identity strings so hot-loop
// Key/configFP calls are allocation-free.
func (p *Placement) sealKeys() {
	p.cfgFP = p.Config.Fingerprint()
	p.idKey = p.Component + "@" + string(p.Node) + "{" + p.cfgFP + "}"
}

// String renders the placement compactly.
func (p Placement) String() string {
	s := fmt.Sprintf("%s@%s", p.Component, p.Node)
	if len(p.Config) > 0 {
		s += "{" + p.Config.Fingerprint() + "}"
	}
	if p.Reused {
		s += "*"
	}
	return s
}

// Edge connects two placements in deployment order: From is the
// client-side component, To its provider; Path is the network route the
// linkage uses.
type Edge struct {
	From, To int
	Path     netmodel.Path
	// Iface is the interface the linkage serves (the From component's
	// required interface this edge satisfies). Chain deployments leave
	// the engine free to derive it; tree deployments need it to wire
	// multi-upstream components unambiguously.
	Iface string
}

// Deployment is a validated mapping of a linkage chain onto the network.
type Deployment struct {
	// Placements lists component instances head (client side) first.
	Placements []Placement
	// Edges connects consecutive placements.
	Edges []Edge
	// ExpectedLatencyMS is the expected client-perceived request
	// latency: per-edge round-trip and service costs weighted by the
	// probability the request reaches that edge (the product of
	// upstream RRFs).
	ExpectedLatencyMS float64
	// NewComponents counts placements that are not reused.
	NewComponents int
	// CapacityRPS is the maximum request rate the deployment can
	// sustain (minimum headroom across components, nodes, and links);
	// +Inf when nothing binds.
	CapacityRPS float64
}

// Chain returns the component names of the deployment, head first.
func (d Deployment) Chain() []string {
	out := make([]string, len(d.Placements))
	for i, p := range d.Placements {
		out[i] = p.Component
	}
	return out
}

// String renders the deployment as "MC@sd-2 -> VMS@sd-2{...} -> ...".
func (d Deployment) String() string {
	parts := make([]string, len(d.Placements))
	for i, p := range d.Placements {
		parts[i] = p.String()
	}
	return strings.Join(parts, " -> ")
}

// Stats accumulates search statistics, reported for visibility into
// planner behavior and used by tests that assert rejection reasons.
type Stats struct {
	// ChainsEnumerated is the number of valid linkage chains found in
	// step 1.
	ChainsEnumerated int
	// MappingsTried is the number of complete node assignments examined.
	MappingsTried int
	// RejectedConditions counts assignments rejected by deployment
	// conditions (validity condition 1).
	RejectedConditions int
	// RejectedProps counts assignments rejected by property
	// compatibility (validity condition 2).
	RejectedProps int
	// RejectedLoad counts assignments rejected by the load check
	// (validity condition 3).
	RejectedLoad int
	// RejectedNoPath counts assignments with no network route between
	// linked components.
	RejectedNoPath int
	// RouteCacheHits and RouteCacheMisses count route lookups served
	// from the network's shortest-path cache versus lookups that had to
	// build a single-source tree, over the duration of the plan call.
	RouteCacheHits   int
	RouteCacheMisses int
	// DPFallbacks counts chains the DP mapper handed to the exhaustive
	// mapper because its selected candidate failed exact re-validation.
	DPFallbacks int
}

// Planner binds a service specification to a network and plans
// deployments for client requests. The current implementation mirrors
// the paper's assumptions: the network is static and properties remain
// fixed over the lifetime of a deployment.
type Planner struct {
	// Service is the declarative specification.
	Service *spec.Service
	// Net is the planner's view of the network.
	Net *netmodel.Network
	// LoopbackEnv is the property environment of intra-node linkage
	// (components co-located on one node); typically confidential.
	LoopbackEnv property.Set
	// MaxChainLen bounds linkage chain enumeration (components per
	// chain); 0 means the default of 6.
	MaxChainLen int
	// Existing lists already-deployed component instances. The planner
	// reuses them at zero deployment cost, and never creates a second
	// instance of a stateful primary that already has one (state lives
	// in the primary; replication happens through data views).
	Existing []Placement
	// DeployPenaltyMS is the amortized per-request charge for each newly
	// deployed component under the MinLatency objective. It models the
	// one-time deployment and startup cost (about 10 seconds in the
	// paper's Section 4.2) spread over a session's requests, and keeps
	// the planner from deploying caches that save less than they cost
	// to install. New sets it to 5 ms; set it to zero to disable the
	// penalty.
	DeployPenaltyMS float64
	// Workers bounds the parallel per-chain search in PlanDP: each
	// enumerated chain is an independent subproblem, fanned out over a
	// worker pool of this size and reduced deterministically (the same
	// total order as the sequential loop, ties kept by chain index), so
	// results are bit-identical to a sequential run. Zero means
	// GOMAXPROCS; 1 forces the sequential path.
	Workers int
	// PreferDP routes Replan's planning pass through PlanDP instead of
	// the exhaustive search. On topologies beyond a few dozen nodes the
	// exhaustive mapper is intractable while the DP mapper stays
	// polynomial; fleet-scale callers set this. Plan itself is
	// unaffected (PlanDP falls back to it where the DP relaxation does
	// not apply).
	PreferDP bool
	// PreferSolver routes Replan's planning pass through the
	// constraint-solver backend (PlanSolver), and enables incremental
	// repair in RepairReplan. Takes precedence over PreferDP.
	PreferSolver bool
	// SolverStats accumulates constraint-engine counters (solves,
	// repairs, propagations, ...) across plan calls. Shared by worker
	// clones; initialized by New.
	SolverStats *solver.Stats

	stats  Stats
	memo   *planMemo
	routes *netmodel.RouteCache
	// pinnedRoutes, when non-nil, overrides the epoch-current route
	// handle for every plan call (see PinRoutes).
	pinnedRoutes *netmodel.RouteCache
	// hits0/misses0 snapshot the route-cache counters at beginPlan so
	// endPlan can attribute the delta to this plan call.
	hits0, misses0 uint64
}

// New returns a planner over a specification and network.
func New(svc *spec.Service, net *netmodel.Network) *Planner {
	return &Planner{
		Service:         svc,
		Net:             net,
		LoopbackEnv:     property.Set{"Confidentiality": property.Bool(true)},
		DeployPenaltyMS: 5,
		SolverStats:     &solver.Stats{},
	}
}

// Stats returns the statistics accumulated by the most recent Plan call.
func (pl *Planner) Stats() Stats { return pl.stats }

// PinRoutes freezes the planner onto one route-cache epoch: every
// subsequent plan call answers path queries from rc instead of the
// network's current cache, so a topology mutation arriving while a
// replan wave is in flight cannot split the wave across two views of
// the network. Pass nil to unpin. The caller owns consistency between
// the pinned routes and the live node table (revalidation still reads
// live node liveness, which is exactly what a wave wants: evictions
// current, routing frozen).
func (pl *Planner) PinRoutes(rc *netmodel.RouteCache) { pl.pinnedRoutes = rc }

// KVs renders the stats as metrics-registry rows.
func (s Stats) KVs() []metrics.KV {
	return []metrics.KV{
		metrics.KVf("chains_enumerated", "%d", s.ChainsEnumerated),
		metrics.KVf("mappings_tried", "%d", s.MappingsTried),
		metrics.KVf("rejected_conditions", "%d", s.RejectedConditions),
		metrics.KVf("rejected_props", "%d", s.RejectedProps),
		metrics.KVf("rejected_load", "%d", s.RejectedLoad),
		metrics.KVf("rejected_no_path", "%d", s.RejectedNoPath),
		metrics.KVf("route_cache_hits", "%d", s.RouteCacheHits),
		metrics.KVf("route_cache_misses", "%d", s.RouteCacheMisses),
		metrics.KVf("dp_fallbacks", "%d", s.DPFallbacks),
	}
}

// RegisterMetrics exposes the planner's latest-plan stats in reg under
// the given section name ("planner"). Snapshots are taken at render
// time, so the section always shows the most recent Plan call.
func (pl *Planner) RegisterMetrics(reg *metrics.Registry, section string) {
	reg.RegisterSection(section, func() []metrics.KV { return pl.Stats().KVs() })
}

// RegisterSolverMetrics exposes the constraint-engine counters in reg
// under the given section name ("solver"). Unlike the per-plan planner
// stats, these accumulate across calls.
func (pl *Planner) RegisterSolverMetrics(reg *metrics.Registry, section string) {
	reg.RegisterSection(section, func() []metrics.KV { return pl.SolverStats.KVs() })
}

// maxLen returns the effective chain length bound.
func (pl *Planner) maxLen() int {
	if pl.MaxChainLen > 0 {
		return pl.MaxChainLen
	}
	return 6
}

// Plan satisfies a client request: it enumerates valid chains, maps each
// onto the network exhaustively, and returns the best deployment under
// the request's objective. It returns an error when no valid deployment
// exists, with the accumulated rejection statistics in Stats.
func (pl *Planner) Plan(req Request) (*Deployment, error) {
	pl.beginPlan()
	defer pl.endPlan()
	if _, ok := pl.Net.Node(req.ClientNode); !ok {
		return nil, fmt.Errorf("planner: client node %q not in network", req.ClientNode)
	}
	if _, ok := pl.Service.Interface(req.Interface); !ok {
		return nil, fmt.Errorf("planner: interface %q not in service %q", req.Interface, pl.Service.Name)
	}
	chains := pl.EnumerateChains(req.Interface)
	pl.stats.ChainsEnumerated = len(chains)
	if len(chains) == 0 {
		return nil, fmt.Errorf("planner: no component chain implements %q", req.Interface)
	}
	var best *Deployment
	for _, chain := range chains {
		dep := pl.mapChain(chain, req)
		if dep == nil {
			continue
		}
		if best == nil || pl.better(req.Objective, dep, best) {
			best = dep
		}
	}
	if best == nil {
		return nil, fmt.Errorf(
			"planner: no valid mapping for %q from %s (chains %d, mappings %d; rejected: conditions %d, properties %d, load %d, no-path %d)",
			req.Interface, req.ClientNode, pl.stats.ChainsEnumerated, pl.stats.MappingsTried,
			pl.stats.RejectedConditions, pl.stats.RejectedProps, pl.stats.RejectedLoad, pl.stats.RejectedNoPath)
	}
	return best, nil
}

// better reports whether a should replace b under the objective.
// All objectives use the remaining metrics, then a lexicographic
// signature, as deterministic tie-breaks.
func (pl *Planner) better(o Objective, a, b *Deployment) bool {
	type key struct{ primary, secondary, tertiary float64 }
	mk := func(d *Deployment) key {
		switch o {
		case MinCost:
			return key{float64(d.NewComponents), d.ExpectedLatencyMS, -d.CapacityRPS}
		case MaxCapacity:
			return key{-d.CapacityRPS, d.ExpectedLatencyMS, float64(d.NewComponents)}
		default: // MinLatency
			return key{d.ExpectedLatencyMS + pl.DeployPenaltyMS*float64(d.NewComponents),
				float64(d.NewComponents), -d.CapacityRPS}
		}
	}
	ka, kb := mk(a), mk(b)
	const eps = 1e-9
	if math.Abs(ka.primary-kb.primary) > eps {
		return ka.primary < kb.primary
	}
	if math.Abs(ka.secondary-kb.secondary) > eps {
		return ka.secondary < kb.secondary
	}
	if math.Abs(ka.tertiary-kb.tertiary) > eps {
		return ka.tertiary < kb.tertiary
	}
	return a.String() < b.String()
}

// anchorFor returns an existing placement matching the candidate's
// component, node and factored configuration.
func (pl *Planner) anchorFor(p Placement) (Placement, bool) {
	for _, e := range pl.Existing {
		if e.Component == p.Component && e.Node == p.Node && e.configFP() == p.configFP() {
			e.Reused = true
			return e, true
		}
	}
	return Placement{}, false
}

// hasAnyInstance reports whether the component already has a deployed
// instance anywhere in the network.
func (pl *Planner) hasAnyInstance(component string) bool {
	for _, e := range pl.Existing {
		if e.Component == component {
			return true
		}
	}
	return false
}

// isStatefulPrimary reports whether the component is a stateful primary:
// a non-view component that has data views defined over it. Once such a
// component has a deployed instance, plans reuse it rather than create a
// second copy (two primaries would fork the state that its data views
// replicate). Client-side components, encryptors and other stateless
// pieces remain freely instantiable.
func (pl *Planner) isStatefulPrimary(comp spec.Component) bool {
	if comp.IsView() {
		return false
	}
	for _, v := range pl.Service.ViewsOf(comp.Name) {
		if v.Kind == spec.DataView {
			return true
		}
	}
	return false
}

// AddExisting registers deployed instances with the planner so that
// subsequent plans can reuse them and link new components to them.
// Placements are deduplicated by Key; the Offers of the latest
// registration wins.
func (pl *Planner) AddExisting(placements ...Placement) {
	for _, p := range placements {
		p.Reused = false
		p.sealKeys()
		replaced := false
		for i := range pl.Existing {
			if pl.Existing[i].Key() == p.Key() {
				pl.Existing[i] = p
				replaced = true
				break
			}
		}
		if !replaced {
			pl.Existing = append(pl.Existing, p)
		}
	}
}

// DropExisting forgets instances (matched by Key) so subsequent plans
// cannot reuse them — the counterpart of AddExisting for teardown: a
// plan that reused a torn-down instance would fail at the engine.
func (pl *Planner) DropExisting(placements ...Placement) {
	for _, p := range placements {
		pl.DropExistingByKey(p.Key())
	}
}

// DropExistingByKey is DropExisting for callers that only hold
// placement keys (e.g. the engine's wiring-orphan report).
func (pl *Planner) DropExistingByKey(keys ...string) {
	for _, key := range keys {
		for i := range pl.Existing {
			if pl.Existing[i].Key() == key {
				pl.Existing = append(pl.Existing[:i], pl.Existing[i+1:]...)
				break
			}
		}
	}
}

// PrimaryPlacement builds the Placement for a component pre-deployed by
// the service owner (e.g. the primary MailServer in New York), deriving
// its offered properties from its first implemented interface evaluated
// at the node. Register the result with AddExisting before planning.
func (pl *Planner) PrimaryPlacement(component string, node netmodel.NodeID) (Placement, error) {
	comp, ok := pl.Service.Component(component)
	if !ok {
		return Placement{}, fmt.Errorf("planner: unknown component %q", component)
	}
	n, ok := pl.Net.Node(node)
	if !ok {
		return Placement{}, fmt.Errorf("planner: unknown node %q", node)
	}
	sc := property.Scope{Node: n.Props}
	config := property.Set{}
	for name, expr := range comp.Factors {
		v, err := expr.Eval(sc)
		if err != nil {
			return Placement{}, fmt.Errorf("planner: factoring %s at %s: %w", component, node, err)
		}
		config[name] = v
	}
	if len(comp.Implements) == 0 {
		return Placement{}, fmt.Errorf("planner: component %q implements nothing", component)
	}
	offers, err := comp.Implements[0].EvalProps(property.Scope{Node: n.Props.Merge(config)})
	if err != nil {
		return Placement{}, fmt.Errorf("planner: evaluating offers of %s at %s: %w", component, node, err)
	}
	return Placement{Component: component, Node: node, Config: config, Offers: offers}, nil
}
