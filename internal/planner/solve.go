package planner

import (
	"fmt"
	"math"
	"sort"

	"partsvc/internal/solver"
)

// This file adapts planning onto the generic constraint engine in
// internal/solver: variables are linkage-graph positions, domains are
// candidate placements, binary constraints are route existence plus the
// adjacent duplicate rules, and the admissible bound is the optimistic
// flow-weighted hop cost (a per-chain DP relaxation computes subtree
// completions inside the engine). Everything the binary relation cannot
// express — property compatibility under modification rules, load
// aggregation, non-adjacent duplicates — is enforced by the exact
// Evaluate, so solver results obey the same three validity conditions
// as Plan.

// chainModel is the solver model of one linkage chain.
type chainModel struct {
	pl    *Planner
	chain Chain
	req   Request
	// cands holds the candidate placements per chain position; domain
	// values are indices into these slices.
	cands [][]Placement
	// wIn[v] is the optimistic in-flow at position v per unit client
	// rate: the product of upstream RRFs with every caching component
	// counted at full effect. The first-occurrence rule can only raise
	// RRFs toward 1, so wIn never exceeds the true flow — which makes
	// the flow-weighted hop bound admissible.
	wIn []float64
	// caching marks positions whose component has RRF < 1.
	caching []bool
}

func (m *chainModel) Vars() int            { return len(m.chain) }
func (m *chainModel) Parent(v int) int     { return v - 1 }
func (m *chainModel) DomainSize(v int) int { return len(m.cands[v]) }
func (m *chainModel) Bounded() bool        { return m.req.Objective != MaxCapacity }

// Compatible prunes pairs no complete assignment can redeem: linkages
// with no network route, linkages whose path cannot carry the requested
// rate, and adjacent duplicate instances or replicas (the full
// any-distance rules run in Evaluate).
func (m *chainModel) Compatible(v, pv, cv int) bool {
	a, b := m.cands[v-1][pv], m.cands[v][cv]
	path, ok := m.pl.routes.Path(a.Node, b.Node)
	if !ok {
		return false
	}
	// Bandwidth: wIn[v] never exceeds the true flow on this linkage, so
	// when even that optimistic demand saturates the path bottleneck,
	// capacityRPS caps below the requested rate for every completion and
	// validate rejects them all. Pruning here lets propagation prove
	// infeasibility (e.g. a partitioned client) without enumerating. A
	// non-positive bottleneck means an unconstrained link on the path,
	// which the validators skip — so skip the prune too.
	if m.req.RateRPS > 0 && path.BottleneckMbps > 0 && !path.IsLoopback() {
		bh := m.chain[v].comp.Behaviors
		bits := m.req.RateRPS * m.wIn[v] * float64(bh.RequestBytes+bh.ResponseBytes) * 8
		if bits > path.BottleneckMbps*1e6 {
			return false
		}
	}
	if a.Key() == b.Key() {
		return false
	}
	if m.caching[v] && a.Component == b.Component && a.configFP() == b.configFP() {
		return false
	}
	return true
}

// EdgeBound lower-bounds the primary-objective contribution of placing
// position v at candidate cv under parent candidate pv. MinCost is
// exact (one per new component); MinLatency is the optimistic
// flow-weighted hop cost plus the deployment penalty.
func (m *chainModel) EdgeBound(v, pv, cv int) float64 {
	p := m.cands[v][cv]
	switch m.req.Objective {
	case MinCost:
		if p.Reused {
			return 0
		}
		return 1
	case MaxCapacity:
		return 0
	}
	var pen float64
	if !p.Reused {
		pen = m.pl.DeployPenaltyMS
	}
	if v == 0 {
		return m.chain[0].comp.Behaviors.CPUMSPerRequest + pen
	}
	path, ok := m.pl.routes.Path(m.cands[v-1][pv].Node, p.Node)
	if !ok {
		return math.Inf(1)
	}
	hop := m.pl.edgeHop(m.chain, v-1, path)
	if m.chain[v].isAnchor() {
		hop += m.chain[v].anchor.UpstreamMS
	}
	return pen + m.wIn[v]*hop
}

// Evaluate applies the full duplicate rules and the exact validity
// conditions (properties, load, metrics) via the chain validator.
func (m *chainModel) Evaluate(assign []int) (any, float64, bool) {
	places := make([]Placement, len(assign))
	for v, cv := range assign {
		places[v] = m.cands[v][cv]
	}
	for v := 1; v < len(places); v++ {
		id := places[v].Component + "{" + places[v].configFP() + "}"
		for j := 0; j < v; j++ {
			if places[v].Key() == places[j].Key() {
				return nil, 0, false
			}
			if m.caching[v] && id == places[j].Component+"{"+places[j].configFP()+"}" {
				return nil, 0, false
			}
		}
	}
	m.pl.stats.MappingsTried++
	dep := m.pl.validate(m.chain, places, m.req)
	if dep == nil {
		return nil, 0, false
	}
	return dep, m.pl.primaryOf(m.req.Objective, dep), true
}

func (m *chainModel) Better(a, b any) bool {
	return m.pl.better(m.req.Objective, a.(*Deployment), b.(*Deployment))
}

// primaryOf is the primary objective key of the deployment — the same
// quantity better compares first, shared with the solver's bound.
func (pl *Planner) primaryOf(o Objective, d *Deployment) float64 {
	switch o {
	case MinCost:
		return float64(d.NewComponents)
	case MaxCapacity:
		return -d.CapacityRPS
	default:
		return d.ExpectedLatencyMS + pl.DeployPenaltyMS*float64(d.NewComponents)
	}
}

// newChainModel builds the solver model of a chain: the head pinned at
// the client node, anchors and existing stateful primaries at their
// recorded nodes, everything else over the whole node table. ok=false
// when a position has no candidates at all.
func (pl *Planner) newChainModel(chain Chain, req Request) (*chainModel, bool) {
	if chain[0].isAnchor() {
		return nil, false
	}
	head, ok := pl.placementForCached(chain[0].comp, req.ClientNode, req, 0)
	if !ok {
		pl.stats.RejectedConditions++
		return nil, false
	}
	if anchor, found := pl.anchorFor(head); found {
		head = anchor
	}
	m := &chainModel{pl: pl, chain: chain, req: req}
	m.cands = make([][]Placement, len(chain))
	m.cands[0] = []Placement{head}
	m.caching = make([]bool, len(chain))
	m.wIn = make([]float64, len(chain))
	w := 1.0
	for i := range chain {
		m.caching[i] = chain[i].comp.Behaviors.EffectiveRRF() < 1
		m.wIn[i] = w
		w *= chain[i].comp.Behaviors.EffectiveRRF()
	}
	for pos := 1; pos < len(chain); pos++ {
		m.cands[pos] = pl.chainCandidates(chain, pos, req)
		if len(m.cands[pos]) == 0 {
			return nil, false
		}
	}
	return m, true
}

// chainCandidates lists the domain of one chain position, mirroring the
// exhaustive mapper's per-position rules.
func (pl *Planner) chainCandidates(chain Chain, pos int, req Request) []Placement {
	elem := chain[pos]
	if elem.isAnchor() {
		p := *elem.anchor
		p.Reused = true
		return []Placement{p}
	}
	comp := elem.comp
	if pl.isStatefulPrimary(comp) && pl.hasAnyInstance(comp.Name) {
		var out []Placement
		for _, e := range pl.Existing {
			if e.Component != comp.Name {
				continue
			}
			p := e
			p.Reused = true
			out = append(out, p)
		}
		return out
	}
	var out []Placement
	for _, node := range pl.Net.Nodes() {
		p, ok := pl.placementForCached(comp, node.ID, req, pos)
		if !ok {
			pl.stats.RejectedConditions++
			continue
		}
		if anchor, found := pl.anchorFor(p); found {
			p = anchor
		}
		out = append(out, p)
	}
	return out
}

// treeModel is the solver model of one linkage tree (components with
// multiple required interfaces, which chains cannot express).
type treeModel struct {
	pl   *Planner
	flat []treeNode
	req  Request
	// cands, caching as in chainModel, indexed by pre-order position.
	cands   [][]Placement
	caching []bool
	// ifaces[v] is the interface linking v to its parent ("" for the
	// root, which serves the requested interface directly).
	ifaces []string
}

func (m *treeModel) Vars() int            { return len(m.flat) }
func (m *treeModel) Parent(v int) int     { return m.flat[v].parent }
func (m *treeModel) DomainSize(v int) int { return len(m.cands[v]) }
func (m *treeModel) Bounded() bool        { return m.req.Objective != MaxCapacity }

func (m *treeModel) Compatible(v, pv, cv int) bool {
	a, b := m.cands[m.flat[v].parent][pv], m.cands[v][cv]
	path, ok := m.pl.routes.Path(a.Node, b.Node)
	if !ok {
		return false
	}
	// Tree flow weights are exact, so an edge whose demand alone exceeds
	// the path bottleneck fails the tree validator's per-link bandwidth
	// aggregation in every completion — prune it during propagation (a
	// non-positive bottleneck marks an unconstrained link; skip as the
	// validator does).
	if m.req.RateRPS > 0 && path.BottleneckMbps > 0 && !path.IsLoopback() {
		bh := m.flat[v].tree.comp.Behaviors
		bits := m.req.RateRPS * m.flat[v].weight * float64(bh.RequestBytes+bh.ResponseBytes) * 8
		if bits > path.BottleneckMbps*1e6 {
			return false
		}
	}
	if a.Key() == b.Key() {
		return false
	}
	if m.caching[v] && a.Component == b.Component && a.configFP() == b.configFP() {
		return false
	}
	return true
}

// EdgeBound: tree flow weights are exact (no first-occurrence
// adjustment applies across branches), so the latency bound is the true
// per-edge contribution and the search rarely backtracks.
func (m *treeModel) EdgeBound(v, pv, cv int) float64 {
	p := m.cands[v][cv]
	switch m.req.Objective {
	case MinCost:
		if p.Reused {
			return 0
		}
		return 1
	case MaxCapacity:
		return 0
	}
	var pen float64
	if !p.Reused {
		pen = m.pl.DeployPenaltyMS
	}
	if v == 0 {
		return m.flat[0].tree.comp.Behaviors.CPUMSPerRequest + pen
	}
	path, ok := m.pl.routes.Path(m.cands[m.flat[v].parent][pv].Node, p.Node)
	if !ok {
		return math.Inf(1)
	}
	b := m.flat[v].tree.comp.Behaviors
	hop := 2*path.LatencyMS + b.CPUMSPerRequest
	if !path.IsLoopback() && path.BottleneckMbps > 0 && !math.IsInf(path.BottleneckMbps, 1) {
		bits := float64(b.RequestBytes+b.ResponseBytes) * 8
		hop += bits / (path.BottleneckMbps * 1e6) * 1e3
	}
	if m.flat[v].tree.anchor != nil {
		hop += m.flat[v].tree.anchor.UpstreamMS
	}
	return pen + m.flat[v].weight*hop
}

func (m *treeModel) Evaluate(assign []int) (any, float64, bool) {
	places := make([]Placement, len(assign))
	for v, cv := range assign {
		places[v] = m.cands[v][cv]
	}
	// Duplicate rules along each ancestor path (per branch, as in the
	// backtracking tree mapper).
	for v := 1; v < len(places); v++ {
		id := places[v].Component + "{" + places[v].configFP() + "}"
		for a := m.flat[v].parent; a >= 0; a = m.flat[a].parent {
			if places[v].Key() == places[a].Key() {
				return nil, 0, false
			}
			if m.caching[v] && id == places[a].Component+"{"+places[a].configFP()+"}" {
				return nil, 0, false
			}
		}
	}
	m.pl.stats.MappingsTried++
	td := m.pl.validateTree(m.flat, places, m.req)
	if td == nil {
		return nil, 0, false
	}
	dep := m.toDeployment(td)
	return dep, m.pl.primaryOf(m.req.Objective, dep), true
}

func (m *treeModel) Better(a, b any) bool {
	return m.pl.better(m.req.Objective, a.(*Deployment), b.(*Deployment))
}

// toDeployment flattens a validated tree deployment into the common
// Deployment shape: placements in pre-order, one edge per parent link
// carrying its linking interface so the engine can wire multi-upstream
// components. CapacityRPS is +Inf by convention — the tree validator
// enforces load at the requested rate itself, and tree headroom beyond
// that is not modeled.
func (m *treeModel) toDeployment(td *TreeDeployment) *Deployment {
	dep := &Deployment{
		ExpectedLatencyMS: td.ExpectedLatencyMS,
		NewComponents:     td.NewComponents,
		CapacityRPS:       math.Inf(1),
	}
	for _, tp := range td.Placements {
		dep.Placements = append(dep.Placements, tp.Placement)
	}
	for i := 1; i < len(td.Placements); i++ {
		dep.Edges = append(dep.Edges, Edge{
			From:  td.Placements[i].Parent,
			To:    i,
			Path:  td.Placements[i].Path,
			Iface: m.ifaces[i],
		})
	}
	return dep
}

// newTreeModel builds the solver model of a linkage tree.
func (pl *Planner) newTreeModel(tree *Tree, req Request) (*treeModel, bool) {
	flat := flatten(tree)
	head, ok := pl.placementForCached(flat[0].tree.comp, req.ClientNode, req, 0)
	if !ok {
		pl.stats.RejectedConditions++
		return nil, false
	}
	if anchor, found := pl.anchorFor(head); found {
		head = anchor
	}
	m := &treeModel{pl: pl, flat: flat, req: req}
	m.cands = make([][]Placement, len(flat))
	m.cands[0] = []Placement{head}
	m.caching = make([]bool, len(flat))
	m.ifaces = make([]string, len(flat))
	childOrd := make([]int, len(flat))
	for v, tn := range flat {
		m.caching[v] = tn.tree.comp.Behaviors.EffectiveRRF() < 1
		if v == 0 {
			continue
		}
		p := tn.parent
		m.ifaces[v] = flat[p].tree.comp.Requires[childOrd[p]].Name
		childOrd[p]++
		m.cands[v] = pl.treeCandidates(tn, req, v)
		if len(m.cands[v]) == 0 {
			return nil, false
		}
	}
	return m, true
}

// treeCandidates lists the domain of one tree position.
func (pl *Planner) treeCandidates(tn treeNode, req Request, pos int) []Placement {
	if tn.tree.anchor != nil {
		p := *tn.tree.anchor
		p.Reused = true
		return []Placement{p}
	}
	comp := tn.tree.comp
	if pl.isStatefulPrimary(comp) && pl.hasAnyInstance(comp.Name) {
		var out []Placement
		for _, e := range pl.Existing {
			if e.Component != comp.Name {
				continue
			}
			p := e
			p.Reused = true
			out = append(out, p)
		}
		return out
	}
	var out []Placement
	for _, node := range pl.Net.Nodes() {
		p, ok := pl.placementForCached(comp, node.ID, req, pos)
		if !ok {
			pl.stats.RejectedConditions++
			continue
		}
		if anchor, found := pl.anchorFor(p); found {
			p = anchor
		}
		out = append(out, p)
	}
	return out
}

// PlanSolver satisfies a request through the constraint-solver backend:
// every valid linkage graph (chains and trees alike) becomes a
// constraint model, AC-3 propagation prunes candidate placements over
// the epoch-versioned route cache, and branch-and-bound finds the best
// deployment under the request's objective. Chain-shaped graphs use the
// exact chain validator, so solver results on them are interchangeable
// with Plan's; trees extend coverage beyond what Plan and PlanDP can
// express.
func (pl *Planner) PlanSolver(req Request) (*Deployment, error) {
	pl.beginPlan()
	defer pl.endPlan()
	if _, ok := pl.Net.Node(req.ClientNode); !ok {
		return nil, fmt.Errorf("planner: client node %q not in network", req.ClientNode)
	}
	if _, ok := pl.Service.Interface(req.Interface); !ok {
		return nil, fmt.Errorf("planner: interface %q not in service %q", req.Interface, pl.Service.Name)
	}
	trees := pl.EnumerateTrees(req.Interface)
	pl.stats.ChainsEnumerated = len(trees)
	if len(trees) == 0 {
		return nil, fmt.Errorf("planner: no component graph implements %q", req.Interface)
	}
	// Solve small linkage graphs first and thread the best primary cost
	// seen so far into every later search as a seeded upper bound: cheap
	// direct chains establish an incumbent that prunes the much larger
	// searches of long (and often infeasible) graphs. better is a strict
	// total order, so neither the ordering nor the seeding changes which
	// deployment wins — only how much of the space is searched.
	order := make([]int, len(trees))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return trees[order[a]].size() < trees[order[b]].size() })
	ub := math.Inf(1)
	var best *Deployment
	for _, ti := range order {
		dep := pl.solveOne(trees[ti], req, &ub)
		if dep == nil {
			continue
		}
		if p := pl.primaryOf(req.Objective, dep); p < ub {
			ub = p
		}
		if best == nil || pl.better(req.Objective, dep, best) {
			best = dep
		}
	}
	if best == nil {
		return nil, fmt.Errorf(
			"planner: no valid solver mapping for %q from %s (graphs %d, mappings %d; rejected: conditions %d, properties %d, load %d, no-path %d)",
			req.Interface, req.ClientNode, pl.stats.ChainsEnumerated, pl.stats.MappingsTried,
			pl.stats.RejectedConditions, pl.stats.RejectedProps, pl.stats.RejectedLoad, pl.stats.RejectedNoPath)
	}
	return best, nil
}

// solveOne maps one linkage graph through the constraint engine. ub,
// when non-nil, seeds the search with the best primary cost of the
// sibling graphs solved so far.
func (pl *Planner) solveOne(tree *Tree, req Request, ub *float64) *Deployment {
	if tree.anchor != nil {
		return nil // a bare anchor is not a deployable head
	}
	if chain, ok := treeAsChain(tree); ok {
		return pl.solveChain(chain, req, ub)
	}
	m, ok := pl.newTreeModel(tree, req)
	if !ok {
		return nil
	}
	s := solver.Solver{Stats: pl.SolverStats, UpperBound: ub}
	sol, _, solved := s.Solve(m)
	if !solved {
		return nil
	}
	return sol.Result.(*Deployment)
}

func (pl *Planner) solveChain(chain Chain, req Request, ub *float64) *Deployment {
	m, ok := pl.newChainModel(chain, req)
	if !ok {
		return nil
	}
	s := solver.Solver{Stats: pl.SolverStats, UpperBound: ub}
	sol, _, solved := s.Solve(m)
	if !solved {
		return nil
	}
	return sol.Result.(*Deployment)
}

// treeAsChain converts a single-requirement tree to a chain, reporting
// false when the tree genuinely branches.
func treeAsChain(t *Tree) (Chain, bool) {
	var chain Chain
	for cur := t; ; {
		chain = append(chain, chainElem{comp: cur.comp, anchor: cur.anchor})
		switch len(cur.children) {
		case 0:
			return chain, true
		case 1:
			cur = cur.children[0]
		default:
			return nil, false
		}
	}
}
