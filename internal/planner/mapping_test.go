package planner

import (
	"reflect"
	"strings"
	"testing"

	"partsvc/internal/netmodel"
	"partsvc/internal/property"
	"partsvc/internal/spec"
	"partsvc/internal/topology"
)

// caseStudyPlanner returns a planner primed like the paper's case study:
// the primary MailServer is already deployed in New York.
func caseStudyPlanner(t *testing.T) *Planner {
	t.Helper()
	pl := mailPlanner(t)
	ms, err := pl.PrimaryPlacement(spec.CompMailServer, topology.NYServer)
	if err != nil {
		t.Fatal(err)
	}
	pl.AddExisting(ms)
	return pl
}

func planOrFail(t *testing.T, pl *Planner, req Request) *Deployment {
	t.Helper()
	dep, err := pl.Plan(req)
	if err != nil {
		t.Fatalf("Plan(%+v): %v\nstats: %+v", req, err, pl.Stats())
	}
	return dep
}

// TestFig6NewYorkDeployment: client requests in New York deploy a
// MailClient connecting directly to the MailServer.
func TestFig6NewYorkDeployment(t *testing.T) {
	pl := caseStudyPlanner(t)
	dep := planOrFail(t, pl, Request{
		Interface: spec.IfaceClient, ClientNode: topology.NYClient,
		User: "Alice", RateRPS: 50,
	})
	want := []string{spec.CompMailClient, spec.CompMailServer}
	if !reflect.DeepEqual(dep.Chain(), want) {
		t.Fatalf("NY chain = %v, want %v\ndeployment: %s", dep.Chain(), want, dep)
	}
	if dep.Placements[0].Node != topology.NYClient {
		t.Errorf("MailClient must be at the client node, got %s", dep.Placements[0].Node)
	}
	if dep.Placements[1].Node != topology.NYServer || !dep.Placements[1].Reused {
		t.Errorf("MailServer must be the reused NY primary: %s", dep.Placements[1])
	}
	if dep.NewComponents != 1 {
		t.Errorf("NY deployment installs only the MailClient, got %d new", dep.NewComponents)
	}
}

// TestFig6SanDiegoDeployment: client requests in San Diego deploy a
// MailClient, a ViewMailServer and an Encryptor locally, plus a
// Decryptor in New York, chained to the MailServer.
func TestFig6SanDiegoDeployment(t *testing.T) {
	pl := caseStudyPlanner(t)
	dep := planOrFail(t, pl, Request{
		Interface: spec.IfaceClient, ClientNode: topology.SDClient,
		User: "Alice", RateRPS: 50,
	})
	want := []string{spec.CompMailClient, spec.CompViewMailServer, spec.CompEncryptor, spec.CompDecryptor, spec.CompMailServer}
	if !reflect.DeepEqual(dep.Chain(), want) {
		t.Fatalf("SD chain = %v, want %v\ndeployment: %s", dep.Chain(), want, dep)
	}
	sites := map[string]string{}
	for _, p := range dep.Placements {
		node, _ := pl.Net.Node(p.Node)
		sites[p.Component] = node.Site
	}
	if sites[spec.CompMailClient] != topology.SiteSanDiego ||
		sites[spec.CompViewMailServer] != topology.SiteSanDiego ||
		sites[spec.CompEncryptor] != topology.SiteSanDiego {
		t.Errorf("MailClient/ViewMailServer/Encryptor must be in San Diego: %v", sites)
	}
	if sites[spec.CompDecryptor] != topology.SiteNewYork {
		t.Errorf("Decryptor must be in New York: %v", sites)
	}
	// The San Diego view is factored at the site's trust level.
	vms := dep.Placements[1]
	if !vms.Config["TrustLevel"].Equal(property.Int(4)) {
		t.Errorf("ViewMailServer config = %v, want TrustLevel=4", vms.Config)
	}
	// Its effective offer retains confidentiality thanks to the E-D pair.
	if !vms.Offers["Confidentiality"].Equal(property.Bool(true)) {
		t.Errorf("ViewMailServer offers = %v, want Confidentiality=T", vms.Offers)
	}
}

// TestFig6SeattleDeployment: partner-site requests deploy a
// ViewMailClient and a lower-trust ViewMailServer in Seattle, linked
// through an Encryptor-Decryptor pair to the existing San Diego
// ViewMailServer (not to distant New York).
func TestFig6SeattleDeployment(t *testing.T) {
	pl := caseStudyPlanner(t)
	sd := planOrFail(t, pl, Request{
		Interface: spec.IfaceClient, ClientNode: topology.SDClient,
		User: "Alice", RateRPS: 50,
	})
	pl.AddExisting(sd.Placements...)

	dep := planOrFail(t, pl, Request{
		Interface: spec.IfaceClient, ClientNode: topology.SeaClient,
		User: "Carol", RateRPS: 50,
	})
	want := []string{spec.CompViewMailClient, spec.CompViewMailServer, spec.CompEncryptor, spec.CompDecryptor, spec.CompViewMailServer}
	if !reflect.DeepEqual(dep.Chain(), want) {
		t.Fatalf("Seattle chain = %v, want %v\ndeployment: %s", dep.Chain(), want, dep)
	}
	nodeSite := func(i int) string {
		n, _ := pl.Net.Node(dep.Placements[i].Node)
		return n.Site
	}
	if nodeSite(0) != topology.SiteSeattle || nodeSite(1) != topology.SiteSeattle || nodeSite(2) != topology.SiteSeattle {
		t.Errorf("ViewMailClient/ViewMailServer/Encryptor must be in Seattle: %s", dep)
	}
	if nodeSite(3) != topology.SiteSanDiego {
		t.Errorf("Decryptor must be in San Diego: %s", dep)
	}
	tail := dep.Placements[4]
	if !tail.Reused || tail.Node != topology.SDClient {
		t.Errorf("chain must terminate at the existing San Diego ViewMailServer: %s", tail)
	}
	// The Seattle view is factored at the partner trust level.
	if !dep.Placements[1].Config["TrustLevel"].Equal(property.Int(2)) {
		t.Errorf("Seattle ViewMailServer config = %v, want TrustLevel=2", dep.Placements[1].Config)
	}
	if dep.NewComponents != 4 {
		t.Errorf("Seattle deployment installs 4 components, got %d", dep.NewComponents)
	}
}

// TestDirectInsecureConnectionRejected: without the Encryptor-Decryptor
// pair the planner never links a confidentiality-requiring client across
// an insecure inter-site link (the Figure 4 rule in action).
func TestDirectInsecureConnectionRejected(t *testing.T) {
	pl := caseStudyPlanner(t)
	dep := planOrFail(t, pl, Request{
		Interface: spec.IfaceClient, ClientNode: topology.SDClient,
		User: "Alice", RateRPS: 50,
	})
	chain := dep.Chain()
	// Every edge that crosses an insecure link must have an Encryptor on
	// its client side (ciphertext is the only traffic allowed there).
	for _, e := range dep.Edges {
		env := e.Path.Env(pl.Net, pl.LoopbackEnv)
		if conf, ok := env["Confidentiality"].AsBool(); ok && !conf {
			if chain[e.From] != spec.CompEncryptor {
				t.Errorf("insecure edge %v not fronted by an Encryptor (from %s)", e.Path.Nodes, chain[e.From])
			}
		}
	}
	if pl.Stats().RejectedProps == 0 {
		t.Error("planner should have rejected at least one insecure direct mapping")
	}
}

// TestAccessControlCondition: Carol cannot obtain a full MailClient
// anywhere (the User=Alice condition), while Alice can.
func TestAccessControlCondition(t *testing.T) {
	pl := caseStudyPlanner(t)
	dep := planOrFail(t, pl, Request{
		Interface: spec.IfaceClient, ClientNode: topology.NYClient,
		User: "Carol", RateRPS: 10,
	})
	if dep.Chain()[0] != spec.CompViewMailClient {
		t.Errorf("Carol must get the restricted ViewMailClient, got %v", dep.Chain())
	}
}

// TestTrustConditionBlocksViewOnUntrustedNode: lowering a node's trust
// below the ViewMailServer's condition removes it as a candidate.
func TestTrustConditionBlocksViewOnUntrustedNode(t *testing.T) {
	pl := caseStudyPlanner(t)
	// Drop Seattle below the view's trust threshold.
	for _, id := range []netmodel.NodeID{topology.SeaGW, topology.SeaClient} {
		n, _ := pl.Net.Node(id)
		n.Props["TrustLevel"] = property.Int(1)
	}
	dep := planOrFail(t, pl, Request{
		Interface: spec.IfaceClient, ClientNode: topology.SeaClient,
		User: "Carol", RateRPS: 10,
	})
	for _, p := range dep.Placements {
		if p.Component == spec.CompViewMailServer {
			n, _ := pl.Net.Node(p.Node)
			if n.Site == topology.SiteSeattle {
				t.Errorf("ViewMailServer deployed on untrusted Seattle node: %s", dep)
			}
		}
	}
}

// TestLoadConditionForcesCache: at request rates that saturate the slow
// link, chains without a traffic-reducing view are infeasible, so the
// planner deploys the cache even under the min-cost objective
// (the paper: "the planner finds its RRF necessary to traverse the low
// bandwidth connection").
func TestLoadConditionForcesCache(t *testing.T) {
	pl := caseStudyPlanner(t)
	// NY-SD is 20 Mb/s; a direct chain moves ~20 KB per request, so
	// 200 req/s needs ~33 Mb/s: infeasible without the view's RRF.
	dep := planOrFail(t, pl, Request{
		Interface: spec.IfaceClient, ClientNode: topology.SDClient,
		User: "Alice", RateRPS: 200, Objective: MinCost,
	})
	found := false
	for _, name := range dep.Chain() {
		if name == spec.CompViewMailServer {
			found = true
		}
	}
	if !found {
		t.Errorf("min-cost plan at 200 rps must include ViewMailServer: %v", dep.Chain())
	}
	if pl.Stats().RejectedLoad == 0 {
		t.Error("expected load rejections at 200 rps")
	}
}

// TestInfeasibleRateFails: beyond every chain's capacity, planning fails
// with informative statistics.
func TestInfeasibleRateFails(t *testing.T) {
	pl := caseStudyPlanner(t)
	_, err := pl.Plan(Request{
		Interface: spec.IfaceClient, ClientNode: topology.SDClient,
		User: "Alice", RateRPS: 1e9,
	})
	if err == nil {
		t.Fatal("expected failure at absurd request rate")
	}
	if !strings.Contains(err.Error(), "load") {
		t.Errorf("error should carry statistics: %v", err)
	}
}

// TestObjectiveMaxCapacity prefers higher-headroom deployments.
func TestObjectiveMaxCapacity(t *testing.T) {
	pl := caseStudyPlanner(t)
	dep := planOrFail(t, pl, Request{
		Interface: spec.IfaceClient, ClientNode: topology.SDClient,
		User: "Alice", RateRPS: 50, Objective: MaxCapacity,
	})
	// The max-capacity plan must include the view (RRF multiplies
	// effective capacity across the slow link five-fold).
	hasView := false
	for _, n := range dep.Chain() {
		if n == spec.CompViewMailServer {
			hasView = true
		}
	}
	if !hasView {
		t.Errorf("max-capacity plan should cache: %v", dep.Chain())
	}
	lat := planOrFail(t, pl, Request{
		Interface: spec.IfaceClient, ClientNode: topology.SDClient,
		User: "Alice", RateRPS: 50, Objective: MinLatency,
	})
	if dep.CapacityRPS < lat.CapacityRPS {
		t.Errorf("max-capacity plan (%v rps) must not be worse than min-latency plan (%v rps)",
			dep.CapacityRPS, lat.CapacityRPS)
	}
}

// TestPlanErrors: malformed requests fail fast.
func TestPlanErrors(t *testing.T) {
	pl := caseStudyPlanner(t)
	if _, err := pl.Plan(Request{Interface: spec.IfaceClient, ClientNode: "ghost"}); err == nil {
		t.Error("unknown client node must fail")
	}
	if _, err := pl.Plan(Request{Interface: "Ghost", ClientNode: topology.NYClient}); err == nil {
		t.Error("unknown interface must fail")
	}
}

// TestRequireProps: explicit client expectations on the requested
// interface are honored.
func TestRequireProps(t *testing.T) {
	pl := caseStudyPlanner(t)
	// Demand a trust level only the full MailClient provides: Carol has
	// no access to it, so planning for Carol must fail.
	_, err := pl.Plan(Request{
		Interface: spec.IfaceClient, ClientNode: topology.SeaClient, User: "Carol",
		RequireProps: property.Set{"TrustLevel": property.Int(4)}, RateRPS: 10,
	})
	if err == nil {
		t.Fatal("Carol cannot satisfy TrustLevel=4 on the client interface")
	}
	// Alice in NY can.
	dep := planOrFail(t, pl, Request{
		Interface: spec.IfaceClient, ClientNode: topology.NYClient, User: "Alice",
		RequireProps: property.Set{"TrustLevel": property.Int(4)}, RateRPS: 10,
	})
	if dep.Chain()[0] != spec.CompMailClient {
		t.Errorf("Alice's plan = %v", dep.Chain())
	}
}

// TestSecondRequestReusesDeployment: planning the same request twice
// reuses every component the first plan installed.
func TestSecondRequestReusesDeployment(t *testing.T) {
	pl := caseStudyPlanner(t)
	req := Request{
		Interface: spec.IfaceClient, ClientNode: topology.SDClient,
		User: "Alice", RateRPS: 50,
	}
	first := planOrFail(t, pl, req)
	pl.AddExisting(first.Placements...)
	second := planOrFail(t, pl, req)
	if second.NewComponents != 0 {
		t.Errorf("second identical request must install nothing new, got %d (%s)", second.NewComponents, second)
	}
}

// TestStatsPopulated: the planner reports its search effort.
func TestStatsPopulated(t *testing.T) {
	pl := caseStudyPlanner(t)
	planOrFail(t, pl, Request{
		Interface: spec.IfaceClient, ClientNode: topology.SDClient,
		User: "Alice", RateRPS: 50,
	})
	st := pl.Stats()
	if st.ChainsEnumerated == 0 || st.MappingsTried == 0 {
		t.Errorf("stats not populated: %+v", st)
	}
	if st.RejectedProps == 0 {
		t.Errorf("case study must reject some property-invalid mappings: %+v", st)
	}
}

// TestExpectedLatencyOrdering: the three Figure 6 deployments order as
// the topology dictates: NY (LAN) < Seattle (via SD cache) < SD's
// first-plan latency is dominated by the slow NY link share.
func TestExpectedLatencyOrdering(t *testing.T) {
	pl := caseStudyPlanner(t)
	ny := planOrFail(t, pl, Request{Interface: spec.IfaceClient, ClientNode: topology.NYClient, User: "Alice", RateRPS: 50})
	sd := planOrFail(t, pl, Request{Interface: spec.IfaceClient, ClientNode: topology.SDClient, User: "Alice", RateRPS: 50})
	pl.AddExisting(sd.Placements...)
	sea := planOrFail(t, pl, Request{Interface: spec.IfaceClient, ClientNode: topology.SeaClient, User: "Carol", RateRPS: 50})
	if !(ny.ExpectedLatencyMS < sea.ExpectedLatencyMS) {
		t.Errorf("NY (%v ms) must beat Seattle (%v ms)", ny.ExpectedLatencyMS, sea.ExpectedLatencyMS)
	}
	if !(sea.ExpectedLatencyMS < sd.ExpectedLatencyMS) {
		t.Errorf("Seattle via SD cache (%v ms) must beat SD's 0.2 share of the 200 ms link (%v ms)",
			sea.ExpectedLatencyMS, sd.ExpectedLatencyMS)
	}
}

// TestDeployPenaltySuppressesLANCache: with the default penalty the NY
// plan is direct; with no penalty the planner happily adds a local cache
// (saving the LAN transfer for 80% of requests).
func TestDeployPenaltySuppressesLANCache(t *testing.T) {
	pl := caseStudyPlanner(t)
	req := Request{Interface: spec.IfaceClient, ClientNode: topology.NYClient, User: "Alice", RateRPS: 50}
	direct := planOrFail(t, pl, req)
	if len(direct.Chain()) != 2 {
		t.Fatalf("default penalty must give the direct NY chain: %v", direct.Chain())
	}
	pl.DeployPenaltyMS = 0
	free := planOrFail(t, pl, req)
	if len(free.Chain()) <= 2 {
		t.Errorf("zero penalty should add the LAN cache: %v", free.Chain())
	}
	if free.ExpectedLatencyMS >= direct.ExpectedLatencyMS {
		t.Errorf("the cached plan must have lower raw latency: %v vs %v",
			free.ExpectedLatencyMS, direct.ExpectedLatencyMS)
	}
}

// TestPlacementKeyAndString cover identity formatting.
func TestPlacementKeyAndString(t *testing.T) {
	p := Placement{Component: "X", Node: "n1", Config: property.Set{"TL": property.Int(2)}}
	if p.Key() != "X@n1{TL=2}" {
		t.Errorf("Key = %q", p.Key())
	}
	p.Reused = true
	if got := p.String(); !strings.HasSuffix(got, "*") || !strings.Contains(got, "X@n1") {
		t.Errorf("String = %q", got)
	}
}

func TestObjectiveString(t *testing.T) {
	for o, want := range map[Objective]string{
		MinLatency: "min-latency", MinCost: "min-cost", MaxCapacity: "max-capacity", Objective(99): "unknown",
	} {
		if got := o.String(); got != want {
			t.Errorf("Objective(%d) = %q, want %q", o, got, want)
		}
	}
}
