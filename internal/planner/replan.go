package planner

import (
	"fmt"
	"partsvc/internal/netmodel"

	"partsvc/internal/property"
)

// This file implements the paper's first future-work item (Section 6):
// relaxing the static-network assumption. When node or link properties
// change — reported by a monitoring substrate or by credential
// revocation in the trust layer — existing placements are revalidated,
// invalid ones are evicted, and a fresh plan is computed; the
// difference between old and new deployments tells the runtime what to
// install and what to tear down ("whether a new deployment (either
// incremental or complete) is called for").

// Diff describes how to adapt from an old deployment to a new one.
type Diff struct {
	// New is the freshly planned deployment.
	New *Deployment
	// Install lists placements present in New but not in the old
	// deployment (components the engine must install).
	Install []Placement
	// Remove lists old placements no longer referenced by New
	// (candidates for teardown once their state is drained — data views
	// have already pushed their writes through the coherence layer).
	Remove []Placement
	// Evicted lists previously registered instances that failed
	// revalidation against the current network and were dropped from
	// the planner's reuse set.
	Evicted []Placement
}

// Unchanged reports whether the new deployment reuses the old one
// entirely and installs nothing.
func (d *Diff) Unchanged() bool { return len(d.Install) == 0 && len(d.Remove) == 0 }

// RevalidateExisting re-checks every registered instance against the
// current network: its node must still exist, its deployment conditions
// must still hold there, and its factored configuration must still
// evaluate to the same values (a view factored at TrustLevel=4 on a
// node now trusted at 1 is invalid — the node can no longer be
// entrusted with its keys). Invalid instances are removed from the
// reuse set and returned.
func (pl *Planner) RevalidateExisting() []Placement {
	var evicted []Placement
	kept := pl.Existing[:0]
	for _, p := range pl.Existing {
		if pl.stillValid(p) {
			kept = append(kept, p)
		} else {
			evicted = append(evicted, p)
		}
	}
	pl.Existing = kept
	return evicted
}

// stillValid re-derives placement validity under current node
// properties.
func (pl *Planner) stillValid(p Placement) bool {
	comp, ok := pl.Service.Component(p.Component)
	if !ok {
		return false
	}
	n, ok := pl.Net.Node(p.Node)
	if !ok || n.Down {
		return false
	}
	sc := property.Scope{Node: n.Props}
	for _, cond := range comp.Conditions {
		// Request-scoped conditions (e.g. User ACLs) cannot be
		// re-evaluated without the original request; only
		// environment-scoped conditions participate in revalidation.
		if _, bound := sc.Lookup(cond.Subject); !bound {
			continue
		}
		if !cond.Holds(sc) {
			return false
		}
	}
	for name, expr := range comp.Factors {
		v, err := expr.Eval(sc)
		if err != nil || !v.Equal(p.Config[name]) {
			return false
		}
	}
	return true
}

// Replan revalidates the reuse set against the current network and
// plans the request afresh, returning the adaptation diff relative to
// old (which may be nil for a first deployment). The old deployment's
// placements are assumed to be registered via AddExisting.
func (pl *Planner) Replan(old *Deployment, req Request) (*Diff, error) {
	evicted := pl.RevalidateExisting()
	plan := pl.Plan
	switch {
	case pl.PreferSolver:
		plan = pl.PlanSolver
	case pl.PreferDP:
		plan = pl.PlanDP
	}
	dep, err := plan(req)
	if err != nil {
		return nil, fmt.Errorf("planner: replan: %w", err)
	}
	diff := buildDiff(old, dep)
	diff.Evicted = evicted
	return diff, nil
}

// buildDiff computes the install/remove bookkeeping between an old
// deployment and a freshly planned one (shared by Replan and
// RepairReplan).
func buildDiff(old, dep *Deployment) *Diff {
	diff := &Diff{New: dep}
	keep := map[string]bool{}
	for _, p := range dep.Placements {
		keep[p.Key()] = true
		if !p.Reused {
			diff.Install = append(diff.Install, p)
		}
	}
	if old != nil {
		// A new plan may terminate at a reused instance (anchor cut);
		// the old placements upstream of that instance remain part of
		// the running service graph and must not be torn down.
		tail := dep.Placements[len(dep.Placements)-1]
		if tail.Reused {
			for i, p := range old.Placements {
				if p.Key() == tail.Key() {
					for _, up := range old.Placements[i+1:] {
						keep[up.Key()] = true
					}
					break
				}
			}
		}
		for _, p := range old.Placements {
			if !keep[p.Key()] {
				diff.Remove = append(diff.Remove, p)
			}
		}
	}
	return diff
}

// ReplanRewire runs Replan and, when the result is a no-op, checks
// whether the network change moved the latency optimum away from
// wiring that reuse keeps frozen. Revalidation is validity-scoped
// (node death, condition violations); a link that merely degraded
// evicts nothing, and the anchor cut then reuses the old chain
// wholesale — a no-op diff even though a better wiring now exists.
// The rewire check re-plans with the old deployment's own wiring
// (everything before its tail — the tail may be shared standing
// infrastructure such as the primary or another session's view)
// removed from the reuse set, so the planner costs every chain shape
// afresh under current routes. The result is adopted only when it
// places differently; otherwise the reuse set is restored and the
// no-op diff returned. Same-key placements in an adopted rewire land
// in Install (the engine reinstalls them in place, carrying state),
// and Remove is restricted to the dropped wiring so shared tails keep
// running.
func (pl *Planner) ReplanRewire(old *Deployment, req Request) (*Diff, error) {
	diff, err := pl.Replan(old, req)
	if err != nil {
		return nil, err
	}
	if old == nil || len(old.Placements) < 2 || !diff.Unchanged() || len(diff.Evicted) > 0 {
		return diff, nil
	}
	own := old.Placements[:len(old.Placements)-1]
	dropped := map[string]bool{}
	keys := make([]string, 0, len(own))
	for _, p := range own {
		dropped[p.Key()] = true
		keys = append(keys, p.Key())
	}
	pl.DropExistingByKey(keys...)
	fresh, err := pl.Replan(old, req)
	if err != nil || sameDeploymentKeys(fresh.New, old) {
		pl.AddExisting(own...)
		return diff, nil
	}
	kept := fresh.Remove[:0]
	for _, p := range fresh.Remove {
		if dropped[p.Key()] {
			kept = append(kept, p)
		}
	}
	fresh.Remove = kept
	return fresh, nil
}

// sameDeploymentKeys reports whether two deployments place the same
// instances (same placement-key sets).
func sameDeploymentKeys(a, b *Deployment) bool {
	if a == nil || b == nil || len(a.Placements) != len(b.Placements) {
		return false
	}
	keys := map[string]bool{}
	for _, p := range a.Placements {
		keys[p.Key()] = true
	}
	for _, p := range b.Placements {
		if !keys[p.Key()] {
			return false
		}
	}
	return true
}

// Verify independently validates a deployment against a request under
// the *current* network state: every placement's conditions hold, every
// linkage's effective properties satisfy the requirer, and the request
// rate fits the deployment's capacity. It reconstructs the linkage
// chain from the deployment (a reused tail whose component still
// requires an interface is treated as an anchor terminal, exactly as in
// incremental planning). A nil error means the deployment is valid now.
func (pl *Planner) Verify(dep *Deployment, req Request) error {
	if dep == nil || len(dep.Placements) == 0 {
		return fmt.Errorf("planner: empty deployment")
	}
	chain := make(Chain, len(dep.Placements))
	for i, p := range dep.Placements {
		comp, ok := pl.Service.Component(p.Component)
		if !ok {
			return fmt.Errorf("planner: unknown component %q", p.Component)
		}
		chain[i] = chainElem{comp: comp}
		isTail := i == len(dep.Placements)-1
		if isTail && p.Reused && len(comp.Requires) > 0 {
			anchor := p
			chain[i] = chainElem{comp: comp, anchor: &anchor}
		}
		if i > 0 {
			prev := chain[i-1].comp
			if len(prev.Requires) == 0 {
				return fmt.Errorf("planner: component %q requires nothing but has a provider", prev.Name)
			}
			if _, ok := comp.ImplementsInterface(prev.Requires[0].Name); !ok {
				return fmt.Errorf("planner: %q does not implement %q required by %q",
					comp.Name, prev.Requires[0].Name, prev.Name)
			}
		}
	}
	// Condition 1 at every placement (head sees the request user).
	for i, p := range dep.Placements {
		if chain[i].isAnchor() {
			continue
		}
		if _, ok := pl.placementFor(chain[i].comp, p.Node, req, i); !ok {
			return fmt.Errorf("planner: conditions for %s no longer hold", p)
		}
	}
	// Verify is a public entry point: refresh the route handle and the
	// evaluation memo so checks run against the current network state.
	pl.routes = pl.Net.Routes()
	pl.memo = newPlanMemo()
	paths, err := pl.routesFor(dep)
	if err != nil {
		return err
	}
	places := append([]Placement(nil), dep.Placements...)
	if _, ok := pl.checkProperties(chain, places, paths, req); !ok {
		return fmt.Errorf("planner: property compatibility violated")
	}
	if req.RateRPS > 0 {
		if capacity := pl.capacityRPS(chain, places, paths); req.RateRPS > capacity {
			return fmt.Errorf("planner: rate %.1f exceeds deployment capacity %.1f", req.RateRPS, capacity)
		}
	}
	return nil
}

// routesFor resolves minimum-latency routes between consecutive
// placements from the epoch-current route cache.
func (pl *Planner) routesFor(dep *Deployment) ([]netmodel.Path, error) {
	routes := pl.Net.Routes()
	paths := make([]netmodel.Path, len(dep.Placements)-1)
	for i := 0; i+1 < len(dep.Placements); i++ {
		p, ok := routes.Path(dep.Placements[i].Node, dep.Placements[i+1].Node)
		if !ok {
			return nil, fmt.Errorf("planner: no route %s -> %s", dep.Placements[i].Node, dep.Placements[i+1].Node)
		}
		paths[i] = p
	}
	return paths, nil
}
