package planner

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"partsvc/internal/netmodel"
	"partsvc/internal/property"
)

// PlanDP satisfies a request with the dynamic-programming chain mapper
// described in the CANS work the paper cites for the all-chains case
// (Section 3.3): instead of enumerating every node assignment, it
// memoizes, per (chain position, node), the Pareto-optimal ways to
// complete the chain — keyed by the effective property set offered
// upstream — and stitches the best completion onto the pinned head.
//
// The DP relaxes one global constraint (node CPU aggregation across
// co-located components is checked only on the final candidate), so
// every DP-selected assignment is re-validated exactly; if validation
// fails, the planner falls back to exhaustive search for that chain.
// Results are therefore always identical in feasibility to Plan, and
// identical in choice under the MinLatency and MinCost objectives
// (MaxCapacity requires whole-deployment headroom and always falls
// back).
func (pl *Planner) PlanDP(req Request) (*Deployment, error) {
	pl.beginPlan()
	defer pl.endPlan()
	if _, ok := pl.Net.Node(req.ClientNode); !ok {
		return nil, fmt.Errorf("planner: client node %q not in network", req.ClientNode)
	}
	if _, ok := pl.Service.Interface(req.Interface); !ok {
		return nil, fmt.Errorf("planner: interface %q not in service %q", req.Interface, pl.Service.Name)
	}
	if req.Objective == MaxCapacity {
		return pl.Plan(req)
	}
	chains := pl.EnumerateChains(req.Interface)
	pl.stats.ChainsEnumerated = len(chains)
	if len(chains) == 0 {
		return nil, fmt.Errorf("planner: no component chain implements %q", req.Interface)
	}
	// Each chain is an independent subproblem; planChains fans them out
	// over the worker pool and reduces in chain order, matching the
	// sequential loop exactly.
	best := pl.planChains(chains, req)
	if best == nil {
		return nil, fmt.Errorf("planner: no valid mapping for %q from %s (DP)", req.Interface, req.ClientNode)
	}
	return best, nil
}

// dpOpt is one Pareto-optimal way to realize chain positions pos..k.
type dpOpt struct {
	// places are the tail placements, places[0] at position pos.
	places []Placement
	// offers is the effective property set offered to position pos-1.
	offers property.Set
	// upLat is the expected latency per request arriving at position
	// pos, contributed by all linkages from pos onward.
	upLat float64
	// newComps counts non-reused placements in the tail.
	newComps int
	// cachingIDs fingerprints the caching (RRF<1) component
	// configurations used by the tail, for the duplicate-replica rule.
	cachingIDs map[string]bool
	// capTail is an optimistic upper bound on the per-client request
	// rate the tail sustains (component capacities and per-edge path
	// bottlenecks under optimistic flow weights, no cross-edge
	// aggregation). Exact capacity never exceeds it, so a request rate
	// above capTail makes the tail load-infeasible in every completion
	// and the DP prunes it instead of discovering the violation at
	// exact re-validation (which would drop the whole chain to the
	// exhaustive mapper).
	capTail float64
}

// dpChain maps one chain with tail-to-head dynamic programming.
func (pl *Planner) dpChain(chain Chain, req Request) *Deployment {
	if chain[0].isAnchor() {
		return nil
	}
	head, ok := pl.placementForCached(chain[0].comp, req.ClientNode, req, 0)
	if !ok {
		pl.stats.RejectedConditions++
		return nil
	}
	if anchor, found := pl.anchorFor(head); found {
		head = anchor
	}
	if len(chain) == 1 {
		places := []Placement{head}
		return pl.validate(chain, places, req)
	}

	k := len(chain) - 1
	memo := make(map[int]map[netmodel.NodeID][]dpOpt)

	// Optimistic flow weights (every caching RRF at full effect): true
	// in/out coefficients are never below these, so capacity bounds
	// derived from them never under-estimate.
	wIn := make([]float64, len(chain))
	wOut := make([]float64, len(chain))
	w := 1.0
	for i := range chain {
		wIn[i] = w
		w *= chain[i].comp.Behaviors.EffectiveRRF()
		wOut[i] = w
	}

	// options returns the Pareto set for placing chain[pos..k] with
	// chain[pos] at the given node.
	var options func(pos int, node netmodel.NodeID) []dpOpt
	options = func(pos int, node netmodel.NodeID) []dpOpt {
		if byNode, ok := memo[pos]; ok {
			if opts, ok := byNode[node]; ok {
				return opts
			}
		} else {
			memo[pos] = map[netmodel.NodeID][]dpOpt{}
		}
		var out []dpOpt
		defer func() { memo[pos][node] = out }()

		place, ok := pl.candidateAt(chain, pos, node, req)
		if !ok {
			return out
		}
		caching := chain[pos].comp.Behaviors.EffectiveRRF() < 1
		selfID := place.Component + "{" + place.configFP() + "}"

		if pos == k {
			opt := dpOpt{places: []Placement{place}, cachingIDs: map[string]bool{}, capTail: compCapUpper(chain, k, wIn)}
			if req.RateRPS > 0 && req.RateRPS > opt.capTail+1e-9 {
				pl.stats.RejectedLoad++
				return out
			}
			if chain[k].isAnchor() {
				opt.offers = chain[k].anchor.Offers.Clone()
				opt.upLat = chain[k].anchor.UpstreamMS
			} else {
				offers, err := pl.evalImplProps(chain[k].comp, chain.linkIface(k-1), place)
				if err != nil {
					return out
				}
				opt.offers = offers
			}
			if !place.Reused {
				opt.newComps = 1
			}
			if caching {
				opt.cachingIDs[selfID] = true
			}
			out = append(out, opt)
			return out
		}

		reqProps, err := pl.evalReqProps(chain[pos].comp, place)
		if err != nil {
			return out
		}
		rrf := chain[pos].comp.Behaviors.EffectiveRRF()

		for _, next := range pl.nextNodes(chain, pos+1) {
			path, env, ok := pl.pathEnv(node, next)
			if !ok {
				pl.stats.RejectedNoPath++
				continue
			}
			for _, tail := range options(pos+1, next) {
				pl.stats.MappingsTried++
				// Duplicate-instance and duplicate-replica rules.
				if conflicts(place, tail, caching, selfID) {
					continue
				}
				received, err := pl.Service.ModRules.ApplySetRO(tail.offers, env)
				if err != nil {
					continue
				}
				if !received.Satisfies(reqProps) {
					pl.stats.RejectedProps++
					continue
				}
				hop := pl.edgeHop(chain, pos, path)
				opt := dpOpt{
					places:     append([]Placement{place}, tail.places...),
					offers:     pl.offerThrough(chain, pos, place, received),
					upLat:      rrf * (hop + tail.upLat),
					newComps:   tail.newComps,
					cachingIDs: tail.cachingIDs,
					capTail:    math.Min(tail.capTail, math.Min(compCapUpper(chain, pos, wIn), linkCapUpper(chain, pos, path, wOut))),
				}
				if req.RateRPS > 0 && req.RateRPS > opt.capTail+1e-9 {
					pl.stats.RejectedLoad++
					continue
				}
				if caching {
					ids := make(map[string]bool, len(tail.cachingIDs)+1)
					for id := range tail.cachingIDs {
						ids[id] = true
					}
					ids[selfID] = true
					opt.cachingIDs = ids
				}
				if !place.Reused {
					opt.newComps++
				}
				out = append(out, opt)
			}
		}
		out = paretoPrune(out, req.RateRPS)
		return out
	}

	var bestOpt *dpOpt
	reqProps, err := pl.evalReqProps(chain[0].comp, head)
	if err != nil {
		return nil
	}
	headCaching := chain[0].comp.Behaviors.EffectiveRRF() < 1
	headID := head.Component + "{" + head.configFP() + "}"
	for _, next := range pl.nextNodes(chain, 1) {
		path, env, ok := pl.pathEnv(head.Node, next)
		if !ok {
			continue
		}
		for _, tail := range options(1, next) {
			if conflicts(head, tail, headCaching, headID) {
				continue
			}
			received, err := pl.Service.ModRules.ApplySetRO(tail.offers, env)
			if err != nil || !received.Satisfies(reqProps) {
				continue
			}
			hop := pl.edgeHop(chain, 0, path)
			opt := tail
			opt.places = append([]Placement{head}, tail.places...)
			opt.upLat = chain[0].comp.Behaviors.EffectiveRRF() * (hop + tail.upLat)
			opt.capTail = math.Min(tail.capTail, math.Min(compCapUpper(chain, 0, wIn), linkCapUpper(chain, 0, path, wOut)))
			if req.RateRPS > 0 && req.RateRPS > opt.capTail+1e-9 {
				pl.stats.RejectedLoad++
				continue
			}
			if !head.Reused {
				opt.newComps++
			}
			if bestOpt == nil || pl.dpBetter(req.Objective, opt, *bestOpt) {
				o := opt
				bestOpt = &o
			}
		}
	}
	if bestOpt == nil {
		return nil
	}
	// Exact re-validation; on failure (e.g. CPU aggregation the DP does
	// not model) fall back to the exhaustive mapper for this chain.
	if dep := pl.validate(chain, bestOpt.places, req); dep != nil {
		return dep
	}
	pl.stats.DPFallbacks++
	return pl.mapChain(chain, req)
}

// compCapUpper is an optimistic per-client-rate capacity bound from the
// component capacity at a chain position: true in-flow is at least the
// optimistic weight, so true capacity is at most this.
func compCapUpper(chain Chain, pos int, wIn []float64) float64 {
	if c := chain[pos].comp.Behaviors.CapacityRPS; c > 0 && wIn[pos] > 0 {
		return c / wIn[pos]
	}
	return math.Inf(1)
}

// linkCapUpper is an optimistic per-client-rate capacity bound from the
// path carrying the linkage leaving pos: the path bottleneck against
// the provider's bytes at optimistic flow, ignoring cross-edge link
// aggregation (which can only reduce capacity further).
func linkCapUpper(chain Chain, pos int, path netmodel.Path, wOut []float64) float64 {
	if path.IsLoopback() || path.BottleneckMbps <= 0 || math.IsInf(path.BottleneckMbps, 1) {
		return math.Inf(1)
	}
	b := chain[pos+1].comp.Behaviors
	bits := float64(b.RequestBytes+b.ResponseBytes) * 8
	if bits <= 0 || wOut[pos] <= 0 {
		return math.Inf(1)
	}
	return path.BottleneckMbps * 1e6 / (wOut[pos] * bits)
}

// candidateAt builds the placement for chain[pos] at a node, honoring
// anchor pinning, the stateful-primary singleton rule, and deployment
// conditions.
func (pl *Planner) candidateAt(chain Chain, pos int, node netmodel.NodeID, req Request) (Placement, bool) {
	elem := chain[pos]
	if elem.isAnchor() {
		if elem.anchor.Node != node {
			return Placement{}, false
		}
		p := *elem.anchor
		p.Reused = true
		return p, true
	}
	if pl.isStatefulPrimary(elem.comp) && pl.hasAnyInstance(elem.comp.Name) {
		for _, e := range pl.Existing {
			if e.Component == elem.comp.Name && e.Node == node {
				p := e
				p.Reused = true
				return p, true
			}
		}
		return Placement{}, false
	}
	p, ok := pl.placementForCached(elem.comp, node, req, pos)
	if !ok {
		pl.stats.RejectedConditions++
		return Placement{}, false
	}
	if anchor, found := pl.anchorFor(p); found {
		p = anchor
	}
	return p, true
}

// nextNodes lists candidate nodes for a chain position: the whole
// network for instantiable components, the pinned node for anchors and
// existing stateful primaries.
func (pl *Planner) nextNodes(chain Chain, pos int) []netmodel.NodeID {
	elem := chain[pos]
	if elem.isAnchor() {
		return []netmodel.NodeID{elem.anchor.Node}
	}
	if pl.isStatefulPrimary(elem.comp) && pl.hasAnyInstance(elem.comp.Name) {
		var out []netmodel.NodeID
		for _, e := range pl.Existing {
			if e.Component == elem.comp.Name {
				out = append(out, e.Node)
			}
		}
		return out
	}
	return pl.routes.NodeIDs()
}

// edgeHop computes the latency cost of the linkage leaving position pos:
// round-trip propagation, serialization, and the provider's service
// time (anchor upstream residuals are carried in dpOpt.upLat instead).
func (pl *Planner) edgeHop(chain Chain, pos int, path netmodel.Path) float64 {
	provider := chain[pos+1].comp.Behaviors
	hop := 2*path.LatencyMS + provider.CPUMSPerRequest
	if !path.IsLoopback() && path.BottleneckMbps > 0 && !math.IsInf(path.BottleneckMbps, 1) {
		bits := float64(provider.RequestBytes+provider.ResponseBytes) * 8
		hop += bits / (path.BottleneckMbps * 1e6) * 1e3
	}
	return hop
}

// offerThrough computes what the component at pos offers to pos-1:
// received properties restricted to the linking interface's declaration,
// overlaid with its own generated properties.
func (pl *Planner) offerThrough(chain Chain, pos int, place Placement, received property.Set) property.Set {
	iface := chain.linkIface(pos - 1)
	decl, _ := pl.Service.Interface(iface)
	gen, err := pl.evalImplProps(chain[pos].comp, iface, place)
	if err != nil {
		gen = nil
	}
	next := make(property.Set, len(received)+len(gen))
	for name, v := range received {
		if decl.HasProperty(name) {
			next[name] = v
		}
	}
	for name, v := range gen {
		next[name] = v
	}
	return next
}

// conflicts applies the duplicate-instance and duplicate-replica rules
// between a candidate placement and a tail option.
func conflicts(p Placement, tail dpOpt, caching bool, selfID string) bool {
	if caching && tail.cachingIDs[selfID] {
		return true
	}
	key := p.Key()
	for _, tp := range tail.places {
		if tp.Key() == key {
			return true
		}
	}
	return false
}

// dpBetter orders head options under the objective.
func (pl *Planner) dpBetter(o Objective, a, b dpOpt) bool {
	var ka, kb [2]float64
	switch o {
	case MinCost:
		ka = [2]float64{float64(a.newComps), a.upLat}
		kb = [2]float64{float64(b.newComps), b.upLat}
	default:
		ka = [2]float64{a.upLat + pl.DeployPenaltyMS*float64(a.newComps), float64(a.newComps)}
		kb = [2]float64{b.upLat + pl.DeployPenaltyMS*float64(b.newComps), float64(b.newComps)}
	}
	const eps = 1e-9
	if math.Abs(ka[0]-kb[0]) > eps {
		return ka[0] < kb[0]
	}
	if math.Abs(ka[1]-kb[1]) > eps {
		return ka[1] < kb[1]
	}
	return placesString(a.places) < placesString(b.places)
}

func placesString(ps []Placement) string {
	var b strings.Builder
	for _, p := range ps {
		b.WriteString(p.String())
		b.WriteByte('>')
	}
	return b.String()
}

// paretoPrune keeps, within each (offers, cachingIDs) group, only the
// options not dominated in (upLat, newComps). Under a positive request
// rate an option additionally survives when it promises more capacity
// headroom than its would-be dominator: the cheaper option might fail
// exact load validation where the roomier one passes.
func paretoPrune(opts []dpOpt, rateRPS float64) []dpOpt {
	groups := map[string][]dpOpt{}
	for _, o := range opts {
		ids := make([]string, 0, len(o.cachingIDs))
		for id := range o.cachingIDs {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		key := o.offers.Fingerprint() + "|" + strings.Join(ids, ",")
		groups[key] = append(groups[key], o)
	}
	var out []dpOpt
	keys := make([]string, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		g := groups[k]
		for i, a := range g {
			dominated := false
			for j, b := range g {
				if i == j {
					continue
				}
				if rateRPS > 0 && b.capTail < a.capTail-1e-9 {
					continue
				}
				if b.upLat <= a.upLat+1e-12 && b.newComps <= a.newComps &&
					(b.upLat < a.upLat-1e-12 || b.newComps < a.newComps ||
						(b.upLat == a.upLat && b.newComps == a.newComps && j < i)) {
					dominated = true
					break
				}
			}
			if !dominated {
				out = append(out, a)
			}
		}
	}
	return out
}
