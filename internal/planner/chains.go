package planner

import "partsvc/internal/spec"

// chainElem is one position in a linkage chain: either a specification
// component to be instantiated, or an anchor — an already-deployed
// instance that terminates the chain (incremental planning links new
// components to existing ones, as when the Seattle clients attach to the
// ViewMailServer already running in San Diego).
type chainElem struct {
	comp   spec.Component
	anchor *Placement // non-nil: existing instance; pinned and terminal
}

// isAnchor reports whether the element is an existing-instance terminal.
func (e chainElem) isAnchor() bool { return e.anchor != nil }

// Chain is a valid linkage chain: element 0 implements the requested
// interface, each element's required interface is implemented by the
// next, and the final element either requires nothing or is an anchor.
type Chain []chainElem

// Names returns the component names of the chain; anchors are suffixed
// with "*".
func (c Chain) Names() []string {
	out := make([]string, len(c))
	for i, e := range c {
		out[i] = e.comp.Name
		if e.isAnchor() {
			out[i] += "*"
		}
	}
	return out
}

// linkIface returns the interface over which elements i and i+1 of the
// chain are linked (the required interface of element i).
func (c Chain) linkIface(i int) string {
	return c[i].comp.Requires[0].Name
}

// EnumerateChains performs step 1 of planning (Section 3.3, "Finding
// valid linkages"): starting from the requested interface, it finds the
// components that implement it and recurses through their required
// interfaces, stopping at components with no requirements or at
// already-deployed instances that implement the needed interface.
// Components may repeat along a chain (a ViewMailServer may link to
// another ViewMailServer); enumeration is bounded by MaxChainLen.
// Components with more than one required interface do not form chains
// and are left to the tree planner.
//
// For the mail service this reproduces Figure 3: every path from
// MailClient or ViewMailClient to MailServer, optionally passing through
// ViewMailServers and Encryptor-Decryptor pairs.
func (pl *Planner) EnumerateChains(iface string) []Chain {
	var out []Chain
	var prefix Chain
	emit := func(last chainElem) {
		chain := make(Chain, len(prefix)+1)
		copy(chain, prefix)
		chain[len(prefix)] = last
		out = append(out, chain)
	}
	var recurse func(iface string)
	recurse = func(iface string) {
		if len(prefix) >= pl.maxLen() {
			return
		}
		// Existing instances that implement the interface terminate the
		// chain; their recorded effective properties stand in for the
		// whole already-deployed upstream linkage.
		for i := range pl.Existing {
			anchor := &pl.Existing[i]
			comp, ok := pl.Service.Component(anchor.Component)
			if !ok {
				continue
			}
			if _, implements := comp.ImplementsInterface(iface); implements && len(anchor.Offers) > 0 {
				emit(chainElem{comp: comp, anchor: anchor})
			}
		}
		for _, comp := range pl.Service.ImplementersOf(iface) {
			switch len(comp.Requires) {
			case 0:
				emit(chainElem{comp: comp})
			case 1:
				prefix = append(prefix, chainElem{comp: comp})
				recurse(comp.Requires[0].Name)
				prefix = prefix[:len(prefix)-1]
			default:
				// Not a chain; the tree planner handles multi-requires.
			}
		}
	}
	recurse(iface)
	return out
}
