package planner

import (
	"strings"
	"testing"

	"partsvc/internal/netmodel"
	"partsvc/internal/property"
	"partsvc/internal/spec"
	"partsvc/internal/topology"
)

func sdRequest() Request {
	return Request{
		Interface: spec.IfaceClient, ClientNode: topology.SDClient,
		User: "Alice", RateRPS: 50,
	}
}

// TestVerifyAcceptsPlannerOutput: everything the planner produces
// passes independent verification (the verifier is the oracle for the
// property-based tests below).
func TestVerifyAcceptsPlannerOutput(t *testing.T) {
	pl := caseStudyPlanner(t)
	requests := []Request{
		{Interface: spec.IfaceClient, ClientNode: topology.NYClient, User: "Alice", RateRPS: 50},
		sdRequest(),
		{Interface: spec.IfaceClient, ClientNode: topology.SeaClient, User: "Carol", RateRPS: 50},
	}
	for _, req := range requests {
		dep := planOrFail(t, pl, req)
		if err := pl.Verify(dep, req); err != nil {
			t.Errorf("planner output failed verification: %v\n%s", err, dep)
		}
		pl.AddExisting(dep.Placements...)
	}
}

// TestVerifyRejectsTamperedDeployment: moving a component to a node
// that breaks a constraint is caught.
func TestVerifyRejectsTamperedDeployment(t *testing.T) {
	pl := caseStudyPlanner(t)
	dep := planOrFail(t, pl, sdRequest())

	// Move the ViewMailServer to Seattle: its factored TrustLevel=4 no
	// longer matches, and the plaintext client hop crosses an insecure
	// link.
	bad := *dep
	bad.Placements = append([]Placement(nil), dep.Placements...)
	bad.Placements[1].Node = topology.SeaClient
	if err := pl.Verify(&bad, sdRequest()); err == nil {
		t.Error("tampered deployment must fail verification")
	}

	// Excessive rate is caught.
	over := sdRequest()
	over.RateRPS = 1e9
	if err := pl.Verify(dep, over); err == nil || !strings.Contains(err.Error(), "capacity") {
		t.Errorf("rate violation not caught: %v", err)
	}

	// Nil and malformed chains are rejected.
	if err := pl.Verify(nil, sdRequest()); err == nil {
		t.Error("nil deployment must fail")
	}
	broken := *dep
	broken.Placements = []Placement{{Component: "Ghost", Node: topology.SDClient}}
	if err := pl.Verify(&broken, sdRequest()); err == nil {
		t.Error("unknown component must fail")
	}
}

// TestRevalidateEvictsUntrustedView: dropping a site's trust evicts the
// view factored there (its node can no longer hold the escrowed keys).
func TestRevalidateEvictsUntrustedView(t *testing.T) {
	pl := caseStudyPlanner(t)
	dep := planOrFail(t, pl, sdRequest())
	pl.AddExisting(dep.Placements...)

	n, _ := pl.Net.Node(topology.SDClient)
	n.Props["TrustLevel"] = property.Int(1)
	gw, _ := pl.Net.Node(topology.SDGateway)
	gw.Props["TrustLevel"] = property.Int(1)

	evicted := pl.RevalidateExisting()
	foundView := false
	for _, p := range evicted {
		if p.Component == spec.CompViewMailServer {
			foundView = true
		}
		if p.Component == spec.CompMailServer {
			t.Error("the NY primary must survive an SD trust change")
		}
	}
	if !foundView {
		t.Errorf("the SD view must be evicted; evicted = %v", evicted)
	}
}

// TestReplanAfterTrustDrop: after San Diego loses trust, the replanned
// SD deployment stops caching there and the diff says what to remove.
func TestReplanAfterTrustDrop(t *testing.T) {
	pl := caseStudyPlanner(t)
	old := planOrFail(t, pl, sdRequest())
	pl.AddExisting(old.Placements...)

	for _, id := range []netmodel.NodeID{topology.SDClient, topology.SDGateway} {
		n, _ := pl.Net.Node(id)
		n.Props["TrustLevel"] = property.Int(1)
	}
	diff, err := pl.Replan(old, sdRequest())
	if err != nil {
		t.Fatal(err)
	}
	if len(diff.Evicted) == 0 {
		t.Error("trust drop must evict instances")
	}
	for _, p := range diff.New.Placements {
		if p.Component == spec.CompViewMailServer {
			n, _ := pl.Net.Node(p.Node)
			if n.Site == topology.SiteSanDiego {
				t.Errorf("replan must not cache on untrusted SD nodes: %s", diff.New)
			}
		}
		if p.Component == spec.CompMailClient {
			// Alice's full client needs TrustLevel-independent conditions
			// only (User ACL), so it survives.
			continue
		}
	}
	removed := map[string]bool{}
	for _, p := range diff.Remove {
		removed[p.Component] = true
	}
	if !removed[spec.CompViewMailServer] {
		t.Errorf("diff must remove the old SD view; removed = %v", diff.Remove)
	}
	if err := pl.Verify(diff.New, sdRequest()); err != nil {
		t.Errorf("replanned deployment invalid: %v", err)
	}
}

// TestReplanAfterLinkSecured: securing the NY-SD path makes the
// encryptor pair unnecessary; the replanned chain drops it at zero new
// installs.
func TestReplanAfterLinkSecured(t *testing.T) {
	pl := caseStudyPlanner(t)
	old := planOrFail(t, pl, sdRequest())
	pl.AddExisting(old.Placements...)

	l, _ := pl.Net.Link(topology.NYServer, topology.SDGateway)
	l.Secure = true
	l.Props["Confidentiality"] = property.Bool(true)

	diff, err := pl.Replan(old, sdRequest())
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range diff.New.Placements {
		if p.Component == spec.CompEncryptor || p.Component == spec.CompDecryptor {
			t.Errorf("secured link must not need the tunnel: %s", diff.New)
		}
	}
	if len(diff.Install) != 0 {
		t.Errorf("adaptation should reuse everything it keeps: install = %v", diff.Install)
	}
	removed := map[string]bool{}
	for _, p := range diff.Remove {
		removed[p.Component] = true
	}
	if !removed[spec.CompEncryptor] || !removed[spec.CompDecryptor] {
		t.Errorf("diff must remove the tunnel pair; removed = %v", diff.Remove)
	}
	if diff.New.ExpectedLatencyMS >= old.ExpectedLatencyMS {
		t.Errorf("dropping the tunnel must not raise latency: %.2f -> %.2f",
			old.ExpectedLatencyMS, diff.New.ExpectedLatencyMS)
	}
}

// TestReplanUnchangedWhenNothingChanged: a replan on a static network
// is a no-op.
func TestReplanUnchangedWhenNothingChanged(t *testing.T) {
	pl := caseStudyPlanner(t)
	old := planOrFail(t, pl, sdRequest())
	pl.AddExisting(old.Placements...)
	diff, err := pl.Replan(old, sdRequest())
	if err != nil {
		t.Fatal(err)
	}
	if !diff.Unchanged() {
		t.Errorf("static network replan must be a no-op: install=%v remove=%v", diff.Install, diff.Remove)
	}
	if len(diff.Evicted) != 0 {
		t.Errorf("nothing must be evicted: %v", diff.Evicted)
	}
}

// TestQuickPlansAlwaysVerify: across random Waxman networks, whenever
// the planner finds a deployment it passes independent verification —
// the three validity conditions are never violated by search shortcuts.
func TestQuickPlansAlwaysVerify(t *testing.T) {
	svc := spec.MailService()
	for seed := int64(1); seed <= 8; seed++ {
		net, err := topology.Waxman(topology.DefaultWaxman(10, seed))
		if err != nil {
			t.Fatal(err)
		}
		nodes := net.Nodes()
		nodes[0].Props["TrustLevel"] = property.Int(5)
		pl := New(svc, net)
		ms, err := pl.PrimaryPlacement(spec.CompMailServer, nodes[0].ID)
		if err != nil {
			t.Fatal(err)
		}
		pl.AddExisting(ms)
		for _, client := range []int{1, 3, 7} {
			req := Request{
				Interface: spec.IfaceClient, ClientNode: nodes[client].ID,
				User: "Alice", RateRPS: 10,
			}
			// The DP mapper keeps this sweep fast; it re-validates its
			// result exactly and falls back to exhaustive search when
			// needed, so the coverage is the same.
			dep, err := pl.PlanDP(req)
			if err != nil {
				continue // some random environments are legitimately unsatisfiable
			}
			if verr := pl.Verify(dep, req); verr != nil {
				t.Errorf("seed %d client %s: plan failed verification: %v\n%s",
					seed, nodes[client].ID, verr, dep)
			}
			pl.AddExisting(dep.Placements...)
		}
	}
}
