package planner

import (
	"strings"
	"testing"

	"partsvc/internal/netmodel"
	"partsvc/internal/netmon"
	"partsvc/internal/property"
	"partsvc/internal/spec"
	"partsvc/internal/topology"
)

func sdRequest() Request {
	return Request{
		Interface: spec.IfaceClient, ClientNode: topology.SDClient,
		User: "Alice", RateRPS: 50,
	}
}

// TestVerifyAcceptsPlannerOutput: everything the planner produces
// passes independent verification (the verifier is the oracle for the
// property-based tests below).
func TestVerifyAcceptsPlannerOutput(t *testing.T) {
	pl := caseStudyPlanner(t)
	requests := []Request{
		{Interface: spec.IfaceClient, ClientNode: topology.NYClient, User: "Alice", RateRPS: 50},
		sdRequest(),
		{Interface: spec.IfaceClient, ClientNode: topology.SeaClient, User: "Carol", RateRPS: 50},
	}
	for _, req := range requests {
		dep := planOrFail(t, pl, req)
		if err := pl.Verify(dep, req); err != nil {
			t.Errorf("planner output failed verification: %v\n%s", err, dep)
		}
		pl.AddExisting(dep.Placements...)
	}
}

// TestVerifyRejectsTamperedDeployment: moving a component to a node
// that breaks a constraint is caught.
func TestVerifyRejectsTamperedDeployment(t *testing.T) {
	pl := caseStudyPlanner(t)
	dep := planOrFail(t, pl, sdRequest())

	// Move the ViewMailServer to Seattle: its factored TrustLevel=4 no
	// longer matches, and the plaintext client hop crosses an insecure
	// link.
	bad := *dep
	bad.Placements = append([]Placement(nil), dep.Placements...)
	bad.Placements[1].Node = topology.SeaClient
	if err := pl.Verify(&bad, sdRequest()); err == nil {
		t.Error("tampered deployment must fail verification")
	}

	// Excessive rate is caught.
	over := sdRequest()
	over.RateRPS = 1e9
	if err := pl.Verify(dep, over); err == nil || !strings.Contains(err.Error(), "capacity") {
		t.Errorf("rate violation not caught: %v", err)
	}

	// Nil and malformed chains are rejected.
	if err := pl.Verify(nil, sdRequest()); err == nil {
		t.Error("nil deployment must fail")
	}
	broken := *dep
	broken.Placements = []Placement{{Component: "Ghost", Node: topology.SDClient}}
	if err := pl.Verify(&broken, sdRequest()); err == nil {
		t.Error("unknown component must fail")
	}
}

// TestRevalidateEvictsUntrustedView: dropping a site's trust evicts the
// view factored there (its node can no longer hold the escrowed keys).
func TestRevalidateEvictsUntrustedView(t *testing.T) {
	pl := caseStudyPlanner(t)
	dep := planOrFail(t, pl, sdRequest())
	pl.AddExisting(dep.Placements...)

	n, _ := pl.Net.Node(topology.SDClient)
	n.Props["TrustLevel"] = property.Int(1)
	gw, _ := pl.Net.Node(topology.SDGateway)
	gw.Props["TrustLevel"] = property.Int(1)

	evicted := pl.RevalidateExisting()
	foundView := false
	for _, p := range evicted {
		if p.Component == spec.CompViewMailServer {
			foundView = true
		}
		if p.Component == spec.CompMailServer {
			t.Error("the NY primary must survive an SD trust change")
		}
	}
	if !foundView {
		t.Errorf("the SD view must be evicted; evicted = %v", evicted)
	}
}

// TestReplanAfterTrustDrop: after San Diego loses trust, the replanned
// SD deployment stops caching there and the diff says what to remove.
func TestReplanAfterTrustDrop(t *testing.T) {
	pl := caseStudyPlanner(t)
	old := planOrFail(t, pl, sdRequest())
	pl.AddExisting(old.Placements...)

	for _, id := range []netmodel.NodeID{topology.SDClient, topology.SDGateway} {
		n, _ := pl.Net.Node(id)
		n.Props["TrustLevel"] = property.Int(1)
	}
	diff, err := pl.Replan(old, sdRequest())
	if err != nil {
		t.Fatal(err)
	}
	if len(diff.Evicted) == 0 {
		t.Error("trust drop must evict instances")
	}
	for _, p := range diff.New.Placements {
		if p.Component == spec.CompViewMailServer {
			n, _ := pl.Net.Node(p.Node)
			if n.Site == topology.SiteSanDiego {
				t.Errorf("replan must not cache on untrusted SD nodes: %s", diff.New)
			}
		}
		if p.Component == spec.CompMailClient {
			// Alice's full client needs TrustLevel-independent conditions
			// only (User ACL), so it survives.
			continue
		}
	}
	removed := map[string]bool{}
	for _, p := range diff.Remove {
		removed[p.Component] = true
	}
	if !removed[spec.CompViewMailServer] {
		t.Errorf("diff must remove the old SD view; removed = %v", diff.Remove)
	}
	if err := pl.Verify(diff.New, sdRequest()); err != nil {
		t.Errorf("replanned deployment invalid: %v", err)
	}
}

// TestReplanAfterLinkSecured: securing the NY-SD path makes the
// encryptor pair unnecessary; the replanned chain drops it at zero new
// installs.
func TestReplanAfterLinkSecured(t *testing.T) {
	pl := caseStudyPlanner(t)
	old := planOrFail(t, pl, sdRequest())
	pl.AddExisting(old.Placements...)

	// Report the change through the monitor: it owns network mutations
	// and bumps the route epoch so the planner's path cache (including
	// cached link environments) is invalidated.
	secure := true
	if err := netmon.New(pl.Net).ReportLink(topology.NYServer, topology.SDGateway, -1, -1, &secure); err != nil {
		t.Fatal(err)
	}

	diff, err := pl.Replan(old, sdRequest())
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range diff.New.Placements {
		if p.Component == spec.CompEncryptor || p.Component == spec.CompDecryptor {
			t.Errorf("secured link must not need the tunnel: %s", diff.New)
		}
	}
	if len(diff.Install) != 0 {
		t.Errorf("adaptation should reuse everything it keeps: install = %v", diff.Install)
	}
	removed := map[string]bool{}
	for _, p := range diff.Remove {
		removed[p.Component] = true
	}
	if !removed[spec.CompEncryptor] || !removed[spec.CompDecryptor] {
		t.Errorf("diff must remove the tunnel pair; removed = %v", diff.Remove)
	}
	if diff.New.ExpectedLatencyMS >= old.ExpectedLatencyMS {
		t.Errorf("dropping the tunnel must not raise latency: %.2f -> %.2f",
			old.ExpectedLatencyMS, diff.New.ExpectedLatencyMS)
	}
}

// TestReplanAfterLatencyChange: a latency report that shifts the
// shortest NY-Seattle route is picked up by Replan — every edge of the
// new deployment follows an epoch-current shortest path, never a stale
// cached one.
func TestReplanAfterLatencyChange(t *testing.T) {
	pl := caseStudyPlanner(t)
	req := Request{
		Interface: spec.IfaceClient, ClientNode: topology.SeaClient,
		User: "Carol", RateRPS: 50,
	}
	old := planOrFail(t, pl, req)
	pl.AddExisting(old.Placements...)

	// The direct NY-Seattle link (400 ms at seed, losing to the 300 ms
	// detour through San Diego) speeds up to 50 ms.
	if err := netmon.New(pl.Net).ReportLink(topology.NYServer, topology.SeaGW, 50, -1, nil); err != nil {
		t.Fatal(err)
	}
	want, ok := pl.Net.ShortestPath(topology.NYServer, topology.SeaGW)
	if !ok || len(want.Nodes) != 2 {
		t.Fatalf("direct link must now be the shortest NY-Sea route, got %v", want.Nodes)
	}

	diff, err := pl.Replan(old, req)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range diff.New.Edges {
		from := diff.New.Placements[e.From].Node
		to := diff.New.Placements[e.To].Node
		sp, ok := pl.Net.ShortestPath(from, to)
		if !ok {
			t.Fatalf("edge %s->%s lost its route", from, to)
		}
		if e.Path.LatencyMS != sp.LatencyMS {
			t.Errorf("edge %s->%s uses a stale path: %.1f ms cached vs %.1f ms current",
				from, to, e.Path.LatencyMS, sp.LatencyMS)
		}
	}
	if diff.New.ExpectedLatencyMS >= old.ExpectedLatencyMS {
		t.Errorf("a faster backbone must lower expected latency: %.2f -> %.2f",
			old.ExpectedLatencyMS, diff.New.ExpectedLatencyMS)
	}
	if err := pl.Verify(diff.New, req); err != nil {
		t.Errorf("replanned deployment invalid: %v", err)
	}
}

// TestReplanUnchangedWhenNothingChanged: a replan on a static network
// is a no-op.
func TestReplanUnchangedWhenNothingChanged(t *testing.T) {
	pl := caseStudyPlanner(t)
	old := planOrFail(t, pl, sdRequest())
	pl.AddExisting(old.Placements...)
	diff, err := pl.Replan(old, sdRequest())
	if err != nil {
		t.Fatal(err)
	}
	if !diff.Unchanged() {
		t.Errorf("static network replan must be a no-op: install=%v remove=%v", diff.Install, diff.Remove)
	}
	if len(diff.Evicted) != 0 {
		t.Errorf("nothing must be evicted: %v", diff.Evicted)
	}
}

// TestQuickPlansAlwaysVerify: across random Waxman networks, whenever
// the planner finds a deployment it passes independent verification —
// the three validity conditions are never violated by search shortcuts.
func TestQuickPlansAlwaysVerify(t *testing.T) {
	svc := spec.MailService()
	for seed := int64(1); seed <= 8; seed++ {
		net, err := topology.Waxman(topology.DefaultWaxman(10, seed))
		if err != nil {
			t.Fatal(err)
		}
		nodes := net.Nodes()
		nodes[0].Props["TrustLevel"] = property.Int(5)
		pl := New(svc, net)
		ms, err := pl.PrimaryPlacement(spec.CompMailServer, nodes[0].ID)
		if err != nil {
			t.Fatal(err)
		}
		pl.AddExisting(ms)
		for _, client := range []int{1, 3, 7} {
			req := Request{
				Interface: spec.IfaceClient, ClientNode: nodes[client].ID,
				User: "Alice", RateRPS: 10,
			}
			// The DP mapper keeps this sweep fast; it re-validates its
			// result exactly and falls back to exhaustive search when
			// needed, so the coverage is the same.
			dep, err := pl.PlanDP(req)
			if err != nil {
				continue // some random environments are legitimately unsatisfiable
			}
			if verr := pl.Verify(dep, req); verr != nil {
				t.Errorf("seed %d client %s: plan failed verification: %v\n%s",
					seed, nodes[client].ID, verr, dep)
			}
			pl.AddExisting(dep.Placements...)
		}
	}
}
