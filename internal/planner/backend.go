package planner

import "fmt"

// Backend selects the planning algorithm behind one common seam: the
// paper's exhaustive mapper, the CANS-style chain DP, or the
// constraint-solver backend (internal/solver) that also covers
// tree-shaped linkage graphs and supports incremental repair.
type Backend int

const (
	// BackendExhaustive is Plan: exhaustive node assignment per chain.
	BackendExhaustive Backend = iota
	// BackendDP is PlanDP: Pareto-pruned dynamic programming per chain.
	BackendDP
	// BackendSolver is PlanSolver: AC-3 propagation plus branch-and-bound
	// over chain- and tree-shaped linkage graphs.
	BackendSolver
)

// String names the backend.
func (b Backend) String() string {
	switch b {
	case BackendDP:
		return "dp"
	case BackendSolver:
		return "solver"
	}
	return "exhaustive"
}

// ParseBackend resolves a backend name ("exhaustive", "dp", "solver").
// The empty string selects the exhaustive default.
func ParseBackend(s string) (Backend, error) {
	switch s {
	case "", "exhaustive":
		return BackendExhaustive, nil
	case "dp":
		return BackendDP, nil
	case "solver":
		return BackendSolver, nil
	}
	return 0, fmt.Errorf("planner: unknown backend %q (want exhaustive, dp, or solver)", s)
}

// ParseObjective resolves an objective name. Both the short API/CLI
// aliases ("latency", "cost", "headroom") and the canonical String
// forms are accepted; the empty string selects min-latency.
func ParseObjective(s string) (Objective, error) {
	switch s {
	case "", "latency", "min-latency":
		return MinLatency, nil
	case "cost", "min-cost":
		return MinCost, nil
	case "headroom", "capacity", "max-capacity":
		return MaxCapacity, nil
	}
	return 0, fmt.Errorf("planner: unknown objective %q (want latency, cost, or headroom)", s)
}

// Preferred resolves the planner's configured default backend from the
// PreferSolver/PreferDP flags (solver takes precedence).
func (pl *Planner) Preferred() Backend {
	switch {
	case pl.PreferSolver:
		return BackendSolver
	case pl.PreferDP:
		return BackendDP
	}
	return BackendExhaustive
}

// PlanVia satisfies the request through the selected backend. Rate
// admission (validity condition 3) is enforced here, uniformly across
// backends: a returned deployment always sustains the request rate, so
// no backend-specific relaxation (the DP's load model, the solver's
// tree mapper) can leak an over-committed deployment to the caller.
func (pl *Planner) PlanVia(b Backend, req Request) (*Deployment, error) {
	var dep *Deployment
	var err error
	switch b {
	case BackendDP:
		dep, err = pl.PlanDP(req)
	case BackendSolver:
		dep, err = pl.PlanSolver(req)
	default:
		dep, err = pl.Plan(req)
	}
	if err != nil {
		return nil, err
	}
	if req.RateRPS > 0 && dep.CapacityRPS < req.RateRPS {
		return nil, fmt.Errorf("planner: %s backend returned deployment with capacity %.1f rps below request rate %.1f",
			b, dep.CapacityRPS, req.RateRPS)
	}
	return dep, nil
}
