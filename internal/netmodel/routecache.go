package netmodel

import (
	"math"
	"sync"
	"sync/atomic"

	"partsvc/internal/property"
)

// RouteCache is an epoch-versioned all-pairs shortest-path cache over a
// Network. It interns node IDs into a dense index table, runs a
// binary-heap Dijkstra over flat arrays (no per-step map allocation),
// and materializes one single-source tree lazily per source: every
// target's Path — including its bottleneck bandwidth and its aggregate
// link-property environment — is computed once per epoch and then served
// allocation-free.
//
// Cached Path values and environment Sets are shared across callers and
// MUST be treated as read-only. The cache is safe for concurrent use;
// the planner's parallel per-chain workers hit it from many goroutines.
//
// Topology mutators (AddNode, AddLink, Translate, and the netmon
// monitor's report methods) bump the owning Network's route epoch;
// Network.Routes then discards this cache and hands out a fresh one, so
// a stale cache is never observable through the Network API.
type RouteCache struct {
	epoch uint64

	ids  []NodeID         // dense index -> node ID, sorted by ID
	idx  map[NodeID]int32 // node ID -> dense index
	down []bool           // per dense index: node was down at interning time

	// CSR adjacency over dense indices.
	adjStart []int32
	adjNode  []int32
	adjLat   []float64
	adjBW    []float64
	adjProps []property.Set

	loopback []Path // per-node single-element paths, built once

	mu    sync.RWMutex
	trees []*spTree // per source index; nil until first queried

	hits, misses atomic.Uint64
	// reusedTrees counts trees carried over from the previous epoch by a
	// copy-on-write link delta (see deltaLink); 0 for full rebuilds.
	reusedTrees int
}

// spTree is the materialized single-source shortest-path tree: per
// target, the full Path and the aggregate link-property environment
// (nil for loopback or unreachable targets). Immutable once built.
// parent records each target's Dijkstra predecessor (dense index, -1
// for the source and unreachable nodes), so a link delta can decide in
// O(1) whether the tree routes through a changed edge.
type spTree struct {
	paths  []Path
	envs   []property.Set
	reach  []bool
	parent []int32
}

// usesEdge reports whether the tree routes through the undirected edge
// (a, b): tree paths are exactly the parent-pointer chains, so the edge
// is used iff it is a tree edge in either direction.
func (t *spTree) usesEdge(a, b int32) bool {
	return t.parent[b] == a || t.parent[a] == b
}

// newRouteCache interns the network's nodes and links into dense arrays.
// Trees are built lazily per source on first lookup.
func newRouteCache(n *Network, epoch uint64) *RouteCache {
	nodes := n.Nodes() // sorted by ID: dense index order == ID order
	rc := &RouteCache{
		epoch:    epoch,
		ids:      make([]NodeID, len(nodes)),
		idx:      make(map[NodeID]int32, len(nodes)),
		down:     make([]bool, len(nodes)),
		loopback: make([]Path, len(nodes)),
		trees:    make([]*spTree, len(nodes)),
	}
	for i, node := range nodes {
		rc.ids[i] = node.ID
		rc.idx[node.ID] = int32(i)
		rc.down[i] = node.Down
		rc.loopback[i] = Path{Nodes: rc.ids[i : i+1], BottleneckMbps: math.Inf(1)}
	}
	// Edges touching a down node are absent from the interned adjacency:
	// a crashed node neither forwards nor terminates traffic. The CSR
	// counts are computed over the same filter.
	rc.adjStart = make([]int32, len(nodes)+1)
	for i, id := range rc.ids {
		kept := 0
		if !rc.down[i] {
			for _, nb := range n.adj[id] {
				if !n.nodes[nb].Down {
					kept++
				}
			}
		}
		rc.adjStart[i+1] = rc.adjStart[i] + int32(kept)
	}
	total := rc.adjStart[len(nodes)]
	rc.adjNode = make([]int32, 0, total)
	rc.adjLat = make([]float64, 0, total)
	rc.adjBW = make([]float64, 0, total)
	rc.adjProps = make([]property.Set, 0, total)
	for i, id := range rc.ids {
		if rc.down[i] {
			continue
		}
		for _, nb := range n.adj[id] {
			if n.nodes[nb].Down {
				continue
			}
			l, _ := n.Link(id, nb)
			rc.adjNode = append(rc.adjNode, rc.idx[nb])
			rc.adjLat = append(rc.adjLat, l.LatencyMS)
			rc.adjBW = append(rc.adjBW, l.BandwidthMbps)
			rc.adjProps = append(rc.adjProps, l.Props)
		}
	}
	return rc
}

// Epoch returns the network epoch this cache was built against.
func (rc *RouteCache) Epoch() uint64 { return rc.epoch }

// NumNodes returns the number of interned nodes.
func (rc *RouteCache) NumNodes() int { return len(rc.ids) }

// NodeIDs returns the interned node identifiers in ascending order. The
// slice is owned by the cache and must be treated as read-only.
func (rc *RouteCache) NodeIDs() []NodeID { return rc.ids }

// Counters returns the cumulative hit and miss counts. A miss is a
// lookup that had to build the source's shortest-path tree; every other
// served lookup is a hit.
func (rc *RouteCache) Counters() (hits, misses uint64) {
	return rc.hits.Load(), rc.misses.Load()
}

// ReusedTrees returns how many single-source trees this cache inherited
// from the previous epoch through a copy-on-write link delta instead of
// recomputing them; 0 for caches built from scratch.
func (rc *RouteCache) ReusedTrees() int { return rc.reusedTrees }

// deltaLink builds the next-epoch cache after the single link (a, b)
// changed latency or bandwidth, reusing everything the change cannot
// have touched: the node interning, the CSR adjacency structure, and —
// when the change is non-improving — every shortest-path tree that does
// not route through the edge.
//
// Correctness of tree reuse: if no latency decreased, no new shorter
// path can appear anywhere, so every source whose tree avoids (a, b)
// keeps identical distances; and because the relaxation discipline is
// strict-improvement with deterministic tie-breaks, the fresh build
// would reproduce the identical parent choices (the changed edge's
// offers only got worse, so it loses every comparison it already lost).
// Bandwidth and link-property values only affect paths that traverse
// the edge, which reuse already excludes. A latency *decrease* can
// reroute any source, so it drops all trees (the interning is still
// reused). Returns nil when the delta cannot be applied (unknown link
// or property-set changes, which alias shared maps); the caller falls
// back to a full rebuild.
func (rc *RouteCache) deltaLink(n *Network, epoch uint64, a, b NodeID) *RouteCache {
	ai, aok := rc.idx[a]
	bi, bok := rc.idx[b]
	if !aok || !bok {
		return nil
	}
	link, ok := n.Link(a, b)
	if !ok {
		return nil
	}
	nc := &RouteCache{
		epoch:    epoch,
		ids:      rc.ids,
		idx:      rc.idx,
		down:     rc.down,
		loopback: rc.loopback,
		adjStart: rc.adjStart,
		adjNode:  rc.adjNode,
		trees:    make([]*spTree, len(rc.ids)),
	}
	eab := rc.edgeIndex(ai, bi)
	eba := rc.edgeIndex(bi, ai)
	if eab < 0 || eba < 0 {
		// The edge was filtered out at interning time (an endpoint was
		// down): the routable topology is unchanged, keep everything.
		nc.adjLat, nc.adjBW, nc.adjProps = rc.adjLat, rc.adjBW, rc.adjProps
		rc.mu.RLock()
		copy(nc.trees, rc.trees)
		rc.mu.RUnlock()
		for _, t := range nc.trees {
			if t != nil {
				nc.reusedTrees++
			}
		}
		return nc
	}
	improved := link.LatencyMS < rc.adjLat[eab]
	nc.adjLat = append([]float64(nil), rc.adjLat...)
	nc.adjBW = append([]float64(nil), rc.adjBW...)
	nc.adjProps = rc.adjProps
	for _, ei := range []int32{eab, eba} {
		nc.adjLat[ei] = link.LatencyMS
		nc.adjBW[ei] = link.BandwidthMbps
	}
	if !improved {
		rc.mu.RLock()
		for src, t := range rc.trees {
			if t != nil && !t.usesEdge(ai, bi) {
				nc.trees[src] = t
				nc.reusedTrees++
			}
		}
		rc.mu.RUnlock()
	}
	return nc
}

// Path returns the cached minimum-latency path between two nodes; ok is
// false if either node is unknown or no path exists. The returned Path
// shares cache-owned slices and must not be mutated.
func (rc *RouteCache) Path(from, to NodeID) (Path, bool) {
	p, _, ok := rc.PathEnv(from, to)
	return p, ok
}

// PathEnv returns the cached path together with its aggregate
// link-property environment (the property-wise minimum across the
// path's links, as Path.Env computes). env is nil for loopback paths —
// the caller supplies the intra-node environment — and must be treated
// as read-only otherwise.
func (rc *RouteCache) PathEnv(from, to NodeID) (Path, property.Set, bool) {
	fi, ok := rc.idx[from]
	if !ok {
		return Path{}, nil, false
	}
	ti, ok := rc.idx[to]
	if !ok {
		return Path{}, nil, false
	}
	if rc.down[fi] || rc.down[ti] {
		return Path{}, nil, false
	}
	if fi == ti {
		rc.hits.Add(1)
		return rc.loopback[fi], nil, true
	}
	t := rc.tree(fi)
	if !t.reach[ti] {
		return Path{}, nil, false
	}
	return t.paths[ti], t.envs[ti], true
}

// tree returns the single-source tree for a source index, building it
// on first use (double-checked under the cache lock).
func (rc *RouteCache) tree(src int32) *spTree {
	rc.mu.RLock()
	t := rc.trees[src]
	rc.mu.RUnlock()
	if t != nil {
		rc.hits.Add(1)
		return t
	}
	rc.mu.Lock()
	defer rc.mu.Unlock()
	if t = rc.trees[src]; t != nil {
		rc.hits.Add(1)
		return t
	}
	rc.misses.Add(1)
	t = rc.buildTree(src)
	rc.trees[src] = t
	return t
}

// buildTree runs heap Dijkstra from src over the dense adjacency and
// materializes every target's Path, bottleneck, and environment. The
// extraction order (ties broken by node index, i.e. by node ID) and the
// strict-improvement relaxation match Network.ShortestPath exactly, so
// cached paths are identical to the uncached reference implementation.
func (rc *RouteCache) buildTree(src int32) *spTree {
	n := len(rc.ids)
	dist := make([]float64, n)
	prev := make([]int32, n)
	done := make([]bool, n)
	for i := range dist {
		dist[i] = math.Inf(1)
		prev[i] = -1
	}
	dist[src] = 0

	// order records the extraction sequence (src first): a node's
	// predecessor is always extracted before it, which is exactly the
	// ordering the materialization pass below needs.
	order := make([]int32, 0, n)
	h := &spHeap{items: make([]spItem, 0, n)}
	h.push(spItem{0, src})
	for h.len() > 0 {
		it := h.pop()
		if done[it.node] {
			continue // stale entry superseded by a shorter one
		}
		done[it.node] = true
		order = append(order, it.node)
		for ei := rc.adjStart[it.node]; ei < rc.adjStart[it.node+1]; ei++ {
			nb := rc.adjNode[ei]
			if done[nb] {
				continue
			}
			// Strict improvement only, mirroring ShortestPath: with
			// zero-latency links an equal-distance rewrite could make
			// prev cyclic.
			if nd := it.dist + rc.adjLat[ei]; nd < dist[nb] {
				dist[nb] = nd
				prev[nb] = it.node
				h.push(spItem{nd, nb})
			}
		}
	}

	t := &spTree{
		paths:  make([]Path, n),
		envs:   make([]property.Set, n),
		reach:  make([]bool, n),
		parent: prev,
	}
	t.reach[src] = true
	t.paths[src] = rc.loopback[src]
	// Materialize targets in extraction order so each node's parent is
	// already materialized: path slices are built by appending one hop
	// to the parent's (copied) node list, and the environment and
	// bottleneck fold incrementally (min/intersection is associative
	// and commutative, so folding source-out equals Path.Env's
	// head-to-tail fold).
	bneck := make([]float64, n)
	bneck[src] = math.Inf(1)
	for _, ti := range order {
		if ti == src {
			continue
		}
		pi := prev[ti]
		ei := rc.edgeIndex(pi, ti)
		parent := t.paths[pi].Nodes
		nodes := make([]NodeID, len(parent)+1)
		copy(nodes, parent)
		nodes[len(parent)] = rc.ids[ti]
		bneck[ti] = math.Min(bneck[pi], rc.adjBW[ei])
		t.paths[ti] = Path{Nodes: nodes, LatencyMS: dist[ti], BottleneckMbps: bneck[ti]}
		t.envs[ti] = foldEnv(t.envs[pi], pi == src, rc.adjProps[ei])
		t.reach[ti] = true
	}
	return t
}

// edgeIndex finds the CSR edge from a to b (always present for tree
// edges).
func (rc *RouteCache) edgeIndex(a, b int32) int32 {
	for ei := rc.adjStart[a]; ei < rc.adjStart[a+1]; ei++ {
		if rc.adjNode[ei] == b {
			return ei
		}
	}
	return -1
}

// foldEnv extends a parent path environment across one more link:
// property-wise minimum over the intersection of property names, the
// same aggregation Path.Env performs.
func foldEnv(parent property.Set, parentIsSource bool, link property.Set) property.Set {
	if parentIsSource {
		return link.Clone()
	}
	env := property.Set{}
	for name, v := range parent {
		lv, ok := link[name]
		if !ok {
			continue
		}
		if m := property.Min(v, lv); m.IsValid() {
			env[name] = m
		}
	}
	return env
}

// spItem is one heap entry: a tentative distance to a node.
type spItem struct {
	dist float64
	node int32
}

// spHeap is a binary min-heap over (dist, node), ties broken by node
// index so extraction order is deterministic.
type spHeap struct{ items []spItem }

func (h *spHeap) len() int { return len(h.items) }

func (h *spHeap) less(a, b spItem) bool {
	if a.dist != b.dist {
		return a.dist < b.dist
	}
	return a.node < b.node
}

func (h *spHeap) push(it spItem) {
	h.items = append(h.items, it)
	i := len(h.items) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !h.less(h.items[i], h.items[p]) {
			break
		}
		h.items[i], h.items[p] = h.items[p], h.items[i]
		i = p
	}
}

func (h *spHeap) pop() spItem {
	top := h.items[0]
	last := len(h.items) - 1
	h.items[0] = h.items[last]
	h.items = h.items[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < len(h.items) && h.less(h.items[l], h.items[small]) {
			small = l
		}
		if r < len(h.items) && h.less(h.items[r], h.items[small]) {
			small = r
		}
		if small == i {
			break
		}
		h.items[i], h.items[small] = h.items[small], h.items[i]
		i = small
	}
	return top
}
