package netmodel

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"partsvc/internal/property"
)

// randomNetwork builds a seeded random topology: n nodes, each link
// drawn with probability p, with random latencies (including a share of
// zero-latency links, which stress tie-breaking and path
// materialization order) and random link property sets. Disconnected
// pairs are expected and exercise the no-path agreement.
func randomNetwork(t *testing.T, n int, p float64, seed int64) *Network {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	net := New()
	ids := make([]NodeID, n)
	for i := range ids {
		ids[i] = NodeID(fmt.Sprintf("n%02d", i))
		if err := net.AddNode(Node{ID: ids[i]}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() > p {
				continue
			}
			lat := float64(rng.Intn(20)) // 0 included on purpose
			props := property.Set{
				"Confidentiality": property.Bool(rng.Intn(2) == 0),
			}
			if rng.Intn(2) == 0 {
				props["TrustLevel"] = property.Int(int64(1 + rng.Intn(5)))
			}
			err := net.AddLink(Link{
				A: ids[i], B: ids[j],
				LatencyMS:     lat,
				BandwidthMbps: float64(1 + rng.Intn(100)),
				Props:         props,
			})
			if err != nil {
				t.Fatal(err)
			}
		}
	}
	return net
}

// TestRouteCacheMatchesReference: on random topologies, the heap-based
// cached Dijkstra agrees with the linear reference implementation for
// every ordered pair — same reachability, same node sequence, same
// latency and bottleneck.
func TestRouteCacheMatchesReference(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		net := randomNetwork(t, 12, 0.25, seed)
		rc := net.Routes()
		nodes := net.Nodes()
		for _, from := range nodes {
			for _, to := range nodes {
				want, wantOK := net.shortestPathUncached(from.ID, to.ID)
				got, gotOK := rc.Path(from.ID, to.ID)
				if wantOK != gotOK {
					t.Fatalf("seed %d %s->%s: reachability cache=%v reference=%v",
						seed, from.ID, to.ID, gotOK, wantOK)
				}
				if !wantOK {
					continue
				}
				if len(got.Nodes) != len(want.Nodes) {
					t.Fatalf("seed %d %s->%s: path %v != reference %v",
						seed, from.ID, to.ID, got.Nodes, want.Nodes)
				}
				for i := range got.Nodes {
					if got.Nodes[i] != want.Nodes[i] {
						t.Fatalf("seed %d %s->%s: path %v != reference %v",
							seed, from.ID, to.ID, got.Nodes, want.Nodes)
					}
				}
				if got.LatencyMS != want.LatencyMS {
					t.Fatalf("seed %d %s->%s: latency %v != %v",
						seed, from.ID, to.ID, got.LatencyMS, want.LatencyMS)
				}
				if got.BottleneckMbps != want.BottleneckMbps {
					t.Fatalf("seed %d %s->%s: bottleneck %v != %v",
						seed, from.ID, to.ID, got.BottleneckMbps, want.BottleneckMbps)
				}
			}
		}
	}
}

// TestRouteCacheEnvMatchesPathEnv: the cached per-path environment
// equals the fold Path.Env computes link by link; loopback lookups
// return a nil environment (the caller substitutes its own).
func TestRouteCacheEnvMatchesPathEnv(t *testing.T) {
	net := randomNetwork(t, 10, 0.35, 42)
	rc := net.Routes()
	loop := property.Set{"Confidentiality": property.Bool(true)}
	for _, from := range net.Nodes() {
		for _, to := range net.Nodes() {
			path, env, ok := rc.PathEnv(from.ID, to.ID)
			if !ok {
				continue
			}
			if from.ID == to.ID {
				if env != nil {
					t.Fatalf("loopback %s: env must be nil, got %v", from.ID, env)
				}
				continue
			}
			want := path.Env(net, loop)
			if env.Fingerprint() != want.Fingerprint() {
				t.Fatalf("%s->%s: cached env %v != folded env %v", from.ID, to.ID, env, want)
			}
		}
	}
}

// TestRouteCacheEpochInvalidation: a topology mutation through a
// sanctioned mutator bumps the epoch, and the next Routes() call
// reflects the new shortest path.
func TestRouteCacheEpochInvalidation(t *testing.T) {
	n := diamond(t)
	before := n.RouteEpoch()
	p, ok := n.ShortestPath("a", "d")
	if !ok || len(p.Nodes) != 3 || p.Nodes[1] != "b" {
		t.Fatalf("baseline path must be a-b-d, got %v", p.Nodes)
	}
	if n.Routes() != n.Routes() {
		t.Fatal("stable topology must reuse one cache instance")
	}

	// A new express node undercuts the a-b-d route.
	if err := n.AddNode(Node{ID: "e"}); err != nil {
		t.Fatal(err)
	}
	for _, l := range []Link{
		{A: "a", B: "e", LatencyMS: 0.25, BandwidthMbps: 100},
		{A: "e", B: "d", LatencyMS: 0.25, BandwidthMbps: 100},
	} {
		if err := n.AddLink(l); err != nil {
			t.Fatal(err)
		}
	}
	if n.RouteEpoch() == before {
		t.Fatal("mutators must bump the route epoch")
	}
	p, ok = n.ShortestPath("a", "d")
	if !ok || len(p.Nodes) != 3 || p.Nodes[1] != "e" {
		t.Fatalf("post-mutation path must be a-e-d, got %v", p.Nodes)
	}
	if p.LatencyMS != 0.5 {
		t.Fatalf("post-mutation latency must be 0.5, got %v", p.LatencyMS)
	}
}

// TestRouteCacheCounters: the first lookup touching a source is a miss
// (it builds that source's tree); subsequent lookups from the same
// source are hits, including loopback and unreachable answers.
func TestRouteCacheCounters(t *testing.T) {
	n := diamond(t)
	rc := n.Routes()
	if h, m := rc.Counters(); h != 0 || m != 0 {
		t.Fatalf("fresh cache must start at zero, got hits=%d misses=%d", h, m)
	}
	rc.Path("a", "d")
	if h, m := rc.Counters(); h != 0 || m != 1 {
		t.Fatalf("first lookup must miss once: hits=%d misses=%d", h, m)
	}
	rc.Path("a", "b")
	rc.Path("a", "c")
	rc.Path("a", "a")
	if h, m := rc.Counters(); h != 3 || m != 1 {
		t.Fatalf("same-source lookups must hit: hits=%d misses=%d", h, m)
	}
	rc.Path("b", "a")
	if h, m := rc.Counters(); h != 3 || m != 2 {
		t.Fatalf("new source must miss: hits=%d misses=%d", h, m)
	}
}

// TestRouteCacheUnknownNodes: lookups involving unknown nodes fail
// cleanly.
func TestRouteCacheUnknownNodes(t *testing.T) {
	n := diamond(t)
	rc := n.Routes()
	if _, ok := rc.Path("a", "zz"); ok {
		t.Fatal("unknown target must not resolve")
	}
	if _, ok := rc.Path("zz", "a"); ok {
		t.Fatal("unknown source must not resolve")
	}
	if _, _, ok := rc.PathEnv("zz", "zz"); ok {
		t.Fatal("unknown loopback must not resolve")
	}
}

// TestRouteCacheLoopback: loopback paths are single-node with infinite
// bottleneck, matching the reference.
func TestRouteCacheLoopback(t *testing.T) {
	n := diamond(t)
	p, ok := n.Routes().Path("c", "c")
	if !ok || !p.IsLoopback() || !math.IsInf(p.BottleneckMbps, 1) || p.LatencyMS != 0 {
		t.Fatalf("loopback path malformed: %+v ok=%v", p, ok)
	}
}
