package netmodel

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"partsvc/internal/property"
)

// deltaTestNet builds a connected random network for delta testing:
// a ring (guaranteed connectivity) plus random chords.
func deltaTestNet(t *testing.T, nodes, chords int, seed int64) *Network {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	n := New()
	ids := make([]NodeID, nodes)
	for i := range ids {
		ids[i] = NodeID(fmt.Sprintf("n%03d", i))
		if err := n.AddNode(Node{ID: ids[i], Props: property.Set{}}); err != nil {
			t.Fatal(err)
		}
	}
	add := func(a, b NodeID) {
		if _, dup := n.Link(a, b); dup || a == b {
			return
		}
		err := n.AddLink(Link{
			A: a, B: b,
			LatencyMS:     float64(rng.Intn(50) + 1),
			BandwidthMbps: []float64{8, 20, 50, 100}[rng.Intn(4)],
			Props:         property.Set{"Confidentiality": property.Bool(rng.Intn(2) == 0)},
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	for i := range ids {
		add(ids[i], ids[(i+1)%nodes])
	}
	for c := 0; c < chords; c++ {
		add(ids[rng.Intn(nodes)], ids[rng.Intn(nodes)])
	}
	return n
}

// forceAllTrees materializes every single-source tree of the cache.
func forceAllTrees(rc *RouteCache) {
	for _, from := range rc.NodeIDs() {
		for _, to := range rc.NodeIDs() {
			rc.Path(from, to)
		}
	}
}

// assertCachesEqual compares every pair's path, latency, bottleneck and
// environment between a delta-derived cache and a from-scratch rebuild.
func assertCachesEqual(t *testing.T, got, want *RouteCache, step int) {
	t.Helper()
	for _, from := range want.NodeIDs() {
		for _, to := range want.NodeIDs() {
			gp, genv, gok := got.PathEnv(from, to)
			wp, wenv, wok := want.PathEnv(from, to)
			if gok != wok {
				t.Fatalf("step %d: %s->%s reachability delta=%v full=%v", step, from, to, gok, wok)
			}
			if !gok {
				continue
			}
			if gp.LatencyMS != wp.LatencyMS {
				t.Fatalf("step %d: %s->%s latency delta=%v full=%v", step, from, to, gp.LatencyMS, wp.LatencyMS)
			}
			if gp.BottleneckMbps != wp.BottleneckMbps {
				t.Fatalf("step %d: %s->%s bottleneck delta=%v full=%v", step, from, to, gp.BottleneckMbps, wp.BottleneckMbps)
			}
			if len(gp.Nodes) != len(wp.Nodes) {
				t.Fatalf("step %d: %s->%s path delta=%v full=%v", step, from, to, gp.Nodes, wp.Nodes)
			}
			for i := range gp.Nodes {
				if gp.Nodes[i] != wp.Nodes[i] {
					t.Fatalf("step %d: %s->%s path delta=%v full=%v", step, from, to, gp.Nodes, wp.Nodes)
				}
			}
			if genv.Fingerprint() != wenv.Fingerprint() {
				t.Fatalf("step %d: %s->%s env delta=%q full=%q", step, from, to, genv.Fingerprint(), wenv.Fingerprint())
			}
		}
	}
}

// TestRouteCacheLinkDeltaEquivalence drives a long random sequence of
// link latency/bandwidth changes (improvements and degradations mixed)
// through InvalidateRoutesLinkDelta and asserts after every step that
// the delta-derived cache answers identically to a from-scratch rebuild
// of the same topology.
func TestRouteCacheLinkDeltaEquivalence(t *testing.T) {
	n := deltaTestNet(t, 24, 30, 7)
	rng := rand.New(rand.NewSource(99))
	links := n.Links()
	for step := 0; step < 60; step++ {
		forceAllTrees(n.Routes()) // give the delta trees to carry over
		l := links[rng.Intn(len(links))]
		switch rng.Intn(3) {
		case 0: // degrade latency
			l.LatencyMS += float64(rng.Intn(40) + 1)
		case 1: // improve latency
			l.LatencyMS = math.Max(1, l.LatencyMS-float64(rng.Intn(20)+1))
		default: // bandwidth only
			l.BandwidthMbps = []float64{8, 20, 50, 100}[rng.Intn(4)]
		}
		n.InvalidateRoutesLinkDelta(l.A, l.B)
		got := n.Routes()

		// Reference: a brand-new network with identical figures.
		ref := New()
		for _, node := range n.Nodes() {
			if err := ref.AddNode(*node); err != nil {
				t.Fatal(err)
			}
		}
		for _, link := range n.Links() {
			if err := ref.AddLink(*link); err != nil {
				t.Fatal(err)
			}
		}
		assertCachesEqual(t, got, ref.Routes(), step)
	}
}

// TestRouteCacheLinkDeltaReuse asserts the copy-on-write delta actually
// reuses trees: degrading a leaf-ish link must keep the trees of
// sources that never route through it, and an improving change must
// keep none.
func TestRouteCacheLinkDeltaReuse(t *testing.T) {
	n := deltaTestNet(t, 24, 30, 7)
	forceAllTrees(n.Routes())
	links := n.Links()
	l := links[0]

	l.LatencyMS += 500 // degrade: non-improving
	n.InvalidateRoutesLinkDelta(l.A, l.B)
	rc := n.Routes()
	if rc.ReusedTrees() == 0 {
		t.Fatalf("degrading one of %d links reused no trees", len(links))
	}
	if rc.ReusedTrees() >= rc.NumNodes() {
		t.Fatalf("reused %d of %d trees: the changed link's own trees must rebuild",
			rc.ReusedTrees(), rc.NumNodes())
	}

	forceAllTrees(rc)
	l.LatencyMS = 1 // improve: every tree is suspect
	n.InvalidateRoutesLinkDelta(l.A, l.B)
	if got := n.Routes().ReusedTrees(); got != 0 {
		t.Fatalf("improving change reused %d trees, want 0", got)
	}
}

// TestRouteCacheEpochPinning asserts that a handle pinned before a
// mutation keeps answering from its own epoch's topology — the contract
// in-flight replan waves rely on — while fresh handles see the change.
func TestRouteCacheEpochPinning(t *testing.T) {
	n := deltaTestNet(t, 8, 6, 3)
	pinned := n.Routes()
	from, to := pinned.NodeIDs()[0], pinned.NodeIDs()[4]
	before, ok := pinned.Path(from, to)
	if !ok {
		t.Fatal("no path in connected network")
	}
	for _, l := range n.Links() {
		l.LatencyMS += 1000
		n.InvalidateRoutesLinkDelta(l.A, l.B)
	}
	after, ok := pinned.Path(from, to)
	if !ok || after.LatencyMS != before.LatencyMS {
		t.Fatalf("pinned handle drifted: before %v after %v", before.LatencyMS, after.LatencyMS)
	}
	fresh, ok := n.Routes().Path(from, to)
	if !ok || fresh.LatencyMS == before.LatencyMS {
		t.Fatalf("fresh handle did not observe the change: %v", fresh.LatencyMS)
	}
	if pinned.Epoch() == n.Routes().Epoch() {
		t.Fatal("epoch did not advance")
	}
}
