// Package netmodel models the network as the planner sees it
// (HPDC'02, Section 3.3): a graph of nodes and links annotated with
// resource characteristics (CPU capacity, bandwidth, latency) and
// application-independent credentials. Credentials are translated into
// service-specific properties by a service-supplied translation
// function before planning.
package netmodel

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"partsvc/internal/property"
)

// NodeID identifies a node in the network.
type NodeID string

// Node is a host capable of running service components.
type Node struct {
	// ID is the node's unique identifier.
	ID NodeID
	// Site is an administrative grouping label (e.g. "NewYork").
	Site string
	// CPUCapacityRPS is the node's processing capacity expressed as the
	// request rate it can sustain at 1 ms of CPU per request. Zero means
	// unspecified (unbounded).
	CPUCapacityRPS float64
	// Credentials are application-independent attributes (e.g.
	// "domain" = "example.com", "trust" = "partner"). The planner never
	// interprets these directly; a translation function maps them to
	// service properties.
	Credentials map[string]string
	// Props are the service-relevant properties of the node, produced by
	// translation (e.g. TrustLevel=4). Conditions and factored
	// expressions evaluate against this set.
	Props property.Set
	// Down marks the node as crashed or unreachable, as reported by a
	// monitoring substrate (netmon.Monitor.ReportNodeDown). A down node
	// cannot host placements, cannot forward traffic (routing treats its
	// links as absent), and fails revalidation of instances placed on it.
	Down bool
}

// Link is a (bidirectional) network link between two nodes.
type Link struct {
	// A and B are the endpoints.
	A, B NodeID
	// LatencyMS is the one-way propagation latency in milliseconds.
	LatencyMS float64
	// BandwidthMbps is the link capacity in megabits per second.
	BandwidthMbps float64
	// Secure records whether the link preserves confidentiality of the
	// traffic it carries (an application-independent credential).
	Secure bool
	// Props are the service-relevant properties of the link environment
	// after translation (e.g. Confidentiality=T).
	Props property.Set
}

// TransferMS returns the time in milliseconds to push the given number
// of bytes through the link (serialization delay only, no propagation).
func (l Link) TransferMS(bytes int) float64 {
	if l.BandwidthMbps <= 0 || bytes <= 0 {
		return 0
	}
	bits := float64(bytes) * 8
	return bits / (l.BandwidthMbps * 1e6) * 1e3
}

// TranslationFunc converts application-independent node or link
// credentials into service-specific properties (Section 3.3: "the
// planner first needs to translate these credentials into properties
// that the service cares about based on external service-specific
// functions").
type TranslationFunc func(credentials map[string]string) property.Set

// Network is the planner's view of the environment: a graph of nodes
// and links. The zero value is an empty network ready for use.
//
// The network carries a route epoch: a version counter bumped by every
// topology mutator (AddNode, AddLink, Translate, and the netmon
// monitor's report methods, which mutate links and node properties in
// place). Routes returns a shortest-path cache pinned to the current
// epoch; bumping the epoch invalidates it wholesale, so route consumers
// never observe stale paths.
type Network struct {
	nodes map[NodeID]*Node
	links map[edgeKey]*Link
	adj   map[NodeID][]NodeID

	routesMu sync.Mutex
	epoch    uint64
	routes   *RouteCache
}

type edgeKey struct{ a, b NodeID }

func canonical(a, b NodeID) edgeKey {
	if b < a {
		a, b = b, a
	}
	return edgeKey{a, b}
}

// New returns an empty network.
func New() *Network {
	return &Network{
		nodes: map[NodeID]*Node{},
		links: map[edgeKey]*Link{},
		adj:   map[NodeID][]NodeID{},
	}
}

// AddNode inserts a node; it returns an error on duplicate IDs.
func (n *Network) AddNode(node Node) error {
	if node.ID == "" {
		return fmt.Errorf("netmodel: node with empty ID")
	}
	if _, dup := n.nodes[node.ID]; dup {
		return fmt.Errorf("netmodel: duplicate node %q", node.ID)
	}
	if node.Props == nil {
		node.Props = property.Set{}
	}
	n.nodes[node.ID] = &node
	n.InvalidateRoutes()
	return nil
}

// AddLink inserts a bidirectional link; both endpoints must exist.
func (n *Network) AddLink(link Link) error {
	if _, ok := n.nodes[link.A]; !ok {
		return fmt.Errorf("netmodel: link endpoint %q unknown", link.A)
	}
	if _, ok := n.nodes[link.B]; !ok {
		return fmt.Errorf("netmodel: link endpoint %q unknown", link.B)
	}
	if link.A == link.B {
		return fmt.Errorf("netmodel: self-link on %q", link.A)
	}
	key := canonical(link.A, link.B)
	if _, dup := n.links[key]; dup {
		return fmt.Errorf("netmodel: duplicate link %q-%q", link.A, link.B)
	}
	if link.Props == nil {
		link.Props = property.Set{}
	}
	n.links[key] = &link
	n.adj[link.A] = append(n.adj[link.A], link.B)
	n.adj[link.B] = append(n.adj[link.B], link.A)
	n.InvalidateRoutes()
	return nil
}

// InvalidateRoutes bumps the route epoch, discarding any outstanding
// route cache. Every mutation of the topology or of link
// characteristics must call it (AddNode, AddLink, and Translate do so
// themselves; the netmon monitor calls it when applying reports).
func (n *Network) InvalidateRoutes() {
	n.routesMu.Lock()
	n.epoch++
	n.routes = nil
	n.routesMu.Unlock()
}

// InvalidateRoutesLinkDelta bumps the route epoch after the latency or
// bandwidth of the single link (a, b) changed, replacing the
// outstanding route cache with a copy-on-write delta instead of
// discarding it: the node interning and adjacency structure carry over,
// and for non-improving changes so does every shortest-path tree that
// avoids the edge. Falls back to a plain invalidation when no cache is
// outstanding or the delta cannot be applied. Callers mutating link
// property sets (not just latency/bandwidth figures) must use
// InvalidateRoutes: cached environments alias those maps.
func (n *Network) InvalidateRoutesLinkDelta(a, b NodeID) {
	n.routesMu.Lock()
	defer n.routesMu.Unlock()
	n.epoch++
	if n.routes == nil {
		return
	}
	n.routes = n.routes.deltaLink(n, n.epoch, a, b)
}

// RouteEpoch returns the current route epoch.
func (n *Network) RouteEpoch() uint64 {
	n.routesMu.Lock()
	defer n.routesMu.Unlock()
	return n.epoch
}

// Routes returns the shortest-path cache for the network's current
// epoch, building a fresh (empty) cache after any invalidation. The
// returned cache remains internally consistent — it answers from the
// topology snapshot it interned — even if the network mutates
// afterwards; call Routes again to pick up the new epoch.
func (n *Network) Routes() *RouteCache {
	n.routesMu.Lock()
	defer n.routesMu.Unlock()
	if n.routes == nil || n.routes.epoch != n.epoch {
		n.routes = newRouteCache(n, n.epoch)
	}
	return n.routes
}

// Node returns the named node.
func (n *Network) Node(id NodeID) (*Node, bool) {
	node, ok := n.nodes[id]
	return node, ok
}

// Link returns the link between two nodes, in either direction.
func (n *Network) Link(a, b NodeID) (*Link, bool) {
	l, ok := n.links[canonical(a, b)]
	return l, ok
}

// Nodes returns all nodes sorted by ID (deterministic iteration).
func (n *Network) Nodes() []*Node {
	out := make([]*Node, 0, len(n.nodes))
	for _, node := range n.nodes {
		out = append(out, node)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Links returns all links sorted by endpoint IDs.
func (n *Network) Links() []*Link {
	out := make([]*Link, 0, len(n.links))
	for _, l := range n.links {
		out = append(out, l)
	}
	sort.Slice(out, func(i, j int) bool {
		ki, kj := canonical(out[i].A, out[i].B), canonical(out[j].A, out[j].B)
		if ki.a != kj.a {
			return ki.a < kj.a
		}
		return ki.b < kj.b
	})
	return out
}

// Neighbors returns the IDs adjacent to a node, sorted.
func (n *Network) Neighbors(id NodeID) []NodeID {
	out := append([]NodeID(nil), n.adj[id]...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// NumNodes returns the node count.
func (n *Network) NumNodes() int { return len(n.nodes) }

// NumLinks returns the link count.
func (n *Network) NumLinks() int { return len(n.links) }

// Translate applies translation functions to every node and link,
// populating their Props from credentials. Existing explicitly-set
// properties are preserved and take precedence over translated ones.
func (n *Network) Translate(nodeFn, linkFn TranslationFunc) {
	if nodeFn != nil {
		for _, node := range n.nodes {
			node.Props = nodeFn(node.Credentials).Merge(node.Props)
		}
	}
	if linkFn != nil {
		for _, l := range n.links {
			creds := map[string]string{"secure": "F"}
			if l.Secure {
				creds["secure"] = "T"
			}
			l.Props = linkFn(creds).Merge(l.Props)
		}
	}
	n.InvalidateRoutes()
}

// Path is a sequence of nodes connected by links.
type Path struct {
	// Nodes lists the path's nodes, source first. A single-element path
	// is a loopback (both components on the same node).
	Nodes []NodeID
	// LatencyMS is the summed one-way latency of the path's links.
	LatencyMS float64
	// BottleneckMbps is the minimum bandwidth along the path; +Inf for
	// loopback paths.
	BottleneckMbps float64
}

// IsLoopback reports whether the path stays on one node.
func (p Path) IsLoopback() bool { return len(p.Nodes) <= 1 }

// Env returns the aggregate service-property environment of the path:
// the property-wise minimum across all links (a path is only as secure
// or as trusted as its weakest link). Loopback paths return secureEnv,
// the environment of intra-node communication supplied by the caller.
func (p Path) Env(n *Network, secureEnv property.Set) property.Set {
	if p.IsLoopback() {
		return secureEnv.Clone()
	}
	var env property.Set
	for i := 0; i+1 < len(p.Nodes); i++ {
		l, ok := n.Link(p.Nodes[i], p.Nodes[i+1])
		if !ok {
			return property.Set{}
		}
		if env == nil {
			env = l.Props.Clone()
			continue
		}
		for name, v := range env {
			lv, ok := l.Props[name]
			if !ok {
				delete(env, name)
				continue
			}
			m := property.Min(v, lv)
			if !m.IsValid() {
				delete(env, name)
				continue
			}
			env[name] = m
		}
		for name := range l.Props {
			if _, ok := env[name]; !ok {
				delete(env, name)
			}
		}
	}
	if env == nil {
		env = property.Set{}
	}
	return env
}

// ShortestPath returns the minimum-latency path between two nodes; ok
// is false if no path exists. It answers from the epoch-current route
// cache (see Routes); the returned Path shares cache-owned slices and
// must be treated as read-only. Hot loops should hold a Routes()
// handle instead, which skips the per-call epoch check.
func (n *Network) ShortestPath(from, to NodeID) (Path, bool) {
	return n.Routes().Path(from, to)
}

// shortestPathUncached is the reference Dijkstra implementation
// (linear extraction over maps). The route cache must agree with it
// path-for-path; tests assert that equivalence.
func (n *Network) shortestPathUncached(from, to NodeID) (Path, bool) {
	if src, exists := n.nodes[from]; !exists || src.Down {
		return Path{}, false
	}
	if dst, exists := n.nodes[to]; !exists || dst.Down {
		return Path{}, false
	}
	if from == to {
		return Path{Nodes: []NodeID{from}, BottleneckMbps: math.Inf(1)}, true
	}
	dist := map[NodeID]float64{from: 0}
	prev := map[NodeID]NodeID{}
	visited := map[NodeID]bool{}
	for len(visited) < len(n.nodes) {
		// Linear extraction keeps the implementation simple; planner
		// networks are small (tens of nodes). Ties broken by ID for
		// determinism.
		var cur NodeID
		best := math.Inf(1)
		found := false
		for id, d := range dist {
			if visited[id] {
				continue
			}
			if d < best || (d == best && (!found || id < cur)) {
				best, cur, found = d, id, true
			}
		}
		if !found {
			break
		}
		if cur == to {
			break
		}
		visited[cur] = true
		for _, nb := range n.adj[cur] {
			// A down node cannot forward or terminate traffic: its links
			// are absent from routing.
			if visited[nb] || n.nodes[nb].Down {
				continue
			}
			l, _ := n.Link(cur, nb)
			nd := dist[cur] + l.LatencyMS
			// Strict improvement only: with zero-latency links an
			// equal-distance rewrite could make prev cyclic. Extraction
			// order is already deterministic (ties broken by node ID).
			if d, seen := dist[nb]; !seen || nd < d {
				dist[nb] = nd
				prev[nb] = cur
			}
		}
	}
	if _, reached := dist[to]; !reached {
		return Path{}, false
	}
	var nodes []NodeID
	for at := to; ; {
		nodes = append(nodes, at)
		if at == from {
			break
		}
		at = prev[at]
	}
	for i, j := 0, len(nodes)-1; i < j; i, j = i+1, j-1 {
		nodes[i], nodes[j] = nodes[j], nodes[i]
	}
	p := Path{Nodes: nodes, LatencyMS: dist[to], BottleneckMbps: math.Inf(1)}
	for i := 0; i+1 < len(nodes); i++ {
		l, _ := n.Link(nodes[i], nodes[i+1])
		if l.BandwidthMbps < p.BottleneckMbps {
			p.BottleneckMbps = l.BandwidthMbps
		}
	}
	return p, true
}

// NodesBySite returns the IDs of all nodes in the given site, sorted.
func (n *Network) NodesBySite(site string) []NodeID {
	var out []NodeID
	for _, node := range n.Nodes() {
		if node.Site == site {
			out = append(out, node.ID)
		}
	}
	return out
}
