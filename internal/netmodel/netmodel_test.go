package netmodel

import (
	"math"
	"testing"

	"partsvc/internal/property"
)

// diamond builds a 4-node test network:
//
//	a --1ms/100-- b --1ms/100-- d
//	a --5ms/10--- c --5ms/10--- d   (insecure)
func diamond(t *testing.T) *Network {
	t.Helper()
	n := New()
	for _, id := range []NodeID{"a", "b", "c", "d"} {
		if err := n.AddNode(Node{ID: id, Props: property.Set{"TrustLevel": property.Int(3)}}); err != nil {
			t.Fatal(err)
		}
	}
	secure := property.Set{"Confidentiality": property.Bool(true)}
	insecure := property.Set{"Confidentiality": property.Bool(false)}
	links := []Link{
		{A: "a", B: "b", LatencyMS: 1, BandwidthMbps: 100, Secure: true, Props: secure.Clone()},
		{A: "b", B: "d", LatencyMS: 1, BandwidthMbps: 100, Secure: true, Props: secure.Clone()},
		{A: "a", B: "c", LatencyMS: 5, BandwidthMbps: 10, Secure: false, Props: insecure.Clone()},
		{A: "c", B: "d", LatencyMS: 5, BandwidthMbps: 10, Secure: false, Props: insecure.Clone()},
	}
	for _, l := range links {
		if err := n.AddLink(l); err != nil {
			t.Fatal(err)
		}
	}
	return n
}

func TestAddNodeErrors(t *testing.T) {
	n := New()
	if err := n.AddNode(Node{}); err == nil {
		t.Error("empty ID must be rejected")
	}
	if err := n.AddNode(Node{ID: "a"}); err != nil {
		t.Fatal(err)
	}
	if err := n.AddNode(Node{ID: "a"}); err == nil {
		t.Error("duplicate ID must be rejected")
	}
}

func TestAddLinkErrors(t *testing.T) {
	n := New()
	if err := n.AddNode(Node{ID: "a"}); err != nil {
		t.Fatal(err)
	}
	if err := n.AddNode(Node{ID: "b"}); err != nil {
		t.Fatal(err)
	}
	if err := n.AddLink(Link{A: "a", B: "zz"}); err == nil {
		t.Error("unknown endpoint must be rejected")
	}
	if err := n.AddLink(Link{A: "zz", B: "a"}); err == nil {
		t.Error("unknown endpoint must be rejected")
	}
	if err := n.AddLink(Link{A: "a", B: "a"}); err == nil {
		t.Error("self-link must be rejected")
	}
	if err := n.AddLink(Link{A: "a", B: "b"}); err != nil {
		t.Fatal(err)
	}
	if err := n.AddLink(Link{A: "b", B: "a"}); err == nil {
		t.Error("duplicate link (either direction) must be rejected")
	}
}

func TestLinkLookupBidirectional(t *testing.T) {
	n := diamond(t)
	ab, ok := n.Link("a", "b")
	if !ok {
		t.Fatal("a-b link missing")
	}
	ba, ok := n.Link("b", "a")
	if !ok || ab != ba {
		t.Error("link lookup must be direction-independent")
	}
	if _, ok := n.Link("a", "d"); ok {
		t.Error("nonexistent link must not resolve")
	}
}

func TestTransferMS(t *testing.T) {
	l := Link{BandwidthMbps: 8}
	// 1 MB over 8 Mb/s = 1s = 1000 ms.
	got := l.TransferMS(1_000_000)
	if math.Abs(got-1000) > 1e-9 {
		t.Errorf("TransferMS = %v, want 1000", got)
	}
	if (Link{}).TransferMS(100) != 0 {
		t.Error("zero bandwidth transfers in zero time (unspecified)")
	}
	if l.TransferMS(0) != 0 {
		t.Error("zero bytes transfer in zero time")
	}
}

func TestNodesLinksSorted(t *testing.T) {
	n := diamond(t)
	nodes := n.Nodes()
	if len(nodes) != 4 || nodes[0].ID != "a" || nodes[3].ID != "d" {
		t.Errorf("Nodes() not sorted: %v", nodes)
	}
	links := n.Links()
	if len(links) != 4 {
		t.Fatalf("Links() = %d, want 4", len(links))
	}
	if n.NumNodes() != 4 || n.NumLinks() != 4 {
		t.Error("counts wrong")
	}
	nb := n.Neighbors("a")
	if len(nb) != 2 || nb[0] != "b" || nb[1] != "c" {
		t.Errorf("Neighbors(a) = %v", nb)
	}
}

func TestShortestPathPrefersLowLatency(t *testing.T) {
	n := diamond(t)
	p, ok := n.ShortestPath("a", "d")
	if !ok {
		t.Fatal("path a->d must exist")
	}
	if len(p.Nodes) != 3 || p.Nodes[1] != "b" {
		t.Errorf("path must go via b: %v", p.Nodes)
	}
	if p.LatencyMS != 2 {
		t.Errorf("latency = %v, want 2", p.LatencyMS)
	}
	if p.BottleneckMbps != 100 {
		t.Errorf("bottleneck = %v, want 100", p.BottleneckMbps)
	}
}

func TestShortestPathLoopback(t *testing.T) {
	n := diamond(t)
	p, ok := n.ShortestPath("a", "a")
	if !ok || !p.IsLoopback() || p.LatencyMS != 0 {
		t.Errorf("loopback path wrong: %v %v", p, ok)
	}
	if !math.IsInf(p.BottleneckMbps, 1) {
		t.Error("loopback bottleneck must be +Inf")
	}
}

func TestShortestPathUnreachable(t *testing.T) {
	n := diamond(t)
	if err := n.AddNode(Node{ID: "island"}); err != nil {
		t.Fatal(err)
	}
	if _, ok := n.ShortestPath("a", "island"); ok {
		t.Error("unreachable node must report no path")
	}
	if _, ok := n.ShortestPath("a", "ghost"); ok {
		t.Error("unknown node must report no path")
	}
	if _, ok := n.ShortestPath("ghost", "a"); ok {
		t.Error("unknown source must report no path")
	}
}

func TestPathEnvSecureAndMixed(t *testing.T) {
	n := diamond(t)
	secure, _ := n.ShortestPath("a", "d") // via b, all secure
	env := secure.Env(n, nil)
	if !env["Confidentiality"].Equal(property.Bool(true)) {
		t.Errorf("all-secure path env = %v", env)
	}
	mixed := Path{Nodes: []NodeID{"a", "c", "d"}}
	env = mixed.Env(n, nil)
	if !env["Confidentiality"].Equal(property.Bool(false)) {
		t.Errorf("insecure path env = %v", env)
	}
	// One secure + one insecure link: min wins.
	two := Path{Nodes: []NodeID{"b", "a", "c"}}
	env = two.Env(n, nil)
	if !env["Confidentiality"].Equal(property.Bool(false)) {
		t.Errorf("mixed path env = %v, want F", env)
	}
}

func TestPathEnvLoopbackUsesSecureEnv(t *testing.T) {
	n := diamond(t)
	lo := Path{Nodes: []NodeID{"a"}}
	env := lo.Env(n, property.Set{"Confidentiality": property.Bool(true)})
	if !env["Confidentiality"].Equal(property.Bool(true)) {
		t.Errorf("loopback env = %v", env)
	}
	if env2 := lo.Env(n, nil); len(env2) != 0 {
		t.Errorf("nil secure env yields empty env, got %v", env2)
	}
}

func TestPathEnvDropsNonCommonProps(t *testing.T) {
	n := New()
	for _, id := range []NodeID{"x", "y", "z"} {
		if err := n.AddNode(Node{ID: id}); err != nil {
			t.Fatal(err)
		}
	}
	if err := n.AddLink(Link{A: "x", B: "y", Props: property.Set{"Confidentiality": property.Bool(true), "QoS": property.Int(5)}}); err != nil {
		t.Fatal(err)
	}
	if err := n.AddLink(Link{A: "y", B: "z", Props: property.Set{"Confidentiality": property.Bool(true)}}); err != nil {
		t.Fatal(err)
	}
	env := Path{Nodes: []NodeID{"x", "y", "z"}}.Env(n, nil)
	if _, present := env["QoS"]; present {
		t.Error("property absent from one link must be dropped from the path env")
	}
	if !env["Confidentiality"].Equal(property.Bool(true)) {
		t.Error("common property must survive")
	}
}

func TestTranslate(t *testing.T) {
	n := New()
	if err := n.AddNode(Node{ID: "a", Credentials: map[string]string{"trust": "4"}}); err != nil {
		t.Fatal(err)
	}
	if err := n.AddNode(Node{ID: "b", Credentials: map[string]string{"trust": "2"}, Props: property.Set{"TrustLevel": property.Int(5)}}); err != nil {
		t.Fatal(err)
	}
	if err := n.AddLink(Link{A: "a", B: "b", Secure: true}); err != nil {
		t.Fatal(err)
	}
	nodeFn := func(creds map[string]string) property.Set {
		return property.Set{"TrustLevel": property.Parse(creds["trust"])}
	}
	linkFn := func(creds map[string]string) property.Set {
		return property.Set{"Confidentiality": property.Bool(creds["secure"] == "T")}
	}
	n.Translate(nodeFn, linkFn)
	a, _ := n.Node("a")
	if !a.Props["TrustLevel"].Equal(property.Int(4)) {
		t.Errorf("translated trust = %v", a.Props)
	}
	b, _ := n.Node("b")
	if !b.Props["TrustLevel"].Equal(property.Int(5)) {
		t.Error("explicit properties must take precedence over translation")
	}
	l, _ := n.Link("a", "b")
	if !l.Props["Confidentiality"].Equal(property.Bool(true)) {
		t.Errorf("translated link props = %v", l.Props)
	}
	// nil translation funcs are a no-op.
	n.Translate(nil, nil)
}

func TestNodesBySite(t *testing.T) {
	n := New()
	for _, spec := range []struct {
		id   NodeID
		site string
	}{{"n2", "x"}, {"n1", "x"}, {"n3", "y"}} {
		if err := n.AddNode(Node{ID: spec.id, Site: spec.site}); err != nil {
			t.Fatal(err)
		}
	}
	got := n.NodesBySite("x")
	if len(got) != 2 || got[0] != "n1" || got[1] != "n2" {
		t.Errorf("NodesBySite(x) = %v", got)
	}
	if got := n.NodesBySite("zzz"); got != nil {
		t.Errorf("unknown site = %v", got)
	}
}
