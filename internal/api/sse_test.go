package api

import (
	"bufio"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"partsvc/internal/metrics"
)

// sseFrame is one parsed `id:`/`event:`/`data:` block.
type sseFrame struct {
	id    uint64
	event string
	data  string
}

// readFrame reads the next event frame, skipping comments (heartbeats)
// and retry-only blocks.
func readFrame(br *bufio.Reader) (sseFrame, error) {
	var f sseFrame
	has := false
	for {
		line, err := br.ReadString('\n')
		if err != nil {
			return f, err
		}
		line = strings.TrimRight(line, "\n")
		if line == "" {
			if has {
				return f, nil
			}
			continue
		}
		switch {
		case strings.HasPrefix(line, ":"): // comment / heartbeat
		case strings.HasPrefix(line, "retry: "):
		case strings.HasPrefix(line, "id: "):
			f.id, _ = strconv.ParseUint(line[len("id: "):], 10, 64)
			has = true
		case strings.HasPrefix(line, "event: "):
			f.event = line[len("event: "):]
			has = true
		case strings.HasPrefix(line, "data: "):
			f.data = line[len("data: "):]
			has = true
		}
	}
}

func newTestServer(t *testing.T, cfg Config, ctl Control) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Registry == nil {
		cfg.Registry = metrics.NewRegistry()
	}
	s := New(cfg, ctl)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// openSSE connects to /v1/events and returns a frame reader plus a
// cancel that tears the connection down.
func openSSE(t *testing.T, base, query, lastID string) (*bufio.Reader, context.CancelFunc) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, "GET", base+"/v1/events"+query, nil)
	if err != nil {
		t.Fatal(err)
	}
	if lastID != "" {
		req.Header.Set("Last-Event-ID", lastID)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		cancel()
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	if resp.StatusCode != http.StatusOK {
		cancel()
		t.Fatalf("SSE connect: %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}
	return bufio.NewReader(resp.Body), cancel
}

func TestSSEStreamDeliversPublishedEvents(t *testing.T) {
	s, ts := newTestServer(t, Config{}, Control{})
	br, cancel := openSSE(t, ts.URL, "", "")
	defer cancel()

	// Published after the subscription: must arrive live, in order,
	// with the bus seq as the SSE id.
	go func() {
		s.Bus().Publish(Event{Source: "adapt", Kind: "suspect", Detail: "node sd-2"})
		s.Bus().Publish(Event{Source: "adapt", Kind: "replan", Session: "carol"})
	}()
	f1, err := readFrame(br)
	if err != nil {
		t.Fatal(err)
	}
	f2, err := readFrame(br)
	if err != nil {
		t.Fatal(err)
	}
	if f1.event != "suspect" || f2.event != "replan" {
		t.Fatalf("events = %q, %q; want suspect, replan", f1.event, f2.event)
	}
	if f2.id != f1.id+1 {
		t.Fatalf("ids = %d, %d; want consecutive", f1.id, f2.id)
	}
	var e Event
	if err := json.Unmarshal([]byte(f2.data), &e); err != nil {
		t.Fatalf("data is not Event JSON: %v", err)
	}
	if e.Session != "carol" || e.Seq != f2.id {
		t.Fatalf("decoded event %+v does not match frame id %d", e, f2.id)
	}
}

func TestSSEKindAndSessionFilters(t *testing.T) {
	s, ts := newTestServer(t, Config{}, Control{})
	br, cancel := openSSE(t, ts.URL, "?session=carol&kind=replan,adapted", "")
	defer cancel()

	go func() {
		s.Bus().Publish(Event{Kind: "replan", Session: "dave"})   // wrong session
		s.Bus().Publish(Event{Kind: "stage", Session: "carol"})   // wrong kind
		s.Bus().Publish(Event{Kind: "adapted", Session: "carol"}) // match
	}()
	f, err := readFrame(br)
	if err != nil {
		t.Fatal(err)
	}
	if f.event != "adapted" {
		t.Fatalf("first delivered event = %q, want the filtered-to adapted", f.event)
	}
}

// TestSSEReconnectReplay is the Last-Event-ID contract: a client that
// drops and reconnects with its last seen id receives exactly the
// missed events, no duplicates, then continues live.
func TestSSEReconnectReplay(t *testing.T) {
	s, ts := newTestServer(t, Config{}, Control{})

	br, cancel := openSSE(t, ts.URL, "", "")
	s.Bus().Publish(Event{Kind: "one"})
	s.Bus().Publish(Event{Kind: "two"})
	f1, err := readFrame(br)
	if err != nil {
		t.Fatal(err)
	}
	f2, err := readFrame(br)
	if err != nil {
		t.Fatal(err)
	}
	if f1.event != "one" || f2.event != "two" {
		t.Fatalf("first connection saw %q, %q", f1.event, f2.event)
	}
	cancel() // connection drops

	// Missed while away.
	s.Bus().Publish(Event{Kind: "three"})
	s.Bus().Publish(Event{Kind: "four"})

	br2, cancel2 := openSSE(t, ts.URL, "", strconv.FormatUint(f2.id, 10))
	defer cancel2()
	f3, err := readFrame(br2)
	if err != nil {
		t.Fatal(err)
	}
	f4, err := readFrame(br2)
	if err != nil {
		t.Fatal(err)
	}
	if f3.event != "three" || f4.event != "four" {
		t.Fatalf("replay gave %q, %q; want three, four", f3.event, f4.event)
	}
	if f3.id != f2.id+1 || f4.id != f3.id+1 {
		t.Fatalf("replay ids %d, %d not contiguous with %d", f3.id, f4.id, f2.id)
	}
	// And live events keep flowing after the replay with no duplicates.
	s.Bus().Publish(Event{Kind: "five"})
	f5, err := readFrame(br2)
	if err != nil {
		t.Fatal(err)
	}
	if f5.event != "five" || f5.id != f4.id+1 {
		t.Fatalf("post-replay live event = %+v", f5)
	}
}

// TestSSEShutdownSendsBye: Shutdown publishes a final shutdown event,
// then every subscriber's stream ends with an explicit bye frame —
// clients can tell a planned stop from a network hiccup.
func TestSSEShutdownSendsBye(t *testing.T) {
	reg := metrics.NewRegistry()
	s := New(Config{Addr: "127.0.0.1:0", Registry: reg, ShutdownGraceMS: 2000}, Control{})
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	br, cancel := openSSE(t, "http://"+s.Addr(), "", "")
	defer cancel()

	done := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		done <- s.Shutdown(ctx)
	}()

	sawShutdown, sawBye := false, false
	for {
		f, err := readFrame(br)
		if err != nil {
			if !sawBye && err != io.EOF {
				t.Fatalf("stream error before bye: %v", err)
			}
			break
		}
		switch f.event {
		case "shutdown":
			sawShutdown = true
		case "bye":
			sawBye = true
		}
		if sawBye {
			break
		}
	}
	if !sawShutdown || !sawBye {
		t.Errorf("stream end: shutdown=%v bye=%v, want both", sawShutdown, sawBye)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Shutdown: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Shutdown did not return after draining SSE subscribers")
	}
}

func TestSSEHeartbeat(t *testing.T) {
	_, ts := newTestServer(t, Config{HeartbeatMS: 30}, Control{})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, "GET", ts.URL+"/v1/events", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	br := bufio.NewReader(resp.Body)
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		line, err := br.ReadString('\n')
		if err != nil {
			t.Fatalf("read: %v", err)
		}
		if strings.HasPrefix(line, ": hb") {
			return // keepalive observed with no events published
		}
	}
	t.Fatal("no heartbeat comment within 3s")
}
