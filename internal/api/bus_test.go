package api

import (
	"sync"
	"testing"
	"time"
)

func TestBusFanoutAndFilter(t *testing.T) {
	b := NewBus(16)
	all := b.Subscribe(Filter{}, 16)
	kinds := b.Subscribe(Filter{Kinds: map[string]bool{"replan": true}}, 16)
	sess := b.Subscribe(Filter{Session: "carol"}, 16)

	b.Publish(Event{Kind: "replan", Session: "carol"})
	b.Publish(Event{Kind: "stage", Session: "dave"})
	b.Publish(Event{Kind: "suspect"}) // session-less: every session filter passes it

	drain := func(s *Subscription) []Event {
		var out []Event
		for {
			select {
			case e := <-s.C:
				out = append(out, e)
			default:
				return out
			}
		}
	}
	if got := drain(all); len(got) != 3 {
		t.Fatalf("unfiltered subscriber got %d events, want 3", len(got))
	}
	if got := drain(kinds); len(got) != 1 || got[0].Kind != "replan" {
		t.Fatalf("kind filter got %+v, want one replan", got)
	}
	got := drain(sess)
	if len(got) != 2 || got[0].Session != "carol" || got[1].Kind != "suspect" {
		t.Fatalf("session filter got %+v, want carol + session-less suspect", got)
	}
	if got[0].Seq >= got[1].Seq {
		t.Fatalf("sequence numbers must increase: %d then %d", got[0].Seq, got[1].Seq)
	}
}

// TestBusSlowSubscriberNeverBlocks is the bus's core contract: a
// subscriber that stops reading loses events (counted) but cannot
// stall a publisher — the adaptation loop's timing must not depend on
// an observer.
func TestBusSlowSubscriberNeverBlocks(t *testing.T) {
	b := NewBus(16)
	slow := b.Subscribe(Filter{}, 4) // never read
	fast := b.Subscribe(Filter{}, 256)

	done := make(chan struct{})
	go func() {
		for i := 0; i < 200; i++ {
			b.Publish(Event{Kind: "tick"})
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Publish blocked on a slow subscriber")
	}

	if got := slow.Dropped(); got != 200-4 {
		t.Errorf("slow subscriber dropped %d, want %d", got, 200-4)
	}
	if fast.Dropped() != 0 {
		t.Errorf("fast subscriber dropped %d, want 0", fast.Dropped())
	}
	n := 0
	for {
		select {
		case <-fast.C:
			n++
			continue
		default:
		}
		break
	}
	if n != 200 {
		t.Errorf("fast subscriber received %d, want 200", n)
	}
}

// TestBusConcurrency exercises publish/subscribe/cancel/close under
// the race detector: per-subscriber delivery stays in sequence order
// and nothing panics on the send-vs-close edge.
func TestBusConcurrency(t *testing.T) {
	b := NewBus(64)
	var readers sync.WaitGroup
	for i := 0; i < 4; i++ {
		sub := b.Subscribe(Filter{}, 32)
		readers.Add(1)
		go func(s *Subscription) {
			defer readers.Done()
			var last uint64
			for e := range s.C {
				if e.Seq <= last {
					t.Errorf("out-of-order delivery: %d after %d", e.Seq, last)
					return
				}
				last = e.Seq
			}
		}(sub)
	}
	// A churning subscriber canceling while publishes are in flight.
	var churn sync.WaitGroup
	churn.Add(1)
	go func() {
		defer churn.Done()
		for i := 0; i < 50; i++ {
			s := b.Subscribe(Filter{}, 1)
			s.Cancel()
		}
	}()

	var pubs sync.WaitGroup
	for p := 0; p < 4; p++ {
		pubs.Add(1)
		go func() {
			defer pubs.Done()
			for i := 0; i < 250; i++ {
				b.Publish(Event{Kind: "tick"})
			}
		}()
	}
	pubs.Wait()
	churn.Wait()
	if b.Seq() != 1000 {
		t.Errorf("seq = %d, want 1000", b.Seq())
	}
	b.Close()
	readers.Wait()

	// Everything after Close is inert.
	if e := b.Publish(Event{Kind: "late"}); e.Seq != 0 {
		t.Errorf("post-close publish was stamped: %+v", e)
	}
	if _, ok := <-b.Subscribe(Filter{}, 1).C; ok {
		t.Error("post-close subscribe must yield a closed channel")
	}
	b.Close() // idempotent
}

func TestBusReplayRing(t *testing.T) {
	b := NewBus(8)
	for i := 0; i < 20; i++ {
		b.Publish(Event{Kind: "tick"})
	}
	got := b.ReplayAfter(15, Filter{})
	if len(got) != 5 || got[0].Seq != 16 || got[4].Seq != 20 {
		t.Fatalf("ReplayAfter(15) = %+v, want seqs 16..20", got)
	}
	// Older than the ring: best-effort, yields what the ring still holds.
	got = b.ReplayAfter(0, Filter{})
	if len(got) != 8 || got[0].Seq != 13 || got[7].Seq != 20 {
		t.Fatalf("ReplayAfter(0) = %d events starting %d, want last 8 (13..20)",
			len(got), got[0].Seq)
	}
	for i := 1; i < len(got); i++ {
		if got[i].Seq != got[i-1].Seq+1 {
			t.Fatalf("replay out of order at %d: %+v", i, got)
		}
	}
}

func TestBusCancelIdempotent(t *testing.T) {
	b := NewBus(4)
	s := b.Subscribe(Filter{}, 1)
	s.Cancel()
	s.Cancel() // second cancel is a no-op, not a double close
	b.Publish(Event{Kind: "tick"})
	if _, ok := <-s.C; ok {
		t.Error("canceled subscription must have a closed channel")
	}
	b.Close()
	s.Cancel() // cancel after close races safely
}
