package api

import (
	"context"
	"crypto/subtle"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"sync"
	"time"

	"partsvc/internal/adapt"
	"partsvc/internal/fleet"
	"partsvc/internal/metrics"
	"partsvc/internal/netmodel"
	"partsvc/internal/netmon"
	"partsvc/internal/smock"
	"partsvc/internal/spec"
	"partsvc/internal/trace"
)

// Config tunes the HTTP layer.
type Config struct {
	// Addr is the listen address for Start ("127.0.0.1:8080"; ":0"
	// picks a free port, readable from Addr()).
	Addr string
	// Token, when non-empty, gates every endpoint except /healthz and
	// /metrics behind `Authorization: Bearer <token>` (scrapers keep
	// unauthenticated access to the exposition; everything operational
	// needs the token).
	Token string
	// EnablePprof mounts net/http/pprof under /debug/pprof/.
	EnablePprof bool
	// Registry backs /metrics and /v1/metrics.json (default
	// metrics.DefaultRegistry).
	Registry *metrics.Registry
	// Tracer backs /v1/trace (default trace.Default).
	Tracer *trace.Tracer
	// BusRing is the event replay-ring capacity (default
	// DefaultRingSize).
	BusRing int
	// SubscriberBuffer is each SSE subscriber's channel depth (default
	// 64). A subscriber further behind than this drops events.
	SubscriberBuffer int
	// HeartbeatMS is the SSE keepalive-comment period (default 15000).
	HeartbeatMS int
	// ShutdownGraceMS bounds Shutdown's drain (default 5000).
	ShutdownGraceMS int
}

func (c Config) withDefaults() Config {
	if c.Registry == nil {
		c.Registry = metrics.DefaultRegistry
	}
	if c.Tracer == nil {
		c.Tracer = trace.Default
	}
	if c.HeartbeatMS <= 0 {
		c.HeartbeatMS = 15000
	}
	if c.ShutdownGraceMS <= 0 {
		c.ShutdownGraceMS = 5000
	}
	return c
}

// Control is the deployed world the management endpoints drive. Any
// field may be nil; endpoints needing a missing piece answer 503, so
// a metrics-only server (psfctl stats -http) mounts the same mux.
type Control struct {
	// Spec is the service specification (/v1/spec, request validation).
	Spec *spec.Service
	// Server plans and deploys (/v1/plan, /v1/sessions).
	Server *smock.GenericServer
	// Engine realizes deployments and tears instances down.
	Engine *smock.Engine
	// Lookup is the namespace session heads are published in.
	Lookup *smock.Lookup
	// Controller is the adaptation loop sessions register with.
	Controller *adapt.Controller
	// Fleet, when set, exposes /v1/fleet/*.
	Fleet *fleet.Manager
	// Mon receives fault injections (/v1/net/link).
	Mon *netmon.Monitor
	// KillNode hard-kills a node's wrapper (/v1/nodes/{id}/kill);
	// deployments must observe it exactly as a crash.
	KillNode func(netmodel.NodeID) error
}

// apiSession is one deployment created through POST /v1/sessions.
type apiSession struct {
	sess    *adapt.Session
	service string
}

// Server mounts the operational API. Construct with New, then either
// Start (own listener + graceful Shutdown) or mount Handler() on an
// existing server.
type Server struct {
	cfg Config
	ctl Control
	bus *Bus
	mux *http.ServeMux

	httpSrv *http.Server

	latMu sync.Mutex
	lat   map[string]*metrics.ShardedHistogram // per-route latency

	mu       sync.Mutex
	ln       net.Listener
	sessions map[string]*apiSession
}

// New builds a server over a control surface. Attach event sources
// (AttachController, AttachFleet) before traffic.
func New(cfg Config, ctl Control) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:      cfg,
		ctl:      ctl,
		bus:      NewBus(cfg.BusRing),
		mux:      http.NewServeMux(),
		lat:      map[string]*metrics.ShardedHistogram{},
		sessions: map[string]*apiSession{},
	}
	s.routes()
	return s
}

// Bus returns the server's event bus (for in-process publishers).
func (s *Server) Bus() *Bus { return s.bus }

// Session returns the tracked adapt session deployed under name, if
// any — in-process callers (tests, psfctl) bind client endpoints to it.
func (s *Server) Session(name string) (*adapt.Session, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	as, ok := s.sessions[name]
	if !ok {
		return nil, false
	}
	return as.sess, true
}

// Handler returns the full middleware-wrapped handler (mountable on
// any http.Server).
func (s *Server) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !s.authorized(r) {
			w.Header().Set("WWW-Authenticate", "Bearer")
			http.Error(w, "unauthorized", http.StatusUnauthorized)
			return
		}
		s.mux.ServeHTTP(w, r)
	})
}

// authorized checks the bearer token; /healthz and /metrics stay open.
func (s *Server) authorized(r *http.Request) bool {
	if s.cfg.Token == "" || r.URL.Path == "/healthz" || r.URL.Path == "/metrics" {
		return true
	}
	auth := r.Header.Get("Authorization")
	const prefix = "Bearer "
	if len(auth) <= len(prefix) || auth[:len(prefix)] != prefix {
		return false
	}
	return subtle.ConstantTimeCompare([]byte(auth[len(prefix):]), []byte(s.cfg.Token)) == 1
}

// observe wraps a handler with per-endpoint latency and status
// instrumentation: api.requests{route,code} counters and an
// api.latency_ms{route} sharded histogram, both in the registry —
// the API measures itself with the same metrics it exposes.
func (s *Server) observe(route string, h http.HandlerFunc) http.HandlerFunc {
	s.latMu.Lock()
	sh, ok := s.lat[route]
	if !ok {
		sh = &metrics.ShardedHistogram{}
		s.lat[route] = sh
		s.cfg.Registry.RegisterHistogramFunc("api.latency_ms", sh.Snapshot,
			metrics.Label{Key: "route", Value: route})
	}
	s.latMu.Unlock()
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		h(sw, r)
		sh.Observe(float64(time.Since(start)) / float64(time.Millisecond))
		s.cfg.Registry.CounterL("api.requests",
			metrics.Label{Key: "route", Value: route},
			metrics.Label{Key: "code", Value: strconv.Itoa(sw.code)}).Inc()
	}
}

// statusWriter records the response code for instrumentation. Flush
// passthrough keeps SSE working through the wrapper.
type statusWriter struct {
	http.ResponseWriter
	code  int
	wrote bool
}

func (w *statusWriter) WriteHeader(code int) {
	if !w.wrote {
		w.code = code
		w.wrote = true
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Flush() {
	if fl, ok := w.ResponseWriter.(http.Flusher); ok {
		fl.Flush()
	}
}

// Start listens on cfg.Addr and serves in a background goroutine.
func (s *Server) Start() error {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return err
	}
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	s.httpSrv = &http.Server{Handler: s.Handler()}
	go s.httpSrv.Serve(ln) //nolint:errcheck // Serve returns ErrServerClosed on Shutdown
	return nil
}

// Addr returns the bound listen address ("" before Start).
func (s *Server) Addr() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Shutdown drains gracefully: a final shutdown event is published, the
// bus closes (every SSE handler returns), and the HTTP server stops
// accepting and waits for in-flight requests up to ShutdownGraceMS.
func (s *Server) Shutdown(ctx context.Context) error {
	s.bus.Publish(Event{Source: "api", Kind: "shutdown", AtMS: nowMS()})
	s.bus.Close()
	if s.httpSrv == nil {
		return nil
	}
	if _, ok := ctx.Deadline(); !ok {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx,
			time.Duration(s.cfg.ShutdownGraceMS)*time.Millisecond)
		defer cancel()
	}
	return s.httpSrv.Shutdown(ctx)
}

// nowMS is the event timestamp clock: wall milliseconds from process
// start (matching the RealScheduler's origin convention).
var processStart = time.Now()

func nowMS() float64 {
	return float64(time.Since(processStart)) / float64(time.Millisecond)
}

// routes mounts every endpoint.
func (s *Server) routes() {
	// Observability.
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	s.mux.HandleFunc("GET /metrics", s.observe("/metrics", s.handleMetricsProm))
	s.mux.HandleFunc("GET /v1/metrics.json", s.observe("/v1/metrics.json", func(w http.ResponseWriter, r *http.Request) {
		s.cfg.Registry.ServeHTTP(w, r)
	}))
	s.mux.HandleFunc("GET /v1/trace", s.observe("/v1/trace", s.handleTrace))
	s.mux.HandleFunc("GET /v1/events", s.handleEvents) // SSE: long-lived, not latency-observed

	// Management.
	s.mux.HandleFunc("GET /v1/spec", s.observe("/v1/spec", s.handleSpecGet))
	s.mux.HandleFunc("POST /v1/spec/validate", s.observe("/v1/spec/validate", s.handleSpecValidate))
	s.mux.HandleFunc("POST /v1/plan", s.observe("/v1/plan", s.handlePlan))
	s.mux.HandleFunc("POST /v1/sessions", s.observe("/v1/sessions", s.handleSessionCreate))
	s.mux.HandleFunc("GET /v1/sessions", s.observe("/v1/sessions", s.handleSessionList))
	s.mux.HandleFunc("GET /v1/sessions/{name}", s.observe("/v1/sessions/{name}", s.handleSessionGet))
	s.mux.HandleFunc("DELETE /v1/sessions/{name}", s.observe("/v1/sessions/{name}", s.handleSessionDelete))
	s.mux.HandleFunc("POST /v1/sessions/{name}/adapt", s.observe("/v1/sessions/{name}/adapt", s.handleSessionAdapt))
	s.mux.HandleFunc("POST /v1/nodes/{id}/kill", s.observe("/v1/nodes/{id}/kill", s.handleNodeKill))
	s.mux.HandleFunc("POST /v1/net/link", s.observe("/v1/net/link", s.handleNetLink))
	s.mux.HandleFunc("GET /v1/fleet/sessions", s.observe("/v1/fleet/sessions", s.handleFleetSessions))
	s.mux.HandleFunc("GET /v1/fleet/shards", s.observe("/v1/fleet/shards", s.handleFleetShards))

	if s.cfg.EnablePprof {
		s.mux.HandleFunc("/debug/pprof/", pprof.Index)
		s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
}
