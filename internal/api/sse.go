package api

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// handleEvents streams the bus over Server-Sent Events. Each event is
// one `id:`/`event:`/`data:` frame whose data is the Event as JSON and
// whose id is the bus sequence number; a reconnecting client sends
// Last-Event-ID and missed events still in the replay ring are
// re-delivered before the live stream resumes. Filters: ?session=name
// scopes to one session (plus session-less events), ?kind=a,b to an
// event-kind set.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	filter := Filter{Session: r.URL.Query().Get("session")}
	if kinds := r.URL.Query().Get("kind"); kinds != "" {
		filter.Kinds = map[string]bool{}
		for _, k := range strings.Split(kinds, ",") {
			if k = strings.TrimSpace(k); k != "" {
				filter.Kinds[k] = true
			}
		}
	}
	var after uint64
	if id := r.Header.Get("Last-Event-ID"); id != "" {
		if v, err := strconv.ParseUint(id, 10, 64); err == nil {
			after = v
		}
	} else if id := r.URL.Query().Get("after"); id != "" {
		if v, err := strconv.ParseUint(id, 10, 64); err == nil {
			after = v
		}
	}

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	fmt.Fprint(w, "retry: 1000\n\n")

	// Subscribe before replaying so no event falls between the ring
	// read and the live stream; the replay may then overlap the live
	// channel's head, so frames below lastSent are skipped.
	sub := s.bus.Subscribe(filter, s.cfg.SubscriberBuffer)
	defer sub.Cancel()
	var lastSent uint64
	for _, e := range s.bus.ReplayAfter(after, filter) {
		writeSSE(w, e)
		lastSent = e.Seq
	}
	fl.Flush()

	heartbeat := time.Duration(s.cfg.HeartbeatMS) * time.Millisecond
	ticker := time.NewTicker(heartbeat)
	defer ticker.Stop()
	ctx := r.Context()
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
			// Comment frames keep proxies from idling the connection out
			// and let the handler notice a dead client between events.
			if _, err := fmt.Fprint(w, ": hb\n\n"); err != nil {
				return
			}
			fl.Flush()
		case e, ok := <-sub.C:
			if !ok {
				// Bus closed: tell the client this is a shutdown, not a
				// hiccup to retry into.
				fmt.Fprint(w, "event: bye\ndata: {}\n\n")
				fl.Flush()
				return
			}
			if e.Seq <= lastSent {
				continue
			}
			writeSSE(w, e)
			lastSent = e.Seq
			// Drain whatever else is ready before flushing once.
		drain:
			for {
				select {
				case e, ok := <-sub.C:
					if !ok {
						fmt.Fprint(w, "event: bye\ndata: {}\n\n")
						fl.Flush()
						return
					}
					if e.Seq > lastSent {
						writeSSE(w, e)
						lastSent = e.Seq
					}
				default:
					break drain
				}
			}
			fl.Flush()
		}
	}
}

// writeSSE renders one event frame.
func writeSSE(w http.ResponseWriter, e Event) {
	data, err := json.Marshal(e)
	if err != nil {
		return // Event is plain scalars; cannot happen
	}
	fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", e.Seq, e.Kind, data)
}
