// Package api is the operational HTTP control plane: a live event bus
// fanning adapt/fleet control-loop events out to SSE subscribers, a
// Prometheus text exposition of the metrics registry, span-tree
// inspection, opt-in pprof, and a management API (submit a spec, plan,
// deploy, adapt, kill a node) — the seam §6 of the paper leaves open:
// a partitionable service that is managed while it runs, through the
// same surface a human or a fleet orchestrator would use.
//
// Layering: adapt and fleet never import this package. They publish
// through their existing callback sinks (Controller.OnEvent,
// Manager.OnEvent); AttachController/AttachFleet adapt those into bus
// events. The bus itself never blocks a publisher — slow subscribers
// drop (counted per subscriber), because the adaptation loop's timing
// must not depend on an observer's read rate.
package api

import (
	"sync"
	"sync/atomic"

	"partsvc/internal/metrics"
)

// Event is one control-plane occurrence, as streamed over /v1/events.
// Seq is assigned by the bus, strictly increasing, and doubles as the
// SSE event id for Last-Event-ID resume.
type Event struct {
	Seq     uint64  `json:"seq"`
	AtMS    float64 `json:"at_ms"`
	Source  string  `json:"source"` // "adapt", "fleet", or "api"
	Kind    string  `json:"kind"`
	Session string  `json:"session,omitempty"`
	Wave    uint64  `json:"wave,omitempty"`
	Detail  string  `json:"detail,omitempty"`
}

// Filter selects a subset of the stream. Zero value matches everything.
type Filter struct {
	// Session, when non-empty, matches only that session's events plus
	// session-less events (waves, suspicion — fleet- or node-scoped
	// facts a session watcher still needs).
	Session string
	// Kinds, when non-empty, is the set of accepted Kind values.
	Kinds map[string]bool
}

// Match reports whether the filter accepts e.
func (f Filter) Match(e Event) bool {
	if f.Session != "" && e.Session != "" && e.Session != f.Session {
		return false
	}
	if len(f.Kinds) > 0 && !f.Kinds[e.Kind] {
		return false
	}
	return true
}

// Subscription is one subscriber's view of the bus. Events arrive on C;
// the channel closes when the subscription is canceled or the bus
// closes. A subscriber that falls behind loses events (Dropped counts
// them) — it never backpressures publishers.
type Subscription struct {
	C       <-chan Event
	ch      chan Event
	bus     *Bus
	id      int
	filter  Filter
	dropped atomic.Uint64
}

// Dropped returns the number of events this subscriber lost to a full
// buffer.
func (s *Subscription) Dropped() uint64 { return s.dropped.Load() }

// Cancel detaches the subscription and closes its channel. Idempotent;
// safe to race with bus Close.
func (s *Subscription) Cancel() {
	b := s.bus
	b.mu.Lock()
	defer b.mu.Unlock()
	if _, ok := b.subs[s.id]; ok {
		delete(b.subs, s.id)
		close(s.ch)
	}
}

// Bus is the bounded fan-out event hub. Publish assigns sequence
// numbers, retains events in a replay ring (for SSE reconnects), and
// delivers to every matching subscriber without ever blocking. All
// channel sends and closes happen under the bus mutex, so a send can
// never race a close.
type Bus struct {
	published *metrics.Counter
	dropped   *metrics.Counter

	mu     sync.Mutex
	seq    uint64
	subs   map[int]*Subscription
	nextID int
	ring   []Event // circular; ringLen valid entries ending before ringAt
	ringAt int
	closed bool
}

// DefaultRingSize is the replay-ring capacity of NewBus(0).
const DefaultRingSize = 1024

// NewBus returns a bus retaining the last ringSize events for replay
// (0 means DefaultRingSize). Counters land in the default registry as
// api.events_published / api.events_dropped.
func NewBus(ringSize int) *Bus {
	if ringSize <= 0 {
		ringSize = DefaultRingSize
	}
	reg := metrics.DefaultRegistry
	return &Bus{
		published: reg.Counter("api.events_published"),
		dropped:   reg.Counter("api.events_dropped"),
		subs:      map[int]*Subscription{},
		ring:      make([]Event, 0, ringSize),
	}
}

// Publish stamps e with the next sequence number and fans it out.
// Returns the stamped event. No-op (returning e unstamped) after Close.
func (b *Bus) Publish(e Event) Event {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return e
	}
	b.seq++
	e.Seq = b.seq
	if len(b.ring) < cap(b.ring) {
		b.ring = append(b.ring, e)
	} else {
		b.ring[b.ringAt] = e
		b.ringAt = (b.ringAt + 1) % cap(b.ring)
	}
	for _, s := range b.subs {
		if !s.filter.Match(e) {
			continue
		}
		select {
		case s.ch <- e:
		default:
			s.dropped.Add(1)
			b.dropped.Inc()
		}
	}
	b.mu.Unlock()
	b.published.Inc()
	return e
}

// Subscribe attaches a subscriber with the given filter and channel
// buffer (0 means 64). On a closed bus the returned subscription's
// channel is already closed.
func (b *Bus) Subscribe(f Filter, buf int) *Subscription {
	if buf <= 0 {
		buf = 64
	}
	ch := make(chan Event, buf)
	s := &Subscription{C: ch, ch: ch, bus: b, filter: f}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		close(ch)
		return s
	}
	b.nextID++
	s.id = b.nextID
	b.subs[s.id] = s
	return s
}

// ReplayAfter returns the ring's events with Seq > after that match f,
// in sequence order. A reconnecting SSE client calls this with its
// Last-Event-ID; an id older than the ring simply yields what the ring
// still holds (the stream is best-effort, not a durable log).
func (b *Bus) ReplayAfter(after uint64, f Filter) []Event {
	b.mu.Lock()
	defer b.mu.Unlock()
	var out []Event
	n := len(b.ring)
	for i := 0; i < n; i++ {
		e := b.ring[(b.ringAt+i)%n]
		if e.Seq > after && f.Match(e) {
			out = append(out, e)
		}
	}
	return out
}

// Seq returns the last assigned sequence number.
func (b *Bus) Seq() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.seq
}

// Close shuts the bus: every subscriber channel closes, later Publish
// calls are dropped, later Subscribes get a closed channel. Idempotent.
func (b *Bus) Close() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return
	}
	b.closed = true
	for id, s := range b.subs {
		delete(b.subs, id)
		close(s.ch)
	}
}
