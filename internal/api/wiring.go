package api

import (
	"partsvc/internal/adapt"
	"partsvc/internal/fleet"
)

// AttachController wires an adaptation controller's event stream into
// the bus (and also to extra, when non-nil — psfctl keeps its stdout
// stream this way). Must be called before Controller.Start.
func (s *Server) AttachController(c *adapt.Controller, extra func(adapt.Event)) {
	bus := s.bus
	c.OnEvent(func(e adapt.Event) {
		bus.Publish(Event{
			AtMS: e.AtMS, Source: "adapt", Kind: e.Kind,
			Session: e.Session, Detail: e.Detail,
		})
		if extra != nil {
			extra(e)
		}
	})
}

// AttachFleet wires a fleet manager's event stream — per-session
// control events plus the manager-level wave-open/wave-close lifecycle
// (session "") — into the bus. OnWave stays free for report consumers
// (benchmarks). Must be called before Manager.Start.
func (s *Server) AttachFleet(m *fleet.Manager) {
	bus := s.bus
	m.OnEvent(func(session string, e fleet.Event) {
		bus.Publish(Event{
			AtMS: e.AtMS, Source: "fleet", Kind: e.Kind,
			Session: session, Wave: e.Wave, Detail: e.Detail,
		})
	})
}
