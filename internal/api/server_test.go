package api

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"partsvc/internal/metrics"
	"partsvc/internal/planner"
	"partsvc/internal/smock"
	"partsvc/internal/spec"
	"partsvc/internal/topology"
	"partsvc/internal/transport"
)

func doReq(t *testing.T, method, url, token string, body string) *http.Response {
	t.Helper()
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	if token != "" {
		req.Header.Set("Authorization", "Bearer "+token)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

func TestTokenAuth(t *testing.T) {
	_, ts := newTestServer(t, Config{Token: "s3cret"}, Control{})

	// Health and the Prometheus exposition stay open for probes and
	// scrapers; everything else needs the bearer token.
	if r := doReq(t, "GET", ts.URL+"/healthz", "", ""); r.StatusCode != 200 {
		t.Errorf("/healthz open: got %d", r.StatusCode)
	}
	if r := doReq(t, "GET", ts.URL+"/metrics", "", ""); r.StatusCode != 200 {
		t.Errorf("/metrics open: got %d", r.StatusCode)
	}
	r := doReq(t, "GET", ts.URL+"/v1/metrics.json", "", "")
	if r.StatusCode != http.StatusUnauthorized {
		t.Errorf("no token: got %d, want 401", r.StatusCode)
	}
	if r.Header.Get("WWW-Authenticate") == "" {
		t.Error("401 must carry WWW-Authenticate")
	}
	if r := doReq(t, "GET", ts.URL+"/v1/metrics.json", "wrong", ""); r.StatusCode != http.StatusUnauthorized {
		t.Errorf("bad token: got %d, want 401", r.StatusCode)
	}
	if r := doReq(t, "GET", ts.URL+"/v1/metrics.json", "s3cret", ""); r.StatusCode != 200 {
		t.Errorf("good token: got %d, want 200", r.StatusCode)
	}
}

func TestNotConfigured(t *testing.T) {
	_, ts := newTestServer(t, Config{}, Control{})
	for _, c := range []struct{ method, path, body string }{
		{"POST", "/v1/plan", `{"interface":"x","node":"y"}`},
		{"GET", "/v1/spec", ""},
		{"GET", "/v1/fleet/shards", ""},
		{"POST", "/v1/nodes/ny-1/kill", ""},
		{"POST", "/v1/net/link", `{"a":"x","b":"y","latency_ms":1,"bandwidth_mbps":1}`},
	} {
		if r := doReq(t, c.method, ts.URL+c.path, "", c.body); r.StatusCode != http.StatusServiceUnavailable {
			t.Errorf("%s %s on empty Control: got %d, want 503", c.method, c.path, r.StatusCode)
		}
	}
}

// planWorld is just enough deployed world to exercise request
// validation: a real spec, planner, and engine with one live node.
func planWorld(t *testing.T) Control {
	t.Helper()
	svc := spec.MailService()
	tr := transport.NewInProc()
	engine := smock.NewEngine(tr)
	wr := smock.NewNodeWrapper(topology.NYServer, tr, smock.NewRegistry(), transport.NewRealClock())
	engine.RegisterWrapper(wr)
	if _, err := wr.ServeControl(); err != nil {
		t.Fatal(err)
	}
	pl := planner.New(svc, topology.CaseStudy())
	return Control{Spec: svc, Server: smock.NewGenericServer(svc, pl, engine), Engine: engine}
}

func TestPlanRequestValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{}, planWorld(t))
	for _, c := range []struct {
		name, body string
		want       int
	}{
		{"unknown field", `{"iface":"x"}`, 400},
		{"not json", `not json`, 400},
		{"missing interface", `{"node":"ny-1"}`, 400},
		{"unknown interface", `{"interface":"nope","node":"ny-1"}`, 400},
		{"missing node", `{"interface":"ClientInterface"}`, 400},
		{"dead node", `{"interface":"ClientInterface","node":"mars-1"}`, 400},
		{"negative rate", `{"interface":"ClientInterface","node":"ny-1","rate_rps":-1}`, 400},
		{"ok", `{"interface":"ClientInterface","node":"ny-1","user":"Alice","rate_rps":10}`, 200},
	} {
		r := doReq(t, "POST", ts.URL+"/v1/plan", "", c.body)
		if r.StatusCode != c.want {
			b, _ := io.ReadAll(r.Body)
			t.Errorf("%s: got %d, want %d (%s)", c.name, r.StatusCode, c.want, bytes.TrimSpace(b))
		}
	}
}

func TestSpecEndpoints(t *testing.T) {
	_, ts := newTestServer(t, Config{}, Control{Spec: spec.MailService()})
	r := doReq(t, "GET", ts.URL+"/v1/spec", "", "")
	if r.StatusCode != 200 || !strings.Contains(r.Header.Get("Content-Type"), "xml") {
		t.Fatalf("GET /v1/spec: %d %s", r.StatusCode, r.Header.Get("Content-Type"))
	}
	xml, err := io.ReadAll(r.Body)
	if err != nil {
		t.Fatal(err)
	}

	// The served spec round-trips through its own validator.
	r = doReq(t, "POST", ts.URL+"/v1/spec/validate", "", string(xml))
	if r.StatusCode != 200 {
		t.Fatalf("validate served spec: %d", r.StatusCode)
	}
	var out struct {
		Valid      bool `json:"valid"`
		Components int  `json:"components"`
	}
	if err := json.NewDecoder(r.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if !out.Valid || out.Components == 0 {
		t.Errorf("validate: %+v", out)
	}
	if r := doReq(t, "POST", ts.URL+"/v1/spec/validate", "", "<garbage"); r.StatusCode != 400 {
		t.Errorf("garbage spec: got %d, want 400", r.StatusCode)
	}
}

// TestEndpointMetricsAndExposition: the API measures itself — request
// counters and latency histograms land in the registry and come back
// out of /metrics in lint-clean Prometheus text format.
func TestEndpointMetricsAndExposition(t *testing.T) {
	reg := metrics.NewRegistry()
	_, ts := newTestServer(t, Config{Registry: reg}, Control{})

	doReq(t, "GET", ts.URL+"/v1/metrics.json", "", "")
	doReq(t, "GET", ts.URL+"/v1/metrics.json", "", "")
	doReq(t, "POST", ts.URL+"/v1/plan", "", `{}`) // 503: planner not configured

	r := doReq(t, "GET", ts.URL+"/metrics", "", "")
	if r.StatusCode != 200 {
		t.Fatalf("/metrics: %d", r.StatusCode)
	}
	if ct := r.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("Content-Type = %q, want the 0.0.4 text format", ct)
	}
	body, err := io.ReadAll(r.Body)
	if err != nil {
		t.Fatal(err)
	}
	if err := metrics.LintPrometheusText(bytes.NewReader(body)); err != nil {
		t.Fatalf("exposition fails lint: %v\n%s", err, body)
	}
	for _, want := range []string{
		`partsvc_api_requests_total{code="200",route="/v1/metrics.json"} 2`,
		`partsvc_api_requests_total{code="503",route="/v1/plan"} 1`,
		`partsvc_api_latency_ms_count{route="/v1/metrics.json"} 2`,
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

func TestTraceEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{}, Control{})
	r := doReq(t, "GET", ts.URL+"/v1/trace", "", "")
	if r.StatusCode != 200 {
		t.Fatalf("/v1/trace: %d", r.StatusCode)
	}
	b, _ := io.ReadAll(r.Body)
	if !strings.Contains(string(b), "spans retained") {
		t.Errorf("trace text = %q", b)
	}
	r = doReq(t, "GET", ts.URL+"/v1/trace?format=json", "", "")
	if ct := r.Header.Get("Content-Type"); !strings.Contains(ct, "json") {
		t.Errorf("trace json Content-Type = %q", ct)
	}
}

func TestPprofGating(t *testing.T) {
	_, off := newTestServer(t, Config{}, Control{})
	if r := doReq(t, "GET", off.URL+"/debug/pprof/", "", ""); r.StatusCode != http.StatusNotFound {
		t.Errorf("pprof off: got %d, want 404", r.StatusCode)
	}
	_, on := newTestServer(t, Config{EnablePprof: true}, Control{})
	if r := doReq(t, "GET", on.URL+"/debug/pprof/", "", ""); r.StatusCode != 200 {
		t.Errorf("pprof on: got %d, want 200", r.StatusCode)
	}
}

func TestSessionEndpointsWithoutWorld(t *testing.T) {
	_, ts := newTestServer(t, Config{}, Control{})
	if r := doReq(t, "GET", ts.URL+"/v1/sessions", "", ""); r.StatusCode != 200 {
		t.Errorf("empty session list: %d", r.StatusCode)
	}
	if r := doReq(t, "GET", ts.URL+"/v1/sessions/ghost", "", ""); r.StatusCode != http.StatusNotFound {
		t.Errorf("missing session: got %d, want 404", r.StatusCode)
	}
	if r := doReq(t, "DELETE", ts.URL+"/v1/sessions/ghost", "", ""); r.StatusCode != http.StatusNotFound {
		t.Errorf("delete missing session: got %d, want 404", r.StatusCode)
	}
}

// Compile-time check that the handler stack still satisfies the
// interfaces the SSE path needs when wrapped (Flusher passthrough).
var _ http.Flusher = (*statusWriter)(nil)
