package api

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"sort"

	"partsvc/internal/adapt"
	"partsvc/internal/netmodel"
	"partsvc/internal/planner"
	"partsvc/internal/smock"
	"partsvc/internal/spec"
	"partsvc/internal/trace"
)

// writeJSON renders one response body.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // client went away
}

// apiError is the uniform error body.
func apiError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// notConfigured answers for endpoints whose Control dependency is nil.
func notConfigured(w http.ResponseWriter, what string) {
	apiError(w, http.StatusServiceUnavailable, "%s not configured on this server", what)
}

// deploymentJSON is the wire form of a planner.Deployment. CapacityRPS
// can be +Inf (no finite bottleneck), which encoding/json rejects, so
// it rides as a pointer omitted when non-finite.
type deploymentJSON struct {
	Placements        []string `json:"placements"`
	ExpectedLatencyMS float64  `json:"expected_latency_ms"`
	CapacityRPS       *float64 `json:"capacity_rps,omitempty"`
	NewComponents     int      `json:"new_components"`
	Summary           string   `json:"summary"`
}

func depJSON(dep *planner.Deployment) *deploymentJSON {
	if dep == nil {
		return nil
	}
	out := &deploymentJSON{
		ExpectedLatencyMS: dep.ExpectedLatencyMS,
		NewComponents:     dep.NewComponents,
		Summary:           dep.String(),
	}
	for _, p := range dep.Placements {
		out.Placements = append(out.Placements, p.Key())
	}
	if !math.IsInf(dep.CapacityRPS, 0) && !math.IsNaN(dep.CapacityRPS) {
		c := dep.CapacityRPS
		out.CapacityRPS = &c
	}
	return out
}

// planRequest is the body of POST /v1/plan and POST /v1/sessions.
type planRequest struct {
	Name      string  `json:"name,omitempty"`    // sessions only
	Service   string  `json:"service,omitempty"` // lookup name; default "head-"+Name
	Interface string  `json:"interface"`
	Node      string  `json:"node"`
	User      string  `json:"user"`
	RateRPS   float64 `json:"rate_rps"`
	// Backend selects the planning algorithm for /v1/plan dry runs:
	// "exhaustive", "dp", or "solver" ("" = the server's configured
	// default). Sessions always deploy through the server default.
	Backend string `json:"backend,omitempty"`
	// Objective is "latency" (default), "cost", or "headroom".
	Objective string `json:"objective,omitempty"`
}

// decodeBody strictly decodes a JSON body into v.
func decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		apiError(w, http.StatusBadRequest, "bad request body: %v", err)
		return false
	}
	return true
}

// validatePlanReq checks the request against the spec and deployed
// world; returns the planner request.
func (s *Server) validatePlanReq(w http.ResponseWriter, pr planRequest) (planner.Request, bool) {
	if pr.Interface == "" {
		apiError(w, http.StatusBadRequest, "interface is required")
		return planner.Request{}, false
	}
	if s.ctl.Spec != nil {
		if _, ok := s.ctl.Spec.Interface(pr.Interface); !ok {
			apiError(w, http.StatusBadRequest, "unknown interface %q", pr.Interface)
			return planner.Request{}, false
		}
	}
	if pr.Node == "" {
		apiError(w, http.StatusBadRequest, "node is required")
		return planner.Request{}, false
	}
	if s.ctl.Engine != nil {
		if _, ok := s.ctl.Engine.ControlAddrs()[netmodel.NodeID(pr.Node)]; !ok {
			apiError(w, http.StatusBadRequest, "unknown or dead node %q", pr.Node)
			return planner.Request{}, false
		}
	}
	if pr.RateRPS < 0 {
		apiError(w, http.StatusBadRequest, "rate_rps must be >= 0")
		return planner.Request{}, false
	}
	obj, err := planner.ParseObjective(pr.Objective)
	if err != nil {
		apiError(w, http.StatusBadRequest, "%v", err)
		return planner.Request{}, false
	}
	return planner.Request{
		Interface:  pr.Interface,
		ClientNode: netmodel.NodeID(pr.Node),
		User:       pr.User,
		RateRPS:    pr.RateRPS,
		Objective:  obj,
	}, true
}

func (s *Server) handleMetricsProm(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.cfg.Registry.WritePrometheus(w) //nolint:errcheck // scrape abort
}

func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	spans := s.cfg.Tracer.Spans()
	if r.URL.Query().Get("format") == "json" {
		writeJSON(w, http.StatusOK, spans)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintf(w, "%d spans retained (total %d recorded)\n",
		len(spans), s.cfg.Tracer.Total())
	fmt.Fprint(w, trace.Tree(spans))
}

func (s *Server) handleSpecGet(w http.ResponseWriter, _ *http.Request) {
	if s.ctl.Spec == nil {
		notConfigured(w, "spec")
		return
	}
	w.Header().Set("Content-Type", "application/xml")
	s.ctl.Spec.EncodeXML(w) //nolint:errcheck // client went away
}

func (s *Server) handleSpecValidate(w http.ResponseWriter, r *http.Request) {
	svc, err := spec.DecodeXML(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		apiError(w, http.StatusBadRequest, "decode: %v", err)
		return
	}
	if err := svc.Validate(); err != nil {
		writeJSON(w, http.StatusUnprocessableEntity, map[string]any{
			"valid": false, "error": err.Error(),
		})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"valid": true, "service": svc.Name,
		"components": len(svc.Components), "interfaces": len(svc.Interfaces),
	})
}

// handlePlan runs the planner without deploying (a dry run of
// POST /v1/sessions).
func (s *Server) handlePlan(w http.ResponseWriter, r *http.Request) {
	if s.ctl.Server == nil {
		notConfigured(w, "planner")
		return
	}
	var pr planRequest
	if !decodeBody(w, r, &pr) {
		return
	}
	req, ok := s.validatePlanReq(w, pr)
	if !ok {
		return
	}
	var dep *planner.Deployment
	var err error
	if pr.Backend == "" {
		dep, err = s.ctl.Server.PlanOnly(req)
	} else {
		var b planner.Backend
		if b, err = planner.ParseBackend(pr.Backend); err != nil {
			apiError(w, http.StatusBadRequest, "%v", err)
			return
		}
		dep, err = s.ctl.Server.PlanOnlyVia(req, b)
	}
	if err != nil {
		apiError(w, http.StatusUnprocessableEntity, "plan: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"deployment": depJSON(dep)})
}

// sessionJSON is the wire form of one tracked session.
type sessionJSON struct {
	Name       string          `json:"name"`
	Service    string          `json:"service,omitempty"`
	HeadAddr   string          `json:"head_addr"`
	Deployment *deploymentJSON `json:"deployment"`
}

func sessJSON(as *apiSession) sessionJSON {
	return sessionJSON{
		Name:       as.sess.Name,
		Service:    as.service,
		HeadAddr:   as.sess.HeadAddr(),
		Deployment: depJSON(as.sess.Deployment()),
	}
}

// handleSessionCreate deploys a chain for the request, publishes the
// head in the lookup namespace, and registers the session with the
// adaptation controller — the HTTP form of GenericServer.Access plus
// Controller.Track.
func (s *Server) handleSessionCreate(w http.ResponseWriter, r *http.Request) {
	if s.ctl.Server == nil || s.ctl.Lookup == nil {
		notConfigured(w, "deployment engine")
		return
	}
	var pr planRequest
	if !decodeBody(w, r, &pr) {
		return
	}
	if pr.Name == "" {
		apiError(w, http.StatusBadRequest, "name is required")
		return
	}
	req, ok := s.validatePlanReq(w, pr)
	if !ok {
		return
	}
	service := pr.Service
	if service == "" {
		service = "head-" + pr.Name
	}
	s.mu.Lock()
	if _, dup := s.sessions[pr.Name]; dup {
		s.mu.Unlock()
		apiError(w, http.StatusConflict, "session %q already exists", pr.Name)
		return
	}
	s.mu.Unlock()

	headAddr, dep, err := s.ctl.Server.Access(req)
	if err != nil {
		apiError(w, http.StatusUnprocessableEntity, "deploy: %v", err)
		return
	}
	if err := s.ctl.Lookup.Register(smock.Entry{Service: service, ServerAddr: headAddr}); err != nil {
		apiError(w, http.StatusInternalServerError, "publish: %v", err)
		return
	}
	as := &apiSession{sess: adapt.NewSession(pr.Name, service, req, dep, headAddr), service: service}
	s.mu.Lock()
	s.sessions[pr.Name] = as
	s.mu.Unlock()
	if s.ctl.Controller != nil {
		s.ctl.Controller.Track(as.sess)
	}
	s.bus.Publish(Event{
		Source: "api", Kind: "deployed", Session: pr.Name, AtMS: nowMS(),
		Detail: dep.String(),
	})
	writeJSON(w, http.StatusCreated, sessJSON(as))
}

func (s *Server) handleSessionList(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	out := make([]sessionJSON, 0, len(s.sessions))
	for _, as := range s.sessions {
		out = append(out, sessJSON(as))
	}
	s.mu.Unlock()
	sortSessions(out)
	writeJSON(w, http.StatusOK, map[string]any{"sessions": out})
}

func (s *Server) handleSessionGet(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	s.mu.Lock()
	as, ok := s.sessions[name]
	s.mu.Unlock()
	if !ok {
		apiError(w, http.StatusNotFound, "no session %q", name)
		return
	}
	writeJSON(w, http.StatusOK, sessJSON(as))
}

// handleSessionDelete untracks the session, withdraws its lookup
// entry, and tears down instances it exclusively owns: placements
// still marked Reused were someone else's first (the shared primary,
// another session's view) and stay up, as do placements any other API
// session's current deployment touches.
func (s *Server) handleSessionDelete(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	s.mu.Lock()
	as, ok := s.sessions[name]
	if ok {
		delete(s.sessions, name)
	}
	others := make([]*apiSession, 0, len(s.sessions))
	for _, o := range s.sessions {
		others = append(others, o)
	}
	s.mu.Unlock()
	if !ok {
		apiError(w, http.StatusNotFound, "no session %q", name)
		return
	}
	if s.ctl.Controller != nil {
		s.ctl.Controller.Untrack(name)
	}
	if s.ctl.Lookup != nil && as.service != "" {
		s.ctl.Lookup.Deregister(as.service)
	}
	torn := 0
	if dep := as.sess.Deployment(); dep != nil && s.ctl.Engine != nil {
		shared := map[string]bool{}
		for _, o := range others {
			if od := o.sess.Deployment(); od != nil {
				for _, p := range od.Placements {
					shared[p.Key()] = true
				}
			}
		}
		for _, p := range dep.Placements {
			if p.Reused || shared[p.Key()] {
				continue
			}
			if err := s.ctl.Engine.Teardown(p); err == nil {
				torn++
			}
			if s.ctl.Server != nil {
				s.ctl.Server.Forget(p)
			}
		}
	}
	s.bus.Publish(Event{
		Source: "api", Kind: "teardown", Session: name, AtMS: nowMS(),
		Detail: fmt.Sprintf("instances torn down: %d", torn),
	})
	writeJSON(w, http.StatusOK, map[string]any{"deleted": name, "instances_torn_down": torn})
}

// handleSessionAdapt forces an immediate adaptation pass (no debounce
// wait) over every tracked session.
func (s *Server) handleSessionAdapt(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if s.ctl.Controller == nil {
		notConfigured(w, "adaptation controller")
		return
	}
	s.mu.Lock()
	_, ok := s.sessions[name]
	s.mu.Unlock()
	if !ok {
		apiError(w, http.StatusNotFound, "no session %q", name)
		return
	}
	s.bus.Publish(Event{Source: "api", Kind: "adapt-requested", Session: name, AtMS: nowMS()})
	s.ctl.Controller.Kick()
	writeJSON(w, http.StatusAccepted, map[string]any{"adapting": name})
}

// handleNodeKill hard-kills a node through the Control hook — the
// HTTP form of pulling its power. Recovery is the controller's job.
func (s *Server) handleNodeKill(w http.ResponseWriter, r *http.Request) {
	id := netmodel.NodeID(r.PathValue("id"))
	if s.ctl.KillNode == nil {
		notConfigured(w, "node kill hook")
		return
	}
	if s.ctl.Engine != nil {
		if _, ok := s.ctl.Engine.ControlAddrs()[id]; !ok {
			apiError(w, http.StatusNotFound, "unknown or already-dead node %q", id)
			return
		}
	}
	if err := s.ctl.KillNode(id); err != nil {
		apiError(w, http.StatusInternalServerError, "kill %s: %v", id, err)
		return
	}
	s.bus.Publish(Event{
		Source: "api", Kind: "node-killed", AtMS: nowMS(), Detail: string(id),
	})
	writeJSON(w, http.StatusOK, map[string]any{"killed": string(id)})
}

// linkRequest is the body of POST /v1/net/link (fault/repair
// injection via the monitor).
type linkRequest struct {
	A             string  `json:"a"`
	B             string  `json:"b"`
	LatencyMS     float64 `json:"latency_ms"`
	BandwidthMbps float64 `json:"bandwidth_mbps"`
	Secure        *bool   `json:"secure,omitempty"`
}

func (s *Server) handleNetLink(w http.ResponseWriter, r *http.Request) {
	if s.ctl.Mon == nil {
		notConfigured(w, "network monitor")
		return
	}
	var lr linkRequest
	if !decodeBody(w, r, &lr) {
		return
	}
	if lr.A == "" || lr.B == "" || lr.LatencyMS <= 0 || lr.BandwidthMbps <= 0 {
		apiError(w, http.StatusBadRequest, "a, b, latency_ms > 0 and bandwidth_mbps > 0 are required")
		return
	}
	if err := s.ctl.Mon.ReportLink(netmodel.NodeID(lr.A), netmodel.NodeID(lr.B),
		lr.LatencyMS, lr.BandwidthMbps, lr.Secure); err != nil {
		apiError(w, http.StatusUnprocessableEntity, "report link: %v", err)
		return
	}
	s.bus.Publish(Event{
		Source: "api", Kind: "link-reported", AtMS: nowMS(),
		Detail: fmt.Sprintf("%s~%s latency=%.0fms bw=%.1fMbps", lr.A, lr.B, lr.LatencyMS, lr.BandwidthMbps),
	})
	writeJSON(w, http.StatusOK, map[string]any{"reported": lr.A + "~" + lr.B})
}

func (s *Server) handleFleetSessions(w http.ResponseWriter, _ *http.Request) {
	if s.ctl.Fleet == nil {
		notConfigured(w, "fleet manager")
		return
	}
	type fleetSessionJSON struct {
		Name       string `json:"name"`
		Shard      int    `json:"shard"`
		Deployment string `json:"deployment"`
	}
	sessions := s.ctl.Fleet.Sessions()
	out := make([]fleetSessionJSON, len(sessions))
	for i, fs := range sessions {
		dep := "<none>"
		if d := fs.Deployment(); d != nil {
			dep = d.String()
		}
		out[i] = fleetSessionJSON{Name: fs.Name, Shard: fs.Shard(), Deployment: dep}
	}
	writeJSON(w, http.StatusOK, map[string]any{"sessions": out})
}

func (s *Server) handleFleetShards(w http.ResponseWriter, _ *http.Request) {
	if s.ctl.Fleet == nil {
		notConfigured(w, "fleet manager")
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"shards":             s.ctl.Fleet.Shards(),
		"sessions_per_shard": s.ctl.Fleet.SessionsPerShard(),
		"instances_shared":   s.ctl.Fleet.Instances(),
	})
}

// sortSessions orders session listings by name for stable output.
func sortSessions(list []sessionJSON) {
	sort.Slice(list, func(i, j int) bool { return list[i].Name < list[j].Name })
}
