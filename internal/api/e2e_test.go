package api_test

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"partsvc/internal/adapt"
	"partsvc/internal/api"
	"partsvc/internal/mail"
	"partsvc/internal/metrics"
	"partsvc/internal/netmodel"
	"partsvc/internal/netmon"
	"partsvc/internal/planner"
	"partsvc/internal/seccrypto"
	"partsvc/internal/smock"
	"partsvc/internal/spec"
	"partsvc/internal/topology"
	"partsvc/internal/transport"
)

// apiWorld is the full case study wired for the operational API: the
// same deployed world as the adapt e2e tests, but every control action
// — deploy, kill, inspect — goes over HTTP.
type apiWorld struct {
	tr       transport.Transport
	net      *netmodel.Network
	mon      *netmon.Monitor
	keys     *seccrypto.KeyRing
	primary  *mail.Server
	engine   *smock.Engine
	gs       *smock.GenericServer
	lookup   *smock.Lookup
	wrappers map[netmodel.NodeID]*smock.NodeWrapper
	ctrl     *adapt.Controller
	srv      *api.Server
	base     string
}

func newAPIWorld(t *testing.T) *apiWorld {
	t.Helper()
	w := &apiWorld{
		tr: transport.NewInProc(), keys: seccrypto.NewKeyRing(),
		wrappers: map[netmodel.NodeID]*smock.NodeWrapper{},
	}
	clock := transport.NewRealClock()
	w.primary = mail.NewServer(w.keys, clock)
	for _, u := range []string{"Alice", "Bob", "Carol"} {
		if err := w.primary.CreateAccount(u); err != nil {
			t.Fatal(err)
		}
	}
	reg := smock.NewRegistry()
	if err := mail.RegisterFactories(reg, &mail.ServiceEnv{Primary: w.primary, Keys: w.keys}); err != nil {
		t.Fatal(err)
	}
	w.net = topology.CaseStudy()
	w.mon = netmon.New(w.net)
	w.engine = smock.NewEngine(w.tr)
	for _, node := range w.net.Nodes() {
		wr := smock.NewNodeWrapper(node.ID, w.tr, reg, clock)
		w.engine.RegisterWrapper(wr)
		if _, err := wr.ServeControl(); err != nil {
			t.Fatal(err)
		}
		w.wrappers[node.ID] = wr
	}
	addr, err := w.wrappers[topology.NYServer].Install(smock.InstallOrder{
		Component: spec.CompMailServer, InstanceID: "mail-primary",
	})
	if err != nil {
		t.Fatal(err)
	}
	svc := spec.MailService()
	pl := planner.New(svc, w.net)
	msPlace, err := pl.PrimaryPlacement(spec.CompMailServer, topology.NYServer)
	if err != nil {
		t.Fatal(err)
	}
	pl.AddExisting(msPlace)
	w.engine.AdoptInstance(msPlace, addr)
	w.gs = smock.NewGenericServer(svc, pl, w.engine)
	w.lookup = smock.NewLookup()
	w.engine.SetLookup(w.lookup)

	w.ctrl = adapt.New(adapt.Config{
		DebounceMS: 20, ProbeIntervalMS: 25, ProbeTimeoutMS: 500,
		SuspicionThreshold: 2, DrainMS: 40,
	}, w.mon, &adapt.EngineExecutor{
		Server: w.gs, Engine: w.engine, Lookup: w.lookup,
		Transport: w.tr, Spec: svc,
	}, adapt.NewRealScheduler())
	w.ctrl.SetProber(adapt.NewTransportProber(w.tr), w.engine.ControlAddrs)

	w.srv = api.New(api.Config{Addr: "127.0.0.1:0", Registry: metrics.NewRegistry()}, api.Control{
		Spec: svc, Server: w.gs, Engine: w.engine, Lookup: w.lookup,
		Controller: w.ctrl, Mon: w.mon,
		KillNode: func(id netmodel.NodeID) error {
			wr, ok := w.wrappers[id]
			if !ok {
				return fmt.Errorf("no wrapper for %s", id)
			}
			wr.Close()
			return nil
		},
	})
	w.srv.AttachController(w.ctrl, nil)
	w.ctrl.Start()
	t.Cleanup(w.ctrl.Stop)
	if err := w.srv.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		w.srv.Shutdown(ctx) //nolint:errcheck // best-effort test teardown
	})
	w.base = "http://" + w.srv.Addr()
	return w
}

// post sends a JSON body and decodes the JSON reply into out (if any).
func (w *apiWorld) post(t *testing.T, path, body string, want int, out any) {
	t.Helper()
	resp, err := http.Post(w.base+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != want {
		t.Fatalf("POST %s: got %d, want %d (%s)", path, resp.StatusCode, want, raw)
	}
	if out != nil {
		if err := json.Unmarshal(raw, out); err != nil {
			t.Fatalf("POST %s: decode reply: %v (%s)", path, err, raw)
		}
	}
}

// deploySD warms up the San Diego chain (in-proc, as client traffic
// would) so Seattle anchors onto the sd-2 view.
func (w *apiWorld) deploySD(t *testing.T) {
	t.Helper()
	req := planner.Request{Interface: spec.IfaceClient, ClientNode: topology.SDClient, User: "Alice", RateRPS: 50}
	addr, _, err := w.gs.Access(req)
	if err != nil {
		t.Fatal(err)
	}
	ep, err := w.tr.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer ep.Close()
	alice := mail.NewClient("Alice", w.keys, mail.NewRemote(ep))
	if _, err := alice.Send("Bob", "warm up", []byte("x"), 2); err != nil {
		t.Fatal(err)
	}
}

// TestHTTPDrivenNodeCrashRecovery is the acceptance path: deploy a
// session over POST /v1/sessions, kill the node under it over
// POST /v1/nodes/{id}/kill mid-traffic, and watch the whole recovery —
// suspicion, replan, staged cutover, adapted — arrive on /v1/events,
// with zero client-visible RPC errors and a lint-clean /metrics at the
// end.
func TestHTTPDrivenNodeCrashRecovery(t *testing.T) {
	w := newAPIWorld(t)
	w.deploySD(t)

	// Watch the stream before acting so nothing is missed.
	sctx, scancel := context.WithCancel(context.Background())
	defer scancel()
	sreq, _ := http.NewRequestWithContext(sctx, "GET", w.base+"/v1/events", nil)
	sresp, err := http.DefaultClient.Do(sreq)
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	type frame struct {
		Kind    string `json:"kind"`
		Source  string `json:"source"`
		Session string `json:"session"`
		Detail  string `json:"detail"`
	}
	frames := make(chan frame, 256)
	go func() {
		br := bufio.NewReader(sresp.Body)
		for {
			line, err := br.ReadString('\n')
			if err != nil {
				close(frames)
				return
			}
			if !strings.HasPrefix(line, "data: ") {
				continue
			}
			var f frame
			if json.Unmarshal([]byte(strings.TrimSpace(line[len("data: "):])), &f) == nil {
				select {
				case frames <- f:
				default:
				}
			}
		}
	}()

	// Deploy Carol's Seattle session entirely over HTTP.
	var created struct {
		HeadAddr   string `json:"head_addr"`
		Deployment struct {
			Summary string `json:"summary"`
		} `json:"deployment"`
	}
	w.post(t, "/v1/sessions",
		`{"name":"carol","interface":"ClientInterface","node":"sea-2","user":"Carol","rate_rps":50}`,
		http.StatusCreated, &created)
	if !strings.Contains(created.Deployment.Summary, "ViewMailServer@sd-2") {
		t.Fatalf("Seattle chain must run through the sd-2 view initially: %s", created.Deployment.Summary)
	}

	// Bind a client through the session's rebind endpoint (in-proc: the
	// API deploys, the client dials what the lookup publishes).
	sess, ok := w.srv.Session("carol")
	if !ok {
		t.Fatal("API lost track of the session it just created")
	}
	reb := adapt.NewRebindEndpoint(w.tr, adapt.LookupResolver(w.lookup, "head-carol"), adapt.RetryConfig{
		MaxAttempts: 12, BackoffMS: 25,
	})
	sess.Bind(reb)
	carol := mail.NewViewClient("Carol", 2, w.keys.SubRing(2), mail.NewRemote(reb))
	if _, err := carol.Send("Alice", "before", []byte("pre-crash"), 2); err != nil {
		t.Fatalf("baseline send: %v", err)
	}

	// Kill the node hosting the view Seattle chains through — over HTTP
	// — and keep client traffic flowing the whole time.
	w.post(t, "/v1/nodes/sd-2/kill", "", http.StatusOK, nil)

	sent := 1
	adapted := false
	seen := map[string]bool{}
	var order []string
	deadline := time.Now().Add(15 * time.Second)
	for !adapted || sent < 8 {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for adaptation; events seen: %v", order)
		}
		subject := fmt.Sprintf("during-%d", sent)
		if _, err := carol.Send("Alice", subject, []byte(subject), 2); err != nil {
			t.Fatalf("client-visible error during adaptation (send %d): %v", sent, err)
		}
		sent++
	drain:
		for {
			select {
			case f, ok := <-frames:
				if !ok {
					break drain
				}
				if !seen[f.Kind] {
					seen[f.Kind] = true
					order = append(order, f.Kind)
				}
				if f.Kind == "adapted" && f.Session == "carol" {
					adapted = true
				}
			default:
				break drain
			}
		}
		time.Sleep(10 * time.Millisecond)
	}

	// The recovery narrative arrived on the stream in causal order.
	want := []string{"deployed", "node-killed", "suspect", "replan", "stage", "adapted"}
	pos := -1
	for _, k := range want {
		p := indexOf(order, k)
		if p < 0 {
			t.Fatalf("event %q never streamed; saw %v", k, order)
		}
		if p < pos {
			t.Fatalf("event %q out of order; saw %v, want subsequence %v", k, order, want)
		}
		pos = p
	}

	// The adapted deployment avoids the dead node, visible over HTTP.
	var got struct {
		Deployment struct {
			Summary string `json:"summary"`
		} `json:"deployment"`
	}
	resp, err := http.Get(w.base + "/v1/sessions/carol")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(got.Deployment.Summary, "@sd-2") {
		t.Errorf("adapted deployment still uses the dead node: %s", got.Deployment.Summary)
	}

	// Every send made it: the outage was absorbed, not dropped.
	waitForE2E(t, 2*time.Second, func() bool {
		return w.primary.Store().InboxCount("Alice") == sent
	}, fmt.Sprintf("primary inbox must hold all %d sends (has %d)",
		sent, w.primary.Store().InboxCount("Alice")))

	// And the exposition over the same server stays lint-clean.
	mresp, err := http.Get(w.base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	if err := metrics.LintPrometheusText(mresp.Body); err != nil {
		t.Errorf("/metrics fails lint after recovery: %v", err)
	}
}

// TestSessionLifecycleOverHTTP: create, list, get, force-adapt, and
// delete a session purely over the management API; teardown leaves the
// shared primary untouched.
func TestSessionLifecycleOverHTTP(t *testing.T) {
	w := newAPIWorld(t)

	w.post(t, "/v1/sessions",
		`{"name":"alice","interface":"ClientInterface","node":"sd-2","user":"Alice","rate_rps":50}`,
		http.StatusCreated, nil)
	// Duplicate names conflict.
	w.post(t, "/v1/sessions",
		`{"name":"alice","interface":"ClientInterface","node":"sd-2","user":"Alice","rate_rps":50}`,
		http.StatusConflict, nil)

	resp, err := http.Get(w.base + "/v1/sessions")
	if err != nil {
		t.Fatal(err)
	}
	var list struct {
		Sessions []struct {
			Name     string `json:"name"`
			HeadAddr string `json:"head_addr"`
		} `json:"sessions"`
	}
	err = json.NewDecoder(resp.Body).Decode(&list)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(list.Sessions) != 1 || list.Sessions[0].Name != "alice" || list.Sessions[0].HeadAddr == "" {
		t.Fatalf("session list = %+v", list)
	}

	w.post(t, "/v1/sessions/alice/adapt", "", http.StatusAccepted, nil)
	w.post(t, "/v1/sessions/ghost/adapt", "", http.StatusNotFound, nil)

	var del struct {
		TornDown int `json:"instances_torn_down"`
	}
	req, _ := http.NewRequest("DELETE", w.base+"/v1/sessions/alice", nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE: %d", dresp.StatusCode)
	}
	if err := json.NewDecoder(dresp.Body).Decode(&del); err != nil {
		t.Fatal(err)
	}
	if del.TornDown == 0 {
		t.Error("deleting the only session must tear its exclusive instances down")
	}
	// The shared primary survives: a fresh deploy still works.
	w.post(t, "/v1/sessions",
		`{"name":"bob","interface":"ClientInterface","node":"sd-2","user":"Bob","rate_rps":50}`,
		http.StatusCreated, nil)
}

func indexOf(s []string, v string) int {
	for i, x := range s {
		if x == v {
			return i
		}
	}
	return -1
}

func waitForE2E(t *testing.T, d time.Duration, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal(msg)
}
