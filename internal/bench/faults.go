package bench

import (
	"fmt"

	"partsvc/internal/netmodel"
	"partsvc/internal/netmon"
	"partsvc/internal/sim"
)

// FaultKind classifies a scripted failure.
type FaultKind string

const (
	// FaultLinkDegrade reports new (worse) link figures through the
	// monitor at the scripted time.
	FaultLinkDegrade FaultKind = "link-degrade"
	// FaultLinkDown severs a link: its reported latency/bandwidth become
	// so bad that routing always prefers any detour.
	FaultLinkDown FaultKind = "link-down"
	// FaultNodeCrash silently kills a node. Nothing is reported to the
	// monitor — crashes are only visible to heartbeat probes, so
	// detecting one is the adaptation controller's job.
	FaultNodeCrash FaultKind = "node-crash"
)

// A severed link is modeled as an absurdly slow one: routing avoids it
// whenever any alternative exists, without needing topology surgery.
const (
	downLinkLatencyMS     = 1e9
	downLinkBandwidthMbps = 1e-6
)

// Fault is one scripted failure at a virtual time.
type Fault struct {
	// AtMS is the virtual injection time.
	AtMS float64
	// Kind selects the failure mode.
	Kind FaultKind
	// A, B name the link for link faults.
	A, B netmodel.NodeID
	// Node is the crash target for node faults.
	Node netmodel.NodeID
	// LatencyMS and BandwidthMbps are the degraded figures for
	// FaultLinkDegrade (ignored by the other kinds).
	LatencyMS     float64
	BandwidthMbps float64
}

// String renders the fault for scenario labels and logs.
func (f Fault) String() string {
	switch f.Kind {
	case FaultNodeCrash:
		return fmt.Sprintf("%s %s @%gms", f.Kind, f.Node, f.AtMS)
	case FaultLinkDegrade:
		return fmt.Sprintf("%s %s~%s -> %gms @%gms", f.Kind, f.A, f.B, f.LatencyMS, f.AtMS)
	default:
		return fmt.Sprintf("%s %s~%s @%gms", f.Kind, f.A, f.B, f.AtMS)
	}
}

// FaultScript is an ordered set of faults to inject during a run.
type FaultScript []Fault

// Schedule arms every fault on the environment's virtual clock. Link
// faults report through the monitor — the monitoring substrate observes
// link quality directly. Node crashes only invoke the crash callback
// (which should make the node's probe targets unresponsive); they are
// deliberately NOT reported to the monitor, so the run exercises the
// controller's failure detector end to end.
func (fs FaultScript) Schedule(env *sim.Env, mon *netmon.Monitor, crash func(netmodel.NodeID)) {
	for _, f := range fs {
		f := f
		env.At(f.AtMS, func() {
			switch f.Kind {
			case FaultLinkDegrade:
				_ = mon.ReportLink(f.A, f.B, f.LatencyMS, f.BandwidthMbps, nil)
			case FaultLinkDown:
				_ = mon.ReportLink(f.A, f.B, downLinkLatencyMS, downLinkBandwidthMbps, nil)
			case FaultNodeCrash:
				if crash != nil {
					crash(f.Node)
				}
			}
		})
	}
}
