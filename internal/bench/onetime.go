package bench

import (
	"fmt"
	"time"

	"partsvc/internal/mail"
	"partsvc/internal/metrics"
	"partsvc/internal/planner"
	"partsvc/internal/seccrypto"
	"partsvc/internal/smock"
	"partsvc/internal/spec"
	"partsvc/internal/topology"
	"partsvc/internal/transport"
)

// OneTimeCosts is the Section 4.2 cost breakdown: "the costs of
// downloading the proxy, planning, and component deployment and
// startup ... sum up to approximately 10 seconds in the configurations
// above, but are incurred only at the beginning of the entire process."
// Lookup, planning, and deployment are measured on the real runtime
// (in-process transport); the code-shipping transfer across Figure 5's
// slow link is computed from the link model, since that is a property
// of the emulated network, not of this machine.
type OneTimeCosts struct {
	// LookupMS is the proxy download (lookup + dial) time.
	LookupMS float64
	// PlanMS is the planner's deliberation time for the San Diego
	// request.
	PlanMS float64
	// DeployMS is the wall time the engine spends installing and wiring
	// the deployment's components.
	DeployMS float64
	// TransferMS is the modeled time to ship component code and state
	// (CodeBytes per new component) across the slow link.
	TransferMS float64
	// Components is the number of newly installed components.
	Components int
	// FirstRequestMS is the measured end-to-end time of the first
	// (deploying) request through the generic proxy.
	FirstRequestMS float64
}

// TotalMS sums the one-time contributions.
func (c OneTimeCosts) TotalMS() float64 {
	return c.LookupMS + c.PlanMS + c.DeployMS + c.TransferMS
}

// CodeBytes is the modeled size of a component's code plus initial
// state shipped to a remote wrapper (the Java implementation moved
// class files and serialized objects; 512 KiB is representative).
const CodeBytes = 512 << 10

// MeasureOneTimeCosts runs the full Figure 1 flow for the San Diego
// client on a fresh world and measures each one-time contribution.
func MeasureOneTimeCosts() (OneTimeCosts, error) {
	var out OneTimeCosts
	tr := transport.NewInProc()
	clock := transport.NewRealClock()
	keys := seccrypto.NewKeyRing()
	primary := mail.NewServer(keys, clock)
	for _, u := range []string{"Alice", "Bob"} {
		if err := primary.CreateAccount(u); err != nil {
			return out, err
		}
	}
	reg := smock.NewRegistry()
	if err := mail.RegisterFactories(reg, &mail.ServiceEnv{Primary: primary, Keys: keys}); err != nil {
		return out, err
	}
	net := topology.CaseStudy()
	engine := smock.NewEngine(tr)
	var nyWrapper *smock.NodeWrapper
	for _, node := range net.Nodes() {
		w := smock.NewNodeWrapper(node.ID, tr, reg, clock)
		engine.RegisterWrapper(w)
		if node.ID == topology.NYServer {
			nyWrapper = w
		}
	}
	addr, err := nyWrapper.Install(smock.InstallOrder{Component: spec.CompMailServer, InstanceID: "primary"})
	if err != nil {
		return out, err
	}
	svc := spec.MailService()
	pl := planner.New(svc, net)
	msPlace, err := pl.PrimaryPlacement(spec.CompMailServer, topology.NYServer)
	if err != nil {
		return out, err
	}
	pl.AddExisting(msPlace)
	engine.AdoptInstance(msPlace, addr)
	gs := smock.NewGenericServer(svc, pl, engine)
	ln, err := tr.Serve("generic-mail", gs.Handler())
	if err != nil {
		return out, err
	}
	lookup := smock.NewLookup()
	if err := lookup.Register(smock.Entry{Service: "mail", ServerAddr: ln.Addr()}); err != nil {
		return out, err
	}

	// Proxy download: lookup + dial.
	t0 := time.Now()
	proxy, err := smock.NewGenericProxy(tr, lookup, "mail", nil)
	if err != nil {
		return out, err
	}
	out.LookupMS = msSince(t0)
	proxy.Interface = spec.IfaceClient
	proxy.Node = topology.SDClient
	proxy.User = "Alice"
	proxy.RateRPS = 50

	// Planning, measured in isolation on an identical planner.
	freshPl := planner.New(svc, net)
	freshPl.AddExisting(msPlace)
	t0 = time.Now()
	dep, err := freshPl.Plan(planner.Request{
		Interface: spec.IfaceClient, ClientNode: topology.SDClient, User: "Alice", RateRPS: 50,
	})
	if err != nil {
		return out, err
	}
	out.PlanMS = msSince(t0)
	out.Components = dep.NewComponents

	// First request through the proxy = plan + deploy + call.
	alice := mail.NewClient("Alice", keys, mail.NewRemote(proxy))
	t0 = time.Now()
	if _, err := alice.Send("Bob", "first", []byte("payload"), 2); err != nil {
		return out, err
	}
	out.FirstRequestMS = msSince(t0)
	// Deployment/startup: the first request minus the (re-measured)
	// steady-state request cost.
	t0 = time.Now()
	if _, err := alice.Send("Bob", "steady", []byte("payload"), 2); err != nil {
		return out, err
	}
	steady := msSince(t0)
	// The first request includes planning (measured separately above)
	// plus deployment/startup plus one steady-state request.
	out.DeployMS = out.FirstRequestMS - out.PlanMS - steady
	if out.DeployMS < 0 {
		out.DeployMS = 0
	}

	// Code shipping across the slow link, from the link model.
	slow := sim0Link()
	out.TransferMS = float64(dep.NewComponents) * (slow.latencyMS + float64(CodeBytes)*8/(slow.mbps*1e6)*1e3)
	return out, nil
}

type linkModel struct {
	latencyMS float64
	mbps      float64
}

func sim0Link() linkModel {
	cfg := DefaultConfig()
	return linkModel{latencyMS: cfg.SlowLatencyMS, mbps: cfg.SlowMbps}
}

func msSince(t time.Time) float64 { return float64(time.Since(t)) / float64(time.Millisecond) }

// OneTimeTable renders the breakdown.
func OneTimeTable(c OneTimeCosts) string {
	t := metrics.NewTable("phase", "ms")
	t.AddRow("proxy download (lookup+dial)", c.LookupMS)
	t.AddRow("planning", c.PlanMS)
	t.AddRow("deployment+startup (measured)", c.DeployMS)
	t.AddRow(fmt.Sprintf("code shipping (%d comps, modeled)", c.Components), c.TransferMS)
	t.AddRow("TOTAL one-time", c.TotalMS())
	t.AddRow("first request (end to end)", c.FirstRequestMS)
	return t.String()
}
