package bench

import (
	"fmt"

	"partsvc/internal/adapt"
	"partsvc/internal/metrics"
	"partsvc/internal/netmodel"
	"partsvc/internal/netmon"
	"partsvc/internal/planner"
	"partsvc/internal/sim"
	"partsvc/internal/spec"
	"partsvc/internal/topology"
)

// Fig8Row is one adaptation experiment data point: how one scripted
// fault propagates through the monitor → replan → redeploy loop, and
// what the client perceived before, during, and after.
type Fig8Row struct {
	Scenario string
	// SteadyMS is the mean send latency before the fault.
	SteadyMS float64
	// DuringMS is the mean send latency between the fault and the
	// cutover (retry waits included — what the user rides through).
	DuringMS float64
	// DetectMS is fault injection → the controller's replan (for node
	// crashes this includes the failure detector's suspicion window).
	DetectMS float64
	// CutoverMS is replan → bindings flipped (the staged cutover).
	CutoverMS float64
	// PostMS is the mean send latency after adaptation completed.
	PostMS float64
	// Sends counts completed client sends over the whole run.
	Sends int
}

// Fig8Config tunes the adaptation experiment.
type Fig8Config struct {
	// DurationMS is the total virtual run time per scenario.
	DurationMS float64
	// FaultAtMS is the fault injection time (well after warm-up).
	FaultAtMS float64
	// SendEveryMS is the client's send period.
	SendEveryMS float64
	// RetryMS is the client's retry backoff while its chain is broken.
	RetryMS float64
	// ServiceMS is the modeled per-component service time.
	ServiceMS float64
	// Workers bounds scenario-sweep parallelism (0 = GOMAXPROCS).
	Workers int
	// Seed feeds scenarioSeed (the model is randomness-free; the seed
	// only keeps env construction uniform with the other benchmarks).
	Seed int64
}

// DefaultFig8Config returns the configuration used for the A7 table.
func DefaultFig8Config() Fig8Config {
	return Fig8Config{
		DurationMS:  30000,
		FaultAtMS:   10000,
		SendEveryMS: 500,
		RetryMS:     50,
		ServiceMS:   1,
	}
}

// Fig8Scenario pairs a name with the fault script it injects into the
// case-study topology.
type Fig8Scenario struct {
	Name   string
	Faults FaultScript
}

// Fig8Scenarios returns the three adaptation scenarios: the SD–Seattle
// link degrades, the SD–Seattle link dies, and the San Diego branch
// node hosting Seattle's upstream decryptor/view crashes outright.
func Fig8Scenarios(cfg Fig8Config) []Fig8Scenario {
	at := cfg.FaultAtMS
	return []Fig8Scenario{
		{Name: "link-degrade", Faults: FaultScript{{
			AtMS: at, Kind: FaultLinkDegrade,
			A: topology.SDGateway, B: topology.SeaGW,
			LatencyMS: 1500, BandwidthMbps: 1,
		}}},
		{Name: "link-down", Faults: FaultScript{{
			AtMS: at, Kind: FaultLinkDown,
			A: topology.SDGateway, B: topology.SeaGW,
		}}},
		{Name: "node-crash", Faults: FaultScript{{
			AtMS: at, Kind: FaultNodeCrash, Node: topology.SDClient,
		}}},
	}
}

// RunFig8 runs every adaptation scenario and returns one row each, in
// Fig8Scenarios order. Scenario runs are independent sim.Envs fanned
// out over the worker pool; rows are byte-identical to a serial run.
func RunFig8(cfg Fig8Config) []Fig8Row {
	scs := Fig8Scenarios(cfg)
	rows := make([]Fig8Row, len(scs))
	forEach(cfg.Workers, len(rows), func(i int) {
		rows[i] = runFig8Scenario(cfg, scs[i])
	})
	return rows
}

// Fig8Table renders rows as the experiment table printed by
// cmd/mailbench -fig8.
func Fig8Table(rows []Fig8Row) string {
	t := metrics.NewTable("scenario", "steady_ms", "during_ms", "detect_ms", "cutover_ms", "post_ms", "sends")
	for _, r := range rows {
		t.AddRow(r.Scenario, r.SteadyMS, r.DuringMS, r.DetectMS, r.CutoverMS, r.PostMS, r.Sends)
	}
	return t.String()
}

// fig8Exec implements adapt.Executor against the planner alone: the
// modeled world has no listeners to install, so deploying a diff is
// bookkeeping (the planner's reuse set) plus a fresh head address. The
// replan pass mirrors smock.GenericServer.Replan's orphan handling for
// chain deployments: placements are head-first, so everything in front
// of an evicted placement is transitively wired through it and must be
// dropped from the reuse set before the second pass.
type fig8Exec struct {
	pl  *planner.Planner
	gen int
}

func (x *fig8Exec) Replan(old *planner.Deployment, req planner.Request) (*planner.Diff, error) {
	diff, err := x.pl.ReplanRewire(old, req)
	if err != nil {
		return nil, err
	}
	if old == nil || len(diff.Evicted) == 0 {
		return diff, nil
	}
	evicted := map[string]bool{}
	for _, p := range diff.Evicted {
		evicted[p.Key()] = true
	}
	last := -1
	for i, p := range old.Placements {
		if evicted[p.Key()] {
			last = i
		}
	}
	var orphans []string
	for i := 0; i < last; i++ {
		if p := old.Placements[i]; !evicted[p.Key()] {
			orphans = append(orphans, p.Key())
		}
	}
	if len(orphans) == 0 {
		return diff, nil
	}
	x.pl.DropExistingByKey(orphans...)
	diff2, err := x.pl.Replan(old, req)
	if err != nil {
		return nil, err
	}
	diff2.Evicted = append(diff.Evicted, diff2.Evicted...)
	return diff2, nil
}

func (x *fig8Exec) Snapshot(old *planner.Deployment, diff *planner.Diff) map[string][]byte {
	return nil // modeled world: state carry is free
}

func (x *fig8Exec) Deploy(diff *planner.Diff, states map[string][]byte) (string, error) {
	x.gen++
	x.pl.AddExisting(diff.New.Placements...)
	return fmt.Sprintf("sim-head-%d", x.gen), nil
}

func (x *fig8Exec) Publish(service, addr string) error { return nil }

func (x *fig8Exec) Discard(placements []planner.Placement) {
	x.pl.DropExisting(placements...)
}

// fig8World is the modeled client side of one scenario run. Everything
// here executes on the simulation loop, so the plain maps are safe.
type fig8World struct {
	net     *netmodel.Network
	crashed map[netmodel.NodeID]bool
	sess    *adapt.Session
	cfg     Fig8Config
}

// chainLatencyMS models one client send through the session's current
// chain: a request/reply round trip over every inter-placement path
// plus per-component service time. Charging the full chain (a send that
// writes through to its anchor) makes interior link changes visible in
// the client latency. A chain touching a crashed or down node, or one
// with no route between consecutive placements, is broken.
func (w *fig8World) chainLatencyMS(dep *planner.Deployment) (float64, bool) {
	total := 0.0
	for _, p := range dep.Placements {
		if w.crashed[p.Node] {
			return 0, false
		}
		if n, ok := w.net.Node(p.Node); !ok || n.Down {
			return 0, false
		}
		total += w.cfg.ServiceMS
	}
	routes := w.net.Routes()
	for i := 0; i+1 < len(dep.Placements); i++ {
		path, ok := routes.Path(dep.Placements[i].Node, dep.Placements[i+1].Node)
		if !ok {
			return 0, false
		}
		total += 2 * path.LatencyMS
	}
	return total, true
}

type fig8Sample struct{ start, latency float64 }

// runFig8Scenario runs one scenario: the real adaptation controller
// (on the virtual clock) over the real planner and monitor, with a
// modeled executor, prober, and client. Deterministic: same config,
// same row, at any sweep parallelism.
func runFig8Scenario(cfg Fig8Config, sc Fig8Scenario) Fig8Row {
	env := sim.NewEnvWith(sim.Options{Seed: scenarioSeed(cfg.Seed, "fig8/"+sc.Name, 1)})
	defer env.Stop()

	net := topology.CaseStudy()
	mon := netmon.New(net)
	pl := planner.New(spec.MailService(), net)

	// Bootstrap the standing deployments: the NY primary, a warm San
	// Diego chain (Alice), and the tracked Seattle session (Carol) whose
	// chain runs sea-2 -> sd-2 -> (anchor) — squarely in the blast
	// radius of every scripted fault.
	primary, err := pl.PrimaryPlacement(spec.CompMailServer, topology.NYServer)
	if err != nil {
		panic(err)
	}
	pl.AddExisting(primary)
	warm := planner.Request{Interface: spec.IfaceClient, ClientNode: topology.SDClient, User: "Alice", RateRPS: 50}
	warmDep, err := pl.Plan(warm)
	if err != nil {
		panic(err)
	}
	pl.AddExisting(warmDep.Placements...)
	req := planner.Request{Interface: spec.IfaceClient, ClientNode: topology.SeaClient, User: "Carol", RateRPS: 50}
	dep, err := pl.Plan(req)
	if err != nil {
		panic(err)
	}
	pl.AddExisting(dep.Placements...)

	w := &fig8World{net: net, crashed: map[netmodel.NodeID]bool{}, cfg: cfg}
	w.sess = adapt.NewSession("carol", "", req, dep, "sim-head-0")

	exec := &fig8Exec{pl: pl}
	var events []adapt.Event
	ctrl := adapt.New(adapt.Config{
		DebounceMS:         50,
		ProbeIntervalMS:    250,
		ProbeTimeoutMS:     100,
		SuspicionThreshold: 2,
		DrainMS:            100,
	}, mon, exec, adapt.NewSimScheduler(env))
	ctrl.OnEvent(func(e adapt.Event) { events = append(events, e) })
	// The modeled failure detector: a probe reaches every node except
	// crashed ones. Targets cover the whole case-study topology.
	targets := map[netmodel.NodeID]string{}
	for _, n := range net.Nodes() {
		targets[n.ID] = string(n.ID)
	}
	ctrl.SetProber(adapt.ProberFunc(func(node netmodel.NodeID, addr string, timeoutMS float64) error {
		if w.crashed[node] {
			return fmt.Errorf("probe %s: no heartbeat", node)
		}
		return nil
	}), func() map[netmodel.NodeID]string { return targets })
	ctrl.Track(w.sess)
	ctrl.Start()
	defer ctrl.Stop()

	sc.Faults.Schedule(env, mon, func(n netmodel.NodeID) { w.crashed[n] = true })

	// The client: one send every SendEveryMS. While the chain is broken
	// it backs off and retries; the wait counts toward that send's
	// latency (exactly what a user behind the rebinding client library
	// experiences during an outage).
	var samples []fig8Sample
	env.Go("carol", func(p *sim.Proc) {
		next := 0.0
		for next < cfg.DurationMS {
			if p.Now() < next {
				p.SleepUntil(next)
			}
			start := p.Now()
			for {
				lat, ok := w.chainLatencyMS(w.sess.Deployment())
				if ok {
					p.Sleep(lat)
					break
				}
				p.Sleep(cfg.RetryMS)
			}
			samples = append(samples, fig8Sample{start: start, latency: p.Now() - start})
			next = start + cfg.SendEveryMS
		}
	})
	env.RunUntil(cfg.DurationMS)

	return fig8Row(sc, cfg, events, samples)
}

// fig8Row distills events and samples into the A7 row. Detection is
// measured to the controller's replan event, cutover to the adapted
// (bindings-flipped) event; -1 marks a phase that never happened.
func fig8Row(sc Fig8Scenario, cfg Fig8Config, events []adapt.Event, samples []fig8Sample) Fig8Row {
	faultAt := cfg.FaultAtMS
	if len(sc.Faults) > 0 {
		faultAt = sc.Faults[0].AtMS
	}
	replanAt, adaptedAt := -1.0, -1.0
	for _, e := range events {
		if e.AtMS < faultAt {
			continue
		}
		if replanAt < 0 && e.Kind == "replan" {
			replanAt = e.AtMS
		}
		if adaptedAt < 0 && e.Kind == "adapted" {
			adaptedAt = e.AtMS
		}
	}
	row := Fig8Row{Scenario: sc.Name, DetectMS: -1, CutoverMS: -1, Sends: len(samples)}
	if replanAt >= 0 {
		row.DetectMS = replanAt - faultAt
	}
	if adaptedAt >= 0 && replanAt >= 0 {
		row.CutoverMS = adaptedAt - replanAt
	}
	steadySum, steadyN, duringSum, duringN, postSum, postN := 0.0, 0, 0.0, 0, 0.0, 0
	for _, s := range samples {
		switch {
		case s.start+s.latency <= faultAt:
			steadySum += s.latency
			steadyN++
		case adaptedAt >= 0 && s.start >= adaptedAt:
			postSum += s.latency
			postN++
		default:
			duringSum += s.latency
			duringN++
		}
	}
	if steadyN > 0 {
		row.SteadyMS = steadySum / float64(steadyN)
	}
	if duringN > 0 {
		row.DuringMS = duringSum / float64(duringN)
	}
	if postN > 0 {
		row.PostMS = postSum / float64(postN)
	}
	return row
}
