package bench

import (
	"math"
	"strings"
	"testing"
)

// TestFig7ShapeMatchesPaper is experiment E6's acceptance test: at every
// client count the four scenario groups order exactly as in Figure 7
// (group 1 fastest ... group 4 slowest, with clear separation), and the
// dynamic deployments are "virtually indistinguishable" from their
// static counterparts.
func TestFig7ShapeMatchesPaper(t *testing.T) {
	cfg := DefaultConfig()
	rows := RunFig7(cfg)
	byKey := map[string]map[int]Row{}
	for _, r := range rows {
		if byKey[r.Scenario] == nil {
			byKey[r.Scenario] = map[int]Row{}
		}
		byKey[r.Scenario][r.Clients] = r
	}
	if len(byKey) != 9 {
		t.Fatalf("scenarios = %d, want 9", len(byKey))
	}

	groups := map[int][]string{
		1: {"SF", "SS0", "DF", "DS0"},
		2: {"SS1000", "DS1000"},
		3: {"SS500", "DS500"},
		4: {"SS"},
	}
	for n := 1; n <= cfg.MaxClients; n++ {
		groupMax := map[int]float64{}
		groupMin := map[int]float64{1: math.Inf(1), 2: math.Inf(1), 3: math.Inf(1), 4: math.Inf(1)}
		for g, names := range groups {
			for _, name := range names {
				avg := byKey[name][n].AvgMS
				if avg <= 0 {
					t.Fatalf("scenario %s at %d clients has no data", name, n)
				}
				groupMax[g] = math.Max(groupMax[g], avg)
				groupMin[g] = math.Min(groupMin[g], avg)
			}
		}
		for g := 1; g < 4; g++ {
			if !(groupMax[g] < groupMin[g+1]) {
				t.Errorf("clients=%d: group %d (max %.2f ms) must be faster than group %d (min %.2f ms)",
					n, g, groupMax[g], g+1, groupMin[g+1])
			}
		}
		// The slow direct scenario pays at least one slow-link round
		// trip per send.
		if ss := byKey["SS"][n].AvgMS; ss < 2*cfg.SlowLatencyMS {
			t.Errorf("clients=%d: SS avg %.2f ms below the slow-link RTT", n, ss)
		}
	}

	// Dynamic vs static: within each pair the difference is bounded by
	// the proxy overhead, far below the inter-group gaps.
	for _, pair := range [][2]string{{"DF", "SF"}, {"DS0", "SS0"}, {"DS500", "SS500"}, {"DS1000", "SS1000"}} {
		for n := 1; n <= cfg.MaxClients; n++ {
			d, s := byKey[pair[0]][n].AvgMS, byKey[pair[1]][n].AvgMS
			if diff := math.Abs(d - s); diff > 10*cfg.ProxyOverheadMS+0.5 {
				t.Errorf("clients=%d: %s (%.2f) vs %s (%.2f) differ by %.2f ms — dynamic must be near-indistinguishable",
					n, pair[0], d, pair[1], s, diff)
			}
		}
	}
}

// TestFig7Deterministic: identical configurations produce identical
// rows (the DES guarantee).
func TestFig7Deterministic(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxClients = 3
	a := RunFig7(cfg)
	b := RunFig7(cfg)
	if len(a) != len(b) {
		t.Fatal("row counts differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("row %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

// TestFig7SendCounts: every client issues exactly SendsPerClient sends.
func TestFig7SendCounts(t *testing.T) {
	cfg := DefaultConfig()
	for _, sc := range Scenarios() {
		row := RunScenario(cfg, sc, 3)
		if row.Sends != 3*cfg.SendsPerClient {
			t.Errorf("%s: sends = %d, want %d", sc.Name, row.Sends, 3*cfg.SendsPerClient)
		}
	}
}

func TestGroupAssignment(t *testing.T) {
	for name, want := range map[string]int{
		"DF": 1, "SF": 1, "DS0": 1, "SS0": 1,
		"DS1000": 2, "SS1000": 2, "DS500": 3, "SS500": 3, "SS": 4, "bogus": 0,
	} {
		if got := Group(name); got != want {
			t.Errorf("Group(%s) = %d, want %d", name, got, want)
		}
	}
}

func TestFig7TableRendering(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxClients = 1
	cfg.SendsPerClient = 10
	out := Fig7Table(RunFig7(cfg))
	for _, want := range []string{"scenario", "avg_send_ms", "DS500", "SS"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
}

// TestOneTimeCosts (experiment E7): the one-time total is dominated by
// deployment-related work and sits orders of magnitude above the
// steady-state per-request latency, mirroring Section 4.2's ~10 s
// against millisecond requests.
func TestOneTimeCosts(t *testing.T) {
	c, err := MeasureOneTimeCosts()
	if err != nil {
		t.Fatal(err)
	}
	if c.Components < 3 {
		t.Errorf("SD deployment installs >= 3 components, got %d", c.Components)
	}
	if c.TransferMS <= 0 {
		t.Error("modeled code shipping must be positive")
	}
	// Code shipping across a 20 Mb/s / 200 ms link dominates: about
	// 400+ ms per component.
	if c.TransferMS < float64(c.Components)*200 {
		t.Errorf("transfer %v ms too small for %d components", c.TransferMS, c.Components)
	}
	steady := RunScenario(DefaultConfig(), Scenarios()[1], 1).AvgMS // DS0
	if c.TotalMS() < 100*steady {
		t.Errorf("one-time total %.2f ms should dwarf steady-state %.2f ms", c.TotalMS(), steady)
	}
	out := OneTimeTable(c)
	for _, want := range []string{"proxy download", "planning", "deployment", "TOTAL"} {
		if !strings.Contains(out, want) {
			t.Errorf("one-time table missing %q:\n%s", want, out)
		}
	}
}

// TestCoherenceBoundSweep (ablation A2): latency falls and staleness
// rises monotonically from write-through to none.
func TestCoherenceBoundSweep(t *testing.T) {
	rows := CoherenceBoundSweep(DefaultConfig(), 2)
	if len(rows) != 7 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].Policy != "write-through" || rows[len(rows)-1].Policy != "none" {
		t.Fatalf("policy order wrong: %v", rows)
	}
	// Monotone over the count-bound spectrum (the Periodic row sits on a
	// different axis: its latency depends on the period, not a bound).
	var countBound []BoundSweepRow
	var periodic *BoundSweepRow
	for i := range rows {
		if strings.HasPrefix(rows[i].Policy, "periodic") {
			periodic = &rows[i]
			continue
		}
		countBound = append(countBound, rows[i])
	}
	for i := 1; i < len(countBound); i++ {
		if countBound[i].AvgMS > countBound[i-1].AvgMS+1e-9 {
			t.Errorf("latency must not rise as the bound relaxes: %s %.2f -> %s %.2f",
				countBound[i-1].Policy, countBound[i-1].AvgMS, countBound[i].Policy, countBound[i].AvgMS)
		}
		if countBound[i].MaxStale < countBound[i-1].MaxStale {
			t.Errorf("staleness must not fall as the bound relaxes: %v", countBound)
		}
	}
	// The time-driven policy lands strictly between the synchronous and
	// the never-flush extremes.
	if periodic == nil {
		t.Fatal("periodic row missing")
	}
	if !(periodic.AvgMS < rows[0].AvgMS && periodic.AvgMS > rows[len(rows)-1].AvgMS) {
		t.Errorf("periodic avg %.2f must sit between write-through %.2f and none %.2f",
			periodic.AvgMS, rows[0].AvgMS, rows[len(rows)-1].AvgMS)
	}
	// Write-through pays a slow-link RTT on every send.
	if rows[0].AvgMS < 2*DefaultConfig().SlowLatencyMS {
		t.Errorf("write-through avg %.2f below slow RTT", rows[0].AvgMS)
	}
	out := BoundSweepTable(rows)
	if !strings.Contains(out, "write-through") || !strings.Contains(out, "max_stale_records") {
		t.Errorf("sweep table:\n%s", out)
	}
}

// TestPlannerScaling (ablation A3): the DP planner examines far fewer
// mappings than the exhaustive planner as networks grow.
func TestPlannerScaling(t *testing.T) {
	if testing.Short() {
		t.Skip("planner scaling is slow")
	}
	rows, err := PlannerScaling([]int{8, 12}, 7)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Chains == 0 || r.Mappings == 0 {
			t.Errorf("row %+v has no search effort", r)
		}
		if r.DPMappings*2 > r.Mappings {
			t.Errorf("nodes=%d: DP (%d) must examine far fewer mappings than exhaustive (%d)",
				r.Nodes, r.DPMappings, r.Mappings)
		}
	}
	if rows[1].Mappings <= rows[0].Mappings {
		t.Errorf("exhaustive effort must grow with network size: %+v", rows)
	}
	out := ScalingTable(rows)
	if !strings.Contains(out, "exhaustive_mappings") {
		t.Errorf("scaling table:\n%s", out)
	}
}
