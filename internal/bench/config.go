// Package bench is the experiment harness: it regenerates the paper's
// evaluation artifacts — the nine Figure 7 scenarios over the
// discrete-event simulator, the Section 4.2 one-time cost breakdown,
// and the ablation sweeps indexed in DESIGN.md — and prints the same
// rows the paper reports.
package bench

import "partsvc/internal/coherence"

// Config parameterizes the Figure 7 reproduction. Defaults follow the
// paper's workload ("each client simulates the behavior of a cluster of
// users by sending out 100 messages and receiving messages 10 times")
// and the Figure 5 link characteristics; knobs the paper leaves
// unspecified (message size, coherence record amplification) are set to
// representative values documented in EXPERIMENTS.md.
type Config struct {
	// SendsPerClient is the number of messages each client sends (100).
	SendsPerClient int
	// ReceiveEvery inserts a receive sweep after every N sends, giving
	// the paper's 10 receives per 100 sends.
	ReceiveEvery int
	// MaxClients sweeps client counts 1..MaxClients (5).
	MaxClients int

	// MessageBytes is the mail message size on the wire.
	MessageBytes int
	// ReplyBytes is the send-acknowledgement size.
	ReplyBytes int
	// RecordsPerSend is the coherence-record amplification of one send
	// (folder entries, indexes, contact usage).
	RecordsPerSend int
	// RecordBytes is the size of one coherence record.
	RecordBytes int

	// SlowLatencyMS and SlowMbps describe the inter-site link
	// (NY-SD in Figure 5: 200 ms / 20 Mb/s).
	SlowLatencyMS float64
	SlowMbps      float64
	// LanLatencyMS and LanMbps describe intra-site links
	// (0 ms / 100 Mb/s).
	LanLatencyMS float64
	LanMbps      float64

	// Service times per component, milliseconds.
	ClientServiceMS float64
	ServerServiceMS float64
	ViewServiceMS   float64
	CryptoServiceMS float64
	// ProxyOverheadMS is the per-request cost of the framework's
	// service-specific proxy indirection, present only in the dynamic
	// scenarios (the paper finds it "negligible").
	ProxyOverheadMS float64

	// MissEvery makes every N-th receive sweep a cache miss that fetches
	// from the primary (5 reproduces the ViewMailServer's RRF of 0.2).
	MissEvery int

	// ClientCounts, when non-empty, replaces the 1..MaxClients sweep
	// with an explicit list of per-scenario client counts — the knob for
	// city-scale grids (e.g. [1, 100, 10000]) where enumerating every
	// count would be absurd.
	ClientCounts []int
	// Workers bounds the worker pool that fans scenario runs out in
	// parallel (each runs its own sim.Env); 0 means GOMAXPROCS. Results
	// are byte-identical to a serial run regardless of the setting.
	Workers int
	// Seed derives the per-scenario RNG seed handed to each sim.Env, so
	// stochastic workloads stay reproducible under any Workers value.
	Seed int64
	// Procs selects the goroutine-process simulation engine instead of
	// the default callback fast path. Both produce byte-identical rows
	// (asserted by the equivalence tests); the process engine exists as
	// the oracle and costs two channel handoffs per event.
	Procs bool
	// HeapQueue selects the reference binary-heap event queue instead
	// of the calendar queue (again byte-identical, again the oracle).
	HeapQueue bool
}

// DefaultConfig returns the documented default parameters.
func DefaultConfig() Config {
	return Config{
		SendsPerClient: 100,
		ReceiveEvery:   10,
		MaxClients:     5,

		MessageBytes:   10240,
		ReplyBytes:     1024,
		RecordsPerSend: 10,
		RecordBytes:    128,

		SlowLatencyMS: 200,
		SlowMbps:      20,
		LanLatencyMS:  0,
		LanMbps:       100,

		ClientServiceMS: 0.5,
		ServerServiceMS: 1,
		ViewServiceMS:   1,
		CryptoServiceMS: 0.2,
		ProxyOverheadMS: 0.05,

		MissEvery: 5,

		Seed: 1,
	}
}

// clientCounts returns the per-scenario client counts of the grid:
// ClientCounts when set, else 1..MaxClients.
func (c Config) clientCounts() []int {
	if len(c.ClientCounts) > 0 {
		return c.ClientCounts
	}
	counts := make([]int, c.MaxClients)
	for i := range counts {
		counts[i] = i + 1
	}
	return counts
}

// Scenario is one Figure 7 configuration.
type Scenario struct {
	// Name is the paper's scenario label (DF, DS0, ..., SS).
	Name string
	// Dynamic marks framework-deployed configurations (D*); static
	// scenarios (S*) are the hand-built baselines.
	Dynamic bool
	// Cached deploys a local ViewMailServer in front of the slow link.
	Cached bool
	// Slow places the client behind the slow inter-site link; fast
	// scenarios run entirely on the LAN.
	Slow bool
	// Policy is the view's coherence policy (nil where no view exists).
	Policy coherence.Policy
}

// Scenarios returns the paper's nine configurations in Figure 7 order:
// DF, DS0, DS500, DS1000, SF, SS0, SS500, SS1000, SS.
func Scenarios() []Scenario {
	return []Scenario{
		{Name: "DF", Dynamic: true, Cached: false, Slow: false},
		{Name: "DS0", Dynamic: true, Cached: true, Slow: true, Policy: coherence.None{}},
		{Name: "DS500", Dynamic: true, Cached: true, Slow: true, Policy: coherence.CountBound{Bound: 500}},
		{Name: "DS1000", Dynamic: true, Cached: true, Slow: true, Policy: coherence.CountBound{Bound: 1000}},
		{Name: "SF", Dynamic: false, Cached: false, Slow: false},
		{Name: "SS0", Dynamic: false, Cached: true, Slow: true, Policy: coherence.None{}},
		{Name: "SS500", Dynamic: false, Cached: true, Slow: true, Policy: coherence.CountBound{Bound: 500}},
		{Name: "SS1000", Dynamic: false, Cached: true, Slow: true, Policy: coherence.CountBound{Bound: 1000}},
		{Name: "SS", Dynamic: false, Cached: false, Slow: true},
	}
}

// Group returns the paper's latency cluster for a scenario name:
// 1 = {SF, SS0, DF, DS0}, 2 = {SS1000, DS1000}, 3 = {SS500, DS500},
// 4 = {SS}.
func Group(name string) int {
	switch name {
	case "SF", "SS0", "DF", "DS0":
		return 1
	case "SS1000", "DS1000":
		return 2
	case "SS500", "DS500":
		return 3
	case "SS":
		return 4
	}
	return 0
}
