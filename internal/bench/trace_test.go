package bench

import (
	"strings"
	"testing"

	"partsvc/internal/trace"
)

// TestTracedScenarioDeterministic is the acceptance check for
// virtual-clock tracing: the same workload traced twice yields
// byte-identical span trees with virtual timestamps, for every
// scenario shape (fast LAN, slow link, cached view with flushes).
func TestTracedScenarioDeterministic(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SendsPerClient = 10
	for _, sc := range Scenarios() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			row1, spans1 := RunScenarioTraced(cfg, sc, 3)
			row2, spans2 := RunScenarioTraced(cfg, sc, 3)
			if row1 != row2 {
				t.Fatalf("rows differ across runs:\n%+v\n%+v", row1, row2)
			}
			tree1, tree2 := trace.Tree(spans1), trace.Tree(spans2)
			if tree1 != tree2 {
				t.Fatalf("span trees differ across identical runs:\n--- run 1:\n%s--- run 2:\n%s", tree1, tree2)
			}
			if len(spans1) == 0 {
				t.Fatal("traced run recorded no spans")
			}
			if !strings.Contains(tree1, "client.send") {
				t.Fatalf("no client.send root in tree:\n%s", tree1)
			}
		})
	}
}

// TestTracedRowMatchesUntraced: attaching the tracer must not change
// the simulation — the traced run's row equals the plain RunScenario
// row (which itself is engine-independent).
func TestTracedRowMatchesUntraced(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SendsPerClient = 20
	for _, name := range []string{"DF", "SS", "DS500"} {
		var sc Scenario
		for _, s := range Scenarios() {
			if s.Name == name {
				sc = s
			}
		}
		plain := RunScenario(cfg, sc, 4)
		traced, spans := RunScenarioTraced(cfg, sc, 4)
		if plain != traced {
			t.Errorf("%s: traced row %+v != untraced row %+v", name, traced, plain)
		}
		if len(spans) == 0 {
			t.Errorf("%s: no spans", name)
		}
	}
}

// TestSpanBreakdownShape: the per-stage table covers every span name
// with exact counts.
func TestSpanBreakdownShape(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SendsPerClient = 5
	var ss Scenario
	for _, s := range Scenarios() {
		if s.Name == "SS" {
			ss = s
		}
	}
	_, spans := RunScenarioTraced(cfg, ss, 2)
	out := SpanBreakdown(spans)
	for _, name := range []string{"client.send", "tunnel.call", "transport.call", "mail.send"} {
		if !strings.Contains(out, name) {
			t.Errorf("breakdown missing %q:\n%s", name, out)
		}
	}
	// client.send count = clients * sends.
	if !strings.Contains(out, "10") {
		t.Errorf("breakdown missing count 10:\n%s", out)
	}
}

// TestRunFig7StatsMergedRecorder: the merged recorder aggregates every
// send in the grid identically at any worker count.
func TestRunFig7StatsMergedRecorder(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SendsPerClient = 5
	cfg.MaxClients = 2
	cfg.Workers = 1
	rows1, rec1 := RunFig7Stats(cfg)
	cfg.Workers = 4
	rows2, rec2 := RunFig7Stats(cfg)
	for i := range rows1 {
		if rows1[i] != rows2[i] {
			t.Fatalf("row %d differs across worker counts", i)
		}
	}
	if rec1.Count() != rec2.Count() {
		t.Fatalf("merged counts differ: %d vs %d", rec1.Count(), rec2.Count())
	}
	total := 0
	for _, r := range rows1 {
		total += r.Sends
	}
	if rec1.Count() != total {
		t.Fatalf("merged recorder holds %d samples, rows total %d", rec1.Count(), total)
	}
	for _, p := range []float64{50, 95, 100} {
		if rec1.Percentile(p) != rec2.Percentile(p) {
			t.Errorf("p%g differs across worker counts: %g vs %g", p, rec1.Percentile(p), rec2.Percentile(p))
		}
	}
}
