package bench

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"partsvc/internal/adapt"
	"partsvc/internal/fleet"
	"partsvc/internal/metrics"
	"partsvc/internal/netmodel"
	"partsvc/internal/netmon"
	"partsvc/internal/planner"
	"partsvc/internal/property"
	"partsvc/internal/sim"
	"partsvc/internal/spec"
	"partsvc/internal/topology"
)

// FleetConfig tunes the A10 fleet control-plane benchmark: thousands of
// planner/controller sessions multiplexed over one shared network model
// and route cache, driven through scripted link events.
type FleetConfig struct {
	// Sessions is the fleet size (paper-scale default: 5000).
	Sessions int
	// Nodes is the Waxman topology size (default 128).
	Nodes int
	// Sites is the number of distinct client nodes sessions are spread
	// over; alternating sites get branch (trust 4) and partner (trust 2)
	// trust, mirroring the case study's San Diego and Seattle.
	Sites int
	// Events is the number of scripted link events (alternating degrade
	// and restore on a deployed path's first backbone link).
	Events int
	// Shards is the session-shard count. Fixed by default (not
	// GOMAXPROCS-derived) so output is byte-identical across machines.
	Shards int
	// Workers is execution parallelism; output-invariant (0 = GOMAXPROCS).
	Workers int
	// Timing adds wall-clock per-wave latency to the result. Off by
	// default: the deterministic output must stay byte-identical.
	Timing bool
	// Seed feeds the Waxman generator.
	Seed int64
}

// DefaultFleetConfig returns the headline A10 configuration.
func DefaultFleetConfig() FleetConfig {
	return FleetConfig{Sessions: 5000, Nodes: 128, Sites: 8, Events: 4, Shards: 8, Seed: 7}
}

// FleetWaveRow is one replan wave's ledger. NaiveComputes is what a
// per-session control plane would have spent on the same wave (one full
// planner pass per affected session); Reduction is the counter-verified
// ratio against the computations the wave actually ran.
type FleetWaveRow struct {
	Wave          uint64
	Trigger       string
	Sessions      int
	Computes      int
	MemoHits      int
	NaiveComputes int
	Reduction     float64
	Cutovers      int
	Unchanged     int
	RouteLookups  int
	SpanMS        float64
	WallMS        float64 // populated only when FleetConfig.Timing
}

// FleetResult is the full A10 benchmark output.
type FleetResult struct {
	Config           FleetConfig
	Bootstrap        FleetWaveRow
	Rows             []FleetWaveRow // one per scripted event, in order
	SessionsPerShard []int
	Instances        int
	Failed           int
	TargetLink       string
}

// RunFleet builds the fleet, bootstraps it, plays the scripted link
// events, and collects one row per wave. Deterministic for a given
// config at any Workers value; Timing adds wall-clock measurements
// without touching the deterministic fields.
func RunFleet(cfg FleetConfig) (*FleetResult, error) {
	if cfg.Sessions <= 0 || cfg.Nodes < 8 || cfg.Sites < 2 || cfg.Events <= 0 {
		return nil, fmt.Errorf("bench: bad fleet config %+v", cfg)
	}
	net, err := topology.Waxman(topology.DefaultWaxman(cfg.Nodes, cfg.Seed))
	if err != nil {
		return nil, err
	}
	nodes := net.Nodes()
	// Deterministic role assignment regardless of seed: the primary host
	// is fully trusted; client sites alternate branch/partner trust.
	nodes[0].Props["TrustLevel"] = property.Int(5)
	sites := make([]netmodel.NodeID, cfg.Sites)
	for i := range sites {
		n := nodes[1+i%(len(nodes)-1)]
		trust := int64(4)
		if i%2 == 1 {
			trust = 2
		}
		n.Props["TrustLevel"] = property.Int(trust)
		sites[i] = n.ID
	}

	env := sim.NewEnv()
	defer env.Stop()
	mon := netmon.New(net)
	mgr := fleet.New(fleet.Config{
		Shards: cfg.Shards, Workers: cfg.Workers, DebounceMS: 20,
		Tune: func(pl *planner.Planner) { pl.PreferDP = true },
	}, spec.MailService(), net, mon, adapt.NewSimScheduler(env))
	if _, err := mgr.AddPrimary(spec.CompMailServer, nodes[0].ID); err != nil {
		return nil, err
	}
	for i := 0; i < cfg.Sessions; i++ {
		site := sites[i%len(sites)]
		user := "Alice"
		if i%len(sites)%2 == 1 {
			user = "Carol"
		}
		// 10 rps keeps the DP mapper's load relaxation exact (higher
		// rates hit bandwidth-bound candidates whose exact re-validation
		// fails, dropping whole chains to the exhaustive mapper — see
		// PlanDP). Rate admission itself is uniform across backends now
		// (PlanVia rejects any deployment whose capacity is below the
		// request rate); the load condition is exercised by A3/A7 and the
		// solver backend by A11.
		mgr.AddSession(fmt.Sprintf("s%05d", i), planner.Request{
			Interface: spec.IfaceClient, ClientNode: site, User: user, RateRPS: 10,
		})
	}

	var reports []fleet.WaveReport
	mgr.OnWave(func(r fleet.WaveReport) { reports = append(reports, r) })

	res := &FleetResult{Config: cfg}
	sw := newStopwatch(cfg.Timing)
	boot := mgr.Bootstrap()
	bootWall := sw.lapMS()
	res.Bootstrap = waveRow(boot, "bootstrap", bootWall)
	res.Failed = boot.Failed
	mgr.Start()
	defer mgr.Stop()

	// Target the first backbone hop of the first session's deployed
	// chain: squarely on a live path, so degrading it scopes a wave to
	// the sessions that traverse it.
	a, b, ok := firstHop(net, mgr.Sessions())
	if !ok {
		return nil, fmt.Errorf("bench: no inter-node hop in any deployed chain")
	}
	res.TargetLink = fmt.Sprintf("%s~%s", a, b)
	orig, _ := net.Link(a, b)
	origLat, origBW := orig.LatencyMS, orig.BandwidthMbps

	for k := 0; k < cfg.Events; k++ {
		at := 1000 * float64(k+1)
		degrade := k%2 == 0
		trigger := "degrade"
		if !degrade {
			trigger = "restore"
		}
		env.At(at, func() {
			if degrade {
				_ = mon.ReportLink(a, b, origLat+800, origBW, nil)
			} else {
				_ = mon.ReportLink(a, b, origLat, origBW, nil)
			}
		})
		before := len(reports)
		sw.lapMS() // exclude idle virtual time from the wave's wall clock
		env.RunUntil(at + 900)
		wall := sw.lapMS()
		for _, r := range reports[before:] {
			res.Rows = append(res.Rows, waveRow(r, trigger, wall))
		}
	}

	res.SessionsPerShard = mgr.SessionsPerShard()
	res.Instances = mgr.Instances()
	return res, nil
}

// waveRow distills a WaveReport into the benchmark ledger. The naive
// baseline is counter-derived: a per-session control plane runs one full
// planner pass per affected session, so it pays Sessions computations
// where the fleet pays PlanComputes (and proportionally as many route
// lookups — each naive pass would repeat one compute's lookups).
func waveRow(r fleet.WaveReport, trigger string, wallMS float64) FleetWaveRow {
	row := FleetWaveRow{
		Wave: r.Wave, Trigger: trigger, Sessions: r.Sessions,
		Computes: r.PlanComputes, MemoHits: r.MemoHits,
		NaiveComputes: r.Sessions, Cutovers: r.Cutovers + r.Deferred,
		Unchanged: r.Unchanged, RouteLookups: r.RouteLookups,
		SpanMS: r.SpanMS, WallMS: wallMS,
	}
	if row.Computes > 0 {
		row.Reduction = float64(row.NaiveComputes) / float64(row.Computes)
	}
	return row
}

// firstHop finds the first inter-node hop along any session's deployed
// chain, in session order, and returns its first link.
func firstHop(net *netmodel.Network, sessions []*fleet.Session) (a, b netmodel.NodeID, ok bool) {
	routes := net.Routes()
	for _, s := range sessions {
		dep := s.Deployment()
		if dep == nil {
			continue
		}
		for i := 0; i+1 < len(dep.Placements); i++ {
			path, found := routes.Path(dep.Placements[i].Node, dep.Placements[i+1].Node)
			if found && !path.IsLoopback() {
				return path.Nodes[0], path.Nodes[1], true
			}
		}
	}
	return "", "", false
}

// FleetTable renders the A10 result: the per-wave ledger, the headline
// naive-versus-fleet computation ratio, and the shard balance. All
// deterministic; wall-clock columns appear only when Timing was set.
func FleetTable(res *FleetResult) string {
	var sb strings.Builder
	cols := []string{"wave", "trigger", "sessions", "computes", "memo_hits", "naive", "reduction", "cutovers", "unchanged", "route_lookups", "span_ms"}
	if res.Config.Timing {
		cols = append(cols, "wall_ms")
	}
	t := metrics.NewTable(cols...)
	addRow := func(r FleetWaveRow) {
		vals := []interface{}{r.Wave, r.Trigger, r.Sessions, r.Computes, r.MemoHits,
			r.NaiveComputes, fmt.Sprintf("%.1fx", r.Reduction), r.Cutovers, r.Unchanged, r.RouteLookups, r.SpanMS}
		if res.Config.Timing {
			vals = append(vals, fmt.Sprintf("%.1f", r.WallMS))
		}
		t.AddRow(vals...)
	}
	addRow(res.Bootstrap)
	for _, r := range res.Rows {
		addRow(r)
	}
	sb.WriteString(t.String())

	naive, actual := 0, 0
	worst := -1.0
	for _, r := range res.Rows {
		naive += r.NaiveComputes
		actual += r.Computes
		if worst < 0 || r.Reduction < worst {
			worst = r.Reduction
		}
	}
	fmt.Fprintf(&sb, "\ntarget link: %s\n", res.TargetLink)
	if actual > 0 {
		fmt.Fprintf(&sb, "planner computations per link event: naive %d, fleet %d (%.1fx fewer; worst wave %.1fx)\n",
			naive, actual, float64(naive)/float64(actual), worst)
	}
	fmt.Fprintf(&sb, "waves per topology event: %d events -> %d waves\n", res.Config.Events, len(res.Rows))
	fmt.Fprintf(&sb, "shared instances: %d for %d sessions; sessions/shard %s\n",
		res.Instances, res.Config.Sessions, shardSummary(res.SessionsPerShard))
	if res.Failed > 0 {
		fmt.Fprintf(&sb, "BOOTSTRAP FAILURES: %d sessions\n", res.Failed)
	}
	if res.Config.Timing {
		fmt.Fprintf(&sb, "wave wall-clock: bootstrap %.0fms, events p50 %.0fms p99 %.0fms\n",
			res.Bootstrap.WallMS, wallQuantile(res.Rows, 0.50), wallQuantile(res.Rows, 0.99))
	}
	return sb.String()
}

// shardSummary renders per-shard session counts compactly.
func shardSummary(counts []int) string {
	parts := make([]string, len(counts))
	for i, c := range counts {
		parts[i] = fmt.Sprint(c)
	}
	return "[" + strings.Join(parts, " ") + "]"
}

// stopwatch measures wall-clock laps when enabled, and is inert
// otherwise so the deterministic path never consults the real clock.
type stopwatch struct {
	enabled bool
	last    time.Time
}

func newStopwatch(enabled bool) *stopwatch {
	sw := &stopwatch{enabled: enabled}
	if enabled {
		sw.last = time.Now()
	}
	return sw
}

// lapMS returns milliseconds since the previous lap and restarts it.
func (sw *stopwatch) lapMS() float64 {
	if !sw.enabled {
		return 0
	}
	ms := msSince(sw.last)
	sw.last = time.Now()
	return ms
}

// wallQuantile returns the q-quantile of per-event wave wall times.
func wallQuantile(rows []FleetWaveRow, q float64) float64 {
	if len(rows) == 0 {
		return 0
	}
	walls := make([]float64, len(rows))
	for i, r := range rows {
		walls[i] = r.WallMS
	}
	sort.Float64s(walls)
	idx := int(q * float64(len(walls)-1))
	return walls[idx]
}
