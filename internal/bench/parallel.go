package bench

import (
	"hash/fnv"
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a worker-count setting: n when positive, otherwise
// GOMAXPROCS — the default parallelism of scenario sweeps.
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// forEach runs fn(0), ..., fn(n-1) across a bounded worker pool of the
// given size (resolved through Workers). Every index runs exactly once;
// callers keep results deterministic by writing into slot i of a
// pre-sized slice, so output ordering never depends on scheduling.
// Each sim.Env is confined to one fn call, which is what makes
// scenario fan-out safe.
func forEach(workers, n int, fn func(i int)) {
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// scenarioSeed derives the deterministic RNG seed for one scenario run
// from the sweep seed, the scenario name, and the client count — a
// function of the run's identity, never of its schedule, so parallel
// and serial sweeps seed identically.
func scenarioSeed(seed int64, scenario string, clients int) int64 {
	h := fnv.New64a()
	var buf [8]byte
	for i := range buf {
		buf[i] = byte(uint64(seed) >> (8 * i))
	}
	h.Write(buf[:])
	h.Write([]byte(scenario))
	for i := range buf {
		buf[i] = byte(uint64(clients) >> (8 * i))
	}
	h.Write(buf[:])
	s := int64(h.Sum64())
	if s == 0 {
		s = 1
	}
	return s
}
