package bench

import (
	"partsvc/internal/metrics"
)

// This file is the callback fast-path engine for the Figure 7 workload:
// the same client/flusher logic as runClient/flush in fig7.go,
// expressed as continuation chains over sim's *Fn primitives, so a
// simulated event costs one inline callback instead of two channel
// handoffs and a goroutine context switch — and a 10k-client scenario
// needs zero client goroutines.
//
// The translation rule that keeps both engines bit-identical: every
// yield point of the process engine (Sleep, SleepUntil, Transfer, a
// blocking Lock/Acquire) becomes exactly one scheduled event here, and
// everything between two yield points runs synchronously inside one
// callback, in the same order. Both engines then consume identical
// (time, seq) event sequences, so every virtual timestamp — and hence
// every Row — matches to the bit (asserted by the equivalence tests).

// startClient launches one client on the callback engine. It mirrors
// runClient: SendsPerClient sends with a receive sweep after every
// ReceiveEvery sends, at the maximum rate the deployment permits.
func (w *scenarioWorld) startClient(rec *metrics.Recorder) {
	env := w.env
	cfg := w.cfg
	sends := 0
	receives := 0
	var sendStart float64

	// sleep mirrors Proc.Sleep: always one event, even for d == 0.
	sleep := func(d float64, fn func()) {
		if d < 0 {
			d = 0
		}
		env.After(d, fn)
	}

	var beginSend func()
	next := func() {
		if sends >= cfg.SendsPerClient {
			w.active--
			return
		}
		beginSend()
	}
	afterReceive := next
	afterSend := func() {
		rec.Add(env.Now() - sendStart)
		sends++
		if cfg.ReceiveEvery > 0 && sends%cfg.ReceiveEvery == 0 {
			receives++
			w.receiveCB(receives, sleep, afterReceive)
		} else {
			next()
		}
	}
	beginSend = func() {
		sendStart = env.Now()
		sleep(cfg.ClientServiceMS, func() {
			afterOverhead := func() { w.sendCB(sleep, afterSend) }
			if w.sc.Dynamic {
				sleep(cfg.ProxyOverheadMS, afterOverhead)
			} else {
				afterOverhead()
			}
		})
	}
	// Mirror Go(): one start event at the current time per client.
	env.At(env.Now(), beginSend)
}

// sendCB models one message send (the body of send after the client
// service + proxy sleeps, which startClient already issued).
func (w *scenarioWorld) sendCB(sleep func(float64, func()), done func()) {
	cfg := w.cfg
	switch {
	case w.sc.Cached:
		// MailClient -> local ViewMailServer; the send is absorbed
		// locally, logging coherence records; the policy may force a
		// synchronous flush across the slow link while the view is
		// locked.
		w.view.LockFn(func() {
			sleep(cfg.ViewServiceMS, func() {
				flush := false
				for r := 0; r < cfg.RecordsPerSend; r++ {
					if w.replica.Write("send", "user", nil, w.env.Now()) {
						flush = true
					}
				}
				if !flush {
					w.view.Unlock()
					done()
					return
				}
				batch := w.replica.TakePending(w.env.Now())
				// Encryptor/Decryptor tunnel on the flush path.
				sleep(2*cfg.CryptoServiceMS, func() {
					w.slowUp.TransferFn(len(batch)*cfg.RecordBytes, func(float64) {
						w.server.AcquireFn(1, func() {
							sleep(cfg.ServerServiceMS, func() {
								w.server.Release(1)
								// Acknowledgement.
								w.slowDown.TransferFn(cfg.ReplyBytes, func(float64) {
									w.view.Unlock()
									done()
								})
							})
						})
					})
				})
			})
		})
	case w.sc.Slow:
		// SS: the client talks straight to the distant MailServer,
		// "unaware of the slow link", through the encryptor tunnel.
		sleep(cfg.CryptoServiceMS, func() {
			w.slowUp.TransferFn(cfg.MessageBytes, func(float64) {
				sleep(cfg.CryptoServiceMS, func() {
					w.server.AcquireFn(1, func() {
						sleep(cfg.ServerServiceMS, func() {
							w.server.Release(1)
							w.slowDown.TransferFn(cfg.ReplyBytes, func(float64) { done() })
						})
					})
				})
			})
		})
	default:
		// DF/SF: LAN client straight to the MailServer.
		w.lanUp.TransferFn(cfg.MessageBytes, func(float64) {
			w.server.AcquireFn(1, func() {
				sleep(cfg.ServerServiceMS, func() {
					w.server.Release(1)
					w.lanDown.TransferFn(cfg.ReplyBytes, func(float64) { done() })
				})
			})
		})
	}
}

// receiveCB models one receive sweep, mirroring receive.
func (w *scenarioWorld) receiveCB(idx int, sleep func(float64, func()), done func()) {
	cfg := w.cfg
	body := func() {
		switch {
		case w.sc.Cached:
			w.view.LockFn(func() {
				sleep(cfg.ViewServiceMS, func() {
					w.view.Unlock()
					if cfg.MissEvery > 0 && idx%cfg.MissEvery == 0 {
						// Cache miss (the view's RRF): fetch from the primary.
						sleep(2*cfg.CryptoServiceMS, func() {
							w.slowUp.TransferFn(cfg.ReplyBytes, func(float64) {
								w.server.AcquireFn(1, func() {
									sleep(cfg.ServerServiceMS, func() {
										w.server.Release(1)
										w.slowDown.TransferFn(cfg.MessageBytes, func(float64) { done() })
									})
								})
							})
						})
					} else {
						done()
					}
				})
			})
		case w.sc.Slow:
			sleep(cfg.CryptoServiceMS, func() {
				w.slowUp.TransferFn(cfg.ReplyBytes, func(float64) {
					w.server.AcquireFn(1, func() {
						sleep(cfg.ServerServiceMS, func() {
							w.server.Release(1)
							w.slowDown.TransferFn(cfg.MessageBytes, func(float64) {
								sleep(cfg.CryptoServiceMS, func() { done() })
							})
						})
					})
				})
			})
		default:
			w.lanUp.TransferFn(cfg.ReplyBytes, func(float64) {
				w.server.AcquireFn(1, func() {
					sleep(cfg.ServerServiceMS, func() {
						w.server.Release(1)
						w.lanDown.TransferFn(cfg.MessageBytes, func(float64) { done() })
					})
				})
			})
		}
	}
	sleep(cfg.ClientServiceMS, func() {
		if w.sc.Dynamic {
			sleep(cfg.ProxyOverheadMS, body)
		} else {
			body()
		}
	})
}

// startFlusher launches the background flusher for time-driven
// policies on the callback engine, mirroring the flusher process in
// RunScenario.
func (w *scenarioWorld) startFlusher() {
	env := w.env
	var loop func()
	afterFlush := func() {
		if w.active == 0 {
			return
		}
		loop()
	}
	loop = func() {
		deadline, _ := w.replica.NextDeadline()
		if deadline > env.Now() {
			env.At(deadline, func() { w.flushCB(afterFlush) })
		} else {
			w.flushCB(afterFlush)
		}
	}
	env.At(env.Now(), loop)
}

// flushCB propagates the replica's pending updates across the slow link
// while holding the view lock, mirroring flush.
func (w *scenarioWorld) flushCB(done func()) {
	cfg := w.cfg
	w.view.LockFn(func() {
		batch := w.replica.TakePending(w.env.Now())
		if len(batch) == 0 {
			w.view.Unlock()
			done()
			return
		}
		w.env.After(2*cfg.CryptoServiceMS, func() {
			w.slowUp.TransferFn(len(batch)*cfg.RecordBytes, func(float64) {
				w.server.AcquireFn(1, func() {
					w.env.After(cfg.ServerServiceMS, func() {
						w.server.Release(1)
						w.slowDown.TransferFn(cfg.ReplyBytes, func(float64) {
							w.view.Unlock()
							done()
						})
					})
				})
			})
		})
	})
}
