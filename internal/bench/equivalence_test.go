package bench

import (
	"fmt"
	"runtime"
	"testing"
	"time"
)

// smallConfig keeps the equivalence matrix fast: every variant runs the
// full 9-scenario grid, but at modest client counts.
func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.MaxClients = 3
	cfg.SendsPerClient = 40
	return cfg
}

// rowsString renders rows for byte-level comparison. Comparing the
// rendered table (not struct equality) is the point: the acceptance
// criterion is byte-identical *output*.
func rowsString(rows []Row) string { return Fig7Table(rows) }

// TestEngineEquivalence is the tentpole determinism matrix: the
// callback fast path, the goroutine-process engine, and the heap-queue
// oracle must all produce byte-identical Figure 7 tables, at any worker
// count.
func TestEngineEquivalence(t *testing.T) {
	base := smallConfig()
	base.Workers = 1
	want := rowsString(RunFig7(base))

	variants := []struct {
		name string
		mut  func(*Config)
	}{
		{"procs-engine", func(c *Config) { c.Procs = true }},
		{"heap-queue", func(c *Config) { c.HeapQueue = true }},
		{"procs+heap", func(c *Config) { c.Procs = true; c.HeapQueue = true }},
		{"workers-4", func(c *Config) { c.Workers = 4 }},
		{"workers-16", func(c *Config) { c.Workers = 16 }},
		{"procs-workers-8", func(c *Config) { c.Procs = true; c.Workers = 8 }},
	}
	for _, v := range variants {
		t.Run(v.name, func(t *testing.T) {
			cfg := smallConfig()
			cfg.Workers = 1
			v.mut(&cfg)
			got := rowsString(RunFig7(cfg))
			if got != want {
				t.Fatalf("variant %s diverges from the serial callback/calendar baseline:\n--- want\n%s--- got\n%s",
					v.name, want, got)
			}
		})
	}
}

// TestSweepParallelEquivalence: the coherence sweep must be
// byte-identical serial vs parallel.
func TestSweepParallelEquivalence(t *testing.T) {
	serial, parallel := smallConfig(), smallConfig()
	serial.Workers = 1
	parallel.Workers = 8
	a := BoundSweepTable(CoherenceBoundSweep(serial, 2))
	b := BoundSweepTable(CoherenceBoundSweep(parallel, 2))
	if a != b {
		t.Fatalf("sweep diverges serial vs parallel:\n--- serial\n%s--- parallel\n%s", a, b)
	}
}

// TestClientCountsOverride: an explicit ClientCounts list replaces the
// 1..MaxClients sweep, preserving scenario-major order.
func TestClientCountsOverride(t *testing.T) {
	cfg := smallConfig()
	cfg.ClientCounts = []int{2, 5}
	rows := RunFig7(cfg)
	scs := Scenarios()
	if len(rows) != len(scs)*2 {
		t.Fatalf("rows = %d, want %d", len(rows), len(scs)*2)
	}
	for i, row := range rows {
		wantSc := scs[i/2].Name
		wantN := []int{2, 5}[i%2]
		if row.Scenario != wantSc || row.Clients != wantN {
			t.Fatalf("row %d = (%s,%d), want (%s,%d)", i, row.Scenario, row.Clients, wantSc, wantN)
		}
	}
	// Counts shared with the grid sweep must agree exactly.
	grid := RunFig7(smallConfig())
	for _, row := range rows {
		if row.Clients != 2 {
			continue
		}
		for _, g := range grid {
			if g.Scenario == row.Scenario && g.Clients == 2 && g != row {
				t.Fatalf("%s@2 differs between ClientCounts and grid run: %+v vs %+v",
					row.Scenario, row, g)
			}
		}
	}
}

// TestScenarioSeedDerivation: seeds are stable, distinct across
// scenarios/counts, and never zero (zero would collapse to the Env
// default and alias distinct runs).
func TestScenarioSeedDerivation(t *testing.T) {
	seen := map[int64]string{}
	for _, sc := range Scenarios() {
		for _, n := range []int{1, 2, 100, 10000} {
			s := scenarioSeed(1, sc.Name, n)
			if s == 0 {
				t.Fatalf("seed(%s,%d) = 0", sc.Name, n)
			}
			if s != scenarioSeed(1, sc.Name, n) {
				t.Fatalf("seed(%s,%d) unstable", sc.Name, n)
			}
			key := fmt.Sprintf("%s/%d", sc.Name, n)
			if prev, dup := seen[s]; dup {
				t.Fatalf("seed collision: %s and %s both map to %d", prev, key, s)
			}
			seen[s] = key
		}
	}
	if scenarioSeed(1, "SS", 1) == scenarioSeed(2, "SS", 1) {
		t.Fatal("sweep seed must perturb scenario seeds")
	}
}

// TestWorkers: the pool-size policy.
func TestWorkers(t *testing.T) {
	if got := Workers(3); got != 3 {
		t.Fatalf("Workers(3) = %d", got)
	}
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(0) = %d, want GOMAXPROCS", got)
	}
	if got := Workers(-1); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(-1) = %d, want GOMAXPROCS", got)
	}
}

// TestForEachCoversAllIndices: every index is visited exactly once for
// any worker count.
func TestForEachCoversAllIndices(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 64} {
		counts := make([]int32, 100)
		forEach(workers, len(counts), func(i int) { counts[i]++ })
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, c)
			}
		}
	}
	forEach(4, 0, func(i int) { t.Fatal("forEach(_, 0) must not invoke fn") })
}

// TestScenarioRunsDoNotLeakGoroutines is satellite (a) at the bench
// layer: 100 scenario runs (including the proc engine, which parks
// goroutines on locks and queues) must not grow the goroutine count.
func TestScenarioRunsDoNotLeakGoroutines(t *testing.T) {
	cfg := smallConfig()
	cfg.SendsPerClient = 5
	baseline := runtime.NumGoroutine()
	for i := 0; i < 100; i++ {
		c := cfg
		c.Procs = i%2 == 0
		RunScenario(c, Scenarios()[i%len(Scenarios())], 2)
	}
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > baseline+2 && time.Now().Before(deadline) {
		runtime.Gosched()
		time.Sleep(time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > baseline+2 {
		t.Fatalf("goroutines grew from %d to %d across 100 scenario runs", baseline, n)
	}
}
