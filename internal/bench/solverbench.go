package bench

import (
	"fmt"
	"strings"

	"partsvc/internal/metrics"
	"partsvc/internal/netmodel"
	"partsvc/internal/netmon"
	"partsvc/internal/planner"
	"partsvc/internal/property"
	"partsvc/internal/spec"
	"partsvc/internal/topology"
)

// A11Config tunes the constraint-solver experiment (A11): backend
// scaling on Waxman topologies and the repair-vs-fresh-replan curve
// under the Figure-8 fault kinds.
type A11Config struct {
	// Sizes are the Waxman topology sizes to sweep.
	Sizes []int
	// Seed feeds the Waxman generator.
	Seed int64
	// ExhaustiveMax is the largest size at which the exhaustive backend
	// still runs; beyond it the exhaustive columns print "-" (its search
	// is factorial in candidate count and would dominate the sweep).
	ExhaustiveMax int
	// Workers bounds sweep parallelism; output-invariant (0 = GOMAXPROCS).
	Workers int
	// Timing adds wall-clock plan latency columns. Off by default: the
	// deterministic output must stay byte-identical across runs.
	Timing bool
}

// DefaultA11Config returns the headline A11 configuration: sizes up to
// the 256-node acceptance scenario.
func DefaultA11Config() A11Config {
	return A11Config{Sizes: []int{8, 16, 32, 64, 128, 256}, Seed: 7, ExhaustiveMax: 16}
}

// SolverScalingRow is one backend-scaling data point: the work each
// planner backend spends on the same request over the same topology,
// plus the objective value it reaches. Counters and latencies are
// deterministic; the *WallMS fields are populated only under Timing.
type SolverScalingRow struct {
	Nodes int
	// Solver work counters (constraint engine units).
	SolverProps, SolverBacktracks, SolverEvals uint64
	SolverLatencyMS                            float64
	// DP mapper work (mappings tried) and objective.
	DPMappings  int
	DPLatencyMS float64
	// Exhaustive mapper work and objective; Mappings is -1 when the size
	// exceeded ExhaustiveMax and the backend was skipped.
	ExhMappings  int
	ExhLatencyMS float64

	SolverWallMS, DPWallMS, ExhWallMS float64
}

// RepairCurveRow is one point of the repair-vs-fresh curve: after one
// scripted fault on a deployed chain's interior link, the constraint
// propagations spent by incremental repair versus a fresh solve of the
// same request under the same network state.
type RepairCurveRow struct {
	Nodes int
	// Event names the Figure-8 fault kind played on the target link.
	Event string
	// RepairProps / FreshProps are propagation counts; Ratio is
	// fresh/repair (the factor repair is cheaper by).
	RepairProps uint64
	FreshProps  uint64
	Ratio       float64
	// Fallback marks a repair that was infeasible under its pins and
	// fell back to a fresh solve internally.
	Fallback bool
	// Moved counts placements the repair installed anew (0 = the running
	// graph survived unchanged).
	Moved int
}

// A11Result is the full experiment output.
type A11Result struct {
	Config  A11Config
	Scaling []SolverScalingRow
	Repair  []RepairCurveRow
}

// RunA11 runs both A11 sweeps. Rows are deterministic for a given
// config at any Workers value: every size is an independent topology
// and planner, and the fault script inside a size runs sequentially.
func RunA11(cfg A11Config) (*A11Result, error) {
	if len(cfg.Sizes) == 0 {
		return nil, fmt.Errorf("bench: A11 needs at least one topology size")
	}
	res := &A11Result{Config: cfg}

	scaling := make([]SolverScalingRow, len(cfg.Sizes))
	scaleErr := make([]error, len(cfg.Sizes))
	forEach(cfg.Workers, len(cfg.Sizes), func(i int) {
		scaling[i], scaleErr[i] = a11Scale(cfg, cfg.Sizes[i])
	})
	for _, err := range scaleErr {
		if err != nil {
			return nil, err
		}
	}
	res.Scaling = scaling

	repair := make([][]RepairCurveRow, len(cfg.Sizes))
	repErr := make([]error, len(cfg.Sizes))
	forEach(cfg.Workers, len(cfg.Sizes), func(i int) {
		repair[i], repErr[i] = a11Repair(cfg, cfg.Sizes[i])
	})
	for _, err := range repErr {
		if err != nil {
			return nil, err
		}
	}
	for _, rows := range repair {
		res.Repair = append(res.Repair, rows...)
	}
	return res, nil
}

// a11Net builds one sweep topology with the deterministic role
// assignment shared by A3/A10: a fully trusted primary host at index 0
// and a branch-trust client at index 1.
func a11Net(cfg A11Config, n int) (*netmodel.Network, []*netmodel.Node, error) {
	net, err := topology.Waxman(topology.DefaultWaxman(n, cfg.Seed))
	if err != nil {
		return nil, nil, err
	}
	nodes := net.Nodes()
	nodes[0].Props["TrustLevel"] = property.Int(5)
	nodes[1].Props["TrustLevel"] = property.Int(4)
	return net, nodes, nil
}

// a11Planner builds a planner over net with the primary registered.
func a11Planner(net *netmodel.Network, primaryNode netmodel.NodeID) (*planner.Planner, error) {
	pl := planner.New(spec.MailService(), net)
	ms, err := pl.PrimaryPlacement(spec.CompMailServer, primaryNode)
	if err != nil {
		return nil, err
	}
	pl.AddExisting(ms)
	return pl, nil
}

// a11Scale measures one size: the same request planned by all three
// backends on fresh planners over the same topology.
func a11Scale(cfg A11Config, n int) (SolverScalingRow, error) {
	net, nodes, err := a11Net(cfg, n)
	if err != nil {
		return SolverScalingRow{}, err
	}
	req := planner.Request{
		Interface: spec.IfaceClient, ClientNode: nodes[1].ID, User: "Alice", RateRPS: 10,
	}
	row := SolverScalingRow{Nodes: n, ExhMappings: -1}

	run := func(b planner.Backend) (*planner.Planner, *planner.Deployment, float64, error) {
		pl, err := a11Planner(net, nodes[0].ID)
		if err != nil {
			return nil, nil, 0, err
		}
		sw := newStopwatch(cfg.Timing)
		dep, err := pl.PlanVia(b, req)
		if err != nil {
			return nil, nil, 0, err
		}
		return pl, dep, sw.lapMS(), nil
	}

	pl, dep, wall, err := run(planner.BackendSolver)
	if err != nil {
		return row, err
	}
	row.SolverProps = pl.SolverStats.Propagations.Load()
	row.SolverBacktracks = pl.SolverStats.Backtracks.Load()
	row.SolverEvals = pl.SolverStats.Evaluations.Load()
	row.SolverLatencyMS = dep.ExpectedLatencyMS
	row.SolverWallMS = wall

	pl, dep, wall, err = run(planner.BackendDP)
	if err != nil {
		return row, err
	}
	row.DPMappings = pl.Stats().MappingsTried
	row.DPLatencyMS = dep.ExpectedLatencyMS
	row.DPWallMS = wall

	if n <= cfg.ExhaustiveMax {
		pl, dep, wall, err = run(planner.BackendExhaustive)
		if err != nil {
			return row, err
		}
		row.ExhMappings = pl.Stats().MappingsTried
		row.ExhLatencyMS = dep.ExpectedLatencyMS
		row.ExhWallMS = wall
	}
	return row, nil
}

// a11Faults are the Figure-8 fault kinds replayed on the target link,
// in script order: degrade it, restore it, sever it.
func a11Faults(origLat, origBW float64) []struct {
	name     string
	lat, mbs float64
} {
	return []struct {
		name     string
		lat, mbs float64
	}{
		{"link-degrade", origLat + 800, origBW},
		{"link-restore", origLat, origBW},
		{"link-down", downLinkLatencyMS, downLinkBandwidthMbps},
	}
}

// a11Repair plays the fault script against one deployed session and
// measures, per event, incremental repair against a fresh solve of the
// same request under the same (post-fault) network state and reuse set.
func a11Repair(cfg A11Config, n int) ([]RepairCurveRow, error) {
	net, nodes, err := a11Net(cfg, n)
	if err != nil {
		return nil, err
	}
	mon := netmon.New(net)

	// Deterministic client scan: the first node whose solver plan is a
	// 3+ placement chain, so the fault can land on an interior edge away
	// from the pinned head.
	var (
		pl  *planner.Planner
		dep *planner.Deployment
		req planner.Request
	)
	for _, node := range nodes[1:] {
		cand, err := a11Planner(net, nodes[0].ID)
		if err != nil {
			return nil, err
		}
		cand.PreferSolver = true
		r := planner.Request{Interface: spec.IfaceClient, ClientNode: node.ID, User: "Alice", RateRPS: 10}
		d, err := cand.PlanSolver(r)
		if err != nil || len(d.Placements) < 3 {
			continue
		}
		pl, dep, req = cand, d, r
		break
	}
	if pl == nil {
		return []RepairCurveRow{{Nodes: n, Event: "no-interior-chain"}}, nil
	}
	pl.AddExisting(dep.Placements...)

	// Target an interior-edge link clear of the head edge (a head hit
	// forces the fallback path by design and would measure nothing).
	var a, b netmodel.NodeID
	for _, e := range dep.Edges {
		if e.From == 0 || len(e.Path.Nodes) < 2 {
			continue
		}
		for i := 0; i+1 < len(e.Path.Nodes); i++ {
			ch := planner.NewChangedSet()
			ch.AddLink(e.Path.Nodes[i], e.Path.Nodes[i+1])
			if !ch.PathAffected(dep.Edges[0].Path) && !ch.NodeAffected(req.ClientNode) {
				a, b = e.Path.Nodes[i], e.Path.Nodes[i+1]
				break
			}
		}
		if a != "" {
			break
		}
	}
	if a == "" {
		return []RepairCurveRow{{Nodes: n, Event: "no-clear-interior-link"}}, nil
	}
	orig, _ := net.Link(a, b)
	origLat, origBW := orig.LatencyMS, orig.BandwidthMbps

	var rows []RepairCurveRow
	for _, f := range a11Faults(origLat, origBW) {
		if err := mon.ReportLink(a, b, f.lat, f.mbs, nil); err != nil {
			return nil, err
		}
		ch := planner.NewChangedSet()
		ch.AddLink(a, b)

		// Fresh-replan reference on its own planner: same topology state,
		// same reuse set, but the full ReplanRewire pass a control plane
		// without incremental repair would run on every event (including
		// its anchor-free rewire check) — the honest baseline, since the
		// repair path's fallback pays exactly that when repair is
		// infeasible.
		fresh, err := a11Planner(net, nodes[0].ID)
		if err != nil {
			return nil, err
		}
		fresh.PreferSolver = true
		fresh.AddExisting(dep.Placements...)
		if _, err := fresh.ReplanRewire(dep, req); err != nil {
			return nil, err
		}
		freshProps := fresh.SolverStats.Propagations.Load()

		propsBefore := pl.SolverStats.Propagations.Load()
		fallbacksBefore := pl.SolverStats.RepairFallbacks.Load()
		diff, err := pl.RepairReplan(dep, req, ch)
		if err != nil {
			return nil, err
		}
		repairProps := pl.SolverStats.Propagations.Load() - propsBefore

		row := RepairCurveRow{
			Nodes: n, Event: f.name,
			RepairProps: repairProps, FreshProps: freshProps,
			Fallback: pl.SolverStats.RepairFallbacks.Load() > fallbacksBefore,
			Moved:    len(diff.Install),
		}
		if repairProps > 0 {
			row.Ratio = float64(freshProps) / float64(repairProps)
		}
		rows = append(rows, row)

		// Adopt the repair like the runtime would: drained removals leave
		// the reuse set, new placements join it.
		pl.DropExisting(diff.Remove...)
		pl.AddExisting(diff.New.Placements...)
		dep = diff.New
	}
	return rows, nil
}

// A11ScalingTable renders the backend-scaling sweep.
func A11ScalingTable(res *A11Result) string {
	cols := []string{"nodes", "solver_props", "solver_backtracks", "solver_evals",
		"dp_mappings", "exh_mappings", "solver_lat_ms", "dp_lat_ms", "exh_lat_ms"}
	if res.Config.Timing {
		cols = append(cols, "solver_wall_ms", "dp_wall_ms", "exh_wall_ms")
	}
	t := metrics.NewTable(cols...)
	for _, r := range res.Scaling {
		exhMaps, exhLat := "-", "-"
		if r.ExhMappings >= 0 {
			exhMaps = fmt.Sprint(r.ExhMappings)
			exhLat = fmt.Sprintf("%.2f", r.ExhLatencyMS)
		}
		vals := []interface{}{r.Nodes, r.SolverProps, r.SolverBacktracks, r.SolverEvals,
			r.DPMappings, exhMaps,
			fmt.Sprintf("%.2f", r.SolverLatencyMS), fmt.Sprintf("%.2f", r.DPLatencyMS), exhLat}
		if res.Config.Timing {
			exhWall := "-"
			if r.ExhMappings >= 0 {
				exhWall = fmt.Sprintf("%.1f", r.ExhWallMS)
			}
			vals = append(vals, fmt.Sprintf("%.1f", r.SolverWallMS), fmt.Sprintf("%.1f", r.DPWallMS), exhWall)
		}
		t.AddRow(vals...)
	}
	return t.String()
}

// A11RepairTable renders the repair-vs-fresh curve plus its headline:
// the worst (smallest) cheapness ratio across feasible repairs. Fallback
// rows are excluded from the headline — when repair is infeasible the
// planner pays exactly the fresh-replan cost by construction, so their
// ~1x parity is reported separately, not as a repair result.
func A11RepairTable(res *A11Result) string {
	var sb strings.Builder
	t := metrics.NewTable("nodes", "event", "repair_props", "fresh_props", "ratio", "fallback", "moved")
	worst := -1.0
	fallbacks := 0
	for _, r := range res.Repair {
		ratio := "-"
		if r.Ratio > 0 {
			ratio = fmt.Sprintf("%.1fx", r.Ratio)
			if r.Fallback {
				fallbacks++
			} else if worst < 0 || r.Ratio < worst {
				worst = r.Ratio
			}
		}
		t.AddRow(r.Nodes, r.Event, r.RepairProps, r.FreshProps, ratio, r.Fallback, r.Moved)
	}
	sb.WriteString(t.String())
	if worst > 0 {
		fmt.Fprintf(&sb, "\nrepair vs fresh solve: worst feasible-repair case %.1fx fewer propagations\n", worst)
	}
	if fallbacks > 0 {
		fmt.Fprintf(&sb, "infeasible-repair events falling back to a fresh replan at parity: %d\n", fallbacks)
	}
	return sb.String()
}
