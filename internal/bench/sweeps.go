package bench

import (
	"time"

	"partsvc/internal/coherence"
	"partsvc/internal/metrics"
	"partsvc/internal/planner"
	"partsvc/internal/property"
	"partsvc/internal/spec"
	"partsvc/internal/topology"
)

// BoundSweepRow is one point of ablation A2: send latency and staleness
// as the coherence bound varies.
type BoundSweepRow struct {
	// Policy names the coherence policy.
	Policy string
	// AvgMS is the average send latency at the sweep's client count.
	AvgMS float64
	// MaxStale is the maximum number of unpropagated coherence records
	// ever outstanding (the staleness the policy permits).
	MaxStale int
}

// CoherenceBoundSweep runs the cached slow-site scenario across
// coherence policies from write-through to none, exposing the
// latency/staleness frontier that Section 4.2 alludes to ("the
// framework provides sufficient flexibility to take advantage of
// relaxed consistency protocols"). Policy runs are independent
// simulations and fan out over the Config.Workers pool; row order (and
// content) is byte-identical to a serial sweep.
func CoherenceBoundSweep(cfg Config, clients int) []BoundSweepRow {
	policies := []coherence.Policy{
		coherence.WriteThrough{},
		coherence.CountBound{Bound: 100},
		coherence.CountBound{Bound: 250},
		coherence.CountBound{Bound: 500},
		coherence.CountBound{Bound: 1000},
		coherence.Periodic{PeriodMS: 250},
		coherence.None{},
	}
	rows := make([]BoundSweepRow, len(policies))
	forEach(cfg.Workers, len(policies), func(i int) {
		p := policies[i]
		// The scenario name carries the policy so every run seeds its
		// RNG distinctly.
		sc := Scenario{Name: "sweep-" + p.String(), Dynamic: true, Cached: true, Slow: true, Policy: p}
		row := RunScenario(cfg, sc, clients)
		rows[i] = BoundSweepRow{Policy: p.String(), AvgMS: row.AvgMS, MaxStale: maxStaleness(p, cfg)}
	})
	return rows
}

// maxStaleness computes the worst-case unpropagated records under a
// policy for the configured workload.
func maxStaleness(p coherence.Policy, cfg Config) int {
	switch pol := p.(type) {
	case coherence.WriteThrough:
		return cfg.RecordsPerSend // at most one send's records in flight
	case coherence.CountBound:
		return pol.Bound
	case coherence.Periodic:
		// Bounded by what the workload can produce within one period; a
		// period in the hundreds of ms comfortably exceeds a send burst.
		return cfg.SendsPerClient * cfg.RecordsPerSend * cfg.MaxClients
	case coherence.None:
		return cfg.SendsPerClient * cfg.RecordsPerSend * cfg.MaxClients
	}
	return 0
}

// BoundSweepTable renders A2 rows.
func BoundSweepTable(rows []BoundSweepRow) string {
	t := metrics.NewTable("policy", "avg_send_ms", "max_stale_records")
	for _, r := range rows {
		t.AddRow(r.Policy, r.AvgMS, r.MaxStale)
	}
	return t.String()
}

// ScalingRow is one point of ablation A3: planner effort versus network
// size.
type ScalingRow struct {
	Nodes      int
	PlanMS     float64
	Mappings   int
	Chains     int
	DPPlanMS   float64
	DPMappings int
}

// PlannerScaling plans the mail service on BRITE-like Waxman topologies
// of growing size, with both the exhaustive and the DP mapper. Every
// topology gets a trust-5 node to host the primary and the request
// originates at a trust-4-or-better node.
func PlannerScaling(sizes []int, seed int64) ([]ScalingRow, error) {
	var rows []ScalingRow
	for _, n := range sizes {
		net, err := topology.Waxman(topology.DefaultWaxman(n, seed))
		if err != nil {
			return nil, err
		}
		// Ensure a primary host and a client exist regardless of seed.
		nodes := net.Nodes()
		nodes[0].Props["TrustLevel"] = property.Int(5)
		nodes[1].Props["TrustLevel"] = property.Int(4)
		svc := spec.MailService()

		measure := func(dp bool) (float64, int, int, error) {
			pl := planner.New(svc, net)
			ms, err := pl.PrimaryPlacement(spec.CompMailServer, nodes[0].ID)
			if err != nil {
				return 0, 0, 0, err
			}
			pl.AddExisting(ms)
			req := planner.Request{
				Interface: spec.IfaceClient, ClientNode: nodes[1].ID, User: "Alice", RateRPS: 10,
			}
			t0 := time.Now()
			if dp {
				_, err = pl.PlanDP(req)
			} else {
				_, err = pl.Plan(req)
			}
			if err != nil {
				return 0, 0, 0, err
			}
			st := pl.Stats()
			return msSince(t0), st.MappingsTried, st.ChainsEnumerated, nil
		}
		exMS, exMaps, chains, err := measure(false)
		if err != nil {
			return nil, err
		}
		dpMS, dpMaps, _, err := measure(true)
		if err != nil {
			return nil, err
		}
		rows = append(rows, ScalingRow{
			Nodes: n, PlanMS: exMS, Mappings: exMaps, Chains: chains,
			DPPlanMS: dpMS, DPMappings: dpMaps,
		})
	}
	return rows, nil
}

// ScalingTable renders A3 rows.
func ScalingTable(rows []ScalingRow) string {
	t := metrics.NewTable("nodes", "chains", "exhaustive_ms", "exhaustive_mappings", "dp_ms", "dp_mappings")
	for _, r := range rows {
		t.AddRow(r.Nodes, r.Chains, r.PlanMS, r.Mappings, r.DPPlanMS, r.DPMappings)
	}
	return t.String()
}
