package bench

import "testing"

// TestFig8Adapts: every scenario must show the full adaptation story —
// a clean steady state, a visible outage, detection, a cutover, and a
// recovered (if pricier) post-adaptation latency.
func TestFig8Adapts(t *testing.T) {
	cfg := DefaultFig8Config()
	rows := RunFig8(cfg)
	if len(rows) != len(Fig8Scenarios(cfg)) {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if r.SteadyMS <= 0 || r.Sends == 0 {
			t.Errorf("%s: no steady-state traffic (steady=%.2f sends=%d)", r.Scenario, r.SteadyMS, r.Sends)
		}
		if r.DetectMS < 0 {
			t.Errorf("%s: fault never detected", r.Scenario)
		}
		if r.CutoverMS < 0 {
			t.Errorf("%s: adaptation never completed", r.Scenario)
		}
		if r.DuringMS <= r.SteadyMS {
			t.Errorf("%s: the fault must be visible (during=%.2f steady=%.2f)", r.Scenario, r.DuringMS, r.SteadyMS)
		}
		if r.PostMS <= 0 || r.PostMS >= r.DuringMS {
			t.Errorf("%s: adaptation must recover latency (post=%.2f during=%.2f)", r.Scenario, r.PostMS, r.DuringMS)
		}
	}
	// The node crash must pay the failure detector's suspicion window;
	// link faults are observed directly by the monitor.
	byName := map[string]Fig8Row{}
	for _, r := range rows {
		byName[r.Scenario] = r
	}
	if nc, ld := byName["node-crash"], byName["link-degrade"]; nc.DetectMS <= ld.DetectMS {
		t.Errorf("node-crash detection (%.2f) should be slower than link-degrade (%.2f)",
			nc.DetectMS, ld.DetectMS)
	}
}

// TestFig8Deterministic: the rendered table is byte-identical across
// repeated runs and across sweep worker counts — scripted faults fire
// at virtual times and the controller runs on the virtual clock, so
// parallelism must not leak into the results.
func TestFig8Deterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("repeated full runs")
	}
	cfg := DefaultFig8Config()
	cfg.Workers = 1
	serial := Fig8Table(RunFig8(cfg))
	for _, workers := range []int{1, 4} {
		cfg.Workers = workers
		if got := Fig8Table(RunFig8(cfg)); got != serial {
			t.Fatalf("workers=%d diverged:\n%s\nwant:\n%s", workers, got, serial)
		}
	}
}
