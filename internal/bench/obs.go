package bench

import (
	"sort"

	"partsvc/internal/metrics"
	"partsvc/internal/trace"
)

// RunScenarioTraced is RunScenario under a virtual-clock tracer: it
// returns the latency row plus every span the run recorded, with
// timestamps in simulated milliseconds. The run uses the process
// engine (the callback engine emits no spans) and is fully
// deterministic — calling it twice with the same arguments yields
// byte-identical trace.Tree renderings.
func RunScenarioTraced(cfg Config, sc Scenario, clients int) (Row, []trace.Span) {
	// Generous ring capacity: a send produces at most ~8 spans
	// (client/proxy/view/flush/tunnel/transport/mail plus slack), so
	// this never wraps for the paper's workloads.
	capacity := clients*cfg.SendsPerClient*8 + 64
	row, _, tr := runScenario(cfg, sc, clients, capacity)
	return row, tr.Spans()
}

// SpanBreakdown aggregates spans by name into latency histograms and
// renders one table row per span name (sorted), giving the per-stage
// cost breakdown used by EXPERIMENTS.md appendix A6.
func SpanBreakdown(spans []trace.Span) string {
	byName := map[string]*metrics.Histogram{}
	for i := range spans {
		h := byName[spans[i].Name]
		if h == nil {
			h = &metrics.Histogram{}
			byName[spans[i].Name] = h
		}
		h.Observe(spans[i].DurMS)
	}
	names := make([]string, 0, len(byName))
	for name := range byName {
		names = append(names, name)
	}
	sort.Strings(names)
	t := metrics.NewTable("span", "count", "mean_ms", "p50_ms", "p99_ms", "max_ms")
	for _, name := range names {
		h := byName[name]
		t.AddRow(name, h.Count(), h.Mean(), h.Quantile(0.50), h.Quantile(0.99), h.Max())
	}
	return t.String()
}

// RegisterSimMetrics publishes the process-wide simulator scheduler
// counters as the registry's "sim" section.
func RegisterSimMetrics(reg *metrics.Registry) {
	reg.RegisterSection("sim", func() []metrics.KV {
		events, callbacks, switches := SimCounters()
		return []metrics.KV{
			metrics.KVf("events", "%d", events),
			metrics.KVf("callback_events", "%d", callbacks),
			metrics.KVf("proc_switches", "%d", switches),
		}
	})
}
