package bench

import (
	"fmt"

	"partsvc/internal/coherence"
	"partsvc/internal/metrics"
	"partsvc/internal/sim"
	"partsvc/internal/trace"
)

// Row is one Figure 7 data point: the average client-perceived send
// latency for a scenario at a client count.
type Row struct {
	Scenario string
	Clients  int
	AvgMS    float64
	P95MS    float64
	MaxMS    float64
	Sends    int
}

// RunFig7 reproduces Figure 7: every scenario at each grid client
// count (1..MaxClients, or ClientCounts when set). Scenario runs are
// independent sim.Envs, so the grid fans out over a bounded worker
// pool (Config.Workers, default GOMAXPROCS); rows appear scenario-major
// in Scenarios() order and are byte-identical to a serial run.
func RunFig7(cfg Config) []Row {
	rows, _ := RunFig7Stats(cfg)
	return rows
}

// RunFig7Stats is RunFig7 plus a merged recorder holding every send
// latency in the grid: each parallel worker records into its own
// per-scenario shard and the shards merge in row order afterwards, so
// the combined quantiles are identical at any worker count.
func RunFig7Stats(cfg Config) ([]Row, *metrics.Recorder) {
	scs := Scenarios()
	counts := cfg.clientCounts()
	rows := make([]Row, len(scs)*len(counts))
	recs := make([]*metrics.Recorder, len(rows))
	forEach(cfg.Workers, len(rows), func(i int) {
		rows[i], recs[i], _ = runScenario(cfg, scs[i/len(counts)], counts[i%len(counts)], 0)
	})
	merged := &metrics.Recorder{}
	for _, rec := range recs {
		merged.Merge(rec)
	}
	return rows, merged
}

// simStats aggregates scheduler counters across every scenario run in
// the process (concurrency-safe: parallel sweeps bump them from worker
// goroutines).
var simStats struct {
	events, callbacks, switches metrics.Counter
}

// SimCounters reports the simulator scheduler counters accumulated by
// all scenario runs so far: total events dispatched, fast-path
// callback events, and slow-path process switches.
func SimCounters() (events, callbackEvents, procSwitches int64) {
	return simStats.events.Load(), simStats.callbacks.Load(), simStats.switches.Load()
}

// RunScenario simulates one scenario at one client count and returns
// its latency row. The simulation is deterministic: the same Config
// yields bit-identical rows under either engine, either event queue,
// and any sweep parallelism.
func RunScenario(cfg Config, sc Scenario, clients int) Row {
	row, _, _ := runScenario(cfg, sc, clients, 0)
	return row
}

// runScenario is the shared scenario engine. traceCap > 0 attaches a
// virtual-clock tracer (capacity traceCap) to the world and forces the
// process engine — the callback engine produces identical rows but
// emits no spans. Span timestamps read env.Now, so repeated runs of
// the same Config produce byte-identical span trees.
func runScenario(cfg Config, sc Scenario, clients, traceCap int) (Row, *metrics.Recorder, *trace.Tracer) {
	env := sim.NewEnvWith(sim.Options{
		Seed:      scenarioSeed(cfg.Seed, sc.Name, clients),
		HeapQueue: cfg.HeapQueue,
	})
	defer env.Stop()
	var tr *trace.Tracer
	if traceCap > 0 {
		tr = trace.NewTracer(traceCap, env.Now)
		cfg.Procs = true
	}
	w := &scenarioWorld{cfg: cfg, sc: sc, env: env, tr: tr}
	w.build()
	rec := &metrics.Recorder{}
	w.active = clients
	// Time-driven policies flush from a background flusher (the Smock
	// runtime's periodic FlushIfDue loop); it drains once after the last
	// client finishes and exits.
	timeDriven := false
	if w.replica != nil {
		_, timeDriven = w.replica.Policy().NextDeadline(0)
	}
	if cfg.Procs {
		for c := 0; c < clients; c++ {
			env.Go(fmt.Sprintf("client-%d", c), func(p *sim.Proc) {
				w.runClient(p, rec)
				w.active--
			})
		}
		if timeDriven {
			env.Go("flusher", func(p *sim.Proc) {
				for {
					deadline, _ := w.replica.NextDeadline()
					if deadline > p.Now() {
						p.SleepUntil(deadline)
					}
					w.flush(p)
					if w.active == 0 {
						return
					}
				}
			})
		}
	} else {
		for c := 0; c < clients; c++ {
			w.startClient(rec)
		}
		if timeDriven {
			w.startFlusher()
		}
	}
	env.Run()
	st := env.Stats()
	simStats.events.Add(st.Events)
	simStats.callbacks.Add(st.CallbackEvents)
	simStats.switches.Add(st.ProcSwitches)
	return Row{
		Scenario: sc.Name,
		Clients:  clients,
		AvgMS:    rec.Mean(),
		P95MS:    rec.Percentile(95),
		MaxMS:    rec.Max(),
		Sends:    rec.Count(),
	}, rec, tr
}

// scenarioWorld holds the simulated deployment for one scenario: links,
// component service resources, and the view's coherence replica.
type scenarioWorld struct {
	cfg Config
	sc  Scenario
	env *sim.Env

	// Duplex inter-site path (request and response directions).
	slowUp, slowDown *sim.Link
	// Duplex LAN path between the client node and the server node in
	// fast scenarios.
	lanUp, lanDown *sim.Link

	// server serializes the primary MailServer's request processing.
	server *sim.Resource
	// view serializes the local ViewMailServer; the coherence flush
	// holds it, stalling concurrent senders (the directory protocol
	// "limits the number of unpropagated messages at each replica").
	view    *sim.Mutex
	replica *coherence.Replica
	// active counts clients still running (lets the background flusher
	// terminate).
	active int
	// tr, when non-nil, records virtual-clock spans for every stage of
	// the process engine's send path (the callback engine stays
	// untraced).
	tr *trace.Tracer
}

// span starts a virtual-clock span when the world is traced (nil
// otherwise; nil spans are no-ops everywhere, so the untraced path
// costs one pointer compare per stage).
func (w *scenarioWorld) span(parent trace.SpanContext, name string) *trace.Span {
	if w.tr == nil {
		return nil
	}
	return w.tr.StartSpan(parent, name)
}

// flush propagates the replica's pending updates across the slow link
// while holding the view lock.
func (w *scenarioWorld) flush(p *sim.Proc) {
	w.view.Lock(p)
	batch := w.replica.TakePending(p.Now())
	if len(batch) > 0 {
		w.flushBatch(p, trace.SpanContext{}, len(batch))
	}
	w.view.Unlock()
}

// flushBatch models the flush RPC chain — encryptor tunnel, slow-link
// transfer, primary processing, acknowledgement — under a
// "coherence.flush" span mirroring the real transport's span names.
func (w *scenarioWorld) flushBatch(p *sim.Proc, parent trace.SpanContext, updates int) {
	fl := w.span(parent, "coherence.flush")
	tun := w.span(fl.Context(), "tunnel.call")
	p.Sleep(2 * w.cfg.CryptoServiceMS)
	tun.End()
	tc := w.span(fl.Context(), "transport.call")
	w.slowUp.Transfer(p, updates*w.cfg.RecordBytes)
	ms := w.span(tc.Context(), "mail.send")
	w.server.Acquire(p, 1)
	p.Sleep(w.cfg.ServerServiceMS)
	w.server.Release(1)
	ms.End()
	w.slowDown.Transfer(p, w.cfg.ReplyBytes)
	tc.End()
	fl.End()
}

func (w *scenarioWorld) build() {
	cfg := w.cfg
	w.slowUp = sim.NewLink(w.env, cfg.SlowLatencyMS, cfg.SlowMbps)
	w.slowDown = sim.NewLink(w.env, cfg.SlowLatencyMS, cfg.SlowMbps)
	w.lanUp = sim.NewLink(w.env, cfg.LanLatencyMS, cfg.LanMbps)
	w.lanDown = sim.NewLink(w.env, cfg.LanLatencyMS, cfg.LanMbps)
	w.server = sim.NewResource(w.env, 1)
	if w.sc.Cached {
		w.view = sim.NewMutex(w.env)
		policy := w.sc.Policy
		if policy == nil {
			policy = coherence.None{}
		}
		w.replica = coherence.NewReplica("view", policy, nil)
	}
}

// runClient performs the paper's workload: SendsPerClient sends with a
// receive sweep after every ReceiveEvery sends, at the maximum rate the
// deployment permits.
func (w *scenarioWorld) runClient(p *sim.Proc, rec *metrics.Recorder) {
	receives := 0
	for i := 1; i <= w.cfg.SendsPerClient; i++ {
		start := p.Now()
		root := w.span(trace.SpanContext{}, "client.send")
		w.send(p, root.Context())
		root.End()
		rec.Add(p.Now() - start)
		if w.cfg.ReceiveEvery > 0 && i%w.cfg.ReceiveEvery == 0 {
			receives++
			w.receive(p, receives)
		}
	}
}

// send models one message send through the scenario's deployment.
// Span names mirror the real transports' spans so one SpanBreakdown
// works over simulated and wall-clock traces alike.
func (w *scenarioWorld) send(p *sim.Proc, parent trace.SpanContext) {
	cfg := w.cfg
	p.Sleep(cfg.ClientServiceMS)
	if w.sc.Dynamic {
		px := w.span(parent, "proxy.send")
		defer px.End()
		parent = px.Context()
		p.Sleep(cfg.ProxyOverheadMS)
	}
	switch {
	case w.sc.Cached:
		// MailClient -> local ViewMailServer; the send is absorbed
		// locally, logging coherence records; the policy may force a
		// synchronous flush across the slow link while the view is
		// locked.
		w.view.Lock(p)
		vs := w.span(parent, "view.send")
		p.Sleep(cfg.ViewServiceMS)
		flush := false
		for r := 0; r < cfg.RecordsPerSend; r++ {
			if w.replica.Write("send", "user", nil, p.Now()) {
				flush = true
			}
		}
		if flush {
			batch := w.replica.TakePending(p.Now())
			w.flushBatch(p, vs.Context(), len(batch))
		}
		vs.End()
		w.view.Unlock()
	case w.sc.Slow:
		// SS: the client talks straight to the distant MailServer,
		// "unaware of the slow link", through the encryptor tunnel.
		tun := w.span(parent, "tunnel.call")
		p.Sleep(cfg.CryptoServiceMS)
		tc := w.span(tun.Context(), "transport.call")
		w.slowUp.Transfer(p, cfg.MessageBytes)
		p.Sleep(cfg.CryptoServiceMS)
		ms := w.span(tc.Context(), "mail.send")
		w.server.Acquire(p, 1)
		p.Sleep(cfg.ServerServiceMS)
		w.server.Release(1)
		ms.End()
		w.slowDown.Transfer(p, cfg.ReplyBytes)
		tc.End()
		tun.End()
	default:
		// DF/SF: LAN client straight to the MailServer.
		tc := w.span(parent, "transport.call")
		w.lanUp.Transfer(p, cfg.MessageBytes)
		ms := w.span(tc.Context(), "mail.send")
		w.server.Acquire(p, 1)
		p.Sleep(cfg.ServerServiceMS)
		w.server.Release(1)
		ms.End()
		w.lanDown.Transfer(p, cfg.ReplyBytes)
		tc.End()
	}
}

// receive models one receive sweep. Receives are not part of the
// Figure 7 metric but contribute contention and time, as in the paper's
// workload.
func (w *scenarioWorld) receive(p *sim.Proc, idx int) {
	cfg := w.cfg
	p.Sleep(cfg.ClientServiceMS)
	if w.sc.Dynamic {
		p.Sleep(cfg.ProxyOverheadMS)
	}
	switch {
	case w.sc.Cached:
		w.view.Lock(p)
		p.Sleep(cfg.ViewServiceMS)
		w.view.Unlock()
		if cfg.MissEvery > 0 && idx%cfg.MissEvery == 0 {
			// Cache miss (the view's RRF): fetch from the primary.
			p.Sleep(2 * cfg.CryptoServiceMS)
			w.slowUp.Transfer(p, cfg.ReplyBytes)
			w.server.Acquire(p, 1)
			p.Sleep(cfg.ServerServiceMS)
			w.server.Release(1)
			w.slowDown.Transfer(p, cfg.MessageBytes)
		}
	case w.sc.Slow:
		p.Sleep(cfg.CryptoServiceMS)
		w.slowUp.Transfer(p, cfg.ReplyBytes)
		w.server.Acquire(p, 1)
		p.Sleep(cfg.ServerServiceMS)
		w.server.Release(1)
		w.slowDown.Transfer(p, cfg.MessageBytes)
		p.Sleep(cfg.CryptoServiceMS)
	default:
		w.lanUp.Transfer(p, cfg.ReplyBytes)
		w.server.Acquire(p, 1)
		p.Sleep(cfg.ServerServiceMS)
		w.server.Release(1)
		w.lanDown.Transfer(p, cfg.MessageBytes)
	}
}

// Fig7Table renders rows as the experiment table printed by
// cmd/mailbench.
func Fig7Table(rows []Row) string {
	t := metrics.NewTable("scenario", "group", "clients", "avg_send_ms", "p95_ms", "max_ms", "sends")
	for _, r := range rows {
		t.AddRow(r.Scenario, Group(r.Scenario), r.Clients, r.AvgMS, r.P95MS, r.MaxMS, r.Sends)
	}
	return t.String()
}
