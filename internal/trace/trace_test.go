package trace

import (
	"context"
	"strings"
	"testing"
)

// fakeClock is a deterministic virtual clock for tests.
type fakeClock struct{ now float64 }

func (c *fakeClock) Now() float64 { return c.now }

func TestSpanParentChild(t *testing.T) {
	clk := &fakeClock{}
	tr := NewTracer(16, clk.Now)
	root := tr.StartSpan(SpanContext{}, "root")
	if !root.Context().Valid() {
		t.Fatal("root context invalid")
	}
	if root.TraceID != root.SpanID {
		t.Errorf("root TraceID %d != SpanID %d", root.TraceID, root.SpanID)
	}
	clk.now = 5
	child := tr.StartSpan(root.Context(), "child")
	if child.TraceID != root.TraceID {
		t.Errorf("child TraceID %d, want %d", child.TraceID, root.TraceID)
	}
	if child.Parent != root.SpanID {
		t.Errorf("child Parent %d, want %d", child.Parent, root.SpanID)
	}
	clk.now = 7
	child.End()
	clk.now = 10
	root.End()
	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("recorded %d spans, want 2", len(spans))
	}
	// Ended in child-then-root order.
	if spans[0].Name != "child" || spans[0].DurMS != 2 {
		t.Errorf("spans[0] = %q dur %g, want child dur 2", spans[0].Name, spans[0].DurMS)
	}
	if spans[1].Name != "root" || spans[1].DurMS != 10 {
		t.Errorf("spans[1] = %q dur %g, want root dur 10", spans[1].Name, spans[1].DurMS)
	}
}

func TestSpanEndIdempotent(t *testing.T) {
	tr := NewTracer(8, (&fakeClock{}).Now)
	s := tr.StartSpan(SpanContext{}, "once")
	s.End()
	s.End()
	s.End()
	if got := len(tr.Spans()); got != 1 {
		t.Fatalf("double End recorded %d spans, want 1", got)
	}
}

func TestNilSpanSafe(t *testing.T) {
	var s *Span
	s.End()
	s.SetAttr("k", "v")
	if s.Context().Valid() {
		t.Error("nil span context must be invalid")
	}
}

// TestRingWraparound fills the ring past capacity and checks that the
// oldest spans fall out while the newest survive, oldest-first.
func TestRingWraparound(t *testing.T) {
	clk := &fakeClock{}
	tr := NewTracer(4, clk.Now)
	for i := 0; i < 10; i++ {
		clk.now = float64(i)
		s := tr.StartSpan(SpanContext{}, "s")
		s.SetAttr("i", string(rune('0'+i)))
		s.End()
	}
	if tr.Total() != 10 {
		t.Fatalf("Total = %d, want 10", tr.Total())
	}
	spans := tr.Spans()
	if len(spans) != 4 {
		t.Fatalf("ring holds %d, want capacity 4", len(spans))
	}
	for i, s := range spans {
		if want := float64(6 + i); s.StartMS != want {
			t.Errorf("spans[%d].StartMS = %g, want %g (oldest-first after wrap)", i, s.StartMS, want)
		}
	}
	tr.Reset()
	if len(tr.Spans()) != 0 || tr.Total() != 0 {
		t.Error("Reset did not clear the ring")
	}
}

func TestContextPropagation(t *testing.T) {
	clk := &fakeClock{}
	tr := NewTracer(8, clk.Now)
	ctx := context.Background()
	root := tr.StartSpan(SpanContext{}, "root")
	ctx = ContextWithSpan(ctx, tr, root.Context())
	ctx2, child := Start(ctx, "child")
	if child == nil {
		t.Fatal("Start under a traced ctx returned nil span")
	}
	if child.TraceID != root.TraceID || child.Parent != root.SpanID {
		t.Errorf("child not linked: trace %d parent %d", child.TraceID, child.Parent)
	}
	if _, got, ok := FromContext(ctx2); !ok || got != child.Context() {
		t.Error("returned ctx does not carry the child span")
	}
	child.End()
	root.End()
}

// Start with no span in ctx only records when the global switch is on.
func TestStartGlobalSwitch(t *testing.T) {
	SetEnabled(false)
	Default.Reset()
	if _, s := Start(context.Background(), "off"); s != nil {
		t.Fatal("disabled Start returned a span")
	}
	if _, s := StartRemote(context.Background(), SpanContext{TraceID: 1, SpanID: 2}, "off"); s != nil {
		t.Fatal("disabled StartRemote returned a span")
	}
	SetEnabled(true)
	defer SetEnabled(false)
	_, s := Start(context.Background(), "on")
	if s == nil {
		t.Fatal("enabled Start returned nil")
	}
	s.End()
	_, r := StartRemote(context.Background(), SpanContext{TraceID: 42, SpanID: 7}, "remote")
	if r == nil {
		t.Fatal("enabled StartRemote returned nil")
	}
	if r.TraceID != 42 || r.Parent != 7 {
		t.Errorf("remote span trace %d parent %d, want 42/7", r.TraceID, r.Parent)
	}
	r.End()
	Default.Reset()
}

// Explicit tracers record regardless of the global switch — the sim
// harness relies on this.
func TestExplicitTracerIgnoresSwitch(t *testing.T) {
	SetEnabled(false)
	tr := NewTracer(8, (&fakeClock{}).Now)
	s := tr.StartSpan(SpanContext{}, "always")
	s.End()
	if len(tr.Spans()) != 1 {
		t.Fatal("explicit tracer did not record while disabled")
	}
}

func TestTreeRendering(t *testing.T) {
	clk := &fakeClock{}
	tr := NewTracer(16, clk.Now)
	root := tr.StartSpan(SpanContext{}, "client.send")
	clk.now = 1
	a := tr.StartSpan(root.Context(), "transport.call")
	a.SetAttr("method", "send")
	clk.now = 3
	a.End()
	clk.now = 2 // second sibling starts earlier? no: later start below
	clk.now = 3
	b := tr.StartSpan(root.Context(), "coherence.flush")
	clk.now = 4
	b.End()
	clk.now = 5
	root.End()
	out := Tree(tr.Spans())
	want := "trace 1\n" +
		"  client.send start=0.000ms dur=5.000ms\n" +
		"    transport.call start=1.000ms dur=2.000ms method=send\n" +
		"    coherence.flush start=3.000ms dur=1.000ms\n"
	if out != want {
		t.Errorf("Tree mismatch:\n got: %q\nwant: %q", out, want)
	}
	// Deterministic: rendering twice is byte-identical.
	if Tree(tr.Spans()) != out {
		t.Error("Tree not deterministic")
	}
}

// Orphan spans (parent fell out of the ring) render as roots rather
// than disappearing.
func TestTreeOrphans(t *testing.T) {
	clk := &fakeClock{}
	tr := NewTracer(8, clk.Now)
	orphan := tr.StartSpan(SpanContext{TraceID: 99, SpanID: 50}, "lost.parent")
	orphan.End()
	out := Tree(tr.Spans())
	if !strings.Contains(out, "lost.parent") {
		t.Fatalf("orphan missing from tree:\n%s", out)
	}
	if !strings.Contains(out, "trace 99") {
		t.Fatalf("orphan trace header missing:\n%s", out)
	}
}
