// Package trace is the request-tracing half of the observability
// plane: a lightweight span API whose context propagates across RPC
// boundaries inside wire messages, so one mail send yields a single
// causally-linked trace spanning client proxy, transport, server
// dispatch, mail handler, and coherence flush.
//
// The package is clock-abstracted: a Tracer reads time through a
// caller-supplied func() float64 (milliseconds), so the same spans
// carry wall-clock timestamps on real transports and virtual
// timestamps under internal/sim — where repeated runs produce
// byte-identical span trees.
//
// Tracing through the global Default tracer is off unless SetEnabled
// is called; the disabled fast path is a single atomic load, so
// instrumented hot paths stay within noise of uninstrumented code
// (measured against BenchmarkRPCThroughput in the CI guard).
package trace

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// SpanContext identifies a span for cross-boundary propagation: it is
// what rides inside wire messages between processes.
type SpanContext struct {
	// TraceID groups every span of one request; it equals the root
	// span's ID.
	TraceID uint64
	// SpanID identifies the span itself (parent of whatever the remote
	// side starts).
	SpanID uint64
}

// Valid reports whether the context carries a trace.
func (c SpanContext) Valid() bool { return c.TraceID != 0 }

// Attr is one key=value span annotation.
type Attr struct {
	Key   string
	Value string
}

// Span is one timed operation. Completed spans are copied into the
// tracer's ring buffer on End; a nil *Span (tracing disabled) is safe
// to use everywhere.
type Span struct {
	// Name labels the operation ("proxy.send", "coherence.flush").
	Name string
	// TraceID and SpanID identify the span; Parent is the parent span
	// ID (0 for a root).
	TraceID uint64
	SpanID  uint64
	Parent  uint64
	// StartMS and DurMS are tracer-clock milliseconds.
	StartMS float64
	DurMS   float64
	// Attrs are optional annotations, in SetAttr order.
	Attrs []Attr

	tr *Tracer
	// ended is CASed by End; a plain uint32 (not atomic.Bool) so
	// completed spans stay copyable into the ring buffer.
	ended uint32
}

// Context returns the span's propagation context (zero for nil spans).
func (s *Span) Context() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	return SpanContext{TraceID: s.TraceID, SpanID: s.SpanID}
}

// SetAttr annotates the span; no-op on nil spans.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.Attrs = append(s.Attrs, Attr{Key: key, Value: value})
}

// End stamps the duration and records the span in its tracer's ring
// buffer. Safe on nil spans and idempotent.
func (s *Span) End() {
	if s == nil || !atomic.CompareAndSwapUint32(&s.ended, 0, 1) {
		return
	}
	s.DurMS = s.tr.now() - s.StartMS
	s.tr.record(s)
}

// Tracer creates spans and retains the most recent completed ones in a
// fixed-capacity ring buffer. It is safe for concurrent use.
type Tracer struct {
	clock func() float64

	mu    sync.Mutex
	ring  []Span
	next  int    // ring write cursor
	total uint64 // spans ever recorded
	ids   atomic.Uint64
}

// DefaultCapacity is the ring-buffer capacity of tracers created with
// a non-positive capacity.
const DefaultCapacity = 4096

// NewTracer returns a tracer reading time from clock (milliseconds;
// nil means the process wall clock from a fixed origin) and retaining
// the last capacity completed spans.
func NewTracer(capacity int, clock func() float64) *Tracer {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	if clock == nil {
		clock = wallClock()
	}
	return &Tracer{clock: clock, ring: make([]Span, 0, capacity)}
}

// wallClock returns a monotonic wall-clock reader in milliseconds.
func wallClock() func() float64 {
	start := time.Now()
	return func() float64 { return float64(time.Since(start)) / float64(time.Millisecond) }
}

// Default is the process-wide tracer used by Start when the context
// carries no tracer. It records only while SetEnabled(true).
var Default = NewTracer(DefaultCapacity, nil)

var enabled atomic.Bool

// SetEnabled switches the Default-tracer observability plane on or
// off. Explicitly constructed tracers (the simulator's) are always on.
func SetEnabled(on bool) { enabled.Store(on) }

// Enabled reports whether default-tracer tracing is on. Hot paths use
// this single atomic load as their disabled fast path.
func Enabled() bool { return enabled.Load() }

func (t *Tracer) now() float64 { return t.clock() }

// newID returns the next span ID (1-based, tracer-local). IDs are
// dense and deterministic for single-threaded (simulator) use.
func (t *Tracer) newID() uint64 { return t.ids.Add(1) }

// StartSpan starts a span under an explicit parent context. A zero
// parent starts a new root (its span ID becomes the trace ID). This is
// the entry point for code outside a context.Context flow — the
// simulator worlds and transport server loops.
func (t *Tracer) StartSpan(parent SpanContext, name string) *Span {
	if t == nil {
		return nil
	}
	id := t.newID()
	s := &Span{Name: name, SpanID: id, StartMS: t.now(), tr: t}
	if parent.Valid() {
		s.TraceID = parent.TraceID
		s.Parent = parent.SpanID
	} else {
		s.TraceID = id
	}
	return s
}

// record copies a completed span into the ring buffer.
func (t *Tracer) record(s *Span) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.total++
	if len(t.ring) < cap(t.ring) {
		t.ring = append(t.ring, *s)
		t.next = len(t.ring) % cap(t.ring)
		return
	}
	t.ring[t.next] = *s
	t.next = (t.next + 1) % cap(t.ring)
}

// Spans returns the retained completed spans, oldest first. When more
// spans were recorded than the ring holds, only the most recent
// cap(ring) survive.
func (t *Tracer) Spans() []Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Span, 0, len(t.ring))
	if len(t.ring) < cap(t.ring) {
		return append(out, t.ring...)
	}
	out = append(out, t.ring[t.next:]...)
	return append(out, t.ring[:t.next]...)
}

// Total reports how many spans were ever recorded (including ones the
// ring has since dropped).
func (t *Tracer) Total() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// Reset drops all retained spans and restarts the ID sequence (tests
// and repeated deterministic runs).
func (t *Tracer) Reset() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.ring = t.ring[:0]
	t.next = 0
	t.total = 0
	t.ids.Store(0)
}

// Context plumbing. A context carries at most one active span (and its
// tracer); Start parents new spans on it.

type ctxKey struct{}

type ctxSpan struct {
	tr *Tracer
	sc SpanContext
}

// ContextWithSpan returns a context carrying sc as the active span of
// tracer tr (nil tr means Default).
func ContextWithSpan(ctx context.Context, tr *Tracer, sc SpanContext) context.Context {
	if tr == nil {
		tr = Default
	}
	return context.WithValue(ctx, ctxKey{}, ctxSpan{tr: tr, sc: sc})
}

// FromContext returns the active span context and its tracer, if any.
func FromContext(ctx context.Context) (*Tracer, SpanContext, bool) {
	cs, ok := ctx.Value(ctxKey{}).(ctxSpan)
	if !ok {
		return nil, SpanContext{}, false
	}
	return cs.tr, cs.sc, true
}

// Start begins a span named name as a child of the context's active
// span. With no active span it consults the Default tracer, which
// records only when enabled — so uninstrumented flows pay one atomic
// load. The returned context carries the new span for callees.
func Start(ctx context.Context, name string) (context.Context, *Span) {
	if cs, ok := ctx.Value(ctxKey{}).(ctxSpan); ok {
		s := cs.tr.StartSpan(cs.sc, name)
		return ContextWithSpan(ctx, cs.tr, s.Context()), s
	}
	if !enabled.Load() {
		return ctx, nil
	}
	s := Default.StartSpan(SpanContext{}, name)
	return ContextWithSpan(ctx, Default, s.Context()), s
}

// StartRemote begins a span continuing a trace received from a peer
// (parent extracted from a wire message). The span lives on the
// Default tracer and is nil while tracing is disabled; the returned
// context carries it for downstream Start calls.
func StartRemote(ctx context.Context, parent SpanContext, name string) (context.Context, *Span) {
	if !enabled.Load() {
		return ctx, nil
	}
	s := Default.StartSpan(parent, name)
	return ContextWithSpan(ctx, Default, s.Context()), s
}

// Tree renders spans as indented per-trace trees, deterministically:
// traces order by root start time (then trace ID), siblings by start
// time (then span ID). Orphan spans (parent fell off the ring) render
// as roots. The format is stable enough to assert byte-identical
// simulator runs against.
func Tree(spans []Span) string {
	byParent := map[uint64][]*Span{}
	byID := map[uint64]*Span{}
	for i := range spans {
		byID[spans[i].SpanID] = &spans[i]
	}
	var roots []*Span
	for i := range spans {
		s := &spans[i]
		if s.Parent != 0 {
			if _, ok := byID[s.Parent]; ok {
				byParent[s.Parent] = append(byParent[s.Parent], s)
				continue
			}
		}
		roots = append(roots, s)
	}
	order := func(list []*Span) {
		sort.SliceStable(list, func(i, j int) bool {
			if list[i].StartMS != list[j].StartMS {
				return list[i].StartMS < list[j].StartMS
			}
			return list[i].SpanID < list[j].SpanID
		})
	}
	order(roots)
	var b strings.Builder
	var walk func(s *Span, depth int)
	walk = func(s *Span, depth int) {
		b.WriteString(strings.Repeat("  ", depth))
		fmt.Fprintf(&b, "%s start=%.3fms dur=%.3fms", s.Name, s.StartMS, s.DurMS)
		for _, a := range s.Attrs {
			fmt.Fprintf(&b, " %s=%s", a.Key, a.Value)
		}
		b.WriteByte('\n')
		kids := byParent[s.SpanID]
		order(kids)
		for _, k := range kids {
			walk(k, depth+1)
		}
	}
	lastTrace := uint64(0)
	for _, r := range roots {
		if r.TraceID != lastTrace {
			fmt.Fprintf(&b, "trace %d\n", r.TraceID)
			lastTrace = r.TraceID
		}
		walk(r, 1)
	}
	return b.String()
}
