package spec

import (
	"bytes"
	"os"
	"strings"
	"testing"

	"partsvc/internal/property"
)

func TestXMLRoundTripMailService(t *testing.T) {
	orig := MailService()
	var buf bytes.Buffer
	if err := orig.EncodeXML(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeXML(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := got.Validate(); err != nil {
		t.Fatalf("decoded spec must validate: %v", err)
	}
	if got.Name != orig.Name {
		t.Errorf("name = %q, want %q", got.Name, orig.Name)
	}
	if len(got.Components) != len(orig.Components) {
		t.Fatalf("component count = %d, want %d", len(got.Components), len(orig.Components))
	}
	for _, oc := range orig.Components {
		gc, ok := got.Component(oc.Name)
		if !ok {
			t.Errorf("component %q lost in round trip", oc.Name)
			continue
		}
		if gc.Represents != oc.Represents || gc.Kind != oc.Kind {
			t.Errorf("component %q view identity changed: %v/%v vs %v/%v", oc.Name, gc.Represents, gc.Kind, oc.Represents, oc.Kind)
		}
		if len(gc.Implements) != len(oc.Implements) || len(gc.Requires) != len(oc.Requires) {
			t.Errorf("component %q linkage arity changed", oc.Name)
		}
		if gc.Behaviors != oc.Behaviors {
			t.Errorf("component %q behaviors = %+v, want %+v", oc.Name, gc.Behaviors, oc.Behaviors)
		}
		if len(gc.Conditions) != len(oc.Conditions) {
			t.Errorf("component %q conditions lost", oc.Name)
		}
	}
	// Property expressions survive, including environment references.
	vms, _ := got.Component(CompViewMailServer)
	if !vms.Factors[PropTrustLevel].IsRef() || vms.Factors[PropTrustLevel].RefName() != "Node.TrustLevel" {
		t.Errorf("factored expression lost: %v", vms.Factors)
	}
	impl, _ := vms.ImplementsInterface(IfaceServer)
	if !impl.Props[PropConfidentiality].LitValue().Equal(property.Bool(true)) {
		t.Errorf("implements property lost: %v", impl.Props)
	}
	// Modification rules survive with the Figure 4 semantics.
	rule, ok := got.ModRules[PropConfidentiality]
	if !ok {
		t.Fatal("modification rule lost")
	}
	out, err := rule.Apply(property.Bool(true), property.Bool(false))
	if err != nil || !out.Equal(property.Bool(false)) {
		t.Errorf("decoded rule Apply(T,F) = %v, %v; want F", out, err)
	}
}

func TestXMLRoundTripTwiceIsStable(t *testing.T) {
	var first, second bytes.Buffer
	s := MailService()
	if err := s.EncodeXML(&first); err != nil {
		t.Fatal(err)
	}
	decoded, err := DecodeXML(bytes.NewReader(first.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if err := decoded.EncodeXML(&second); err != nil {
		t.Fatal(err)
	}
	if first.String() != second.String() {
		t.Error("encode(decode(encode(s))) must equal encode(s)")
	}
}

func TestXMLEncodesReadableSchema(t *testing.T) {
	var buf bytes.Buffer
	if err := MailService().EncodeXML(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`<Service name="mail">`,
		`<Property name="Confidentiality" type="Boolean">`,
		`<Property name="TrustLevel" type="Interval" lo="1" hi="5">`,
		`<View name="ViewMailServer" represents="MailServer" kind="data">`,
		`<Factor property="TrustLevel" value="Node.TrustLevel">`,
		`<Condition>User = Alice</Condition>`,
		`<PropertyModificationRule property="Confidentiality">`,
		`<Rule in="T" env="T" out="T">`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("encoded XML missing %q\n%s", want, out)
		}
	}
}

func TestDecodeXMLRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"truncated":      `<Service name="x"><Component`,
		"bad prop type":  `<Service name="x"><Property name="P" type="Complex"/></Service>`,
		"bad view kind":  `<Service name="x"><View name="V" represents="C" kind="weird"/></Service>`,
		"bad condition":  `<Service name="x"><Component name="C"><Condition>!!!</Condition></Component></Service>`,
		"empty rule out": `<Service name="x"><PropertyModificationRule property="P"><Rule in="T" env="T" out=""/></PropertyModificationRule></Service>`,
		"empty rule in":  `<Service name="x"><PropertyModificationRule property="P"><Rule in="" env="T" out="T"/></PropertyModificationRule></Service>`,
	}
	for name, doc := range cases {
		if _, err := DecodeXML(strings.NewReader(doc)); err == nil {
			t.Errorf("%s: expected decode error", name)
		}
	}
}

func TestDecodeXMLDefaultOutcome(t *testing.T) {
	doc := `<Service name="x">
	  <Property name="TL" type="Interval" lo="1" hi="5"/>
	  <Interface name="I"><Property>TL</Property></Interface>
	  <Component name="C"><Implements name="I"><Set property="TL" value="3"/></Implements></Component>
	  <PropertyModificationRule property="TL"><Default out="MIN"/></PropertyModificationRule>
	</Service>`
	s, err := DecodeXML(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	out, err := s.ModRules["TL"].Apply(property.Int(5), property.Int(2))
	if err != nil || !out.Equal(property.Int(2)) {
		t.Errorf("MIN default rule: got %v, %v", out, err)
	}
}

func TestDecodeXMLOutcomeKinds(t *testing.T) {
	doc := `<Service name="x">
	  <Property name="P" type="Interval" lo="0" hi="9"/>
	  <Interface name="I"><Property>P</Property></Interface>
	  <Component name="C"><Implements name="I"><Set property="P" value="1"/></Implements></Component>
	  <PropertyModificationRule property="P">
	    <Rule in="1" env="ANY" out="IN"/>
	    <Rule in="2" env="ANY" out="ENV"/>
	    <Rule in="3" env="ANY" out="MAX"/>
	    <Rule in="ANY" env="ANY" out="7"/>
	  </PropertyModificationRule>
	</Service>`
	s, err := DecodeXML(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	rule := s.ModRules["P"]
	for _, c := range []struct{ in, env, want int64 }{
		{1, 5, 1}, // IN
		{2, 5, 5}, // ENV
		{3, 5, 5}, // MAX
		{4, 5, 7}, // literal
	} {
		got, err := rule.Apply(property.Int(c.in), property.Int(c.env))
		if err != nil || !got.Equal(property.Int(c.want)) {
			t.Errorf("Apply(%d,%d) = %v, %v; want %d", c.in, c.env, got, err, c.want)
		}
	}
}

// TestGoldenSpecFile: the committed testdata/mail.xml (also what
// `psfctl spec` emits) decodes to a spec byte-identical with the
// built-in one — the on-disk format is stable.
func TestGoldenSpecFile(t *testing.T) {
	f, err := os.Open("testdata/mail.xml")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	decoded, err := DecodeXML(f)
	if err != nil {
		t.Fatal(err)
	}
	if err := decoded.Validate(); err != nil {
		t.Fatal(err)
	}
	var fromGolden, fromBuiltin bytes.Buffer
	if err := decoded.EncodeXML(&fromGolden); err != nil {
		t.Fatal(err)
	}
	if err := MailService().EncodeXML(&fromBuiltin); err != nil {
		t.Fatal(err)
	}
	if fromGolden.String() != fromBuiltin.String() {
		t.Error("testdata/mail.xml is stale; regenerate with `go run ./cmd/psfctl spec`")
	}
}
