package spec

import "partsvc/internal/property"

// Canonical names used by the mail service specification of Figure 2.
const (
	PropConfidentiality = "Confidentiality"
	PropTrustLevel      = "TrustLevel"
	PropUser            = "User"

	IfaceClient    = "ClientInterface"
	IfaceServer    = "ServerInterface"
	IfaceDecryptor = "DecryptorInterface"

	CompMailClient     = "MailClient"
	CompMailServer     = "MailServer"
	CompEncryptor      = "Encryptor"
	CompDecryptor      = "Decryptor"
	CompViewMailClient = "ViewMailClient"
	CompViewMailServer = "ViewMailServer"
)

// MailService returns the security-sensitive mail service specification
// of Figure 2. Differences from the paper's (incomplete) listing are
// deliberate completions, documented in DESIGN.md:
//
//   - ViewMailClient's elided body is filled in as an object view that
//     implements ClientInterface and requires a server at least as
//     trusted as its own node (TrustLevel = Node.TrustLevel).
//   - ViewMailServer's deployment condition is read as "the node must be
//     sufficiently trusted" (Node.TrustLevel >= 2), matching the prose;
//     the figure's literal "(1,3)" range would exclude the San Diego
//     deployment the paper itself reports.
//   - MailServer carries a Node.TrustLevel >= 5 condition so that the
//     full server (which holds every user's keys) can only live at the
//     fully trusted main site, reflecting the case-study constraint that
//     the primary server is in New York.
//   - Byte/CPU behaviors are filled in with the case study's message
//     sizes so the planner's load condition (Section 3.3, condition 3)
//     is exercised.
func MailService() *Service {
	return &Service{
		Name: "mail",
		Properties: []property.Type{
			property.BoolType(PropConfidentiality),
			property.IntervalType(PropTrustLevel, 1, 5),
			property.StringType(PropUser),
		},
		Interfaces: []InterfaceDecl{
			{Name: IfaceClient, Properties: []string{PropConfidentiality, PropTrustLevel}},
			{Name: IfaceServer, Properties: []string{PropConfidentiality, PropTrustLevel}},
			// The paper's figure lists only Confidentiality on the
			// DecryptorInterface; TrustLevel is added so that the trust
			// offered by the upstream server can flow through an
			// Encryptor-Decryptor segment to the client (the planner
			// propagates effective properties interface-by-interface).
			{Name: IfaceDecryptor, Properties: []string{PropConfidentiality, PropTrustLevel}},
		},
		Components: []Component{
			{
				Name: CompMailClient,
				Implements: []InterfaceSpec{{
					Name: IfaceClient,
					Props: map[string]property.Expr{
						PropConfidentiality: property.Lit(property.Bool(false)),
						PropTrustLevel:      property.Lit(property.Int(4)),
					},
				}},
				Requires: []InterfaceSpec{{
					Name: IfaceServer,
					Props: map[string]property.Expr{
						PropConfidentiality: property.Lit(property.Bool(true)),
						PropTrustLevel:      property.Lit(property.Int(4)),
					},
				}},
				Conditions: []property.Condition{
					property.CondEq(PropUser, property.Str("Alice")),
				},
				Behaviors: Behaviors{CPUMSPerRequest: 0.5, RequestBytes: 10240, ResponseBytes: 1024},
			},
			{
				Name: CompMailServer,
				Implements: []InterfaceSpec{{
					Name: IfaceServer,
					Props: map[string]property.Expr{
						PropConfidentiality: property.Lit(property.Bool(true)),
						PropTrustLevel:      property.Lit(property.Int(5)),
					},
				}},
				Conditions: []property.Condition{
					property.CondGE("Node."+PropTrustLevel, 5),
				},
				Behaviors: Behaviors{CapacityRPS: 1000, CPUMSPerRequest: 1, RequestBytes: 10240, ResponseBytes: 10240},
			},
			{
				Name: CompEncryptor,
				Implements: []InterfaceSpec{{
					Name: IfaceServer,
					Props: map[string]property.Expr{
						PropConfidentiality: property.Lit(property.Bool(true)),
					},
				}},
				Requires:  []InterfaceSpec{{Name: IfaceDecryptor}},
				Behaviors: Behaviors{CapacityRPS: 5000, CPUMSPerRequest: 0.2, RequestBytes: 10368, ResponseBytes: 10368},
			},
			{
				Name:       CompDecryptor,
				Implements: []InterfaceSpec{{Name: IfaceDecryptor}},
				Requires: []InterfaceSpec{{
					Name: IfaceServer,
					Props: map[string]property.Expr{
						PropConfidentiality: property.Lit(property.Bool(true)),
					},
				}},
				Behaviors: Behaviors{CapacityRPS: 5000, CPUMSPerRequest: 0.2, RequestBytes: 10240, ResponseBytes: 10240},
			},
			{
				Name:       CompViewMailClient,
				Represents: CompMailClient,
				Kind:       ObjectView,
				Implements: []InterfaceSpec{{
					Name: IfaceClient,
					Props: map[string]property.Expr{
						PropConfidentiality: property.Lit(property.Bool(false)),
						PropTrustLevel:      property.Ref("Node." + PropTrustLevel),
					},
				}},
				Requires: []InterfaceSpec{{
					Name: IfaceServer,
					Props: map[string]property.Expr{
						PropConfidentiality: property.Lit(property.Bool(true)),
						PropTrustLevel:      property.Ref("Node." + PropTrustLevel),
					},
				}},
				Behaviors: Behaviors{CPUMSPerRequest: 0.5, RequestBytes: 10240, ResponseBytes: 1024},
			},
			{
				Name:       CompViewMailServer,
				Represents: CompMailServer,
				Kind:       DataView,
				Factors: map[string]property.Expr{
					PropTrustLevel: property.Ref("Node." + PropTrustLevel),
				},
				Implements: []InterfaceSpec{{
					Name: IfaceServer,
					Props: map[string]property.Expr{
						PropConfidentiality: property.Lit(property.Bool(true)),
						PropTrustLevel:      property.Ref("Node." + PropTrustLevel),
					},
				}},
				Requires: []InterfaceSpec{{
					Name: IfaceServer,
					Props: map[string]property.Expr{
						PropConfidentiality: property.Lit(property.Bool(true)),
						PropTrustLevel:      property.Ref("Node." + PropTrustLevel),
					},
				}},
				Conditions: []property.Condition{
					property.CondGE("Node."+PropTrustLevel, 2),
				},
				Behaviors: Behaviors{CapacityRPS: 1000, RRF: 0.2, CPUMSPerRequest: 1, RequestBytes: 10240, ResponseBytes: 10240},
			},
		},
		ModRules: property.RuleTable{
			PropConfidentiality: property.ConfidentialityRule(PropConfidentiality),
		},
	}
}
