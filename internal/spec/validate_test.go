package spec

import (
	"strings"
	"testing"

	"partsvc/internal/property"
)

// minimalValid returns the smallest specification that passes Validate.
func minimalValid() *Service {
	return &Service{
		Name:       "svc",
		Properties: []property.Type{property.BoolType("C")},
		Interfaces: []InterfaceDecl{{Name: "I", Properties: []string{"C"}}},
		Components: []Component{{
			Name: "Server",
			Implements: []InterfaceSpec{{
				Name:  "I",
				Props: map[string]property.Expr{"C": property.Lit(property.Bool(true))},
			}},
		}},
		ModRules: property.RuleTable{},
	}
}

func TestValidateMinimal(t *testing.T) {
	if err := minimalValid().Validate(); err != nil {
		t.Fatalf("minimal spec must validate: %v", err)
	}
}

func expectInvalid(t *testing.T, s *Service, wantSubstr string) {
	t.Helper()
	err := s.Validate()
	if err == nil {
		t.Fatalf("expected validation error containing %q, got nil", wantSubstr)
	}
	if !strings.Contains(err.Error(), wantSubstr) {
		t.Fatalf("validation error %q does not mention %q", err, wantSubstr)
	}
}

func TestValidateRejectsEmptyName(t *testing.T) {
	s := minimalValid()
	s.Name = ""
	expectInvalid(t, s, "no name")
}

func TestValidateRejectsDuplicateProperty(t *testing.T) {
	s := minimalValid()
	s.Properties = append(s.Properties, property.BoolType("C"))
	expectInvalid(t, s, "duplicate property")
}

func TestValidateRejectsEmptyIntervalRange(t *testing.T) {
	s := minimalValid()
	s.Properties = append(s.Properties, property.IntervalType("R", 5, 1))
	expectInvalid(t, s, "empty range")
}

func TestValidateRejectsDuplicateInterface(t *testing.T) {
	s := minimalValid()
	s.Interfaces = append(s.Interfaces, InterfaceDecl{Name: "I"})
	expectInvalid(t, s, "duplicate interface")
}

func TestValidateRejectsUndeclaredPropertyOnInterface(t *testing.T) {
	s := minimalValid()
	s.Interfaces[0].Properties = append(s.Interfaces[0].Properties, "Ghost")
	expectInvalid(t, s, `undeclared property "Ghost"`)
}

func TestValidateRejectsDuplicateComponent(t *testing.T) {
	s := minimalValid()
	s.Components = append(s.Components, s.Components[0])
	expectInvalid(t, s, "duplicate component")
}

func TestValidateRejectsUnknownImplementedInterface(t *testing.T) {
	s := minimalValid()
	s.Components[0].Implements = append(s.Components[0].Implements, InterfaceSpec{Name: "Ghost"})
	expectInvalid(t, s, `undeclared interface "Ghost"`)
}

func TestValidateRejectsUnknownRequiredInterface(t *testing.T) {
	s := minimalValid()
	s.Components[0].Requires = []InterfaceSpec{{Name: "Ghost"}}
	expectInvalid(t, s, `undeclared interface "Ghost"`)
}

func TestValidateRejectsPropertyNotOnInterface(t *testing.T) {
	s := minimalValid()
	s.Properties = append(s.Properties, property.BoolType("D"))
	s.Components[0].Implements[0].Props["D"] = property.Lit(property.Bool(true))
	expectInvalid(t, s, `property "D" not declared on that interface`)
}

func TestValidateRejectsOutOfRangeLiteral(t *testing.T) {
	s := minimalValid()
	s.Properties = append(s.Properties, property.IntervalType("TL", 1, 5))
	s.Interfaces[0].Properties = append(s.Interfaces[0].Properties, "TL")
	s.Components[0].Implements[0].Props["TL"] = property.Lit(property.Int(9))
	expectInvalid(t, s, "outside range")
}

func TestValidateRejectsComponentWithoutImplements(t *testing.T) {
	s := minimalValid()
	s.Components = append(s.Components, Component{Name: "Idle"})
	expectInvalid(t, s, "implements no interfaces")
}

func TestValidateRejectsViewOfUnknownComponent(t *testing.T) {
	s := minimalValid()
	s.Components = append(s.Components, Component{
		Name: "V", Represents: "Ghost", Kind: DataView,
		Implements: s.Components[0].Implements,
	})
	expectInvalid(t, s, `represents unknown component "Ghost"`)
}

func TestValidateRejectsViewOfView(t *testing.T) {
	s := minimalValid()
	s.Components = append(s.Components,
		Component{Name: "V", Represents: "Server", Kind: DataView, Implements: s.Components[0].Implements},
		Component{Name: "VV", Represents: "V", Kind: DataView, Implements: s.Components[0].Implements},
	)
	expectInvalid(t, s, "represents another view")
}

func TestValidateRejectsViewWithoutKind(t *testing.T) {
	s := minimalValid()
	s.Components = append(s.Components, Component{
		Name: "V", Represents: "Server",
		Implements: s.Components[0].Implements,
	})
	expectInvalid(t, s, "does not declare an object/data kind")
}

func TestValidateRejectsKindWithoutRepresents(t *testing.T) {
	s := minimalValid()
	s.Components[0].Kind = DataView
	expectInvalid(t, s, "represents nothing")
}

func TestValidateRejectsFactorOfUndeclaredProperty(t *testing.T) {
	s := minimalValid()
	s.Components[0].Factors = map[string]property.Expr{"Ghost": property.Ref("Node.Ghost")}
	expectInvalid(t, s, `factors undeclared property "Ghost"`)
}

func TestValidateRejectsBadRRF(t *testing.T) {
	s := minimalValid()
	s.Components[0].Behaviors.RRF = 1.5
	expectInvalid(t, s, "RRF")
}

func TestValidateRejectsModRuleForUnknownProperty(t *testing.T) {
	s := minimalValid()
	s.ModRules["Ghost"] = property.ConfidentialityRule("Ghost")
	expectInvalid(t, s, `modification rule for undeclared property "Ghost"`)
}

func TestValidateRejectsUnsatisfiableRequire(t *testing.T) {
	s := minimalValid()
	s.Interfaces = append(s.Interfaces, InterfaceDecl{Name: "J"})
	s.Components[0].Requires = []InterfaceSpec{{Name: "J"}}
	expectInvalid(t, s, "which no component implements")
}

func TestValidateAccumulatesMultipleErrors(t *testing.T) {
	s := minimalValid()
	s.Name = ""
	s.Components[0].Behaviors.RRF = -1
	err := s.Validate()
	if err == nil {
		t.Fatal("expected errors")
	}
	msg := err.Error()
	if !strings.Contains(msg, "no name") || !strings.Contains(msg, "RRF") {
		t.Errorf("expected both errors reported, got %q", msg)
	}
}
