package spec

import (
	"strings"
	"testing"

	"partsvc/internal/property"
)

func TestMailServiceValidates(t *testing.T) {
	if err := MailService().Validate(); err != nil {
		t.Fatalf("canonical mail spec must validate: %v", err)
	}
}

func TestMailServiceShape(t *testing.T) {
	s := MailService()
	if got := len(s.Components); got != 6 {
		t.Errorf("mail spec has 6 components/views, got %d", got)
	}
	mc, ok := s.Component(CompMailClient)
	if !ok {
		t.Fatal("MailClient missing")
	}
	if mc.IsView() {
		t.Error("MailClient is not a view")
	}
	req, ok := mc.RequiresInterface(IfaceServer)
	if !ok {
		t.Fatal("MailClient must require ServerInterface")
	}
	if req.Props[PropConfidentiality].LitValue() != property.Bool(true) {
		t.Error("MailClient requires Confidentiality=T")
	}
	vms, ok := s.Component(CompViewMailServer)
	if !ok {
		t.Fatal("ViewMailServer missing")
	}
	if !vms.IsView() || vms.Kind != DataView || vms.Represents != CompMailServer {
		t.Errorf("ViewMailServer must be a data view of MailServer: %+v", vms)
	}
	if vms.Behaviors.RRF != 0.2 {
		t.Errorf("ViewMailServer RRF = %v, want 0.2", vms.Behaviors.RRF)
	}
	vmc, _ := s.Component(CompViewMailClient)
	if vmc.Kind != ObjectView {
		t.Error("ViewMailClient must be an object view")
	}
	ms, _ := s.Component(CompMailServer)
	if ms.Behaviors.CapacityRPS != 1000 {
		t.Errorf("MailServer capacity = %v, want 1000", ms.Behaviors.CapacityRPS)
	}
	if len(ms.Requires) != 0 {
		t.Error("MailServer requires nothing (chain terminator)")
	}
}

func TestImplementersOf(t *testing.T) {
	s := MailService()
	impls := s.ImplementersOf(IfaceServer)
	names := map[string]bool{}
	for _, c := range impls {
		names[c.Name] = true
	}
	for _, want := range []string{CompMailServer, CompEncryptor, CompViewMailServer} {
		if !names[want] {
			t.Errorf("%s must implement ServerInterface; got %v", want, names)
		}
	}
	if names[CompDecryptor] {
		t.Error("Decryptor does not implement ServerInterface")
	}
	if got := s.ImplementersOf("NoSuch"); got != nil {
		t.Errorf("unknown interface has no implementers, got %v", got)
	}
}

func TestViewsOf(t *testing.T) {
	s := MailService()
	views := s.ViewsOf(CompMailServer)
	if len(views) != 1 || views[0].Name != CompViewMailServer {
		t.Errorf("ViewsOf(MailServer) = %v", views)
	}
}

func TestIsTransparentFor(t *testing.T) {
	s := MailService()
	vms, _ := s.Component(CompViewMailServer)
	// VMS generates both Confidentiality and TrustLevel: not transparent.
	if vms.IsTransparentFor(IfaceServer, PropTrustLevel) {
		t.Error("ViewMailServer generates TrustLevel; not transparent")
	}
	// A hypothetical pure proxy is transparent for ungenerated props.
	proxy := Component{
		Name:       "Proxy",
		Implements: []InterfaceSpec{{Name: IfaceServer, Props: map[string]property.Expr{PropConfidentiality: property.Lit(property.Bool(true))}}},
		Requires:   []InterfaceSpec{{Name: IfaceServer}},
	}
	if !proxy.IsTransparentFor(IfaceServer, PropTrustLevel) {
		t.Error("proxy must be transparent for TrustLevel")
	}
	if proxy.IsTransparentFor(IfaceServer, PropConfidentiality) {
		t.Error("proxy generates Confidentiality; not transparent")
	}
	enc, _ := s.Component(CompEncryptor)
	// Encryptor requires DecryptorInterface, not ServerInterface, so the
	// narrow same-interface transparency does not apply (the planner's
	// effective-set propagation handles the cross-interface case).
	if enc.IsTransparentFor(IfaceServer, PropTrustLevel) {
		t.Error("Encryptor requires a different interface; IsTransparentFor is same-interface only")
	}
}

func TestConditionsHold(t *testing.T) {
	s := MailService()
	mc, _ := s.Component(CompMailClient)
	alice := property.Scope{Extra: property.Set{PropUser: property.Str("Alice")}}
	carol := property.Scope{Extra: property.Set{PropUser: property.Str("Carol")}}
	if !mc.ConditionsHold(alice) {
		t.Error("MailClient must deploy for Alice")
	}
	if mc.ConditionsHold(carol) {
		t.Error("MailClient must not deploy for Carol (access-control condition)")
	}
	vms, _ := s.Component(CompViewMailServer)
	trusted := property.Scope{Node: property.Set{PropTrustLevel: property.Int(4)}}
	untrusted := property.Scope{Node: property.Set{PropTrustLevel: property.Int(1)}}
	if !vms.ConditionsHold(trusted) {
		t.Error("ViewMailServer must deploy on a trust-4 node")
	}
	if vms.ConditionsHold(untrusted) {
		t.Error("ViewMailServer must not deploy on a trust-1 node")
	}
}

func TestInterfaceSpecEvalProps(t *testing.T) {
	s := MailService()
	vms, _ := s.Component(CompViewMailServer)
	impl, _ := vms.ImplementsInterface(IfaceServer)
	sc := property.Scope{Node: property.Set{PropTrustLevel: property.Int(3)}}
	got, err := impl.EvalProps(sc)
	if err != nil {
		t.Fatal(err)
	}
	if !got[PropTrustLevel].Equal(property.Int(3)) {
		t.Errorf("factored TrustLevel = %v, want 3", got[PropTrustLevel])
	}
	if !got[PropConfidentiality].Equal(property.Bool(true)) {
		t.Errorf("Confidentiality = %v, want T", got[PropConfidentiality])
	}
	// Unbound scope must error.
	if _, err := impl.EvalProps(property.Scope{}); err == nil {
		t.Error("evaluating Node.TrustLevel without a node scope must fail")
	}
}

func TestInterfaceSpecString(t *testing.T) {
	s := MailService()
	mc, _ := s.Component(CompMailClient)
	req, _ := mc.RequiresInterface(IfaceServer)
	got := req.String()
	if !strings.Contains(got, "ServerInterface(") || !strings.Contains(got, "Confidentiality=T") || !strings.Contains(got, "TrustLevel=4") {
		t.Errorf("InterfaceSpec.String() = %q", got)
	}
	bare := InterfaceSpec{Name: "X"}
	if bare.String() != "X" {
		t.Errorf("bare spec string = %q", bare.String())
	}
}

func TestBehaviorsEffectiveRRF(t *testing.T) {
	if got := (Behaviors{}).EffectiveRRF(); got != 1 {
		t.Errorf("zero RRF normalizes to 1, got %v", got)
	}
	if got := (Behaviors{RRF: 0.2}).EffectiveRRF(); got != 0.2 {
		t.Errorf("explicit RRF preserved, got %v", got)
	}
}

func TestViewKindString(t *testing.T) {
	for k, want := range map[ViewKind]string{NotView: "component", ObjectView: "object", DataView: "data"} {
		if got := k.String(); got != want {
			t.Errorf("ViewKind(%d) = %q, want %q", k, got, want)
		}
	}
}

func TestInterfaceSpecClone(t *testing.T) {
	orig := InterfaceSpec{Name: "I", Props: map[string]property.Expr{"A": property.Lit(property.Int(1))}}
	c := orig.Clone()
	c.Props["B"] = property.Lit(property.Int(2))
	if _, leaked := orig.Props["B"]; leaked {
		t.Error("Clone must deep-copy the property map")
	}
}

func TestInterfaceDeclHasProperty(t *testing.T) {
	d := InterfaceDecl{Name: "I", Properties: []string{"A", "B"}}
	if !d.HasProperty("A") || d.HasProperty("C") {
		t.Error("HasProperty wrong")
	}
}

func TestServiceAccessorsMissing(t *testing.T) {
	s := MailService()
	if _, ok := s.Component("NoSuch"); ok {
		t.Error("unknown component must not resolve")
	}
	if _, ok := s.Interface("NoSuch"); ok {
		t.Error("unknown interface must not resolve")
	}
	if _, ok := s.PropertyType("NoSuch"); ok {
		t.Error("unknown property must not resolve")
	}
	if ty, ok := s.PropertyType(PropTrustLevel); !ok || ty.Kind != property.KindInt {
		t.Errorf("TrustLevel type = %v, %v", ty, ok)
	}
}
