package spec

import (
	"encoding/xml"
	"fmt"
	"io"
	"sort"

	"partsvc/internal/property"
)

// The on-disk specification format is XML, as in the paper's
// implementation ("Our service specifications use an XML format").
// The schema mirrors Figure 2's readable notation:
//
//	<Service name="mail">
//	  <Property name="Confidentiality" type="Boolean"/>
//	  <Property name="TrustLevel" type="Interval" lo="1" hi="5"/>
//	  <Interface name="ServerInterface">
//	    <Property>Confidentiality</Property>
//	  </Interface>
//	  <Component name="MailClient">
//	    <Implements name="ClientInterface">
//	      <Set property="Confidentiality" value="F"/>
//	    </Implements>
//	    <Requires name="ServerInterface">...</Requires>
//	    <Condition>User = Alice</Condition>
//	    <Behaviors capacity="1000" rrf="0.2"/>
//	  </Component>
//	  <View name="ViewMailServer" represents="MailServer" kind="data">
//	    <Factor property="TrustLevel" value="Node.TrustLevel"/>
//	    ...
//	  </View>
//	  <PropertyModificationRule property="Confidentiality">
//	    <Rule in="T" env="T" out="T"/>
//	  </PropertyModificationRule>
//	</Service>

type xmlService struct {
	XMLName    xml.Name       `xml:"Service"`
	Name       string         `xml:"name,attr"`
	Properties []xmlProperty  `xml:"Property"`
	Interfaces []xmlInterface `xml:"Interface"`
	Components []xmlComponent `xml:"Component"`
	Views      []xmlComponent `xml:"View"`
	ModRules   []xmlModRule   `xml:"PropertyModificationRule"`
}

type xmlProperty struct {
	Name string   `xml:"name,attr"`
	Type string   `xml:"type,attr"`
	Lo   int64    `xml:"lo,attr,omitempty"`
	Hi   int64    `xml:"hi,attr,omitempty"`
	Enum []string `xml:"Value,omitempty"`
}

type xmlInterface struct {
	Name       string   `xml:"name,attr"`
	Properties []string `xml:"Property"`
}

type xmlSet struct {
	Property string `xml:"property,attr"`
	Value    string `xml:"value,attr"`
}

type xmlIfaceSpec struct {
	Name string   `xml:"name,attr"`
	Sets []xmlSet `xml:"Set"`
}

type xmlBehaviors struct {
	Capacity      float64 `xml:"capacity,attr,omitempty"`
	RRF           float64 `xml:"rrf,attr,omitempty"`
	CPUMS         float64 `xml:"cpums,attr,omitempty"`
	RequestBytes  int     `xml:"reqbytes,attr,omitempty"`
	ResponseBytes int     `xml:"respbytes,attr,omitempty"`
}

type xmlComponent struct {
	Name       string         `xml:"name,attr"`
	Represents string         `xml:"represents,attr,omitempty"`
	Kind       string         `xml:"kind,attr,omitempty"`
	Factors    []xmlSet       `xml:"Factor"`
	Implements []xmlIfaceSpec `xml:"Implements"`
	Requires   []xmlIfaceSpec `xml:"Requires"`
	Conditions []string       `xml:"Condition"`
	Behaviors  *xmlBehaviors  `xml:"Behaviors"`
}

type xmlModRule struct {
	Property string        `xml:"property,attr"`
	Rules    []xmlRuleRow  `xml:"Rule"`
	Default  *xmlRuleRowRH `xml:"Default"`
}

type xmlRuleRow struct {
	In  string `xml:"in,attr"`
	Env string `xml:"env,attr"`
	Out string `xml:"out,attr"`
}

type xmlRuleRowRH struct {
	Out string `xml:"out,attr"`
}

// EncodeXML writes the specification as indented XML.
func (s *Service) EncodeXML(w io.Writer) error {
	xs := xmlService{Name: s.Name}
	for _, p := range s.Properties {
		xp := xmlProperty{Name: p.Name}
		switch p.Kind {
		case property.KindBool:
			xp.Type = "Boolean"
		case property.KindInt:
			xp.Type = "Interval"
			xp.Lo, xp.Hi = p.Lo, p.Hi
		case property.KindString:
			xp.Type = "String"
			xp.Enum = p.Enum
		}
		xs.Properties = append(xs.Properties, xp)
	}
	for _, i := range s.Interfaces {
		xs.Interfaces = append(xs.Interfaces, xmlInterface{Name: i.Name, Properties: i.Properties})
	}
	for _, c := range s.Components {
		xc := xmlComponent{
			Name:       c.Name,
			Represents: c.Represents,
			Factors:    exprMapToSets(c.Factors),
		}
		if c.IsView() {
			xc.Kind = c.Kind.String()
		}
		for _, is := range c.Implements {
			xc.Implements = append(xc.Implements, ifaceSpecToXML(is))
		}
		for _, is := range c.Requires {
			xc.Requires = append(xc.Requires, ifaceSpecToXML(is))
		}
		for _, cond := range c.Conditions {
			xc.Conditions = append(xc.Conditions, cond.String())
		}
		if b := c.Behaviors; b != (Behaviors{}) {
			xc.Behaviors = &xmlBehaviors{
				Capacity: b.CapacityRPS, RRF: b.RRF, CPUMS: b.CPUMSPerRequest,
				RequestBytes: b.RequestBytes, ResponseBytes: b.ResponseBytes,
			}
		}
		if c.IsView() {
			xs.Views = append(xs.Views, xc)
		} else {
			xs.Components = append(xs.Components, xc)
		}
	}
	ruleNames := make([]string, 0, len(s.ModRules))
	for name := range s.ModRules {
		ruleNames = append(ruleNames, name)
	}
	sort.Strings(ruleNames)
	for _, name := range ruleNames {
		m := s.ModRules[name]
		xr := xmlModRule{Property: name}
		for _, r := range m.Rules {
			xr.Rules = append(xr.Rules, xmlRuleRow{In: r.In.String(), Env: r.Env.String(), Out: r.Out.String()})
		}
		if m.Default != nil {
			xr.Default = &xmlRuleRowRH{Out: m.Default.String()}
		}
		xs.ModRules = append(xs.ModRules, xr)
	}
	enc := xml.NewEncoder(w)
	enc.Indent("", "  ")
	if err := enc.Encode(xs); err != nil {
		return fmt.Errorf("spec: encode: %w", err)
	}
	return enc.Flush()
}

// DecodeXML parses a specification from XML. The result is not
// automatically validated; call Validate.
func DecodeXML(r io.Reader) (*Service, error) {
	var xs xmlService
	if err := xml.NewDecoder(r).Decode(&xs); err != nil {
		return nil, fmt.Errorf("spec: decode: %w", err)
	}
	s := &Service{Name: xs.Name, ModRules: property.RuleTable{}}
	for _, xp := range xs.Properties {
		switch xp.Type {
		case "Boolean":
			s.Properties = append(s.Properties, property.BoolType(xp.Name))
		case "Interval":
			s.Properties = append(s.Properties, property.IntervalType(xp.Name, xp.Lo, xp.Hi))
		case "String":
			s.Properties = append(s.Properties, property.Type{Name: xp.Name, Kind: property.KindString, Enum: xp.Enum})
		default:
			return nil, fmt.Errorf("spec: property %q has unknown type %q", xp.Name, xp.Type)
		}
	}
	for _, xi := range xs.Interfaces {
		s.Interfaces = append(s.Interfaces, InterfaceDecl{Name: xi.Name, Properties: xi.Properties})
	}
	decodeComp := func(xc xmlComponent, isView bool) (Component, error) {
		c := Component{Name: xc.Name, Represents: xc.Represents}
		if isView {
			switch xc.Kind {
			case "object":
				c.Kind = ObjectView
			case "data":
				c.Kind = DataView
			default:
				return c, fmt.Errorf("spec: view %q has unknown kind %q", xc.Name, xc.Kind)
			}
		}
		if len(xc.Factors) > 0 {
			c.Factors = setsToExprMap(xc.Factors)
		}
		for _, xi := range xc.Implements {
			c.Implements = append(c.Implements, xmlToIfaceSpec(xi))
		}
		for _, xi := range xc.Requires {
			c.Requires = append(c.Requires, xmlToIfaceSpec(xi))
		}
		for _, text := range xc.Conditions {
			cond, err := property.ParseCondition(text)
			if err != nil {
				return c, fmt.Errorf("spec: component %q: %w", xc.Name, err)
			}
			c.Conditions = append(c.Conditions, cond)
		}
		if xc.Behaviors != nil {
			c.Behaviors = Behaviors{
				CapacityRPS: xc.Behaviors.Capacity, RRF: xc.Behaviors.RRF,
				CPUMSPerRequest: xc.Behaviors.CPUMS,
				RequestBytes:    xc.Behaviors.RequestBytes, ResponseBytes: xc.Behaviors.ResponseBytes,
			}
		}
		return c, nil
	}
	for _, xc := range xs.Components {
		c, err := decodeComp(xc, false)
		if err != nil {
			return nil, err
		}
		s.Components = append(s.Components, c)
	}
	for _, xc := range xs.Views {
		c, err := decodeComp(xc, true)
		if err != nil {
			return nil, err
		}
		s.Components = append(s.Components, c)
	}
	for _, xr := range xs.ModRules {
		m := property.ModRule{Property: xr.Property}
		for _, row := range xr.Rules {
			in, err := parsePattern(row.In)
			if err != nil {
				return nil, fmt.Errorf("spec: rule for %q: %w", xr.Property, err)
			}
			env, err := parsePattern(row.Env)
			if err != nil {
				return nil, fmt.Errorf("spec: rule for %q: %w", xr.Property, err)
			}
			out, err := parseOutcome(row.Out)
			if err != nil {
				return nil, fmt.Errorf("spec: rule for %q: %w", xr.Property, err)
			}
			m.Rules = append(m.Rules, property.Rule{In: in, Env: env, Out: out})
		}
		if xr.Default != nil {
			out, err := parseOutcome(xr.Default.Out)
			if err != nil {
				return nil, fmt.Errorf("spec: default rule for %q: %w", xr.Property, err)
			}
			m.Default = &out
		}
		s.ModRules[xr.Property] = m
	}
	return s, nil
}

func ifaceSpecToXML(is InterfaceSpec) xmlIfaceSpec {
	return xmlIfaceSpec{Name: is.Name, Sets: exprMapToSets(is.Props)}
}

func xmlToIfaceSpec(xi xmlIfaceSpec) InterfaceSpec {
	return InterfaceSpec{Name: xi.Name, Props: setsToExprMap(xi.Sets)}
}

func exprMapToSets(m map[string]property.Expr) []xmlSet {
	if len(m) == 0 {
		return nil
	}
	names := make([]string, 0, len(m))
	for k := range m {
		names = append(names, k)
	}
	sort.Strings(names)
	sets := make([]xmlSet, 0, len(m))
	for _, k := range names {
		sets = append(sets, xmlSet{Property: k, Value: m[k].String()})
	}
	return sets
}

func setsToExprMap(sets []xmlSet) map[string]property.Expr {
	if len(sets) == 0 {
		return nil
	}
	m := make(map[string]property.Expr, len(sets))
	for _, s := range sets {
		m[s.Property] = property.ParseExpr(s.Value)
	}
	return m
}

func parsePattern(text string) (property.Pattern, error) {
	if text == "ANY" {
		return property.Any, nil
	}
	if text == "" {
		return property.Pattern{}, fmt.Errorf("empty pattern")
	}
	return property.Exactly(property.Parse(text)), nil
}

func parseOutcome(text string) (property.Outcome, error) {
	switch text {
	case "IN":
		return property.OutIn, nil
	case "ENV":
		return property.OutEnv, nil
	case "MIN":
		return property.OutMin, nil
	case "MAX":
		return property.OutMax, nil
	case "":
		return property.Outcome{}, fmt.Errorf("empty outcome")
	}
	return property.OutLit(property.Parse(text)), nil
}
