// Package spec implements the declarative service specification language
// of the partitionable services framework (HPDC'02, Section 3.1 and
// Figure 2).
//
// A Service declares properties (the value namespace), interfaces (the
// functionality namespace), and components. Components state which
// interfaces they implement and require — with property values attached —
// plus deployment conditions and resource behaviors. Views are
// customized implementations of a component (object views restrict
// functionality, data views hold partial state) and may be factored into
// multiple run-time configurations by binding properties to the
// deployment environment. Property modification rules (Figure 4) declare
// how an environment transforms implemented properties in transit.
package spec

import (
	"fmt"
	"strings"

	"partsvc/internal/property"
)

// InterfaceDecl declares a service interface and the properties that
// annotate it.
type InterfaceDecl struct {
	// Name identifies the interface.
	Name string
	// Properties lists the names of properties that may be attached to
	// the interface by implementers and requirers.
	Properties []string
}

// HasProperty reports whether the interface declares the named property.
func (d InterfaceDecl) HasProperty(name string) bool {
	for _, p := range d.Properties {
		if p == name {
			return true
		}
	}
	return false
}

// InterfaceSpec is an interface reference inside a component's linkage
// section: the interface name plus property expressions (generated
// values for Implements, required values for Requires).
type InterfaceSpec struct {
	// Name is the referenced interface.
	Name string
	// Props maps property names to value expressions. Expressions may be
	// literals or environment references (e.g. Node.TrustLevel).
	Props map[string]property.Expr
}

// Clone returns a deep copy of the interface spec.
func (is InterfaceSpec) Clone() InterfaceSpec {
	c := InterfaceSpec{Name: is.Name, Props: make(map[string]property.Expr, len(is.Props))}
	for k, v := range is.Props {
		c.Props[k] = v
	}
	return c
}

// EvalProps resolves all property expressions against a scope, returning
// the concrete property set.
func (is InterfaceSpec) EvalProps(sc property.Scope) (property.Set, error) {
	out := make(property.Set, len(is.Props))
	for name, expr := range is.Props {
		v, err := expr.Eval(sc)
		if err != nil {
			return nil, fmt.Errorf("interface %s, property %s: %w", is.Name, name, err)
		}
		out[name] = v
	}
	return out, nil
}

// String renders the reference in specification notation.
func (is InterfaceSpec) String() string {
	if len(is.Props) == 0 {
		return is.Name
	}
	parts := make([]string, 0, len(is.Props))
	// Sorted for stability.
	set := make(property.Set, len(is.Props))
	for k := range is.Props {
		set[k] = property.Str("")
	}
	for _, k := range set.Names() {
		parts = append(parts, fmt.Sprintf("%s=%s", k, is.Props[k]))
	}
	return fmt.Sprintf("%s(%s)", is.Name, strings.Join(parts, ","))
}

// Behaviors conveys a component's resource requirements (Section 3.1,
// "Behaviors"): per-request CPU cost, request rate capacity, bytes per
// request/response, and the Request Reduction Factor.
type Behaviors struct {
	// CapacityRPS is the component's request-serving capacity in
	// requests per second (the paper's "Capacity: 1000"). Zero means
	// unspecified (unbounded for planning purposes).
	CapacityRPS float64
	// RRF is the Request Reduction Factor: the ratio of requests issued
	// along required linkages per request served on an implemented
	// interface. Zero means unspecified; EffectiveRRF normalizes it to 1.
	RRF float64
	// CPUMSPerRequest is the CPU time consumed per request,
	// milliseconds.
	CPUMSPerRequest float64
	// RequestBytes and ResponseBytes are the average sizes of a request
	// and its response on the component's implemented interfaces.
	RequestBytes  int
	ResponseBytes int
}

// EffectiveRRF returns the RRF, treating the zero value as 1 (every
// request is forwarded; no caching benefit).
func (b Behaviors) EffectiveRRF() float64 {
	if b.RRF == 0 {
		return 1
	}
	return b.RRF
}

// ViewKind distinguishes the two view flavors of the object-views model.
type ViewKind int

const (
	// NotView marks a regular component.
	NotView ViewKind = iota
	// ObjectView is a view providing part of the original component's
	// functionality (e.g. ViewMailClient).
	ObjectView
	// DataView is a view holding part of the original component's state
	// (e.g. ViewMailServer).
	DataView
)

// String returns the specification keyword for the kind.
func (k ViewKind) String() string {
	switch k {
	case ObjectView:
		return "object"
	case DataView:
		return "data"
	default:
		return "component"
	}
}

// Component declares one constituent piece of a service. Views are
// components whose Represents field names the component they are a view
// of; their Factors clause binds properties to the environment so that a
// single view definition can be instantiated into multiple run-time
// configurations.
type Component struct {
	// Name identifies the component.
	Name string
	// Represents, when non-empty, marks this component as a view of the
	// named component (the Represents keyword).
	Represents string
	// Kind distinguishes object views from data views; NotView for
	// regular components.
	Kind ViewKind
	// Factors binds property names to expressions evaluated at
	// deployment time (the Factors keyword).
	Factors map[string]property.Expr
	// Implements lists interfaces the component provides, with generated
	// property values.
	Implements []InterfaceSpec
	// Requires lists interfaces the component needs, with required
	// property values.
	Requires []InterfaceSpec
	// Conditions gate where the component may be instantiated.
	Conditions []property.Condition
	// Behaviors conveys resource requirements.
	Behaviors Behaviors
}

// IsView reports whether the component is a view.
func (c Component) IsView() bool { return c.Represents != "" }

// ImplementsInterface returns the Implements entry for the named
// interface, if present.
func (c Component) ImplementsInterface(name string) (InterfaceSpec, bool) {
	for _, is := range c.Implements {
		if is.Name == name {
			return is, true
		}
	}
	return InterfaceSpec{}, false
}

// RequiresInterface returns the Requires entry for the named interface,
// if present.
func (c Component) RequiresInterface(name string) (InterfaceSpec, bool) {
	for _, is := range c.Requires {
		if is.Name == name {
			return is, true
		}
	}
	return InterfaceSpec{}, false
}

// IsTransparentFor reports whether the component passes the named
// property of the named interface through from its own required linkage:
// it both implements and requires the interface but does not generate a
// value for the property. Wrapper components such as the Encryptor —
// which implements ServerInterface(Confidentiality=T) and requires it
// downstream — are transparent for TrustLevel: the level offered to
// their clients is whatever their provider offers.
func (c Component) IsTransparentFor(iface, prop string) bool {
	impl, ok := c.ImplementsInterface(iface)
	if !ok {
		return false
	}
	if _, generated := impl.Props[prop]; generated {
		return false
	}
	_, requiresSame := c.RequiresInterface(iface)
	return requiresSame
}

// ConditionsHold evaluates all deployment conditions against the scope.
func (c Component) ConditionsHold(sc property.Scope) bool {
	for _, cond := range c.Conditions {
		if !cond.Holds(sc) {
			return false
		}
	}
	return true
}

// Service is a complete declarative service specification.
type Service struct {
	// Name identifies the service in the lookup namespace.
	Name string
	// Properties declares the property namespace.
	Properties []property.Type
	// Interfaces declares the interface namespace.
	Interfaces []InterfaceDecl
	// Components lists components and views.
	Components []Component
	// ModRules are the property modification rules (Figure 4).
	ModRules property.RuleTable
}

// PropertyType returns the declaration of the named property.
func (s *Service) PropertyType(name string) (property.Type, bool) {
	for _, p := range s.Properties {
		if p.Name == name {
			return p, true
		}
	}
	return property.Type{}, false
}

// Interface returns the declaration of the named interface.
func (s *Service) Interface(name string) (InterfaceDecl, bool) {
	for _, i := range s.Interfaces {
		if i.Name == name {
			return i, true
		}
	}
	return InterfaceDecl{}, false
}

// Component returns the named component or view.
func (s *Service) Component(name string) (Component, bool) {
	for _, c := range s.Components {
		if c.Name == name {
			return c, true
		}
	}
	return Component{}, false
}

// ImplementersOf returns the components that implement the named
// interface, in declaration order.
func (s *Service) ImplementersOf(iface string) []Component {
	var out []Component
	for _, c := range s.Components {
		if _, ok := c.ImplementsInterface(iface); ok {
			out = append(out, c)
		}
	}
	return out
}

// ViewsOf returns the views whose Represents names the given component.
func (s *Service) ViewsOf(component string) []Component {
	var out []Component
	for _, c := range s.Components {
		if c.Represents == component {
			out = append(out, c)
		}
	}
	return out
}
