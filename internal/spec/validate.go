package spec

import (
	"errors"
	"fmt"

	"partsvc/internal/property"
)

// Validate checks the specification for internal consistency: unique
// names, resolvable references, property values within their declared
// ranges, and views that represent existing components. It returns all
// problems found, joined with errors.Join, or nil.
func (s *Service) Validate() error {
	var errs []error
	report := func(format string, args ...any) {
		errs = append(errs, fmt.Errorf(format, args...))
	}
	if s.Name == "" {
		report("service has no name")
	}

	props := map[string]property.Type{}
	for _, p := range s.Properties {
		if p.Name == "" {
			report("property with empty name")
			continue
		}
		if _, dup := props[p.Name]; dup {
			report("duplicate property %q", p.Name)
		}
		if p.Kind == property.KindInvalid {
			report("property %q has no kind", p.Name)
		}
		if p.Kind == property.KindInt && p.Hi < p.Lo {
			report("property %q has empty range (%d,%d)", p.Name, p.Lo, p.Hi)
		}
		props[p.Name] = p
	}

	ifaces := map[string]InterfaceDecl{}
	for _, i := range s.Interfaces {
		if i.Name == "" {
			report("interface with empty name")
			continue
		}
		if _, dup := ifaces[i.Name]; dup {
			report("duplicate interface %q", i.Name)
		}
		for _, pn := range i.Properties {
			if _, ok := props[pn]; !ok {
				report("interface %q references undeclared property %q", i.Name, pn)
			}
		}
		ifaces[i.Name] = i
	}

	comps := map[string]Component{}
	for _, c := range s.Components {
		if c.Name == "" {
			report("component with empty name")
			continue
		}
		if _, dup := comps[c.Name]; dup {
			report("duplicate component %q", c.Name)
		}
		comps[c.Name] = c
	}

	checkIfaceSpec := func(cname, section string, is InterfaceSpec) {
		decl, ok := ifaces[is.Name]
		if !ok {
			report("component %q %s undeclared interface %q", cname, section, is.Name)
			return
		}
		for pn, expr := range is.Props {
			if !decl.HasProperty(pn) {
				report("component %q %s interface %q with property %q not declared on that interface", cname, section, is.Name, pn)
			}
			ty, ok := props[pn]
			if !ok {
				continue // already reported via interface check
			}
			if !expr.IsRef() && expr.LitValue().IsValid() {
				if err := ty.Check(expr.LitValue()); err != nil {
					report("component %q %s interface %q: %v", cname, section, is.Name, err)
				}
			}
			if expr.IsZero() {
				report("component %q %s interface %q property %q has empty expression", cname, section, is.Name, pn)
			}
		}
	}

	for _, c := range s.Components {
		for _, is := range c.Implements {
			checkIfaceSpec(c.Name, "implements", is)
		}
		for _, is := range c.Requires {
			checkIfaceSpec(c.Name, "requires", is)
		}
		if len(c.Implements) == 0 {
			report("component %q implements no interfaces", c.Name)
		}
		if c.Represents != "" {
			base, ok := comps[c.Represents]
			if !ok {
				report("view %q represents unknown component %q", c.Name, c.Represents)
			} else if base.IsView() {
				report("view %q represents another view %q", c.Name, c.Represents)
			}
			if c.Kind == NotView {
				report("view %q does not declare an object/data kind", c.Name)
			}
		} else if c.Kind != NotView {
			report("component %q declares a view kind but represents nothing", c.Name)
		}
		for pn, expr := range c.Factors {
			if _, ok := props[pn]; !ok {
				report("component %q factors undeclared property %q", c.Name, pn)
			}
			if expr.IsZero() {
				report("component %q factor %q has empty expression", c.Name, pn)
			}
		}
		if b := c.Behaviors; b.RRF < 0 || b.RRF > 1 {
			report("component %q has RRF %v outside [0,1]", c.Name, b.RRF)
		}
	}

	for name := range s.ModRules {
		if _, ok := props[name]; !ok {
			report("modification rule for undeclared property %q", name)
		}
	}

	// Every required interface must have at least one implementer,
	// otherwise no valid linkage graph can ever be built.
	for _, c := range s.Components {
		for _, req := range c.Requires {
			if len(s.ImplementersOf(req.Name)) == 0 {
				report("component %q requires interface %q which no component implements", c.Name, req.Name)
			}
		}
	}

	return errors.Join(errs...)
}
