// Package trust implements a dRBAC-style decentralized trust-management
// substrate (the Section 6 extension of the paper): entities issue
// credentials that grant roles to other entities or roles, delegation
// chains are discovered by graph search, and roles translate into
// service properties. This replaces the service-specific
// credential-to-property translation functions with a service-
// independent mechanism: "transforming properties in one namespace into
// properties in another then becomes a simple matter of issuing a
// different kind of credential".
package trust

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"partsvc/internal/netmodel"
	"partsvc/internal/property"
)

// Role is a namespaced role, written "owner.name" (e.g.
// "mailcorp.trust4"). The owner entity controls who may issue it.
type Role string

// Owner returns the namespace owner of the role.
func (r Role) Owner() string {
	if i := strings.IndexByte(string(r), '.'); i >= 0 {
		return string(r)[:i]
	}
	return string(r)
}

// Valid reports whether the role has the "owner.name" shape.
func (r Role) Valid() bool {
	i := strings.IndexByte(string(r), '.')
	return i > 0 && i < len(r)-1
}

// Credential asserts that Subject holds Role, issued by Issuer. When
// Delegatable, the subject may in turn issue the role to others.
type Credential struct {
	// Subject is the entity (or role, for role-to-role delegation)
	// receiving the role.
	Subject string
	// Role is the granted role.
	Role Role
	// Issuer is the entity asserting the grant.
	Issuer string
	// Delegatable marks whether the subject may further delegate.
	Delegatable bool
}

// String renders the credential in dRBAC arrow notation.
func (c Credential) String() string {
	d := ""
	if c.Delegatable {
		d = " (delegatable)"
	}
	return fmt.Sprintf("%s -> %s [by %s]%s", c.Subject, c.Role, c.Issuer, d)
}

// Store is a credential repository supporting issuance, revocation, and
// delegation-chain search. It is safe for concurrent use.
type Store struct {
	mu    sync.RWMutex
	creds []Credential
}

// NewStore returns an empty credential store.
func NewStore() *Store { return &Store{} }

// Issue adds a credential after checking the issuer's authority: the
// role's namespace owner may always issue it; any other issuer must
// itself hold the role delegatably.
func (s *Store) Issue(c Credential) error {
	if !c.Role.Valid() {
		return fmt.Errorf("trust: role %q is not of the form owner.name", c.Role)
	}
	if c.Subject == "" || c.Issuer == "" {
		return fmt.Errorf("trust: credential needs subject and issuer")
	}
	if c.Issuer != c.Role.Owner() && !s.holdsRole(c.Issuer, c.Role, true) {
		return fmt.Errorf("trust: %s may not issue %s (not owner, no delegatable grant)", c.Issuer, c.Role)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.creds = append(s.creds, c)
	return nil
}

// Revoke removes every credential matching subject and role, returning
// how many were removed. Chains through the revoked grant dissolve
// immediately (searches consult live credentials only).
func (s *Store) Revoke(subject string, role Role) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	kept := s.creds[:0]
	removed := 0
	for _, c := range s.creds {
		if c.Subject == subject && c.Role == role {
			removed++
			continue
		}
		kept = append(kept, c)
	}
	s.creds = kept
	return removed
}

// HasRole reports whether the subject holds the role through any valid
// credential chain.
func (s *Store) HasRole(subject string, role Role) bool {
	return s.holdsRole(subject, role, false)
}

// holdsRole searches for a chain granting role to subject. When
// needDelegatable is true, every link must be delegatable (the chain
// conveys issuing authority, not mere membership).
func (s *Store) holdsRole(subject string, role Role, needDelegatable bool) bool {
	chain := s.Prove(subject, role)
	if chain == nil {
		return false
	}
	if !needDelegatable {
		return true
	}
	for _, c := range chain {
		if !c.Delegatable {
			return false
		}
	}
	return true
}

// Prove returns a credential chain establishing that subject holds
// role, or nil. The chain is ordered from the subject's own credential
// toward the role owner's issuance. Prove prefers delegatable chains so
// that a positive result from a delegatable search is reusable.
func (s *Store) Prove(subject string, role Role) []Credential {
	s.mu.RLock()
	defer s.mu.RUnlock()
	// BFS from the subject across "subject holds X" edges; an edge
	// Subject->Role exists for each live credential whose issuer is
	// authorized. Issuer authority itself requires a (sub)proof, so we
	// do an iterative fixpoint: authorized issuers are the role owner
	// and holders of the role via already-validated delegatable chains.
	type holding struct {
		role        Role
		delegatable bool
		chain       []Credential
	}
	// validated[subject][role] -> best holding (delegatable preferred).
	validated := map[string]map[Role]holding{}
	get := func(sub string) map[Role]holding {
		if validated[sub] == nil {
			validated[sub] = map[Role]holding{}
		}
		return validated[sub]
	}
	authorized := func(issuer string, role Role) ([]Credential, bool) {
		if issuer == role.Owner() {
			return nil, true
		}
		if h, ok := validated[issuer][role]; ok && h.delegatable {
			return h.chain, true
		}
		return nil, false
	}
	// Fixpoint: keep scanning until no new holdings appear. Credential
	// counts are small; quadratic scanning is fine and deterministic.
	for changed := true; changed; {
		changed = false
		for _, c := range s.creds {
			issuerChain, ok := authorized(c.Issuer, c.Role)
			if !ok {
				continue
			}
			cur, exists := get(c.Subject)[c.Role]
			chain := append([]Credential{c}, issuerChain...)
			deleg := c.Delegatable && allDelegatable(issuerChain)
			if !exists || (!cur.delegatable && deleg) {
				get(c.Subject)[c.Role] = holding{role: c.Role, delegatable: deleg, chain: chain}
				changed = true
			}
		}
	}
	if h, ok := validated[subject][role]; ok {
		return h.chain
	}
	return nil
}

func allDelegatable(chain []Credential) bool {
	for _, c := range chain {
		if !c.Delegatable {
			return false
		}
	}
	return true
}

// RolesOf returns every role the subject can prove, sorted.
func (s *Store) RolesOf(subject string) []Role {
	s.mu.RLock()
	roles := map[Role]bool{}
	for _, c := range s.creds {
		roles[c.Role] = true
	}
	s.mu.RUnlock()
	var out []Role
	for r := range roles {
		if s.HasRole(subject, r) {
			out = append(out, r)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// PropertyIssuer maps roles to service property sets: holding a role
// confers its properties. This is the service-independent translation
// layer of Section 6 — role issuance replaces per-service translation
// code.
type PropertyIssuer struct {
	mu       sync.RWMutex
	store    *Store
	mappings map[Role]property.Set
}

// NewPropertyIssuer binds a translation table to a credential store.
func NewPropertyIssuer(store *Store) *PropertyIssuer {
	return &PropertyIssuer{store: store, mappings: map[Role]property.Set{}}
}

// MapRole declares that holders of the role acquire the given
// properties.
func (pi *PropertyIssuer) MapRole(role Role, props property.Set) {
	pi.mu.Lock()
	defer pi.mu.Unlock()
	pi.mappings[role] = props.Clone()
}

// PropertiesOf derives the property set of an entity from its provable
// roles. When several roles assign the same ordered property, the
// maximum wins (holding trust4 and trust2 means trust 4); for strings
// the lexicographically larger value wins, keeping the result
// deterministic.
func (pi *PropertyIssuer) PropertiesOf(entity string) property.Set {
	pi.mu.RLock()
	roles := make([]Role, 0, len(pi.mappings))
	for r := range pi.mappings {
		roles = append(roles, r)
	}
	pi.mu.RUnlock()
	sort.Slice(roles, func(i, j int) bool { return roles[i] < roles[j] })
	out := property.Set{}
	for _, r := range roles {
		if !pi.store.HasRole(entity, r) {
			continue
		}
		pi.mu.RLock()
		props := pi.mappings[r]
		pi.mu.RUnlock()
		for name, v := range props {
			cur, exists := out[name]
			if !exists {
				out[name] = v
				continue
			}
			if m := property.Max(cur, v); m.IsValid() {
				out[name] = m
			} else if v.String() > cur.String() {
				out[name] = v
			}
		}
	}
	return out
}

// NodeTranslation returns a netmodel.TranslationFunc that resolves a
// node's "entity" credential through the issuer: the drop-in
// replacement for service-specific translation functions.
func (pi *PropertyIssuer) NodeTranslation() netmodel.TranslationFunc {
	return func(creds map[string]string) property.Set {
		entity := creds["entity"]
		if entity == "" {
			return property.Set{}
		}
		return pi.PropertiesOf(entity)
	}
}
