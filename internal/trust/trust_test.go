package trust

import (
	"reflect"
	"testing"

	"partsvc/internal/netmodel"
	"partsvc/internal/planner"
	"partsvc/internal/property"
	"partsvc/internal/spec"
	"partsvc/internal/topology"
)

func TestRoleParsing(t *testing.T) {
	if Role("mailcorp.trust4").Owner() != "mailcorp" {
		t.Error("owner")
	}
	if !Role("a.b").Valid() || Role("noowner").Valid() || Role("a.").Valid() || Role(".b").Valid() {
		t.Error("validity")
	}
	if Role("bare").Owner() != "bare" {
		t.Error("bare owner fallback")
	}
}

func TestOwnerIssuesDirectly(t *testing.T) {
	s := NewStore()
	if err := s.Issue(Credential{Subject: "ny-1", Role: "mailcorp.trust5", Issuer: "mailcorp"}); err != nil {
		t.Fatal(err)
	}
	if !s.HasRole("ny-1", "mailcorp.trust5") {
		t.Error("direct grant must hold")
	}
	if s.HasRole("ny-2", "mailcorp.trust5") {
		t.Error("ungranted subject must not hold")
	}
}

func TestIssueValidation(t *testing.T) {
	s := NewStore()
	if err := s.Issue(Credential{Subject: "x", Role: "norole", Issuer: "x"}); err == nil {
		t.Error("malformed role must fail")
	}
	if err := s.Issue(Credential{Subject: "", Role: "a.b", Issuer: "a"}); err == nil {
		t.Error("empty subject must fail")
	}
	if err := s.Issue(Credential{Subject: "x", Role: "mailcorp.trust5", Issuer: "intruder"}); err == nil {
		t.Error("unauthorized issuer must fail")
	}
}

func TestDelegationChain(t *testing.T) {
	s := NewStore()
	// mailcorp delegates trust2 issuance to partner; partner grants it
	// to a Seattle node.
	if err := s.Issue(Credential{Subject: "partner", Role: "mailcorp.trust2", Issuer: "mailcorp", Delegatable: true}); err != nil {
		t.Fatal(err)
	}
	if err := s.Issue(Credential{Subject: "sea-1", Role: "mailcorp.trust2", Issuer: "partner"}); err != nil {
		t.Fatal(err)
	}
	if !s.HasRole("sea-1", "mailcorp.trust2") {
		t.Error("delegated grant must hold")
	}
	chain := s.Prove("sea-1", "mailcorp.trust2")
	if len(chain) != 2 {
		t.Fatalf("chain = %v", chain)
	}
	if chain[0].Subject != "sea-1" || chain[1].Subject != "partner" {
		t.Errorf("chain order = %v", chain)
	}
}

func TestNonDelegatableGrantCannotIssue(t *testing.T) {
	s := NewStore()
	if err := s.Issue(Credential{Subject: "partner", Role: "mailcorp.trust2", Issuer: "mailcorp"}); err != nil {
		t.Fatal(err)
	}
	if err := s.Issue(Credential{Subject: "sea-1", Role: "mailcorp.trust2", Issuer: "partner"}); err == nil {
		t.Error("non-delegatable holder must not issue")
	}
}

func TestDelegationDepthAndMixedChains(t *testing.T) {
	s := NewStore()
	must := func(c Credential) {
		t.Helper()
		if err := s.Issue(c); err != nil {
			t.Fatal(err)
		}
	}
	must(Credential{Subject: "a", Role: "o.r", Issuer: "o", Delegatable: true})
	must(Credential{Subject: "b", Role: "o.r", Issuer: "a", Delegatable: true})
	must(Credential{Subject: "c", Role: "o.r", Issuer: "b"})
	if !s.HasRole("c", "o.r") {
		t.Error("depth-3 chain must hold")
	}
	// c's grant is terminal: it cannot issue.
	if err := s.Issue(Credential{Subject: "d", Role: "o.r", Issuer: "c"}); err == nil {
		t.Error("terminal holder must not issue")
	}
}

func TestRevokeDissolvesChain(t *testing.T) {
	s := NewStore()
	if err := s.Issue(Credential{Subject: "partner", Role: "o.r", Issuer: "o", Delegatable: true}); err != nil {
		t.Fatal(err)
	}
	if err := s.Issue(Credential{Subject: "x", Role: "o.r", Issuer: "partner"}); err != nil {
		t.Fatal(err)
	}
	if n := s.Revoke("partner", "o.r"); n != 1 {
		t.Fatalf("revoked %d", n)
	}
	if s.HasRole("x", "o.r") {
		t.Error("revoking the intermediate must dissolve the chain")
	}
	if s.Revoke("ghost", "o.r") != 0 {
		t.Error("revoking nothing returns 0")
	}
}

func TestRolesOf(t *testing.T) {
	s := NewStore()
	for _, c := range []Credential{
		{Subject: "n", Role: "o.a", Issuer: "o"},
		{Subject: "n", Role: "o.b", Issuer: "o"},
		{Subject: "m", Role: "o.c", Issuer: "o"},
	} {
		if err := s.Issue(c); err != nil {
			t.Fatal(err)
		}
	}
	got := s.RolesOf("n")
	if !reflect.DeepEqual(got, []Role{"o.a", "o.b"}) {
		t.Errorf("RolesOf = %v", got)
	}
}

func TestCredentialString(t *testing.T) {
	c := Credential{Subject: "s", Role: "o.r", Issuer: "o", Delegatable: true}
	want := "s -> o.r [by o] (delegatable)"
	if got := c.String(); got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
}

func TestPropertyIssuerMaxWins(t *testing.T) {
	s := NewStore()
	pi := NewPropertyIssuer(s)
	pi.MapRole("mailcorp.trust2", property.Set{"TrustLevel": property.Int(2)})
	pi.MapRole("mailcorp.trust4", property.Set{"TrustLevel": property.Int(4)})
	for _, c := range []Credential{
		{Subject: "n", Role: "mailcorp.trust2", Issuer: "mailcorp"},
		{Subject: "n", Role: "mailcorp.trust4", Issuer: "mailcorp"},
	} {
		if err := s.Issue(c); err != nil {
			t.Fatal(err)
		}
	}
	got := pi.PropertiesOf("n")
	if !got["TrustLevel"].Equal(property.Int(4)) {
		t.Errorf("properties = %v, want TrustLevel=4", got)
	}
	if props := pi.PropertiesOf("stranger"); len(props) != 0 {
		t.Errorf("stranger props = %v", props)
	}
}

// caseStudyCredentials builds the Figure 5 trust structure as dRBAC
// credentials: mailcorp grants trust5 to New York, trust4 to San Diego,
// and delegates trust2 issuance to the partner org, which certifies its
// own Seattle nodes.
func caseStudyCredentials(t *testing.T) *PropertyIssuer {
	t.Helper()
	s := NewStore()
	pi := NewPropertyIssuer(s)
	for lvl := 2; lvl <= 5; lvl++ {
		pi.MapRole(Role("mailcorp.trust"+string(rune('0'+lvl))),
			property.Set{"TrustLevel": property.Int(int64(lvl))})
	}
	must := func(c Credential) {
		t.Helper()
		if err := s.Issue(c); err != nil {
			t.Fatal(err)
		}
	}
	for _, n := range []string{"ny-1", "ny-2", "ny-3"} {
		must(Credential{Subject: n, Role: "mailcorp.trust5", Issuer: "mailcorp"})
	}
	for _, n := range []string{"sd-1", "sd-2"} {
		must(Credential{Subject: n, Role: "mailcorp.trust4", Issuer: "mailcorp"})
	}
	must(Credential{Subject: "partner", Role: "mailcorp.trust2", Issuer: "mailcorp", Delegatable: true})
	for _, n := range []string{"sea-1", "sea-2"} {
		must(Credential{Subject: n, Role: "mailcorp.trust2", Issuer: "partner"})
	}
	return pi
}

// TestTranslationEquivalence (experiment A4): replacing the hand-written
// translation with dRBAC-derived properties yields the same node
// properties and therefore the same Figure 6 deployments.
func TestTranslationEquivalence(t *testing.T) {
	pi := caseStudyCredentials(t)

	// Build the case-study topology but strip node properties, then
	// translate through the credential store.
	direct := topology.CaseStudy()
	viaTrust := topology.CaseStudy()
	for _, node := range viaTrust.Nodes() {
		delete(node.Props, "TrustLevel")
		node.Credentials = map[string]string{"entity": string(node.ID)}
	}
	viaTrust.Translate(pi.NodeTranslation(), nil)

	for _, want := range direct.Nodes() {
		got, _ := viaTrust.Node(want.ID)
		if !got.Props["TrustLevel"].Equal(want.Props["TrustLevel"]) {
			t.Errorf("node %s: trust %v via credentials, %v direct",
				want.ID, got.Props["TrustLevel"], want.Props["TrustLevel"])
		}
	}

	// Same planner outcome on both networks.
	plan := func(net *netmodel.Network) string {
		pl := planner.New(spec.MailService(), net)
		ms, err := pl.PrimaryPlacement(spec.CompMailServer, topology.NYServer)
		if err != nil {
			t.Fatal(err)
		}
		pl.AddExisting(ms)
		dep, err := pl.Plan(planner.Request{
			Interface: spec.IfaceClient, ClientNode: topology.SDClient,
			User: "Alice", RateRPS: 50,
		})
		if err != nil {
			t.Fatal(err)
		}
		return dep.String()
	}
	if a, b := plan(direct), plan(viaTrust); a != b {
		t.Errorf("plans differ:\n  direct: %s\n  dRBAC:  %s", a, b)
	}
}
