package transport

import (
	"encoding/binary"
	"io"
	"net"
	"testing"
	"time"

	"partsvc/internal/wire"
)

// TestMuxStalledClientDoesNotStarveOthers is the listener-starvation
// regression: a peer that floods requests but never reads a byte of
// the responses fills the connection's write queue. The shared pool
// workers must never block on that queue — the stalled connection is
// killed and every other connection keeps being served.
func TestMuxStalledClientDoesNotStarveOthers(t *testing.T) {
	tr := NewTCP()
	tr.WriteTimeout = 250 * time.Millisecond
	tr.CallTimeout = 10 * time.Second
	// Big responses so the stalled peer's backlog overwhelms the kernel
	// socket buffers quickly.
	body := make([]byte, 32<<10)
	h := HandlerFunc(func(m *wire.Message) *wire.Message {
		return &wire.Message{Kind: wire.KindResponse, ID: m.ID, Body: body}
	})
	ln, err := tr.Serve("", h)
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	stalled, err := net.Dial("tcp", ln.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer stalled.Close()
	go func() {
		fw := wire.NewFrameWriter(stalled)
		req, _ := (&wire.Message{Kind: wire.KindRequest}).Marshal()
		for i := 0; i < 2000; i++ {
			if fw.WriteFrame(uint64(i+1), req) != nil {
				return
			}
			if i%64 == 0 && fw.Flush() != nil {
				return
			}
		}
		fw.Flush()
	}()

	// A healthy client on its own connection must keep being served
	// while the stalled one clogs up and dies.
	ep, err := tr.Dial(ln.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer ep.Close()
	for i := 0; i < 20; i++ {
		if _, err := ep.Call(&wire.Message{Kind: wire.KindRequest}); err != nil {
			t.Fatalf("healthy call %d starved by the stalled connection: %v", i, err)
		}
	}

	// The stalled connection must be torn down, not leaked: once the
	// server detects the stall it closes the socket, so draining it ends
	// in EOF/reset well before this deadline.
	stalled.SetReadDeadline(time.Now().Add(10 * time.Second))
	drain := make([]byte, 1<<16)
	for {
		if _, err := stalled.Read(drain); err != nil {
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				t.Fatal("server never closed the stalled connection")
			}
			return
		}
	}
}

// TestMuxV1ClientRoundTrip is the framing-compatibility regression: a
// legacy peer that speaks v1 frames (bare length prefix, no request
// ID) must get its response back v1-framed — a v1 reader rejects the
// v2 flag bit as an oversized frame.
func TestMuxV1ClientRoundTrip(t *testing.T) {
	tr := NewTCP()
	ln, err := tr.Serve("", echoHandler)
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	conn, err := net.Dial("tcp", ln.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(10 * time.Second))

	payload, err := (&wire.Message{Kind: wire.KindRequest, ID: 7, Method: "ping", Body: []byte("legacy")}).Marshal()
	if err != nil {
		t.Fatal(err)
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := conn.Write(append(hdr[:], payload...)); err != nil {
		t.Fatal(err)
	}

	if _, err := io.ReadFull(conn, hdr[:]); err != nil {
		t.Fatalf("reading response header: %v", err)
	}
	word := binary.BigEndian.Uint32(hdr[:])
	if word&0x80000000 != 0 {
		t.Fatal("response to a v1 request is v2-framed; a v1 peer cannot decode it")
	}
	buf := make([]byte, word)
	if _, err := io.ReadFull(conn, buf); err != nil {
		t.Fatalf("reading response payload: %v", err)
	}
	resp, err := wire.UnmarshalMessage(buf)
	if err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	if resp.Kind != wire.KindResponse || resp.ID != 7 || string(resp.Body) != "echo:legacy" {
		t.Fatalf("resp = %+v, want echoed response with ID 7", resp)
	}
}
