package transport

import (
	"os"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// drainAll runs a writer-style consumer loop until the queue is closed
// and fully drained, appending every popped frame to out (guarded by
// mu when non-nil).
func drainAll(q *writeQueue, sink func(outFrame)) {
	var batch []outFrame
	for {
		batch = q.popBatch(batch[:0], 64)
		if len(batch) == 0 {
			if q.isClosed() {
				// Final drain, mirroring writeLoop: pop until empty.
				for {
					batch = q.popBatch(batch[:0], 64)
					if len(batch) == 0 {
						return
					}
					for _, f := range batch {
						sink(f)
					}
				}
			}
			q.wait()
			continue
		}
		for _, f := range batch {
			sink(f)
		}
	}
}

// TestMPSCTortureFIFO hammers the queue with many producers while the
// single consumer drains, then checks exact conservation and
// FIFO-per-producer ordering. Run under -race this exercises the
// push/pop/park interleavings.
func TestMPSCTortureFIFO(t *testing.T) {
	const producers = 8
	const perProducer = 5000

	q := newWriteQueue(nil)
	var got []outFrame
	var consumerDone sync.WaitGroup
	consumerDone.Add(1)
	go func() {
		defer consumerDone.Done()
		drainAll(q, func(f outFrame) { got = append(got, f) })
	}()

	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for seq := 0; seq < perProducer; seq++ {
				if !q.push(outFrame{id: uint64(p)<<32 | uint64(seq)}) {
					t.Errorf("push refused before close (producer %d seq %d)", p, seq)
					return
				}
			}
		}(p)
	}
	wg.Wait()
	q.close()
	consumerDone.Wait()

	if len(got) != producers*perProducer {
		t.Fatalf("popped %d frames, want %d", len(got), producers*perProducer)
	}
	next := make([]uint64, producers)
	for _, f := range got {
		p, seq := f.id>>32, f.id&0xffffffff
		if seq != next[p] {
			t.Fatalf("producer %d: got seq %d, want %d (FIFO violated)", p, seq, next[p])
		}
		next[p]++
	}
	if d := q.len(); d != 0 {
		t.Errorf("queue len after drain = %d, want 0", d)
	}
}

// TestMPSCCloseRacesPushes closes the queue while producers are still
// pushing. Refused pushes must report false (caller keeps the payload);
// frames that were accepted may at worst lose a suffix per producer to
// the documented close/link race, so the popped stream must be a
// strictly in-order prefix per producer and never exceed the accepted
// count.
func TestMPSCCloseRacesPushes(t *testing.T) {
	const producers = 8
	for round := 0; round < 20; round++ {
		q := newWriteQueue(nil)
		var accepted atomic.Int64
		var got []outFrame
		var consumerDone sync.WaitGroup
		consumerDone.Add(1)
		go func() {
			defer consumerDone.Done()
			drainAll(q, func(f outFrame) { got = append(got, f) })
		}()

		var wg sync.WaitGroup
		for p := 0; p < producers; p++ {
			wg.Add(1)
			go func(p int) {
				defer wg.Done()
				for seq := uint64(0); ; seq++ {
					if !q.push(outFrame{id: uint64(p)<<32 | seq}) {
						return // closed: we keep ownership, nothing leaks here
					}
					accepted.Add(1)
				}
			}(p)
		}
		time.Sleep(time.Millisecond)
		q.close()
		wg.Wait()
		consumerDone.Wait()

		if int64(len(got)) > accepted.Load() {
			t.Fatalf("round %d: popped %d > accepted %d", round, len(got), accepted.Load())
		}
		next := make([]uint64, producers)
		for _, f := range got {
			p, seq := f.id>>32, f.id&0xffffffff
			if seq != next[p] {
				t.Fatalf("round %d: producer %d got seq %d, want %d", round, p, seq, next[p])
			}
			next[p]++
		}
	}
}

// TestMPSCWaitWakes checks the park/wake handshake: a consumer parked
// on an empty queue must be woken by a push, and by close.
func TestMPSCWaitWakes(t *testing.T) {
	for _, trigger := range []string{"push", "close"} {
		q := newWriteQueue(nil)
		woke := make(chan struct{})
		go func() {
			for !q.nonEmpty() && !q.isClosed() {
				q.wait()
			}
			close(woke)
		}()
		time.Sleep(2 * time.Millisecond) // let the consumer reach the park
		if trigger == "push" {
			q.push(outFrame{id: 1})
		} else {
			q.close()
		}
		select {
		case <-woke:
		case <-time.After(5 * time.Second):
			t.Fatalf("consumer never woke on %s", trigger)
		}
	}
}

// TestMPSCStatsDepth checks the snapshot-time write-queue depth gauge:
// it reflects linked frames while the queue is live, returns to zero
// after a drain, and drops the queue from the sum once it closes.
func TestMPSCStatsDepth(t *testing.T) {
	var stats Stats
	q := newWriteQueue(&stats)
	for i := 0; i < 10; i++ {
		q.push(outFrame{id: uint64(i)})
	}
	if d := stats.Snapshot().WriteQueueDepth; d != 10 {
		t.Fatalf("depth after pushes = %d, want 10", d)
	}
	var batch []outFrame
	for len(batch) < 10 {
		batch = q.popBatch(batch, 10)
	}
	if d := stats.Snapshot().WriteQueueDepth; d != 0 {
		t.Fatalf("depth after drain = %d, want 0", d)
	}
	q.push(outFrame{id: 99})
	q.close()
	if d := stats.Snapshot().WriteQueueDepth; d != 0 {
		t.Fatalf("closed queue still counted: depth = %d, want 0", d)
	}
}

// TestMPSCOverheadGuard is the CI gate for the satellite requirement:
// the MPSC queue's single-caller enqueue+dequeue cost must not regress
// versus the buffered-channel baseline it replaced, and the steady
// state must stay allocation-free (pooled nodes). Env-gated like the
// other in-process benchmark guards.
func TestMPSCOverheadGuard(t *testing.T) {
	if os.Getenv("RUN_OVERHEAD_GUARD") == "" {
		t.Skip("set RUN_OVERHEAD_GUARD=1 to run the MPSC overhead guard")
	}
	q := newWriteQueue(nil)
	var scratch []outFrame
	mpsc := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			q.push(outFrame{id: uint64(i)})
			scratch = q.popBatch(scratch[:0], 1)
		}
	})
	ch := make(chan outFrame, 256)
	chanBase := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ch <- outFrame{id: uint64(i)}
			<-ch
		}
	})
	mpscNs, chanNs := float64(mpsc.NsPerOp()), float64(chanBase.NsPerOp())
	t.Logf("mpsc push+pop: %.1f ns/op (%d allocs), chan send+recv: %.1f ns/op",
		mpscNs, mpsc.AllocsPerOp(), chanNs)
	if mpsc.AllocsPerOp() != 0 {
		t.Errorf("mpsc push+pop allocates %d objects/op, want 0", mpsc.AllocsPerOp())
	}
	// 1.5× plus a small absolute slack absorbs timer noise on shared CI
	// runners while still catching a real regression (the queue should
	// in fact be faster than the channel).
	if mpscNs > chanNs*1.5+50 {
		t.Errorf("mpsc push+pop %.1f ns/op vs channel %.1f ns/op: regression past 1.5× budget", mpscNs, chanNs)
	}
}
